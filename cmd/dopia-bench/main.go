// Command dopia-bench regenerates the tables and figures of the Dopia
// paper's evaluation section on the simulated Kaveri and Skylake machines.
//
// Usage:
//
//	dopia-bench [flags] [experiment ...]
//
// Experiments: fig1 fig3 fig9 fig10 table5 fig11 fig12 table6 fig13, or
// "all" (default). The heavy experiments share one workload
// characterization per machine; use -cache to persist it between runs.
//
// Side modes:
//
//	dopia-bench -out report.json                    record component benchmarks
//	dopia-bench -compare old.json new.json          diff two reports; non-zero
//	                                                exit above -threshold percent
//	dopia-bench -cpuprofile cpu.pprof [...]         profile any mode
//	dopia-bench -memprofile mem.pprof [...]         heap profile at exit
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"dopia/internal/experiments"
	"dopia/internal/interp"
	"dopia/internal/sim"
)

func main() {
	var (
		synthLimit = flag.Int("synth-limit", 0, "limit the 1,224-workload synthetic grid (0 = full)")
		realN      = flag.Int("real-n", 0, "real-kernel problem size (0 = default)")
		folds      = flag.Int("folds", 64, "cross-validation folds (paper: 64)")
		parallel   = flag.Int("parallel", 0, "characterization workers (0 = GOMAXPROCS)")
		cacheDir   = flag.String("cache", "", "directory for characterization caches")
		seed       = flag.Int64("seed", 1, "random seed for fold shuffling")
		list       = flag.Bool("list", false, "list experiments and exit")
		out        = flag.String("out", "", "run the tier-1 component benchmarks and write ns/op + allocs/op JSON to this file, then exit")
		machine    = flag.String("machine", "Kaveri", "simulated machine for the machine-bound -out benchmarks (any zoo machine)")
		sched      = flag.String("sched", "alg1", "co-execution scheduler for the -out heatmap benchmark: alg1, static, dynamic, or hguided")
		checkSched = flag.String("check-sched", "", "verify the SchedSweep records of a -out report: every zoo machine must have a workload where an adaptive scheduler beats the best static split; exit non-zero otherwise")
		compare    = flag.Bool("compare", false, "compare two -out reports (old.json new.json): print ns/op + allocs/op deltas and exit non-zero on regressions above -threshold")
		threshold  = flag.Float64("threshold", 25, "regression threshold in percent for -compare")
		allowMiss  = flag.Bool("allow-missing", false, "with -compare, waive benchmarks missing from the new report instead of failing (for CI runs that exclude suites)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile at exit to this file")
		opProfile  = flag.String("opprofile", "", "enable opcode n-gram profiling and write the histogram JSON (dopia-superopt input) to this file at exit")
	)
	flag.Parse()

	if *opProfile != "" {
		interp.EnableOpProfiling()
		path := *opProfile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			if err := interp.WriteOpProfile(f, 128); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: dopia-bench -compare [-threshold pct] [-allow-missing] old.json new.json")
			os.Exit(2)
		}
		if err := compareReports(flag.Arg(0), flag.Arg(1), *threshold, *allowMiss); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		path := *memProfile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if *checkSched != "" {
		if err := checkSchedGate(*checkSched); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *out != "" {
		m, err := sim.MachineByName(*machine)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		dist, err := sim.ParseDistribution(*sched)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := writeBenchReport(*out, m, dist); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Desc)
		}
		return
	}

	s := experiments.NewSuite(os.Stdout)
	s.SynthLimit = *synthLimit
	s.Folds = *folds
	s.Parallelism = *parallel
	s.CacheDir = *cacheDir
	s.Seed = *seed
	if *realN > 0 {
		s.RealN = *realN
	}

	ids := flag.Args()
	if len(ids) == 0 || (len(ids) == 1 && ids[0] == "all") {
		ids = nil
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	}
	for _, id := range ids {
		e, err := experiments.ByID(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\n===== %s: %s =====\n", e.ID, e.Desc)
		start := time.Now()
		if err := e.Run(s); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
