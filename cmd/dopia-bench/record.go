package main

// The -out mode: run the tier-1 component benchmarks in-process through
// testing.Benchmark and record ns/op, bytes/op, and allocs/op as JSON, so
// performance regressions between PRs are diffable files rather than
// scrollback. The benchmark bodies mirror bench_test.go.

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"testing"
	"time"

	"dopia/internal/analysis"
	"dopia/internal/clc"
	"dopia/internal/core"
	"dopia/internal/experiments"
	"dopia/internal/interp"
	"dopia/internal/ml"
	"dopia/internal/sched"
	"dopia/internal/server"
	"dopia/internal/sim"
	"dopia/internal/transform"
	"dopia/internal/workloads"
)

type benchRecord struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Engine is the interpreter execution engine the benchmark ran on
	// ("bytecode", "closures", possibly with a fallback note), or
	// "none" for benchmarks that never execute kernels.
	Engine string `json:"engine"`
	// LaneWidth is the resolved interpreter lane width the benchmark's
	// kernels ran at (0 for benchmarks that never execute kernels).
	// Compare matches records on (name, machine, lane_width), falling
	// back to coarser keys for reports that predate either field.
	LaneWidth int `json:"lane_width,omitempty"`
	// Machine is the simulated machine the benchmark ran on (empty for
	// benchmarks that never touch a machine model). Reports written
	// before the machine zoo lack the field; -compare falls back to
	// machine-less matching for those.
	Machine string `json:"machine,omitempty"`
}

// benchReport captures the effective execution environment alongside
// the measurements: NumCPU is the machine, GoMaxProcs the scheduler
// width the run actually used, Parallelism the effective interpreter
// sharding width (GOMAXPROCS overridden by DOPIA_PARALLELISM), and
// Engine the process-default interpreter engine (DOPIA_ENGINE).
type benchReport struct {
	Date        string        `json:"date"`
	GoVersion   string        `json:"go_version"`
	NumCPU      int           `json:"num_cpu"`
	GoMaxProcs  int           `json:"gomaxprocs"`
	Parallelism int           `json:"dopia_parallelism"`
	Engine      string        `json:"dopia_engine"`
	Benchmarks  []benchRecord `json:"benchmarks"`
}

const gesummvSrc = `__kernel void gesummv(__global float* A, __global float* B,
    __global float* x, __global float* y, float alpha, float beta, int N) {
    int i = get_global_id(0);
    if (i < N) {
        float tmp = 0.0f;
        float yv = 0.0f;
        for (int j = 0; j < N; j++) {
            tmp += A[i * N + j] * x[j];
            yv += B[i * N + j] * x[j];
        }
        y[i] = alpha * tmp + beta * yv;
    }
}`

// interpreterBench measures the gesummv kernel on the bytecode engine.
// lanes is the requested lane width (0 = the process default); the
// record carries the width actually resolved at launch.
func interpreterBench(lanes int) func() (func(b *testing.B), string, int, error) {
	return func() (func(b *testing.B), string, int, error) {
		prog, err := clc.Compile(gesummvSrc)
		if err != nil {
			return nil, "", 0, err
		}
		n := 256
		ex, err := interp.NewExec(prog.Kernels[0])
		if err != nil {
			return nil, "", 0, err
		}
		ex.LaneWidth = lanes
		A := interp.NewFloatBuffer(n * n)
		B := interp.NewFloatBuffer(n * n)
		x := interp.NewFloatBuffer(n)
		y := interp.NewFloatBuffer(n)
		if err := ex.Bind(interp.BufArg(A), interp.BufArg(B), interp.BufArg(x), interp.BufArg(y),
			interp.FloatArg(1), interp.FloatArg(1), interp.IntArg(int64(n))); err != nil {
			return nil, "", 0, err
		}
		if err := ex.Launch(interp.ND1(n, 64)); err != nil {
			return nil, "", 0, err
		}
		eng, fallback := ex.EngineUsed()
		engineStr := eng.String()
		if fallback != "" {
			engineStr += " (fallback: " + fallback + ")"
		}
		width, _ := ex.LanesUsed()
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := ex.Run(); err != nil {
					b.Fatal(err)
				}
			}
		}, engineStr, width, nil
	}
}

func heatmapBench(m *sim.Machine, dist sim.Distribution) func() (func(b *testing.B), string, int, error) {
	return func() (func(b *testing.B), string, int, error) {
		ws, err := workloads.RealWorkloads(512, 256)
		if err != nil {
			return nil, "", 0, err
		}
		w := ws[8] // GESUMMV
		k, err := w.CompileKernel()
		if err != nil {
			return nil, "", 0, err
		}
		ex, err := sched.NewExecutor(m, k, nil)
		if err != nil {
			return nil, "", 0, err
		}
		ex.AssumeMalleable = true
		inst, err := w.Setup()
		if err != nil {
			return nil, "", 0, err
		}
		if err := ex.Bind(inst.Args...); err != nil {
			return nil, "", 0, err
		}
		if err := ex.Launch(inst.ND); err != nil {
			return nil, "", 0, err
		}
		if _, err := ex.Model(); err != nil {
			return nil, "", 0, err
		}
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, cfg := range m.Configs() {
					if _, err := ex.Run(cfg, sched.RunOptions{Dist: dist}); err != nil {
						b.Fatal(err)
					}
				}
			}
		}, interp.DefaultEngine().String(), 0, nil
	}
}

func analysisBench() (func(b *testing.B), string, int, error) {
	prog, err := clc.Compile(`__kernel void ex(__global float* A, __global float* B,
        __global float* C, __global float* D, __global int* Bi, int c1, int N, int M) {
        for (int i = 0; i < N; i++) {
            for (int j = 0; j < M; j++) {
                D[i * M + j] = A[i * M + j] + B[j * N + i] + C[c1] + C[Bi[j * N + i]];
            }
        }
    }`)
	if err != nil {
		return nil, "", 0, err
	}
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := analysis.Analyze(prog.Kernels[0]); err != nil {
				b.Fatal(err)
			}
		}
	}, "none", 0, nil
}

func transformBench() (func(b *testing.B), string, int, error) {
	prog, err := clc.Compile(`__kernel void sum3(__global float* A, __global float* B,
        __global float* C, int n) {
        int i = get_global_id(0);
        if (i < n) { C[i] = A[i] + B[i] + C[i]; }
    }`)
	if err != nil {
		return nil, "", 0, err
	}
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := transform.MalleableGPU(prog.Kernels[0], 1); err != nil {
				b.Fatal(err)
			}
		}
	}, "none", 0, nil
}

func inferenceBench(m *sim.Machine) func() (func(b *testing.B), string, int, error) {
	return func() (func(b *testing.B), string, int, error) {
		grid, err := workloads.SyntheticGrid()
		if err != nil {
			return nil, "", 0, err
		}
		var sub []*workloads.Workload
		for i := 0; i < len(grid) && len(sub) < 40; i += len(grid) / 40 {
			sub = append(sub, grid[i])
		}
		evals, err := core.EvaluateAll(m, sub, 0)
		if err != nil {
			return nil, "", 0, err
		}
		dt, err := ml.TreeTrainer{}.Fit(core.BuildDataset(m, evals))
		if err != nil {
			return nil, "", 0, err
		}
		var base ml.Features
		base[ml.FGlobalSize] = 16384
		base[ml.FLocalSize] = 256
		base[ml.FMemContinuous] = 4
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, cfg := range m.Configs() {
					_ = dt.Predict(core.WithConfig(base, m, cfg))
				}
			}
		}, "none", 0, nil
	}
}

func frontEndBench() (func(b *testing.B), string, int, error) {
	src := `__kernel void conv2d(__global float* A, __global float* B, int NI, int NJ) {
        int j = get_global_id(0);
        int i = get_global_id(1);
        if (i > 0 && i < NI - 1 && j > 0 && j < NJ - 1) {
            B[i * NJ + j] = 0.2f * A[(i - 1) * NJ + j] + 0.5f * A[i * NJ + j]
                          + 0.3f * A[(i + 1) * NJ + j];
        }
    }`
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := clc.Compile(src); err != nil {
				b.Fatal(err)
			}
		}
	}, "none", 0, nil
}

// servingBinaryBench measures the serving fast path end to end: one
// steady-state launch over the binary wire protocol against an
// in-process daemon on a loopback TCP listener. After warmup the
// launch's key hits the completed-launch memo, so the measurement is
// pure serving overhead — framing, admission, memo lookup,
// copy-on-read-back — and its allocs/op is the alloc-regression gate
// for the pooled-arena discipline.
func servingBinaryBench() (func(b *testing.B), string, int, error) {
	srv, err := server.New(server.Config{Machine: sim.Kaveri()})
	if err != nil {
		return nil, "", 0, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", 0, err
	}
	ms := server.NewMixedServer(srv)
	go func() { _ = ms.Serve(ln) }()
	bc, err := server.DialBin(ln.Addr().String(), 5*time.Second)
	if err != nil {
		return nil, "", 0, err
	}
	progID, _, _, err := bc.Compile(gesummvSrc)
	if err != nil {
		return nil, "", 0, err
	}
	sid, err := bc.NewSession("")
	if err != nil {
		return nil, "", 0, err
	}
	n := 256
	fill := func(name string, elems int, seed int) error {
		xs := make([]float32, elems)
		for i := range xs {
			xs[i] = float32((i+seed)%11) * 0.125
		}
		raw := make([]byte, 4*elems)
		server.F32ToLE(raw, xs)
		return bc.CreateBufferRaw(sid, name, 'f', raw)
	}
	for _, bspec := range []struct {
		name  string
		elems int
	}{{"A", n * n}, {"B", n * n}, {"x", n}} {
		if err := fill(bspec.name, bspec.elems, len(bspec.name)); err != nil {
			return nil, "", 0, err
		}
	}
	if err := bc.CreateBufferZero(sid, "y", 'f', n); err != nil {
		return nil, "", 0, err
	}
	alpha, beta, nn := 1.0, 1.0, int64(n)
	req := &server.BinLaunch{
		SessionID: sid, ProgramID: progID, Kernel: "gesummv",
		Args: []server.LaunchArg{
			{Buf: "A"}, {Buf: "B"}, {Buf: "x"}, {Buf: "y"},
			{Float: &alpha}, {Float: &beta}, {Int: &nn},
		},
		Global: []int{n}, Local: []int{64},
		Read: []string{"y"},
	}
	// Two warmup launches: the first executes over y=0, the second over
	// the overwritten y; from the third on, the content key is stable
	// and every launch is a memo replay.
	for i := 0; i < 3; i++ {
		if _, err := bc.Launch(req); err != nil {
			return nil, "", 0, err
		}
	}
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bc.Launch(req); err != nil {
				b.Fatal(err)
			}
		}
	}, "none", 0, nil
}

// schedSweepSize is the problem size and work-group size of the
// recorded policy sweep. Simulated times are deterministic, so the
// sweep records diff exactly between reports: any delta is a real model
// or scheduler change, never measurement noise.
const (
	schedSweepN  = 2048
	schedSweepWG = 256
)

// schedSweepRecords simulates every real workload on every zoo machine
// under each co-execution policy and returns one record per cell, named
// SchedSweep/<machine>/<workload>/<sched> with ns_per_op holding the
// simulated execution time in nanoseconds.
func schedSweepRecords() ([]benchRecord, error) {
	rows, err := experiments.SchedSweepRows(schedSweepN, schedSweepWG)
	if err != nil {
		return nil, err
	}
	out := make([]benchRecord, 0, len(rows))
	for _, r := range rows {
		out = append(out, benchRecord{
			Name:    fmt.Sprintf("SchedSweep/%s/%s/%s", r.Machine, r.Workload, r.Sched),
			N:       1,
			NsPerOp: r.Time * 1e9,
			Engine:  "sim",
			Machine: r.Machine,
		})
	}
	return out, nil
}

// writeBenchReport runs the tier-1 component benchmarks on machine m
// (scheduling co-execution with dist where relevant), appends the
// cross-machine policy sweep, and writes the JSON report to path.
func writeBenchReport(path string, m *sim.Machine, dist sim.Distribution) error {
	set := []struct {
		name    string
		machine string // simulated machine the benchmark drives ("" = none)
		mk      func() (func(b *testing.B), string, int, error)
	}{
		{"InterpreterGesummv", "", interpreterBench(0)},
		{"InterpreterGesummvScalar", "", interpreterBench(1)},
		{"Fig1Heatmap", m.Name, heatmapBench(m, dist)},
		{"StaticAnalysis", "", analysisBench},
		{"MalleableTransform", "", transformBench},
		{"ModelInference44Configs", m.Name, inferenceBench(m)},
		{"FrontEndCompile", "", frontEndBench},
		// The serving bench measures wire-protocol overhead, not the
		// simulator; it stays pinned to the paper's default machine so
		// its numbers compare across reports regardless of -machine.
		{"ServingBinaryLaunch", sim.Kaveri().Name, servingBinaryBench},
	}
	rep := benchReport{
		Date:        time.Now().UTC().Format("2006-01-02"),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Parallelism: interp.DefaultParallelism(),
		Engine:      interp.DefaultEngine().String(),
	}
	for _, s := range set {
		fn, engine, lanes, err := s.mk()
		if err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			fn(b)
		})
		note := engine
		if lanes > 0 {
			note = fmt.Sprintf("%s, lanes=%d", engine, lanes)
		}
		if s.machine != "" {
			note = fmt.Sprintf("%s, machine=%s", note, s.machine)
		}
		fmt.Printf("%-26s %12.0f ns/op %10d B/op %8d allocs/op  [%s]\n",
			s.name, float64(res.T.Nanoseconds())/float64(res.N),
			res.AllocedBytesPerOp(), res.AllocsPerOp(), note)
		rep.Benchmarks = append(rep.Benchmarks, benchRecord{
			Name:        s.name,
			N:           res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			Engine:      engine,
			LaneWidth:   lanes,
			Machine:     s.machine,
		})
	}
	sweep, err := schedSweepRecords()
	if err != nil {
		return fmt.Errorf("sched sweep: %w", err)
	}
	rep.Benchmarks = append(rep.Benchmarks, sweep...)
	fmt.Printf("%-26s %d records (n=%d, wg=%d, simulated time as ns/op)\n",
		"SchedSweep/*", len(sweep), schedSweepN, schedSweepWG)
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
