package main

// The -compare mode: diff two benchmark reports written by -out and fail
// (non-zero exit) when ns/op or allocs/op regress beyond a threshold, so
// CI can gate on checked-in baselines instead of eyeballing scrollback.

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"

	"dopia/internal/sim"
)

// compareReports loads two -out reports and prints per-benchmark ns/op
// and allocs/op deltas. It returns an error listing every benchmark
// whose ns/op or allocs/op regressed by more than thresholdPct percent,
// or that disappeared from the new report. With allowMissing,
// disappeared benchmarks are reported as waived instead of failing —
// for CI jobs that deliberately run a subset of the suites. New
// benchmarks (present only in the new report) are informational.
func compareReports(oldPath, newPath string, thresholdPct float64, allowMissing bool) error {
	oldRep, err := loadBenchReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := loadBenchReport(newPath)
	if err != nil {
		return err
	}
	// Records match on (name, machine, lane_width); when either side
	// predates a dimension (machine "" or lane_width 0 everywhere for
	// that name), fall back to coarser keys so old baselines stay
	// comparable.
	type benchKey struct {
		name    string
		machine string
		lanes   int
	}
	newByKey := make(map[benchKey]benchRecord, len(newRep.Benchmarks))
	newByLanes := make(map[benchKey]benchRecord, len(newRep.Benchmarks))
	newByName := make(map[string]benchRecord, len(newRep.Benchmarks))
	for _, b := range newRep.Benchmarks {
		newByKey[benchKey{b.Name, b.Machine, b.LaneWidth}] = b
		if _, dup := newByLanes[benchKey{name: b.Name, lanes: b.LaneWidth}]; !dup {
			newByLanes[benchKey{name: b.Name, lanes: b.LaneWidth}] = b
		}
		if _, dup := newByName[b.Name]; !dup {
			newByName[b.Name] = b
		}
	}
	lookup := func(ob benchRecord) (benchRecord, bool) {
		if nb, ok := newByKey[benchKey{ob.Name, ob.Machine, ob.LaneWidth}]; ok {
			return nb, true
		}
		if nb, ok := newByLanes[benchKey{name: ob.Name, lanes: ob.LaneWidth}]; ok {
			return nb, true
		}
		nb, ok := newByName[ob.Name]
		return nb, ok
	}

	fmt.Printf("old: %s (%s, %d cpu, gomaxprocs %d)\n",
		oldPath, oldRep.Date, oldRep.NumCPU, oldRep.GoMaxProcs)
	fmt.Printf("new: %s (%s, %d cpu, gomaxprocs %d)\n",
		newPath, newRep.Date, newRep.NumCPU, newRep.GoMaxProcs)
	fmt.Printf("%-26s %14s %14s %8s %12s %12s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs", "delta")

	var failures []string
	waived := 0
	seen := make(map[string]bool, len(oldRep.Benchmarks))
	for _, ob := range oldRep.Benchmarks {
		seen[ob.Name] = true
		nb, ok := lookup(ob)
		if !ok {
			if allowMissing {
				fmt.Printf("%-26s %14.0f %14s\n", ob.Name, ob.NsPerOp, "(waived)")
				waived++
				continue
			}
			fmt.Printf("%-26s %14.0f %14s\n", ob.Name, ob.NsPerOp, "missing")
			failures = append(failures,
				fmt.Sprintf("%s: missing from %s", ob.Name, newPath))
			continue
		}
		nsDelta := pctDelta(ob.NsPerOp, nb.NsPerOp)
		allocDelta := pctDelta(float64(ob.AllocsPerOp), float64(nb.AllocsPerOp))
		fmt.Printf("%-26s %14.0f %14.0f %7.1f%% %12d %12d %7.1f%%\n",
			ob.Name, ob.NsPerOp, nb.NsPerOp, nsDelta,
			ob.AllocsPerOp, nb.AllocsPerOp, allocDelta)
		if nsDelta > thresholdPct {
			failures = append(failures, fmt.Sprintf(
				"%s: ns/op regressed %.1f%% (%.0f -> %.0f, threshold %.1f%%)",
				ob.Name, nsDelta, ob.NsPerOp, nb.NsPerOp, thresholdPct))
		}
		if allocDelta > thresholdPct {
			failures = append(failures, fmt.Sprintf(
				"%s: allocs/op regressed %.1f%% (%d -> %d, threshold %.1f%%)",
				ob.Name, allocDelta, ob.AllocsPerOp, nb.AllocsPerOp, thresholdPct))
		}
	}
	added := 0
	for _, nb := range newRep.Benchmarks {
		if !seen[nb.Name] {
			added++
			if added <= 20 {
				fmt.Printf("%-26s %14s %14.0f   (new)\n", nb.Name, "-", nb.NsPerOp)
			}
		}
	}
	if added > 20 {
		fmt.Printf("  ... and %d more new benchmark(s)\n", added-20)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "FAIL:", f)
		}
		return fmt.Errorf("%d benchmark regression(s) above %.1f%%",
			len(failures), thresholdPct)
	}
	if waived > 0 {
		fmt.Printf("OK: no regressions above %.1f%% (%d missing benchmark(s) waived)\n",
			thresholdPct, waived)
		return nil
	}
	fmt.Printf("OK: no regressions above %.1f%%\n", thresholdPct)
	return nil
}

// pctDelta returns the percentage change from before to after; an
// increase is positive (a regression for ns/op and allocs/op). A zero
// baseline with a non-zero new value reports +Inf, which always exceeds
// the threshold.
func pctDelta(before, after float64) float64 {
	if before == 0 {
		if after == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (after - before) / before * 100
}

func loadBenchReport(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// checkSchedGate loads a -out report and enforces the policy-sweep
// acceptance criterion on its SchedSweep records: on every machine
// beyond the paper's Kaveri and Skylake, at least one workload must run
// faster under an adaptive scheduler (dynamic or hguided) than under
// the best static split. It fails too when a zoo machine has no sweep
// records at all, so a silently skipped sweep cannot pass the gate.
func checkSchedGate(path string) error {
	rep, err := loadBenchReport(path)
	if err != nil {
		return err
	}
	// machine -> workload -> sched -> simulated ns
	times := map[string]map[string]map[string]float64{}
	for _, b := range rep.Benchmarks {
		if !strings.HasPrefix(b.Name, "SchedSweep/") {
			continue
		}
		parts := strings.SplitN(strings.TrimPrefix(b.Name, "SchedSweep/"), "/", 3)
		if len(parts) != 3 {
			return fmt.Errorf("%s: malformed sweep record name %q", path, b.Name)
		}
		mach, wl, sched := parts[0], parts[1], parts[2]
		if times[mach] == nil {
			times[mach] = map[string]map[string]float64{}
		}
		if times[mach][wl] == nil {
			times[mach][wl] = map[string]float64{}
		}
		times[mach][wl][sched] = b.NsPerOp
	}
	base := map[string]bool{sim.Kaveri().Name: true, sim.Skylake().Name: true}
	var failures []string
	for _, m := range sim.Zoo() {
		wl := times[m.Name]
		if len(wl) == 0 {
			failures = append(failures,
				fmt.Sprintf("%s: no SchedSweep records in %s", m.Name, path))
			continue
		}
		if base[m.Name] {
			continue
		}
		best := ""
		bestGain := 0.0
		for name, ts := range wl {
			static, ok := ts["static"]
			if !ok {
				return fmt.Errorf("%s/%s: sweep record missing static policy", m.Name, name)
			}
			for _, p := range []string{"dynamic", "hguided"} {
				if t, ok := ts[p]; ok && t < static && static-t > bestGain {
					best = fmt.Sprintf("%s %s %.3gms < static-best %.3gms", name, p, t/1e6, static/1e6)
					bestGain = static - t
				}
			}
		}
		if best == "" {
			failures = append(failures, fmt.Sprintf(
				"%s: no workload where dynamic or hguided beats the best static split", m.Name))
			continue
		}
		fmt.Printf("%-14s OK: %s\n", m.Name, best)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "FAIL:", f)
		}
		return fmt.Errorf("scheduler sweep gate failed on %d machine(s)", len(failures))
	}
	fmt.Println("OK: adaptive schedulers beat best-static on every zoo machine")
	return nil
}
