package main

// The -compare mode: diff two benchmark reports written by -out and fail
// (non-zero exit) when ns/op or allocs/op regress beyond a threshold, so
// CI can gate on checked-in baselines instead of eyeballing scrollback.

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// compareReports loads two -out reports and prints per-benchmark ns/op
// and allocs/op deltas. It returns an error listing every benchmark
// whose ns/op or allocs/op regressed by more than thresholdPct percent,
// or that disappeared from the new report. With allowMissing,
// disappeared benchmarks are reported as waived instead of failing —
// for CI jobs that deliberately run a subset of the suites. New
// benchmarks (present only in the new report) are informational.
func compareReports(oldPath, newPath string, thresholdPct float64, allowMissing bool) error {
	oldRep, err := loadBenchReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := loadBenchReport(newPath)
	if err != nil {
		return err
	}
	// Records match on (name, lane_width); when either side predates the
	// lane dimension (lane_width 0 everywhere for that name), fall back
	// to name-only so old baselines stay comparable.
	type benchKey struct {
		name  string
		lanes int
	}
	newByKey := make(map[benchKey]benchRecord, len(newRep.Benchmarks))
	newByName := make(map[string]benchRecord, len(newRep.Benchmarks))
	for _, b := range newRep.Benchmarks {
		newByKey[benchKey{b.Name, b.LaneWidth}] = b
		if _, dup := newByName[b.Name]; !dup {
			newByName[b.Name] = b
		}
	}
	lookup := func(ob benchRecord) (benchRecord, bool) {
		if nb, ok := newByKey[benchKey{ob.Name, ob.LaneWidth}]; ok {
			return nb, true
		}
		nb, ok := newByName[ob.Name]
		return nb, ok
	}

	fmt.Printf("old: %s (%s, %d cpu, gomaxprocs %d)\n",
		oldPath, oldRep.Date, oldRep.NumCPU, oldRep.GoMaxProcs)
	fmt.Printf("new: %s (%s, %d cpu, gomaxprocs %d)\n",
		newPath, newRep.Date, newRep.NumCPU, newRep.GoMaxProcs)
	fmt.Printf("%-26s %14s %14s %8s %12s %12s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs", "delta")

	var failures []string
	waived := 0
	seen := make(map[string]bool, len(oldRep.Benchmarks))
	for _, ob := range oldRep.Benchmarks {
		seen[ob.Name] = true
		nb, ok := lookup(ob)
		if !ok {
			if allowMissing {
				fmt.Printf("%-26s %14.0f %14s\n", ob.Name, ob.NsPerOp, "(waived)")
				waived++
				continue
			}
			fmt.Printf("%-26s %14.0f %14s\n", ob.Name, ob.NsPerOp, "missing")
			failures = append(failures,
				fmt.Sprintf("%s: missing from %s", ob.Name, newPath))
			continue
		}
		nsDelta := pctDelta(ob.NsPerOp, nb.NsPerOp)
		allocDelta := pctDelta(float64(ob.AllocsPerOp), float64(nb.AllocsPerOp))
		fmt.Printf("%-26s %14.0f %14.0f %7.1f%% %12d %12d %7.1f%%\n",
			ob.Name, ob.NsPerOp, nb.NsPerOp, nsDelta,
			ob.AllocsPerOp, nb.AllocsPerOp, allocDelta)
		if nsDelta > thresholdPct {
			failures = append(failures, fmt.Sprintf(
				"%s: ns/op regressed %.1f%% (%.0f -> %.0f, threshold %.1f%%)",
				ob.Name, nsDelta, ob.NsPerOp, nb.NsPerOp, thresholdPct))
		}
		if allocDelta > thresholdPct {
			failures = append(failures, fmt.Sprintf(
				"%s: allocs/op regressed %.1f%% (%d -> %d, threshold %.1f%%)",
				ob.Name, allocDelta, ob.AllocsPerOp, nb.AllocsPerOp, thresholdPct))
		}
	}
	for _, nb := range newRep.Benchmarks {
		if !seen[nb.Name] {
			fmt.Printf("%-26s %14s %14.0f   (new)\n", nb.Name, "-", nb.NsPerOp)
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "FAIL:", f)
		}
		return fmt.Errorf("%d benchmark regression(s) above %.1f%%",
			len(failures), thresholdPct)
	}
	if waived > 0 {
		fmt.Printf("OK: no regressions above %.1f%% (%d missing benchmark(s) waived)\n",
			thresholdPct, waived)
		return nil
	}
	fmt.Printf("OK: no regressions above %.1f%%\n", thresholdPct)
	return nil
}

// pctDelta returns the percentage change from before to after; an
// increase is positive (a regression for ns/op and allocs/op). A zero
// baseline with a non-zero new value reports +Inf, which always exceeds
// the threshold.
func pctDelta(before, after float64) float64 {
	if before == 0 {
		if after == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (after - before) / before * 100
}

func loadBenchReport(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}
