// Command dopia-load is the closed-loop load generator and correctness
// checker for dopia-serve. Each of -concurrency workers owns one tenant
// session, uploads the deterministic inputs of its assigned real
// workload (Polybench / SpMV / PageRank), and launches in a closed loop
// for -duration. Every response is verified BIT-IDENTICAL against a
// direct in-process sequential execution of the same kernel on the same
// inputs: the client replays each launch through the interpreter
// locally and compares the returned base64 buffer bytes, so any
// cross-tenant leak, cache corruption, or nondeterministic sharding in
// the serving path fails the run.
//
// With -addr "" (the default) the generator embeds the server in
// process on a loopback listener — the zero-setup mode used to produce
// BENCH_4.json. Point -addr at a running dopia-serve to load a real
// daemon; exit status is non-zero on any mismatch, request failure, or
// contained panic reported by /metrics.
//
// With -cluster N the generator instead boots an in-process N-node
// cluster (router + members, real HTTP and gossip throughout) and
// drives the same verified load through the router. Every launch
// carries a generator-stamped idempotency key, so a launch retried
// across a node failover still applies exactly once — the local replay
// replica detects any double-apply bit-wise. -chaos injects a
// deterministic fault schedule (node kill, gossip partition, slow
// node, cache eviction) mid-run; the run fails if the router loses a
// session, a replica diverges from its primary, or any response
// mismatches the in-process reference.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dopia/internal/clc"
	"dopia/internal/cluster"
	"dopia/internal/interp"
	"dopia/internal/server"
	"dopia/internal/sim"
	"dopia/internal/stats"
	"dopia/internal/workloads"
)

func main() {
	var (
		addr        = flag.String("addr", "", "daemon address (host:port); empty = embed the server in-process")
		machineName = flag.String("machine", "Kaveri", "machine model for the embedded server")
		concurrency = flag.Int("concurrency", 8, "closed-loop workers (one session each)")
		duration    = flag.Duration("duration", 10*time.Second, "load duration")
		size        = flag.Int("n", 256, "problem size per workload")
		wgSize      = flag.Int("wg", 64, "work-group size")
		mix         = flag.String("mix", "GESUMMV,ATAX1,BICG1,MVT1,SpMV,PageRank", "comma-separated workload mix")
		deadlineMS  = flag.Int64("deadline-ms", 0, "per-launch deadline (0 = server default)")
		out         = flag.String("out", "", "write the JSON report here (e.g. BENCH_4.json)")
		clusterN    = flag.Int("cluster", 0, "boot an in-process N-node cluster and load it through the router")
		chaosSpec   = flag.String("chaos", "", "fault schedule for -cluster members, e.g. kill:n1@3s (see dopia-router)")
	)
	flag.Parse()

	if *chaosSpec != "" && *clusterN <= 0 {
		fail("-chaos needs -cluster members to inject into")
	}
	if *clusterN > 0 && *addr != "" {
		fail("-cluster and -addr are mutually exclusive")
	}

	base := *addr
	var embedded *server.Server
	var ring *cluster.Local
	if *clusterN > 0 {
		m, err := machineByName(*machineName)
		if err != nil {
			fail("%v", err)
		}
		ring, err = cluster.StartLocal(cluster.LocalConfig{
			Nodes:  *clusterN,
			Server: server.Config{Machine: m},
			Gossip: cluster.GossipConfig{Interval: 50 * time.Millisecond, Seed: 1},
			Router: cluster.RouterConfig{JanitorInterval: 50 * time.Millisecond},
		})
		if err != nil {
			fail("local cluster: %v", err)
		}
		base = ring.RouterURL
	} else if base == "" {
		var err error
		base, embedded, err = embedServer(*machineName)
		if err != nil {
			fail("embedded server: %v", err)
		}
	}
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}

	mixWorkloads, err := pickMix(*mix, *size, *wgSize)
	if err != nil {
		fail("%v", err)
	}

	client := server.NewClient(base, &http.Client{Timeout: 10 * time.Minute})
	if ring != nil {
		// Failovers surface as retryable 503s when the whole ring is
		// momentarily degraded; deterministic backoff rides them out.
		client.SetRetryPolicy(&server.RetryPolicy{
			MaxAttempts: 8, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second, Seed: 1,
		})
	}
	if _, err := client.Healthz(); err != nil {
		fail("daemon at %s not healthy: %v", base, err)
	}

	if *chaosSpec != "" {
		events, err := cluster.ParseChaosSpec(*chaosSpec)
		if err != nil {
			fail("%v", err)
		}
		ctrl := cluster.NewChaosController(events, ring.Node, func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		})
		go func() { _ = ctrl.Run(context.Background()) }()
	}

	// Register every program in the mix up front (dedup makes this a
	// no-op for workloads sharing one source).
	progIDs := make(map[string]string, len(mixWorkloads))
	for _, w := range mixWorkloads {
		resp, err := client.Compile(w.Source)
		if err != nil {
			fail("compile %s: %v", w.Name, err)
		}
		progIDs[w.Name] = resp.ProgramID
	}

	var (
		launches   atomic.Int64
		mismatches atomic.Int64
		reqErrors  atomic.Int64
		retries    atomic.Int64
		rungs      sync.Map // rung string -> *atomic.Int64
		latency    = stats.NewLatencyHistogram()
	)
	bumpRung := func(r string) {
		v, _ := rungs.LoadOrStore(r, new(atomic.Int64))
		v.(*atomic.Int64).Add(1)
	}

	fmt.Printf("dopia-load: %d workers, %v, mix=%s, target %s\n",
		*concurrency, *duration, *mix, base)
	stop := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for i := 0; i < *concurrency; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			w := mixWorkloads[worker%len(mixWorkloads)]
			tc, err := newTenant(client, w, progIDs[w.Name], *deadlineMS)
			if err == nil && ring != nil {
				// Stamp idempotency keys so a launch the router retries
				// across a failover applies exactly once end-to-end.
				tc.idemPrefix = "w" + strconv.Itoa(worker)
			}
			if err != nil {
				reqErrors.Add(1)
				fmt.Fprintf(os.Stderr, "worker %d (%s): setup: %v\n", worker, w.Name, err)
				return
			}
			defer tc.close()
			for time.Now().Before(stop) {
				t0 := time.Now()
				resp, err := tc.launchOnce()
				if err != nil {
					if apiErr, ok := err.(*server.APIError); ok && apiErr.IsRetryable() {
						retries.Add(1)
						time.Sleep(time.Duration(apiErr.RetryAfterMS) * time.Millisecond)
						continue
					}
					reqErrors.Add(1)
					fmt.Fprintf(os.Stderr, "worker %d (%s): launch: %v\n", worker, w.Name, err)
					return
				}
				latency.Record(time.Since(t0).Seconds())
				launches.Add(1)
				bumpRung(resp.Rung)
				if ok, detail := tc.verify(resp); !ok {
					mismatches.Add(1)
					fmt.Fprintf(os.Stderr, "worker %d (%s): MISMATCH: %s\n", worker, w.Name, detail)
					return
				}
			}
		}(i)
	}

	// Poll the observability surface while the storm runs: both
	// endpoints must stay live under full load.
	healthPolls := 0
	pollDone := make(chan struct{})
	go func() {
		tick := time.NewTicker(500 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-pollDone:
				return
			case <-tick.C:
				if _, err := client.Healthz(); err == nil {
					healthPolls++
				}
				_, _ = client.Metrics()
			}
		}
	}()
	wg.Wait()
	close(pollDone)

	page, err := client.Metrics()
	if err != nil {
		fail("final /metrics scrape: %v", err)
	}
	panics := metricValue(page, "dopia_panics_contained_total")
	timeouts := metricValue(page, "dopia_watchdog_timeouts_total")
	plain := metricValue(page, "dopia_fallback_plain_total")

	// In cluster mode the scrape hits the router, whose page carries the
	// ring-health counters instead of the single-daemon ones.
	var ringStats map[string]int64
	if ring != nil {
		ringStats = map[string]int64{}
		for _, name := range []string{
			"nodes", "nodes_healthy", "failovers_total", "migrations_total",
			"replica_rebuilds_total", "replica_divergence_total",
			"program_repushes_total", "node_deaths_total", "drains_total",
			"sessions_lost_total", "ring_down_total",
		} {
			ringStats[strings.TrimSuffix(name, "_total")] = metricValue(page, "dopia_router_"+name)
		}
	}

	snap := latency.Snapshot()
	report := map[string]any{
		"bench":       "dopia-load",
		"machine":     *machineName,
		"concurrency": *concurrency,
		"duration_sec": func() float64 {
			return duration.Seconds()
		}(),
		"mix":            strings.Split(*mix, ","),
		"n":              *size,
		"wg":             *wgSize,
		"launches":       launches.Load(),
		"request_errors": reqErrors.Load(),
		"retries":        retries.Load(),
		"mismatches":     mismatches.Load(),
		"throughput_rps": float64(launches.Load()) / duration.Seconds(),
		"latency_ms": map[string]float64{
			"p50":  snap.P50() * 1e3,
			"p95":  snap.P95() * 1e3,
			"p99":  snap.P99() * 1e3,
			"mean": snap.Mean() * 1e3,
		},
		"rungs": func() map[string]int64 {
			out := map[string]int64{}
			rungs.Range(func(k, v any) bool {
				out[k.(string)] = v.(*atomic.Int64).Load()
				return true
			})
			return out
		}(),
		"server": map[string]int64{
			"panics_contained":  panics,
			"watchdog_timeouts": timeouts,
			"fallback_plain":    plain,
		},
		"health_polls_ok": healthPolls,
	}
	if ring != nil {
		report["cluster"] = ringStats
		report["chaos"] = *chaosSpec
		report["client_retries"] = client.Retries()
		delete(report, "server") // single-daemon counters live on the members
	}
	raw, _ := json.MarshalIndent(report, "", "  ")
	fmt.Println(string(raw))
	if *out != "" {
		if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
			fail("writing %s: %v", *out, err)
		}
		fmt.Printf("dopia-load: report written to %s\n", *out)
	}

	if embedded != nil {
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := embedded.Shutdown(sctx); err != nil {
			fail("drain: %v", err)
		}
	}
	if ring != nil {
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := ring.Shutdown(sctx); err != nil {
			fail("cluster drain: %v", err)
		}
	}

	switch {
	case mismatches.Load() > 0:
		fail("FAIL: %d bit-exactness mismatches", mismatches.Load())
	case reqErrors.Load() > 0:
		fail("FAIL: %d request errors", reqErrors.Load())
	case panics > 0:
		fail("FAIL: server contained %d panics", panics)
	case launches.Load() == 0:
		fail("FAIL: no launches completed")
	case ring != nil && ringStats["sessions_lost"] != 0:
		fail("FAIL: router lost %d sessions", ringStats["sessions_lost"])
	case ring != nil && ringStats["replica_divergence"] != 0:
		fail("FAIL: %d replica divergences", ringStats["replica_divergence"])
	}
	if ring != nil {
		fmt.Printf("dopia-load: PASS — %d launches verified bit-identical across %d/%d healthy nodes "+
			"(%d failovers, %d migrations, 0 sessions lost, %d client retries)\n",
			launches.Load(), ringStats["nodes_healthy"], ringStats["nodes"],
			ringStats["failovers"], ringStats["migrations"], client.Retries())
		return
	}
	fmt.Printf("dopia-load: PASS — %d launches verified bit-identical (%d retries, %d health polls)\n",
		launches.Load(), retries.Load(), healthPolls)
}

// tenant is one worker's session plus its local bit-exact replica.
type tenant struct {
	client     *server.Client
	sid        string
	progID     string
	kernel     string
	deadlineMS int64
	// idemPrefix, when set (cluster mode), stamps every launch with a
	// unique idempotency key so cross-failover retries dedupe.
	idemPrefix string
	idemSeq    int64

	// The local replica: the same kernel bound to local copies of the
	// same buffers, stepped sequentially once per server launch.
	exec    *interp.Exec
	inst    *workloads.Instance
	nd      interp.NDRange
	args    []server.LaunchArg
	read    []string // buffer names in the launch's Read set
	outputs map[string]*interp.Buffer
}

// newTenant creates the session, uploads the workload's deterministic
// inputs, and prepares the in-process reference executor on identical
// local copies.
func newTenant(c *server.Client, w *workloads.Workload, progID string, deadlineMS int64) (*tenant, error) {
	inst, err := w.Setup()
	if err != nil {
		return nil, err
	}
	prog, err := clc.Compile(w.Source)
	if err != nil {
		return nil, err
	}
	k := prog.Kernel(w.Kernel)
	if k == nil {
		return nil, fmt.Errorf("kernel %q missing", w.Kernel)
	}
	ex, err := interp.NewExec(k)
	if err != nil {
		return nil, err
	}
	if err := ex.Bind(inst.Args...); err != nil {
		return nil, err
	}
	if err := ex.Launch(inst.ND); err != nil {
		return nil, err
	}

	sid, err := c.NewSession()
	if err != nil {
		return nil, err
	}
	t := &tenant{
		client: c, sid: sid, progID: progID, kernel: w.Kernel,
		deadlineMS: deadlineMS,
		exec:       ex, inst: inst, nd: inst.ND,
		outputs: map[string]*interp.Buffer{},
	}

	isOutput := map[int]bool{}
	for _, i := range inst.OutputArgs {
		isOutput[i] = true
	}
	for i, a := range inst.Args {
		if !a.IsBuf {
			param := k.Params[i]
			wa := server.LaunchArg{}
			if param.Type.Kind.IsFloat() {
				v := a.Val.F
				wa.Float = &v
			} else {
				v := a.Val.I
				wa.Int = &v
			}
			t.args = append(t.args, wa)
			continue
		}
		name := fmt.Sprintf("b%d", i)
		req := &server.BufferRequest{Name: name}
		switch {
		case a.Buf.F32 != nil:
			req.Kind = "float32"
			req.F32B64 = server.EncodeF32(a.Buf.F32)
		case a.Buf.I32 != nil:
			req.Kind = "int32"
			req.I32B64 = server.EncodeI32(a.Buf.I32)
		default:
			return nil, fmt.Errorf("arg %d: unsupported buffer element type", i)
		}
		if err := c.CreateBuffer(sid, req); err != nil {
			return nil, err
		}
		t.args = append(t.args, server.LaunchArg{Buf: name})
		if isOutput[i] {
			t.read = append(t.read, name)
			t.outputs[name] = a.Buf
		}
	}
	return t, nil
}

// launchOnce steps the local replica once and fires the same launch at
// the daemon.
func (t *tenant) launchOnce() (*server.LaunchResponse, error) {
	var idem string
	if t.idemPrefix != "" {
		idem = t.idemPrefix + "-" + strconv.FormatInt(t.idemSeq, 10)
		t.idemSeq++
	}
	resp, err := t.client.Launch(&server.LaunchRequest{
		SessionID: t.sid, ProgramID: t.progID, Kernel: t.kernel,
		Args:       t.args,
		Global:     t.nd.Global[:t.nd.Dims],
		Local:      t.nd.Local[:t.nd.Dims],
		Read:       t.read,
		DeadlineMS: t.deadlineMS,
		IdemKey:    idem,
	})
	if err != nil {
		return nil, err
	}
	// Step the local replica only after the server launch succeeded, so
	// a retried 429 doesn't desynchronize accumulating kernels.
	if err := t.exec.Run(); err != nil {
		return nil, fmt.Errorf("local reference: %w", err)
	}
	return resp, nil
}

// verify compares every output buffer in the response against the local
// replica, bit for bit (via the canonical base64 encoding).
func (t *tenant) verify(resp *server.LaunchResponse) (bool, string) {
	for name, local := range t.outputs {
		remote, ok := resp.Buffers[name]
		if !ok {
			return false, fmt.Sprintf("response missing buffer %q", name)
		}
		var want string
		if local.F32 != nil {
			want = server.EncodeF32(local.F32)
			if remote.F32B64 == want {
				continue
			}
		} else {
			want = server.EncodeI32(local.I32)
			if remote.I32B64 == want {
				continue
			}
		}
		return false, fmt.Sprintf("buffer %q differs from in-process reference (rung %s, engine %s)",
			name, resp.Rung, resp.Engine)
	}
	return true, ""
}

func (t *tenant) close() { _ = t.client.CloseSession(t.sid) }

// pickMix resolves the workload names against the real-workload table.
func pickMix(mix string, n, wg int) ([]*workloads.Workload, error) {
	all, err := workloads.RealWorkloads(n, wg)
	if err != nil {
		return nil, err
	}
	byName := map[string]*workloads.Workload{}
	var names []string
	for i, d := range workloads.RealDescs() {
		byName[d.Name] = all[i]
		names = append(names, d.Name)
	}
	var out []*workloads.Workload
	for _, name := range strings.Split(mix, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		w, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown workload %q; available: %s", name, strings.Join(names, ", "))
		}
		out = append(out, w)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty workload mix")
	}
	return out, nil
}

func machineByName(name string) (*sim.Machine, error) {
	switch name {
	case "Kaveri", "kaveri":
		return sim.Kaveri(), nil
	case "Skylake", "skylake":
		return sim.Skylake(), nil
	}
	return nil, fmt.Errorf("unknown machine %q", name)
}

// embedServer starts an in-process daemon on a loopback listener.
func embedServer(machineName string) (string, *server.Server, error) {
	m, err := machineByName(machineName)
	if err != nil {
		return "", nil, err
	}
	srv, err := server.New(server.Config{Machine: m})
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	go func() { _ = http.Serve(ln, srv.Handler()) }()
	return "http://" + ln.Addr().String(), srv, nil
}

// metricValue extracts one un-labeled sample from a text metrics page.
func metricValue(page, name string) int64 {
	for _, line := range strings.Split(page, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err == nil {
				return int64(v)
			}
		}
	}
	return -1
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dopia-load: "+format+"\n", args...)
	os.Exit(1)
}
