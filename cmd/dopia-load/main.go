// Command dopia-load is the closed-loop load generator and correctness
// checker for dopia-serve. Each of -concurrency workers owns one tenant
// session, uploads the deterministic inputs of its assigned real
// workload (Polybench / SpMV / PageRank), and launches in a closed loop
// for -duration. Every response is verified BIT-IDENTICAL against a
// direct in-process sequential execution of the same kernel on the same
// inputs: a shared per-workload oracle replays the launch sequence
// through the interpreter once, memoizing each launch's output bytes,
// and every tenant compares its returned buffer bytes against the memo
// — so any cross-tenant leak, cache corruption, or nondeterministic
// sharding in the serving path fails the run.
//
// -binary switches the wire from HTTP/JSON to the length-prefixed
// binary protocol (one connection per worker, raw little-endian buffer
// payloads, no base64); results are verified the same way, so the run
// doubles as a cross-protocol conformance check.
//
// With -addr "" (the default) the generator embeds the server in
// process on a loopback listener — the zero-setup mode used to produce
// BENCH_4.json. Point -addr at a running dopia-serve to load a real
// daemon; exit status is non-zero on any mismatch, request failure, or
// contained panic reported by /metrics.
//
// With -cluster N the generator instead boots an in-process N-node
// cluster (router + members, real HTTP and gossip throughout) and
// drives the same verified load through the router. Every launch
// carries a generator-stamped idempotency key, so a launch retried
// across a node failover still applies exactly once — the local replay
// replica detects any double-apply bit-wise. -chaos injects a
// deterministic fault schedule (node kill, gossip partition, slow
// node, cache eviction) mid-run; the run fails if the router loses a
// session, a replica diverges from its primary, or any response
// mismatches the in-process reference.
package main

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dopia/internal/clc"
	"dopia/internal/cluster"
	"dopia/internal/core"
	"dopia/internal/experiments"
	"dopia/internal/interp"
	"dopia/internal/ml"
	"dopia/internal/online"
	"dopia/internal/server"
	"dopia/internal/sim"
	"dopia/internal/stats"
	"dopia/internal/workloads"
)

func main() {
	var (
		addr        = flag.String("addr", "", "daemon address (host:port); empty = embed the server in-process")
		machineName = flag.String("machine", "Kaveri", "machine model for the embedded server")
		concurrency = flag.Int("concurrency", 8, "closed-loop workers (one session each)")
		duration    = flag.Duration("duration", 10*time.Second, "load duration")
		size        = flag.Int("n", 256, "problem size per workload")
		wgSize      = flag.Int("wg", 64, "work-group size")
		mix         = flag.String("mix", "GESUMMV,ATAX1,BICG1,MVT1,SpMV,PageRank", "comma-separated workload mix")
		deadlineMS  = flag.Int64("deadline-ms", 0, "per-launch deadline (0 = server default)")
		out         = flag.String("out", "", "write the JSON report here (e.g. BENCH_4.json)")
		clusterN    = flag.Int("cluster", 0, "boot an in-process N-node cluster and load it through the router")
		chaosSpec   = flag.String("chaos", "", "fault schedule for -cluster members, e.g. kill:n1@3s (see dopia-router)")
		binaryMode  = flag.Bool("binary", false, "drive the binary wire protocol (one connection per worker) instead of HTTP/JSON")

		mixSchedule = flag.String("mix-schedule", "",
			"piecewise drifting mix: name@offsetMS segments, e.g. poly@0,spmv@2000 "+
				"(aliases poly/spmv; join explicit names with +). Tenants keep their sessions across shifts.")
		trainLimit = flag.Int("train", 0,
			"train a local model on N synthetic workloads: it boots the embedded server and is the frozen "+
				"baseline of the decision-quality trace (0 = off)")
		modelFamily = flag.String("model", "DT", "model family for -train: LIN, SVR, DT, RF")
		onlineOn    = flag.Bool("online", false, "enable the embedded server's closed-loop online learner")
		onlineEps   = flag.Float64("online-epsilon", 0.05, "embedded learner exploration rate")
		onlineEvery = flag.Int("online-retrain-every", 8, "embedded learner retrain cadence (new-signature launches)")
	)
	flag.Parse()

	if *chaosSpec != "" && *clusterN <= 0 {
		fail("-chaos needs -cluster members to inject into")
	}
	if *clusterN > 0 && *addr != "" {
		fail("-cluster and -addr are mutually exclusive")
	}
	if *binaryMode && *clusterN > 0 {
		fail("-binary loads a daemon directly; the router speaks HTTP/JSON only")
	}
	if *onlineOn && (*clusterN > 0 || *addr != "") {
		fail("-online configures the embedded server; point -addr at a dopia-serve -online daemon instead")
	}

	machine, err := machineByName(*machineName)
	if err != nil {
		fail("%v", err)
	}

	// -train builds the same deterministic model dopia-serve -train N
	// -model F would: it boots the embedded server and anchors the
	// frozen-baseline side of the decision-quality trace.
	var localModel ml.Model
	if *trainLimit > 0 {
		var err error
		localModel, err = trainLocalModel(machine, *modelFamily, *trainLimit)
		if err != nil {
			fail("train: %v", err)
		}
	}

	base := *addr
	var embedded *server.Server
	var mixed *server.MixedServer
	var ring *cluster.Local
	if *clusterN > 0 {
		ring, err = cluster.StartLocal(cluster.LocalConfig{
			Nodes:  *clusterN,
			Server: server.Config{Machine: machine},
			Gossip: cluster.GossipConfig{Interval: 50 * time.Millisecond, Seed: 1},
			Router: cluster.RouterConfig{JanitorInterval: 50 * time.Millisecond},
		})
		if err != nil {
			fail("local cluster: %v", err)
		}
		base = ring.RouterURL
	} else if base == "" {
		scfg := server.Config{Machine: machine, Model: localModel}
		if *onlineOn {
			scfg.Online = &online.Config{Epsilon: *onlineEps, RetrainEvery: *onlineEvery}
		}
		base, embedded, mixed, err = embedServer(scfg)
		if err != nil {
			fail("embedded server: %v", err)
		}
	}
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	// The binary protocol shares the HTTP listener; dial the bare
	// host:port.
	binAddr := strings.TrimPrefix(base, "http://")

	schedule, err := buildSchedule(*mix, *mixSchedule, *size, *wgSize)
	if err != nil {
		fail("%v", err)
	}
	uniqueWL := schedule.unique()

	client := server.NewClient(base, &http.Client{Timeout: 10 * time.Minute})
	if ring != nil {
		// Failovers surface as retryable 503s when the whole ring is
		// momentarily degraded; deterministic backoff rides them out.
		client.SetRetryPolicy(&server.RetryPolicy{
			MaxAttempts: 8, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second, Seed: 1,
		})
	}
	if _, err := client.Healthz(); err != nil {
		fail("daemon at %s not healthy: %v", base, err)
	}

	if *chaosSpec != "" {
		events, err := cluster.ParseChaosSpec(*chaosSpec)
		if err != nil {
			fail("%v", err)
		}
		ctrl := cluster.NewChaosController(events, ring.Node, func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		})
		go func() { _ = ctrl.Run(context.Background()) }()
	}

	// Register every program in the mix up front (dedup makes this a
	// no-op for workloads sharing one source), and build one shared
	// reference oracle per workload.
	progIDs := make(map[string]string, len(uniqueWL))
	oracles := make(map[string]*refOracle, len(uniqueWL))
	for _, w := range uniqueWL {
		resp, err := client.Compile(w.Source)
		if err != nil {
			fail("compile %s: %v", w.Name, err)
		}
		progIDs[w.Name] = resp.ProgramID
		if _, ok := oracles[w.Name]; !ok {
			o, err := newRefOracle(w)
			if err != nil {
				fail("reference oracle %s: %v", w.Name, err)
			}
			oracles[w.Name] = o
		}
	}

	var (
		launches   atomic.Int64
		mismatches atomic.Int64
		reqErrors  atomic.Int64
		retries    atomic.Int64
		coalesced  atomic.Int64
		rungs      sync.Map // rung string -> *atomic.Int64
		latency    = stats.NewLatencyHistogram()
	)
	bumpRung := func(r string) {
		v, _ := rungs.LoadOrStore(r, new(atomic.Int64))
		v.(*atomic.Int64).Add(1)
	}

	protocol := "json"
	if *binaryMode {
		protocol = "binary"
	}
	fmt.Printf("dopia-load: %d workers, %v, mix=%s, protocol=%s, target %s\n",
		*concurrency, *duration, schedule, protocol, base)
	begin := time.Now()
	stop := begin.Add(*duration)
	traces := make([][]experiments.TraceStep, *concurrency)
	var wg sync.WaitGroup
	for i := 0; i < *concurrency; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			var bin *server.BinClient
			if *binaryMode {
				var err error
				bin, err = server.DialBin(binAddr, 10*time.Minute)
				if err != nil {
					reqErrors.Add(1)
					fmt.Fprintf(os.Stderr, "worker %d: dial: %v\n", worker, err)
					return
				}
				defer bin.Close()
			}
			// One session per worker for the whole run: when the mix
			// shifts, the tenant keeps its session (and its online model)
			// and its new workload's buffers join under a name prefix —
			// that continuity is what makes drift detectable per tenant.
			var sid string
			var err error
			if bin != nil {
				sid, err = bin.NewSession("")
			} else {
				sid, err = client.NewSession()
			}
			if err != nil {
				reqErrors.Add(1)
				fmt.Fprintf(os.Stderr, "worker %d: session: %v\n", worker, err)
				return
			}
			defer func() {
				if bin != nil {
					_ = bin.CloseSession(sid)
				} else {
					_ = client.CloseSession(sid)
				}
			}()
			tenants := map[string]*tenant{}
			tenantFor := func(w *workloads.Workload) (*tenant, error) {
				if tc, ok := tenants[w.Name]; ok {
					return tc, nil
				}
				tc, err := newTenant(client, bin, w, progIDs[w.Name], oracles[w.Name], *deadlineMS, sid)
				if err != nil {
					return nil, err
				}
				if ring != nil {
					// Stamp idempotency keys so a launch the router retries
					// across a failover applies exactly once end-to-end.
					tc.idemPrefix = "w" + strconv.Itoa(worker) + w.Name
				}
				tenants[w.Name] = tc
				return tc, nil
			}
			for time.Now().Before(stop) {
				w := schedule.at(time.Since(begin), worker)
				tc, err := tenantFor(w)
				if err != nil {
					reqErrors.Add(1)
					fmt.Fprintf(os.Stderr, "worker %d (%s): setup: %v\n", worker, w.Name, err)
					return
				}
				t0 := time.Now()
				res, mismatch, err := tc.launchOnce()
				if err != nil {
					var retryMS int64 = -1
					if apiErr, ok := err.(*server.APIError); ok && apiErr.IsRetryable() {
						retryMS = apiErr.RetryAfterMS
					} else if binErr, ok := err.(*server.BinError); ok && binErr.IsRetryable() {
						retryMS = binErr.RetryAfterMS
					}
					if retryMS >= 0 {
						retries.Add(1)
						time.Sleep(time.Duration(retryMS) * time.Millisecond)
						continue
					}
					reqErrors.Add(1)
					fmt.Fprintf(os.Stderr, "worker %d (%s): launch: %v\n", worker, w.Name, err)
					return
				}
				latency.Record(time.Since(t0).Seconds())
				launches.Add(1)
				bumpRung(res.rung)
				if res.coalesced {
					coalesced.Add(1)
				}
				step := experiments.TraceStep{Workload: w.Name, Chosen: machine.AllResources()}
				if d := res.decision; d != nil {
					step.Chosen = sim.Config{CPUCores: d.CPUCores, GPUFrac: d.GPUFrac}
					step.Explored = d.Explored
				}
				traces[worker] = append(traces[worker], step)
				if mismatch != "" {
					mismatches.Add(1)
					fmt.Fprintf(os.Stderr, "worker %d (%s): MISMATCH: %s\n", worker, w.Name, mismatch)
					return
				}
			}
		}(i)
	}

	// Poll the observability surface while the storm runs: both
	// endpoints must stay live under full load.
	healthPolls := 0
	pollDone := make(chan struct{})
	go func() {
		tick := time.NewTicker(500 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-pollDone:
				return
			case <-tick.C:
				if _, err := client.Healthz(); err == nil {
					healthPolls++
				}
				_, _ = client.Metrics()
			}
		}
	}()
	wg.Wait()
	close(pollDone)

	page, err := client.Metrics()
	if err != nil {
		fail("final /metrics scrape: %v", err)
	}
	panics := metricValue(page, "dopia_panics_contained_total")
	timeouts := metricValue(page, "dopia_watchdog_timeouts_total")
	plain := metricValue(page, "dopia_fallback_plain_total")
	coalescedSrv := metricValue(page, "dopia_coalesced_launches_total")
	bytesIn := metricValue(page, "dopia_server_bytes_in_total")
	bytesOut := metricValue(page, "dopia_server_bytes_out_total")

	// In cluster mode the scrape hits the router, whose page carries the
	// ring-health counters instead of the single-daemon ones.
	var ringStats map[string]int64
	if ring != nil {
		ringStats = map[string]int64{}
		for _, name := range []string{
			"nodes", "nodes_healthy", "failovers_total", "migrations_total",
			"replica_rebuilds_total", "replica_divergence_total",
			"program_repushes_total", "node_deaths_total", "drains_total",
			"sessions_lost_total", "ring_down_total",
		} {
			ringStats[strings.TrimSuffix(name, "_total")] = metricValue(page, "dopia_router_"+name)
		}
	}

	// Decision-quality trace: score every launch's chosen DoP against
	// the exhaustive oracle and against what the frozen local model
	// would have picked (the BENCH_7 closed-loop-vs-frozen comparison).
	var quality *experiments.RegretReport
	if *trainLimit > 0 {
		var trace []experiments.TraceStep
		for _, ts := range traces {
			trace = append(trace, ts...)
		}
		if len(trace) > 0 {
			evals, err := core.EvaluateAll(machine, uniqueWL, 0)
			if err != nil {
				fail("oracle eval: %v", err)
			}
			quality, err = experiments.EvalTrace(machine, evals, localModel, trace)
			if err != nil {
				fail("quality trace: %v", err)
			}
			fmt.Printf("dopia-load: decision quality %.4f (frozen %.4f, gap closed %.2f%%, %d explored)\n",
				quality.MeanQuality, quality.FrozenQuality, 100*quality.GapClosed, quality.Explored)
		}
	}

	snap := latency.Snapshot()
	report := map[string]any{
		"bench":       "dopia-load",
		"machine":     *machineName,
		"concurrency": *concurrency,
		"duration_sec": func() float64 {
			return duration.Seconds()
		}(),
		"mix":            strings.Split(*mix, ","),
		"n":              *size,
		"wg":             *wgSize,
		"protocol":       protocol,
		"launches":       launches.Load(),
		"request_errors": reqErrors.Load(),
		"retries":        retries.Load(),
		"mismatches":     mismatches.Load(),
		"coalesced":      coalesced.Load(),
		"throughput_rps": float64(launches.Load()) / duration.Seconds(),
		"latency_ms": map[string]float64{
			"p50":  snap.P50() * 1e3,
			"p95":  snap.P95() * 1e3,
			"p99":  snap.P99() * 1e3,
			"mean": snap.Mean() * 1e3,
		},
		"rungs": func() map[string]int64 {
			out := map[string]int64{}
			rungs.Range(func(k, v any) bool {
				out[k.(string)] = v.(*atomic.Int64).Load()
				return true
			})
			return out
		}(),
		"server": map[string]int64{
			"panics_contained":   panics,
			"watchdog_timeouts":  timeouts,
			"fallback_plain":     plain,
			"coalesced_launches": coalescedSrv,
			"bytes_in":           bytesIn,
			"bytes_out":          bytesOut,
		},
		"health_polls_ok": healthPolls,
	}
	if *mixSchedule != "" {
		report["mix_schedule"] = *mixSchedule
	}
	if *onlineOn {
		report["online"] = map[string]int64{
			"swaps":        metricValue(page, "dopia_online_swaps_total"),
			"retrains":     metricValue(page, "dopia_online_retrains_total"),
			"explorations": metricValue(page, "dopia_online_explorations_total"),
			"drifts":       metricValue(page, "dopia_online_drift_detections_total"),
		}
	}
	if quality != nil {
		report["quality"] = quality
	}
	if ring != nil {
		report["cluster"] = ringStats
		report["chaos"] = *chaosSpec
		report["client_retries"] = client.Retries()
		delete(report, "server") // single-daemon counters live on the members
	}
	raw, _ := json.MarshalIndent(report, "", "  ")
	fmt.Println(string(raw))
	if *out != "" {
		if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
			fail("writing %s: %v", *out, err)
		}
		fmt.Printf("dopia-load: report written to %s\n", *out)
	}

	if embedded != nil {
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := embedded.Shutdown(sctx); err != nil {
			fail("drain: %v", err)
		}
		_ = mixed.Shutdown(sctx)
	}
	if ring != nil {
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := ring.Shutdown(sctx); err != nil {
			fail("cluster drain: %v", err)
		}
	}

	switch {
	case mismatches.Load() > 0:
		fail("FAIL: %d bit-exactness mismatches", mismatches.Load())
	case reqErrors.Load() > 0:
		fail("FAIL: %d request errors", reqErrors.Load())
	case panics > 0:
		fail("FAIL: server contained %d panics", panics)
	case launches.Load() == 0:
		fail("FAIL: no launches completed")
	case ring != nil && ringStats["sessions_lost"] != 0:
		fail("FAIL: router lost %d sessions", ringStats["sessions_lost"])
	case ring != nil && ringStats["replica_divergence"] != 0:
		fail("FAIL: %d replica divergences", ringStats["replica_divergence"])
	}
	if ring != nil {
		fmt.Printf("dopia-load: PASS — %d launches verified bit-identical across %d/%d healthy nodes "+
			"(%d failovers, %d migrations, 0 sessions lost, %d client retries)\n",
			launches.Load(), ringStats["nodes_healthy"], ringStats["nodes"],
			ringStats["failovers"], ringStats["migrations"], client.Retries())
		return
	}
	fmt.Printf("dopia-load: PASS — %d launches verified bit-identical (%d retries, %d health polls)\n",
		launches.Load(), retries.Load(), healthPolls)
}

// refOracle is the shared, memoized sequential reference for one
// workload. Every tenant of a workload replays the identical launch
// sequence over the identical deterministic inputs, so the expected
// output bytes of launch k are a pure function of (workload, k) — the
// oracle computes each launch's outputs once on its private in-process
// executor and serves every tenant from the memo, instead of each
// tenant re-running the whole sequential replay.
type refOracle struct {
	mu      sync.Mutex
	exec    *interp.Exec
	outputs map[string]*interp.Buffer // live local buffers, by wire name
	steps   []map[string][]byte       // per launch index: name -> raw LE bytes
}

func newRefOracle(w *workloads.Workload) (*refOracle, error) {
	inst, err := w.Setup()
	if err != nil {
		return nil, err
	}
	prog, err := clc.Compile(w.Source)
	if err != nil {
		return nil, err
	}
	k := prog.Kernel(w.Kernel)
	if k == nil {
		return nil, fmt.Errorf("kernel %q missing", w.Kernel)
	}
	ex, err := interp.NewExec(k)
	if err != nil {
		return nil, err
	}
	if err := ex.Bind(inst.Args...); err != nil {
		return nil, err
	}
	if err := ex.Launch(inst.ND); err != nil {
		return nil, err
	}
	o := &refOracle{exec: ex, outputs: map[string]*interp.Buffer{}}
	for _, i := range inst.OutputArgs {
		o.outputs[fmt.Sprintf("b%d", i)] = inst.Args[i].Buf
	}
	return o, nil
}

// get returns the expected output bytes after launch idx (0-based),
// extending the replay as needed. The returned maps are immutable.
func (o *refOracle) get(idx int) (map[string][]byte, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for len(o.steps) <= idx {
		if err := o.exec.Run(); err != nil {
			return nil, fmt.Errorf("reference replay step %d: %w", len(o.steps), err)
		}
		snap := make(map[string][]byte, len(o.outputs))
		for name, b := range o.outputs {
			var raw []byte
			if b.F32 != nil {
				raw = make([]byte, 4*len(b.F32))
				server.F32ToLE(raw, b.F32)
			} else {
				raw = make([]byte, 4*len(b.I32))
				server.I32ToLE(raw, b.I32)
			}
			snap[name] = raw
		}
		o.steps = append(o.steps, snap)
	}
	return o.steps[idx], nil
}

// tenant is one worker's view of one workload inside a shared session,
// verified against the shared oracle. A worker whose mix drifts holds
// several tenants over one session: each workload's buffers live under
// a "<workload>-" name prefix so they coexist.
type tenant struct {
	client     *server.Client    // JSON mode
	bin        *server.BinClient // binary mode
	sid        string
	prefix     string // buffer-name prefix inside the shared session
	progID     string
	kernel     string
	deadlineMS int64
	// idemPrefix, when set (cluster mode), stamps every launch with a
	// unique idempotency key so cross-failover retries dedupe.
	idemPrefix string
	idemSeq    int64

	oracle    *refOracle
	launchIdx int

	nd   interp.NDRange
	args []server.LaunchArg
	read []string // buffer names in the launch's Read set (prefixed)
}

// newTenant uploads the workload's deterministic inputs into the shared
// session sid — base64 over JSON, raw little-endian bytes over the
// binary protocol.
func newTenant(c *server.Client, bin *server.BinClient, w *workloads.Workload, progID string, oracle *refOracle, deadlineMS int64, sid string) (*tenant, error) {
	inst, err := w.Setup()
	if err != nil {
		return nil, err
	}
	prog, err := clc.Compile(w.Source)
	if err != nil {
		return nil, err
	}
	k := prog.Kernel(w.Kernel)
	if k == nil {
		return nil, fmt.Errorf("kernel %q missing", w.Kernel)
	}
	t := &tenant{
		client: c, bin: bin, sid: sid, prefix: w.Name + "-", progID: progID, kernel: w.Kernel,
		deadlineMS: deadlineMS, oracle: oracle, nd: inst.ND,
	}

	isOutput := map[int]bool{}
	for _, i := range inst.OutputArgs {
		isOutput[i] = true
	}
	for i, a := range inst.Args {
		if !a.IsBuf {
			param := k.Params[i]
			wa := server.LaunchArg{}
			if param.Type.Kind.IsFloat() {
				v := a.Val.F
				wa.Float = &v
			} else {
				v := a.Val.I
				wa.Int = &v
			}
			t.args = append(t.args, wa)
			continue
		}
		name := fmt.Sprintf("%sb%d", t.prefix, i)
		if err := t.uploadBuffer(name, a.Buf); err != nil {
			return nil, fmt.Errorf("arg %d: %w", i, err)
		}
		t.args = append(t.args, server.LaunchArg{Buf: name})
		if isOutput[i] {
			t.read = append(t.read, name)
		}
	}
	return t, nil
}

func (t *tenant) uploadBuffer(name string, b *interp.Buffer) error {
	if t.bin != nil {
		var raw []byte
		kind := byte('f')
		if b.F32 != nil {
			raw = make([]byte, 4*len(b.F32))
			server.F32ToLE(raw, b.F32)
		} else {
			kind = 'i'
			raw = make([]byte, 4*len(b.I32))
			server.I32ToLE(raw, b.I32)
		}
		return t.bin.CreateBufferRaw(t.sid, name, kind, raw)
	}
	req := &server.BufferRequest{Name: name}
	switch {
	case b.F32 != nil:
		req.Kind = "float32"
		req.F32B64 = server.EncodeF32(b.F32)
	case b.I32 != nil:
		req.Kind = "int32"
		req.I32B64 = server.EncodeI32(b.I32)
	default:
		return fmt.Errorf("unsupported buffer element type")
	}
	return t.client.CreateBuffer(t.sid, req)
}

// launchResult is the protocol-neutral slice of a launch outcome the
// load loop cares about.
type launchResult struct {
	rung      string
	coalesced bool
	decision  *server.DecisionInfo
}

// launchOnce fires one launch and verifies its outputs bit-identical
// against the shared oracle. mismatch is non-empty on a verification
// failure; err reports request failures (possibly retryable).
func (t *tenant) launchOnce() (res launchResult, mismatch string, err error) {
	var idem string
	if t.idemPrefix != "" {
		idem = t.idemPrefix + "-" + strconv.FormatInt(t.idemSeq, 10)
		t.idemSeq++
	}
	if t.bin != nil {
		resp, err := t.bin.Launch(&server.BinLaunch{
			SessionID: t.sid, ProgramID: t.progID, Kernel: t.kernel,
			Args:       t.args,
			Global:     t.nd.Global[:t.nd.Dims],
			Local:      t.nd.Local[:t.nd.Dims],
			Read:       t.read,
			DeadlineMS: uint32(t.deadlineMS),
			IdemKey:    idem,
		})
		if err != nil {
			return launchResult{}, "", err
		}
		want, err := t.oracle.get(t.launchIdx)
		if err != nil {
			return launchResult{}, "", err
		}
		t.launchIdx++
		got := map[string][]byte{}
		for _, bv := range resp.Bufs {
			got[bv.Name] = bv.Raw
		}
		for name, w := range want {
			g, ok := got[t.prefix+name]
			if !ok {
				return launchResult{}, fmt.Sprintf("response missing buffer %q", t.prefix+name), nil
			}
			if !bytes.Equal(g, w) {
				return launchResult{}, fmt.Sprintf("buffer %q differs from reference (rung %s, engine %s)",
					t.prefix+name, resp.Rung, resp.Engine), nil
			}
		}
		return launchResult{rung: resp.Rung, coalesced: resp.Coalesced, decision: resp.Decision}, "", nil
	}

	resp, err := t.client.Launch(&server.LaunchRequest{
		SessionID: t.sid, ProgramID: t.progID, Kernel: t.kernel,
		Args:       t.args,
		Global:     t.nd.Global[:t.nd.Dims],
		Local:      t.nd.Local[:t.nd.Dims],
		Read:       t.read,
		DeadlineMS: t.deadlineMS,
		IdemKey:    idem,
	})
	if err != nil {
		return launchResult{}, "", err
	}
	// Advance the oracle only after the server launch succeeded, so a
	// retried 429 doesn't desynchronize accumulating kernels.
	want, err := t.oracle.get(t.launchIdx)
	if err != nil {
		return launchResult{}, "", err
	}
	t.launchIdx++
	for name, w := range want {
		remote, ok := resp.Buffers[t.prefix+name]
		if !ok {
			return launchResult{}, fmt.Sprintf("response missing buffer %q", t.prefix+name), nil
		}
		b64 := remote.F32B64
		if b64 == "" {
			b64 = remote.I32B64
		}
		g, derr := base64.StdEncoding.DecodeString(b64)
		if derr != nil || !bytes.Equal(g, w) {
			return launchResult{}, fmt.Sprintf("buffer %q differs from reference (rung %s, engine %s)",
				t.prefix+name, resp.Rung, resp.Engine), nil
		}
	}
	return launchResult{rung: resp.Rung, coalesced: resp.Coalesced, decision: resp.Decision}, "", nil
}

// mixSched is the piecewise workload mix of a run: segments ordered by
// activation offset. With a single segment it reduces to the classic
// fixed -mix behavior.
type mixSched []mixSegment

type mixSegment struct {
	atMS  int64
	names []string
	wls   []*workloads.Workload
}

// mixAliases are the drifting-mix shorthands of the headline scenario:
// a Polybench-heavy phase and an irregular SpMV/PageRank-heavy phase.
var mixAliases = map[string]string{
	"poly": "GESUMMV+ATAX1+BICG1+MVT1",
	"spmv": "SpMV+PageRank",
}

// buildSchedule resolves -mix / -mix-schedule into a schedule. spec
// segments look like "poly@0,spmv@2000": alias-or-name@offsetMS, with
// explicit multi-workload segments joined by '+'.
func buildSchedule(mix, spec string, n, wg int) (mixSched, error) {
	all, err := workloads.RealWorkloads(n, wg)
	if err != nil {
		return nil, err
	}
	byName := map[string]*workloads.Workload{}
	var names []string
	for i, d := range workloads.RealDescs() {
		byName[d.Name] = all[i]
		names = append(names, d.Name)
	}
	resolve := func(joined string) ([]string, []*workloads.Workload, error) {
		var segNames []string
		var wls []*workloads.Workload
		for _, name := range strings.FieldsFunc(joined, func(r rune) bool { return r == '+' || r == ',' }) {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			w, ok := byName[name]
			if !ok {
				return nil, nil, fmt.Errorf("unknown workload %q; available: %s", name, strings.Join(names, ", "))
			}
			segNames = append(segNames, name)
			wls = append(wls, w)
		}
		if len(wls) == 0 {
			return nil, nil, fmt.Errorf("empty workload mix")
		}
		return segNames, wls, nil
	}

	if spec == "" {
		segNames, wls, err := resolve(mix)
		if err != nil {
			return nil, err
		}
		return mixSched{{names: segNames, wls: wls}}, nil
	}
	var sched mixSched
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		token, at, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("mix-schedule segment %q: want name@offsetMS", part)
		}
		ms, err := strconv.ParseInt(strings.TrimSpace(at), 10, 64)
		if err != nil || ms < 0 {
			return nil, fmt.Errorf("mix-schedule segment %q: bad offset %q", part, at)
		}
		if alias, ok := mixAliases[strings.ToLower(strings.TrimSpace(token))]; ok {
			token = alias
		}
		segNames, wls, err := resolve(token)
		if err != nil {
			return nil, err
		}
		sched = append(sched, mixSegment{atMS: ms, names: segNames, wls: wls})
	}
	if len(sched) == 0 {
		return nil, fmt.Errorf("empty -mix-schedule")
	}
	sort.Slice(sched, func(i, j int) bool { return sched[i].atMS < sched[j].atMS })
	if sched[0].atMS != 0 {
		return nil, fmt.Errorf("-mix-schedule must have a segment at offset 0 (first is at %dms)", sched[0].atMS)
	}
	return sched, nil
}

// at returns worker's workload under the segment active at elapsed.
func (s mixSched) at(elapsed time.Duration, worker int) *workloads.Workload {
	cur := s[0]
	el := elapsed.Milliseconds()
	for _, seg := range s[1:] {
		if el < seg.atMS {
			break
		}
		cur = seg
	}
	return cur.wls[worker%len(cur.wls)]
}

// unique lists each distinct workload once, in first-use order.
func (s mixSched) unique() []*workloads.Workload {
	seen := map[string]bool{}
	var out []*workloads.Workload
	for _, seg := range s {
		for _, w := range seg.wls {
			if !seen[w.Name] {
				seen[w.Name] = true
				out = append(out, w)
			}
		}
	}
	return out
}

func (s mixSched) String() string {
	var parts []string
	for _, seg := range s {
		p := strings.Join(seg.names, "+")
		if len(s) > 1 {
			p += fmt.Sprintf("@%dms", seg.atMS)
		}
		parts = append(parts, p)
	}
	return strings.Join(parts, ",")
}

// trainLocalModel mirrors dopia-serve's -train path exactly — same
// synthetic grid subsample, same trainer — so the generator-side frozen
// baseline is the very model an embedded or identically configured
// daemon serves with.
func trainLocalModel(m *sim.Machine, family string, limit int) (ml.Model, error) {
	trainer, err := core.TrainerByName(family)
	if err != nil {
		return nil, err
	}
	grid, err := workloads.SyntheticGrid()
	if err != nil {
		return nil, err
	}
	if limit < len(grid) {
		stride := len(grid) / limit
		var sub []*workloads.Workload
		for i := 0; i < len(grid) && len(sub) < limit; i += stride {
			sub = append(sub, grid[i])
		}
		grid = sub
	}
	t0 := time.Now()
	evals, err := core.EvaluateAll(m, grid, 0)
	if err != nil {
		return nil, err
	}
	model, err := trainer.Fit(core.BuildDataset(m, evals))
	if err != nil {
		return nil, err
	}
	fmt.Printf("dopia-load: trained %s on %d synthetic workloads in %v\n",
		model.Name(), len(grid), time.Since(t0).Round(time.Millisecond))
	return model, nil
}

func machineByName(name string) (*sim.Machine, error) {
	switch name {
	case "Kaveri", "kaveri":
		return sim.Kaveri(), nil
	case "Skylake", "skylake":
		return sim.Skylake(), nil
	}
	return nil, fmt.Errorf("unknown machine %q", name)
}

// embedServer starts an in-process daemon on a loopback listener. The
// mixed server sniffs each connection's first byte, so the same port
// serves both HTTP/JSON and the binary protocol.
func embedServer(cfg server.Config) (string, *server.Server, *server.MixedServer, error) {
	srv, err := server.New(cfg)
	if err != nil {
		return "", nil, nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, nil, err
	}
	ms := server.NewMixedServer(srv)
	go func() { _ = ms.Serve(ln) }()
	return "http://" + ln.Addr().String(), srv, ms, nil
}

// metricValue extracts one un-labeled sample from a text metrics page.
func metricValue(page, name string) int64 {
	for _, line := range strings.Split(page, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err == nil {
				return int64(v)
			}
		}
	}
	return -1
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dopia-load: "+format+"\n", args...)
	os.Exit(1)
}
