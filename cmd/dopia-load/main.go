// Command dopia-load is the closed-loop load generator and correctness
// checker for dopia-serve. Each of -concurrency workers owns one tenant
// session, uploads the deterministic inputs of its assigned real
// workload (Polybench / SpMV / PageRank), and launches in a closed loop
// for -duration. Every response is verified BIT-IDENTICAL against a
// direct in-process sequential execution of the same kernel on the same
// inputs: a shared per-workload oracle replays the launch sequence
// through the interpreter once, memoizing each launch's output bytes,
// and every tenant compares its returned buffer bytes against the memo
// — so any cross-tenant leak, cache corruption, or nondeterministic
// sharding in the serving path fails the run.
//
// -binary switches the wire from HTTP/JSON to the length-prefixed
// binary protocol (one connection per worker, raw little-endian buffer
// payloads, no base64); results are verified the same way, so the run
// doubles as a cross-protocol conformance check.
//
// With -addr "" (the default) the generator embeds the server in
// process on a loopback listener — the zero-setup mode used to produce
// BENCH_4.json. Point -addr at a running dopia-serve to load a real
// daemon; exit status is non-zero on any mismatch, request failure, or
// contained panic reported by /metrics.
//
// With -cluster N the generator instead boots an in-process N-node
// cluster (router + members, real HTTP and gossip throughout) and
// drives the same verified load through the router. Every launch
// carries a generator-stamped idempotency key, so a launch retried
// across a node failover still applies exactly once — the local replay
// replica detects any double-apply bit-wise. -chaos injects a
// deterministic fault schedule (node kill, gossip partition, slow
// node, cache eviction) mid-run; the run fails if the router loses a
// session, a replica diverges from its primary, or any response
// mismatches the in-process reference.
package main

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dopia/internal/clc"
	"dopia/internal/cluster"
	"dopia/internal/interp"
	"dopia/internal/server"
	"dopia/internal/sim"
	"dopia/internal/stats"
	"dopia/internal/workloads"
)

func main() {
	var (
		addr        = flag.String("addr", "", "daemon address (host:port); empty = embed the server in-process")
		machineName = flag.String("machine", "Kaveri", "machine model for the embedded server")
		concurrency = flag.Int("concurrency", 8, "closed-loop workers (one session each)")
		duration    = flag.Duration("duration", 10*time.Second, "load duration")
		size        = flag.Int("n", 256, "problem size per workload")
		wgSize      = flag.Int("wg", 64, "work-group size")
		mix         = flag.String("mix", "GESUMMV,ATAX1,BICG1,MVT1,SpMV,PageRank", "comma-separated workload mix")
		deadlineMS  = flag.Int64("deadline-ms", 0, "per-launch deadline (0 = server default)")
		out         = flag.String("out", "", "write the JSON report here (e.g. BENCH_4.json)")
		clusterN    = flag.Int("cluster", 0, "boot an in-process N-node cluster and load it through the router")
		chaosSpec   = flag.String("chaos", "", "fault schedule for -cluster members, e.g. kill:n1@3s (see dopia-router)")
		binaryMode  = flag.Bool("binary", false, "drive the binary wire protocol (one connection per worker) instead of HTTP/JSON")
	)
	flag.Parse()

	if *chaosSpec != "" && *clusterN <= 0 {
		fail("-chaos needs -cluster members to inject into")
	}
	if *clusterN > 0 && *addr != "" {
		fail("-cluster and -addr are mutually exclusive")
	}
	if *binaryMode && *clusterN > 0 {
		fail("-binary loads a daemon directly; the router speaks HTTP/JSON only")
	}

	base := *addr
	var embedded *server.Server
	var mixed *server.MixedServer
	var ring *cluster.Local
	if *clusterN > 0 {
		m, err := machineByName(*machineName)
		if err != nil {
			fail("%v", err)
		}
		ring, err = cluster.StartLocal(cluster.LocalConfig{
			Nodes:  *clusterN,
			Server: server.Config{Machine: m},
			Gossip: cluster.GossipConfig{Interval: 50 * time.Millisecond, Seed: 1},
			Router: cluster.RouterConfig{JanitorInterval: 50 * time.Millisecond},
		})
		if err != nil {
			fail("local cluster: %v", err)
		}
		base = ring.RouterURL
	} else if base == "" {
		var err error
		base, embedded, mixed, err = embedServer(*machineName)
		if err != nil {
			fail("embedded server: %v", err)
		}
	}
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	// The binary protocol shares the HTTP listener; dial the bare
	// host:port.
	binAddr := strings.TrimPrefix(base, "http://")

	mixWorkloads, err := pickMix(*mix, *size, *wgSize)
	if err != nil {
		fail("%v", err)
	}

	client := server.NewClient(base, &http.Client{Timeout: 10 * time.Minute})
	if ring != nil {
		// Failovers surface as retryable 503s when the whole ring is
		// momentarily degraded; deterministic backoff rides them out.
		client.SetRetryPolicy(&server.RetryPolicy{
			MaxAttempts: 8, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second, Seed: 1,
		})
	}
	if _, err := client.Healthz(); err != nil {
		fail("daemon at %s not healthy: %v", base, err)
	}

	if *chaosSpec != "" {
		events, err := cluster.ParseChaosSpec(*chaosSpec)
		if err != nil {
			fail("%v", err)
		}
		ctrl := cluster.NewChaosController(events, ring.Node, func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		})
		go func() { _ = ctrl.Run(context.Background()) }()
	}

	// Register every program in the mix up front (dedup makes this a
	// no-op for workloads sharing one source), and build one shared
	// reference oracle per workload.
	progIDs := make(map[string]string, len(mixWorkloads))
	oracles := make(map[string]*refOracle, len(mixWorkloads))
	for _, w := range mixWorkloads {
		resp, err := client.Compile(w.Source)
		if err != nil {
			fail("compile %s: %v", w.Name, err)
		}
		progIDs[w.Name] = resp.ProgramID
		if _, ok := oracles[w.Name]; !ok {
			o, err := newRefOracle(w)
			if err != nil {
				fail("reference oracle %s: %v", w.Name, err)
			}
			oracles[w.Name] = o
		}
	}

	var (
		launches   atomic.Int64
		mismatches atomic.Int64
		reqErrors  atomic.Int64
		retries    atomic.Int64
		coalesced  atomic.Int64
		rungs      sync.Map // rung string -> *atomic.Int64
		latency    = stats.NewLatencyHistogram()
	)
	bumpRung := func(r string) {
		v, _ := rungs.LoadOrStore(r, new(atomic.Int64))
		v.(*atomic.Int64).Add(1)
	}

	protocol := "json"
	if *binaryMode {
		protocol = "binary"
	}
	fmt.Printf("dopia-load: %d workers, %v, mix=%s, protocol=%s, target %s\n",
		*concurrency, *duration, *mix, protocol, base)
	stop := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for i := 0; i < *concurrency; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			w := mixWorkloads[worker%len(mixWorkloads)]
			var bin *server.BinClient
			if *binaryMode {
				var err error
				bin, err = server.DialBin(binAddr, 10*time.Minute)
				if err != nil {
					reqErrors.Add(1)
					fmt.Fprintf(os.Stderr, "worker %d (%s): dial: %v\n", worker, w.Name, err)
					return
				}
			}
			tc, err := newTenant(client, bin, w, progIDs[w.Name], oracles[w.Name], *deadlineMS)
			if err == nil && ring != nil {
				// Stamp idempotency keys so a launch the router retries
				// across a failover applies exactly once end-to-end.
				tc.idemPrefix = "w" + strconv.Itoa(worker)
			}
			if err != nil {
				if bin != nil {
					_ = bin.Close()
				}
				reqErrors.Add(1)
				fmt.Fprintf(os.Stderr, "worker %d (%s): setup: %v\n", worker, w.Name, err)
				return
			}
			defer tc.close()
			for time.Now().Before(stop) {
				t0 := time.Now()
				res, mismatch, err := tc.launchOnce()
				if err != nil {
					var retryMS int64 = -1
					if apiErr, ok := err.(*server.APIError); ok && apiErr.IsRetryable() {
						retryMS = apiErr.RetryAfterMS
					} else if binErr, ok := err.(*server.BinError); ok && binErr.IsRetryable() {
						retryMS = binErr.RetryAfterMS
					}
					if retryMS >= 0 {
						retries.Add(1)
						time.Sleep(time.Duration(retryMS) * time.Millisecond)
						continue
					}
					reqErrors.Add(1)
					fmt.Fprintf(os.Stderr, "worker %d (%s): launch: %v\n", worker, w.Name, err)
					return
				}
				latency.Record(time.Since(t0).Seconds())
				launches.Add(1)
				bumpRung(res.rung)
				if res.coalesced {
					coalesced.Add(1)
				}
				if mismatch != "" {
					mismatches.Add(1)
					fmt.Fprintf(os.Stderr, "worker %d (%s): MISMATCH: %s\n", worker, w.Name, mismatch)
					return
				}
			}
		}(i)
	}

	// Poll the observability surface while the storm runs: both
	// endpoints must stay live under full load.
	healthPolls := 0
	pollDone := make(chan struct{})
	go func() {
		tick := time.NewTicker(500 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-pollDone:
				return
			case <-tick.C:
				if _, err := client.Healthz(); err == nil {
					healthPolls++
				}
				_, _ = client.Metrics()
			}
		}
	}()
	wg.Wait()
	close(pollDone)

	page, err := client.Metrics()
	if err != nil {
		fail("final /metrics scrape: %v", err)
	}
	panics := metricValue(page, "dopia_panics_contained_total")
	timeouts := metricValue(page, "dopia_watchdog_timeouts_total")
	plain := metricValue(page, "dopia_fallback_plain_total")
	coalescedSrv := metricValue(page, "dopia_coalesced_launches_total")
	bytesIn := metricValue(page, "dopia_server_bytes_in_total")
	bytesOut := metricValue(page, "dopia_server_bytes_out_total")

	// In cluster mode the scrape hits the router, whose page carries the
	// ring-health counters instead of the single-daemon ones.
	var ringStats map[string]int64
	if ring != nil {
		ringStats = map[string]int64{}
		for _, name := range []string{
			"nodes", "nodes_healthy", "failovers_total", "migrations_total",
			"replica_rebuilds_total", "replica_divergence_total",
			"program_repushes_total", "node_deaths_total", "drains_total",
			"sessions_lost_total", "ring_down_total",
		} {
			ringStats[strings.TrimSuffix(name, "_total")] = metricValue(page, "dopia_router_"+name)
		}
	}

	snap := latency.Snapshot()
	report := map[string]any{
		"bench":       "dopia-load",
		"machine":     *machineName,
		"concurrency": *concurrency,
		"duration_sec": func() float64 {
			return duration.Seconds()
		}(),
		"mix":            strings.Split(*mix, ","),
		"n":              *size,
		"wg":             *wgSize,
		"protocol":       protocol,
		"launches":       launches.Load(),
		"request_errors": reqErrors.Load(),
		"retries":        retries.Load(),
		"mismatches":     mismatches.Load(),
		"coalesced":      coalesced.Load(),
		"throughput_rps": float64(launches.Load()) / duration.Seconds(),
		"latency_ms": map[string]float64{
			"p50":  snap.P50() * 1e3,
			"p95":  snap.P95() * 1e3,
			"p99":  snap.P99() * 1e3,
			"mean": snap.Mean() * 1e3,
		},
		"rungs": func() map[string]int64 {
			out := map[string]int64{}
			rungs.Range(func(k, v any) bool {
				out[k.(string)] = v.(*atomic.Int64).Load()
				return true
			})
			return out
		}(),
		"server": map[string]int64{
			"panics_contained":   panics,
			"watchdog_timeouts":  timeouts,
			"fallback_plain":     plain,
			"coalesced_launches": coalescedSrv,
			"bytes_in":           bytesIn,
			"bytes_out":          bytesOut,
		},
		"health_polls_ok": healthPolls,
	}
	if ring != nil {
		report["cluster"] = ringStats
		report["chaos"] = *chaosSpec
		report["client_retries"] = client.Retries()
		delete(report, "server") // single-daemon counters live on the members
	}
	raw, _ := json.MarshalIndent(report, "", "  ")
	fmt.Println(string(raw))
	if *out != "" {
		if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
			fail("writing %s: %v", *out, err)
		}
		fmt.Printf("dopia-load: report written to %s\n", *out)
	}

	if embedded != nil {
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := embedded.Shutdown(sctx); err != nil {
			fail("drain: %v", err)
		}
		_ = mixed.Shutdown(sctx)
	}
	if ring != nil {
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := ring.Shutdown(sctx); err != nil {
			fail("cluster drain: %v", err)
		}
	}

	switch {
	case mismatches.Load() > 0:
		fail("FAIL: %d bit-exactness mismatches", mismatches.Load())
	case reqErrors.Load() > 0:
		fail("FAIL: %d request errors", reqErrors.Load())
	case panics > 0:
		fail("FAIL: server contained %d panics", panics)
	case launches.Load() == 0:
		fail("FAIL: no launches completed")
	case ring != nil && ringStats["sessions_lost"] != 0:
		fail("FAIL: router lost %d sessions", ringStats["sessions_lost"])
	case ring != nil && ringStats["replica_divergence"] != 0:
		fail("FAIL: %d replica divergences", ringStats["replica_divergence"])
	}
	if ring != nil {
		fmt.Printf("dopia-load: PASS — %d launches verified bit-identical across %d/%d healthy nodes "+
			"(%d failovers, %d migrations, 0 sessions lost, %d client retries)\n",
			launches.Load(), ringStats["nodes_healthy"], ringStats["nodes"],
			ringStats["failovers"], ringStats["migrations"], client.Retries())
		return
	}
	fmt.Printf("dopia-load: PASS — %d launches verified bit-identical (%d retries, %d health polls)\n",
		launches.Load(), retries.Load(), healthPolls)
}

// refOracle is the shared, memoized sequential reference for one
// workload. Every tenant of a workload replays the identical launch
// sequence over the identical deterministic inputs, so the expected
// output bytes of launch k are a pure function of (workload, k) — the
// oracle computes each launch's outputs once on its private in-process
// executor and serves every tenant from the memo, instead of each
// tenant re-running the whole sequential replay.
type refOracle struct {
	mu      sync.Mutex
	exec    *interp.Exec
	outputs map[string]*interp.Buffer // live local buffers, by wire name
	steps   []map[string][]byte       // per launch index: name -> raw LE bytes
}

func newRefOracle(w *workloads.Workload) (*refOracle, error) {
	inst, err := w.Setup()
	if err != nil {
		return nil, err
	}
	prog, err := clc.Compile(w.Source)
	if err != nil {
		return nil, err
	}
	k := prog.Kernel(w.Kernel)
	if k == nil {
		return nil, fmt.Errorf("kernel %q missing", w.Kernel)
	}
	ex, err := interp.NewExec(k)
	if err != nil {
		return nil, err
	}
	if err := ex.Bind(inst.Args...); err != nil {
		return nil, err
	}
	if err := ex.Launch(inst.ND); err != nil {
		return nil, err
	}
	o := &refOracle{exec: ex, outputs: map[string]*interp.Buffer{}}
	for _, i := range inst.OutputArgs {
		o.outputs[fmt.Sprintf("b%d", i)] = inst.Args[i].Buf
	}
	return o, nil
}

// get returns the expected output bytes after launch idx (0-based),
// extending the replay as needed. The returned maps are immutable.
func (o *refOracle) get(idx int) (map[string][]byte, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for len(o.steps) <= idx {
		if err := o.exec.Run(); err != nil {
			return nil, fmt.Errorf("reference replay step %d: %w", len(o.steps), err)
		}
		snap := make(map[string][]byte, len(o.outputs))
		for name, b := range o.outputs {
			var raw []byte
			if b.F32 != nil {
				raw = make([]byte, 4*len(b.F32))
				server.F32ToLE(raw, b.F32)
			} else {
				raw = make([]byte, 4*len(b.I32))
				server.I32ToLE(raw, b.I32)
			}
			snap[name] = raw
		}
		o.steps = append(o.steps, snap)
	}
	return o.steps[idx], nil
}

// tenant is one worker's session, verified against the shared oracle.
type tenant struct {
	client     *server.Client    // JSON mode
	bin        *server.BinClient // binary mode
	sid        string
	progID     string
	kernel     string
	deadlineMS int64
	// idemPrefix, when set (cluster mode), stamps every launch with a
	// unique idempotency key so cross-failover retries dedupe.
	idemPrefix string
	idemSeq    int64

	oracle    *refOracle
	launchIdx int

	nd   interp.NDRange
	args []server.LaunchArg
	read []string // buffer names in the launch's Read set
}

// newTenant creates the session and uploads the workload's
// deterministic inputs — base64 over JSON, raw little-endian bytes over
// the binary protocol.
func newTenant(c *server.Client, bin *server.BinClient, w *workloads.Workload, progID string, oracle *refOracle, deadlineMS int64) (*tenant, error) {
	inst, err := w.Setup()
	if err != nil {
		return nil, err
	}
	prog, err := clc.Compile(w.Source)
	if err != nil {
		return nil, err
	}
	k := prog.Kernel(w.Kernel)
	if k == nil {
		return nil, fmt.Errorf("kernel %q missing", w.Kernel)
	}

	var sid string
	if bin != nil {
		sid, err = bin.NewSession("")
	} else {
		sid, err = c.NewSession()
	}
	if err != nil {
		return nil, err
	}
	t := &tenant{
		client: c, bin: bin, sid: sid, progID: progID, kernel: w.Kernel,
		deadlineMS: deadlineMS, oracle: oracle, nd: inst.ND,
	}

	isOutput := map[int]bool{}
	for _, i := range inst.OutputArgs {
		isOutput[i] = true
	}
	for i, a := range inst.Args {
		if !a.IsBuf {
			param := k.Params[i]
			wa := server.LaunchArg{}
			if param.Type.Kind.IsFloat() {
				v := a.Val.F
				wa.Float = &v
			} else {
				v := a.Val.I
				wa.Int = &v
			}
			t.args = append(t.args, wa)
			continue
		}
		name := fmt.Sprintf("b%d", i)
		if err := t.uploadBuffer(name, a.Buf); err != nil {
			return nil, fmt.Errorf("arg %d: %w", i, err)
		}
		t.args = append(t.args, server.LaunchArg{Buf: name})
		if isOutput[i] {
			t.read = append(t.read, name)
		}
	}
	return t, nil
}

func (t *tenant) uploadBuffer(name string, b *interp.Buffer) error {
	if t.bin != nil {
		var raw []byte
		kind := byte('f')
		if b.F32 != nil {
			raw = make([]byte, 4*len(b.F32))
			server.F32ToLE(raw, b.F32)
		} else {
			kind = 'i'
			raw = make([]byte, 4*len(b.I32))
			server.I32ToLE(raw, b.I32)
		}
		return t.bin.CreateBufferRaw(t.sid, name, kind, raw)
	}
	req := &server.BufferRequest{Name: name}
	switch {
	case b.F32 != nil:
		req.Kind = "float32"
		req.F32B64 = server.EncodeF32(b.F32)
	case b.I32 != nil:
		req.Kind = "int32"
		req.I32B64 = server.EncodeI32(b.I32)
	default:
		return fmt.Errorf("unsupported buffer element type")
	}
	return t.client.CreateBuffer(t.sid, req)
}

// launchResult is the protocol-neutral slice of a launch outcome the
// load loop cares about.
type launchResult struct {
	rung      string
	coalesced bool
}

// launchOnce fires one launch and verifies its outputs bit-identical
// against the shared oracle. mismatch is non-empty on a verification
// failure; err reports request failures (possibly retryable).
func (t *tenant) launchOnce() (res launchResult, mismatch string, err error) {
	var idem string
	if t.idemPrefix != "" {
		idem = t.idemPrefix + "-" + strconv.FormatInt(t.idemSeq, 10)
		t.idemSeq++
	}
	if t.bin != nil {
		resp, err := t.bin.Launch(&server.BinLaunch{
			SessionID: t.sid, ProgramID: t.progID, Kernel: t.kernel,
			Args:       t.args,
			Global:     t.nd.Global[:t.nd.Dims],
			Local:      t.nd.Local[:t.nd.Dims],
			Read:       t.read,
			DeadlineMS: uint32(t.deadlineMS),
			IdemKey:    idem,
		})
		if err != nil {
			return launchResult{}, "", err
		}
		want, err := t.oracle.get(t.launchIdx)
		if err != nil {
			return launchResult{}, "", err
		}
		t.launchIdx++
		got := map[string][]byte{}
		for _, bv := range resp.Bufs {
			got[bv.Name] = bv.Raw
		}
		for name, w := range want {
			g, ok := got[name]
			if !ok {
				return launchResult{}, fmt.Sprintf("response missing buffer %q", name), nil
			}
			if !bytes.Equal(g, w) {
				return launchResult{}, fmt.Sprintf("buffer %q differs from reference (rung %s, engine %s)",
					name, resp.Rung, resp.Engine), nil
			}
		}
		return launchResult{rung: resp.Rung, coalesced: resp.Coalesced}, "", nil
	}

	resp, err := t.client.Launch(&server.LaunchRequest{
		SessionID: t.sid, ProgramID: t.progID, Kernel: t.kernel,
		Args:       t.args,
		Global:     t.nd.Global[:t.nd.Dims],
		Local:      t.nd.Local[:t.nd.Dims],
		Read:       t.read,
		DeadlineMS: t.deadlineMS,
		IdemKey:    idem,
	})
	if err != nil {
		return launchResult{}, "", err
	}
	// Advance the oracle only after the server launch succeeded, so a
	// retried 429 doesn't desynchronize accumulating kernels.
	want, err := t.oracle.get(t.launchIdx)
	if err != nil {
		return launchResult{}, "", err
	}
	t.launchIdx++
	for name, w := range want {
		remote, ok := resp.Buffers[name]
		if !ok {
			return launchResult{}, fmt.Sprintf("response missing buffer %q", name), nil
		}
		b64 := remote.F32B64
		if b64 == "" {
			b64 = remote.I32B64
		}
		g, derr := base64.StdEncoding.DecodeString(b64)
		if derr != nil || !bytes.Equal(g, w) {
			return launchResult{}, fmt.Sprintf("buffer %q differs from reference (rung %s, engine %s)",
				name, resp.Rung, resp.Engine), nil
		}
	}
	return launchResult{rung: resp.Rung, coalesced: resp.Coalesced}, "", nil
}

func (t *tenant) close() {
	if t.bin != nil {
		_ = t.bin.CloseSession(t.sid)
		_ = t.bin.Close()
		return
	}
	_ = t.client.CloseSession(t.sid)
}

// pickMix resolves the workload names against the real-workload table.
func pickMix(mix string, n, wg int) ([]*workloads.Workload, error) {
	all, err := workloads.RealWorkloads(n, wg)
	if err != nil {
		return nil, err
	}
	byName := map[string]*workloads.Workload{}
	var names []string
	for i, d := range workloads.RealDescs() {
		byName[d.Name] = all[i]
		names = append(names, d.Name)
	}
	var out []*workloads.Workload
	for _, name := range strings.Split(mix, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		w, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown workload %q; available: %s", name, strings.Join(names, ", "))
		}
		out = append(out, w)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty workload mix")
	}
	return out, nil
}

func machineByName(name string) (*sim.Machine, error) {
	switch name {
	case "Kaveri", "kaveri":
		return sim.Kaveri(), nil
	case "Skylake", "skylake":
		return sim.Skylake(), nil
	}
	return nil, fmt.Errorf("unknown machine %q", name)
}

// embedServer starts an in-process daemon on a loopback listener. The
// mixed server sniffs each connection's first byte, so the same port
// serves both HTTP/JSON and the binary protocol.
func embedServer(machineName string) (string, *server.Server, *server.MixedServer, error) {
	m, err := machineByName(machineName)
	if err != nil {
		return "", nil, nil, err
	}
	srv, err := server.New(server.Config{Machine: m})
	if err != nil {
		return "", nil, nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, nil, err
	}
	ms := server.NewMixedServer(srv)
	go func() { _ = ms.Serve(ln) }()
	return "http://" + ln.Addr().String(), srv, ms, nil
}

// metricValue extracts one un-labeled sample from a text metrics page.
func metricValue(page, name string) int64 {
	for _, line := range strings.Split(page, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err == nil {
				return int64(v)
			}
		}
	}
	return -1
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dopia-load: "+format+"\n", args...)
	os.Exit(1)
}
