// Command dopia-cover enforces per-package coverage floors over a merged
// Go cover profile (as produced by `go test -coverprofile=... ./...`).
// It prints a per-package summary and exits non-zero when any matching
// package falls below its floor — the CI guard against coverage erosion.
//
//	go test -coverprofile=cover.out ./...
//	dopia-cover -profile cover.out -floor 55 -floors dopia/internal/analysis=55
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

// block identifies one profiled basic block uniquely; merged profiles may
// repeat a block (overlapping -coverpkg runs), in which case execution
// counts are OR-ed.
type block struct {
	file string
	span string // "start.col,end.col"
}

type pkgCov struct {
	stmts   int
	covered int
}

func main() {
	var (
		profile  = flag.String("profile", "cover.out", "merged cover profile path")
		floor    = flag.Float64("floor", 55, "default minimum statement coverage (percent)")
		floors   = flag.String("floors", "", "comma-separated per-package overrides: pkg=percent,...")
		match    = flag.String("match", "dopia/internal/", "only enforce packages with this import-path prefix")
		verbose  = flag.Bool("v", false, "also list packages outside the enforced prefix")
		failFast = flag.Bool("strict", false, "also fail when an override names a package absent from the profile")
	)
	flag.Parse()

	override := map[string]float64{}
	if *floors != "" {
		for _, kv := range strings.Split(*floors, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				fail("bad -floors entry %q (want pkg=percent)", kv)
			}
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				fail("bad -floors percent %q: %v", v, err)
			}
			override[k] = f
		}
	}

	f, err := os.Open(*profile)
	if err != nil {
		fail("%v", err)
	}
	defer f.Close()

	// profile line: <file>:<start>.<col>,<end>.<col> <numstmts> <count>
	stmtsOf := map[block]int{}
	hit := map[block]bool{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "mode:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			fail("malformed profile line: %q", line)
		}
		file, span, ok := strings.Cut(fields[0], ":")
		if !ok {
			fail("malformed location: %q", fields[0])
		}
		stmts, err := strconv.Atoi(fields[1])
		if err != nil {
			fail("malformed statement count: %q", line)
		}
		count, err := strconv.Atoi(fields[2])
		if err != nil {
			fail("malformed execution count: %q", line)
		}
		b := block{file: file, span: span}
		stmtsOf[b] = stmts
		if count > 0 {
			hit[b] = true
		}
	}
	if err := sc.Err(); err != nil {
		fail("%v", err)
	}
	if len(stmtsOf) == 0 {
		fail("profile %s contains no blocks", *profile)
	}

	pkgs := map[string]*pkgCov{}
	for b, stmts := range stmtsOf {
		pkg := path.Dir(b.file)
		pc := pkgs[pkg]
		if pc == nil {
			pc = &pkgCov{}
			pkgs[pkg] = pc
		}
		pc.stmts += stmts
		if hit[b] {
			pc.covered += stmts
		}
	}

	names := make([]string, 0, len(pkgs))
	for name := range pkgs {
		names = append(names, name)
	}
	sort.Strings(names)

	bad := 0
	for _, name := range names {
		pc := pkgs[name]
		pct := 100 * float64(pc.covered) / float64(pc.stmts)
		enforced := strings.HasPrefix(name, *match)
		if !enforced {
			if *verbose {
				fmt.Printf("  skip  %-40s %6.1f%%\n", name, pct)
			}
			continue
		}
		want := *floor
		if v, ok := override[name]; ok {
			want = v
		}
		status := "ok"
		if pct < want {
			status = "LOW"
			bad++
		}
		fmt.Printf("  %-4s  %-40s %6.1f%%  (floor %.0f%%)\n", status, name, pct, want)
	}
	if *failFast {
		for name := range override {
			if _, ok := pkgs[name]; !ok {
				fmt.Printf("  MISS  %-40s override names a package absent from the profile\n", name)
				bad++
			}
		}
	}
	if bad > 0 {
		fail("%d package(s) below their coverage floor", bad)
	}
	fmt.Printf("coverage floors hold for %d package(s) under %s\n", countEnforced(names, *match), *match)
}

func countEnforced(names []string, prefix string) int {
	n := 0
	for _, name := range names {
		if strings.HasPrefix(name, prefix) {
			n++
		}
	}
	return n
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dopia-cover: "+format+"\n", args...)
	os.Exit(1)
}
