// Command dopia-run executes one of the evaluation kernels under Dopia
// management and prints the framework's decision process: the extracted
// Table 1 features, the generated malleable GPU kernel, the model's
// configuration choice, and the resulting co-execution statistics compared
// to the CPU-only / GPU-only / ALL baselines and the exhaustive oracle.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dopia/internal/core"
	"dopia/internal/ml"
	"dopia/internal/sched"
	"dopia/internal/sim"
	"dopia/internal/stats"
	"dopia/internal/workloads"
)

func main() {
	var (
		machineName = flag.String("machine", "Kaveri", "machine model: any zoo machine (Kaveri, Skylake, BigLittle, DiscretePCIe, AppleM)")
		kernelName  = flag.String("kernel", "GESUMMV", "kernel: one of the 14 real workloads")
		n           = flag.Int("n", workloads.DefaultRealSize, "problem size")
		wg          = flag.Int("wg", 256, "work-group size (64 or 256)")
		trainLimit  = flag.Int("train", 120, "synthetic workloads used to train the model")
		modelName   = flag.String("model", "DT", "model family: LIN, SVR, DT, RF")
		showCode    = flag.Bool("show-malleable", false, "print the generated malleable GPU kernel")
		evalsPath   = flag.String("evals", "", "load a saved characterization instead of training fresh")
		modelFile   = flag.String("model-file", "", "load a model saved by dopia-train -save-model")
	)
	flag.Parse()

	m, err := sim.MachineByName(*machineName)
	if err != nil {
		fail("%v", err)
	}

	// Locate the requested workload.
	ws, err := workloads.RealWorkloads(*n, *wg)
	check(err)
	var w *workloads.Workload
	for i, d := range workloads.RealDescs() {
		if d.Name == *kernelName {
			w = ws[i]
		}
	}
	if w == nil {
		fail("unknown kernel %q; available: %v", *kernelName, kernelNames())
	}

	// Train (or load) the model.
	trainer, err := core.TrainerByName(*modelName)
	check(err)
	var model ml.Model
	var evals []*core.WorkloadEval
	if *modelFile != "" {
		model, err = ml.LoadModelFile(*modelFile)
		check(err)
		fmt.Printf("loaded %s model from %s\n", model.Name(), *modelFile)
	} else if *evalsPath != "" {
		evals, err = core.LoadEvals(*evalsPath, m.Name)
		check(err)
		fmt.Printf("loaded %d workload characterizations from %s\n", len(evals), *evalsPath)
	} else {
		grid, err := workloads.SyntheticGrid()
		check(err)
		if *trainLimit > 0 && *trainLimit < len(grid) {
			stride := len(grid) / *trainLimit
			var sub []*workloads.Workload
			for i := 0; i < len(grid) && len(sub) < *trainLimit; i += stride {
				sub = append(sub, grid[i])
			}
			grid = sub
		}
		fmt.Printf("training %s on %d synthetic workloads...\n", trainer.Name(), len(grid))
		t0 := time.Now()
		evals, err = core.EvaluateAll(m, grid, 0)
		check(err)
		fmt.Printf("characterization took %v\n", time.Since(t0).Round(time.Millisecond))
	}
	if model == nil {
		model, err = trainer.Fit(core.BuildDataset(m, evals))
		check(err)
	}

	fw := core.New(m, model)
	k, err := w.CompileKernel()
	check(err)

	// Compile-time stage.
	res, err := fw.Analysis(k)
	check(err)
	fmt.Printf("\nkernel %s on %s:\n", w.Name, m.Name)
	fmt.Printf("  static features: const=%d cont=%d stride=%d random=%d arith_int=%d arith_float=%d\n",
		res.MemConstant, res.MemContinuous, res.MemStride, res.MemRandom,
		res.ArithInt, res.ArithFloat)
	mall, err := fw.Malleable(k, w.WorkDim)
	check(err)
	if *showCode {
		fmt.Printf("\nmalleable GPU kernel:\n%s\n", mall.Source)
	}

	// Dopia-managed execution.
	inst, err := w.Setup()
	check(err)
	exec, err := fw.Execute(k, inst.Args, inst.ND)
	check(err)
	d := exec.Decision
	fmt.Printf("\nDopia decision: CPU %d cores, GPU %.1f%% (%d PEs/CU); model scored %d configs in %v\n",
		d.Config.CPUCores, d.Config.GPUFrac*100, m.ActivePEs(d.Config), d.Evaluated, d.InferTime)
	fmt.Printf("simulated execution: %.4g ms (CPU %d WGs, GPU %d WGs in %d chunks)\n",
		exec.Result.Time*1e3, exec.Result.WGsCPU, exec.Result.WGsGPU, exec.Result.GPUChunks)

	// Baselines and the oracle.
	ex, err := sched.NewExecutor(m, k, mall.Kernel)
	check(err)
	inst2, err := w.Setup()
	check(err)
	check(ex.Bind(inst2.Args...))
	check(ex.Launch(inst2.ND))
	bestTime := 0.0
	var best sim.Config
	for _, cfg := range m.Configs() {
		r, err := ex.Run(cfg, sched.RunOptions{Dist: sim.Dynamic})
		check(err)
		if bestTime == 0 || r.Time < bestTime {
			bestTime, best = r.Time, cfg
		}
	}
	var rows [][]string
	for _, row := range []struct {
		name string
		cfg  sim.Config
	}{
		{"CPU only", m.CPUOnly()},
		{"GPU only", m.GPUOnly()},
		{"ALL", m.AllResources()},
		{"Dopia", d.Config},
		{"Exhaustive", best},
	} {
		r, err := ex.Run(row.cfg, sched.RunOptions{Dist: sim.Dynamic})
		check(err)
		rows = append(rows, []string{
			row.name,
			fmt.Sprintf("cpu=%d gpu=%.0f%%", row.cfg.CPUCores, row.cfg.GPUFrac*100),
			stats.Fmt(r.Time * 1e3),
			stats.Fmt(bestTime / r.Time),
		})
	}
	fmt.Println()
	stats.RenderTable(os.Stdout,
		[]string{"configuration", "DoP", "time (ms)", "perf vs oracle"}, rows)
}

func kernelNames() []string {
	var out []string
	for _, d := range workloads.RealDescs() {
		out = append(out, d.Name)
	}
	return out
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
