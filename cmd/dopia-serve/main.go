// Command dopia-serve runs the Dopia-as-a-service daemon: an HTTP/JSON
// front end over the full management stack (program analysis, malleable
// transform, model-driven DoP selection, co-execution simulation, and
// the fail-open ladder), multi-tenant by construction. Sessions own
// their buffers and command queues; compiled artifacts — program dedup,
// interpreter compile cache, transform and prediction caches — are
// shared process-wide.
//
// The model is either trained at startup on the synthetic grid (-train)
// or loaded from a file produced by dopia-train -save-model
// (-model-file). With -train 0 and no model file the daemon serves with
// the ALL heuristic (no model), which still exercises co-execution.
//
// SIGINT/SIGTERM drain gracefully: the listener closes, admitted
// launches finish (bounded by their deadlines, then -drain-timeout),
// new work is refused with 503.
//
// With -cluster-id the daemon becomes a ring member: it mounts the
// gossip endpoint (POST /cluster/v1/gossip) and heartbeats its health,
// session count, and program-cache contents so a dopia-router can
// place sessions on it and detect its failure. Register it with
// `dopia-router -nodes <id>=<addr>`.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dopia/internal/cluster"
	"dopia/internal/core"
	"dopia/internal/ml"
	"dopia/internal/online"
	"dopia/internal/server"
	"dopia/internal/sim"
	"dopia/internal/workloads"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8034", "listen address")
		machineName  = flag.String("machine", "Kaveri", "machine model: any zoo machine (Kaveri, Skylake, BigLittle, DiscretePCIe, AppleM)")
		modelName    = flag.String("model", "DT", "model family trained at startup: LIN, SVR, DT, RF")
		trainLimit   = flag.Int("train", 48, "synthetic workloads used to train the model (0 = no model, ALL heuristic)")
		modelFile    = flag.String("model-file", "", "load a model saved by dopia-train -save-model instead of training")
		queueDepth   = flag.Int("queue-depth", 256, "admission queue capacity")
		workers      = flag.Int("workers", 0, "launch worker pool size (0 = GOMAXPROCS)")
		deadline     = flag.Duration("deadline", 30*time.Second, "default per-request deadline")
		maxDeadline  = flag.Duration("max-deadline", 5*time.Minute, "cap on client-requested deadlines")
		watchdog     = flag.Duration("watchdog", 0, "per-execution watchdog timeout (0 = framework default)")
		drainTimeout = flag.Duration("drain-timeout", 60*time.Second, "bound on graceful drain after SIGTERM")
		clusterID    = flag.String("cluster-id", "", "ring member ID; mounts the gossip endpoint for dopia-router")
		gossipEvery  = flag.Duration("gossip-interval", 100*time.Millisecond, "heartbeat gossip period (with -cluster-id)")
		pprofOn      = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")

		onlineOn     = flag.Bool("online", false, "enable the closed-loop online learner (per-tenant incremental models, hot swap)")
		onlinePolicy = flag.String("online-policy", online.PolicyEpsilon, "exploration policy: off, epsilon, or ucb")
		onlineEps    = flag.Float64("online-epsilon", 0.05, "exploration rate for eligible launches")
		onlineBudget = flag.Float64("online-regret-budget", 2.0, "per-tenant cumulative exploration-regret budget")
		onlineEvery  = flag.Int("online-retrain-every", 8, "retrain after this many new-signature launches since the last swap")
		onlineWindow = flag.Int("online-window", 128, "per-tenant sliding-window size in launches")
	)
	flag.Parse()

	m, err := sim.MachineByName(*machineName)
	if err != nil {
		log.Fatal(err)
	}

	model, err := loadModel(m, *modelName, *modelFile, *trainLimit)
	if err != nil {
		log.Fatal(err)
	}

	scfg := server.Config{
		Machine:         m,
		Model:           model,
		QueueDepth:      *queueDepth,
		Workers:         *workers,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		WatchdogTimeout: *watchdog,
	}
	if *onlineOn {
		scfg.Online = &online.Config{
			Policy:         *onlinePolicy,
			Epsilon:        *onlineEps,
			RegretBudget:   *onlineBudget,
			RetrainEvery:   *onlineEvery,
			WindowLaunches: *onlineWindow,
		}
		log.Printf("dopia-serve: online learner on (policy %s, epsilon %g, regret budget %g)",
			*onlinePolicy, *onlineEps, *onlineBudget)
	}
	srv, err := server.New(scfg)
	if err != nil {
		log.Fatal(err)
	}

	handler := srv.Handler()
	var agent *cluster.Agent
	if *clusterID != "" || *pprofOn {
		mux := http.NewServeMux()
		if *clusterID != "" {
			agent = cluster.NewAgent(*clusterID, "http://"+*addr,
				cluster.GossipConfig{Interval: *gossipEvery},
				func() (bool, int, []string) {
					return srv.Ready(), srv.SessionCount(), srv.ProgramIDs()
				})
			mux.HandleFunc("POST /cluster/v1/gossip", agent.Handler())
			agent.Start()
			log.Printf("dopia-serve: cluster member %q, gossiping every %v", *clusterID, *gossipEvery)
		}
		if *pprofOn {
			mountPprof(mux)
			log.Printf("dopia-serve: pprof mounted at /debug/pprof/")
		}
		mux.Handle("/", handler)
		handler = mux
	}

	// One listener serves both protocols: the first byte of each
	// connection routes it to the binary handler or the HTTP server.
	ms := server.NewMixedServer(srv)
	ms.HTTPServer().Handler = handler
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("dopia-serve: listen: %v", err)
	}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("dopia-serve: listening on %s (HTTP/JSON + binary; machine %s, model %s)",
			*addr, m.Name, modelDesc(model))
		errCh <- ms.Serve(ln)
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("dopia-serve: %v received, draining (bound %v)...", s, *drainTimeout)
	case err := <-errCh:
		log.Fatalf("dopia-serve: listener failed: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Refuse new launches first — the gossip agent keeps heartbeating
	// through the drain, so the flipped ready bit spreads and the router
	// migrates this member's sessions away while admitted work finishes.
	drainErr := srv.Shutdown(ctx)
	if agent != nil {
		agent.Stop()
	}
	if err := ms.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("dopia-serve: shutdown: %v", err)
	}
	if drainErr != nil {
		log.Fatalf("dopia-serve: %v", drainErr)
	}
	log.Printf("dopia-serve: drained cleanly; final ladder: %s", srv.Framework().Stats.Snapshot())
}

// mountPprof registers the net/http/pprof handlers on mux — opt-in
// (behind -pprof) so the profiling surface is never exposed by default.
func mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// loadModel loads or trains the DoP-selection model. limit == 0 and no
// file means no model (the framework falls back to the ALL heuristic).
func loadModel(m *sim.Machine, family, file string, limit int) (ml.Model, error) {
	if file != "" {
		model, err := ml.LoadModelFile(file)
		if err != nil {
			return nil, err
		}
		log.Printf("dopia-serve: loaded %s model from %s", model.Name(), file)
		return model, nil
	}
	if limit <= 0 {
		log.Printf("dopia-serve: no model (ALL heuristic)")
		return nil, nil
	}
	trainer, err := core.TrainerByName(family)
	if err != nil {
		return nil, err
	}
	grid, err := workloads.SyntheticGrid()
	if err != nil {
		return nil, err
	}
	if limit < len(grid) {
		stride := len(grid) / limit
		var sub []*workloads.Workload
		for i := 0; i < len(grid) && len(sub) < limit; i += stride {
			sub = append(sub, grid[i])
		}
		grid = sub
	}
	log.Printf("dopia-serve: training %s on %d synthetic workloads...", trainer.Name(), len(grid))
	t0 := time.Now()
	evals, err := core.EvaluateAll(m, grid, 0)
	if err != nil {
		return nil, err
	}
	model, err := trainer.Fit(core.BuildDataset(m, evals))
	if err != nil {
		return nil, err
	}
	log.Printf("dopia-serve: trained in %v", time.Since(t0).Round(time.Millisecond))
	return model, nil
}

func modelDesc(model ml.Model) string {
	if model == nil {
		return "none/ALL"
	}
	return model.Name()
}
