// Command dopia-train generates Dopia's training data — the 1,224
// synthetic workloads of Table 4, each characterized across the machine's
// 44 degree-of-parallelism configurations — trains the four model families
// the paper compares, and reports their cross-validated selection quality
// and inference overheads (the data behind Figure 10).
//
// The characterization can be saved with -out and reused by dopia-bench
// via its -cache flag.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dopia/internal/core"
	"dopia/internal/experiments"
	"dopia/internal/ml"
	"dopia/internal/sim"
	"dopia/internal/stats"
	"dopia/internal/workloads"
)

func main() {
	var (
		machineName = flag.String("machine", "Kaveri", "machine model: any zoo machine (Kaveri, Skylake, BigLittle, DiscretePCIe, AppleM)")
		limit       = flag.Int("limit", 0, "limit the synthetic grid (0 = full 1,224)")
		parallel    = flag.Int("parallel", 0, "characterization workers (0 = GOMAXPROCS)")
		folds       = flag.Int("folds", 16, "cross-validation folds for the report")
		out         = flag.String("out", "", "write the characterization to this .json.gz file")
		saveModel   = flag.String("save-model", "", "write the trained DT model to this JSON file")
		machineFile = flag.String("machine-file", "", "load a custom machine description (JSON)")
		withReal    = flag.Bool("with-real", false, "also characterize the 14 real-world kernels")
		realN       = flag.Int("real-n", workloads.DefaultRealSize, "real-kernel problem size")
	)
	flag.Parse()

	var m *sim.Machine
	if *machineFile != "" {
		var err error
		m, err = sim.LoadMachine(*machineFile)
		check(err)
	} else {
		var err error
		m, err = sim.MachineByName(*machineName)
		check(err)
	}

	grid, err := workloads.SyntheticGrid()
	check(err)
	if *limit > 0 && *limit < len(grid) {
		stride := len(grid) / *limit
		var sub []*workloads.Workload
		for i := 0; i < len(grid) && len(sub) < *limit; i += stride {
			sub = append(sub, grid[i])
		}
		grid = sub
	}
	if *withReal {
		for _, wgsz := range []int{64, 256} {
			ws, err := workloads.RealWorkloads(*realN, wgsz)
			check(err)
			grid = append(grid, ws...)
		}
	}

	fmt.Printf("characterizing %d workloads x %d configurations on %s...\n",
		len(grid), len(m.Configs()), m.Name)
	start := time.Now()
	evals, err := core.EvaluateAll(m, grid, *parallel)
	check(err)
	fmt.Printf("done in %v (%d data points)\n",
		time.Since(start).Round(time.Millisecond), len(evals)*len(m.Configs()))

	if *out != "" {
		check(core.SaveEvals(*out, m.Name, evals))
		fmt.Printf("characterization written to %s\n", *out)
	}
	if *saveModel != "" {
		dt, err := ml.TreeTrainer{}.Fit(core.BuildDataset(m, evals))
		check(err)
		check(ml.SaveModelFile(*saveModel, dt))
		fmt.Printf("decision-tree model written to %s\n", *saveModel)
	}

	// Report model quality: k-fold CV over workloads (the paper's §9.2).
	k := *folds
	if k > len(evals) {
		k = len(evals) / 2
	}
	fmt.Printf("\nmodel comparison (%d-fold cross-validation over workloads):\n", k)
	var rows [][]string
	for _, tr := range core.Trainers() {
		sel, err := experiments.CrossValSelections(m, evals, tr, k, 1)
		check(err)
		b := stats.BoxOf(experiments.Perfs(sel))
		var infer float64
		for _, s := range sel {
			infer += s.InferSec
		}
		infer /= float64(len(sel))
		rows = append(rows, []string{
			tr.Name(),
			stats.Fmt(b.Mean), stats.Fmt(b.Median),
			fmt.Sprintf("%d/%d", experiments.ExactCount(sel), len(sel)),
			fmt.Sprintf("%.3f ms", infer*1e3),
		})
	}
	stats.RenderTable(os.Stdout,
		[]string{"model", "mean perf", "median perf", "exact best", "inference (44 cfgs)"}, rows)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
