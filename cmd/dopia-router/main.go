// Command dopia-router runs the cluster front door: a stateless-ish
// routing tier that places tenant sessions on a ring of dopia-serve
// members by consistent hashing, gossips member health, replicates
// every session to a successor node, and fails sessions over — with
// idempotency keys making retried launches apply exactly once — when a
// member dies mid-launch. Clients speak the ordinary dopia-serve
// HTTP/JSON protocol to the router; the cluster is invisible to them
// except for surviving node failures.
//
// Two ways to form a ring:
//
//   - -local N boots N in-process member nodes on loopback listeners
//     (the zero-setup mode: `dopia-router -local 4` is a whole cluster).
//     -chaos injects a deterministic fault schedule against them.
//   - -nodes id=addr,... registers externally running dopia-serve
//     daemons started with -cluster-id, which mounts their gossip
//     endpoint.
//
// SIGINT/SIGTERM drain gracefully: the router listener closes, then
// local members (if any) drain their admitted launches.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dopia/internal/cluster"
	"dopia/internal/server"
	"dopia/internal/sim"
)

func main() {
	var (
		addr           = flag.String("addr", "127.0.0.1:8040", "router listen address")
		nodeSpec       = flag.String("nodes", "", "comma-separated id=addr members to register (daemons run dopia-serve -cluster-id <id>)")
		local          = flag.Int("local", 0, "boot N in-process member nodes instead of joining external ones")
		machineName    = flag.String("machine", "Kaveri", "machine model for -local members: Kaveri or Skylake")
		chaosSpec      = flag.String("chaos", "", "fault schedule against -local members, e.g. kill:n1@3s,slow:n2@1s:2s:30ms")
		vnodes         = flag.Int("vnodes", 64, "virtual nodes per ring member")
		gossipInterval = flag.Duration("gossip-interval", 100*time.Millisecond, "heartbeat gossip period")
		janitorEvery   = flag.Duration("janitor-interval", 100*time.Millisecond, "ring repair loop period")
		callTimeout    = flag.Duration("call-timeout", 15*time.Second, "per-request timeout on member calls")
		retryAfter     = flag.Duration("retry-after", time.Second, "Retry-After hint on ring-down 503s")
		drainTimeout   = flag.Duration("drain-timeout", 60*time.Second, "bound on graceful drain after SIGTERM")
		pprofOn        = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	if *local <= 0 && *nodeSpec == "" {
		log.Fatal("dopia-router: need members: -local N or -nodes id=addr,...")
	}
	if *chaosSpec != "" && *local <= 0 {
		log.Fatal("dopia-router: -chaos needs -local members to inject into")
	}

	router := cluster.NewRouter(cluster.RouterConfig{
		Vnodes:          *vnodes,
		CallTimeout:     *callTimeout,
		RetryAfter:      *retryAfter,
		JanitorInterval: *janitorEvery,
		Gossip:          cluster.GossipConfig{Interval: *gossipInterval},
	})

	members, err := bootLocal(*local, *machineName, *gossipInterval)
	if err != nil {
		log.Fatalf("dopia-router: %v", err)
	}
	for _, n := range members {
		if err := router.AddNode(n.ID, n.URL); err != nil {
			log.Fatalf("dopia-router: register %s: %v", n.ID, err)
		}
		log.Printf("dopia-router: member %s at %s (local)", n.ID, n.URL)
	}
	external, err := parseNodeSpec(*nodeSpec)
	if err != nil {
		log.Fatalf("dopia-router: %v", err)
	}
	for _, m := range external {
		if err := router.AddNode(m.id, m.addr); err != nil {
			log.Fatalf("dopia-router: register %s: %v", m.id, err)
		}
		log.Printf("dopia-router: member %s at %s", m.id, m.addr)
	}
	router.Start()

	if *chaosSpec != "" {
		events, err := cluster.ParseChaosSpec(*chaosSpec)
		if err != nil {
			log.Fatalf("dopia-router: %v", err)
		}
		lookup := func(id string) *cluster.Node {
			for _, n := range members {
				if n.ID == id {
					return n
				}
			}
			return nil
		}
		ctrl := cluster.NewChaosController(events, lookup, log.Printf)
		go func() { _ = ctrl.Run(context.Background()) }()
	}

	handler := router.Handler()
	if *pprofOn {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		log.Printf("dopia-router: pprof mounted at /debug/pprof/")
	}
	hs := &http.Server{Addr: *addr, Handler: handler}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("dopia-router: listening on http://%s (%d members, %d vnodes)",
			*addr, len(members)+len(external), *vnodes)
		errCh <- hs.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("dopia-router: %v received, draining (bound %v)...", s, *drainTimeout)
	case err := <-errCh:
		log.Fatalf("dopia-router: listener failed: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("dopia-router: http shutdown: %v", err)
	}
	router.Close()
	for _, n := range members {
		if err := n.Shutdown(ctx); err != nil {
			log.Printf("dopia-router: member %s drain: %v", n.ID, err)
		}
	}
	log.Printf("dopia-router: drained cleanly")
}

// bootLocal starts count in-process members ("n0".."n<count-1>") and
// joins them into one gossip mesh. Each gets a private copy of the
// machine model (identical parameters, independent object) and serves
// with the ALL heuristic — DoP choice never affects results, which are
// bit-exact by construction, so local members skip model training.
func bootLocal(count int, machineName string, gossipInterval time.Duration) ([]*cluster.Node, error) {
	if count <= 0 {
		return nil, nil
	}
	var base *sim.Machine
	switch machineName {
	case "Kaveri", "kaveri":
		base = sim.Kaveri()
	case "Skylake", "skylake":
		base = sim.Skylake()
	default:
		return nil, fmt.Errorf("unknown machine %q (Kaveri or Skylake)", machineName)
	}
	var members []*cluster.Node
	for i := 0; i < count; i++ {
		m, err := base.ToJSON().Build()
		if err != nil {
			return nil, err
		}
		n, err := cluster.StartNode(cluster.NodeConfig{
			ID:     fmt.Sprintf("n%d", i),
			Server: server.Config{Machine: m},
			Gossip: cluster.GossipConfig{Interval: gossipInterval, Seed: int64(i) + 1},
		})
		if err != nil {
			return nil, fmt.Errorf("member n%d: %w", i, err)
		}
		members = append(members, n)
	}
	peers := make([]string, 0, len(members))
	for _, n := range members {
		peers = append(peers, n.URL)
	}
	for _, n := range members {
		n.Join(peers)
	}
	return members, nil
}

type member struct{ id, addr string }

// parseNodeSpec parses "id=addr,id=addr" member lists.
func parseNodeSpec(spec string) ([]member, error) {
	var out []member
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("bad -nodes entry %q: want id=addr", part)
		}
		if !strings.HasPrefix(addr, "http://") && !strings.HasPrefix(addr, "https://") {
			addr = "http://" + addr
		}
		out = append(out, member{id: id, addr: addr})
	}
	return out, nil
}
