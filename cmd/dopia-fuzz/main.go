// Command dopia-fuzz drives the generative differential-conformance
// harness from the command line: it generates random well-typed kernels,
// runs each across the full configuration lattice ({closure, bytecode}
// engines × shard counts × ladder rungs × the dopiad round-trip), and
// reports any divergence. Divergent cases are shrunk automatically and
// dumped as JSON repros; -replay re-runs a dumped repro (or a whole
// directory of them).
//
// Typical runs:
//
//	dopia-fuzz -duration 2m                 # time-boxed fuzzing
//	dopia-fuzz -seed 42 -cases 500          # deterministic replay of a CI run
//	dopia-fuzz -replay crasher-....json     # re-run one dumped repro
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"dopia/internal/conformance"
	"dopia/internal/interp"
)

func main() {
	var (
		seed        = flag.Uint64("seed", 1, "base seed; case i derives its own seed from it")
		cases       = flag.Int("cases", 0, "number of cases to run (0: use -duration)")
		duration    = flag.Duration("duration", 0, "wall-clock bound (0 with -cases 0: 30s)")
		shards      = flag.String("shards", "", "comma-separated shard counts (default 1,3,GOMAXPROCS)")
		lanes       = flag.String("lanes", "", "comma-separated bytecode lane widths (default 1,4,8)")
		rungs       = flag.Bool("rungs", true, "run ladder-rung legs (managed / co-exec ALL / plain)")
		machines    = flag.String("machine", "", "comma-separated zoo machines for machine-lattice co-exec legs (\"all\" = every zoo machine, \"\" disables)")
		scheds      = flag.String("sched", "", "comma-separated schedulers for machine-lattice legs: alg1, static, dynamic, hguided, or \"all\" (default static,dynamic,hguided when -machine is set)")
		serving     = flag.Bool("serving", true, "run the dopiad round-trip leg via an embedded server")
		shrink      = flag.Bool("shrink", true, "shrink divergent cases before dumping")
		shrinkRuns  = flag.Int("shrink-runs", 300, "shrink budget (oracle re-runs) per divergence")
		crashers    = flag.String("crashers", conformance.CrashersDir(), "directory for repro dumps (\"\" disables)")
		corpus      = flag.String("corpus", "", "persist one generated .cl exemplar per feature signature here")
		maxCrashers = flag.Int("max-crashers", 5, "stop after this many divergent cases")
		replay      = flag.String("replay", "", "replay a crasher repro file or directory instead of fuzzing")
		quiet       = flag.Bool("q", false, "suppress per-progress output")
		opProfile   = flag.String("opprofile", "", "enable opcode n-gram profiling and write the histogram JSON (dopia-superopt input) to this file at exit")
	)
	flag.Parse()

	if *opProfile != "" {
		interp.EnableOpProfiling()
	}

	opts := conformance.Options{Rungs: *rungs}
	if *machines != "" {
		for _, f := range strings.Split(*machines, ",") {
			opts.Machines = append(opts.Machines, strings.TrimSpace(f))
		}
	}
	if *scheds != "" {
		for _, f := range strings.Split(*scheds, ",") {
			opts.Scheds = append(opts.Scheds, strings.TrimSpace(f))
		}
		if len(opts.Machines) == 0 {
			opts.Machines = []string{"all"}
		}
	}
	if *shards != "" {
		for _, f := range strings.Split(*shards, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n <= 0 {
				fail("bad -shards entry %q", f)
			}
			opts.Shards = append(opts.Shards, n)
		}
	}
	if *lanes != "" {
		for _, f := range strings.Split(*lanes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n <= 0 {
				fail("bad -lanes entry %q", f)
			}
			opts.Lanes = append(opts.Lanes, n)
		}
	}
	if *serving {
		env, err := conformance.NewServingEnv()
		if err != nil {
			fail("serving env: %v", err)
		}
		defer env.Close()
		opts.Serving = env
	}

	if *replay != "" {
		code := replayPath(*replay, opts)
		dumpOpProfile(*opProfile)
		os.Exit(code)
	}

	cfg := conformance.FuzzConfig{
		Seed:          *seed,
		Cases:         *cases,
		Duration:      *duration,
		Opts:          opts,
		Shrink:        *shrink,
		MaxShrinkRuns: *shrinkRuns,
		CrashersDir:   *crashers,
		CorpusDir:     *corpus,
		MaxCrashers:   *maxCrashers,
	}
	if cfg.Cases <= 0 && cfg.Duration <= 0 {
		cfg.Duration = 30 * time.Second
	}
	if !*quiet {
		cfg.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	res, err := conformance.Fuzz(cfg)
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("seed=%d cases=%d divergent=%d features=%d corpus-new=%d\n",
		*seed, res.Cases, res.Divergent, len(res.Features), res.CorpusNew)
	for _, d := range res.Divergences {
		fmt.Printf("divergence: %s\n", d)
	}
	for _, p := range res.Crashers {
		fmt.Printf("crasher: %s\n", p)
	}
	dumpOpProfile(*opProfile)
	if res.Divergent > 0 {
		os.Exit(1)
	}
}

// dumpOpProfile writes the opcode n-gram histograms gathered during the
// run ("" = profiling was not requested).
func dumpOpProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fail("%v", err)
	}
	defer f.Close()
	if err := interp.WriteOpProfile(f, 128); err != nil {
		fail("%v", err)
	}
}

// replayPath re-runs one crasher file, or every crasher in a directory,
// across the lattice. It returns the process exit code.
func replayPath(path string, opts conformance.Options) int {
	st, err := os.Stat(path)
	if err != nil {
		fail("%v", err)
	}
	var files []string
	if st.IsDir() {
		crs, err := conformance.LoadCrashers(path)
		if err != nil {
			fail("%v", err)
		}
		for name := range crs {
			files = append(files, filepath.Join(path, name))
		}
		if len(files) == 0 {
			fmt.Println("no crasher files")
			return 0
		}
	} else {
		files = []string{path}
	}
	code := 0
	for _, f := range files {
		cr, err := conformance.LoadCrasher(f)
		if err != nil {
			fail("%s: %v", f, err)
		}
		c, err := cr.Case()
		if err != nil {
			fail("%s: rebuild case: %v", f, err)
		}
		rep, err := conformance.RunCase(c, opts)
		if err != nil {
			fail("%s: %v", f, err)
		}
		if rep.OK() {
			fmt.Printf("%s: PASS (no divergence)\n", filepath.Base(f))
			continue
		}
		code = 1
		fmt.Printf("%s: FAIL\n", filepath.Base(f))
		for _, d := range rep.Divergences {
			fmt.Printf("  divergence: %s\n", d)
		}
	}
	return code
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dopia-fuzz: "+format+"\n", args...)
	os.Exit(2)
}
