__kernel void k(__global float* inA, __global float* outF, __global int* acc, int sI) {
    int gid = get_global_id(0);
    int lid = get_local_id(0);
    __local float lbuf[16];
    int t0 = ((((-sI) > (sI & gid)) ? sI : 9) << ((-gid) & 7));
    float f0 = sin(sqrt(0.5f));
    float f1 = (((sI | 3) < (sI >> (gid & 7))) ? (f0 + 0.25f) : (f0 / f0));
    for (int i0 = 0; i0 < sI; i0++) {
        t0 ^= (((lid - i0) > lid) ? i0 : (1 & gid));
    }
    f0 = (-(0.5f - inA[(((f1 < (((int)(f0) >= (5 % ((9 & 15) | 1))) ? inA[((t0 << (lid & 7))) & 63] : 0.5f)) ? sI : lid)) & 63]));
    atomic_min(acc, (int)((f0 + f0)));
    lbuf[lid] = inA[(abs(lid)) & 63];
    barrier(CLK_LOCAL_MEM_FENCE);
    outF[gid] = (lbuf[((lid + 2)) & 15] + (((float)(lid) + (((max(gid, 4) == (lid % ((sI & 15) | 1))) && ((((9 - t0) <= min(sI, sI)) ? 2 : 7) == (t0 | sI))) ? inA[((sI / ((7 & 15) | 1))) & 63] : inA[((sI % ((gid & 15) | 1))) & 63])) * (float)((gid | 5))));
}
