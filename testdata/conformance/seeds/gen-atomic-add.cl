__kernel void k(__global float* inA, __global int* inB, __global float* inC, __global float* outF, __global int* outI, __global int* acc, float sF) {
    int gid = get_global_id(0);
    int lid = get_local_id(0);
    int t0 = (int)(fmax(inC[((lid << (3 & 7))) & 63], sF));
    float f0 = (float)(min(t0, gid));
    float f1 = sqrt((3.0f + 0.25f));
    t0 += ((int)(f1) / (((1 - 4) & 15) | 1));
    outF[gid] = (outF[gid] * (float)(((1 | 0) * (((f0 / 3.0f) <= sF) ? gid : lid))));
    outI[gid] = ((((2.0f - 3.0f) != (3.0f + inC[(((((lid << (lid & 7)) <= (5 * t0)) || ((~lid) >= (~t0))) ? 4 : gid)) & 63])) && ((gid * t0) > min(inB[((0 % ((t0 & 15) | 1))) & 31], t0))) ? ((4 & gid) | (t0 - inB[((lid ^ lid)) & 31])) : (min(t0, gid) | (int)(f1)));
}
