__kernel void k(__global float* inA, __global float* outF, __global int* outI, float sF) {
    int gid = get_global_id(0);
    int lid = get_local_id(0);
    int t0 = (abs(gid) >> (abs(gid) & 7));
    float f0 = ((sF - 2.0f) - (inA[((lid >> (t0 & 7))) & 15] / 0.125f));
    float f1 = ((3.0f * 2.0f) + (-inA[((gid & 1)) & 15]));
    for (int i0 = 0; i0 < 5; i0++) {
        for (int i1 = 0; i1 < 5; i1++) {
            t0 += ((gid < (lid & t0)) ? max(9, i1) : 9);
            t0 ^= (((float)(lid) == (float)(i1)) ? (lid >> (lid & 7)) : (gid + i0));
        }
    }
    outF[gid] = (sin((f1 * inA[((gid | gid)) & 15])) + sF);
    outI[gid] = (((((((lid & gid) <= (int)(0.5f)) ? gid : gid) < (int)(1.0f)) || ((-gid) > (gid / ((gid & 15) | 1)))) ? (lid & t0) : (2 | gid)) * ((gid % ((gid & 15) | 1)) % ((1 & 15) | 1)));
}
