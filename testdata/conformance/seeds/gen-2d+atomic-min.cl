__kernel void k(__global float* inA, __global int* inB, __global int* inC, __global float* outF, __global int* acc) {
    int gx = get_global_id(0);
    int gy = get_global_id(1);
    int gid = (gy * 8) + gx;
    int lid = (get_local_id(1) * 4) + get_local_id(0);
    int t0 = ((((3.0f / 1.5f) >= inA[((lid * 4)) & 15]) ? inC[((gid % ((4 & 15) | 1))) & 127] : 1) | (4 | gid));
    int t1 = (int)((((lid >> (gid & 7)) > (lid + 6)) ? 2.0f : 0.25f));
    float f0 = ((float)(4) / (inA[(max(lid, inC[((t1 >> (0 & 7))) & 127])) & 15] * inA[((lid % ((1 & 15) | 1))) & 15]));
    atomic_min(acc, (int)((inA[(((!((6 >> (t0 & 7)) > (t1 * gid))) ? inC[((int)(3.0f)) & 127] : t0)) & 15] / inA[((int)(f0)) & 15])));
    outF[gid] = ((((lid > (~lid)) ? inA[((((((t0 != (0 | 4)) && ((t0 / ((5 & 15) | 1)) <= abs(7))) ? 0 : t0) != (gid | 1)) ? 3 : inB[(min(2, t0)) & 15])) & 15] : inA[((t0 | inB[((inB[((gid << (1 & 7))) & 15] * t0)) & 15])) & 15]) - (f0 + inA[((t1 << (0 & 7))) & 15])) * (((int)(f0) != max(8, 2)) ? floor(inA[((int)(f0)) & 15]) : fmax(0.25f, f0)));
}
