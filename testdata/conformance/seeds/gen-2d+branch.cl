__kernel void k(__global float* inA, __global float* outF, __global int* outI, int sI, float sF) {
    int gx = get_global_id(0);
    int gy = get_global_id(1);
    int gid = (gy * 16) + gx;
    int lid = (get_local_id(1) * 4) + get_local_id(0);
    int t0 = (int)(((cos(sF) >= 3.0f) ? 1.5f : 0.5f));
    float f0 = (float)((gid ^ sI));
    float f1 = ((float)(t0) * (3.0f * f0));
    if (sI < (3 | lid)) {
        if (!(t0 <= (~sI))) {
            t0 = (((((-inA[((sI & 0)) & 127]) == (0.25f - inA[((lid - sI)) & 127])) ? 3 : 7) >= (gid ^ lid)) ? (3 >> (gid & 7)) : (sI << (sI & 7)));
            f1 *= (f1 * fmax(0.25f, inA[(min(sI, 4)) & 127]));
        }
        t0 ^= ((t0 / ((sI & 15) | 1)) << (max(9, sI) & 7));
    }
    if (!((gid & 5) != (gid / ((lid & 15) | 1)))) {
        f0 = (float)(2);
    }
    f1 *= (-(((f1 / sF) > fmax(inA[((4 - 1)) & 127], f0)) ? 3.0f : 0.125f));
    outF[gid] = (((inA[((t0 | t0)) & 127] * f0) + (float)(7)) - cos((0.125f / 2.0f)));
    outI[gid] = (outI[gid] ^ (t0 & ((((int)(0.25f) > (lid / ((gid & 15) | 1))) || ((-sI) != abs(t0))) ? (3 << (0 & 7)) : gid)));
}
