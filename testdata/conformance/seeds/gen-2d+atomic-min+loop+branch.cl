__kernel void k(__global int* inA, __global float* outF, __global int* acc, float sF) {
    int gx = get_global_id(0);
    int gy = get_global_id(1);
    int gid = (gy * 8) + gx;
    int lid = (get_local_id(1) * 4) + get_local_id(0);
    int t0 = ((gid & inA[((inA[(abs(lid)) & 127] & inA[(abs(7)) & 127])) & 127]) / (((int)(sF) & 15) | 1));
    int t1 = (lid / (((int)(sF) & 15) | 1));
    float f0 = (((!((-inA[(t1) & 127]) != (6 % ((inA[(min(t1, t0)) & 127] & 15) | 1)))) ? sF : sF) / (sF + sF));
    float f1 = (-(float)(lid));
    for (int i0 = 0; i0 < 5; i0++) {
        if (!((9 | lid) < (lid % ((1 & 15) | 1)))) {
            f1 = (float)((i0 / ((4 & 15) | 1)));
        } else {
            f0 = (float)((int)(f1));
        }
    }
    if (!((inA[((t1 * 1)) & 127] >> (t1 & 7)) < (t0 & 1))) {
        if ((sF + f1) > (float)(t0)) {
            t0 += (int)((((sF / f1) == ((!((1.0f / 0.25f) < (((int)(0.5f) != lid) ? sF : f0))) ? f1 : f0)) ? f1 : f1));
        }
    } else {
        f1 = (fmax(sF, 1.0f) - f1);
    }
    f0 = fmax((sF / f1), sF);
    outF[gid] = (-(-((((1.0f / f0) >= fmin(0.5f, 0.5f)) && (1 <= (int)(f0))) ? sF : f1)));
}
