__kernel void k(__global float* inA, __global float* inB, __global float* outF, __global int* acc, int sI) {
    int gid = get_global_id(0);
    int lid = get_local_id(0);
    int t0 = (~max(lid, 0));
    float f0 = (-cos(2.0f));
    float f1 = cos((float)(lid));
    f1 += (sin(inB[((5 % ((0 & 15) | 1))) & 31]) / (float)(sI));
    for (int i0 = 0; i0 < 3; i0++) {
        f1 *= sin(fmax(0.125f, 2.0f));
        atomic_min(acc, ((int)(inA[((-gid)) & 15]) + min(i0, lid)));
    }
    if ((f0 / inA[((int)(f0)) & 15]) > fmin(f1, inA[((sI | gid)) & 15])) {
        f1 *= ((f1 / 2.0f) * (((int)(2.0f) == (t0 - sI)) ? inA[((gid | gid)) & 15] : 1.0f));
    } else {
        for (int i1 = 0; i1 < ((gid & 7) + 2); i1++) {
            f0 += ((inB[(i1) & 31] + inB[((int)(1.0f)) & 31]) / fabs(inB[(((((((((t0 | gid) > ((!(abs(gid) <= (i1 >> (4 & 7)))) ? sI : lid)) ? i1 : 9) < (1 - t0)) ? 7 : i1) < (lid - 1)) || ((t0 - 7) < (8 * t0))) ? i1 : sI)) & 31]));
        }
    }
    outF[gid] = (outF[gid] * sin(((-0.5f) / (float)(3))));
}
