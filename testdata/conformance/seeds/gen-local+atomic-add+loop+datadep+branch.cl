__kernel void k(__global float* inA, __global int* inB, __global float* inC, __global float* outF, __global int* acc) {
    int gid = get_global_id(0);
    int lid = get_local_id(0);
    __local float lbuf[4];
    int t0 = max((inB[((6 + 0)) & 15] | lid), (int)(0.25f));
    float f0 = ((inA[(((!((0.25f * 2.0f) != ((((lid % ((8 & 15) | 1)) == abs(1)) && (t0 < (int)(0.125f))) ? 0.125f : 2.0f))) ? lid : gid)) & 15] + 3.0f) + (((((inB[((int)(inA[(t0) & 15])) & 15] * 2) == (lid & lid)) ? 3.0f : inA[(0) & 15]) >= ((sin(2.0f) >= (-3.0f)) ? 0.125f : 1.0f)) ? 2.0f : 0.5f));
    atomic_inc(acc);
    if ((inC[((inB[((int)(f0)) & 15] / ((6 & 15) | 1))) & 63] * f0) > (1.0f + f0)) {
        if (abs(t0) < (t0 % ((gid & 15) | 1))) {
            f0 += inC[((((~gid) == min(lid, lid)) ? lid : inB[((lid & inB[(((((-3.0f) == (1.5f / 0.125f)) && ((int)(inA[((7 >> (2 & 7))) & 15]) > (lid ^ gid))) ? lid : gid)) & 15])) & 15])) & 63];
            f0 = ((((gid << (inB[(((((max(5, 8) != 8) ? f0 : inA[((int)(0.125f)) & 15]) < cos(f0)) ? t0 : lid)) & 15] & 7)) != (((inB[(max(lid, t0)) & 15] & inB[((inB[((inB[((((int)(0.5f) != (gid * gid)) ? lid : inB[((0 - gid)) & 15])) & 15] * gid)) & 15] << (1 & 7))) & 15]) == (lid / ((gid & 15) | 1))) ? 4 : lid)) || (inB[((-5)) & 15] > (int)(1.5f))) ? (1.5f / inA[(min(inB[((8 - lid)) & 15], 9)) & 15]) : (inC[((lid >> (t0 & 7))) & 63] - inC[(abs(6)) & 63]));
        } else {
            t0 = min(((4 == t0) ? 9 : t0), (t0 ^ t0));
        }
        t0 -= (int)(f0);
    } else {
        for (int i1 = 0; i1 < ((inB[((lid - inB[((lid + 4)) & 15])) & 15] & 7) + 1); i1++) {
            f0 += cos((inA[((i1 | 8)) & 15] + 0.125f));
            f0 = ((-inC[((int)(inA[((((((4 - i1) == (int)(0.25f)) ? 3.0f : 0.25f) >= (1.5f / f0)) ? 9 : 9)) & 15])) & 63]) + ((!(abs(1) < (i1 * 8))) ? 1.0f : f0));
        }
    }
    atomic_dec(acc);
    lbuf[lid] = (float)((8 / ((gid & 15) | 1)));
    barrier(CLK_LOCAL_MEM_FENCE);
    outF[gid] = (outF[gid] + (lbuf[((lid + 3)) & 3] + (float)((((lid ^ t0) <= 6) ? (lid << (t0 & 7)) : 3))));
}
