__kernel void revtile(__global float* a, __global float* b, int n) {
    __local float tile[64];
    int l = get_local_id(0);
    int i = get_global_id(0);
    tile[l] = a[i] * 1.5f;
    barrier(CLK_LOCAL_MEM_FENCE);
    b[i] = b[i] + tile[63 - l];
}
