__kernel void k(__global float* inA, __global float* outF, __global int* acc) {
    int gx = get_global_id(0);
    int gy = get_global_id(1);
    int gid = (gy * 16) + gx;
    int lid = (get_local_id(1) * 4) + get_local_id(0);
    int t0 = lid;
    int t1 = (abs(gid) | (((((int)(2.0f) <= (int)(inA[((lid ^ t0)) & 127])) ? gid : 9) > (3 + gid)) ? gid : t0));
    float f0 = (((6 - t1) >= (1 << (t1 & 7))) ? (inA[(((!(0.125f != ((lid > (t0 + 7)) ? 0.125f : 0.5f))) ? 3 : lid)) & 127] * inA[((int)(0.5f)) & 127]) : sin(2.0f));
    float f1 = ((((float)(t1) <= (((lid % ((gid & 15) | 1)) < (int)(f0)) ? 1.5f : 0.25f)) ? f0 : f0) + ((t1 >= t1) ? 1.0f : f0));
    if ((float)(5) >= (((((((t0 | 0) < (((~5) == (t0 | 5)) ? lid : lid)) ? gid : t0) <= (int)(0.5f)) ? 9 : 3) != (-5)) ? inA[(max(lid, lid)) & 127] : 0.25f)) {
        for (int i1 = 0; i1 < 2; i1++) {
            atomic_max(acc, ((t0 - 4) | (t0 - i1)));
            f0 = cos((inA[((((((0.125f * inA[((t0 - gid)) & 127]) == (((fabs(f0) == inA[(i1) & 127]) || ((-gid) <= (2 % ((i1 & 15) | 1)))) ? 0.25f : f1)) ? lid : gid) <= (int)(inA[((i1 - 7)) & 127])) ? i1 : lid)) & 127] - 2.0f));
        }
    } else {
        t0 += (max(t0, t0) % ((max(3, t1) & 15) | 1));
    }
    for (int i0 = 0; i0 < 4; i0++) {
        if ((t1 | 6) <= (((int)(f0) > (int)(inA[((t1 - i0)) & 127])) ? t0 : i0)) {
            atomic_max(acc, (~(gid | i0)));
            f1 *= (-(0.5f + 1.5f));
        } else {
            f1 *= 1.0f;
        }
    }
    outF[gid] = (outF[gid] + f0);
}
