__kernel void k(__global int* inA, __global int* inB, __global float* outF, float sF) {
    int gid = get_global_id(0);
    int lid = get_local_id(0);
    __local float lbuf[8];
    int t0 = ((gid & inA[((~lid)) & 15]) * (lid << (4 & 7)));
    int t1 = max(((sin(0.5f) != (sF / sF)) ? lid : t0), min(lid, t0));
    float f0 = (-fmax(sF, sF));
    for (int i0 = 0; i0 < 3; i0++) {
        if ((min(7, 4) < (1 >> (4 & 7))) && ((((inA[((7 / ((inA[(gid) & 15] & 15) | 1))) & 15] | 2) > (-t1)) ? f0 : 3.0f) < (-sF))) {
            t0 = ((5 << (4 & 7)) / ((abs(gid) & 15) | 1));
        } else {
            t1 = (~(gid % ((gid & 15) | 1)));
        }
        if ((1 >> (t0 & 7)) >= (7 | 6)) {
            t0 *= ((~t1) >> ((int)(f0) & 7));
        }
    }
    if ((gid << (4 & 7)) == (1 * inB[((2 ^ t1)) & 31])) {
        if (min(inB[((t0 << (inA[((int)(f0)) & 15] & 7))) & 31], gid) < (3 - t1)) {
            t0 += ((gid | 5) ^ (lid - lid));
        } else {
            f0 *= (((((int)(0.25f) <= (~gid)) && ((-6) <= min(9, lid))) ? sF : sF) * (0.25f - f0));
        }
        for (int i1 = 0; i1 < 3; i1++) {
            f0 = (-(f0 - f0));
            f0 += ((float)(t1) * (3.0f * f0));
        }
    }
    for (int i0 = 0; i0 < 4; i0++) {
        for (int i1 = 0; i1 < 3; i1++) {
            f0 = sqrt((float)(3));
            f0 = (float)(i0);
        }
    }
    lbuf[lid] = (fmax(3.0f, 0.25f) - (float)(9));
    barrier(CLK_LOCAL_MEM_FENCE);
    outF[gid] = (outF[gid] * (lbuf[((lid + 3)) & 7] + (((((7 >> (gid & 7)) < (int)(f0)) ? f0 : 0.5f) * (f0 + sF)) + sin((float)(lid)))));
}
