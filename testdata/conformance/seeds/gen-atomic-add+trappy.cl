__kernel void k(__global float* inA, __global float* outF, __global int* acc, int sI) {
    int gid = get_global_id(0);
    int lid = get_local_id(0);
    int t0 = gid;
    int t1 = 5;
    float f0 = ((3.0f + 1.5f) / (inA[((sI - 9)) & 15] + inA[(t1) & 15]));
    atomic_sub(acc, abs((t1 << (gid & 7))));
    outF[gid] = ((float)((gid & t1)) - ((((9 | lid) > max(7, 8)) ? f0 : inA[max(lid, 5)]) - cos(inA[(min(gid, 7)) & 15])));
}
