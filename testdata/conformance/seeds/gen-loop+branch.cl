__kernel void k(__global float* inA, __global float* inB, __global float* outF, int sI) {
    int gid = get_global_id(0);
    int lid = get_local_id(0);
    int t0 = ((9 >> (lid & 7)) & lid);
    int t1 = (abs(sI) & (~t0));
    float f0 = (float)(max(t0, t0));
    if ((int)(f0) >= (sI & t1)) {
        for (int i1 = 0; i1 < 5; i1++) {
            t0 += ((~t0) + (9 | 6));
            t0 += ((3 / ((6 & 15) | 1)) - (((-inB[((sI % ((i1 & 15) | 1))) & 31]) <= (2.0f + 1.5f)) ? 8 : i1));
        }
        if (((t1 - 3) == (sI >> (8 & 7))) || ((gid << (t0 & 7)) < (9 << (lid & 7)))) {
            f0 *= (((t1 % ((lid & 15) | 1)) <= sI) ? (f0 * inA[(((max(gid, 1) == (-t0)) ? t0 : 7)) & 15]) : (0.25f * f0));
        } else {
            f0 *= fmin(cos(f0), (f0 - 0.25f));
        }
    }
    for (int i0 = 0; i0 < sI; i0++) {
        for (int i1 = 0; i1 < 2; i1++) {
            f0 = sin(((abs(t0) == (int)(f0)) ? inA[((int)(f0)) & 15] : inA[(max(lid, 8)) & 15]));
        }
    }
    outF[gid] = (float)((9 * max(gid, sI)));
}
