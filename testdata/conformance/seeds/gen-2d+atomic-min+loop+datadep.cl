__kernel void k(__global int* inA, __global float* outF, __global int* outI, __global int* acc, int sI, float sF) {
    int gx = get_global_id(0);
    int gy = get_global_id(1);
    int gid = (gy * 12) + gx;
    int lid = (get_local_id(1) * 4) + get_local_id(0);
    int t0 = (((float)(lid) == ((sI <= (~7)) ? sF : 0.25f)) ? (lid / ((gid & 15) | 1)) : lid);
    float f0 = (float)((inA[((int)(sF)) & 63] % ((sI & 15) | 1)));
    float f1 = 1.0f;
    for (int i0 = 0; i0 < 6; i0++) {
        for (int i1 = 0; i1 < ((inA[((inA[((inA[((8 * i0)) & 63] % ((gid & 15) | 1))) & 63] >> (lid & 7))) & 63] & 7) + 1); i1++) {
            t0 += (t0 | i0);
        }
    }
    t0 ^= (int)(sF);
    outF[gid] = (f0 + ((((2.0f / f1) != (sF * sF)) ? f1 : f1) * (f0 * 0.125f)));
    outI[gid] = ((int)(f1) << ((((9 / ((t0 & 15) | 1)) != sI) ? max(sI, lid) : (~sI)) & 7));
}
