__kernel void k(__global float* inA, __global float* outF) {
    int gid = get_global_id(0);
    int lid = get_local_id(0);
    __local float lbuf[8];
    int t0 = gid;
    float f0 = fmin((1.5f + 1.5f), 3.0f);
    if ((0.125f / f0) != (1.0f + inA[7])) {
        for (int i1 = 0; i1 < ((gid & 7) + 2); i1++) {
            t0 = (int)((f0 - 2.0f));
            f0 *= cos((float)(7));
        }
    } else {
        for (int i1 = 0; i1 < 4; i1++) {
            f0 = (float)((t0 & lid));
            f0 = f0;
        }
    }
    lbuf[lid] = f0;
    barrier(CLK_LOCAL_MEM_FENCE);
    outF[gid] = (lbuf[((lid + 2)) & 7] + ((float)((t0 >> (t0 & 7))) + (float)((int)(0.25f))));
}
