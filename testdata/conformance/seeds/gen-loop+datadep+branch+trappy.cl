__kernel void k(__global float* inA, __global float* outF) {
    int gid = get_global_id(0);
    int lid = get_local_id(0);
    int t0 = 7;
    int t1 = (((7 << (gid & 7)) >= (5 ^ 3)) ? (t0 / 7) : (int)(0.5f));
    float f0 = fmin((0.5f + inA[((lid / t0)) & 15]), (((t1 * lid) < 5) ? 1.0f : inA[(abs(1)) & 15]));
    if (!((gid ^ lid) >= (int)(inA[(8 % ((t1 & 15) | 1))]))) {
        for (int i1 = 0; i1 < ((gid & 7) + 2); i1++) {
            f0 += (float)(min(lid, 0));
        }
    } else {
        for (int i1 = 0; i1 < 3; i1++) {
            f0 *= (-inA[(lid) & 15]);
            f0 = ((0.5f - inA[((7 / ((2 & 15) | 1))) & 15]) / (float)(t0));
        }
    }
    if (((2 / ((t0 & 15) | 1)) == (int)(f0)) || ((lid % ((9 & 15) | 1)) == (((gid + 8) <= (4 << (t1 & 7))) ? t1 : 8))) {
        for (int i1 = 0; i1 < 5; i1++) {
            f0 = (((lid == (~i1)) && ((t1 - 0) != (lid % ((0 & 15) | 1)))) ? cos(f0) : (float)(t1));
        }
    }
    for (int i0 = 0; i0 < 4; i0++) {
        for (int i1 = 0; i1 < 6; i1++) {
            t1 *= 0;
            t0 *= ((i0 & 9) * max(lid, i1));
        }
        for (int i1 = 0; i1 < 2; i1++) {
            t0 *= (((~8) <= (int)(inA[((i0 >> (t1 & 7))) & 15])) ? max(i0, 3) : t1);
        }
    }
    outF[gid] = (outF[gid] * sin(((-f0) / (f0 - 1.5f))));
}
