__kernel void k(__global float* inA, __global int* inB, __global float* outF, __global int* outI, __global int* acc, int sI) {
    int gx = get_global_id(0);
    int gy = get_global_id(1);
    int gid = (gy * 12) + gx;
    int lid = (get_local_id(1) * 4) + get_local_id(0);
    int t0 = inB[((~3)) & 15];
    int t1 = max((-inB[((sI ^ sI)) & 15]), ((t0 == (9 >> (t0 & 7))) ? 3 : 4));
    float f0 = ((-1.0f) / (((inB[(min(inB[((((sI >> (t1 & 7)) <= min(t1, inB[((inB[((int)(0.5f)) & 15] * t1)) & 15])) ? t1 : sI)) & 15], 6)) & 15] - inB[((int)(0.5f)) & 15]) == max(3, inB[((((t0 % ((lid & 15) | 1)) <= abs(1)) ? sI : lid)) & 15])) ? inA[(min(9, lid)) & 63] : inA[(7) & 63]));
    f0 = (-(float)(t0));
    outF[gid] = ((abs(inB[((t0 + t1)) & 15]) > t0) ? ((inA[((t0 ^ t0)) & 63] / 2.0f) + floor(0.25f)) : ((-inA[(((((sI >> (inB[(inB[((int)(inA[((t0 - sI)) & 63])) & 15]) & 15] & 7)) < (gid | 6)) && ((int)(inA[((t0 - 8)) & 63]) <= abs(inB[((sI >> (3 & 7))) & 15]))) ? 5 : lid)) & 63]) * inA[((5 >> (t0 & 7))) & 63]));
    outI[gid] = (abs((3 + sI)) * (int)((0.125f * 0.25f)));
}
