__kernel void k(__global float* inA, __global float* inB, __global float* inC, __global float* outF, __global int* acc) {
    int gid = get_global_id(0);
    int lid = get_local_id(0);
    __local float lbuf[16];
    int t0 = (-(gid | lid));
    int t1 = ((gid + 8) | abs(gid));
    float f0 = ((0.125f - 1.5f) / ((!((9 / ((4 & 15) | 1)) <= (gid ^ gid))) ? 3.0f : 0.25f));
    float f1 = fabs((f0 - 1.5f));
    atomic_min(acc, (int)(fmin(inC[((gid % ((5 & 15) | 1))) & 127], f0)));
    for (int i0 = 0; i0 < 6; i0++) {
        for (int i1 = 0; i1 < ((gid & 7) + 2); i1++) {
            t0 ^= (-(i1 * i0));
            t0 *= ((3 | 5) << ((-i1) & 7));
        }
    }
    lbuf[lid] = (float)(min(t0, 3));
    barrier(CLK_LOCAL_MEM_FENCE);
    outF[gid] = (lbuf[((lid + 3)) & 15] + (float)(((t0 / ((t0 & 15) | 1)) % ((t1 & 15) | 1))));
}
