__kernel void k(__global float* inA, __global float* outF, __global int* outI, __global int* acc, int sI, float sF) {
    int gid = get_global_id(0);
    int lid = get_local_id(0);
    int t0 = ((lid | lid) << (min(gid, gid) & 7));
    float f0 = fabs((0.25f * 1.0f));
    float f1 = (floor(inA[(gid) & 63]) / 2.0f);
    t0 = (~lid);
    atomic_min(acc, 2);
    f1 = (-floor(1.0f));
    outF[gid] = (outF[gid] * (-fabs((float)(0))));
    outI[gid] = (outI[gid] + (int)((float)(((((sI - lid) >= max(sI, 6)) && (t0 > min(5, lid))) ? sI : t0))));
}
