__kernel void k(__global float* inA, __global float* inB, __global float* inC, __global float* outF, int sI) {
    int gx = get_global_id(0);
    int gy = get_global_id(1);
    int gid = (gy * 8) + gx;
    int lid = (get_local_id(1) * 4) + get_local_id(0);
    int t0 = abs(gid);
    int t1 = (-(sI % ((lid & 15) | 1)));
    float f0 = sin(sin(1.5f));
    float f1 = 3.0f;
    for (int i0 = 0; i0 < sI; i0++) {
        t1 = abs((7 >> (i0 & 7)));
        t0 ^= ((gid >> (t0 & 7)) | 6);
    }
    for (int i0 = 0; i0 < 5; i0++) {
        for (int i1 = 0; i1 < 3; i1++) {
            f1 *= (cos(0.25f) * (-inA[((sI << (6 & 7))) & 15]));
        }
    }
    f1 *= (((8 << (9 & 7)) <= (3 ^ sI)) ? 3.0f : (f1 / inC[((lid * t0)) & 31]));
    outF[gid] = ((((((0.125f + 0.5f) >= (inA[((5 << (t1 & 7))) & 15] - f1)) && (((sI != (gid % ((gid & 15) | 1))) ? 7 : 1) >= min(4, t1))) ? f0 : f1) - ((((((((((((((0.125f - f0) < fmax(0.5f, inA[((int)(inB[(abs(lid)) & 15])) & 15])) || ((((inC[((gid + gid)) & 31] / f1) > inB[(gid) & 15]) ? inC[(0) & 31] : inB[(max(2, t1)) & 15]) < (-1.5f))) ? lid : sI) <= min(3, lid)) ? 0.5f : 1.5f) <= (f1 / inC[((((t0 % ((sI & 15) | 1)) != gid) ? lid : 0)) & 31])) && ((int)(1.5f) > (gid | 8))) ? sI : sI) < ((gid == (4 * t1)) ? t0 : sI)) ? f1 : 1.0f) >= (float)(5)) && (abs(2) < max(sI, 8))) ? f1 : f1)) / sqrt((float)(1)));
}
