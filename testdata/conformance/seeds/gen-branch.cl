__kernel void k(__global int* inA, __global float* inB, __global float* inC, __global float* outF, __global int* outI, int sI) {
    int gid = get_global_id(0);
    int lid = get_local_id(0);
    int t0 = gid;
    float f0 = ((((2 - sI) != (int)(1.0f)) ? 1.0f : inC[((int)(0.125f)) & 127]) + (inB[((-sI)) & 15] + 1.0f));
    float f1 = (fabs(inC[(abs(inA[(sI) & 127])) & 127]) * (f0 + f0));
    if (((((lid * 4) <= (sI * 7)) || ((3.0f - 1.0f) == ((!(3 == ((!(((!((4 ^ lid) > min(7, 2))) ? gid : inA[((8 >> (inA[(max(1, 3)) & 127] & 7))) & 127]) != lid)) ? t0 : t0))) ? 0.5f : f1))) ? gid : gid) > (((~inA[((t0 | 3)) & 127]) > (((int)(1.5f) >= (6 | sI)) ? inA[((inA[((sI >> (lid & 7))) & 127] % ((lid & 15) | 1))) & 127] : lid)) ? sI : lid)) {
        if (((int)(2.0f) >= (t0 * lid)) || (0 != (gid / ((t0 & 15) | 1)))) {
            t0 += max((-inA[(sI) & 127]), abs(7));
        }
    }
    outF[gid] = 1.5f;
    outI[gid] = (outI[gid] + min(((((f0 * 3.0f) > 3.0f) ? 3 : 1) / (((7 ^ 1) & 15) | 1)), ((((((float)(t0) <= (1.0f / inB[(inA[((gid << (sI & 7))) & 127]) & 15])) ? sI : gid) < (lid + t0)) ? 8 : inA[(((sI == (sI << (gid & 7))) ? inA[(abs(0)) & 127] : inA[((7 / ((inA[((lid >> (sI & 7))) & 127] & 15) | 1))) & 127])) & 127]) | max(3, 2))));
}
