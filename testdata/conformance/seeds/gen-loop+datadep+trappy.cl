__kernel void k(__global float* inA, __global float* outF, __global int* outI, int sI) {
    int gid = get_global_id(0);
    int lid = get_local_id(0);
    int t0 = ((sI ^ sI) + (-sI));
    int t1 = (8 / (-6));
    float f0 = ((t1 != (int)(inA[((int)(0.125f)) & 127])) ? 0.25f : (0.125f + 3.0f));
    for (int i0 = 0; i0 < ((gid & 7) + 2); i0++) {
        f0 += (float)(max(7, 5));
    }
    for (int i0 = 0; i0 < ((gid & 7) + 2); i0++) {
        t1 -= ((i0 | i0) % (((-gid) & 15) | 1));
    }
    f0 = ((1.5f / f0) + fmax(1.0f, f0));
    outF[gid] = f0;
    outI[gid] = ((((int)(2.0f) < abs(lid)) || ((((((t1 + 5) == (int)(0.125f)) ? 9 : t1) != (-t0)) ? t0 : t1) != (sI % 3))) ? lid : (min(0, 1) / ((min(5, t1) & 15) | 1)));
}
