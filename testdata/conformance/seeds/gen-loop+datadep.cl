__kernel void k(__global int* inA, __global int* inB, __global float* inC, __global float* outF) {
    int gid = get_global_id(0);
    int lid = get_local_id(0);
    int t0 = (((2.0f * inC[((((float)(5) > (1.5f * 1.0f)) ? inA[((int)(0.5f)) & 127] : 6)) & 31]) <= (((-gid) <= (int)(inC[((1 + lid)) & 31])) ? inC[((int)(0.125f)) & 31] : 0.25f)) ? (gid - inB[((((0.5f / 1.5f) < (0.5f * 2.0f)) ? 1 : lid)) & 31]) : (7 % ((gid & 15) | 1)));
    float f0 = (fabs(0.25f) * 1.0f);
    float f1 = (((((((abs(4) >= (5 & 1)) ? inA[((gid >> (t0 & 7))) & 127] : 3) <= min(5, 1)) || ((3 % ((gid & 15) | 1)) != (gid >> (t0 & 7)))) ? lid : 3) < (~t0)) ? ((abs(lid) <= (inA[((3 + 1)) & 127] | lid)) ? 0.5f : f0) : (inC[((-t0)) & 31] * f0));
    t0 *= (int)((inC[(max(t0, 8)) & 31] / inC[((3 % ((5 & 15) | 1))) & 31]));
    f0 = ((inC[(min(2, lid)) & 31] / inC[(((inB[(abs(t0)) & 31] != (gid - gid)) ? inB[(6) & 31] : lid)) & 31]) + (1.0f * 2.0f));
    for (int i0 = 0; i0 < 2; i0++) {
        for (int i1 = 0; i1 < ((gid & 7) + 2); i1++) {
            f0 += (-(-f0));
        }
    }
    outF[gid] = (outF[gid] + (float)(abs((3 >> (4 & 7)))));
}
