__kernel void gesummv(__global float* A, __global float* B, __global float* x, __global float* y, float alpha, float beta, int N) {
    int i = get_global_id(0);
    if (i < N) {
        float tmp = 0.0f;
        for (int j = 0; j < N; j++) { tmp += A[i * N + j] * x[j]; }
        y[i] = alpha * tmp;
    }
}
