__kernel void k(__global float* inA, __global float* outF, __global int* outI, int sI, float sF) {
    int gid = get_global_id(0);
    int lid = get_local_id(0);
    int t0 = ((5 & gid) - (sI * lid));
    int t1 = ((!((0.25f / sF) == sqrt(sF))) ? (8 + sI) : (lid - sI));
    float f0 = (inA[(t1) & 127] / (((~3) > (t0 ^ lid)) ? sF : 0.25f));
    float f1 = ((float)(sI) - (((sI + t0) > (((5 - 8) < (t0 | gid)) ? gid : t1)) ? inA[((sI & 0)) & 127] : 0.5f));
    if (((((f0 + inA[((2 >> (lid & 7))) & 127]) < (inA[((sI % ((4 & 15) | 1))) & 127] - f1)) ? lid : gid) == ((((-7) >= 2) && (max(t0, 0) < (int)(sF))) ? 3 : t1)) || ((1.5f + 0.25f) <= (float)(gid))) {
        for (int i1 = 0; i1 < 6; i1++) {
            f1 += (float)((((inA[(0) & 127] / 3.0f) >= (-0.125f)) ? gid : i1));
            t0 ^= ((1 - 8) | 7);
        }
        f0 = (((((t0 & lid) <= (t0 % ((2 & 15) | 1))) || ((((-gid) == (int)(f1)) ? sI : 4) < gid)) ? inA[((gid >> (8 & 7))) & 127] : 0.5f) / (f1 / inA[(min(2, sI)) & 127]));
    } else {
        if (((1.0f * 3.0f) != inA[((int)(0.25f)) & 127]) && (max(lid, sI) <= ((t1 != (lid & 8)) ? lid : t0))) {
            f1 += (float)((int)(f0));
            f0 *= sF;
        }
    }
    for (int i0 = 0; i0 < 2; i0++) {
        for (int i1 = 0; i1 < sI; i1++) {
            t1 ^= ((1 / ((i1 & 15) | 1)) * (int)(inA[((-8)) & 127]));
            t0 += (int)(fabs(inA[(5) & 127]));
        }
        if (((((8 > (int)(inA[(gid * t1)])) && ((int)(0.5f) < (3 ^ i0))) ? lid : 0) < (sI & gid)) && ((lid - 8) != (0 / ((t1 & 15) | 1)))) {
            f1 = ((-inA[((i0 / ((t0 & 15) | 1))) & 127]) - (inA[((gid / sI)) & 127] / 2.0f));
        } else {
            t1 = ((sI & lid) - (gid << (sI & 7)));
        }
    }
    outF[gid] = sin((fmin(sF, sF) - (inA[((gid % 5)) & 127] / inA[((sI << (gid & 7))) & 127])));
    outI[gid] = ((int)((inA[((sI + sI)) & 127] + inA[(t0 / 8)])) / ((t1 ^ t1) & min(t0, lid)));
}
