__kernel void k(__global float* inA, __global float* outF, __global int* outI) {
    int gid = get_global_id(0);
    int lid = get_local_id(0);
    int t0 = 0;
    int t1 = ((((inA[((gid / ((lid & 15) | 1))) & 31] - 1.5f) >= 0.25f) ? gid : lid) | (int)(0.25f));
    float f0 = ((0.5f + 1.0f) + sin(2.0f));
    float f1 = ((float)(0) + (inA[((6 / ((lid & 15) | 1))) & 31] * inA[((t1 / ((t1 & 15) | 1))) & 31]));
    for (int i0 = 0; i0 < 2; i0++) {
        if ((inA[((8 * t0)) & 31] * inA[(abs(7)) & 31]) > (2.0f * inA[((lid - 9)) & 31])) {
            f0 += (float)((gid - i0));
            t1 *= min((i0 ^ t1), ((gid < abs(t0)) ? gid : 8));
        } else {
            t0 = (t0 | t0);
        }
        for (int i1 = 0; i1 < ((gid & 7) + 2); i1++) {
            t1 ^= (((!((i1 & 4) >= (~i1))) ? 5 : 0) << (abs(t1) & 7));
        }
    }
    outF[gid] = inA[((((-0) >= (9 * 3)) ? t1 : gid)) & 31];
    outI[gid] = (outI[gid] + abs((((t0 & gid) >= t0) ? gid : (((int)(f1) <= 7) ? 0 : t0))));
}
