__kernel void k(__global int* inA, __global float* inB, __global int* inC, __global float* outF) {
    int gid = get_global_id(0);
    int lid = get_local_id(0);
    int t0 = (inC[(min(1, lid)) & 15] ^ gid);
    float f0 = ((inB[((((int)(inB[min(3, 4)]) > (int)(0.25f)) ? gid : gid)) & 31] - inB[(t0) & 31]) - 0.25f);
    f0 *= ((inB[((8 - inA[((t0 / ((1 & 15) | 1))) & 15])) & 31] + f0) - (float)(gid));
    t0 -= ((t0 ^ gid) | (lid - 1));
    outF[gid] = (outF[gid] * ((float)((5 + 9)) + ((-f0) + cos(inB[((t0 * 8)) & 31]))));
}
