__kernel void k(__global int* inA, __global int* inB, __global int* inC, __global float* outF, float sF) {
    int gid = get_global_id(0);
    int lid = get_local_id(0);
    __local float lbuf[8];
    int t0 = (-(((inB[((gid | lid)) & 15] + 8) != abs(lid)) ? 7 : gid));
    int t1 = ((lid + 6) / (((3 % ((gid & 15) | 1)) & 15) | 1));
    float f0 = 1.0f;
    float f1 = (f0 / (-f0));
    f0 *= (-(f1 + f1));
    lbuf[lid] = ((f0 / sF) * (f0 * f0));
    barrier(CLK_LOCAL_MEM_FENCE);
    outF[gid] = (outF[gid] * (lbuf[((lid + 1)) & 7] + sF));
}
