__kernel void k(__global float* inA, __global float* outF, __global int* acc, int sI) {
    int gx = get_global_id(0);
    int gy = get_global_id(1);
    int gid = (gy * 16) + gx;
    int lid = (get_local_id(1) * 4) + get_local_id(0);
    int t0 = gid;
    float f0 = ((float)(sI) / (float)(8));
    float f1 = (-fabs(inA[((int)(f0)) & 31]));
    if (((sI + 3) > min(5, 9)) && ((sI - 8) == ((((t0 ^ 0) <= ((((inA[(t0 - 7)] / f1) == fmax(0.125f, 2.0f)) && ((float)(lid) <= cos(f0))) ? sI : gid)) && ((5 | lid) != (((float)(4) == (0.5f * f1)) ? sI : 4))) ? 5 : lid))) {
        atomic_max(acc, ((lid >> (4 & 7)) / (t0 % ((lid & 15) | 1))));
    }
    if ((f0 >= (f1 + 3.0f)) || (max(lid, sI) == ((((int)(inA[((-t0)) & 31]) != (0 | sI)) || (sI < min(sI, sI))) ? 9 : lid))) {
        if ((sI < (int)(inA[((~lid)) & 31])) && ((1.5f + inA[(min(7, gid)) & 31]) != ((sqrt(0.25f) < (3.0f * 3.0f)) ? f0 : 1.0f))) {
            f0 += (float)(max(3, t0));
        }
        for (int i1 = 0; i1 < ((gid & 7) + 2); i1++) {
            atomic_max(acc, i1);
            t0 -= (int)((inA[((gid & t0)) & 31] + f1));
        }
    } else {
        t0 *= (~abs(sI));
    }
    outF[gid] = (outF[gid] * (float)(((0 | sI) + (sI - sI))));
}
