__kernel void k(__global float* inA, __global float* inB, __global float* outF, __global int* acc) {
    int gid = get_global_id(0);
    int lid = get_local_id(0);
    __local float lbuf[8];
    int t0 = lid;
    float f0 = ((float)(gid) / (0.25f - 0.125f));
    float f1 = (-(f0 * f0));
    for (int i0 = 0; i0 < 3; i0++) {
        f1 += inB[((-i0)) & 63];
        for (int i1 = 0; i1 < ((gid & 7) + 2); i1++) {
            t0 += ((~9) - (gid + gid));
            t0 -= (((int)(inB[(t0) & 63]) < (i0 | 8)) ? max(i1, 8) : abs(9));
        }
    }
    for (int i0 = 0; i0 < ((gid & 7) + 2); i0++) {
        if ((t0 >> (gid & 7)) <= (6 + t0)) {
            atomic_min(acc, 5);
            f0 = (float)(min(t0, 6));
        } else {
            t0 *= (max(3, t0) * (6 ^ lid));
        }
        for (int i1 = 0; i1 < ((gid & 7) + 2); i1++) {
            t0 -= 2;
            f1 += f1;
        }
    }
    lbuf[lid] = (float)(abs(6));
    barrier(CLK_LOCAL_MEM_FENCE);
    outF[gid] = (lbuf[((lid + 2)) & 7] + floor(((((t0 & 1) != abs(gid)) || ((int)(1.5f) != (~7))) ? (f0 + 0.25f) : (float)(t0))));
}
