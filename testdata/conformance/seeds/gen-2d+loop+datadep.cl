__kernel void k(__global int* inA, __global int* inB, __global float* outF, int sI, float sF) {
    int gx = get_global_id(0);
    int gy = get_global_id(1);
    int gid = (gy * 8) + gx;
    int lid = (get_local_id(1) * 4) + get_local_id(0);
    int t0 = ((((((6 & sI) >= (((lid ^ lid) == (4 ^ 6)) ? gid : 7)) ? sI : 5) < (int)(sF)) ? lid : sI) << (min(gid, 7) & 7));
    float f0 = sF;
    float f1 = ((min(gid, lid) != (sI * gid)) ? sqrt(0.5f) : (f0 / 1.5f));
    for (int i0 = 0; i0 < 3; i0++) {
        for (int i1 = 0; i1 < ((gid & 7) + 2); i1++) {
            t0 -= (int)((0.125f - 0.125f));
            t0 -= 1;
        }
    }
    outF[gid] = ((cos(0.25f) - (-f0)) * (f0 / ((!(abs(inB[((1 * gid)) & 15]) != (sI | inA[(((((((t0 ^ 7) > (gid / ((sI & 15) | 1))) ? inA[((0 + gid)) & 15] : 0) < (((((1 ^ 0) != (inB[((t0 - 1)) & 15] & sI)) ? sI : lid) == (int)(sF)) ? gid : gid)) || (((f0 >= (f1 * sF)) ? inA[(min(6, gid)) & 15] : 8) == min(t0, t0))) ? t0 : lid)) & 15]))) ? sF : 0.5f)));
}
