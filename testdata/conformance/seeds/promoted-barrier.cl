__kernel void r(__global float* a, __local float* s) { int l = get_local_id(0); barrier(CLK_LOCAL_MEM_FENCE); a[l] = 1.0f; }
