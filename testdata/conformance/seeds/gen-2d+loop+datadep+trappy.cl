__kernel void k(__global float* inA, __global int* inB, __global float* outF, int sI, float sF) {
    int gx = get_global_id(0);
    int gy = get_global_id(1);
    int gid = (gy * 16) + gx;
    int lid = (get_local_id(1) * 4) + get_local_id(0);
    int t0 = (~(lid / sI));
    float f0 = ((inA[(5) & 127] - 2.0f) - (inA[(9 * 1)] / sF));
    float f1 = (float)((inB[(int)(sF)] | lid));
    f1 += (((sI < (((((max(t0, t0) >= min(0, lid)) ? lid : 5) >= (6 | lid)) && ((3.0f + f0) <= (float)(8))) ? inB[((gid << (sI & 7))) & 15] : t0)) ? sF : inA[(~t0)]) / (float)(9));
    for (int i0 = 0; i0 < ((inB[((8 % ((inB[(max(sI, inB[((-4)) & 15])) & 15] & 15) | 1))) & 15] & 7) + 1); i0++) {
        for (int i1 = 0; i1 < 3; i1++) {
            f0 *= (((float)(0) != (-0.125f)) ? (((i1 ^ inB[(4) & 15]) > (inB[((9 | t0)) & 15] - gid)) ? sF : sF) : (3.0f / inA[(sI ^ 6)]));
            f1 *= f0;
        }
    }
    for (int i0 = 0; i0 < ((gid & 7) + 2); i0++) {
        for (int i1 = 0; i1 < ((gid & 7) + 2); i1++) {
            t0 ^= lid;
        }
    }
    outF[gid] = inA[((((6 / ((sI & 15) | 1)) == max(0, inB[(int)(3.0f)])) ? gid : 3)) & 127];
}
