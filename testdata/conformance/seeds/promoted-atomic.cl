__kernel void h(__global int* acc, __global int* in) {
    int gid = get_global_id(0);
    atomic_add(&acc[0], in[gid & 31]);
    atomic_max(&acc[1], (in[gid & 31] >> 1));
}
