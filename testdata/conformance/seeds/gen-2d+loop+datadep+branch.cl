__kernel void k(__global float* inA, __global int* inB, __global float* outF, float sF) {
    int gx = get_global_id(0);
    int gy = get_global_id(1);
    int gid = (gy * 16) + gx;
    int lid = (get_local_id(1) * 4) + get_local_id(0);
    int t0 = (((((((lid >> (inB[(gid) & 15] & 7)) >= (inB[((lid / ((1 & 15) | 1))) & 15] >> (6 & 7))) ? 1.5f : sF) <= 1.0f) ? lid : inB[((9 / ((lid & 15) | 1))) & 15]) > max(lid, inB[(gid) & 15])) ? (7 | 5) : max(inB[((inB[((inB[(((fabs(1.5f) > inA[((0 ^ 7)) & 15]) ? 9 : 2)) & 15] << (lid & 7))) & 15] ^ inB[((lid >> (gid & 7))) & 15])) & 15], lid));
    int t1 = 6;
    float f0 = sF;
    float f1 = (cos(inA[((8 * t0)) & 15]) + sF);
    for (int i0 = 0; i0 < ((gid & 7) + 2); i0++) {
        if (((~t0) >= (~t0)) || ((int)(f1) < (t1 * 7))) {
            f0 *= (1.0f + (f0 + 0.125f));
        } else {
            t0 += ((6 | t1) << ((5 + t1) & 7));
        }
    }
    outF[gid] = floor(((inA[((gid % ((lid & 15) | 1))) & 15] + f0) + f0));
}
