__kernel void k(__global float* inA, __global float* inB, __global float* inC, __global float* outF, __global int* outI, int sI) {
    int gx = get_global_id(0);
    int gy = get_global_id(1);
    int gid = (gy * 16) + gx;
    int lid = (get_local_id(1) * 4) + get_local_id(0);
    int t0 = (int)((float)(gid));
    float f0 = ((0.5f / 1.0f) + inC[((int)(inA[(abs(gid)) & 127])) & 15]);
    for (int i0 = 0; i0 < sI; i0++) {
        if (f0 >= (inB[((4 % ((i0 & 15) | 1))) & 127] - 0.5f)) {
            t0 -= ((i0 / ((t0 & 15) | 1)) >> (min(gid, t0) & 7));
        }
    }
    for (int i0 = 0; i0 < sI; i0++) {
        f0 += cos((f0 + inC[((8 ^ 7)) & 15]));
        f0 += (-(f0 - inA[(min(t0, 8)) & 127]));
    }
    for (int i0 = 0; i0 < 6; i0++) {
        t0 *= 3;
    }
    outF[gid] = (((inA[((2 + t0)) & 127] + f0) * (2.0f - 3.0f)) / (float)((((-inA[((t0 * 5)) & 127]) < (-f0)) ? 2 : gid)));
    outI[gid] = (((lid | gid) == (lid * 6)) ? (-max(lid, lid)) : (abs(sI) << ((((-3.0f) <= 2.0f) ? t0 : sI) & 7)));
}
