__kernel void k(__global int* inA, __global float* inB, __global float* outF, __global int* outI, int sI) {
    int gid = get_global_id(0);
    int lid = get_local_id(0);
    int t0 = (((lid >= ((6 >= (~gid)) ? 8 : sI)) || (1.5f != ((((6 * sI) == (int)(3.0f)) || ((lid | inA[((sI / ((inA[((int)(0.5f)) & 31] & 15) | 1))) & 31]) > ((((gid << (inA[((gid - 1)) & 31] & 7)) > min(sI, inA[(sI) & 31])) || ((int)(inB[((int)(1.0f)) & 63]) >= (sI & 5))) ? gid : 3))) ? 0.25f : 3.0f))) ? (9 * sI) : (int)(inB[(gid) & 63]));
    float f0 = (-(inB[((sI << (1 & 7))) & 63] * inB[(((min(t0, lid) <= sI) ? gid : inA[((lid * lid)) & 31])) & 63]));
    float f1 = (2.0f + (inB[((((min(inA[((t0 & 0)) & 31], 1) > (int)(inB[((lid << (8 & 7))) & 63])) || ((int)(inB[((-inA[(2) & 31])) & 63]) == (~gid))) ? lid : lid)) & 63] - inB[((((int)(inB[(max(inA[((((((6 & sI) == (9 << (gid & 7))) ? sI : lid) <= (((inA[(gid) & 31] & lid) == (3 ^ 8)) ? 2 : 6)) ? 1 : t0)) & 31], 2)) & 63]) >= (inA[(abs(lid)) & 31] % ((gid & 15) | 1))) ? t0 : gid)) & 63]));
    f0 *= (floor(inB[((5 >> (2 & 7))) & 63]) + 0.5f);
    outF[gid] = (outF[gid] + (float)(max((int)(2.0f), (~gid))));
    outI[gid] = 2;
}
