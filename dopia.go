// Package dopia is a from-scratch Go reproduction of "Dopia: Online
// Parallelism Management for Integrated CPU/GPU Architectures" (PPoPP
// 2022). It bundles an OpenCL C front-end, a functional kernel
// interpreter, an integrated CPU/GPU architecture performance simulator
// (standing in for the paper's AMD Kaveri and Intel Skylake silicon),
// Dopia's static analysis, malleable code generation, ML-based
// degree-of-parallelism selection, and dynamic CPU/GPU workload
// distribution.
//
// The public API re-exports the pieces a downstream user needs:
//
//	machine := dopia.Kaveri()
//	platform := dopia.NewPlatform(machine)
//	ctx := platform.CreateContext()
//
//	model, _ := dopia.TrainDefaultModel(machine, trainingWorkloads)
//	fw := dopia.NewFramework(machine, model)
//	fw.Attach(ctx) // every EnqueueNDRangeKernel is now Dopia-managed
//
//	prog := ctx.CreateProgramWithSource(src)
//	_ = prog.Build()
//	kern, _ := prog.CreateKernel("gesummv")
//	...
//	q := ctx.CreateCommandQueue(platform.Device(dopia.DeviceCPU))
//	_ = q.EnqueueNDRangeKernel(kern, dopia.ND1(n, 256))
//
// See the examples/ directory for complete programs and DESIGN.md for the
// system inventory and the hardware-substitution rationale.
package dopia

import (
	"io"

	"dopia/internal/core"
	"dopia/internal/faults"
	"dopia/internal/interp"
	"dopia/internal/ml"
	"dopia/internal/ocl"
	"dopia/internal/sim"
	"dopia/internal/workloads"
)

// Re-exported machine models and configuration types.

// Machine describes an integrated CPU/GPU processor.
type Machine = sim.Machine

// Config is one degree-of-parallelism choice.
type Config = sim.Config

// Result is the outcome of one simulated kernel execution.
type Result = sim.Result

// Kaveri returns the AMD A10-7850K machine model of the paper.
func Kaveri() *Machine { return sim.Kaveri() }

// Skylake returns the Intel i7-6700 machine model of the paper.
func Skylake() *Machine { return sim.Skylake() }

// Re-exported OpenCL-style runtime.

// Platform is an OpenCL platform over a machine model.
type Platform = ocl.Platform

// Context owns buffers, programs, and queues.
type Context = ocl.Context

// Program is an OpenCL program object.
type Program = ocl.Program

// Kernel is a kernel object with bound arguments.
type Kernel = ocl.Kernel

// Buffer is a device-visible memory object.
type Buffer = ocl.Buffer

// CommandQueue executes launches and accounts simulated time.
type CommandQueue = ocl.CommandQueue

// DeviceType selects the CPU or GPU device.
type DeviceType = ocl.DeviceType

// Device types.
const (
	DeviceCPU = ocl.DeviceCPU
	DeviceGPU = ocl.DeviceGPU
)

// NewPlatform creates a platform over a machine model.
func NewPlatform(m *Machine) *Platform { return ocl.NewPlatform(m) }

// Re-exported launch geometry.

// NDRange describes an OpenCL index space.
type NDRange = interp.NDRange

// ND1 builds a one-dimensional ND range.
func ND1(global, local int) NDRange { return interp.ND1(global, local) }

// ND2 builds a two-dimensional ND range.
func ND2(gx, gy, lx, ly int) NDRange { return interp.ND2(gx, gy, lx, ly) }

// Re-exported Dopia framework.

// Framework is a Dopia instance: per-kernel analysis and transformation
// caches plus the runtime DoP selection and co-execution engine.
type Framework = core.Framework

// Model predicts normalized performance from Table 1 features.
type Model = ml.Model

// NewFramework creates a Dopia framework for a machine. model may be nil,
// in which case launches use all resources (no DoP management).
func NewFramework(m *Machine, model Model) *Framework { return core.New(m, model) }

// NewFrameworkFromModelFile creates a framework whose model is loaded
// from a file, failing open: on a load/validation failure the framework
// still works (ALL baseline), the failure is recorded in its
// FallbackStats, and the error is returned for observability.
func NewFrameworkFromModelFile(m *Machine, path string) (*Framework, error) {
	return core.NewFromModelFile(m, path)
}

// Fail-open interposition: the attached framework degrades every launch
// down a fallback ladder (full Dopia → ALL co-execution → plain runtime)
// instead of failing the application. These re-exports let downstream
// users observe the ladder and classify failures.

// FallbackStats counts how interposed launches moved through the
// fail-open ladder. Framework.Stats holds the per-framework aggregate;
// CommandQueue.Fallback the per-queue view.
type FallbackStats = faults.FallbackStats

// FallbackSnapshot is a copyable view of a FallbackStats.
type FallbackSnapshot = faults.Snapshot

// FailureStage identifies the pipeline stage a degradation originated in.
type FailureStage = faults.Stage

// Pipeline stages (see internal/faults for the full taxonomy).
const (
	StageParse        = faults.StageParse
	StageAnalysis     = faults.StageAnalysis
	StageTransform    = faults.StageTransform
	StageCompile      = faults.StageCompile
	StageModelLoad    = faults.StageModelLoad
	StageModelPredict = faults.StageModelPredict
	StageExec         = faults.StageExec
	// StageUnknown marks errors no pipeline stage claimed.
	StageUnknown = faults.StageUnknown
)

// Classified failure sentinels, matchable with errors.Is.
var (
	ErrUnsupportedKernel = faults.ErrUnsupportedKernel
	ErrTransformFailed   = faults.ErrTransformFailed
	ErrModelInvalid      = faults.ErrModelInvalid
	ErrExecTimeout       = faults.ErrExecTimeout
	ErrPanicContained    = faults.ErrPanic
)

// FailureStageOf classifies an error returned by any Dopia API by
// pipeline stage ("unknown" when unclassified).
func FailureStageOf(err error) FailureStage { return faults.StageOf(err) }

// Workload is a benchmark kernel plus its input recipe.
type Workload = workloads.Workload

// SyntheticWorkloads returns the paper's 1,224-workload training grid
// (Table 4).
func SyntheticWorkloads() ([]*Workload, error) { return workloads.SyntheticGrid() }

// RealWorkloads returns the paper's fourteen real-world kernels at
// problem size n with the given work-group size.
func RealWorkloads(n, wg int) ([]*Workload, error) { return workloads.RealWorkloads(n, wg) }

// Characterization is a workload's full DoP profile: the simulated time
// of every configuration, the best configuration, and the Table 1 base
// features. Use Perf(cfg) for normalized performance and Time(cfg) for
// raw simulated seconds.
type Characterization = core.WorkloadEval

// Characterize profiles a workload and simulates every DoP configuration
// of the machine (the paper's exhaustive-search oracle for one workload).
func Characterize(m *Machine, w *Workload) (*Characterization, error) {
	return core.EvaluateWorkload(m, w)
}

// TrainDefaultModel characterizes the given workloads on the machine and
// fits the paper's deployed model family (a decision tree). Pass the
// synthetic grid for the paper's training setup; smaller sets train
// proportionally faster.
func TrainDefaultModel(m *Machine, wls []*Workload) (Model, error) {
	evals, err := core.EvaluateAll(m, wls, 0)
	if err != nil {
		return nil, err
	}
	return ml.TreeTrainer{}.Fit(core.BuildDataset(m, evals))
}

// MachineFromJSON parses a custom machine description (see
// internal/sim.MachineJSON for the schema and examples/custommachine for a
// complete example).
func MachineFromJSON(r io.Reader) (*Machine, error) { return sim.MachineFromJSON(r) }

// LoadMachine reads a machine description from a JSON file.
func LoadMachine(path string) (*Machine, error) { return sim.LoadMachine(path) }

// SaveMachine writes a machine description to a JSON file.
func SaveMachine(path string, m *Machine) error { return sim.SaveMachine(path, m) }

// SaveModelFile persists a trained model; LoadModelFile restores it.
func SaveModelFile(path string, m Model) error { return ml.SaveModelFile(path, m) }

// LoadModelFile reads a model saved by SaveModelFile.
func LoadModelFile(path string) (Model, error) { return ml.LoadModelFile(path) }
