// Benchmarks: one testing.B entry per table and figure of the paper's
// evaluation (Figures 1, 3, 9-13; Tables 5, 6), each exercising the same
// pipeline as the full regeneration in cmd/dopia-bench on a reduced
// workload census, plus micro-benchmarks of the load-bearing components
// (interpreter, simulator, analyzer, transformer, ML inference).
package dopia_test

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"dopia/internal/analysis"
	"dopia/internal/clc"
	"dopia/internal/core"
	"dopia/internal/experiments"
	"dopia/internal/interp"
	"dopia/internal/ml"
	"dopia/internal/sched"
	"dopia/internal/server"
	"dopia/internal/sim"
	"dopia/internal/transform"
	"dopia/internal/workloads"
)

// ---------------------------------------------------------------------------
// Shared fixtures

var fixtures struct {
	once  sync.Once
	err   error
	evals []*core.WorkloadEval // 40-workload synthetic slice on Kaveri
	ds    *ml.Dataset
	dt    ml.Model
}

func benchEvals(b *testing.B) ([]*core.WorkloadEval, *ml.Dataset, ml.Model) {
	b.Helper()
	fixtures.once.Do(func() {
		grid, err := workloads.SyntheticGrid()
		if err != nil {
			fixtures.err = err
			return
		}
		var sub []*workloads.Workload
		for i := 0; i < len(grid) && len(sub) < 40; i += len(grid) / 40 {
			sub = append(sub, grid[i])
		}
		fixtures.evals, fixtures.err = core.EvaluateAll(sim.Kaveri(), sub, 0)
		if fixtures.err != nil {
			return
		}
		fixtures.ds = core.BuildDataset(sim.Kaveri(), fixtures.evals)
		fixtures.dt, fixtures.err = ml.TreeTrainer{}.Fit(fixtures.ds)
	})
	if fixtures.err != nil {
		b.Fatal(fixtures.err)
	}
	return fixtures.evals, fixtures.ds, fixtures.dt
}

func gesummvExecutor(b *testing.B, n int) *sched.Executor {
	b.Helper()
	ws, err := workloads.RealWorkloads(n, 256)
	if err != nil {
		b.Fatal(err)
	}
	w := ws[8] // GESUMMV
	k, err := w.CompileKernel()
	if err != nil {
		b.Fatal(err)
	}
	ex, err := sched.NewExecutor(sim.Kaveri(), k, nil)
	if err != nil {
		b.Fatal(err)
	}
	ex.AssumeMalleable = true
	inst, err := w.Setup()
	if err != nil {
		b.Fatal(err)
	}
	if err := ex.Bind(inst.Args...); err != nil {
		b.Fatal(err)
	}
	if err := ex.Launch(inst.ND); err != nil {
		b.Fatal(err)
	}
	if _, err := ex.Model(); err != nil {
		b.Fatal(err)
	}
	return ex
}

// ---------------------------------------------------------------------------
// Figure 1: the full 44-configuration DoP sweep of Gesummv on Kaveri.

func BenchmarkFig1Heatmap(b *testing.B) {
	ex := gesummvExecutor(b, 512)
	m := sim.Kaveri()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cfg := range m.Configs() {
			if _, err := ex.Run(cfg, sched.RunOptions{Dist: sim.Dynamic}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Figure 3: the GPU-utilization sweep at four CPU threads.

func BenchmarkFig3GPUUtil(b *testing.B) {
	ex := gesummvExecutor(b, 512)
	m := sim.Kaveri()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range m.GPUSteps {
			cfg := sim.Config{CPUCores: m.CPU.Cores, GPUFrac: g}
			if _, err := ex.Run(cfg, sched.RunOptions{Dist: sim.Dynamic}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Figure 9: dynamic distribution vs the 19-split static sweep.

func BenchmarkFig9Distribution(b *testing.B) {
	ex := gesummvExecutor(b, 512)
	all := sim.Kaveri().AllResources()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ex.BestStatic(all); err != nil {
			b.Fatal(err)
		}
		if _, err := ex.Run(all, sched.RunOptions{Dist: sim.Dynamic}); err != nil {
			b.Fatal(err)
		}
	}
}

// Figure 10: cross-validated model comparison on the synthetic slice.

func BenchmarkFig10Models(b *testing.B) {
	evals, _, _ := benchEvals(b)
	m := sim.Kaveri()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tr := range core.Trainers() {
			if _, err := experiments.CrossValSelections(m, evals, tr, 4, 1); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Table 5: exact-classification counting (Dopia DT cross-validation plus
// the fixed baselines).

func BenchmarkTable5Classification(b *testing.B) {
	evals, _, _ := benchEvals(b)
	m := sim.Kaveri()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel, err := experiments.CrossValSelections(m, evals, ml.TreeTrainer{}, 4, 1)
		if err != nil {
			b.Fatal(err)
		}
		_ = experiments.ExactCount(sel)
		_ = experiments.ExactCount(experiments.FixedSelections(m, evals, m.CPUOnly()))
		_ = experiments.ExactCount(experiments.FixedSelections(m, evals, m.GPUOnly()))
		_ = experiments.ExactCount(experiments.FixedSelections(m, evals, m.AllResources()))
	}
}

// Figure 11: distance-error and normalized-performance distributions.

func BenchmarkFig11CrossVal(b *testing.B) {
	evals, _, _ := benchEvals(b)
	m := sim.Kaveri()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel, err := experiments.CrossValSelections(m, evals, ml.TreeTrainer{}, 4, 1)
		if err != nil {
			b.Fatal(err)
		}
		_ = experiments.Dists(sel)
		_ = experiments.Perfs(sel)
	}
}

// Figure 12 / Table 6: the constant-configuration performance table.

func BenchmarkFig12ConstantConfigs(b *testing.B) {
	evals, _, _ := benchEvals(b)
	m := sim.Kaveri()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cfg := range m.Configs() {
			_ = experiments.Perfs(experiments.FixedSelections(m, evals, cfg))
		}
	}
}

func BenchmarkTable6BestConstant(b *testing.B) {
	evals, _, _ := benchEvals(b)
	m := sim.Kaveri()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bestV := -1.0
		for _, cfg := range m.Configs() {
			var s float64
			sel := experiments.FixedSelections(m, evals, cfg)
			for _, x := range experiments.Perfs(sel) {
				s += x
			}
			if s > bestV {
				bestV = s
			}
		}
	}
}

// Figure 13: leave-one-out selection for one real kernel with the
// deployed DT model.

func BenchmarkFig13RealWorld(b *testing.B) {
	evals, _, _ := benchEvals(b)
	m := sim.Kaveri()
	ws, err := workloads.RealWorkloads(256, 256)
	if err != nil {
		b.Fatal(err)
	}
	target, err := core.EvaluateWorkload(m, ws[8])
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := experiments.LeaveOneOutSelection(m, evals, target,
			func(string) bool { return false }, ml.TreeTrainer{})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Component micro-benchmarks

// BenchmarkInterpreter measures functional execution throughput
// (work-items per op are reported via bytes: 1 item = 1 "byte").

func BenchmarkInterpreterGesummv(b *testing.B) {
	b.ReportAllocs()
	prog, err := clc.Compile(`__kernel void gesummv(__global float* A, __global float* B,
        __global float* x, __global float* y, float alpha, float beta, int N) {
        int i = get_global_id(0);
        if (i < N) {
            float tmp = 0.0f;
            float yv = 0.0f;
            for (int j = 0; j < N; j++) {
                tmp += A[i * N + j] * x[j];
                yv += B[i * N + j] * x[j];
            }
            y[i] = alpha * tmp + beta * yv;
        }
    }`)
	if err != nil {
		b.Fatal(err)
	}
	n := 256
	ex, err := interp.NewExec(prog.Kernels[0])
	if err != nil {
		b.Fatal(err)
	}
	A := interp.NewFloatBuffer(n * n)
	B := interp.NewFloatBuffer(n * n)
	x := interp.NewFloatBuffer(n)
	y := interp.NewFloatBuffer(n)
	if err := ex.Bind(interp.BufArg(A), interp.BufArg(B), interp.BufArg(x), interp.BufArg(y),
		interp.FloatArg(1), interp.FloatArg(1), interp.IntArg(int64(n))); err != nil {
		b.Fatal(err)
	}
	if err := ex.Launch(interp.ND1(n, 64)); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(n) * int64(n) * 2 * 4) // bytes touched per run
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ex.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFluidEngine(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := sim.NewFluid(20e9)
		for t := 0; t < 64; t++ {
			f.Add(t, sim.TaskCost{Compute: 1e-4, MemBytes: 1e6, PeakBW: 5e9})
		}
		for {
			if _, ok := f.Step(); !ok {
				break
			}
		}
	}
}

func BenchmarkStaticAnalysis(b *testing.B) {
	b.ReportAllocs()
	prog, err := clc.Compile(`__kernel void ex(__global float* A, __global float* B,
        __global float* C, __global float* D, __global int* Bi, int c1, int N, int M) {
        for (int i = 0; i < N; i++) {
            for (int j = 0; j < M; j++) {
                D[i * M + j] = A[i * M + j] + B[j * N + i] + C[c1] + C[Bi[j * N + i]];
            }
        }
    }`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.Analyze(prog.Kernels[0]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMalleableTransform(b *testing.B) {
	b.ReportAllocs()
	prog, err := clc.Compile(`__kernel void sum3(__global float* A, __global float* B,
        __global float* C, int n) {
        int i = get_global_id(0);
        if (i < n) { C[i] = A[i] + B[i] + C[i]; }
    }`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := transform.MalleableGPU(prog.Kernels[0], 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelInference44Configs(b *testing.B) {
	b.ReportAllocs()
	_, _, dt := benchEvals(b)
	m := sim.Kaveri()
	var base ml.Features
	base[ml.FGlobalSize] = 16384
	base[ml.FLocalSize] = 256
	base[ml.FMemContinuous] = 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cfg := range m.Configs() {
			_ = dt.Predict(core.WithConfig(base, m, cfg))
		}
	}
}

func BenchmarkFrontEndCompile(b *testing.B) {
	b.ReportAllocs()
	src := `__kernel void conv2d(__global float* A, __global float* B, int NI, int NJ) {
        int j = get_global_id(0);
        int i = get_global_id(1);
        if (i > 0 && i < NI - 1 && j > 0 && j < NJ - 1) {
            B[i * NJ + j] = 0.2f * A[(i - 1) * NJ + j] + 0.5f * A[i * NJ + j]
                          + 0.3f * A[(i + 1) * NJ + j];
        }
    }`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := clc.Compile(src); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Serving fast path: one steady-state launch over the binary wire
// protocol against an in-process daemon on loopback TCP. After warmup
// the launch hits the completed-launch memo, so the loop measures pure
// serving overhead — framing, admission, memo lookup, copy-on-read-back
// — and allocs/op tracks the pooled-arena discipline end to end.

func BenchmarkServingBinaryLaunch(b *testing.B) {
	srv, err := server.New(server.Config{Machine: sim.Kaveri()})
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ms := server.NewMixedServer(srv)
	go func() { _ = ms.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		_ = ms.Shutdown(ctx)
	}()
	bc, err := server.DialBin(ln.Addr().String(), 5*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer bc.Close()

	progID, _, _, err := bc.Compile(`__kernel void scale(__global float* x, __global float* y, float a, int n) {
        int i = get_global_id(0);
        if (i < n) { y[i] = a * x[i] + i * 0.5f; }
    }`)
	if err != nil {
		b.Fatal(err)
	}
	sid, err := bc.NewSession("")
	if err != nil {
		b.Fatal(err)
	}
	const n = 256
	xs := make([]float32, n)
	for i := range xs {
		xs[i] = float32(i%13) * 0.375
	}
	raw := make([]byte, 4*n)
	server.F32ToLE(raw, xs)
	if err := bc.CreateBufferRaw(sid, "x", 'f', raw); err != nil {
		b.Fatal(err)
	}
	if err := bc.CreateBufferZero(sid, "y", 'f', n); err != nil {
		b.Fatal(err)
	}
	a, nn := 1.75, int64(n)
	req := &server.BinLaunch{
		SessionID: sid, ProgramID: progID, Kernel: "scale",
		Args:   []server.LaunchArg{{Buf: "x"}, {Buf: "y"}, {Float: &a}, {Int: &nn}},
		Global: []int{n}, Local: []int{64},
		Read:   []string{"y"},
	}
	// Two launches reach the content fixpoint (y=0, then y=result);
	// every launch after that replays from the memo.
	for i := 0; i < 3; i++ {
		if _, err := bc.Launch(req); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bc.Launch(req); err != nil {
			b.Fatal(err)
		}
	}
}
