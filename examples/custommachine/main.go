// Custom machine: model your own integrated processor.
//
// The paper argues Dopia's approach ports to any integrated architecture
// because the performance model is retrained per machine. This example
// describes a hypothetical modern APU as JSON, retrains Dopia on it, and
// shows how the best degree of parallelism for the same kernel shifts
// between it and the paper's Kaveri.
//
//	go run ./examples/custommachine
package main

import (
	"fmt"
	"log"
	"strings"

	"dopia"
)

// A hypothetical modern APU: faster GPU, much more bandwidth, bigger
// caches than 2014's Kaveri.
const modernAPU = `{
  "name": "ModernAPU",
  "cpu": {"cores": 8, "freq_ghz": 4.5, "core_bw_gbs": 8, "cache_kb": 1024},
  "gpu": {"cus": 12, "pes_per_cu": 64, "freq_ghz": 2.4,
          "cache_kb": 4096, "pe_bw_mbs": 120, "strided_penalty": 1.5},
  "mem": {"bandwidth_gbs": 100, "latency_ns": 80, "shared_llc_kb": 16384},
  "cpu_steps": [0, 2, 4, 6, 8]
}`

func main() {
	modern, err := dopia.MachineFromJSON(strings.NewReader(modernAPU))
	if err != nil {
		log.Fatal(err)
	}
	machines := []*dopia.Machine{dopia.Kaveri(), modern}

	ws, err := dopia.RealWorkloads(1024, 256)
	if err != nil {
		log.Fatal(err)
	}
	var gesummv *dopia.Workload
	for _, w := range ws {
		if strings.HasPrefix(w.Name, "GESUMMV.") {
			gesummv = w
		}
	}

	for _, m := range machines {
		ch, err := dopia.Characterize(m, gesummv)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s best DoP for GESUMMV: %d CPU cores + %.1f%% GPU (%.4g ms)\n",
			m.Name, ch.Best.CPUCores, ch.Best.GPUFrac*100, ch.BestTime*1e3)
		fmt.Printf("%-10s   CPU-only %.2f | GPU-only %.2f | ALL %.2f of best\n",
			"", ch.Perf(m.CPUOnly()), ch.Perf(m.GPUOnly()), ch.Perf(m.AllResources()))
	}
	fmt.Println("\nthe same kernel wants a different degree of parallelism on each chip —")
	fmt.Println("which is why Dopia retrains its model per machine instead of hardcoding rules.")
}
