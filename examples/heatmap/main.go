// Heatmap: reproduce the paper's Figure 1 view for any of the fourteen
// real-world kernels — the normalized throughput of every (CPU cores x
// GPU allocation) configuration on a chosen machine.
//
//	go run ./examples/heatmap -kernel GESUMMV -machine Kaveri -n 1024
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"

	"dopia"
)

func main() {
	var (
		machineName = flag.String("machine", "Kaveri", "Kaveri or Skylake")
		kernel      = flag.String("kernel", "GESUMMV", "kernel name")
		n           = flag.Int("n", 1024, "problem size")
		wg          = flag.Int("wg", 256, "work-group size")
	)
	flag.Parse()

	machine := dopia.Kaveri()
	if strings.EqualFold(*machineName, "skylake") {
		machine = dopia.Skylake()
	}
	ws, err := dopia.RealWorkloads(*n, *wg)
	if err != nil {
		log.Fatal(err)
	}
	var target *dopia.Workload
	for _, w := range ws {
		if strings.HasPrefix(w.Name, *kernel+".") {
			target = w
		}
	}
	if target == nil {
		log.Fatalf("unknown kernel %q", *kernel)
	}

	fmt.Printf("characterizing %s on %s (%d configurations)...\n",
		target.Name, machine.Name, len(machine.Configs()))
	ch, err := dopia.Characterize(machine, target)
	if err != nil {
		log.Fatal(err)
	}

	// Render: GPU allocation on rows (descending), CPU cores on columns,
	// each cell the throughput normalized to the best configuration.
	gpuSteps := append([]float64(nil), machine.GPUSteps...)
	sort.Sort(sort.Reverse(sort.Float64Slice(gpuSteps)))
	fmt.Printf("\n%8s", "")
	for _, c := range machine.CPUSteps {
		fmt.Printf("  cpu=%d", c)
	}
	fmt.Println()
	for _, g := range gpuSteps {
		fmt.Printf("gpu=%3.0f%%", g*100)
		for _, c := range machine.CPUSteps {
			cfg := dopia.Config{CPUCores: c, GPUFrac: g}
			if !cfg.Valid() {
				fmt.Printf("  %5s", "-")
				continue
			}
			fmt.Printf("  %5.2f", ch.Perf(cfg))
		}
		fmt.Println()
	}
	fmt.Printf("\nbest: CPU %d cores + %.1f%% GPU -> %.4g ms\n",
		ch.Best.CPUCores, ch.Best.GPUFrac*100, ch.BestTime*1e3)
	fmt.Printf("CPU-only %.2f, GPU-only %.2f, ALL %.2f of best\n",
		ch.Perf(machine.CPUOnly()), ch.Perf(machine.GPUOnly()), ch.Perf(machine.AllResources()))
}
