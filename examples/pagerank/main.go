// PageRank: an iterative application under Dopia.
//
// Each PageRank iteration is one kernel enqueue; Dopia selects the degree
// of parallelism per launch (the decision is identical across iterations
// since the features do not change, demonstrating the low steady-state
// overhead of the deployed decision-tree model). The example runs to
// convergence with ping-ponged rank buffers.
//
//	go run ./examples/pagerank
package main

import (
	"fmt"
	"log"
	"math"

	"dopia"
)

const pagerankSrc = `
__kernel void pagerank(__global int* rowptr, __global int* colidx,
                       __global float* rank, __global float* outdeg,
                       __global float* next, float damp, int N) {
    int i = get_global_id(0);
    if (i < N) {
        float acc = 0.0f;
        for (int k = rowptr[i]; k < rowptr[i + 1]; k++) {
            int src = colidx[k];
            acc += rank[src] / outdeg[src];
        }
        next[i] = (1.0f - damp) / (float)N + damp * acc;
    }
}`

func main() {
	machine := dopia.Skylake()
	platform := dopia.NewPlatform(machine)
	ctx := platform.CreateContext()

	grid, err := dopia.SyntheticWorkloads()
	if err != nil {
		log.Fatal(err)
	}
	var train []*dopia.Workload
	for i := 0; i < len(grid); i += len(grid) / 80 {
		train = append(train, grid[i])
	}
	model, err := dopia.TrainDefaultModel(machine, train)
	if err != nil {
		log.Fatal(err)
	}
	dopia.NewFramework(machine, model).Attach(ctx)

	// Build a random graph (in-edge CSR) with deterministic structure.
	n := 4096
	degree := 12
	state := uint32(0xBEEF)
	next := func() uint32 {
		state ^= state << 13
		state ^= state >> 17
		state ^= state << 5
		return state
	}
	rowptr := make([]int32, n+1)
	var colidx []int32
	for v := 0; v < n; v++ {
		ln := degree/2 + int(next()%uint32(degree))
		for k := 0; k < ln; k++ {
			colidx = append(colidx, int32(next()%uint32(n)))
		}
		rowptr[v+1] = int32(len(colidx))
	}
	outdeg := make([]float32, n)
	for _, c := range colidx {
		outdeg[c]++
	}
	for i := range outdeg {
		if outdeg[i] == 0 {
			outdeg[i] = 1
		}
	}

	prog := ctx.CreateProgramWithSource(pagerankSrc)
	if err := prog.Build(); err != nil {
		log.Fatal(err)
	}
	kern, err := prog.CreateKernel("pagerank")
	if err != nil {
		log.Fatal(err)
	}

	rp := ctx.CreateIntBuffer(len(rowptr))
	copy(rp.Int32(), rowptr)
	ci := ctx.CreateIntBuffer(len(colidx))
	copy(ci.Int32(), colidx)
	od := ctx.CreateFloatBuffer(n)
	copy(od.Float32(), outdeg)
	rank := ctx.CreateFloatBuffer(n)
	nextRank := ctx.CreateFloatBuffer(n)
	for i := range rank.Float32() {
		rank.Float32()[i] = 1 / float32(n)
	}

	q := ctx.CreateCommandQueue(platform.Device(dopia.DeviceCPU))
	damp := float32(0.85)
	const maxIter = 50
	iter := 0
	for ; iter < maxIter; iter++ {
		for i, a := range []any{rp, ci, rank, od, nextRank, damp, n} {
			if err := kern.SetArg(i, a); err != nil {
				log.Fatal(err)
			}
		}
		if err := q.EnqueueNDRangeKernel(kern, dopia.ND1(n, 256)); err != nil {
			log.Fatal(err)
		}
		// Convergence check (L1 delta).
		var delta float64
		for i := range rank.Float32() {
			delta += math.Abs(float64(nextRank.Float32()[i] - rank.Float32()[i]))
		}
		rank, nextRank = nextRank, rank
		if delta < 1e-6 {
			iter++
			break
		}
	}

	fmt.Printf("PageRank on %s: %d vertices, %d edges\n", machine.Name, n, len(colidx))
	fmt.Printf("converged after %d iterations, total simulated time %.4g ms\n",
		iter, q.SimTime*1e3)
	r := q.LastResult
	fmt.Printf("last iteration split: %d work-groups on CPU, %d on GPU\n", r.WGsCPU, r.WGsGPU)

	// Top-ranked vertices.
	type vr struct {
		v int
		r float32
	}
	top := make([]vr, 0, 5)
	for v, rv := range rank.Float32() {
		top = append(top, vr{v, rv})
	}
	for i := 0; i < 5; i++ {
		for j := i + 1; j < len(top); j++ {
			if top[j].r > top[i].r {
				top[i], top[j] = top[j], top[i]
			}
		}
	}
	var mass float64
	for _, t := range top {
		mass += float64(t.r)
	}
	fmt.Printf("top-5 vertices: ")
	for i := 0; i < 5; i++ {
		fmt.Printf("v%d=%.5f ", top[i].v, top[i].r)
	}
	fmt.Println()
}
