// SpMV: sparse matrix-vector multiplication over CSR under Dopia.
//
// The example builds a random sparse matrix, runs y = A*x under Dopia
// management, verifies the result against a host-side reference, and
// compares the simulated time with single-device execution — the
// irregular, indirect accesses of SpMV make it a memory-system stress
// case where the right degree of parallelism matters (paper Figure 3).
//
//	go run ./examples/spmv
package main

import (
	"fmt"
	"log"
	"math"

	"dopia"
)

const spmvSrc = `
__kernel void spmv(__global int* rowptr, __global int* colidx,
                   __global float* val, __global float* x,
                   __global float* y, int N) {
    int i = get_global_id(0);
    if (i < N) {
        float acc = 0.0f;
        for (int k = rowptr[i]; k < rowptr[i + 1]; k++) {
            acc += val[k] * x[colidx[k]];
        }
        y[i] = acc;
    }
}`

// buildCSR creates a deterministic pseudo-random CSR matrix.
func buildCSR(rows, cols, avgNNZ int) (rowptr, colidx []int32, val []float32) {
	state := uint32(0x2545F491)
	next := func() uint32 {
		state ^= state << 13
		state ^= state >> 17
		state ^= state << 5
		return state
	}
	rowptr = make([]int32, rows+1)
	for r := 0; r < rows; r++ {
		ln := avgNNZ/2 + int(next()%uint32(avgNNZ+1))
		for k := 0; k < ln; k++ {
			colidx = append(colidx, int32(next()%uint32(cols)))
			val = append(val, float32(next()%1000)/500-1)
		}
		rowptr[r+1] = int32(len(colidx))
	}
	return
}

func main() {
	machine := dopia.Kaveri()
	platform := dopia.NewPlatform(machine)
	ctx := platform.CreateContext()

	// Train Dopia.
	grid, err := dopia.SyntheticWorkloads()
	if err != nil {
		log.Fatal(err)
	}
	var train []*dopia.Workload
	for i := 0; i < len(grid); i += len(grid) / 80 {
		train = append(train, grid[i])
	}
	model, err := dopia.TrainDefaultModel(machine, train)
	if err != nil {
		log.Fatal(err)
	}

	n := 2048
	rowptr, colidx, val := buildCSR(n, n, 32)
	fmt.Printf("SpMV: %dx%d CSR matrix, %d non-zeros\n", n, n, len(val))

	prog := ctx.CreateProgramWithSource(spmvSrc)
	if err := prog.Build(); err != nil {
		log.Fatal(err)
	}

	run := func(managed bool, dev dopia.DeviceType) (float64, []float32) {
		kern, err := prog.CreateKernel("spmv")
		if err != nil {
			log.Fatal(err)
		}
		rp := ctx.CreateIntBuffer(len(rowptr))
		copy(rp.Int32(), rowptr)
		ci := ctx.CreateIntBuffer(len(colidx))
		copy(ci.Int32(), colidx)
		v := ctx.CreateFloatBuffer(len(val))
		copy(v.Float32(), val)
		x := ctx.CreateFloatBuffer(n)
		for i := range x.Float32() {
			x.Float32()[i] = float32(i%13) / 13
		}
		y := ctx.CreateFloatBuffer(n)
		for i, a := range []any{rp, ci, v, x, y, n} {
			if err := kern.SetArg(i, a); err != nil {
				log.Fatal(err)
			}
		}
		if managed {
			dopia.NewFramework(machine, model).Attach(ctx)
		} else {
			ctx.SetInterposer(nil)
		}
		q := ctx.CreateCommandQueue(platform.Device(dev))
		if err := q.EnqueueNDRangeKernel(kern, dopia.ND1(n, 256)); err != nil {
			log.Fatal(err)
		}
		return q.SimTime, y.Float32()
	}

	cpuT, _ := run(false, dopia.DeviceCPU)
	gpuT, _ := run(false, dopia.DeviceGPU)
	dopiaT, y := run(true, dopia.DeviceCPU)
	fmt.Printf("CPU-only: %.4g ms\nGPU-only: %.4g ms\nDopia:    %.4g ms\n",
		cpuT*1e3, gpuT*1e3, dopiaT*1e3)

	// Verify.
	x := make([]float32, n)
	for i := range x {
		x[i] = float32(i%13) / 13
	}
	worst := 0.0
	for r := 0; r < n; r++ {
		var acc float32
		for k := rowptr[r]; k < rowptr[r+1]; k++ {
			acc += val[k] * x[colidx[k]]
		}
		if d := math.Abs(float64(y[r] - acc)); d > worst {
			worst = d
		}
	}
	fmt.Printf("max deviation from host reference: %.3g\n", worst)
}
