// Quickstart: run an OpenCL kernel under Dopia management.
//
// The program builds a small training set, trains Dopia's decision-tree
// model, attaches the framework to an OpenCL context, and enqueues a
// matrix-vector kernel. Dopia transparently analyzes the kernel, predicts
// the best CPU/GPU degree of parallelism, and co-executes the launch with
// dynamic workload distribution.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dopia"
)

const kernelSrc = `
__kernel void matvec(__global float* A, __global float* x,
                     __global float* y, int N) {
    int i = get_global_id(0);
    if (i < N) {
        float acc = 0.0f;
        for (int j = 0; j < N; j++) {
            acc += A[i * N + j] * x[j];
        }
        y[i] = acc;
    }
}`

func main() {
	machine := dopia.Kaveri()
	platform := dopia.NewPlatform(machine)
	ctx := platform.CreateContext()

	// Train Dopia's model on a slice of the paper's synthetic workload
	// grid (the full 1,224-workload grid is available via
	// dopia.SyntheticWorkloads; a slice keeps the quickstart fast).
	grid, err := dopia.SyntheticWorkloads()
	if err != nil {
		log.Fatal(err)
	}
	var train []*dopia.Workload
	for i := 0; i < len(grid); i += len(grid) / 100 {
		train = append(train, grid[i])
	}
	fmt.Printf("training Dopia's model on %d synthetic workloads...\n", len(train))
	model, err := dopia.TrainDefaultModel(machine, train)
	if err != nil {
		log.Fatal(err)
	}
	fw := dopia.NewFramework(machine, model)
	fw.Attach(ctx) // from here on, every enqueue is Dopia-managed

	// Standard OpenCL application flow.
	prog := ctx.CreateProgramWithSource(kernelSrc)
	if err := prog.Build(); err != nil {
		log.Fatal(err)
	}
	kern, err := prog.CreateKernel("matvec")
	if err != nil {
		log.Fatal(err)
	}

	n := 1024
	A := ctx.CreateFloatBuffer(n * n)
	x := ctx.CreateFloatBuffer(n)
	y := ctx.CreateFloatBuffer(n)
	for i := range A.Float32() {
		A.Float32()[i] = float32(i%17) / 16
	}
	for i := range x.Float32() {
		x.Float32()[i] = float32(i%5) - 2
	}
	for i, v := range []any{A, x, y, n} {
		if err := kern.SetArg(i, v); err != nil {
			log.Fatal(err)
		}
	}

	q := ctx.CreateCommandQueue(platform.Device(dopia.DeviceCPU))
	if err := q.EnqueueNDRangeKernel(kern, dopia.ND1(n, 256)); err != nil {
		log.Fatal(err)
	}
	if err := q.Finish(); err != nil {
		log.Fatal(err)
	}

	r := q.LastResult
	fmt.Printf("simulated time: %.4g ms on %s\n", q.SimTime*1e3, machine.Name)
	fmt.Printf("work distribution: %d work-groups on CPU cores, %d on the GPU (%d chunks)\n",
		r.WGsCPU, r.WGsGPU, r.GPUChunks)

	// Verify against a host-side reference.
	worst := 0.0
	for i := 0; i < n; i++ {
		var acc float32
		for j := 0; j < n; j++ {
			acc += A.Float32()[i*n+j] * x.Float32()[j]
		}
		d := float64(y.Float32()[i] - acc)
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	fmt.Printf("max deviation from host reference: %.3g\n", worst)
}
