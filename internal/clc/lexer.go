package clc

import (
	"fmt"
	"strings"
)

// Error is a front-end diagnostic carrying a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList collects diagnostics so callers see every problem in one pass.
type ErrorList []*Error

func (l ErrorList) Error() string {
	if len(l) == 0 {
		return "no errors"
	}
	parts := make([]string, 0, len(l))
	for _, e := range l {
		parts = append(parts, e.Error())
	}
	return strings.Join(parts, "\n")
}

// Err returns the list as an error, or nil when it is empty.
func (l ErrorList) Err() error {
	if len(l) == 0 {
		return nil
	}
	return l
}

// Lexer turns OpenCL C source text into a token stream. Line comments,
// block comments, and line continuations are skipped. The lexer is
// separate from the parser so tests can verify tokenization directly.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
	errs ErrorList
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns the diagnostics accumulated so far.
func (lx *Lexer) Errors() ErrorList { return lx.errs }

func (lx *Lexer) errorf(pos Pos, format string, args ...any) {
	lx.errs = append(lx.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

func (lx *Lexer) skipSpaceAndComments() {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '\\' && lx.peek2() == '\n':
			lx.advance()
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				lx.errorf(start, "unterminated block comment")
			}
		case c == '#':
			// Preprocessor directives are not supported; kernels in this
			// repository are generated without them. Skip the line so a
			// stray #pragma does not cascade into parse errors.
			start := lx.pos()
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
			lx.errorf(start, "preprocessor directives are not supported")
		default:
			return
		}
	}
}

// Next returns the next token in the stream.
func (lx *Lexer) Next() Token {
	lx.skipSpaceAndComments()
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: pos}
	}
	c := lx.peek()
	switch {
	case isIdentStart(c):
		start := lx.off
		for lx.off < len(lx.src) && isIdentPart(lx.peek()) {
			lx.advance()
		}
		text := lx.src[start:lx.off]
		if keywords[text] {
			return Token{Kind: TokKeyword, Text: text, Pos: pos}
		}
		return Token{Kind: TokIdent, Text: text, Pos: pos}
	case isDigit(c) || (c == '.' && isDigit(lx.peek2())):
		return lx.lexNumber(pos)
	}
	lx.advance()
	two := func(next byte, yes, no TokenKind) Token {
		if lx.peek() == next {
			lx.advance()
			return Token{Kind: yes, Text: tokenText[yes], Pos: pos}
		}
		return Token{Kind: no, Text: tokenText[no], Pos: pos}
	}
	switch c {
	case '(':
		return Token{Kind: TokLParen, Text: "(", Pos: pos}
	case ')':
		return Token{Kind: TokRParen, Text: ")", Pos: pos}
	case '{':
		return Token{Kind: TokLBrace, Text: "{", Pos: pos}
	case '}':
		return Token{Kind: TokRBrace, Text: "}", Pos: pos}
	case '[':
		return Token{Kind: TokLBracket, Text: "[", Pos: pos}
	case ']':
		return Token{Kind: TokRBracket, Text: "]", Pos: pos}
	case ',':
		return Token{Kind: TokComma, Text: ",", Pos: pos}
	case ';':
		return Token{Kind: TokSemi, Text: ";", Pos: pos}
	case ':':
		return Token{Kind: TokColon, Text: ":", Pos: pos}
	case '?':
		return Token{Kind: TokQuestion, Text: "?", Pos: pos}
	case '~':
		return Token{Kind: TokTilde, Text: "~", Pos: pos}
	case '+':
		if lx.peek() == '+' {
			lx.advance()
			return Token{Kind: TokInc, Text: "++", Pos: pos}
		}
		return two('=', TokPlusAssign, TokPlus)
	case '-':
		if lx.peek() == '-' {
			lx.advance()
			return Token{Kind: TokDec, Text: "--", Pos: pos}
		}
		return two('=', TokMinusAssign, TokMinus)
	case '*':
		return two('=', TokStarAssign, TokStar)
	case '/':
		return two('=', TokSlashAssign, TokSlash)
	case '%':
		return two('=', TokPercentAssign, TokPercent)
	case '=':
		return two('=', TokEq, TokAssign)
	case '!':
		return two('=', TokNe, TokNot)
	case '<':
		if lx.peek() == '<' {
			lx.advance()
			return two('=', TokShlAssign, TokShl)
		}
		return two('=', TokLe, TokLt)
	case '>':
		if lx.peek() == '>' {
			lx.advance()
			return two('=', TokShrAssign, TokShr)
		}
		return two('=', TokGe, TokGt)
	case '&':
		if lx.peek() == '&' {
			lx.advance()
			return Token{Kind: TokAndAnd, Text: "&&", Pos: pos}
		}
		return two('=', TokAmpAssign, TokAmp)
	case '|':
		if lx.peek() == '|' {
			lx.advance()
			return Token{Kind: TokOrOr, Text: "||", Pos: pos}
		}
		return two('=', TokPipeAssign, TokPipe)
	case '^':
		return two('=', TokCaretAssign, TokCaret)
	}
	lx.errorf(pos, "unexpected character %q", string(c))
	return lx.Next()
}

func (lx *Lexer) lexNumber(pos Pos) Token {
	start := lx.off
	isFloat := false
	if lx.peek() == '0' && (lx.peek2() == 'x' || lx.peek2() == 'X') {
		lx.advance()
		lx.advance()
		for lx.off < len(lx.src) && isHexDigit(lx.peek()) {
			lx.advance()
		}
	} else {
		for lx.off < len(lx.src) && isDigit(lx.peek()) {
			lx.advance()
		}
		if lx.peek() == '.' {
			isFloat = true
			lx.advance()
			for lx.off < len(lx.src) && isDigit(lx.peek()) {
				lx.advance()
			}
		}
		if lx.peek() == 'e' || lx.peek() == 'E' {
			save := lx.off
			lx.advance()
			if lx.peek() == '+' || lx.peek() == '-' {
				lx.advance()
			}
			if isDigit(lx.peek()) {
				isFloat = true
				for lx.off < len(lx.src) && isDigit(lx.peek()) {
					lx.advance()
				}
			} else {
				lx.off = save
			}
		}
	}
	text := lx.src[start:lx.off]
	// Suffixes: f/F marks float; u/U and l/L are integer suffixes.
	switch lx.peek() {
	case 'f', 'F':
		isFloat = true
		lx.advance()
	case 'u', 'U', 'l', 'L':
		lx.advance()
		if lx.peek() == 'l' || lx.peek() == 'L' || lx.peek() == 'u' || lx.peek() == 'U' {
			lx.advance()
		}
	}
	kind := TokIntLit
	if isFloat {
		kind = TokFloatLit
	}
	return Token{Kind: kind, Text: text, Pos: pos}
}

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// Tokenize lexes the whole input and returns the tokens plus diagnostics.
func Tokenize(src string) ([]Token, ErrorList) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t := lx.Next()
		toks = append(toks, t)
		if t.Kind == TokEOF {
			break
		}
	}
	return toks, lx.Errors()
}
