package clc

import (
	"strings"
	"testing"
)

const gesummvSrc = `
__kernel void gesummv(__global float* A, __global float* B,
                      __global float* x, __global float* y,
                      float alpha, float beta, int N)
{
    int i = get_global_id(0);
    if (i < N) {
        float tmp = 0.0f;
        float yv = 0.0f;
        for (int j = 0; j < N; j++) {
            tmp += A[i * N + j] * x[j];
            yv += B[i * N + j] * x[j];
        }
        y[i] = alpha * tmp + beta * yv;
    }
}
`

func mustCompile(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile failed: %v", err)
	}
	return prog
}

func TestParseGesummv(t *testing.T) {
	prog := mustCompile(t, gesummvSrc)
	if len(prog.Kernels) != 1 {
		t.Fatalf("got %d kernels, want 1", len(prog.Kernels))
	}
	k := prog.Kernels[0]
	if k.Name != "gesummv" {
		t.Errorf("kernel name = %q", k.Name)
	}
	if len(k.Params) != 7 {
		t.Fatalf("got %d params, want 7", len(k.Params))
	}
	if k.Params[0].Type != GlobalPtr(KindFloat) {
		t.Errorf("param A type = %v", k.Params[0].Type)
	}
	if k.Params[4].Type != TypeFloat {
		t.Errorf("param alpha type = %v", k.Params[4].Type)
	}
	if k.Params[6].Type != TypeInt {
		t.Errorf("param N type = %v", k.Params[6].Type)
	}
}

func TestParseMultipleKernels(t *testing.T) {
	src := `
__kernel void k1(__global float* a) { a[get_global_id(0)] = 1.0f; }
__kernel void k2(__global float* a) { a[get_global_id(0)] = 2.0f; }
`
	prog := mustCompile(t, src)
	if len(prog.Kernels) != 2 {
		t.Fatalf("got %d kernels, want 2", len(prog.Kernels))
	}
	if prog.Kernel("k2") == nil || prog.Kernel("k3") != nil {
		t.Error("Kernel() lookup broken")
	}
}

func TestParsePrecedence(t *testing.T) {
	src := `__kernel void k(__global int* a, int x, int y, int z) {
        a[0] = x + y * z;
        a[1] = (x + y) * z;
        a[2] = x < y && y < z || z == 0;
        a[3] = x & 3 | y ^ 2;
        a[4] = x << 2 + 1;
    }`
	prog := mustCompile(t, src)
	body := prog.Kernels[0].Body
	// a[0] = x + y*z : RHS must be Binary(Add, x, Binary(Mul,y,z))
	as := body.Stmts[0].(*ExprStmt).X.(*Assign)
	add, ok := as.RHS.(*Binary)
	if !ok || add.Op != BinAdd {
		t.Fatalf("a[0] RHS not an add: %v", ExprString(as.RHS))
	}
	if mul, ok := add.R.(*Binary); !ok || mul.Op != BinMul {
		t.Errorf("mul does not bind tighter than add: %v", ExprString(as.RHS))
	}
	// a[2]: || at top
	as2 := body.Stmts[2].(*ExprStmt).X.(*Assign)
	if or, ok := as2.RHS.(*Binary); !ok || or.Op != BinLOr {
		t.Errorf("|| not at top: %v", ExprString(as2.RHS))
	}
	// a[4]: shift binds looser than +: x << (2+1)
	as4 := body.Stmts[4].(*ExprStmt).X.(*Assign)
	if shl, ok := as4.RHS.(*Binary); !ok || shl.Op != BinShl {
		t.Errorf("<< not at top: %v", ExprString(as4.RHS))
	} else if add2, ok := shl.R.(*Binary); !ok || add2.Op != BinAdd {
		t.Errorf("+ does not bind tighter than <<: %v", ExprString(as4.RHS))
	}
}

func TestParseCastVsParen(t *testing.T) {
	src := `__kernel void k(__global float* a, int n) {
        a[0] = (float)n;
        a[1] = (n) + 1;
        int z = (int)a[0];
        a[2] = (float)(n + 1);
    }`
	prog := mustCompile(t, src)
	body := prog.Kernels[0].Body
	if _, ok := body.Stmts[0].(*ExprStmt).X.(*Assign).RHS.(*Cast); !ok {
		t.Error("(float)n not parsed as cast")
	}
	rhs1 := body.Stmts[1].(*ExprStmt).X.(*Assign).RHS
	if _, ok := rhs1.(*Binary); !ok {
		t.Errorf("(n) + 1 not parsed as binary: %T", rhs1)
	}
}

func TestParseControlFlow(t *testing.T) {
	src := `__kernel void k(__global int* a, int n) {
        int s = 0;
        for (int i = 0; i < n; i++) {
            if (i % 2 == 0) continue;
            if (i > 100) break;
            s += i;
        }
        int j = 0;
        while (j < n) { j++; }
        do { j--; } while (j > 0);
        a[0] = s + j;
    }`
	prog := mustCompile(t, src)
	k := prog.Kernels[0]
	var fors, whiles, dos int
	var walk func(s Stmt)
	walk = func(s Stmt) {
		switch st := s.(type) {
		case *Block:
			for _, inner := range st.Stmts {
				walk(inner)
			}
		case *ForStmt:
			fors++
			walk(st.Body)
		case *WhileStmt:
			whiles++
			walk(st.Body)
		case *DoWhileStmt:
			dos++
			walk(st.Body)
		case *IfStmt:
			walk(st.Then)
			if st.Else != nil {
				walk(st.Else)
			}
		}
	}
	walk(k.Body)
	if fors != 1 || whiles != 1 || dos != 1 {
		t.Errorf("loop counts: for=%d while=%d do=%d", fors, whiles, dos)
	}
}

func TestParseLocalArrayAndBarrier(t *testing.T) {
	src := `__kernel void k(__global int* a) {
        __local int wl[1];
        if (get_local_id(0) == 0) wl[0] = 0;
        barrier(CLK_LOCAL_MEM_FENCE);
        int w = atomic_inc(wl);
        a[get_global_id(0)] = w;
    }`
	prog := mustCompile(t, src)
	k := prog.Kernels[0]
	ds, ok := k.Body.Stmts[0].(*DeclStmt)
	if !ok || ds.Decls[0].ArrayLen != 1 || !ds.Decls[0].IsLocal {
		t.Fatalf("__local array decl not parsed: %+v", k.Body.Stmts[0])
	}
	if _, ok := k.Body.Stmts[2].(*BarrierStmt); !ok {
		t.Errorf("barrier not parsed as BarrierStmt: %T", k.Body.Stmts[2])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                             // no kernel
		"__kernel int k() {}",          // non-void kernel
		"__kernel void k( { }",         // bad params
		"__kernel void k() { x = 1; }", // undeclared
		"__kernel void k() { int x = 1; int x = 2; }", // redeclaration
		"__kernel void k(__global float* a) { a[0] = b[0]; }",
		"__kernel void k() { return 3; }",                                               // value return
		"__kernel void k() { break; }",                                                  // break outside loop
		"__kernel void k(int n) { n[0] = 1; }",                                          // subscript non-pointer
		"__kernel void k(float f) { int x = f % 2; }",                                   // float %
		"__kernel void k() { for (int i=0;i<4;i++) { barrier(CLK_LOCAL_MEM_FENCE); } }", // nested barrier
		"__kernel void k(__global float* a) { atomic_inc(a); }",                         // atomic on float*
	}
	for _, src := range cases {
		if _, err := Compile(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestCheckAnnotations(t *testing.T) {
	prog := mustCompile(t, gesummvSrc)
	k := prog.Kernels[0]
	if k.NumSlots != len(k.Params)+len(k.Locals) {
		t.Errorf("NumSlots=%d, params=%d locals=%d", k.NumSlots, len(k.Params), len(k.Locals))
	}
	// Every param has a symbol with a dense slot.
	for i, prm := range k.Params {
		if prm.Sym == nil || prm.Sym.Slot != i {
			t.Errorf("param %d symbol/slot wrong: %+v", i, prm.Sym)
		}
	}
	// Memory sites must be uniquely numbered.
	seen := map[int]bool{}
	var walkExpr func(x Expr)
	walkExpr = func(x Expr) {
		switch e := x.(type) {
		case *Index:
			if seen[e.Site] {
				t.Errorf("duplicate site id %d", e.Site)
			}
			seen[e.Site] = true
			walkExpr(e.Base)
			walkExpr(e.Idx)
		case *Binary:
			walkExpr(e.L)
			walkExpr(e.R)
		case *Assign:
			walkExpr(e.LHS)
			walkExpr(e.RHS)
		case *Unary:
			walkExpr(e.X)
		case *Call:
			for _, a := range e.Args {
				walkExpr(a)
			}
		}
	}
	var walkStmt func(s Stmt)
	walkStmt = func(s Stmt) {
		switch st := s.(type) {
		case *Block:
			for _, inner := range st.Stmts {
				walkStmt(inner)
			}
		case *DeclStmt:
			for _, d := range st.Decls {
				if d.Init != nil {
					walkExpr(d.Init)
				}
			}
		case *ExprStmt:
			walkExpr(st.X)
		case *IfStmt:
			walkExpr(st.Cond)
			walkStmt(st.Then)
			if st.Else != nil {
				walkStmt(st.Else)
			}
		case *ForStmt:
			if st.Init != nil {
				walkStmt(st.Init)
			}
			if st.Cond != nil {
				walkExpr(st.Cond)
			}
			if st.Post != nil {
				walkExpr(st.Post)
			}
			walkStmt(st.Body)
		}
	}
	walkStmt(k.Body)
	if len(seen) != 5 {
		t.Errorf("got %d memory sites, want 5 (A[..], x[j], B[..], x[j], y[i])", len(seen))
	}
}

func TestPrinterRoundTrip(t *testing.T) {
	sources := []string{
		gesummvSrc,
		`__kernel void k(__global int* a, __global const float* b, int n) {
            int i = get_global_id(0);
            int j = get_global_id(1);
            if (i < n && j < n) {
                a[i * n + j] = (int)(b[j * n + i] * 2.0f) % 7;
            }
        }`,
		`__kernel void k(__global float* a) {
            __local int wl[2];
            if (get_local_id(0) == 0) { wl[0] = 0; wl[1] = 0; }
            barrier(CLK_LOCAL_MEM_FENCE);
            for (int w = atomic_inc(wl); w < get_local_size(0); w = atomic_inc(wl)) {
                a[w] = w > 10 ? 1.0f : -1.0f;
            }
        }`,
	}
	for _, src := range sources {
		p1 := mustCompile(t, src)
		out1 := PrintProgram(p1)
		p2, err := Compile(out1)
		if err != nil {
			t.Fatalf("printed source does not recompile: %v\n%s", err, out1)
		}
		out2 := PrintProgram(p2)
		if out1 != out2 {
			t.Errorf("printer not a fixed point:\n--- first ---\n%s\n--- second ---\n%s", out1, out2)
		}
	}
}

func TestPrinterPreservesPrecedence(t *testing.T) {
	src := `__kernel void k(__global int* a, int x, int y, int z) {
        a[0] = (x + y) * z;
        a[1] = x - (y - z);
        a[2] = -(x + y);
        a[3] = x / (y * z);
    }`
	p1 := mustCompile(t, src)
	out := PrintProgram(p1)
	for _, want := range []string{"(x + y) * z", "x - (y - z)", "-(x + y)", "x / (y * z)"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed output lost grouping %q:\n%s", want, out)
		}
	}
}

// TestPrinterNestedSigns pins the regression where -(-x) printed as --x,
// which re-lexes as a pre-decrement: a phantom *store* through whatever
// lvalue followed. The printed form must re-parse to the same nested
// unary expression, never to an IncDec.
func TestPrinterNestedSigns(t *testing.T) {
	src := `__kernel void k(__global float* a, __global int* b, int x) {
        a[0] = (-(-a[1]));
        b[0] = -(-x);
        b[1] = ~(-x);
        b[2] = -(~x);
    }`
	p1 := mustCompile(t, src)
	out := PrintProgram(p1)
	if strings.Contains(out, "--") || strings.Contains(out, "++") {
		t.Fatalf("nested signs merged into an inc/dec token:\n%s", out)
	}
	p2, err := Compile(out)
	if err != nil {
		t.Fatalf("printed source does not recompile: %v\n%s", err, out)
	}
	var incdec int
	var walkExpr func(Expr)
	walkExpr = func(e Expr) {
		switch x := e.(type) {
		case *IncDec:
			incdec++
		case *Unary:
			walkExpr(x.X)
		case *Binary:
			walkExpr(x.L)
			walkExpr(x.R)
		case *Assign:
			walkExpr(x.LHS)
			walkExpr(x.RHS)
		case *Index:
			walkExpr(x.Base)
			walkExpr(x.Idx)
		}
	}
	var walkStmt func(Stmt)
	walkStmt = func(s Stmt) {
		switch st := s.(type) {
		case *Block:
			for _, inner := range st.Stmts {
				walkStmt(inner)
			}
		case *ExprStmt:
			walkExpr(st.X)
		}
	}
	walkStmt(p2.Kernels[0].Body)
	if incdec != 0 {
		t.Errorf("re-parsed printed source contains %d inc/dec nodes, want 0:\n%s", incdec, out)
	}
}
