package clc_test

import (
	"testing"

	"dopia/internal/clc"
	"dopia/internal/conformance"
	"dopia/internal/workloads"
)

// seedSources collects the front-end fuzz seed corpus: the paper's 14
// real kernels, handcrafted adversarial fragments (unterminated
// constructs, deep nesting, junk bytes), and the shared conformance seed
// corpus in testdata/conformance/seeds — promoted fuzz-corpus entries
// plus generated exemplars, which the conformance harness also replays
// through the engine differential (TestSeedCorpusConformance). More
// seeds live in testdata/fuzz/FuzzParse and testdata/fuzz/FuzzLex.
func seedSources(tb testing.TB) []string {
	tb.Helper()
	srcs := []string{
		"",
		"__kernel",
		"__kernel void k(",
		"__kernel void k() { return }",
		"__kernel void k(__global float* a) { a[get_global_id(0)] = ; }",
		"__kernel void k() { for(;;) }",
		"__kernel void k() { if (1 { } }",
		"/* unterminated",
		`"unterminated string`,
		"__kernel void k() { int x = 0x; }",
		"__kernel void k() { barrier(CLK_LOCAL_MEM_FENCE); }",
		"\x00\xff\xfe__kernel",
		"__kernel void k() { ((((((((((((((((1)))))))))))))))); }",
		"int f() { return f(); } __kernel void k() { f(); }",
	}
	wls, err := workloads.RealWorkloads(64, 16)
	if err != nil {
		tb.Fatalf("real workloads: %v", err)
	}
	seen := map[string]bool{}
	for _, w := range wls {
		if !seen[w.Source] {
			seen[w.Source] = true
			srcs = append(srcs, w.Source)
		}
	}
	shared, err := conformance.SeedSources()
	if err != nil {
		tb.Fatalf("shared seed corpus: %v", err)
	}
	for _, s := range shared {
		if !seen[s] {
			seen[s] = true
			srcs = append(srcs, s)
		}
	}
	return srcs
}

// FuzzLex asserts the lexer never panics and always terminates on
// arbitrary input.
func FuzzLex(f *testing.F) {
	for _, s := range seedSources(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks, _ := clc.Tokenize(src)
		if len(toks) == 0 {
			t.Fatal("token stream missing EOF")
		}
	})
}

// FuzzParse asserts the full front-end (Parse and Compile) never panics
// on arbitrary input: any failure must come back as an error.
func FuzzParse(f *testing.F) {
	for _, s := range seedSources(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := clc.Parse(src)
		if err == nil && prog == nil {
			t.Fatal("Parse returned neither program nor error")
		}
		// Compile exercises the type checker on whatever parsed.
		_, _ = clc.Compile(src)
	})
}
