package clc_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dopia/internal/clc"
	"dopia/internal/workloads"
)

// TestPropertyPrinterRoundTrip: for random synthetic-workload kernels,
// print(compile(src)) recompiles, and printing is a fixed point.
func TestPropertyPrinterRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(3))}
	prop := func(alphaRaw, dimsRaw, gammaRaw, tRaw, rRaw, cRaw, wdRaw, dtRaw uint8) bool {
		dtype := clc.KindFloat
		if dtRaw%2 == 1 {
			dtype = clc.KindInt
		}
		spec := workloads.SynthSpec{
			Alpha:      1 + int(alphaRaw)%3,
			MatDims:    3 + int(dimsRaw)%2,
			Gamma:      int(gammaRaw) % 5,
			WorkDim:    1 + int(wdRaw)%2,
			DType:      dtype,
			Size:       16384,
			WGSize:     64,
			Transposed: int(tRaw) % 3,
			Random:     int(rRaw) % 3,
			Constant:   int(cRaw) % 3,
		}
		// Some modifier counts exceed what the spec allows; skip those.
		w, err := spec.Generate()
		if err != nil {
			return true
		}
		p1, err := clc.Compile(w.Source)
		if err != nil {
			t.Logf("%s: %v", w.Name, err)
			return false
		}
		out1 := clc.PrintProgram(p1)
		p2, err := clc.Compile(out1)
		if err != nil {
			t.Logf("%s: printed source does not recompile: %v", w.Name, err)
			return false
		}
		out2 := clc.PrintProgram(p2)
		if out1 != out2 {
			t.Logf("%s: printer not a fixed point", w.Name)
			return false
		}
		// Structural invariants survive the round trip.
		k1, k2 := p1.Kernels[0], p2.Kernels[0]
		if k1.Name != k2.Name || len(k1.Params) != len(k2.Params) ||
			k1.NumSlots != k2.NumSlots || len(k1.Locals) != len(k2.Locals) {
			t.Logf("%s: structure changed across round trip", w.Name)
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
