package clc

// This file defines the abstract syntax tree produced by the parser and
// annotated by the type checker. Expression nodes carry their resolved
// type (T) after Check; Ident nodes carry their symbol. Every node carries
// a position for diagnostics.

// Node is the interface implemented by all AST nodes.
type Node interface {
	Pos() Pos
}

// Expr is an expression node. ResultType returns the type assigned by the
// checker (the zero Type before checking).
type Expr interface {
	Node
	ResultType() Type
	exprNode()
}

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
}

// ---------------------------------------------------------------------------
// Program structure

// Program is a translation unit: one or more kernels.
type Program struct {
	Kernels []*Kernel
	Source  string // original source text, retained for reporting
}

// Kernel finds a kernel by name, or nil.
func (p *Program) Kernel(name string) *Kernel {
	for _, k := range p.Kernels {
		if k.Name == name {
			return k
		}
	}
	return nil
}

// Kernel is a __kernel function definition.
type Kernel struct {
	Name    string
	Params  []*Param
	Body    *Block
	NamePos Pos

	// Filled in by the checker:
	Locals   []*Symbol // all local variable symbols, slot-indexed
	NumSlots int       // len(Params) + len(Locals)
}

// Pos returns the position of the kernel name.
func (k *Kernel) Pos() Pos { return k.NamePos }

// Param is a kernel parameter (scalar or address-space-qualified pointer).
type Param struct {
	Name    string
	Type    Type
	NamePos Pos
	Sym     *Symbol
}

// Pos returns the position of the parameter name.
func (p *Param) Pos() Pos { return p.NamePos }

// SymbolClass distinguishes what a symbol refers to.
type SymbolClass int

// Symbol classes.
const (
	SymParam SymbolClass = iota
	SymLocalVar
)

// Symbol is a named entity in a kernel: a parameter or a local variable.
// Slot is a dense index used by the interpreter's environment.
type Symbol struct {
	Name     string
	Type     Type
	Class    SymbolClass
	Slot     int
	ArrayLen int  // > 0 for a __local (or private) array declaration
	IsLocal  bool // declared __local (work-group shared)
}

// ---------------------------------------------------------------------------
// Expressions

type exprBase struct {
	P Pos
	T Type
}

func (e *exprBase) Pos() Pos         { return e.P }
func (e *exprBase) ResultType() Type { return e.T }
func (e *exprBase) exprNode()        {}

// Ident is a reference to a parameter or local variable.
type Ident struct {
	exprBase
	Name string
	Sym  *Symbol
}

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	Value int64
	Text  string
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	exprBase
	Value float64
	Text  string
}

// UnaryOp enumerates unary operators.
type UnaryOp int

// Unary operators.
const (
	UnaryNeg    UnaryOp = iota // -x
	UnaryNot                   // !x
	UnaryBitNot                // ~x
	UnaryPlus                  // +x
)

func (op UnaryOp) String() string {
	switch op {
	case UnaryNeg:
		return "-"
	case UnaryNot:
		return "!"
	case UnaryBitNot:
		return "~"
	case UnaryPlus:
		return "+"
	}
	return "?"
}

// Unary is a unary operation.
type Unary struct {
	exprBase
	Op UnaryOp
	X  Expr
}

// BinaryOp enumerates binary operators.
type BinaryOp int

// Binary operators.
const (
	BinAdd BinaryOp = iota
	BinSub
	BinMul
	BinDiv
	BinRem
	BinShl
	BinShr
	BinAnd // bitwise &
	BinOr  // bitwise |
	BinXor
	BinEq
	BinNe
	BinLt
	BinGt
	BinLe
	BinGe
	BinLAnd // &&
	BinLOr  // ||
)

func (op BinaryOp) String() string {
	switch op {
	case BinAdd:
		return "+"
	case BinSub:
		return "-"
	case BinMul:
		return "*"
	case BinDiv:
		return "/"
	case BinRem:
		return "%"
	case BinShl:
		return "<<"
	case BinShr:
		return ">>"
	case BinAnd:
		return "&"
	case BinOr:
		return "|"
	case BinXor:
		return "^"
	case BinEq:
		return "=="
	case BinNe:
		return "!="
	case BinLt:
		return "<"
	case BinGt:
		return ">"
	case BinLe:
		return "<="
	case BinGe:
		return ">="
	case BinLAnd:
		return "&&"
	case BinLOr:
		return "||"
	}
	return "?"
}

// IsComparison reports whether the operator yields a boolean result.
func (op BinaryOp) IsComparison() bool {
	switch op {
	case BinEq, BinNe, BinLt, BinGt, BinLe, BinGe:
		return true
	}
	return false
}

// IsLogical reports whether the operator is && or ||.
func (op BinaryOp) IsLogical() bool { return op == BinLAnd || op == BinLOr }

// Binary is a binary operation.
type Binary struct {
	exprBase
	Op   BinaryOp
	L, R Expr
}

// Cond is the ternary conditional operator c ? t : f.
type Cond struct {
	exprBase
	C, Then, Else Expr
}

// Index is an array subscript p[i] where p is a pointer or local array.
type Index struct {
	exprBase
	Base  Expr // Ident of pointer/array symbol
	Idx   Expr
	Site  int // memory-site id assigned by the checker, unique per kernel
	Space AddrSpace
}

// Call is a builtin function call (user-defined functions are not in the
// subset; every workload in the evaluation is a single self-contained
// kernel, as are the paper's).
type Call struct {
	exprBase
	Name    string
	Args    []Expr
	Builtin *Builtin
}

// Cast is an explicit scalar conversion, e.g. (int)x.
type Cast struct {
	exprBase
	To Type
	X  Expr
}

// AssignOp enumerates assignment flavours.
type AssignOp int

// Assignment operators. AssignPlain is "="; the others are compound.
const (
	AssignPlain AssignOp = iota
	AssignAdd
	AssignSub
	AssignMul
	AssignDiv
	AssignRem
	AssignAnd
	AssignOr
	AssignXor
	AssignShl
	AssignShr
)

func (op AssignOp) String() string {
	switch op {
	case AssignPlain:
		return "="
	case AssignAdd:
		return "+="
	case AssignSub:
		return "-="
	case AssignMul:
		return "*="
	case AssignDiv:
		return "/="
	case AssignRem:
		return "%="
	case AssignAnd:
		return "&="
	case AssignOr:
		return "|="
	case AssignXor:
		return "^="
	case AssignShl:
		return "<<="
	case AssignShr:
		return ">>="
	}
	return "?"
}

// BinOp returns the arithmetic operator underlying a compound assignment.
func (op AssignOp) BinOp() (BinaryOp, bool) {
	switch op {
	case AssignAdd:
		return BinAdd, true
	case AssignSub:
		return BinSub, true
	case AssignMul:
		return BinMul, true
	case AssignDiv:
		return BinDiv, true
	case AssignRem:
		return BinRem, true
	case AssignAnd:
		return BinAnd, true
	case AssignOr:
		return BinOr, true
	case AssignXor:
		return BinXor, true
	case AssignShl:
		return BinShl, true
	case AssignShr:
		return BinShr, true
	}
	return 0, false
}

// Assign is an assignment expression; LHS is an Ident or Index.
type Assign struct {
	exprBase
	Op  AssignOp
	LHS Expr
	RHS Expr
}

// IncDec is a pre- or post-increment/decrement of an Ident or Index.
type IncDec struct {
	exprBase
	X    Expr
	Decr bool
	Post bool
}

// ---------------------------------------------------------------------------
// Statements

type stmtBase struct {
	P Pos
}

func (s *stmtBase) Pos() Pos  { return s.P }
func (s *stmtBase) stmtNode() {}

// Block is a brace-delimited statement list.
type Block struct {
	stmtBase
	Stmts []Stmt
}

// DeclStmt declares one or more variables of a common base type.
type DeclStmt struct {
	stmtBase
	Decls []*VarDecl
}

// VarDecl is a single declarator within a DeclStmt.
type VarDecl struct {
	Name     string
	Type     Type
	Init     Expr // may be nil
	ArrayLen int  // > 0 for array declarator
	IsLocal  bool // declared __local
	NamePos  Pos
	Sym      *Symbol
}

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	stmtBase
	X Expr
}

// IfStmt is a conditional with optional else branch.
type IfStmt struct {
	stmtBase
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// ForStmt is a C-style for loop. Init may be a DeclStmt or ExprStmt.
type ForStmt struct {
	stmtBase
	Init Stmt // may be nil
	Cond Expr // may be nil (true)
	Post Expr // may be nil
	Body Stmt
	// LoopID is a dense per-kernel index assigned by the checker, used by
	// the static analysis to reason about loop nests.
	LoopID int
}

// WhileStmt is a while loop.
type WhileStmt struct {
	stmtBase
	Cond   Expr
	Body   Stmt
	LoopID int
}

// DoWhileStmt is a do { } while loop.
type DoWhileStmt struct {
	stmtBase
	Body   Stmt
	Cond   Expr
	LoopID int
}

// ReturnStmt exits the kernel for the current work-item.
type ReturnStmt struct {
	stmtBase
	// Kernels return void; no value.
}

// BreakStmt breaks the innermost loop.
type BreakStmt struct{ stmtBase }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ stmtBase }

// BarrierStmt is a work-group barrier: barrier(CLK_LOCAL_MEM_FENCE) or
// barrier(CLK_GLOBAL_MEM_FENCE). The checker only accepts it at the top
// level of a kernel body, which is the only placement Dopia's malleable
// code generator emits; the interpreter executes barriers by segmenting
// the body.
type BarrierStmt struct {
	stmtBase
	Flags string
}
