package clc

import "fmt"

// Check performs name resolution and type checking on a parsed program.
// After a successful Check every expression node carries its result type,
// every Ident its Symbol, every Index a unique memory-site id, and every
// loop a dense LoopID. These annotations are what the analysis,
// transformation, and interpretation stages consume.
func Check(prog *Program) error {
	c := &checker{}
	names := map[string]bool{}
	for _, k := range prog.Kernels {
		if names[k.Name] {
			c.errorf(k.Pos(), "duplicate kernel name %q", k.Name)
		}
		names[k.Name] = true
		c.checkKernel(k)
	}
	return c.errs.Err()
}

type scope struct {
	parent *scope
	syms   map[string]*Symbol
}

func (s *scope) lookup(name string) *Symbol {
	for sc := s; sc != nil; sc = sc.parent {
		if sym, ok := sc.syms[name]; ok {
			return sym
		}
	}
	return nil
}

type checker struct {
	errs     ErrorList
	kernel   *Kernel
	scope    *scope
	nextSlot int
	nextSite int
	nextLoop int
	loopDep  int
}

func (c *checker) errorf(pos Pos, format string, args ...any) {
	c.errs = append(c.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (c *checker) push() { c.scope = &scope{parent: c.scope, syms: map[string]*Symbol{}} }
func (c *checker) pop()  { c.scope = c.scope.parent }

func (c *checker) declare(name string, pos Pos, sym *Symbol) {
	if _, exists := c.scope.syms[name]; exists {
		c.errorf(pos, "redeclaration of %q in the same scope", name)
		return
	}
	c.scope.syms[name] = sym
}

func (c *checker) checkKernel(k *Kernel) {
	c.kernel = k
	c.scope = nil
	c.nextSlot = 0
	c.nextSite = 0
	c.nextLoop = 0
	c.loopDep = 0
	k.Locals = nil
	c.push()
	for _, prm := range k.Params {
		if prm.Type.Kind == KindVoid {
			c.errorf(prm.Pos(), "parameter %q has void type", prm.Name)
		}
		sym := &Symbol{Name: prm.Name, Type: prm.Type, Class: SymParam, Slot: c.nextSlot}
		c.nextSlot++
		prm.Sym = sym
		c.declare(prm.Name, prm.Pos(), sym)
	}
	if k.Body != nil {
		// Barriers are only legal at the top level of the kernel body.
		c.checkBlockStmts(k.Body, true)
	}
	k.NumSlots = c.nextSlot
	c.pop()
}

func (c *checker) checkBlockStmts(b *Block, topLevel bool) {
	c.push()
	for _, s := range b.Stmts {
		c.checkStmt(s, topLevel)
	}
	c.pop()
}

func (c *checker) checkStmt(s Stmt, topLevel bool) {
	switch st := s.(type) {
	case *Block:
		c.checkBlockStmts(st, false)
	case *DeclStmt:
		c.checkDecl(st)
	case *ExprStmt:
		c.checkExpr(st.X)
	case *IfStmt:
		c.checkCondExpr(st.Cond)
		c.checkStmt(st.Then, false)
		if st.Else != nil {
			c.checkStmt(st.Else, false)
		}
	case *ForStmt:
		c.push()
		if st.Init != nil {
			c.checkStmt(st.Init, false)
		}
		if st.Cond != nil {
			c.checkCondExpr(st.Cond)
		}
		if st.Post != nil {
			c.checkExpr(st.Post)
		}
		st.LoopID = c.nextLoop
		c.nextLoop++
		c.loopDep++
		c.checkStmt(st.Body, false)
		c.loopDep--
		c.pop()
	case *WhileStmt:
		c.checkCondExpr(st.Cond)
		st.LoopID = c.nextLoop
		c.nextLoop++
		c.loopDep++
		c.checkStmt(st.Body, false)
		c.loopDep--
	case *DoWhileStmt:
		st.LoopID = c.nextLoop
		c.nextLoop++
		c.loopDep++
		c.checkStmt(st.Body, false)
		c.loopDep--
		c.checkCondExpr(st.Cond)
	case *ReturnStmt, *BreakStmt, *ContinueStmt:
		if _, isBrk := s.(*BreakStmt); isBrk && c.loopDep == 0 {
			c.errorf(s.Pos(), "break outside loop")
		}
		if _, isCont := s.(*ContinueStmt); isCont && c.loopDep == 0 {
			c.errorf(s.Pos(), "continue outside loop")
		}
	case *BarrierStmt:
		if !topLevel {
			c.errorf(st.Pos(), "barrier() is only supported at the top level of a kernel body")
		}
	default:
		c.errorf(s.Pos(), "unhandled statement type %T", s)
	}
}

func (c *checker) checkDecl(ds *DeclStmt) {
	for _, d := range ds.Decls {
		t := d.Type
		if d.ArrayLen > 0 && t.Ptr {
			c.errorf(d.NamePos, "array of pointers is not supported")
		}
		sym := &Symbol{
			Name:     d.Name,
			Type:     t,
			Class:    SymLocalVar,
			Slot:     c.nextSlot,
			ArrayLen: d.ArrayLen,
			IsLocal:  d.IsLocal,
		}
		c.nextSlot++
		d.Sym = sym
		c.kernel.Locals = append(c.kernel.Locals, sym)
		if d.Init != nil {
			if d.ArrayLen > 0 {
				c.errorf(d.NamePos, "array initializers are not supported")
			}
			it := c.checkExpr(d.Init)
			if !assignable(t, it) {
				c.errorf(d.NamePos, "cannot initialize %s %q with %s", t, d.Name, it)
			}
		}
		if d.IsLocal && d.ArrayLen == 0 && !t.Ptr {
			// A __local scalar is shared by the work-group; supported.
			_ = sym
		}
		c.declare(d.Name, d.NamePos, sym)
	}
}

// assignable reports whether a value of type from can be assigned to a
// variable of type to (with implicit scalar conversion).
func assignable(to, from Type) bool {
	if to.Ptr || from.Ptr {
		return to.Ptr && from.Ptr && to.Kind == from.Kind
	}
	return to.IsNumeric() && from.IsNumeric()
}

func (c *checker) checkCondExpr(x Expr) {
	t := c.checkExpr(x)
	if t.Ptr || t.Kind == KindVoid {
		c.errorf(x.Pos(), "condition must be a scalar, got %s", t)
	}
}

// checkExpr type-checks x and returns its result type, annotating nodes.
func (c *checker) checkExpr(x Expr) Type {
	switch e := x.(type) {
	case *IntLit:
		e.T = TypeInt
		return e.T
	case *FloatLit:
		e.T = TypeFloat
		return e.T
	case *Ident:
		sym := c.scope.lookup(e.Name)
		if sym == nil {
			c.errorf(e.Pos(), "undeclared identifier %q", e.Name)
			e.T = TypeInt
			return e.T
		}
		e.Sym = sym
		if sym.ArrayLen > 0 {
			// Array-to-pointer decay.
			space := SpacePrivate
			if sym.IsLocal {
				space = SpaceLocal
			}
			e.T = Type{Kind: sym.Type.Kind, Ptr: true, Space: space}
		} else {
			e.T = sym.Type
		}
		return e.T
	case *Unary:
		xt := c.checkExpr(e.X)
		switch e.Op {
		case UnaryNeg, UnaryPlus:
			if !xt.IsNumeric() {
				c.errorf(e.Pos(), "invalid operand %s to unary %s", xt, e.Op)
			}
			e.T = xt
		case UnaryNot:
			if xt.Ptr {
				c.errorf(e.Pos(), "invalid operand %s to unary !", xt)
			}
			e.T = TypeInt
		case UnaryBitNot:
			if !xt.IsNumeric() || xt.Kind.IsFloat() {
				c.errorf(e.Pos(), "invalid operand %s to unary ~", xt)
			}
			e.T = xt
		}
		return e.T
	case *Binary:
		lt := c.checkExpr(e.L)
		rt := c.checkExpr(e.R)
		if e.Op.IsLogical() {
			e.T = TypeInt
			return e.T
		}
		if lt.Ptr || rt.Ptr {
			if e.Op == BinEq || e.Op == BinNe {
				e.T = TypeInt
				return e.T
			}
			c.errorf(e.Pos(), "invalid pointer operands to %s", e.Op)
			e.T = TypeInt
			return e.T
		}
		pk := promote(lt.Kind, rt.Kind)
		switch e.Op {
		case BinRem, BinShl, BinShr, BinAnd, BinOr, BinXor:
			if pk.IsFloat() {
				c.errorf(e.Pos(), "operator %s requires integer operands", e.Op)
				pk = KindInt
			}
		}
		if e.Op.IsComparison() {
			e.T = TypeInt
		} else {
			e.T = Type{Kind: pk}
		}
		return e.T
	case *Cond:
		c.checkCondExpr(e.C)
		tt := c.checkExpr(e.Then)
		et := c.checkExpr(e.Else)
		if tt.Ptr || et.Ptr {
			if tt != et {
				c.errorf(e.Pos(), "mismatched ternary branches %s and %s", tt, et)
			}
			e.T = tt
		} else {
			e.T = Type{Kind: promote(tt.Kind, et.Kind)}
		}
		return e.T
	case *Index:
		bt := c.checkExpr(e.Base)
		it := c.checkExpr(e.Idx)
		if !bt.Ptr {
			c.errorf(e.Pos(), "subscripted value is not a pointer (got %s)", bt)
			e.T = TypeInt
			return e.T
		}
		if _, ok := e.Base.(*Ident); !ok {
			c.errorf(e.Pos(), "subscript base must be a named pointer or array")
		}
		if it.Ptr || !it.Kind.IsInteger() {
			c.errorf(e.Idx.Pos(), "array index must be an integer, got %s", it)
		}
		e.Space = bt.Space
		e.Site = c.nextSite
		c.nextSite++
		e.T = Type{Kind: bt.Kind}
		return e.T
	case *Call:
		return c.checkCall(e)
	case *Cast:
		c.checkExpr(e.X)
		if e.To.Ptr {
			c.errorf(e.Pos(), "pointer casts are not supported")
		}
		e.T = e.To
		return e.T
	case *Assign:
		lt := c.checkLValue(e.LHS)
		rt := c.checkExpr(e.RHS)
		if !assignable(lt, rt) {
			c.errorf(e.Pos(), "cannot assign %s to %s", rt, lt)
		}
		if op, ok := e.Op.BinOp(); ok {
			switch op {
			case BinRem, BinShl, BinShr, BinAnd, BinOr, BinXor:
				if lt.Kind.IsFloat() || rt.Kind.IsFloat() {
					c.errorf(e.Pos(), "operator %s requires integer operands", e.Op)
				}
			}
		}
		e.T = lt
		return e.T
	case *IncDec:
		lt := c.checkLValue(e.X)
		if !lt.IsNumeric() {
			c.errorf(e.Pos(), "cannot increment value of type %s", lt)
		}
		e.T = lt
		return e.T
	}
	c.errorf(x.Pos(), "unhandled expression type %T", x)
	return TypeInt
}

// checkLValue checks an assignment target and returns its type.
func (c *checker) checkLValue(x Expr) Type {
	switch e := x.(type) {
	case *Ident:
		t := c.checkExpr(e)
		if e.Sym != nil && e.Sym.ArrayLen > 0 {
			c.errorf(e.Pos(), "cannot assign to array %q", e.Name)
		}
		if t.Ptr {
			c.errorf(e.Pos(), "assignment to pointer %q is not supported", e.Name)
		}
		return t
	case *Index:
		return c.checkExpr(e)
	}
	c.errorf(x.Pos(), "expression is not assignable")
	return c.checkExpr(x)
}

func (c *checker) checkCall(e *Call) Type {
	b := LookupBuiltin(e.Name)
	if b == nil {
		c.errorf(e.Pos(), "unknown function %q (user-defined functions are not in the subset)", e.Name)
		e.T = TypeInt
		return e.T
	}
	e.Builtin = b
	argTypes := make([]Type, len(e.Args))
	for i, a := range e.Args {
		argTypes[i] = c.checkExpr(a)
	}
	wantArgs := func(n int) bool {
		if len(e.Args) != n {
			c.errorf(e.Pos(), "%s expects %d argument(s), got %d", e.Name, n, len(e.Args))
			return false
		}
		return true
	}
	switch b.Kind {
	case BuiltinWorkItem:
		if e.Name == "get_work_dim" {
			wantArgs(0)
		} else if wantArgs(1) {
			if argTypes[0].Ptr || !argTypes[0].Kind.IsInteger() {
				c.errorf(e.Args[0].Pos(), "%s dimension must be an integer", e.Name)
			}
		}
		e.T = TypeInt
	case BuiltinMath:
		if wantArgs(1) && argTypes[0].Ptr {
			c.errorf(e.Args[0].Pos(), "%s requires a scalar argument", e.Name)
		}
		e.T = TypeFloat
	case BuiltinMath2:
		if wantArgs(2) {
			for i := range e.Args {
				if argTypes[i].Ptr {
					c.errorf(e.Args[i].Pos(), "%s requires scalar arguments", e.Name)
				}
			}
		}
		e.T = TypeFloat
	case BuiltinIntMinMax:
		if wantArgs(2) {
			for i := range e.Args {
				if argTypes[i].Ptr {
					c.errorf(e.Args[i].Pos(), "%s requires scalar arguments", e.Name)
				}
			}
			e.T = Type{Kind: promote(argTypes[0].Kind, argTypes[1].Kind)}
		} else {
			e.T = TypeInt
		}
	case BuiltinAbs:
		if wantArgs(1) && (argTypes[0].Ptr || argTypes[0].Kind.IsFloat()) {
			c.errorf(e.Pos(), "abs requires an integer argument (use fabs for floats)")
		}
		e.T = TypeInt
	case BuiltinAtomic:
		if wantArgs(1) {
			c.checkAtomicTarget(e, argTypes[0])
		}
		e.T = TypeInt
	case BuiltinAtomic2:
		if wantArgs(2) {
			c.checkAtomicTarget(e, argTypes[0])
			if argTypes[1].Ptr || !argTypes[1].Kind.IsInteger() {
				c.errorf(e.Args[1].Pos(), "%s operand must be an integer", e.Name)
			}
		}
		e.T = TypeInt
	}
	return e.T
}

func (c *checker) checkAtomicTarget(e *Call, t Type) {
	if !t.Ptr || !t.Kind.IsInteger() {
		c.errorf(e.Args[0].Pos(), "%s requires a pointer to an integer, got %s", e.Name, t)
		return
	}
	if _, ok := e.Args[0].(*Ident); !ok {
		c.errorf(e.Args[0].Pos(), "%s target must be a named pointer or __local array (element 0)", e.Name)
	}
}
