package clc

import "fmt"

// Kind enumerates the scalar type kinds of the supported OpenCL C subset.
type Kind int

// Scalar kinds. Integer kinds smaller than int are accepted by the parser
// but widened to Int/UInt during semantic analysis, matching OpenCL's usual
// arithmetic promotions.
const (
	KindVoid Kind = iota
	KindBool
	KindInt
	KindUInt
	KindLong
	KindULong
	KindFloat
	KindDouble
)

func (k Kind) String() string {
	switch k {
	case KindVoid:
		return "void"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindUInt:
		return "uint"
	case KindLong:
		return "long"
	case KindULong:
		return "ulong"
	case KindFloat:
		return "float"
	case KindDouble:
		return "double"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// IsInteger reports whether the kind is an integer kind.
func (k Kind) IsInteger() bool {
	switch k {
	case KindBool, KindInt, KindUInt, KindLong, KindULong:
		return true
	}
	return false
}

// IsFloat reports whether the kind is a floating-point kind.
func (k Kind) IsFloat() bool { return k == KindFloat || k == KindDouble }

// IsUnsigned reports whether the kind is an unsigned integer kind.
func (k Kind) IsUnsigned() bool { return k == KindUInt || k == KindULong }

// AddrSpace is an OpenCL address space qualifier.
type AddrSpace int

// Address spaces. Private is the default for automatic variables.
const (
	SpacePrivate AddrSpace = iota
	SpaceGlobal
	SpaceLocal
	SpaceConstant
)

func (s AddrSpace) String() string {
	switch s {
	case SpacePrivate:
		return "__private"
	case SpaceGlobal:
		return "__global"
	case SpaceLocal:
		return "__local"
	case SpaceConstant:
		return "__constant"
	}
	return fmt.Sprintf("space(%d)", int(s))
}

// Type describes a scalar or a pointer-to-scalar type. The subset has no
// aggregate types: kernels operate on address-space-qualified arrays of
// scalars, which is what every workload in the Dopia evaluation uses.
type Type struct {
	Kind  Kind
	Ptr   bool      // pointer to Kind
	Space AddrSpace // meaningful for pointers and __local arrays
}

// Convenience constructors for common types.
var (
	TypeVoid   = Type{Kind: KindVoid}
	TypeBool   = Type{Kind: KindBool}
	TypeInt    = Type{Kind: KindInt}
	TypeUInt   = Type{Kind: KindUInt}
	TypeLong   = Type{Kind: KindLong}
	TypeULong  = Type{Kind: KindULong}
	TypeFloat  = Type{Kind: KindFloat}
	TypeDouble = Type{Kind: KindDouble}
)

// GlobalPtr returns a __global pointer to k.
func GlobalPtr(k Kind) Type { return Type{Kind: k, Ptr: true, Space: SpaceGlobal} }

// LocalPtr returns a __local pointer to k.
func LocalPtr(k Kind) Type { return Type{Kind: k, Ptr: true, Space: SpaceLocal} }

// ConstantPtr returns a __constant pointer to k.
func ConstantPtr(k Kind) Type { return Type{Kind: k, Ptr: true, Space: SpaceConstant} }

func (t Type) String() string {
	if t.Ptr {
		prefix := ""
		if t.Space != SpacePrivate {
			prefix = t.Space.String() + " "
		}
		return prefix + t.Kind.String() + "*"
	}
	return t.Kind.String()
}

// IsNumeric reports whether t is a non-void scalar.
func (t Type) IsNumeric() bool { return !t.Ptr && t.Kind != KindVoid }

// Elem returns the pointee type of a pointer type.
func (t Type) Elem() Type { return Type{Kind: t.Kind} }

// promote computes the usual arithmetic conversion of two scalar kinds.
func promote(a, b Kind) Kind {
	if a == KindDouble || b == KindDouble {
		return KindDouble
	}
	if a == KindFloat || b == KindFloat {
		return KindFloat
	}
	if a == KindULong || b == KindULong {
		return KindULong
	}
	if a == KindLong || b == KindLong {
		return KindLong
	}
	if a == KindUInt || b == KindUInt {
		return KindUInt
	}
	return KindInt
}
