package clc

import "testing"

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestTokenizeBasics(t *testing.T) {
	toks, errs := Tokenize("int x = a[i] + 3.5f;")
	if errs.Err() != nil {
		t.Fatalf("unexpected errors: %v", errs)
	}
	want := []TokenKind{
		TokKeyword, TokIdent, TokAssign, TokIdent, TokLBracket, TokIdent,
		TokRBracket, TokPlus, TokFloatLit, TokSemi, TokEOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTokenizeOperators(t *testing.T) {
	cases := map[string]TokenKind{
		"+": TokPlus, "-": TokMinus, "*": TokStar, "/": TokSlash, "%": TokPercent,
		"++": TokInc, "--": TokDec,
		"==": TokEq, "!=": TokNe, "<": TokLt, ">": TokGt, "<=": TokLe, ">=": TokGe,
		"&&": TokAndAnd, "||": TokOrOr, "!": TokNot,
		"&": TokAmp, "|": TokPipe, "^": TokCaret, "~": TokTilde,
		"<<": TokShl, ">>": TokShr,
		"=": TokAssign, "+=": TokPlusAssign, "-=": TokMinusAssign,
		"*=": TokStarAssign, "/=": TokSlashAssign, "%=": TokPercentAssign,
		"&=": TokAmpAssign, "|=": TokPipeAssign, "^=": TokCaretAssign,
		"<<=": TokShlAssign, ">>=": TokShrAssign,
		"?": TokQuestion, ":": TokColon,
	}
	for src, want := range cases {
		toks, errs := Tokenize(src)
		if errs.Err() != nil {
			t.Fatalf("%q: unexpected errors: %v", src, errs)
		}
		if toks[0].Kind != want {
			t.Errorf("%q: got %v, want %v", src, toks[0].Kind, want)
		}
		if len(toks) != 2 {
			t.Errorf("%q: tokenized into %d tokens, want 2", src, len(toks))
		}
	}
}

func TestTokenizeNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind TokenKind
	}{
		{"0", TokIntLit},
		{"42", TokIntLit},
		{"0x1F", TokIntLit},
		{"7u", TokIntLit},
		{"7UL", TokIntLit},
		{"1.5", TokFloatLit},
		{"1.5f", TokFloatLit},
		{"2f", TokFloatLit},
		{".5", TokFloatLit},
		{"1e10", TokFloatLit},
		{"1.5e-3", TokFloatLit},
		{"3E+2", TokFloatLit},
	}
	for _, c := range cases {
		toks, errs := Tokenize(c.src)
		if errs.Err() != nil {
			t.Fatalf("%q: unexpected errors: %v", c.src, errs)
		}
		if toks[0].Kind != c.kind {
			t.Errorf("%q: got %v, want %v", c.src, toks[0].Kind, c.kind)
		}
	}
}

func TestTokenizeComments(t *testing.T) {
	src := `
// line comment with code int x = 0;
a /* block
   spanning lines */ b
`
	toks, errs := Tokenize(src)
	if errs.Err() != nil {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if len(toks) != 3 || toks[0].Text != "a" || toks[1].Text != "b" {
		t.Fatalf("comments not skipped, got %v", toks)
	}
}

func TestTokenizePositions(t *testing.T) {
	toks, _ := Tokenize("a\n  b")
	if toks[0].Pos != (Pos{Line: 1, Col: 1}) {
		t.Errorf("first token pos = %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{Line: 2, Col: 3}) {
		t.Errorf("second token pos = %v, want 2:3", toks[1].Pos)
	}
}

func TestTokenizeErrors(t *testing.T) {
	_, errs := Tokenize("a @ b")
	if errs.Err() == nil {
		t.Error("expected error for '@'")
	}
	_, errs = Tokenize("/* unterminated")
	if errs.Err() == nil {
		t.Error("expected error for unterminated comment")
	}
	_, errs = Tokenize("#define N 10\nint x;")
	if errs.Err() == nil {
		t.Error("expected error for preprocessor directive")
	}
}

func TestKeywordRecognition(t *testing.T) {
	for _, kw := range []string{"__kernel", "kernel", "__global", "float", "for", "if"} {
		toks, _ := Tokenize(kw)
		if toks[0].Kind != TokKeyword {
			t.Errorf("%q not recognized as keyword", kw)
		}
	}
	toks, _ := Tokenize("kernelx global_size")
	if toks[0].Kind != TokIdent || toks[1].Kind != TokIdent {
		t.Error("identifiers with keyword prefixes misclassified")
	}
}
