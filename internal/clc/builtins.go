package clc

// BuiltinKind classifies the builtin functions of the subset.
type BuiltinKind int

// Builtin categories. The interpreter and the analyses dispatch on these.
const (
	BuiltinWorkItem  BuiltinKind = iota // get_global_id(dim) and friends
	BuiltinMath                         // sqrt, exp, ... float -> float
	BuiltinMath2                        // pow, fmin, ... (float,float) -> float
	BuiltinIntMinMax                    // min/max over integers (polymorphic)
	BuiltinAtomic                       // atomic_inc/dec (ptr) -> old value
	BuiltinAtomic2                      // atomic_add/sub/... (ptr, val) -> old
	BuiltinAbs                          // abs(int) -> int
)

// Builtin describes one builtin function.
type Builtin struct {
	Name string
	Kind BuiltinKind
}

// builtinTable lists every builtin the front-end recognises. Work-item
// query functions return size_t in OpenCL; the subset types them as int,
// which is what all evaluated kernels assign them to.
var builtinTable = map[string]*Builtin{
	"get_global_id":     {Name: "get_global_id", Kind: BuiltinWorkItem},
	"get_local_id":      {Name: "get_local_id", Kind: BuiltinWorkItem},
	"get_group_id":      {Name: "get_group_id", Kind: BuiltinWorkItem},
	"get_global_size":   {Name: "get_global_size", Kind: BuiltinWorkItem},
	"get_local_size":    {Name: "get_local_size", Kind: BuiltinWorkItem},
	"get_num_groups":    {Name: "get_num_groups", Kind: BuiltinWorkItem},
	"get_global_offset": {Name: "get_global_offset", Kind: BuiltinWorkItem},
	"get_work_dim":      {Name: "get_work_dim", Kind: BuiltinWorkItem},

	"sqrt":  {Name: "sqrt", Kind: BuiltinMath},
	"rsqrt": {Name: "rsqrt", Kind: BuiltinMath},
	"exp":   {Name: "exp", Kind: BuiltinMath},
	"log":   {Name: "log", Kind: BuiltinMath},
	"sin":   {Name: "sin", Kind: BuiltinMath},
	"cos":   {Name: "cos", Kind: BuiltinMath},
	"tan":   {Name: "tan", Kind: BuiltinMath},
	"fabs":  {Name: "fabs", Kind: BuiltinMath},
	"floor": {Name: "floor", Kind: BuiltinMath},
	"ceil":  {Name: "ceil", Kind: BuiltinMath},

	"pow":   {Name: "pow", Kind: BuiltinMath2},
	"fmin":  {Name: "fmin", Kind: BuiltinMath2},
	"fmax":  {Name: "fmax", Kind: BuiltinMath2},
	"hypot": {Name: "hypot", Kind: BuiltinMath2},
	"fmod":  {Name: "fmod", Kind: BuiltinMath2},

	"min": {Name: "min", Kind: BuiltinIntMinMax},
	"max": {Name: "max", Kind: BuiltinIntMinMax},
	"abs": {Name: "abs", Kind: BuiltinAbs},

	"atomic_inc":  {Name: "atomic_inc", Kind: BuiltinAtomic},
	"atomic_dec":  {Name: "atomic_dec", Kind: BuiltinAtomic},
	"atomic_add":  {Name: "atomic_add", Kind: BuiltinAtomic2},
	"atomic_sub":  {Name: "atomic_sub", Kind: BuiltinAtomic2},
	"atomic_min":  {Name: "atomic_min", Kind: BuiltinAtomic2},
	"atomic_max":  {Name: "atomic_max", Kind: BuiltinAtomic2},
	"atomic_xchg": {Name: "atomic_xchg", Kind: BuiltinAtomic2},
}

// LookupBuiltin returns the builtin with the given name, or nil.
func LookupBuiltin(name string) *Builtin { return builtinTable[name] }
