package clc

import (
	"fmt"
	"strconv"
	"strings"

	"dopia/internal/faults"
)

// Parser is a recursive-descent parser for the OpenCL C subset. It produces
// an untyped AST; Check performs name resolution and type checking.
type Parser struct {
	toks []Token
	pos  int
	errs ErrorList
}

// Parse tokenizes and parses src, returning the program AST. The AST is
// not yet type-checked; use Compile for the full front-end pipeline.
// Panics in the front-end are contained and returned as classified
// errors: Parse never panics on any input.
func Parse(src string) (prog *Program, err error) {
	defer faults.Recover(faults.StageParse, &err)
	if err := faults.Hit("clc.parse"); err != nil {
		return nil, faults.Wrap(faults.StageParse, err)
	}
	toks, lerrs := Tokenize(src)
	p := &Parser{toks: toks, errs: lerrs}
	prog = p.parseProgram()
	prog.Source = src
	if err := p.errs.Err(); err != nil {
		return nil, faults.Wrap(faults.StageParse, err)
	}
	return prog, nil
}

// Compile runs the full front-end: parse then type-check. This is the
// entry point used by the runtime when a program is created from source.
// Like Parse, it contains panics and never lets one escape.
func Compile(src string) (prog *Program, err error) {
	defer faults.Recover(faults.StageParse, &err)
	prog, err = Parse(src)
	if err != nil {
		return nil, err
	}
	if err := Check(prog); err != nil {
		return nil, faults.Wrap(faults.StageParse, err)
	}
	return prog, nil
}

func (p *Parser) cur() Token { return p.toks[p.pos] }
func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *Parser) peekKind() TokenKind { return p.toks[p.pos].Kind }

func (p *Parser) at(k TokenKind) bool { return p.toks[p.pos].Kind == k }

func (p *Parser) atKeyword(words ...string) bool {
	t := p.cur()
	if t.Kind != TokKeyword {
		return false
	}
	for _, w := range words {
		if t.Text == w {
			return true
		}
	}
	return false
}

func (p *Parser) errorf(pos Pos, format string, args ...any) {
	p.errs = append(p.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (p *Parser) expect(k TokenKind) Token {
	t := p.cur()
	if t.Kind != k {
		p.errorf(t.Pos, "expected %s, found %s %q", k, t.Kind, t.Text)
		return t
	}
	return p.next()
}

func (p *Parser) expectKeyword(word string) Token {
	t := p.cur()
	if t.Kind != TokKeyword || t.Text != word {
		p.errorf(t.Pos, "expected %q, found %q", word, t.Text)
		return t
	}
	return p.next()
}

// sync skips tokens until a likely statement boundary after an error, to
// avoid error cascades.
func (p *Parser) sync() {
	for !p.at(TokEOF) {
		if p.at(TokSemi) {
			p.next()
			return
		}
		if p.at(TokRBrace) {
			return
		}
		p.next()
	}
}

// ---------------------------------------------------------------------------
// Program and kernels

func (p *Parser) parseProgram() *Program {
	prog := &Program{}
	for !p.at(TokEOF) {
		if p.atKeyword("__kernel", "kernel") {
			if k := p.parseKernel(); k != nil {
				prog.Kernels = append(prog.Kernels, k)
			}
			continue
		}
		t := p.cur()
		p.errorf(t.Pos, "expected __kernel function definition, found %q", t.Text)
		p.next()
		p.sync()
	}
	if len(prog.Kernels) == 0 && len(p.errs) == 0 {
		p.errorf(Pos{Line: 1, Col: 1}, "no __kernel function in program")
	}
	return prog
}

func (p *Parser) parseKernel() *Kernel {
	p.next() // __kernel
	p.expectKeyword("void")
	name := p.cur()
	if name.Kind != TokIdent {
		p.errorf(name.Pos, "expected kernel name, found %q", name.Text)
		p.sync()
		return nil
	}
	p.next()
	k := &Kernel{Name: name.Text, NamePos: name.Pos}
	p.expect(TokLParen)
	if !p.at(TokRParen) {
		for {
			if prm := p.parseParam(); prm != nil {
				k.Params = append(k.Params, prm)
			}
			if !p.at(TokComma) {
				break
			}
			p.next()
		}
	}
	p.expect(TokRParen)
	if !p.at(TokLBrace) {
		p.errorf(p.cur().Pos, "expected kernel body, found %q", p.cur().Text)
		p.sync()
		return k
	}
	k.Body = p.parseBlock()
	return k
}

// parseTypeSpec parses [qualifiers] base-type [*...]; returns the type and
// whether a __local qualifier was present.
func (p *Parser) parseTypeSpec() (Type, bool, bool) {
	space := SpacePrivate
	isLocal := false
	seenSpace := false
	for {
		switch {
		case p.atKeyword("__global", "global"):
			space, seenSpace = SpaceGlobal, true
			p.next()
		case p.atKeyword("__local", "local"):
			space, seenSpace = SpaceLocal, true
			isLocal = true
			p.next()
		case p.atKeyword("__constant", "constant"):
			space, seenSpace = SpaceConstant, true
			p.next()
		case p.atKeyword("__private", "private"):
			space, seenSpace = SpacePrivate, true
			p.next()
		case p.atKeyword("const", "restrict", "volatile"):
			p.next() // accepted and ignored
		default:
			goto base
		}
	}
base:
	kind, ok := p.parseBaseType()
	if !ok {
		return TypeVoid, false, false
	}
	t := Type{Kind: kind}
	for p.at(TokStar) {
		p.next()
		if t.Ptr {
			p.errorf(p.cur().Pos, "multi-level pointers are not supported")
		}
		t.Ptr = true
		t.Space = space
		for p.atKeyword("const", "restrict", "volatile") {
			p.next()
		}
	}
	if !t.Ptr && seenSpace && space != SpaceLocal {
		// Non-pointer with __global/__constant is invalid in the subset;
		// __local scalars/arrays are allowed.
		p.errorf(p.cur().Pos, "%s requires a pointer or __local declaration", space)
	}
	return t, isLocal, true
}

func (p *Parser) parseBaseType() (Kind, bool) {
	t := p.cur()
	if t.Kind != TokKeyword {
		p.errorf(t.Pos, "expected type, found %q", t.Text)
		return KindVoid, false
	}
	switch t.Text {
	case "void":
		p.next()
		return KindVoid, true
	case "bool":
		p.next()
		return KindBool, true
	case "char", "short", "int":
		p.next()
		return KindInt, true
	case "uchar", "ushort", "uint", "size_t":
		p.next()
		return KindUInt, true
	case "long":
		p.next()
		return KindLong, true
	case "ulong":
		p.next()
		return KindULong, true
	case "float":
		p.next()
		return KindFloat, true
	case "double":
		p.next()
		return KindDouble, true
	case "unsigned":
		p.next()
		if p.atKeyword("int", "char", "short", "long") {
			long := p.cur().Text == "long"
			p.next()
			if long {
				return KindULong, true
			}
		}
		return KindUInt, true
	case "signed":
		p.next()
		if p.atKeyword("int", "char", "short", "long") {
			long := p.cur().Text == "long"
			p.next()
			if long {
				return KindLong, true
			}
		}
		return KindInt, true
	}
	p.errorf(t.Pos, "expected type, found %q", t.Text)
	return KindVoid, false
}

// startsType reports whether the current token can begin a type specifier.
func (p *Parser) startsType() bool {
	return p.atKeyword(
		"void", "bool", "char", "uchar", "short", "ushort", "int", "uint",
		"long", "ulong", "float", "double", "size_t", "unsigned", "signed",
		"const", "restrict", "volatile",
		"__global", "global", "__local", "local",
		"__constant", "constant", "__private", "private",
	)
}

func (p *Parser) parseParam() *Param {
	t, _, ok := p.parseTypeSpec()
	if !ok {
		p.sync()
		return nil
	}
	name := p.cur()
	if name.Kind != TokIdent {
		p.errorf(name.Pos, "expected parameter name, found %q", name.Text)
		return nil
	}
	p.next()
	return &Param{Name: name.Text, Type: t, NamePos: name.Pos}
}

// ---------------------------------------------------------------------------
// Statements

func (p *Parser) parseBlock() *Block {
	lb := p.expect(TokLBrace)
	b := &Block{stmtBase: stmtBase{P: lb.Pos}}
	for !p.at(TokRBrace) && !p.at(TokEOF) {
		if s := p.parseStmt(); s != nil {
			b.Stmts = append(b.Stmts, s)
		}
	}
	p.expect(TokRBrace)
	return b
}

func (p *Parser) parseStmt() Stmt {
	t := p.cur()
	switch {
	case p.at(TokLBrace):
		return p.parseBlock()
	case p.at(TokSemi):
		p.next()
		return nil
	case p.startsType():
		return p.parseDeclStmt()
	case p.atKeyword("if"):
		return p.parseIf()
	case p.atKeyword("for"):
		return p.parseFor()
	case p.atKeyword("while"):
		return p.parseWhile()
	case p.atKeyword("do"):
		return p.parseDoWhile()
	case p.atKeyword("return"):
		p.next()
		if !p.at(TokSemi) {
			p.errorf(p.cur().Pos, "kernels return void; return must have no value")
			p.sync()
		} else {
			p.next()
		}
		return &ReturnStmt{stmtBase: stmtBase{P: t.Pos}}
	case p.atKeyword("break"):
		p.next()
		p.expect(TokSemi)
		return &BreakStmt{stmtBase: stmtBase{P: t.Pos}}
	case p.atKeyword("continue"):
		p.next()
		p.expect(TokSemi)
		return &ContinueStmt{stmtBase: stmtBase{P: t.Pos}}
	case t.Kind == TokIdent && t.Text == "barrier":
		return p.parseBarrier()
	case t.Kind == TokKeyword:
		p.errorf(t.Pos, "unexpected keyword %q", t.Text)
		p.next()
		p.sync()
		return nil
	default:
		x := p.parseExpr()
		p.expect(TokSemi)
		if x == nil {
			return nil
		}
		return &ExprStmt{stmtBase: stmtBase{P: t.Pos}, X: x}
	}
}

func (p *Parser) parseBarrier() Stmt {
	t := p.next() // barrier
	p.expect(TokLParen)
	var flags []string
	for !p.at(TokRParen) && !p.at(TokEOF) {
		tok := p.next()
		flags = append(flags, tok.Text)
	}
	p.expect(TokRParen)
	p.expect(TokSemi)
	return &BarrierStmt{stmtBase: stmtBase{P: t.Pos}, Flags: strings.Join(flags, "")}
}

func (p *Parser) parseDeclStmt() Stmt {
	pos := p.cur().Pos
	t, isLocal, ok := p.parseTypeSpec()
	if !ok {
		p.sync()
		return nil
	}
	if t.Kind == KindVoid && !t.Ptr {
		p.errorf(pos, "cannot declare variable of type void")
		p.sync()
		return nil
	}
	ds := &DeclStmt{stmtBase: stmtBase{P: pos}}
	for {
		name := p.cur()
		if name.Kind != TokIdent {
			p.errorf(name.Pos, "expected variable name, found %q", name.Text)
			p.sync()
			return ds
		}
		p.next()
		d := &VarDecl{Name: name.Text, Type: t, IsLocal: isLocal, NamePos: name.Pos}
		if p.at(TokLBracket) {
			p.next()
			sz := p.cur()
			if sz.Kind != TokIntLit {
				p.errorf(sz.Pos, "array length must be an integer literal")
			} else {
				n, err := strconv.ParseInt(sz.Text, 0, 32)
				if err != nil || n <= 0 {
					p.errorf(sz.Pos, "invalid array length %q", sz.Text)
				} else {
					d.ArrayLen = int(n)
				}
				p.next()
			}
			p.expect(TokRBracket)
		}
		if p.at(TokAssign) {
			p.next()
			d.Init = p.parseAssignExpr()
		}
		ds.Decls = append(ds.Decls, d)
		if !p.at(TokComma) {
			break
		}
		p.next()
	}
	p.expect(TokSemi)
	return ds
}

func (p *Parser) parseIf() Stmt {
	t := p.next() // if
	p.expect(TokLParen)
	cond := p.parseExpr()
	p.expect(TokRParen)
	then := p.parseStmt()
	var els Stmt
	if p.atKeyword("else") {
		p.next()
		els = p.parseStmt()
	}
	return &IfStmt{stmtBase: stmtBase{P: t.Pos}, Cond: cond, Then: then, Else: els}
}

func (p *Parser) parseFor() Stmt {
	t := p.next() // for
	p.expect(TokLParen)
	f := &ForStmt{stmtBase: stmtBase{P: t.Pos}}
	if !p.at(TokSemi) {
		if p.startsType() {
			f.Init = p.parseDeclStmt() // consumes ';'
		} else {
			x := p.parseExpr()
			p.expect(TokSemi)
			f.Init = &ExprStmt{stmtBase: stmtBase{P: t.Pos}, X: x}
		}
	} else {
		p.next()
	}
	if !p.at(TokSemi) {
		f.Cond = p.parseExpr()
	}
	p.expect(TokSemi)
	if !p.at(TokRParen) {
		f.Post = p.parseExpr()
	}
	p.expect(TokRParen)
	f.Body = p.parseStmt()
	return f
}

func (p *Parser) parseWhile() Stmt {
	t := p.next() // while
	p.expect(TokLParen)
	cond := p.parseExpr()
	p.expect(TokRParen)
	body := p.parseStmt()
	return &WhileStmt{stmtBase: stmtBase{P: t.Pos}, Cond: cond, Body: body}
}

func (p *Parser) parseDoWhile() Stmt {
	t := p.next() // do
	body := p.parseStmt()
	p.expectKeyword("while")
	p.expect(TokLParen)
	cond := p.parseExpr()
	p.expect(TokRParen)
	p.expect(TokSemi)
	return &DoWhileStmt{stmtBase: stmtBase{P: t.Pos}, Body: body, Cond: cond}
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)

func (p *Parser) parseExpr() Expr { return p.parseAssignExpr() }

var assignOps = map[TokenKind]AssignOp{
	TokAssign:        AssignPlain,
	TokPlusAssign:    AssignAdd,
	TokMinusAssign:   AssignSub,
	TokStarAssign:    AssignMul,
	TokSlashAssign:   AssignDiv,
	TokPercentAssign: AssignRem,
	TokAmpAssign:     AssignAnd,
	TokPipeAssign:    AssignOr,
	TokCaretAssign:   AssignXor,
	TokShlAssign:     AssignShl,
	TokShrAssign:     AssignShr,
}

func (p *Parser) parseAssignExpr() Expr {
	lhs := p.parseCondExpr()
	if op, ok := assignOps[p.peekKind()]; ok {
		t := p.next()
		rhs := p.parseAssignExpr()
		return &Assign{exprBase: exprBase{P: t.Pos}, Op: op, LHS: lhs, RHS: rhs}
	}
	return lhs
}

func (p *Parser) parseCondExpr() Expr {
	c := p.parseBinaryExpr(0)
	if p.at(TokQuestion) {
		t := p.next()
		then := p.parseAssignExpr()
		p.expect(TokColon)
		els := p.parseCondExpr()
		return &Cond{exprBase: exprBase{P: t.Pos}, C: c, Then: then, Else: els}
	}
	return c
}

// binPrec maps binary operator tokens to precedence levels (higher binds
// tighter) following C.
var binPrec = map[TokenKind]int{
	TokOrOr:   1,
	TokAndAnd: 2,
	TokPipe:   3,
	TokCaret:  4,
	TokAmp:    5,
	TokEq:     6, TokNe: 6,
	TokLt: 7, TokGt: 7, TokLe: 7, TokGe: 7,
	TokShl: 8, TokShr: 8,
	TokPlus: 9, TokMinus: 9,
	TokStar: 10, TokSlash: 10, TokPercent: 10,
}

var binOps = map[TokenKind]BinaryOp{
	TokOrOr: BinLOr, TokAndAnd: BinLAnd,
	TokPipe: BinOr, TokCaret: BinXor, TokAmp: BinAnd,
	TokEq: BinEq, TokNe: BinNe,
	TokLt: BinLt, TokGt: BinGt, TokLe: BinLe, TokGe: BinGe,
	TokShl: BinShl, TokShr: BinShr,
	TokPlus: BinAdd, TokMinus: BinSub,
	TokStar: BinMul, TokSlash: BinDiv, TokPercent: BinRem,
}

func (p *Parser) parseBinaryExpr(minPrec int) Expr {
	lhs := p.parseUnaryExpr()
	for {
		prec, ok := binPrec[p.peekKind()]
		if !ok || prec < minPrec {
			return lhs
		}
		t := p.next()
		rhs := p.parseBinaryExpr(prec + 1)
		lhs = &Binary{exprBase: exprBase{P: t.Pos}, Op: binOps[t.Kind], L: lhs, R: rhs}
	}
}

func (p *Parser) parseUnaryExpr() Expr {
	t := p.cur()
	switch t.Kind {
	case TokMinus:
		p.next()
		return &Unary{exprBase: exprBase{P: t.Pos}, Op: UnaryNeg, X: p.parseUnaryExpr()}
	case TokPlus:
		p.next()
		return &Unary{exprBase: exprBase{P: t.Pos}, Op: UnaryPlus, X: p.parseUnaryExpr()}
	case TokNot:
		p.next()
		return &Unary{exprBase: exprBase{P: t.Pos}, Op: UnaryNot, X: p.parseUnaryExpr()}
	case TokTilde:
		p.next()
		return &Unary{exprBase: exprBase{P: t.Pos}, Op: UnaryBitNot, X: p.parseUnaryExpr()}
	case TokInc, TokDec:
		p.next()
		x := p.parseUnaryExpr()
		return &IncDec{exprBase: exprBase{P: t.Pos}, X: x, Decr: t.Kind == TokDec, Post: false}
	case TokLParen:
		// Either a cast or a parenthesized expression.
		if p.isCastAhead() {
			p.next() // (
			ct, _, _ := p.parseTypeSpec()
			p.expect(TokRParen)
			x := p.parseUnaryExpr()
			return &Cast{exprBase: exprBase{P: t.Pos}, To: ct, X: x}
		}
	}
	return p.parsePostfixExpr()
}

// isCastAhead reports whether the tokens after the current '(' spell a
// type name followed by ')'.
func (p *Parser) isCastAhead() bool {
	if !p.at(TokLParen) {
		return false
	}
	i := p.pos + 1
	sawType := false
	for i < len(p.toks) {
		t := p.toks[i]
		if t.Kind == TokKeyword && keywords[t.Text] {
			switch t.Text {
			case "if", "else", "for", "while", "do", "return", "break", "continue":
				return false
			}
			sawType = true
			i++
			continue
		}
		if t.Kind == TokStar && sawType {
			i++
			continue
		}
		break
	}
	return sawType && i < len(p.toks) && p.toks[i].Kind == TokRParen
}

func (p *Parser) parsePostfixExpr() Expr {
	x := p.parsePrimaryExpr()
	for {
		switch p.peekKind() {
		case TokLBracket:
			t := p.next()
			idx := p.parseExpr()
			p.expect(TokRBracket)
			x = &Index{exprBase: exprBase{P: t.Pos}, Base: x, Idx: idx}
		case TokInc, TokDec:
			t := p.next()
			x = &IncDec{exprBase: exprBase{P: t.Pos}, X: x, Decr: t.Kind == TokDec, Post: true}
		default:
			return x
		}
	}
}

func (p *Parser) parsePrimaryExpr() Expr {
	t := p.cur()
	switch t.Kind {
	case TokIntLit:
		p.next()
		v, err := strconv.ParseInt(t.Text, 0, 64)
		if err != nil {
			// Very large literals saturate; report once.
			uv, uerr := strconv.ParseUint(t.Text, 0, 64)
			if uerr != nil {
				p.errorf(t.Pos, "invalid integer literal %q", t.Text)
			}
			v = int64(uv)
		}
		return &IntLit{exprBase: exprBase{P: t.Pos}, Value: v, Text: t.Text}
	case TokFloatLit:
		p.next()
		v, err := strconv.ParseFloat(strings.TrimRight(t.Text, "fF"), 64)
		if err != nil {
			p.errorf(t.Pos, "invalid float literal %q", t.Text)
		}
		return &FloatLit{exprBase: exprBase{P: t.Pos}, Value: v, Text: t.Text}
	case TokIdent:
		p.next()
		if p.at(TokLParen) {
			return p.parseCall(t)
		}
		return &Ident{exprBase: exprBase{P: t.Pos}, Name: t.Text}
	case TokLParen:
		p.next()
		x := p.parseExpr()
		p.expect(TokRParen)
		return x
	}
	p.errorf(t.Pos, "expected expression, found %s %q", t.Kind, t.Text)
	p.next()
	return &IntLit{exprBase: exprBase{P: t.Pos}, Value: 0, Text: "0"}
}

func (p *Parser) parseCall(name Token) Expr {
	p.expect(TokLParen)
	c := &Call{exprBase: exprBase{P: name.Pos}, Name: name.Text}
	if !p.at(TokRParen) {
		for {
			c.Args = append(c.Args, p.parseAssignExpr())
			if !p.at(TokComma) {
				break
			}
			p.next()
		}
	}
	p.expect(TokRParen)
	return c
}
