// Package clc implements a front-end (lexer, parser, type checker) for the
// subset of OpenCL C 1.2 used by data-parallel compute kernels: scalar
// types, address-space-qualified pointers, control flow, and the OpenCL
// work-item builtin functions. It plays the role the Eigen Compiler Suite
// plays in the Dopia paper: producing a typed abstract syntax tree that the
// analysis and transformation stages traverse.
package clc

import "fmt"

// TokenKind enumerates the lexical token classes.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokIntLit
	TokFloatLit

	// Punctuation and operators.
	TokLParen   // (
	TokRParen   // )
	TokLBrace   // {
	TokRBrace   // }
	TokLBracket // [
	TokRBracket // ]
	TokComma    // ,
	TokSemi     // ;
	TokColon    // :
	TokQuestion // ?

	TokAssign        // =
	TokPlusAssign    // +=
	TokMinusAssign   // -=
	TokStarAssign    // *=
	TokSlashAssign   // /=
	TokPercentAssign // %=
	TokAmpAssign     // &=
	TokPipeAssign    // |=
	TokCaretAssign   // ^=
	TokShlAssign     // <<=
	TokShrAssign     // >>=

	TokPlus    // +
	TokMinus   // -
	TokStar    // *
	TokSlash   // /
	TokPercent // %
	TokInc     // ++
	TokDec     // --

	TokEq // ==
	TokNe // !=
	TokLt // <
	TokGt // >
	TokLe // <=
	TokGe // >=

	TokAndAnd // &&
	TokOrOr   // ||
	TokNot    // !

	TokAmp   // &
	TokPipe  // |
	TokCaret // ^
	TokTilde // ~
	TokShl   // <<
	TokShr   // >>

	TokKeyword // any reserved word; Token.Text distinguishes
)

// Token is a single lexical token with its source position.
type Token struct {
	Kind TokenKind
	Text string
	Pos  Pos
}

// Pos is a line/column source position (1-based).
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// IsValid reports whether the position has been set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// keywords lists the reserved words recognised by the lexer. Address-space
// qualifiers appear both with and without leading underscores, as OpenCL
// accepts both spellings.
var keywords = map[string]bool{
	"void": true, "bool": true, "char": true, "uchar": true,
	"short": true, "ushort": true, "int": true, "uint": true,
	"long": true, "ulong": true, "float": true, "double": true,
	"size_t": true,
	"if":     true, "else": true, "for": true, "while": true, "do": true,
	"return": true, "break": true, "continue": true,
	"const": true, "restrict": true, "volatile": true,
	"__kernel": true, "kernel": true,
	"__global": true, "global": true,
	"__local": true, "local": true,
	"__constant": true, "constant": true,
	"__private": true, "private": true,
	"struct": true, "typedef": true, "unsigned": true, "signed": true,
}

func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokIdent:
		return "identifier"
	case TokIntLit:
		return "integer literal"
	case TokFloatLit:
		return "float literal"
	case TokKeyword:
		return "keyword"
	default:
		if s, ok := tokenText[k]; ok {
			return "'" + s + "'"
		}
		return fmt.Sprintf("token(%d)", int(k))
	}
}

var tokenText = map[TokenKind]string{
	TokLParen: "(", TokRParen: ")", TokLBrace: "{", TokRBrace: "}",
	TokLBracket: "[", TokRBracket: "]", TokComma: ",", TokSemi: ";",
	TokColon: ":", TokQuestion: "?",
	TokAssign: "=", TokPlusAssign: "+=", TokMinusAssign: "-=",
	TokStarAssign: "*=", TokSlashAssign: "/=", TokPercentAssign: "%=",
	TokAmpAssign: "&=", TokPipeAssign: "|=", TokCaretAssign: "^=",
	TokShlAssign: "<<=", TokShrAssign: ">>=",
	TokPlus: "+", TokMinus: "-", TokStar: "*", TokSlash: "/", TokPercent: "%",
	TokInc: "++", TokDec: "--",
	TokEq: "==", TokNe: "!=", TokLt: "<", TokGt: ">", TokLe: "<=", TokGe: ">=",
	TokAndAnd: "&&", TokOrOr: "||", TokNot: "!",
	TokAmp: "&", TokPipe: "|", TokCaret: "^", TokTilde: "~",
	TokShl: "<<", TokShr: ">>",
}
