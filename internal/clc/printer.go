package clc

import (
	"fmt"
	"strings"
)

// PrintProgram renders a program back to OpenCL C source. The output is
// valid input to Compile; tests verify the round-trip. Dopia uses the
// printer to materialise the malleable kernels it generates.
func PrintProgram(p *Program) string {
	var b strings.Builder
	for i, k := range p.Kernels {
		if i > 0 {
			b.WriteString("\n")
		}
		printKernel(&b, k)
	}
	return b.String()
}

// PrintKernel renders a single kernel definition.
func PrintKernel(k *Kernel) string {
	var b strings.Builder
	printKernel(&b, k)
	return b.String()
}

func printKernel(b *strings.Builder, k *Kernel) {
	fmt.Fprintf(b, "__kernel void %s(", k.Name)
	for i, prm := range k.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "%s %s", prm.Type, prm.Name)
	}
	b.WriteString(")\n")
	printStmt(b, k.Body, 0)
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("    ")
	}
}

func printStmt(b *strings.Builder, s Stmt, depth int) {
	switch st := s.(type) {
	case *Block:
		indent(b, depth)
		b.WriteString("{\n")
		for _, inner := range st.Stmts {
			printStmt(b, inner, depth+1)
		}
		indent(b, depth)
		b.WriteString("}\n")
	case *DeclStmt:
		indent(b, depth)
		printDecls(b, st)
		b.WriteString(";\n")
	case *ExprStmt:
		indent(b, depth)
		b.WriteString(ExprString(st.X))
		b.WriteString(";\n")
	case *IfStmt:
		indent(b, depth)
		fmt.Fprintf(b, "if (%s)\n", ExprString(st.Cond))
		printNested(b, st.Then, depth)
		if st.Else != nil {
			indent(b, depth)
			b.WriteString("else\n")
			printNested(b, st.Else, depth)
		}
	case *ForStmt:
		indent(b, depth)
		b.WriteString("for (")
		switch init := st.Init.(type) {
		case nil:
		case *DeclStmt:
			printDecls(b, init)
		case *ExprStmt:
			b.WriteString(ExprString(init.X))
		}
		b.WriteString("; ")
		if st.Cond != nil {
			b.WriteString(ExprString(st.Cond))
		}
		b.WriteString("; ")
		if st.Post != nil {
			b.WriteString(ExprString(st.Post))
		}
		b.WriteString(")\n")
		printNested(b, st.Body, depth)
	case *WhileStmt:
		indent(b, depth)
		fmt.Fprintf(b, "while (%s)\n", ExprString(st.Cond))
		printNested(b, st.Body, depth)
	case *DoWhileStmt:
		indent(b, depth)
		b.WriteString("do\n")
		printNested(b, st.Body, depth)
		indent(b, depth)
		fmt.Fprintf(b, "while (%s);\n", ExprString(st.Cond))
	case *ReturnStmt:
		indent(b, depth)
		b.WriteString("return;\n")
	case *BreakStmt:
		indent(b, depth)
		b.WriteString("break;\n")
	case *ContinueStmt:
		indent(b, depth)
		b.WriteString("continue;\n")
	case *BarrierStmt:
		indent(b, depth)
		flags := st.Flags
		if flags == "" {
			flags = "CLK_LOCAL_MEM_FENCE"
		}
		fmt.Fprintf(b, "barrier(%s);\n", flags)
	default:
		indent(b, depth)
		fmt.Fprintf(b, "/* unknown stmt %T */;\n", s)
	}
}

// printNested prints a statement as the body of a control structure,
// indenting non-block bodies one extra level.
func printNested(b *strings.Builder, s Stmt, depth int) {
	if _, isBlock := s.(*Block); isBlock {
		printStmt(b, s, depth)
	} else if s == nil {
		indent(b, depth+1)
		b.WriteString(";\n")
	} else {
		printStmt(b, s, depth+1)
	}
}

func printDecls(b *strings.Builder, ds *DeclStmt) {
	for i, d := range ds.Decls {
		if i > 0 {
			b.WriteString(", ")
		} else {
			if d.IsLocal {
				b.WriteString("__local ")
			}
			b.WriteString(d.Type.String())
			b.WriteString(" ")
		}
		b.WriteString(d.Name)
		if d.ArrayLen > 0 {
			fmt.Fprintf(b, "[%d]", d.ArrayLen)
		}
		if d.Init != nil {
			b.WriteString(" = ")
			b.WriteString(ExprString(d.Init))
		}
	}
}

// ExprString renders an expression as source text. Parentheses are emitted
// conservatively around nested operators so the output re-parses with the
// same structure.
func ExprString(x Expr) string {
	var b strings.Builder
	printExpr(&b, x, 0)
	return b.String()
}

// Precedence levels for printing; higher binds tighter.
func exprPrec(x Expr) int {
	switch e := x.(type) {
	case *Assign:
		return 1
	case *Cond:
		return 2
	case *Binary:
		switch e.Op {
		case BinLOr:
			return 3
		case BinLAnd:
			return 4
		case BinOr:
			return 5
		case BinXor:
			return 6
		case BinAnd:
			return 7
		case BinEq, BinNe:
			return 8
		case BinLt, BinGt, BinLe, BinGe:
			return 9
		case BinShl, BinShr:
			return 10
		case BinAdd, BinSub:
			return 11
		default:
			return 12
		}
	case *Unary, *Cast:
		return 13
	case *IncDec:
		if e.Post {
			return 14
		}
		return 13
	default:
		return 15
	}
}

func printExpr(b *strings.Builder, x Expr, minPrec int) {
	prec := exprPrec(x)
	paren := prec < minPrec
	if paren {
		b.WriteString("(")
	}
	switch e := x.(type) {
	case *Ident:
		b.WriteString(e.Name)
	case *IntLit:
		if e.Text != "" {
			b.WriteString(e.Text)
		} else {
			fmt.Fprintf(b, "%d", e.Value)
		}
	case *FloatLit:
		if e.Text != "" {
			b.WriteString(e.Text)
			if !strings.ContainsAny(e.Text, ".eEfF") {
				b.WriteString(".0")
			}
		} else {
			fmt.Fprintf(b, "%g", e.Value)
			if !strings.ContainsAny(b.String(), ".e") {
				b.WriteString(".0")
			}
		}
	case *Unary:
		op := e.Op.String()
		b.WriteString(op)
		// Render the operand separately: if it starts with the same sign
		// character, the two must not merge into a ++/-- token on
		// re-parse (-(-x) printed as --x would become a pre-decrement —
		// a store — instead of a double negation).
		var operand strings.Builder
		printExpr(&operand, e.X, 13)
		s := operand.String()
		if len(s) > 0 && (op == "-" || op == "+") && s[0] == op[0] {
			b.WriteString(" ")
		}
		b.WriteString(s)
	case *Binary:
		printExpr(b, e.L, prec)
		fmt.Fprintf(b, " %s ", e.Op)
		printExpr(b, e.R, prec+1)
	case *Cond:
		printExpr(b, e.C, 3)
		b.WriteString(" ? ")
		printExpr(b, e.Then, 1)
		b.WriteString(" : ")
		printExpr(b, e.Else, 2)
	case *Index:
		printExpr(b, e.Base, 15)
		b.WriteString("[")
		printExpr(b, e.Idx, 0)
		b.WriteString("]")
	case *Call:
		b.WriteString(e.Name)
		b.WriteString("(")
		for i, a := range e.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			printExpr(b, a, 1)
		}
		b.WriteString(")")
	case *Cast:
		fmt.Fprintf(b, "(%s)", e.To)
		printExpr(b, e.X, 13)
	case *Assign:
		printExpr(b, e.LHS, 2)
		fmt.Fprintf(b, " %s ", e.Op)
		printExpr(b, e.RHS, 1)
	case *IncDec:
		op := "++"
		if e.Decr {
			op = "--"
		}
		if e.Post {
			printExpr(b, e.X, 14)
			b.WriteString(op)
		} else {
			b.WriteString(op)
			printExpr(b, e.X, 13)
		}
	default:
		fmt.Fprintf(b, "/* unknown expr %T */", x)
	}
	if paren {
		b.WriteString(")")
	}
}
