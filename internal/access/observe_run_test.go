package access

import (
	"reflect"
	"testing"
)

// TestObserveRunEquivalence proves ObserveRun(d, n) leaves the
// classifier in the bit-identical state of n successive Observe(d)
// calls — the contract the interpreter's fused-loop superinstructions
// rely on when they batch constant-stride runs.
func TestObserveRunEquivalence(t *testing.T) {
	// Streams of (delta, runLength) covering the counter specials (0,
	// 1), the inlined stride bins, the overflow spill, and interleaved
	// revisits of earlier strides.
	streams := [][][2]int64{
		{{1, 1000}},
		{{0, 3}, {1, 7}, {0, 2}},
		{{4, 10}, {-96, 1}, {4, 10}, {-96, 1}},
		{{7, 5}, {13, 5}, {29, 5}, {41, 5}, {7, 2}, {29, 9}},
		{{-3, 1}, {0, 1}, {1, 1}, {-3, 4}, {1000000007, 6}},
	}
	for si, stream := range streams {
		var loop, run Classifier
		for _, d := range stream {
			for i := int64(0); i < d[1]; i++ {
				loop.Observe(d[0])
			}
			run.ObserveRun(d[0], d[1])
		}
		if !reflect.DeepEqual(loop, run) {
			t.Errorf("stream %d: classifier states differ:\n  loop: %+v\n  run:  %+v", si, loop, run)
		}
		lp, ls := loop.Pattern()
		rp, rs := run.Pattern()
		if lp != rp || ls != rs {
			t.Errorf("stream %d: patterns differ: %v/%d vs %v/%d", si, lp, ls, rp, rs)
		}
	}

	// Non-positive counts are no-ops.
	var c, zero Classifier
	c.ObserveRun(5, 0)
	c.ObserveRun(5, -2)
	if !reflect.DeepEqual(c, zero) {
		t.Errorf("non-positive counts mutated the classifier: %+v", c)
	}
}

// TestObserveRunMerge proves batched observation composes with Merge
// the same way per-delta observation does (shard-order merging stays
// exact when shards used ObserveRun internally).
func TestObserveRunMerge(t *testing.T) {
	var a1, a2, b1, b2 Classifier
	feed := func(c *Classifier, batched bool, deltas [][2]int64) {
		for _, d := range deltas {
			if batched {
				c.ObserveRun(d[0], d[1])
				continue
			}
			for i := int64(0); i < d[1]; i++ {
				c.Observe(d[0])
			}
		}
	}
	s1 := [][2]int64{{4, 6}, {1, 3}, {9, 2}}
	s2 := [][2]int64{{9, 4}, {4, 1}, {0, 5}}
	feed(&a1, false, s1)
	feed(&a2, false, s2)
	feed(&b1, true, s1)
	feed(&b2, true, s2)
	a1.Merge(&a2)
	b1.Merge(&b2)
	if !reflect.DeepEqual(a1, b1) {
		t.Errorf("merged states differ:\n  loop: %+v\n  run:  %+v", a1, b1)
	}
}
