// Package access defines the memory-access-pattern vocabulary shared by
// the static analyzer, the functional interpreter, and the performance
// simulator: every memory operation is classified as constant, continuous,
// strided, or random, following Section 5.1 of the Dopia paper.
package access

import "fmt"

// Pattern classifies the address sequence of a memory operation.
type Pattern int

// Pattern classes, ordered from most to least memory-system friendly.
const (
	// Unknown means the classifier has not seen enough evidence.
	Unknown Pattern = iota
	// Constant: the operation repeatedly accesses one address.
	Constant
	// Continuous: consecutive executions access consecutive elements.
	Continuous
	// Strided: consecutive executions advance by a fixed stride > 1 element.
	Strided
	// Random: no fixed relation between consecutive addresses (e.g.
	// indirect accesses such as C[B[i]]).
	Random
)

func (p Pattern) String() string {
	switch p {
	case Unknown:
		return "unknown"
	case Constant:
		return "constant"
	case Continuous:
		return "continuous"
	case Strided:
		return "strided"
	case Random:
		return "random"
	}
	return fmt.Sprintf("pattern(%d)", int(p))
}

// strideBin counts occurrences of one distinct stride (delta not in {0,1}).
type strideBin struct {
	delta int64
	count int64
}

// Classifier incrementally classifies a single operation's address stream
// (element-granularity deltas). It tolerates a small fraction of outliers
// (loop-boundary jumps) before declaring a stream random.
//
// Internally it keeps an ordered histogram of distinct strides rather than
// a sticky first-stride counter; the first-observed stride is the
// candidate "the" stride and every later distinct stride counts as
// irregularity. This is observationally identical to a sticky counter for
// any delta stream, but — unlike a sticky counter — two classifiers over
// adjacent sub-streams can be merged exactly, which is what lets the
// parallel ND-range engine keep per-shard statistics and still report
// bit-identical patterns to a sequential run.
type Classifier struct {
	n      int64 // deltas observed
	constN int64 // delta == 0
	contN  int64 // delta == 1
	// bins holds the distinct strides in first-observed order. Real
	// kernels almost never produce more than two distinct strides
	// (the stride plus one loop-boundary jump value), so two bins are
	// inlined and anything beyond spills to the overflow slice.
	bins  [2]strideBin
	nbins int
	over  []strideBin
}

// Observe records a delta, in elements, between two consecutive accesses.
func (c *Classifier) Observe(deltaElems int64) {
	c.n++
	switch deltaElems {
	case 0:
		c.constN++
	case 1:
		c.contN++
	default:
		c.addStride(deltaElems, 1)
	}
}

// ObserveRun records count consecutive occurrences of the same delta,
// exactly as count successive Observe(deltaElems) calls would. The
// interpreter's fused-loop superinstructions batch their constant-stride
// runs through this entry point instead of per-access Observe calls; the
// resulting classifier state is bit-identical because a single repeated
// delta touches one counter (or one stride bin, preserving
// first-observed order).
func (c *Classifier) ObserveRun(deltaElems, count int64) {
	if count <= 0 {
		return
	}
	c.n += count
	switch deltaElems {
	case 0:
		c.constN += count
	case 1:
		c.contN += count
	default:
		c.addStride(deltaElems, count)
	}
}

// addStride credits count occurrences of a distinct stride, preserving
// first-observed order.
func (c *Classifier) addStride(delta, count int64) {
	for i := 0; i < c.nbins; i++ {
		if c.bins[i].delta == delta {
			c.bins[i].count += count
			return
		}
	}
	for i := range c.over {
		if c.over[i].delta == delta {
			c.over[i].count += count
			return
		}
	}
	if c.nbins < len(c.bins) {
		c.bins[c.nbins] = strideBin{delta, count}
		c.nbins++
		return
	}
	c.over = append(c.over, strideBin{delta, count})
}

// Merge absorbs the observations of another classifier as if its delta
// stream had been observed immediately after c's own. Stride identity is
// kept in first-observed order across the concatenation, so merging
// per-shard classifiers in shard order reproduces the sequential
// classification exactly. The other classifier is left unchanged.
func (c *Classifier) Merge(o *Classifier) {
	c.n += o.n
	c.constN += o.constN
	c.contN += o.contN
	for i := 0; i < o.nbins; i++ {
		c.addStride(o.bins[i].delta, o.bins[i].count)
	}
	for i := range o.over {
		c.addStride(o.over[i].delta, o.over[i].count)
	}
}

// Observations returns the number of deltas observed.
func (c *Classifier) Observations() int64 { return c.n }

// Pattern returns the majority classification of the stream so far.
// A stream needs at least one delta to be classified; single-execution
// sites report Unknown and callers fall back to static classification.
func (c *Classifier) Pattern() (Pattern, int64) {
	if c.n == 0 {
		return Unknown, 0
	}
	// The first-observed stride is the stride candidate; every other
	// distinct stride is irregularity.
	var strideElem, strideN, randomN int64
	if c.nbins > 0 {
		strideElem = c.bins[0].delta
		strideN = c.bins[0].count
		for i := 1; i < c.nbins; i++ {
			randomN += c.bins[i].count
		}
		for i := range c.over {
			randomN += c.over[i].count
		}
	}
	// Outlier tolerance: a strided row-major walk sees one irregular jump
	// per row; accept up to 10% irregularity before calling it random.
	if randomN*10 > c.n {
		return Random, 0
	}
	best, bestN := Constant, c.constN
	if c.contN > bestN {
		best, bestN = Continuous, c.contN
	}
	if strideN > bestN {
		best, bestN = Strided, strideN
	}
	if randomN > bestN {
		best = Random
	}
	if best == Strided {
		return Strided, strideElem
	}
	return best, 0
}
