// Package access defines the memory-access-pattern vocabulary shared by
// the static analyzer, the functional interpreter, and the performance
// simulator: every memory operation is classified as constant, continuous,
// strided, or random, following Section 5.1 of the Dopia paper.
package access

import "fmt"

// Pattern classifies the address sequence of a memory operation.
type Pattern int

// Pattern classes, ordered from most to least memory-system friendly.
const (
	// Unknown means the classifier has not seen enough evidence.
	Unknown Pattern = iota
	// Constant: the operation repeatedly accesses one address.
	Constant
	// Continuous: consecutive executions access consecutive elements.
	Continuous
	// Strided: consecutive executions advance by a fixed stride > 1 element.
	Strided
	// Random: no fixed relation between consecutive addresses (e.g.
	// indirect accesses such as C[B[i]]).
	Random
)

func (p Pattern) String() string {
	switch p {
	case Unknown:
		return "unknown"
	case Constant:
		return "constant"
	case Continuous:
		return "continuous"
	case Strided:
		return "strided"
	case Random:
		return "random"
	}
	return fmt.Sprintf("pattern(%d)", int(p))
}

// Classifier incrementally classifies a single operation's address stream
// (element-granularity deltas). It tolerates a small fraction of outliers
// (loop-boundary jumps) before declaring a stream random.
type Classifier struct {
	n          int64 // deltas observed
	constN     int64
	contN      int64
	strideN    int64
	randomN    int64
	strideElem int64 // the stride that strideN counts
}

// Observe records a delta, in elements, between two consecutive accesses.
func (c *Classifier) Observe(deltaElems int64) {
	c.n++
	switch {
	case deltaElems == 0:
		c.constN++
	case deltaElems == 1:
		c.contN++
	default:
		if c.strideN == 0 {
			c.strideElem = deltaElems
			c.strideN++
		} else if deltaElems == c.strideElem {
			c.strideN++
		} else {
			c.randomN++
		}
	}
}

// Observations returns the number of deltas observed.
func (c *Classifier) Observations() int64 { return c.n }

// Pattern returns the majority classification of the stream so far.
// A stream needs at least one delta to be classified; single-execution
// sites report Unknown and callers fall back to static classification.
func (c *Classifier) Pattern() (Pattern, int64) {
	if c.n == 0 {
		return Unknown, 0
	}
	// Outlier tolerance: a strided row-major walk sees one irregular jump
	// per row; accept up to 10% irregularity before calling it random.
	if c.randomN*10 > c.n {
		return Random, 0
	}
	best, bestN := Constant, c.constN
	if c.contN > bestN {
		best, bestN = Continuous, c.contN
	}
	if c.strideN > bestN {
		best, bestN = Strided, c.strideN
	}
	if c.randomN > bestN {
		best = Random
	}
	if best == Strided {
		return Strided, c.strideElem
	}
	return best, 0
}
