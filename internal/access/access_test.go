package access

import "testing"

func TestPatternString(t *testing.T) {
	want := map[Pattern]string{
		Unknown: "unknown", Constant: "constant", Continuous: "continuous",
		Strided: "strided", Random: "random", Pattern(99): "pattern(99)",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), s)
		}
	}
}

func TestClassifierBasics(t *testing.T) {
	cases := []struct {
		name   string
		deltas []int64
		want   Pattern
		stride int64
	}{
		{"constant", []int64{0, 0, 0, 0}, Constant, 0},
		{"continuous", []int64{1, 1, 1, 1}, Continuous, 0},
		{"strided", []int64{8, 8, 8, 8}, Strided, 8},
		{"negative stride", []int64{-4, -4, -4}, Strided, -4},
		{"random", []int64{3, -7, 12, 5, -2, 9, 1, -8, 15, 4}, Random, 0},
	}
	for _, c := range cases {
		var cl Classifier
		for _, d := range c.deltas {
			cl.Observe(d)
		}
		p, s := cl.Pattern()
		if p != c.want {
			t.Errorf("%s: pattern = %v, want %v", c.name, p, c.want)
		}
		if c.want == Strided && s != c.stride {
			t.Errorf("%s: stride = %d, want %d", c.name, s, c.stride)
		}
		if cl.Observations() != int64(len(c.deltas)) {
			t.Errorf("%s: observations = %d", c.name, cl.Observations())
		}
	}
}

func TestClassifierEmpty(t *testing.T) {
	var cl Classifier
	if p, _ := cl.Pattern(); p != Unknown {
		t.Errorf("empty classifier = %v, want unknown", p)
	}
}

func TestClassifierOutlierTolerance(t *testing.T) {
	// A row-major walk: 63 continuous steps then one big jump per row.
	var cl Classifier
	for row := 0; row < 4; row++ {
		for i := 0; i < 63; i++ {
			cl.Observe(1)
		}
		cl.Observe(1000) // row boundary: the first becomes the "stride"
	}
	if p, _ := cl.Pattern(); p != Continuous {
		t.Errorf("mostly-continuous walk classified as %v", p)
	}
	// But when irregularity exceeds 10%, the stream is random.
	var cl2 Classifier
	for i := 0; i < 10; i++ {
		cl2.Observe(1)
		cl2.Observe(int64(37 * (i + 1))) // a different jump every time
	}
	if p, _ := cl2.Pattern(); p != Random {
		t.Errorf("half-irregular stream classified as %v, want random", p)
	}
}
