package ocl

import (
	"testing"

	"dopia/internal/interp"
	"dopia/internal/sim"
)

const vaddSrc = `
__kernel void vadd(__global float* a, __global float* b, __global float* c, int n) {
    int i = get_global_id(0);
    if (i < n) { c[i] = a[i] + b[i]; }
}`

func TestPlatformAndDevices(t *testing.T) {
	p := NewPlatform(sim.Kaveri())
	devs := p.Devices()
	if len(devs) != 2 {
		t.Fatalf("%d devices, want 2", len(devs))
	}
	if devs[0].Type() != DeviceCPU || devs[1].Type() != DeviceGPU {
		t.Error("device order wrong")
	}
	if p.Device(DeviceGPU).ComputeUnits() != 8 {
		t.Errorf("GPU CUs = %d, want 8", p.Device(DeviceGPU).ComputeUnits())
	}
	if p.Device(DeviceCPU).ComputeUnits() != 4 {
		t.Errorf("CPU CUs = %d, want 4", p.Device(DeviceCPU).ComputeUnits())
	}
}

func TestPlainEnqueueCPUAndGPU(t *testing.T) {
	p := NewPlatform(sim.Kaveri())
	ctx := p.CreateContext()
	prog := ctx.CreateProgramWithSource(vaddSrc)
	if err := prog.Build(); err != nil {
		t.Fatal(err)
	}
	for _, dt := range []DeviceType{DeviceCPU, DeviceGPU} {
		kern, err := prog.CreateKernel("vadd")
		if err != nil {
			t.Fatal(err)
		}
		n := 256
		a := ctx.CreateFloatBuffer(n)
		b := ctx.CreateFloatBuffer(n)
		c := ctx.CreateFloatBuffer(n)
		for i := 0; i < n; i++ {
			a.Float32()[i] = float32(i)
			b.Float32()[i] = 1
		}
		for i, v := range []any{a, b, c, n} {
			if err := kern.SetArg(i, v); err != nil {
				t.Fatal(err)
			}
		}
		q := ctx.CreateCommandQueue(p.Device(dt))
		if err := q.EnqueueNDRangeKernel(kern, interp.ND1(n, 64)); err != nil {
			t.Fatal(err)
		}
		if err := q.Finish(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if c.Float32()[i] != float32(i)+1 {
				t.Fatalf("%v: c[%d] = %v", dt, i, c.Float32()[i])
			}
		}
		if q.SimTime <= 0 {
			t.Errorf("%v: no simulated time charged", dt)
		}
		if dt == DeviceCPU && q.LastResult.WGsGPU != 0 {
			t.Error("CPU queue used the GPU")
		}
		if dt == DeviceGPU && q.LastResult.WGsCPU != 0 {
			t.Error("GPU queue used the CPU")
		}
	}
}

func TestKernelArgErrors(t *testing.T) {
	p := NewPlatform(sim.Kaveri())
	ctx := p.CreateContext()
	prog := ctx.CreateProgramWithSource(vaddSrc)
	if err := prog.Build(); err != nil {
		t.Fatal(err)
	}
	kern, err := prog.CreateKernel("vadd")
	if err != nil {
		t.Fatal(err)
	}
	if err := kern.SetArg(9, 1); err == nil {
		t.Error("expected out-of-range arg error")
	}
	if err := kern.SetArg(0, "nope"); err == nil {
		t.Error("expected unsupported-type error")
	}
	if _, err := kern.Args(); err == nil {
		t.Error("expected unset-arg error")
	}
	q := ctx.CreateCommandQueue(p.Device(DeviceCPU))
	if err := q.EnqueueNDRangeKernel(kern, interp.ND1(64, 64)); err == nil {
		t.Error("expected enqueue error with unset args")
	}
}

func TestBuildErrors(t *testing.T) {
	p := NewPlatform(sim.Skylake())
	ctx := p.CreateContext()
	prog := ctx.CreateProgramWithSource("__kernel void broken(")
	if err := prog.Build(); err == nil {
		t.Error("expected build error")
	}
	if _, err := prog.CreateKernel("broken"); err == nil {
		t.Error("expected error creating kernel from unbuilt program")
	}
	good := ctx.CreateProgramWithSource(vaddSrc)
	if err := good.Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := good.CreateKernel("nosuch"); err == nil {
		t.Error("expected error for unknown kernel name")
	}
}

func TestGPUQueueSlowerOnCPUAffineKernel(t *testing.T) {
	// A strided, low-compute kernel (transposed reads) should cost more
	// simulated time on the GPU queue than the CPU queue.
	src := `__kernel void colsum(__global float* A, __global float* y, int n) {
        int i = get_global_id(0);
        if (i < n) {
            float acc = 0.0f;
            for (int j = 0; j < n; j++) {
                acc += A[i * n + j];
            }
            y[i] = acc;
        }
    }`
	p := NewPlatform(sim.Kaveri())
	ctx := p.CreateContext()
	prog := ctx.CreateProgramWithSource(src)
	if err := prog.Build(); err != nil {
		t.Fatal(err)
	}
	n := 512
	run := func(dt DeviceType) float64 {
		kern, err := prog.CreateKernel("colsum")
		if err != nil {
			t.Fatal(err)
		}
		A := ctx.CreateFloatBuffer(n * n)
		y := ctx.CreateFloatBuffer(n)
		_ = kern.SetArg(0, A)
		_ = kern.SetArg(1, y)
		_ = kern.SetArg(2, n)
		q := ctx.CreateCommandQueue(p.Device(dt))
		if err := q.EnqueueNDRangeKernel(kern, interp.ND1(n, 64)); err != nil {
			t.Fatal(err)
		}
		return q.SimTime
	}
	cpu := run(DeviceCPU)
	gpu := run(DeviceGPU)
	t.Logf("colsum: cpu=%.4gms gpu=%.4gms", cpu*1e3, gpu*1e3)
	if gpu <= cpu {
		t.Errorf("row-per-lane kernel should be slower on GPU: cpu=%v gpu=%v", cpu, gpu)
	}
}

func TestReadWriteBuffer(t *testing.T) {
	p := NewPlatform(sim.Kaveri())
	ctx := p.CreateContext()
	q := ctx.CreateCommandQueue(p.Device(DeviceCPU))
	fb := ctx.CreateFloatBuffer(4)
	if err := q.EnqueueWriteBuffer(fb, []float32{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	out := make([]float32, 4)
	if err := q.EnqueueReadBuffer(fb, out); err != nil {
		t.Fatal(err)
	}
	if out[3] != 4 {
		t.Errorf("read back %v", out)
	}
	ib := ctx.CreateIntBuffer(2)
	if err := q.EnqueueWriteBuffer(ib, []int32{7, 9}); err != nil {
		t.Fatal(err)
	}
	got := make([]int32, 2)
	if err := q.EnqueueReadBuffer(ib, got); err != nil {
		t.Fatal(err)
	}
	if got[1] != 9 {
		t.Errorf("read back %v", got)
	}
	// Size and type mismatches error out.
	if err := q.EnqueueWriteBuffer(fb, []float32{1}); err == nil {
		t.Error("expected size-mismatch error")
	}
	if err := q.EnqueueWriteBuffer(fb, []int32{1, 2, 3, 4}); err == nil {
		t.Error("expected type-mismatch error")
	}
	if err := q.EnqueueReadBuffer(fb, "nope"); err == nil {
		t.Error("expected unsupported-type error")
	}
}
