package ocl

import (
	"errors"
	"testing"

	"dopia/internal/faults"
	"dopia/internal/sim"
)

// TestBuildDedupsIdenticalSource verifies that building the same program
// text twice — even in different contexts — compiles once and shares the
// checked program object.
func TestBuildDedupsIdenticalSource(t *testing.T) {
	p := NewPlatform(sim.Kaveri())
	c1, c2 := p.CreateContext(), p.CreateContext()
	pr1 := c1.CreateProgramWithSource(vaddSrc)
	pr2 := c2.CreateProgramWithSource(vaddSrc)
	if err := pr1.Build(); err != nil {
		t.Fatalf("Build 1: %v", err)
	}
	if err := pr2.Build(); err != nil {
		t.Fatalf("Build 2: %v", err)
	}
	if pr1.Compiled() != pr2.Compiled() {
		t.Errorf("identical sources compiled to distinct programs; dedup failed")
	}
	pr3 := c1.CreateProgramWithSource(vaddSrc + "\n// distinct")
	if err := pr3.Build(); err != nil {
		t.Fatalf("Build 3: %v", err)
	}
	if pr3.Compiled() == pr1.Compiled() {
		t.Errorf("distinct sources share a compiled program")
	}
}

// TestBuildCacheBypassedWhileFaultsArmed verifies that an armed clc.parse
// plan fires on every Build of a cached source: memoization must never
// mask an injected fault sequence.
func TestBuildCacheBypassedWhileFaultsArmed(t *testing.T) {
	p := NewPlatform(sim.Kaveri())
	c := p.CreateContext()
	if err := c.CreateProgramWithSource(vaddSrc).Build(); err != nil { // warm
		t.Fatalf("Build: %v", err)
	}
	boom := errors.New("boom")
	faults.InjectError("clc.parse", boom)
	t.Cleanup(faults.Reset)
	err := c.CreateProgramWithSource(vaddSrc).Build()
	if !errors.Is(err, boom) {
		t.Fatalf("Build with armed clc.parse: got %v, want injected error", err)
	}
}
