// Package ocl is an OpenCL-1.2-style runtime over the integrated-
// architecture simulator: platforms expose a CPU and a GPU device,
// programs are compiled from OpenCL C source, kernels take buffer and
// scalar arguments, and command queues execute ND-range launches on their
// device while charging simulated time. It reproduces the API boundary
// Dopia interposes on in the paper (clCreateProgramWithSource /
// clEnqueueNDRangeKernel): install an Interposer (internal/core provides
// one) to let Dopia take over program analysis and kernel execution.
package ocl

import (
	"context"
	"fmt"

	"dopia/internal/clc"
	"dopia/internal/faults"
	"dopia/internal/interp"
	"dopia/internal/sched"
	"dopia/internal/sim"
)

// DeviceType distinguishes the two devices of an integrated processor.
type DeviceType int

// Device types.
const (
	DeviceCPU DeviceType = iota
	DeviceGPU
)

func (t DeviceType) String() string {
	if t == DeviceGPU {
		return "GPU"
	}
	return "CPU"
}

// Platform models one integrated processor.
type Platform struct {
	machine *sim.Machine
	devices []*Device
}

// NewPlatform creates a platform over a machine model.
func NewPlatform(m *sim.Machine) *Platform {
	p := &Platform{machine: m}
	p.devices = []*Device{
		{platform: p, typ: DeviceCPU},
		{platform: p, typ: DeviceGPU},
	}
	return p
}

// Name returns the platform name.
func (p *Platform) Name() string { return "dopia-sim: " + p.machine.Name }

// Machine exposes the underlying machine model.
func (p *Platform) Machine() *sim.Machine { return p.machine }

// Devices lists the platform's devices (CPU first, then GPU).
func (p *Platform) Devices() []*Device { return p.devices }

// Device returns the device of the given type.
func (p *Platform) Device(t DeviceType) *Device { return p.devices[t] }

// Device is one compute device.
type Device struct {
	platform *Platform
	typ      DeviceType
}

// Type returns the device type.
func (d *Device) Type() DeviceType { return d.typ }

// Name returns a descriptive device name.
func (d *Device) Name() string {
	m := d.platform.machine
	if d.typ == DeviceGPU {
		return fmt.Sprintf("%s GPU (%d CUs x %d PEs)", m.Name, m.GPU.CUs, m.GPU.PEsPerCU)
	}
	return fmt.Sprintf("%s CPU (%d cores)", m.Name, m.CPU.Cores)
}

// ComputeUnits returns the OpenCL compute-unit count of the device.
func (d *Device) ComputeUnits() int {
	m := d.platform.machine
	if d.typ == DeviceGPU {
		return m.GPU.CUs
	}
	return m.CPU.Cores
}

// Interposer intercepts the two API calls Dopia hooks.
type Interposer interface {
	// ProgramBuilt is invoked after a program compiles successfully.
	ProgramBuilt(prog *Program) error
	// Enqueue may take over a kernel launch. Return handled=false to let
	// the plain runtime execute it on the queue's device.
	Enqueue(q *CommandQueue, k *Kernel, nd interp.NDRange) (handled bool, simTime float64, err error)
}

// Context owns buffers and programs for a platform.
type Context struct {
	platform   *Platform
	interposer Interposer
	space      *interp.AddressSpace
}

// CreateContext creates a context covering both devices.
func (p *Platform) CreateContext() *Context {
	return &Context{platform: p, space: &interp.AddressSpace{}}
}

// SetInterposer installs (or clears, with nil) the API interposer.
func (c *Context) SetInterposer(i Interposer) { c.interposer = i }

// Platform returns the owning platform.
func (c *Context) Platform() *Platform { return c.platform }

// Buffer is a device-visible memory object.
type Buffer struct {
	ctx *Context
	buf *interp.Buffer
}

// CreateFloatBuffer allocates an n-element float32 buffer.
func (c *Context) CreateFloatBuffer(n int) *Buffer {
	b := interp.NewFloatBuffer(n)
	c.space.Place(b)
	return &Buffer{ctx: c, buf: b}
}

// CreateIntBuffer allocates an n-element int32 buffer.
func (c *Context) CreateIntBuffer(n int) *Buffer {
	b := interp.NewIntBuffer(n)
	c.space.Place(b)
	return &Buffer{ctx: c, buf: b}
}

// WrapBuffer adopts an existing interpreter buffer into the context.
func (c *Context) WrapBuffer(b *interp.Buffer) *Buffer {
	c.space.Place(b)
	return &Buffer{ctx: c, buf: b}
}

// Float32 returns the buffer's float data (zero-copy, like a mapped
// buffer on an integrated architecture).
func (b *Buffer) Float32() []float32 { return b.buf.F32 }

// Int32 returns the buffer's int data.
func (b *Buffer) Int32() []int32 { return b.buf.I32 }

// Len returns the element count.
func (b *Buffer) Len() int { return b.buf.Len() }

// Raw exposes the underlying interpreter buffer.
func (b *Buffer) Raw() *interp.Buffer { return b.buf }

// Program is an OpenCL program: source plus its compiled form.
type Program struct {
	ctx    *Context
	Source string
	prog   *clc.Program
}

// CreateProgramWithSource registers program source with the context
// (clCreateProgramWithSource). Compilation happens in Build.
func (c *Context) CreateProgramWithSource(src string) *Program {
	return &Program{ctx: c, Source: src}
}

// Build compiles the program and notifies the interposer — the point
// where Dopia performs static analysis and code transformation.
//
// Build fails open with respect to the interposer: if clc compilation
// succeeds, a panicking or failing interposer cannot fail the build.
// Interposer failures surface later as per-launch fallbacks (Dopia's
// interposer records them in FallbackStats), never as build errors.
func (p *Program) Build() error {
	prog, err := compileSource(p.Source)
	if err != nil {
		return fmt.Errorf("ocl: build failed: %w", err)
	}
	p.prog = prog
	if ip := p.ctx.interposer; ip != nil {
		func() {
			var ierr error
			defer faults.Recover(faults.StageAnalysis, &ierr)
			ierr = ip.ProgramBuilt(p)
			_ = ierr // fail-open: the plain runtime can still run this program
		}()
	}
	return nil
}

// Compiled returns the checked program (nil before Build).
func (p *Program) Compiled() *clc.Program { return p.prog }

// CreateKernel returns a kernel object for a kernel of the program.
func (p *Program) CreateKernel(name string) (*Kernel, error) {
	if p.prog == nil {
		return nil, fmt.Errorf("ocl: program not built")
	}
	k := p.prog.Kernel(name)
	if k == nil {
		return nil, fmt.Errorf("ocl: kernel %q not found", name)
	}
	return &Kernel{
		prog:   p,
		kernel: k,
		args:   make([]interp.Arg, len(k.Params)),
		isSet:  make([]bool, len(k.Params)),
	}, nil
}

// Kernel is a kernel object with bound arguments.
type Kernel struct {
	prog   *Program
	kernel *clc.Kernel
	args   []interp.Arg
	isSet  []bool
}

// Name returns the kernel name.
func (k *Kernel) Name() string { return k.kernel.Name }

// Compiled returns the checked kernel AST.
func (k *Kernel) Compiled() *clc.Kernel { return k.kernel }

// NumArgs returns the number of kernel parameters.
func (k *Kernel) NumArgs() int { return len(k.args) }

// SetArg binds argument i. Accepted values: *Buffer, *interp.Buffer,
// interp.Arg, int, int32, int64, float32, float64.
func (k *Kernel) SetArg(i int, v any) error {
	if i < 0 || i >= len(k.args) {
		return fmt.Errorf("ocl: argument index %d out of range", i)
	}
	var a interp.Arg
	switch x := v.(type) {
	case *Buffer:
		a = interp.BufArg(x.buf)
	case *interp.Buffer:
		a = interp.BufArg(x)
	case interp.Arg:
		a = x
	case int:
		a = interp.IntArg(int64(x))
	case int32:
		a = interp.IntArg(int64(x))
	case int64:
		a = interp.IntArg(x)
	case float32:
		a = interp.FloatArg(float64(x))
	case float64:
		a = interp.FloatArg(x)
	default:
		return fmt.Errorf("ocl: unsupported argument type %T", v)
	}
	k.args[i] = a
	k.isSet[i] = true
	return nil
}

// Args returns the currently bound arguments (all must be set).
func (k *Kernel) Args() ([]interp.Arg, error) {
	for i, ok := range k.isSet {
		if !ok {
			return nil, fmt.Errorf("ocl: argument %d (%s) of %s not set",
				i, k.kernel.Params[i].Name, k.kernel.Name)
		}
	}
	return append([]interp.Arg(nil), k.args...), nil
}

// CommandQueue executes launches on one device and accounts simulated time.
type CommandQueue struct {
	ctx    *Context
	device *Device
	// SimTime accumulates the simulated seconds of all launches.
	SimTime float64
	// LastResult holds the simulation result of the latest launch.
	LastResult *sim.Result
	// Fallback counts how interposed launches on this queue moved
	// through the fail-open ladder (per-queue view; the framework keeps
	// an aggregate).
	Fallback *faults.FallbackStats

	// LastLaunch optionally holds interposer-specific detail about the
	// latest launch on this queue (Dopia's interposer stores a
	// *core.LaunchInfo: ladder rung, DoP decision, engine). The plain
	// runtime leaves it untouched for interposed launches that degraded
	// to rung 3, so the cause survives. Like the other per-queue fields
	// it follows the queue's synchronization discipline: a queue is not
	// safe for concurrent use by multiple goroutines.
	LastLaunch any

	// firstErr latches the first deferred enqueue error until Finish
	// reports it (OpenCL-style deferred error semantics).
	firstErr error

	// execCtx, when non-nil, bounds subsequent launches (both the
	// interposed ladder and the plain runtime poll it between
	// work-groups). Set per request by SetExecContext.
	execCtx context.Context

	execs map[*clc.Kernel]*sched.Executor
}

// SetExecContext bounds every subsequent launch on this queue by ctx:
// the Dopia interposer threads it under its watchdog, and the plain
// runtime polls it between work-groups. nil restores the default
// (background) context. This is how a serving layer wires per-request
// deadlines into the existing abort machinery.
func (q *CommandQueue) SetExecContext(ctx context.Context) { q.execCtx = ctx }

// ExecContext returns the context bounding launches on this queue
// (never nil).
func (q *CommandQueue) ExecContext() context.Context {
	if q.execCtx == nil {
		return context.Background()
	}
	return q.execCtx
}

// CreateCommandQueue creates a queue on a device.
func (c *Context) CreateCommandQueue(d *Device) *CommandQueue {
	return &CommandQueue{
		ctx:      c,
		device:   d,
		Fallback: &faults.FallbackStats{},
		execs:    map[*clc.Kernel]*sched.Executor{},
	}
}

// latch records the first error of a command sequence for Finish.
func (q *CommandQueue) latch(err error) error {
	if err != nil && q.firstErr == nil {
		q.firstErr = err
	}
	return err
}

// Device returns the queue's device.
func (q *CommandQueue) Device() *Device { return q.device }

// Context returns the owning context.
func (q *CommandQueue) Context() *Context { return q.ctx }

// EnqueueNDRangeKernel executes a kernel launch. With an interposer
// installed the launch may be managed by Dopia; otherwise the plain
// runtime executes the whole ND range on this queue's device and charges
// the corresponding simulated time.
//
// The interposer boundary fails open: a panicking interposer, or one
// returning an error, degrades the launch to the plain runtime instead
// of failing it — an interposed launch only errors when the plain
// runtime itself cannot execute the kernel. Errors are additionally
// latched on the queue and re-surfaced by Finish.
func (q *CommandQueue) EnqueueNDRangeKernel(k *Kernel, nd interp.NDRange) error {
	if err := nd.Validate(); err != nil {
		return q.latch(err)
	}
	if ip := q.ctx.interposer; ip != nil {
		handled, simTime, err := func() (h bool, st float64, err error) {
			defer func() {
				if r := recover(); r != nil {
					perr := &faults.PanicError{Stage: faults.StageUnknown, Value: r}
					q.Fallback.RecordPlain(perr)
					h, st, err = false, 0, nil
				}
			}()
			return ip.Enqueue(q, k, nd)
		}()
		if err != nil {
			// A well-behaved interposer (core's ladder) never errors for
			// a runnable kernel; treat any error as one more degradation.
			q.Fallback.RecordPlain(err)
		} else if handled {
			q.SimTime += simTime
			return nil
		}
	}
	return q.latch(q.enqueuePlain(k, nd))
}

func (q *CommandQueue) enqueuePlain(k *Kernel, nd interp.NDRange) error {
	args, err := k.Args()
	if err != nil {
		return err
	}
	ex, ok := q.execs[k.kernel]
	if !ok {
		ex, err = sched.NewExecutor(q.ctx.platform.machine, k.kernel, nil)
		if err != nil {
			return err
		}
		q.execs[k.kernel] = ex
	}
	if err := ex.Bind(args...); err != nil {
		return err
	}
	if err := ex.Launch(nd); err != nil {
		return err
	}
	m := q.ctx.platform.machine
	cfg := m.CPUOnly()
	share := 1.0
	if q.device.typ == DeviceGPU {
		cfg = m.GPUOnly()
		share = 0
	}
	res, err := ex.Run(cfg, sched.RunOptions{
		Dist:       sim.Static,
		CPUShare:   share,
		Functional: true,
		Context:    q.execCtx,
	})
	if err != nil {
		return err
	}
	q.SimTime += res.Time
	q.LastResult = res
	return nil
}

// Finish synchronizes the queue (a no-op here: execution is synchronous)
// and reports the first error of the commands enqueued since the last
// Finish — OpenCL-style deferred error semantics for callers that do not
// check every enqueue. The latch is cleared afterwards.
func (q *CommandQueue) Finish() error {
	err := q.firstErr
	q.firstErr = nil
	return err
}

// EnqueueWriteBuffer copies host data into a buffer (synchronous, like a
// blocking clEnqueueWriteBuffer). On an integrated architecture this is a
// plain copy into shared memory.
func (q *CommandQueue) EnqueueWriteBuffer(b *Buffer, data any) error {
	switch src := data.(type) {
	case []float32:
		if len(src) != len(b.buf.F32) {
			return q.latch(fmt.Errorf("ocl: write of %d floats into %d-element buffer", len(src), len(b.buf.F32)))
		}
		copy(b.buf.F32, src)
	case []int32:
		if len(src) != len(b.buf.I32) {
			return q.latch(fmt.Errorf("ocl: write of %d ints into %d-element buffer", len(src), len(b.buf.I32)))
		}
		copy(b.buf.I32, src)
	default:
		return q.latch(fmt.Errorf("ocl: unsupported host data type %T", data))
	}
	return nil
}

// EnqueueReadBuffer copies a buffer back to host data (synchronous).
func (q *CommandQueue) EnqueueReadBuffer(b *Buffer, data any) error {
	switch dst := data.(type) {
	case []float32:
		if len(dst) != len(b.buf.F32) {
			return q.latch(fmt.Errorf("ocl: read of %d-element buffer into %d floats", len(b.buf.F32), len(dst)))
		}
		copy(dst, b.buf.F32)
	case []int32:
		if len(dst) != len(b.buf.I32) {
			return q.latch(fmt.Errorf("ocl: read of %d-element buffer into %d ints", len(b.buf.I32), len(dst)))
		}
		copy(dst, b.buf.I32)
	default:
		return q.latch(fmt.Errorf("ocl: unsupported host data type %T", data))
	}
	return nil
}
