package ocl

import (
	"errors"
	"strings"
	"testing"

	"dopia/internal/faults"
	"dopia/internal/interp"
	"dopia/internal/sim"
)

// buildVadd builds the vadd program and returns a ready kernel plus its
// buffers.
func buildVadd(t *testing.T, ctx *Context, n int) (*Kernel, *Buffer, *Buffer, *Buffer) {
	t.Helper()
	prog := ctx.CreateProgramWithSource(vaddSrc)
	if err := prog.Build(); err != nil {
		t.Fatal(err)
	}
	kern, err := prog.CreateKernel("vadd")
	if err != nil {
		t.Fatal(err)
	}
	a := ctx.CreateFloatBuffer(n)
	b := ctx.CreateFloatBuffer(n)
	c := ctx.CreateFloatBuffer(n)
	for i := 0; i < n; i++ {
		a.Float32()[i] = float32(i)
		b.Float32()[i] = 2
	}
	for i, v := range []any{a, b, c, n} {
		if err := kern.SetArg(i, v); err != nil {
			t.Fatal(err)
		}
	}
	return kern, a, b, c
}

// TestFinishLatchesFirstError: a failed enqueue is remembered and
// surfaced by Finish (OpenCL-style deferred error semantics), then the
// latch clears.
func TestFinishLatchesFirstError(t *testing.T) {
	p := NewPlatform(sim.Kaveri())
	ctx := p.CreateContext()
	kern, _, _, c := buildVadd(t, ctx, 256)
	q := ctx.CreateCommandQueue(p.Device(DeviceCPU))

	// First failure: a write of the wrong length.
	err1 := q.EnqueueWriteBuffer(c, make([]float32, 3))
	if err1 == nil {
		t.Fatal("mismatched write accepted")
	}
	// Second failure: an invalid ND range. The latch must keep the FIRST.
	err2 := q.EnqueueNDRangeKernel(kern, interp.NDRange{})
	if err2 == nil {
		t.Fatal("invalid ND range accepted")
	}
	got := q.Finish()
	if got == nil {
		t.Fatal("Finish returned nil after failed enqueues")
	}
	if !errors.Is(got, err1) && got.Error() != err1.Error() {
		t.Fatalf("Finish = %v, want first error %v", got, err1)
	}
	if !strings.Contains(got.Error(), "write of 3 floats") {
		t.Fatalf("Finish did not surface the first error: %v", got)
	}
	// Latch cleared: a clean sequence finishes clean.
	if err := q.Finish(); err != nil {
		t.Fatalf("latch not cleared: %v", err)
	}
	if err := q.EnqueueNDRangeKernel(kern, interp.ND1(256, 64)); err != nil {
		t.Fatal(err)
	}
	if err := q.Finish(); err != nil {
		t.Fatalf("clean sequence surfaced %v", err)
	}
}

// panicInterposer panics on every hook, simulating a catastrophically
// buggy management layer.
type panicInterposer struct{}

func (panicInterposer) ProgramBuilt(*Program) error { panic("interposer build bug") }
func (panicInterposer) Enqueue(*CommandQueue, *Kernel, interp.NDRange) (bool, float64, error) {
	panic("interposer enqueue bug")
}

// errorInterposer fails every hook with an error.
type errorInterposer struct{}

func (errorInterposer) ProgramBuilt(*Program) error { return errors.New("interposer refuses") }
func (errorInterposer) Enqueue(*CommandQueue, *Kernel, interp.NDRange) (bool, float64, error) {
	return false, 0, errors.New("interposer launch failure")
}

// TestInterposerFailOpen: panicking or erroring interposers cannot fail a
// build or a launch — the plain runtime executes the kernel, the result
// is correct, and the degradation is visible in the queue's stats.
func TestInterposerFailOpen(t *testing.T) {
	for _, tc := range []struct {
		name string
		ip   Interposer
	}{
		{"panic", panicInterposer{}},
		{"error", errorInterposer{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := NewPlatform(sim.Kaveri())
			ctx := p.CreateContext()
			ctx.SetInterposer(tc.ip)
			n := 128
			kern, _, _, c := buildVadd(t, ctx, n) // Build must survive the interposer
			q := ctx.CreateCommandQueue(p.Device(DeviceCPU))
			if err := q.EnqueueNDRangeKernel(kern, interp.ND1(n, 64)); err != nil {
				t.Fatalf("launch failed closed: %v", err)
			}
			if err := q.Finish(); err != nil {
				t.Fatalf("Finish latched an error for a recovered launch: %v", err)
			}
			for i := 0; i < n; i++ {
				if c.Float32()[i] != float32(i)+2 {
					t.Fatalf("c[%d] = %v, want %v", i, c.Float32()[i], float32(i)+2)
				}
			}
			snap := q.Fallback.Snapshot()
			if snap.Plain != 1 {
				t.Errorf("plain fallback not recorded: %s", snap)
			}
			if tc.name == "panic" && snap.Panics != 1 {
				t.Errorf("contained panic not recorded: %s", snap)
			}
		})
	}
}

// TestEnqueuePlainErrorStillSurfaces: fail-open never hides errors the
// plain runtime itself produces (e.g. unset kernel arguments).
func TestEnqueuePlainErrorStillSurfaces(t *testing.T) {
	p := NewPlatform(sim.Kaveri())
	ctx := p.CreateContext()
	prog := ctx.CreateProgramWithSource(vaddSrc)
	if err := prog.Build(); err != nil {
		t.Fatal(err)
	}
	kern, err := prog.CreateKernel("vadd")
	if err != nil {
		t.Fatal(err)
	}
	q := ctx.CreateCommandQueue(p.Device(DeviceCPU))
	if err := q.EnqueueNDRangeKernel(kern, interp.ND1(64, 64)); err == nil {
		t.Fatal("launch with unset arguments succeeded")
	}
	if q.Finish() == nil {
		t.Fatal("unset-argument error not latched")
	}
}

// TestFallbackStatsInjectionPlain: forcing the analysis stage to fail
// through the injection registry degrades an interposed launch to the
// plain runtime without an error. Exercises the ocl side of the ladder
// end-to-end with the real core interposer attached via the public API
// in the dopia package tests; here we check the plain path accounting
// stays silent without an interposer.
func TestNoInterposerNoFallbackAccounting(t *testing.T) {
	defer faults.Reset()
	p := NewPlatform(sim.Kaveri())
	ctx := p.CreateContext()
	n := 64
	kern, _, _, _ := buildVadd(t, ctx, n)
	q := ctx.CreateCommandQueue(p.Device(DeviceGPU))
	if err := q.EnqueueNDRangeKernel(kern, interp.ND1(n, 64)); err != nil {
		t.Fatal(err)
	}
	snap := q.Fallback.Snapshot()
	if snap.Degradations() != 0 || snap.Managed != 0 {
		t.Fatalf("plain-only queue recorded interposition stats: %s", snap)
	}
}
