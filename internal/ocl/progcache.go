package ocl

import (
	"crypto/sha256"
	"sync"

	"dopia/internal/clc"
	"dopia/internal/faults"
)

// progCache deduplicates program builds by source hash: applications that
// call clCreateProgramWithSource + clBuildProgram repeatedly with the same
// text (a common pattern per launch site) compile once per process. The
// dedup is what makes the whole memoization stack compose — identical
// sources yield identical *clc.Program / *clc.Kernel pointers, which in
// turn hit the interpreter's compile cache and the transform cache.
//
// Checked programs are immutable, so sharing one across Program objects
// (and contexts) is safe. The cache is bypassed while fault injection is
// armed: an armed clc.parse plan must observe every Build, not just the
// first per distinct source.
var progCache sync.Map // [32]byte (sha256 of source) -> *clc.Program

// compileSource returns the checked program for src, memoized process-wide.
func compileSource(src string) (*clc.Program, error) {
	key := sha256.Sum256([]byte(src))
	if v, ok := progCache.Load(key); ok && !faults.Active() {
		return v.(*clc.Program), nil
	}
	prog, err := clc.Compile(src)
	if err != nil {
		return nil, err
	}
	progCache.Store(key, prog)
	return prog, nil
}
