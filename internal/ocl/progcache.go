package ocl

import (
	"crypto/sha256"
	"sync"
	"sync/atomic"

	"dopia/internal/clc"
	"dopia/internal/faults"
)

// progCache deduplicates program builds by source hash: applications that
// call clCreateProgramWithSource + clBuildProgram repeatedly with the same
// text (a common pattern per launch site, and the common case for a
// serving daemon handling many tenants submitting the same kernels)
// compile once per process. The dedup is what makes the whole memoization
// stack compose — identical sources yield identical *clc.Program /
// *clc.Kernel pointers, which in turn hit the interpreter's compile cache
// and the transform cache.
//
// Checked programs are immutable, so sharing one across Program objects
// (and contexts) is safe. The cache is bypassed while fault injection is
// armed: an armed clc.parse plan must observe every Build, not just the
// first per distinct source.
var progCache sync.Map // [32]byte (sha256 of source) -> *clc.Program

// progCacheCounters tracks how builds moved through the cache. All fields
// are atomics: Build may be called from any number of sessions and worker
// goroutines at once, and /metrics snapshots the counters concurrently
// with them.
var progCacheCounters struct {
	hits     atomic.Int64 // builds served from the cache
	misses   atomic.Int64 // builds that compiled (first sight of a source)
	errors   atomic.Int64 // compilations that failed (never cached)
	bypasses atomic.Int64 // cache reads skipped because faults were armed
}

// ProgCacheSnapshot is a point-in-time view of the program-dedup cache
// counters.
type ProgCacheSnapshot struct {
	Hits     int64
	Misses   int64
	Errors   int64
	Bypasses int64
}

// ProgCacheStats atomically reads the program-cache counters. Counters
// move independently, so a snapshot racing a Build may observe the hit
// of that build and not yet its predecessor's — each individual counter
// is still exact and monotone.
func ProgCacheStats() ProgCacheSnapshot {
	return ProgCacheSnapshot{
		Hits:     progCacheCounters.hits.Load(),
		Misses:   progCacheCounters.misses.Load(),
		Errors:   progCacheCounters.errors.Load(),
		Bypasses: progCacheCounters.bypasses.Load(),
	}
}

// compileSource returns the checked program for src, memoized process-wide.
func compileSource(src string) (*clc.Program, error) {
	key := sha256.Sum256([]byte(src))
	if faults.Active() {
		progCacheCounters.bypasses.Add(1)
	} else if v, ok := progCache.Load(key); ok {
		progCacheCounters.hits.Add(1)
		return v.(*clc.Program), nil
	}
	prog, err := clc.Compile(src)
	if err != nil {
		progCacheCounters.errors.Add(1)
		return nil, err
	}
	progCacheCounters.misses.Add(1)
	progCache.Store(key, prog)
	return prog, nil
}
