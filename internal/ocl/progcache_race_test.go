package ocl

import (
	"fmt"
	"sync"
	"testing"

	"dopia/internal/sim"
)

// TestProgCacheConcurrentBuilds builds the same small set of sources
// from many goroutines at once — the multi-session serving pattern —
// and checks the dedup counters add up and every build observes a
// usable compiled program. Run under -race in CI.
func TestProgCacheConcurrentBuilds(t *testing.T) {
	const G, per, distinct = 16, 30, 4
	srcs := make([]string, distinct)
	for i := range srcs {
		// Distinct sources (the constant differs) that are new to this
		// process, so the miss count is exactly `distinct`.
		srcs[i] = fmt.Sprintf(`__kernel void k(__global float* a, int n) {
			int i = get_global_id(0);
			if (i < n) a[i] = a[i] + %d.0f;
		}`, i+1)
	}
	before := ProgCacheStats()
	p := NewPlatform(sim.Kaveri())

	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := p.CreateContext()
			for i := 0; i < per; i++ {
				prog := ctx.CreateProgramWithSource(srcs[(g+i)%distinct])
				if err := prog.Build(); err != nil {
					t.Errorf("build: %v", err)
					return
				}
				if prog.Compiled() == nil || prog.Compiled().Kernel("k") == nil {
					t.Error("built program lost its kernel")
					return
				}
			}
		}(g)
	}
	wg.Wait()

	delta := ProgCacheStats()
	hits := delta.Hits - before.Hits
	misses := delta.Misses - before.Misses
	if hits+misses != G*per {
		t.Fatalf("hits %d + misses %d != %d builds", hits, misses, G*per)
	}
	// Every distinct source compiles at least once; racing first builds
	// may compile the same source more than once (the cache is
	// last-write-wins, which is safe for immutable programs), so the
	// miss count is bounded, not exact.
	if misses < distinct || misses > distinct*G {
		t.Fatalf("misses = %d, want in [%d, %d]", misses, distinct, distinct*G)
	}
	if delta.Errors != before.Errors {
		t.Fatalf("compile errors moved: %d -> %d", before.Errors, delta.Errors)
	}
}
