// Package transform implements Dopia's malleable code generation (paper
// §6): it rewrites an OpenCL kernel into (a) a malleable GPU kernel whose
// degree of parallelism is controlled at launch time by two extra
// parameters, dop_gpu_mod and dop_gpu_alloc, using lane throttling and a
// CU-local atomic worklist (Figures 5 and 6), and (b) a CPU variant that
// processes whole work-groups pulled from a shared worklist (Figure 7).
//
// The transformation is source-to-source: it clones the AST, substitutes
// work-item index queries, wraps the body in the throttling scaffold,
// prints the result, and re-compiles it through the clc front-end. The
// output is therefore always a valid, type-checked kernel.
package transform

import (
	"fmt"

	"dopia/internal/clc"
)

// subst maps a work-item query to a replacement expression generator.
// cloneExpr consults it for every Call node.
type subst func(call *clc.Call) clc.Expr

// cloneExpr deep-copies an expression, producing fresh untyped nodes.
// When sub is non-nil and returns a non-nil replacement for a call, the
// replacement (already fresh) is used instead.
func cloneExpr(x clc.Expr, sub subst) clc.Expr {
	switch e := x.(type) {
	case *clc.Ident:
		return ident(e.Name)
	case *clc.IntLit:
		return &clc.IntLit{Value: e.Value, Text: e.Text}
	case *clc.FloatLit:
		return &clc.FloatLit{Value: e.Value, Text: e.Text}
	case *clc.Unary:
		return &clc.Unary{Op: e.Op, X: cloneExpr(e.X, sub)}
	case *clc.Binary:
		return &clc.Binary{Op: e.Op, L: cloneExpr(e.L, sub), R: cloneExpr(e.R, sub)}
	case *clc.Cond:
		return &clc.Cond{C: cloneExpr(e.C, sub), Then: cloneExpr(e.Then, sub), Else: cloneExpr(e.Else, sub)}
	case *clc.Index:
		return &clc.Index{Base: cloneExpr(e.Base, sub), Idx: cloneExpr(e.Idx, sub)}
	case *clc.Call:
		if sub != nil {
			if repl := sub(e); repl != nil {
				return repl
			}
		}
		c := &clc.Call{Name: e.Name}
		for _, a := range e.Args {
			c.Args = append(c.Args, cloneExpr(a, sub))
		}
		return c
	case *clc.Cast:
		return &clc.Cast{To: e.To, X: cloneExpr(e.X, sub)}
	case *clc.Assign:
		return &clc.Assign{Op: e.Op, LHS: cloneExpr(e.LHS, sub), RHS: cloneExpr(e.RHS, sub)}
	case *clc.IncDec:
		return &clc.IncDec{X: cloneExpr(e.X, sub), Decr: e.Decr, Post: e.Post}
	}
	panic(fmt.Sprintf("transform: cannot clone expression %T", x))
}

// cloneStmt deep-copies a statement tree with call substitution.
func cloneStmt(s clc.Stmt, sub subst) clc.Stmt {
	switch st := s.(type) {
	case *clc.Block:
		b := &clc.Block{}
		for _, inner := range st.Stmts {
			b.Stmts = append(b.Stmts, cloneStmt(inner, sub))
		}
		return b
	case *clc.DeclStmt:
		d := &clc.DeclStmt{}
		for _, vd := range st.Decls {
			nd := &clc.VarDecl{
				Name:     vd.Name,
				Type:     vd.Type,
				ArrayLen: vd.ArrayLen,
				IsLocal:  vd.IsLocal,
			}
			if vd.Init != nil {
				nd.Init = cloneExpr(vd.Init, sub)
			}
			d.Decls = append(d.Decls, nd)
		}
		return d
	case *clc.ExprStmt:
		return &clc.ExprStmt{X: cloneExpr(st.X, sub)}
	case *clc.IfStmt:
		n := &clc.IfStmt{Cond: cloneExpr(st.Cond, sub), Then: cloneStmt(st.Then, sub)}
		if st.Else != nil {
			n.Else = cloneStmt(st.Else, sub)
		}
		return n
	case *clc.ForStmt:
		n := &clc.ForStmt{}
		if st.Init != nil {
			n.Init = cloneStmt(st.Init, sub)
		}
		if st.Cond != nil {
			n.Cond = cloneExpr(st.Cond, sub)
		}
		if st.Post != nil {
			n.Post = cloneExpr(st.Post, sub)
		}
		n.Body = cloneStmt(st.Body, sub)
		return n
	case *clc.WhileStmt:
		return &clc.WhileStmt{Cond: cloneExpr(st.Cond, sub), Body: cloneStmt(st.Body, sub)}
	case *clc.DoWhileStmt:
		return &clc.DoWhileStmt{Body: cloneStmt(st.Body, sub), Cond: cloneExpr(st.Cond, sub)}
	case *clc.ReturnStmt:
		return &clc.ReturnStmt{}
	case *clc.BreakStmt:
		return &clc.BreakStmt{}
	case *clc.ContinueStmt:
		return &clc.ContinueStmt{}
	case *clc.BarrierStmt:
		return &clc.BarrierStmt{Flags: st.Flags}
	}
	panic(fmt.Sprintf("transform: cannot clone statement %T", s))
}

// Small AST construction helpers.

func ident(name string) *clc.Ident { return &clc.Ident{Name: name} }

func intLit(v int64) *clc.IntLit { return &clc.IntLit{Value: v} }

func bin(op clc.BinaryOp, l, r clc.Expr) *clc.Binary { return &clc.Binary{Op: op, L: l, R: r} }

func call(name string, args ...clc.Expr) *clc.Call { return &clc.Call{Name: name, Args: args} }

func exprStmt(x clc.Expr) clc.Stmt { return &clc.ExprStmt{X: x} }

func assign(lhs, rhs clc.Expr) clc.Expr {
	return &clc.Assign{Op: clc.AssignPlain, LHS: lhs, RHS: rhs}
}

func declInt(name string, init clc.Expr) clc.Stmt {
	return &clc.DeclStmt{Decls: []*clc.VarDecl{{Name: name, Type: clc.TypeInt, Init: init}}}
}
