package transform

import (
	"fmt"
	"strings"
	"sync"

	"dopia/internal/clc"
	"dopia/internal/faults"
)

// Names introduced by the transformation. The __dopia_ prefix keeps them
// out of the way of user identifiers.
const (
	ParamMod     = "dop_gpu_mod"
	ParamAlloc   = "dop_gpu_alloc"
	worklistName = "__dopia_worklist"
	workName     = "__dopia_work"
	gidPrefix    = "__dopia_gid"
	lidPrefix    = "__dopia_lid"
)

// GPUResult is the product of the malleable GPU transformation.
type GPUResult struct {
	// Kernel is the type-checked malleable kernel (same name as the
	// original). Its parameter list is the original one plus
	// dop_gpu_mod and dop_gpu_alloc.
	Kernel *clc.Kernel
	// Source is the OpenCL C source of the malleable kernel.
	Source string
	// WorkDim is the dimensionality the transformation was specialised
	// for (the index-space linearization depends on it).
	WorkDim int
}

// MalleableGPU rewrites kernel k into its malleable GPU form for a given
// work dimensionality (1 or 2; 3-D kernels are not used by any workload in
// the paper's evaluation).
//
// The generated kernel executes each work-group with only the processing
// elements whose lane index l satisfies l % dop_gpu_mod < dop_gpu_alloc;
// the active lanes then process the *entire* work-group by pulling
// work-item indices from a CU-local atomic worklist, exactly as in
// Figures 5 and 6 of the paper.
func MalleableGPU(k *clc.Kernel, workDim int) (res *GPUResult, err error) {
	defer faults.Recover(faults.StageTransform, &err)
	if err := faults.Hit("transform.gpu"); err != nil {
		return nil, faults.Wrap(faults.StageTransform, err)
	}
	// The transformation is a pure function of the (immutable, checked)
	// kernel AST and the work dimensionality: memoize it. The injection
	// site above fires before the lookup, and the cache is bypassed while
	// faults are armed, so injected transform faults keep their exact hit
	// sequence even across repeated transformations of one kernel.
	key := transformKey{k, workDim}
	if v, ok := transformCache.Load(key); ok && !faults.Active() {
		return v.(*GPUResult), nil
	}
	res, err = malleableGPU(k, workDim)
	if err == nil {
		transformCache.Store(key, res)
	}
	return res, err
}

// transformKey identifies one memoized transformation.
type transformKey struct {
	k       *clc.Kernel
	workDim int
}

// transformCache memoizes MalleableGPU results. GPUResult and the ASTs it
// references are immutable after construction, so sharing one result
// across callers is safe.
var transformCache sync.Map // transformKey -> *GPUResult

// malleableGPU is the uncached transformation.
func malleableGPU(k *clc.Kernel, workDim int) (*GPUResult, error) {
	if workDim < 1 || workDim > 2 {
		return nil, faults.Wrap(faults.StageTransform, fmt.Errorf(
			"%w: transform: unsupported work dimension %d (want 1 or 2)",
			faults.ErrUnsupportedKernel, workDim))
	}
	if err := checkTransformable(k); err != nil {
		return nil, faults.Wrap(faults.StageTransform,
			fmt.Errorf("%w: %w", faults.ErrUnsupportedKernel, err))
	}

	// Build the substitution for work-item queries. Within the dynamic
	// worklist loop, the work-item identity is derived from __dopia_work:
	//   lid0 = work % lsize0, lid1 = work / lsize0 (lanes fastest),
	//   gidD  = group(D)*lsize(D) + offset(D) + lidD.
	sub := func(c *clc.Call) clc.Expr {
		dim := int64(0)
		if len(c.Args) == 1 {
			lit, ok := c.Args[0].(*clc.IntLit)
			if !ok {
				return nil // non-constant dim: leave as-is (sizes are fine)
			}
			dim = lit.Value
		}
		switch c.Name {
		case "get_global_id":
			if dim < int64(workDim) {
				return ident(fmt.Sprintf("%s%d", gidPrefix, dim))
			}
			return nil
		case "get_local_id":
			if dim < int64(workDim) {
				return ident(fmt.Sprintf("%s%d", lidPrefix, dim))
			}
			return nil
		}
		return nil
	}

	// Clone the original body with substituted index queries.
	inner := &clc.Block{}
	// Recompute lane indices from the dynamically fetched work id.
	if workDim == 1 {
		inner.Stmts = append(inner.Stmts,
			declInt(lidPrefix+"0", ident(workName)),
		)
	} else {
		inner.Stmts = append(inner.Stmts,
			declInt(lidPrefix+"0", bin(clc.BinRem, ident(workName), call("get_local_size", intLit(0)))),
			declInt(lidPrefix+"1", bin(clc.BinDiv, ident(workName), call("get_local_size", intLit(0)))),
		)
	}
	for d := 0; d < workDim; d++ {
		inner.Stmts = append(inner.Stmts,
			declInt(fmt.Sprintf("%s%d", gidPrefix, d),
				bin(clc.BinAdd,
					bin(clc.BinAdd,
						bin(clc.BinMul, call("get_group_id", intLit(int64(d))), call("get_local_size", intLit(int64(d)))),
						call("get_global_offset", intLit(int64(d)))),
					ident(fmt.Sprintf("%s%d", lidPrefix, d)))),
		)
	}
	for _, s := range k.Body.Stmts {
		cs := cloneStmt(s, sub)
		if err := rewriteReturns(cs, 0); err != nil {
			return nil, fmt.Errorf("transform: kernel %s: %w", k.Name, err)
		}
		inner.Stmts = append(inner.Stmts, cs)
	}

	// for (int work = atomic_inc(wl); work < wgSize; work = atomic_inc(wl))
	wgSize := clc.Expr(call("get_local_size", intLit(0)))
	if workDim == 2 {
		wgSize = bin(clc.BinMul, call("get_local_size", intLit(0)), call("get_local_size", intLit(1)))
	}
	loop := &clc.ForStmt{
		Init: declInt(workName, call("atomic_inc", ident(worklistName))),
		Cond: bin(clc.BinLt, ident(workName), wgSize),
		Post: assign(ident(workName), call("atomic_inc", ident(worklistName))),
		Body: inner,
	}

	// if (get_local_id(0) % dop_gpu_mod < dop_gpu_alloc) { loop }
	throttle := &clc.IfStmt{
		Cond: bin(clc.BinLt,
			bin(clc.BinRem, call("get_local_id", intLit(0)), ident(ParamMod)),
			ident(ParamAlloc)),
		Then: &clc.Block{Stmts: []clc.Stmt{loop}},
	}

	body := &clc.Block{Stmts: []clc.Stmt{
		&clc.DeclStmt{Decls: []*clc.VarDecl{{
			Name: worklistName, Type: clc.TypeInt, ArrayLen: 1, IsLocal: true,
		}}},
		&clc.IfStmt{
			Cond: bin(clc.BinEq, call("get_local_id", intLit(0)), intLit(0)),
			Then: exprStmt(assign(&clc.Index{Base: ident(worklistName), Idx: intLit(0)}, intLit(0))),
		},
		&clc.BarrierStmt{Flags: "CLK_LOCAL_MEM_FENCE"},
		throttle,
	}}

	nk := &clc.Kernel{Name: k.Name, Body: body}
	for _, p := range k.Params {
		nk.Params = append(nk.Params, &clc.Param{Name: p.Name, Type: p.Type})
	}
	nk.Params = append(nk.Params,
		&clc.Param{Name: ParamMod, Type: clc.TypeInt},
		&clc.Param{Name: ParamAlloc, Type: clc.TypeInt},
	)

	src := clc.PrintKernel(nk)
	prog, err := clc.Compile(src)
	if err != nil {
		return nil, fmt.Errorf("transform: generated malleable kernel does not compile: %w\n%s", err, src)
	}
	if len(prog.Kernels) == 0 {
		return nil, faults.Wrap(faults.StageTransform, fmt.Errorf(
			"%w: recompiled malleable source contains no kernel", faults.ErrTransformFailed))
	}
	return &GPUResult{Kernel: prog.Kernels[0], Source: src, WorkDim: workDim}, nil
}

// rewriteReturns converts `return` statements in the cloned body into
// `continue` statements targeting the dynamic worklist loop: in the
// malleable kernel a return would abandon the lane's remaining dynamic
// work, not just the current work-item. The rewrite is only sound when the
// return is not nested inside a user loop (where continue would bind to
// that loop); such kernels are rejected.
func rewriteReturns(s clc.Stmt, loopDepth int) error {
	switch st := s.(type) {
	case *clc.Block:
		for i, inner := range st.Stmts {
			if _, ok := inner.(*clc.ReturnStmt); ok {
				if loopDepth > 0 {
					return fmt.Errorf("return inside a loop cannot be made malleable")
				}
				st.Stmts[i] = &clc.ContinueStmt{}
				continue
			}
			if err := rewriteReturns(inner, loopDepth); err != nil {
				return err
			}
		}
	case *clc.IfStmt:
		if err := rewriteReturnsNested(&st.Then, loopDepth); err != nil {
			return err
		}
		if st.Else != nil {
			if err := rewriteReturnsNested(&st.Else, loopDepth); err != nil {
				return err
			}
		}
	case *clc.ForStmt:
		return rewriteReturnsNested(&st.Body, loopDepth+1)
	case *clc.WhileStmt:
		return rewriteReturnsNested(&st.Body, loopDepth+1)
	case *clc.DoWhileStmt:
		return rewriteReturnsNested(&st.Body, loopDepth+1)
	}
	return nil
}

func rewriteReturnsNested(sp *clc.Stmt, loopDepth int) error {
	if _, ok := (*sp).(*clc.ReturnStmt); ok {
		if loopDepth > 0 {
			return fmt.Errorf("return inside a loop cannot be made malleable")
		}
		*sp = &clc.ContinueStmt{}
		return nil
	}
	return rewriteReturns(*sp, loopDepth)
}

// checkTransformable rejects kernels the malleable rewrite cannot handle.
func checkTransformable(k *clc.Kernel) error {
	if k.Body == nil {
		return fmt.Errorf("transform: kernel %s has no body", k.Name)
	}
	for _, s := range k.Body.Stmts {
		if _, ok := s.(*clc.BarrierStmt); ok {
			return fmt.Errorf("transform: kernel %s uses barriers; the malleable rewrite would nest them inside the worklist loop", k.Name)
		}
	}
	for _, p := range k.Params {
		if p.Name == ParamMod || p.Name == ParamAlloc {
			return fmt.Errorf("transform: kernel %s already has a parameter named %s", k.Name, p.Name)
		}
	}
	for _, sym := range k.Locals {
		if strings.HasPrefix(sym.Name, "__dopia_") {
			return fmt.Errorf("transform: kernel %s uses reserved identifier %s", k.Name, sym.Name)
		}
	}
	return nil
}

// CPUResult is the product of the CPU code generation. The executable form
// of the CPU variant is the original kernel run one work-group at a time
// by a worker that pulls group ids from a shared atomic worklist (the
// runtime in internal/sched implements the pull loop); Source documents
// the generated code in the shape of Figure 7.
type CPUResult struct {
	Kernel *clc.Kernel // the original (unchanged) kernel
	Source string      // Figure-7-style rendition of the CPU work-group loop
}

// GenerateCPU produces the CPU execution form for kernel k. Panics are
// contained and returned as classified errors.
func GenerateCPU(k *clc.Kernel) (res *CPUResult, err error) {
	defer faults.Recover(faults.StageTransform, &err)
	if k.Body == nil {
		return nil, fmt.Errorf("transform: kernel %s has no body", k.Name)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "void %s_CPU(", k.Name)
	for i, p := range k.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", p.Type, p.Name)
	}
	b.WriteString(",\n            size_t* global_size, size_t* local_size,\n")
	b.WriteString("            atomic_int* worklist, size_t num_wgs)\n{\n")
	b.WriteString("    for (size_t wg_id = atomic_fetch_add(worklist, 1);\n")
	b.WriteString("         wg_id < num_wgs;\n")
	b.WriteString("         wg_id = atomic_fetch_add(worklist, 1))\n    {\n")
	b.WriteString("        for (size_t local_id = 0; local_id < local_size[0]; local_id++)\n        {\n")
	b.WriteString("            size_t global_id = wg_id * local_size[0] + local_id;\n")
	b.WriteString("            // original kernel body with get_global_id(0) = global_id\n")
	inner := clc.PrintKernel(k)
	for _, line := range strings.Split(inner, "\n") {
		if line == "" {
			continue
		}
		b.WriteString("            // " + line + "\n")
	}
	b.WriteString("        }\n    }\n}\n")
	return &CPUResult{Kernel: k, Source: b.String()}, nil
}
