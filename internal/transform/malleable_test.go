package transform

import (
	"math/rand"
	"strings"
	"testing"

	"dopia/internal/clc"
	"dopia/internal/interp"
)

func compileOne(t *testing.T, src string) *clc.Kernel {
	t.Helper()
	prog, err := clc.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog.Kernels[0]
}

const k1D = `
__kernel void sum3(__global float* A, __global float* B, __global float* C, int n) {
    int i = get_global_id(0);
    if (i < n) {
        C[i] = A[i] + B[i] + C[i];
    }
}`

const k1DReturn = `
__kernel void guarded(__global float* A, __global float* C, int n) {
    int i = get_global_id(0);
    if (i >= n) return;
    float acc = 0.0f;
    for (int j = 0; j < 8; j++) {
        acc += A[(i + j) % n];
    }
    C[i] = acc;
}`

const k2D = `
__kernel void addmat(__global float* A, __global float* B, __global float* C,
                     int ny, int nx) {
    int y = get_global_id(1);
    int x = get_global_id(0);
    if (y < ny && x < nx) {
        C[y * nx + x] = A[y * nx + x] + 2.0f * B[x * ny + y];
    }
}`

func TestMalleableSourceShape(t *testing.T) {
	k := compileOne(t, k1D)
	res, err := MalleableGPU(k, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"__local int __dopia_worklist[1]",
		"barrier(CLK_LOCAL_MEM_FENCE)",
		"get_local_id(0) % dop_gpu_mod < dop_gpu_alloc",
		"atomic_inc(__dopia_worklist)",
		"get_global_offset(0)",
	} {
		if !strings.Contains(res.Source, want) {
			t.Errorf("malleable source missing %q:\n%s", want, res.Source)
		}
	}
	if got := len(res.Kernel.Params); got != len(k.Params)+2 {
		t.Errorf("param count = %d, want %d", got, len(k.Params)+2)
	}
	if res.Kernel.Params[len(k.Params)].Name != ParamMod {
		t.Errorf("missing %s param", ParamMod)
	}
}

// runKernel executes a kernel over fresh copies of the given buffers and
// returns the copies.
func runKernel(t *testing.T, k *clc.Kernel, nd interp.NDRange, bufs []*interp.Buffer,
	scalars []interp.Arg, extra ...interp.Arg) []*interp.Buffer {
	t.Helper()
	ex, err := interp.NewExec(k)
	if err != nil {
		t.Fatalf("NewExec: %v", err)
	}
	clones := make([]*interp.Buffer, len(bufs))
	args := make([]interp.Arg, 0, len(bufs)+len(scalars)+len(extra))
	for i, b := range bufs {
		clones[i] = b.Clone()
		args = append(args, interp.BufArg(clones[i]))
	}
	args = append(args, scalars...)
	args = append(args, extra...)
	if err := ex.Bind(args...); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if err := ex.Launch(nd); err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if err := ex.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return clones
}

func randomFloats(rng *rand.Rand, n int) *interp.Buffer {
	b := interp.NewFloatBuffer(n)
	for i := range b.F32 {
		b.F32[i] = rng.Float32()*4 - 2
	}
	return b
}

func TestMalleable1DEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	orig := compileOne(t, k1D)
	res, err := MalleableGPU(orig, 1)
	if err != nil {
		t.Fatal(err)
	}
	n := 96
	A, B, C := randomFloats(rng, n), randomFloats(rng, n), randomFloats(rng, n)
	nd := interp.ND1(n, 16)
	want := runKernel(t, orig, nd, []*interp.Buffer{A, B, C},
		[]interp.Arg{interp.IntArg(int64(n))})

	for _, cfg := range [][2]int64{{1, 1}, {8, 1}, {8, 3}, {8, 8}, {3, 2}, {16, 5}} {
		got := runKernel(t, res.Kernel, nd, []*interp.Buffer{A, B, C},
			[]interp.Arg{interp.IntArg(int64(n))},
			interp.IntArg(cfg[0]), interp.IntArg(cfg[1]))
		for i := range want {
			if !want[i].Equal(got[i]) {
				t.Fatalf("mod=%d alloc=%d: buffer %d differs from original", cfg[0], cfg[1], i)
			}
		}
	}
}

func TestMalleableReturnRewrite(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	orig := compileOne(t, k1DReturn)
	res, err := MalleableGPU(orig, 1)
	if err != nil {
		t.Fatal(err)
	}
	// n smaller than the global size so that the early return actually
	// fires in some work-items.
	n := 40
	A, C := randomFloats(rng, 64), randomFloats(rng, 64)
	nd := interp.ND1(64, 16)
	want := runKernel(t, orig, nd, []*interp.Buffer{A, C},
		[]interp.Arg{interp.IntArg(int64(n))})
	got := runKernel(t, res.Kernel, nd, []*interp.Buffer{A, C},
		[]interp.Arg{interp.IntArg(int64(n))},
		interp.IntArg(8), interp.IntArg(2))
	for i := range want {
		if !want[i].Equal(got[i]) {
			t.Fatalf("buffer %d differs (return rewrite broken)", i)
		}
	}
}

func TestMalleable2DEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	orig := compileOne(t, k2D)
	res, err := MalleableGPU(orig, 2)
	if err != nil {
		t.Fatal(err)
	}
	ny, nx := 24, 16
	A := randomFloats(rng, ny*nx)
	B := randomFloats(rng, ny*nx)
	C := randomFloats(rng, ny*nx)
	nd := interp.ND2(nx, ny, 8, 8)
	want := runKernel(t, orig, nd, []*interp.Buffer{A, B, C},
		[]interp.Arg{interp.IntArg(int64(ny)), interp.IntArg(int64(nx))})
	for _, cfg := range [][2]int64{{8, 1}, {8, 5}, {4, 4}} {
		got := runKernel(t, res.Kernel, nd, []*interp.Buffer{A, B, C},
			[]interp.Arg{interp.IntArg(int64(ny)), interp.IntArg(int64(nx))},
			interp.IntArg(cfg[0]), interp.IntArg(cfg[1]))
		for i := range want {
			if !want[i].Equal(got[i]) {
				t.Fatalf("mod=%d alloc=%d: buffer %d differs", cfg[0], cfg[1], i)
			}
		}
	}
}

// TestMalleableChunkedDispatch verifies the malleable kernel computes the
// right global ids when launched as offset sub-ranges, which is how
// Dopia's runtime pushes chunks of work-groups to the GPU.
func TestMalleableChunkedDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	orig := compileOne(t, k1D)
	res, err := MalleableGPU(orig, 1)
	if err != nil {
		t.Fatal(err)
	}
	n := 128
	A, B, C := randomFloats(rng, n), randomFloats(rng, n), randomFloats(rng, n)
	nd := interp.ND1(n, 16)
	want := runKernel(t, orig, nd, []*interp.Buffer{A, B, C},
		[]interp.Arg{interp.IntArg(int64(n))})

	// Execute the malleable kernel chunk by chunk over shared buffers.
	ex, err := interp.NewExec(res.Kernel)
	if err != nil {
		t.Fatal(err)
	}
	gA, gB, gC := A.Clone(), B.Clone(), C.Clone()
	if err := ex.Bind(interp.BufArg(gA), interp.BufArg(gB), interp.BufArg(gC),
		interp.IntArg(int64(n)), interp.IntArg(8), interp.IntArg(4)); err != nil {
		t.Fatal(err)
	}
	total := nd.TotalGroups()
	for start := 0; start < total; start += 3 {
		count := 3
		if start+count > total {
			count = total - start
		}
		sub, err := nd.SubRange(start, count)
		if err != nil {
			t.Fatal(err)
		}
		if err := ex.Launch(sub); err != nil {
			t.Fatal(err)
		}
		if err := ex.Run(); err != nil {
			t.Fatal(err)
		}
	}
	for i, b := range []*interp.Buffer{gA, gB, gC} {
		if !want[i].Equal(b) {
			t.Fatalf("chunked buffer %d differs", i)
		}
	}
}

func TestMalleableRejections(t *testing.T) {
	barSrc := `__kernel void kb(__global int* a) {
        barrier(CLK_LOCAL_MEM_FENCE);
        a[get_global_id(0)] = 1;
    }`
	if _, err := MalleableGPU(compileOne(t, barSrc), 1); err == nil {
		t.Error("expected rejection of kernel with barrier")
	}

	retLoop := `__kernel void kr(__global int* a, int n) {
        for (int i = 0; i < n; i++) {
            if (a[i] == 0) return;
            a[i] = 1;
        }
    }`
	if _, err := MalleableGPU(compileOne(t, retLoop), 1); err == nil {
		t.Error("expected rejection of return inside loop")
	}

	clash := `__kernel void kc(__global int* a, int dop_gpu_mod) {
        a[get_global_id(0)] = dop_gpu_mod;
    }`
	if _, err := MalleableGPU(compileOne(t, clash), 1); err == nil {
		t.Error("expected rejection of parameter name clash")
	}

	if _, err := MalleableGPU(compileOne(t, k1D), 3); err == nil {
		t.Error("expected rejection of 3-D transform")
	}
}

func TestGenerateCPU(t *testing.T) {
	k := compileOne(t, k1D)
	res, err := GenerateCPU(k)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernel != k {
		t.Error("CPU result must reference the original kernel")
	}
	for _, want := range []string{"sum3_CPU", "atomic_fetch_add(worklist, 1)", "num_wgs"} {
		if !strings.Contains(res.Source, want) {
			t.Errorf("CPU source missing %q", want)
		}
	}
}
