package transform

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dopia/internal/clc"
	"dopia/internal/interp"
	"dopia/internal/workloads"
)

// TestPropertyMalleableEquivalence is the repository's central correctness
// property: for randomly drawn synthetic-workload specifications and
// randomly drawn throttling parameters, the malleable GPU kernel produces
// buffers bit-identical to the original kernel.
func TestPropertyMalleableEquivalence(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 25,
		Rand:     rand.New(rand.NewSource(99)),
	}
	prop := func(alphaRaw, dimsRaw, gammaRaw, tRaw, rRaw, cRaw, wdRaw uint8, modRaw, allocRaw uint8) bool {
		spec := workloads.SynthSpec{
			Alpha:      1 + int(alphaRaw)%3,
			MatDims:    3 + int(dimsRaw)%2,
			Gamma:      int(gammaRaw) % 3,
			WorkDim:    1 + int(wdRaw)%2,
			DType:      clc.KindFloat,
			Size:       16384,
			WGSize:     64,
			Transposed: int(tRaw) % 2,
			Random:     int(rRaw) % 2,
			Constant:   int(cRaw) % 2,
		}
		w, err := spec.Generate()
		if err != nil {
			t.Logf("generate %+v: %v", spec, err)
			return false
		}
		k, err := w.CompileKernel()
		if err != nil {
			t.Logf("compile: %v", err)
			return false
		}
		mall, err := MalleableGPU(k, spec.WorkDim)
		if err != nil {
			t.Logf("transform: %v", err)
			return false
		}

		mod := int64(1 + modRaw%16)
		alloc := int64(1 + int64(allocRaw)%mod)

		instA, err := w.Setup()
		if err != nil {
			return false
		}
		instB, err := w.Setup()
		if err != nil {
			return false
		}
		if err := runInstance(k, instA, nil); err != nil {
			t.Logf("original run: %v", err)
			return false
		}
		extra := []interp.Arg{interp.IntArg(mod), interp.IntArg(alloc)}
		if err := runInstance(mall.Kernel, instB, extra); err != nil {
			t.Logf("malleable run (mod=%d alloc=%d): %v", mod, alloc, err)
			return false
		}
		for _, oi := range instA.OutputArgs {
			if !instA.Args[oi].Buf.Equal(instB.Args[oi].Buf) {
				t.Logf("spec %+v mod=%d alloc=%d: output %d differs", spec, mod, alloc, oi)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func runInstance(k *clc.Kernel, inst *workloads.Instance, extra []interp.Arg) error {
	ex, err := interp.NewExec(k)
	if err != nil {
		return err
	}
	args := append(append([]interp.Arg(nil), inst.Args...), extra...)
	if err := ex.Bind(args...); err != nil {
		return err
	}
	if err := ex.Launch(inst.ND); err != nil {
		return err
	}
	return ex.Run()
}

// TestPropertyMalleableChunking: executing the malleable kernel as any
// contiguous-chunk partition of the work-groups equals a whole-range run.
func TestPropertyMalleableChunking(t *testing.T) {
	spec := workloads.SynthSpec{
		Alpha: 2, MatDims: 3, Gamma: 2, WorkDim: 1,
		DType: clc.KindFloat, Size: 16384, WGSize: 64,
	}
	w, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	k, err := w.CompileKernel()
	if err != nil {
		t.Fatal(err)
	}
	mall, err := MalleableGPU(k, 1)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := w.Setup()
	if err != nil {
		t.Fatal(err)
	}
	if err := runInstance(k, ref, nil); err != nil {
		t.Fatal(err)
	}

	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(5))}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst, err := w.Setup()
		if err != nil {
			return false
		}
		ex, err := interp.NewExec(mall.Kernel)
		if err != nil {
			return false
		}
		args := append(append([]interp.Arg(nil), inst.Args...),
			interp.IntArg(8), interp.IntArg(int64(1+rng.Intn(8))))
		if err := ex.Bind(args...); err != nil {
			return false
		}
		total := inst.ND.TotalGroups()
		for start := 0; start < total; {
			count := 1 + rng.Intn(total-start)
			sub, err := inst.ND.SubRange(start, count)
			if err != nil {
				return false
			}
			if err := ex.Launch(sub); err != nil {
				return false
			}
			if err := ex.Run(); err != nil {
				return false
			}
			start += count
		}
		for _, oi := range ref.OutputArgs {
			if !ref.Args[oi].Buf.Equal(inst.Args[oi].Buf) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
