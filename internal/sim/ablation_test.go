package sim

import (
	"testing"

	"dopia/internal/access"
)

// This file holds the ablation experiments DESIGN.md calls out: each test
// disables one simulator mechanism and checks that the paper phenomenon it
// is responsible for disappears. They double as regression tests for the
// machine-model calibration.

// ablateGesummv returns the gesummv model and a Kaveri machine that can be
// mutated per ablation.
func ablateGesummv(t *testing.T) (*Machine, *KernelModel) {
	t.Helper()
	return Kaveri(), gesummvModel(t, 16384, 256)
}

// TestAblationConcurrencyScaledCache: without the residency-scaled
// working set (Residency -> 0), the Figure 3(b) effect — memory requests
// growing with GPU utilization — vanishes.
func TestAblationConcurrencyScaledCache(t *testing.T) {
	m, km := ablateGesummv(t)
	perWG := func(mm *Machine, frac float64) float64 {
		r, err := Simulate(mm, km, Config{CPUCores: 4, GPUFrac: frac}, Dynamic, SimOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return r.Transactions / float64(r.WGsGPU)
	}
	withLow := perWG(m, 0.25)
	withHigh := perWG(m, 1.0)

	m2 := Kaveri()
	m2.GPU.Residency = 0.01 // working set no longer scales with threads
	withoutLow := perWG(m2, 0.25)
	withoutHigh := perWG(m2, 1.0)

	t.Logf("with scaling: %.0f -> %.0f; without: %.0f -> %.0f",
		withLow, withHigh, withoutLow, withoutHigh)
	if withHigh <= withLow*1.5 {
		t.Errorf("with scaling, requests must grow sharply with DoP: %v -> %v", withLow, withHigh)
	}
	if withoutHigh > withoutLow*1.2 {
		t.Errorf("without scaling, requests should stay nearly flat: %v -> %v", withoutLow, withoutHigh)
	}
}

// TestAblationStridedPenalty: without the uncoalesced-stream bandwidth
// penalty, gesummv stops being CPU-affine — the GPU (which sustains more
// bandwidth) wrongly matches or beats the CPU.
func TestAblationStridedPenalty(t *testing.T) {
	m, km := ablateGesummv(t)
	ratio := func(mm *Machine) float64 {
		cpu, err := Simulate(mm, km, mm.CPUOnly(), Dynamic, SimOptions{})
		if err != nil {
			t.Fatal(err)
		}
		gpuHalf, err := Simulate(mm, km, Config{GPUFrac: 0.5}, Dynamic, SimOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return gpuHalf.Time / cpu.Time
	}
	with := ratio(m)
	m2 := Kaveri()
	m2.GPU.StridedPenalty = 1.0
	without := ratio(m2)
	t.Logf("GPU@50%%/CPU time ratio: with penalty %.2f, without %.2f", with, without)
	if with <= 1.1 {
		t.Errorf("with the penalty, gesummv must be CPU-affine (ratio %v)", with)
	}
	if without >= with {
		t.Errorf("removing the penalty must narrow the gap: %v -> %v", with, without)
	}
}

// TestAblationPerPEBandwidthCap: without the per-PE bandwidth cap, a tiny
// GPU allocation would implausibly saturate the whole DRAM, erasing the
// benefit of wider allocations (the left-to-right gradient of Figure 1's
// low-CPU rows).
func TestAblationPerPEBandwidthCap(t *testing.T) {
	m, km := ablateGesummv(t)
	speedup := func(mm *Machine) float64 {
		small, err := Simulate(mm, km, Config{GPUFrac: 0.125}, Dynamic, SimOptions{})
		if err != nil {
			t.Fatal(err)
		}
		mid, err := Simulate(mm, km, Config{GPUFrac: 0.5}, Dynamic, SimOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return small.Time / mid.Time
	}
	with := speedup(m)
	m2 := Kaveri()
	m2.GPU.PEBWBs = 0 // uncapped
	without := speedup(m2)
	t.Logf("GPU 12.5%% -> 50%% speedup: with cap %.2f, without %.2f", with, without)
	if with < 1.5 {
		t.Errorf("with the cap, widening the GPU allocation must speed up a bandwidth-bound kernel (got %v)", with)
	}
	if without > with*0.9 {
		// Uncapped, the small allocation already saturates DRAM.
		if without > 1.3 {
			t.Errorf("without the cap the scaling should largely disappear: %v", without)
		}
	}
}

// TestAblationChunkSizeSensitivity: the paper fixes the GPU push chunk at
// one tenth of the work-groups. Much larger chunks hurt load balance on
// CPU-affine kernels (the GPU drags the tail); much smaller ones pay
// dispatch overhead.
func TestAblationChunkSizeSensitivity(t *testing.T) {
	m, km := ablateGesummv(t)
	cfg := Config{CPUCores: 4, GPUFrac: 0.5}
	run := func(div int) float64 {
		r, err := Simulate(m, km, cfg, Dynamic, SimOptions{GPUChunkDiv: div})
		if err != nil {
			t.Fatal(err)
		}
		return r.Time
	}
	coarse := run(1) // one giant chunk: half the work pushed blindly
	paper := run(10)
	t.Logf("chunk=all %.4gms, chunk=1/10 %.4gms", coarse*1e3, paper*1e3)
	if paper > coarse {
		t.Errorf("the paper's 1/10 chunking should not lose to a single blind push: %v vs %v",
			paper, coarse)
	}
}

// TestAblationLatencyCongestion: the congestion-stretched latency term is
// what makes latency-bound CPU work degrade when the GPU floods the memory
// system (the bottom-right cliff of Figure 1). Compare a random-access
// model with and without congestion by removing the GPU's traffic.
func TestAblationLatencyCongestion(t *testing.T) {
	m := Kaveri()
	km := &KernelModel{
		Name: "latency-bound", WorkDim: 1, NumWGs: 64, WGSize: 256, GroupsPerRow: 1,
		AluIntPerWG: 1e5,
		Sites: []SiteModel{{
			Site: 0, ElemSize: 4, AccPerWG: 5e4,
			Iter: access.Random, Lane: access.Random,
			BufBytes: 256 << 20, DistinctPerWI: 4 * 5e4 / 256,
		}},
	}
	alone, err := Simulate(m, km, Config{CPUCores: 4}, Dynamic, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	crowded, err := Simulate(m, km, Config{CPUCores: 4, GPUFrac: 1}, Dynamic, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	perWGAlone := alone.Time / float64(alone.WGsCPU)
	perWGCrowded := crowded.Time / float64(crowded.WGsCPU+crowded.WGsGPU)
	t.Logf("latency-bound per-WG time: CPU alone %.4g, with GPU flooding %.4g",
		perWGAlone, perWGCrowded)
	// The GPU takes work, so total time may drop; but the run must show
	// DRAM congestion: total traffic rises and the fluid engine is the
	// component charging it (sanity check of the mechanism wiring).
	if crowded.DRAMBytes <= alone.DRAMBytes {
		t.Errorf("GPU participation must add DRAM traffic: %v -> %v",
			alone.DRAMBytes, crowded.DRAMBytes)
	}
}

// TestExtensionChunkDecay exercises the future-work extension the paper
// sketches in §7: guided-self-scheduling chunk decay. On a CPU-affine
// kernel where the GPU drags the tail, decaying chunks must not be worse
// than the fixed 1/10 chunks, and usually improves the tail.
func TestExtensionChunkDecay(t *testing.T) {
	m, km := ablateGesummv(t)
	cfg := Config{CPUCores: 4, GPUFrac: 1.0} // oversized GPU share: worst tail
	fixed, err := Simulate(m, km, cfg, Dynamic, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	decay, err := Simulate(m, km, cfg, Dynamic, SimOptions{DecayChunks: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fixed chunks %.4gms, decaying chunks %.4gms", fixed.Time*1e3, decay.Time*1e3)
	if decay.Time > fixed.Time*1.02 {
		t.Errorf("chunk decay must not hurt: fixed=%v decay=%v", fixed.Time, decay.Time)
	}
	// On a GPU-only run the decay visibly produces more, smaller chunks.
	gFixed, err := Simulate(m, km, Config{GPUFrac: 1}, Dynamic, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gDecay, err := Simulate(m, km, Config{GPUFrac: 1}, Dynamic, SimOptions{DecayChunks: true})
	if err != nil {
		t.Fatal(err)
	}
	if gDecay.GPUChunks <= gFixed.GPUChunks {
		t.Errorf("decaying chunks should dispatch more, smaller chunks: %d vs %d",
			gDecay.GPUChunks, gFixed.GPUChunks)
	}
}
