package sim

import (
	"path/filepath"
	"strings"
	"testing"
)

const customMachineJSON = `{
  "name": "VanGogh",
  "cpu": {"cores": 4, "freq_ghz": 3.5, "core_bw_gbs": 6, "cache_kb": 512},
  "gpu": {"cus": 8, "pes_per_cu": 64, "freq_ghz": 1.6, "cache_kb": 1024},
  "mem": {"bandwidth_gbs": 68, "latency_ns": 90}
}`

func TestMachineFromJSON(t *testing.T) {
	m, err := MachineFromJSON(strings.NewReader(customMachineJSON))
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "VanGogh" || m.CPU.Cores != 4 || m.GPU.CUs != 8 {
		t.Fatalf("basic fields wrong: %+v", m)
	}
	if m.CPU.FreqHz != 3.5e9 || m.Mem.BandwidthBs != 68e9 {
		t.Errorf("unit conversion wrong: freq=%v bw=%v", m.CPU.FreqHz, m.Mem.BandwidthBs)
	}
	// Defaults fill in the unspecified knobs.
	if m.GPU.StridedPenalty != 2 || m.GPU.Residency != 8 || m.CPU.MLP != 8 {
		t.Errorf("defaults not applied: %+v", m.GPU)
	}
	// The DoP grid defaults to Table 3's 5x9 shape.
	if len(m.Configs()) != 44 {
		t.Errorf("%d configs, want 44", len(m.Configs()))
	}
	// The machine is immediately usable by the simulator.
	km := &KernelModel{
		Name: "x", WorkDim: 1, NumWGs: 16, WGSize: 64, GroupsPerRow: 1,
		AluFloatPerWG: 1e5,
	}
	if _, err := Simulate(m, km, m.AllResources(), Dynamic, SimOptions{}); err != nil {
		t.Errorf("custom machine cannot simulate: %v", err)
	}
}

func TestMachineJSONValidation(t *testing.T) {
	bad := []string{
		`{}`, // no name
		`{"name":"x"}`,
		`{"name":"x","cpu":{"cores":4,"freq_ghz":3}}`,                                             // no gpu
		`{"name":"x","cpu":{"cores":4,"freq_ghz":3},"gpu":{"cus":2,"pes_per_cu":8,"freq_ghz":1}}`, // no mem bw
		`{"name":"x","unknown_field":1}`,                                                          // unknown field rejected
		`{"name":"x","cpu":{"cores":4,"freq_ghz":3},"gpu":{"cus":2,"pes_per_cu":8,"freq_ghz":1},"mem":{"bandwidth_gbs":10},"cpu_steps":[9]}`, // step out of range
	}
	for _, src := range bad {
		if _, err := MachineFromJSON(strings.NewReader(src)); err == nil {
			t.Errorf("expected error for %s", src)
		}
	}
}

func TestMachineRoundTrip(t *testing.T) {
	for _, m := range []*Machine{Kaveri(), Skylake()} {
		path := filepath.Join(t.TempDir(), "machine.json")
		if err := SaveMachine(path, m); err != nil {
			t.Fatal(err)
		}
		m2, err := LoadMachine(path)
		if err != nil {
			t.Fatal(err)
		}
		if m2.Name != m.Name || m2.CPU.Cores != m.CPU.Cores ||
			m2.GPU.CUs != m.GPU.CUs || m2.GPU.PEsPerCU != m.GPU.PEsPerCU ||
			m2.Mem.SharedLLCB != m.Mem.SharedLLCB {
			t.Fatalf("%s: round trip changed structure:\n%+v\n%+v", m.Name, m, m2)
		}
		// Unit conversions (GHz, GB/s, us) may cost a ULP; every float
		// field must survive within relative 1e-12.
		pairs := [][2]float64{
			{m.CPU.FreqHz, m2.CPU.FreqHz},
			{m.CPU.CPIInt, m2.CPU.CPIInt},
			{m.CPU.CPIFloat, m2.CPU.CPIFloat},
			{m.CPU.CoreBWBs, m2.CPU.CoreBWBs},
			{m.CPU.MLP, m2.CPU.MLP},
			{m.GPU.FreqHz, m2.GPU.FreqHz},
			{m.GPU.Residency, m2.GPU.Residency},
			{m.GPU.PEBWBs, m2.GPU.PEBWBs},
			{m.GPU.StridedPenalty, m2.GPU.StridedPenalty},
			{m.GPU.MalleableCyc, m2.GPU.MalleableCyc},
			{m.GPU.DispatchSec, m2.GPU.DispatchSec},
			{m.Mem.BandwidthBs, m2.Mem.BandwidthBs},
			{m.Mem.LatencySec, m2.Mem.LatencySec},
			{m.Mem.GPULLCWeight, m2.Mem.GPULLCWeight},
		}
		for i, p := range pairs {
			if !closeRel(p[0], p[1], 1e-12) {
				t.Errorf("%s: field %d changed: %v -> %v", m.Name, i, p[0], p[1])
			}
		}
		if len(m2.Configs()) != len(m.Configs()) {
			t.Errorf("%s: DoP space changed", m.Name)
		}
	}
}

func closeRel(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if m < 0 {
		m = -m
	}
	if m == 0 {
		return d == 0
	}
	return d/m <= tol
}
