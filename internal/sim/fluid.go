package sim

import (
	"math"
	"sort"
)

// fluidTask is one in-flight unit of work inside the fluid engine.
type fluidTask struct {
	id      int
	owner   int // agent id
	compute float64
	latency float64
	memB    float64
	peakBW  float64
	demand  float64 // natural DRAM demand, bytes/s
	rate    float64 // currently allocated DRAM rate
}

// Fluid is a processor-sharing model of the shared DRAM: every in-flight
// task has a compute component (depleting in real time on its own
// processor), a latency component (stretching when the memory system is
// congested), and a byte count served from the shared bandwidth by
// water-filling across per-task demand caps. Events occur when a task
// completes; rates are recomputed at each event.
type Fluid struct {
	BW    float64
	Time  float64
	tasks map[int]*fluidTask
	next  int
}

// NewFluid returns an engine for a memory system with the given peak
// bandwidth (bytes/s).
func NewFluid(bw float64) *Fluid {
	return &Fluid{BW: bw, tasks: map[int]*fluidTask{}}
}

// Active returns the number of in-flight tasks.
func (f *Fluid) Active() int { return len(f.tasks) }

// Add inserts a task for an agent and returns its id.
func (f *Fluid) Add(owner int, c TaskCost) int {
	f.next++
	t := &fluidTask{
		id:      f.next,
		owner:   owner,
		compute: c.Compute,
		latency: c.Latency,
		memB:    c.MemBytes,
		peakBW:  c.PeakBW,
	}
	if t.peakBW <= 0 || t.peakBW > f.BW {
		t.peakBW = f.BW
	}
	// Natural demand: a memory-bound task wants its cap; a compute-bound
	// task only needs to stream at its compute pace.
	busy := t.compute + t.latency
	if t.memB <= 0 {
		t.demand = 0
	} else if busy <= 0 || t.memB/t.peakBW >= busy {
		t.demand = t.peakBW
	} else {
		t.demand = t.memB / busy
	}
	f.tasks[t.id] = t
	return t.id
}

// congestion returns the demand overload factor rho = max(0, D/BW - 1).
func (f *Fluid) congestion() float64 {
	var d float64
	for _, t := range f.tasks {
		d += t.demand
	}
	if f.BW <= 0 || d <= f.BW {
		return 0
	}
	return d/f.BW - 1
}

// waterfill allocates bandwidth across tasks proportionally to demand,
// capped at each task's demand (max-min fairness).
func (f *Fluid) waterfill() {
	remaining := f.BW
	unsat := make([]*fluidTask, 0, len(f.tasks))
	for _, t := range f.tasks {
		t.rate = 0
		if t.demand > 0 && t.memB > 0 {
			unsat = append(unsat, t)
		}
	}
	for len(unsat) > 0 && remaining > 1e-12 {
		share := remaining / float64(len(unsat))
		progressed := false
		rest := unsat[:0]
		for _, t := range unsat {
			if t.demand-t.rate <= share {
				grant := t.demand - t.rate
				t.rate = t.demand
				remaining -= grant
				progressed = true
			} else {
				rest = append(rest, t)
			}
		}
		unsat = rest
		if !progressed {
			// All remaining demands exceed the equal share: split evenly.
			share = remaining / float64(len(unsat))
			for _, t := range unsat {
				t.rate += share
			}
			remaining = 0
			break
		}
	}
}

// Step advances simulated time to the next event and returns the ids of
// the tasks that finished (possibly none, when the event was a task
// draining its memory and freeing bandwidth). ok is false when no tasks
// remain in flight.
func (f *Fluid) Step() (done []int, ok bool) {
	if len(f.tasks) == 0 {
		return nil, false
	}
	f.waterfill()
	rho := f.congestion()
	latRate := 1 / (1 + rho)

	// Earliest event: either a task fully completes, or a task drains its
	// memory (which frees bandwidth for the others).
	dt := math.Inf(1)
	for _, t := range f.tasks {
		fin := t.compute
		if lt := t.latency / latRate; lt > fin {
			fin = lt
		}
		if t.memB > 0 {
			var mt float64
			if t.rate <= 0 {
				mt = math.Inf(1)
			} else {
				mt = t.memB / t.rate
			}
			if mt < fin {
				// Memory drains before the task finishes: a rate-change
				// event.
				if mt < dt {
					dt = mt
				}
			}
			if mt > fin {
				fin = mt
			}
		}
		if fin < dt {
			dt = fin
		}
	}
	if math.IsInf(dt, 1) {
		// Degenerate: tasks with memory but no bandwidth (BW == 0, or a
		// zero-rate allocation). Their bytes can never drain, so forgive
		// them — otherwise Step would return forever without progress.
		// The tasks still pay their compute and latency on later steps.
		dt = 0
		for _, t := range f.tasks {
			if t.memB > 0 && t.rate <= 0 {
				t.memB = 0
			}
		}
	}

	f.Time += dt
	for id, t := range f.tasks {
		t.compute -= dt
		if t.compute < 0 {
			t.compute = 0
		}
		t.latency -= dt * latRate
		if t.latency < 0 {
			t.latency = 0
		}
		t.memB -= dt * t.rate
		if t.memB < 1e-9 {
			t.memB = 0
		}
		if t.compute <= 1e-15 && t.latency <= 1e-15 && t.memB <= 0 {
			done = append(done, id)
			delete(f.tasks, id)
		}
	}
	// Map iteration order is random; simultaneous completions must come
	// back in a stable order (task id = insertion order) so schedules
	// that react to completions replay deterministically.
	sort.Ints(done)
	return done, true
}

// Owner returns the agent owning a task id (valid before completion).
func (f *Fluid) Owner(id int) int {
	if t, ok := f.tasks[id]; ok {
		return t.owner
	}
	return -1
}
