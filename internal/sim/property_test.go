package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dopia/internal/access"
)

// TestPropertyFluidConservation: regardless of the task mix, the fluid
// engine (a) terminates, (b) never finishes a task before its contention-
// free lower bound, and (c) never moves more bytes per second than the
// DRAM bandwidth allows.
func TestPropertyFluidConservation(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(11))}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bw := 1e9 * (1 + rng.Float64()*30)
		f := NewFluid(bw)
		n := 1 + rng.Intn(12)
		lower := map[int]float64{}
		var totalBytes float64
		for i := 0; i < n; i++ {
			c := TaskCost{
				Compute:  rng.Float64() * 1e-2,
				Latency:  rng.Float64() * 1e-3,
				MemBytes: rng.Float64() * 1e8,
				PeakBW:   bw * (0.05 + rng.Float64()),
			}
			id := f.Add(i, c)
			lower[id] = c.AloneTime()
			totalBytes += c.MemBytes
		}
		finish := map[int]float64{}
		for steps := 0; ; steps++ {
			if steps > 100000 {
				return false // not terminating
			}
			done, ok := f.Step()
			if !ok {
				break
			}
			for _, id := range done {
				finish[id] = f.Time
			}
		}
		if len(finish) != n {
			return false
		}
		var last float64
		for id, t0 := range finish {
			if t0 < lower[id]-1e-9 {
				return false // beat the physics
			}
			if t0 > last {
				last = t0
			}
		}
		// Aggregate bandwidth bound: all bytes must fit in elapsed time.
		if last > 0 && totalBytes/last > bw*(1+1e-6) {
			return false
		}
		return !math.IsNaN(last) && !math.IsInf(last, 0)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestPropertySimulatedTimeBounds: for any (synthetic-model, config)
// pair, the simulated time is finite, positive, and no smaller than both
// the compute lower bound and the DRAM lower bound.
func TestPropertySimulatedTimeBounds(t *testing.T) {
	m := Kaveri()
	cfg := &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(21))}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		km := randomKernelModel(rng)
		cfgs := m.Configs()
		c := cfgs[rng.Intn(len(cfgs))]
		dist := Dynamic
		if rng.Intn(2) == 0 {
			dist = Static
		}
		r, err := Simulate(m, km, c, dist, SimOptions{CPUShare: rng.Float64()})
		if err != nil {
			return false
		}
		if r.Time <= 0 || math.IsNaN(r.Time) || math.IsInf(r.Time, 0) {
			return false
		}
		if r.WGsCPU+r.WGsGPU != km.NumWGs {
			return false
		}
		// DRAM lower bound: all traffic at peak bandwidth.
		if r.Time < r.DRAMBytes/m.Mem.BandwidthBs-1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func randomKernelModel(rng *rand.Rand) *KernelModel {
	wgSize := []int{64, 256}[rng.Intn(2)]
	numWGs := 1 + rng.Intn(128)
	km := &KernelModel{
		Name:          "random",
		WorkDim:       1,
		NumWGs:        numWGs,
		WGSize:        wgSize,
		GroupsPerRow:  1,
		AluIntPerWG:   rng.Float64() * 1e6,
		AluFloatPerWG: rng.Float64() * 1e6,
	}
	sites := 1 + rng.Intn(5)
	for i := 0; i < sites; i++ {
		km.Sites = append(km.Sites, SiteModel{
			Site:           i,
			Write:          rng.Intn(2) == 0,
			ElemSize:       4,
			AccPerWG:       rng.Float64() * 1e5,
			Iter:           randomPattern(rng),
			Lane:           randomPattern(rng),
			IterStride:     int64(rng.Intn(4096)),
			LaneStride:     int64(rng.Intn(4096)),
			BufBytes:       rng.Float64() * 1e8,
			DistinctPerWI:  rng.Float64() * 1e5,
			SharedAcrossWI: rng.Intn(2) == 0,
		})
	}
	return km
}

func randomPattern(rng *rand.Rand) access.Pattern {
	return access.Pattern(1 + rng.Intn(4))
}

// TestPropertyMoreResourcesNeverBeatPhysics: on a purely memory-bound
// model, no configuration can beat the DRAM-bandwidth lower bound, and
// the exhaustive best is at least as good as every fixed baseline.
func TestPropertyExhaustiveDominates(t *testing.T) {
	m := Skylake()
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(31))}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		km := randomKernelModel(rng)
		best, bestRes, table, err := Exhaustive(m, km)
		if err != nil {
			return false
		}
		if !best.Valid() {
			return false
		}
		for _, r := range table {
			if r.Time < bestRes.Time-1e-12 {
				return false
			}
		}
		return len(table) == 44
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
