package sim

import (
	"math"
	"testing"
)

func drain(t *testing.T, f *Fluid) map[int]float64 {
	t.Helper()
	finish := map[int]float64{}
	for i := 0; i < 100000; i++ {
		done, ok := f.Step()
		if !ok {
			return finish
		}
		for _, id := range done {
			finish[id] = f.Time
		}
	}
	t.Fatal("fluid engine did not terminate")
	return nil
}

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol*math.Abs(b)+1e-12 }

func TestFluidPureCompute(t *testing.T) {
	f := NewFluid(10e9)
	id := f.Add(0, TaskCost{Compute: 2.5})
	fin := drain(t, f)
	if !approx(fin[id], 2.5, 1e-9) {
		t.Errorf("compute-only task finished at %v, want 2.5", fin[id])
	}
}

func TestFluidPureMemory(t *testing.T) {
	f := NewFluid(10e9)
	id := f.Add(0, TaskCost{MemBytes: 20e9})
	fin := drain(t, f)
	if !approx(fin[id], 2.0, 1e-9) {
		t.Errorf("memory-only task finished at %v, want 2.0", fin[id])
	}
}

func TestFluidBandwidthSharing(t *testing.T) {
	f := NewFluid(10e9)
	a := f.Add(0, TaskCost{MemBytes: 10e9})
	b := f.Add(1, TaskCost{MemBytes: 10e9})
	fin := drain(t, f)
	// Two saturating tasks share fairly: both finish at 2s.
	if !approx(fin[a], 2.0, 1e-6) || !approx(fin[b], 2.0, 1e-6) {
		t.Errorf("shared tasks finished at %v and %v, want 2.0", fin[a], fin[b])
	}
}

func TestFluidPerAgentCap(t *testing.T) {
	f := NewFluid(20e9)
	id := f.Add(0, TaskCost{MemBytes: 10e9, PeakBW: 5e9})
	fin := drain(t, f)
	// The cap, not the DRAM, limits this agent.
	if !approx(fin[id], 2.0, 1e-9) {
		t.Errorf("capped task finished at %v, want 2.0", fin[id])
	}
}

func TestFluidComputeBoundUnaffectedByContention(t *testing.T) {
	f := NewFluid(10e9)
	// A compute-bound task (needs only 1 GB/s) next to a saturating one.
	a := f.Add(0, TaskCost{Compute: 2, MemBytes: 2e9})
	b := f.Add(1, TaskCost{MemBytes: 30e9})
	fin := drain(t, f)
	if !approx(fin[a], 2.0, 0.01) {
		t.Errorf("compute-bound task finished at %v, want ~2.0", fin[a])
	}
	// The saturating task gets 9 GB/s while the compute-bound one runs
	// (18 GB in 2 s), then the full 10 GB/s for the remaining 12 GB.
	if !approx(fin[b], 3.2, 0.01) {
		t.Errorf("memory task finished at %v, want 3.2", fin[b])
	}
}

func TestFluidLatencyStretchesUnderCongestion(t *testing.T) {
	// Latency-bound task alone.
	f1 := NewFluid(10e9)
	a1 := f1.Add(0, TaskCost{Latency: 1, MemBytes: 1e9, PeakBW: 5e9})
	fin1 := drain(t, f1)

	// Same task next to two saturating streams.
	f2 := NewFluid(10e9)
	a2 := f2.Add(0, TaskCost{Latency: 1, MemBytes: 1e9, PeakBW: 5e9})
	f2.Add(1, TaskCost{MemBytes: 100e9})
	f2.Add(2, TaskCost{MemBytes: 100e9})
	fin2 := drain(t, f2)

	if fin2[a2] <= fin1[a1] {
		t.Errorf("latency task must slow under congestion: alone=%v crowded=%v",
			fin1[a1], fin2[a2])
	}
}

func TestFluidMemoryDrainFreesBandwidth(t *testing.T) {
	f := NewFluid(10e9)
	// Short memory task and a long one: after the short one drains, the
	// long one should speed up.
	short := f.Add(0, TaskCost{MemBytes: 5e9})
	long := f.Add(1, TaskCost{MemBytes: 15e9})
	fin := drain(t, f)
	// Phase 1: both at 5 GB/s until short finishes at t=1.
	// Phase 2: long at 10 GB/s for remaining 10e9 -> 1s more.
	if !approx(fin[short], 1.0, 0.01) {
		t.Errorf("short finished at %v, want 1.0", fin[short])
	}
	if !approx(fin[long], 2.0, 0.01) {
		t.Errorf("long finished at %v, want 2.0", fin[long])
	}
}

func TestFluidRooflineOverlap(t *testing.T) {
	f := NewFluid(10e9)
	// Compute 1s, memory 2s: overlapped, finishes at 2s.
	id := f.Add(0, TaskCost{Compute: 1, MemBytes: 20e9})
	fin := drain(t, f)
	if !approx(fin[id], 2.0, 1e-6) {
		t.Errorf("roofline task finished at %v, want 2.0", fin[id])
	}
}

func TestTaskCostHelpers(t *testing.T) {
	c := TaskCost{Compute: 1, Latency: 0.5, MemBytes: 30e9, PeakBW: 10e9}
	if got := c.AloneTime(); !approx(got, 3.0, 1e-9) {
		t.Errorf("AloneTime = %v, want 3.0 (memory-bound)", got)
	}
	c2 := TaskCost{Compute: 2, MemBytes: 1e9, PeakBW: 10e9}
	if got := c2.AloneTime(); !approx(got, 2.0, 1e-9) {
		t.Errorf("AloneTime = %v, want 2.0 (compute-bound)", got)
	}
	sum := c.Plus(c2)
	if sum.Compute != 3 || sum.MemBytes != 31e9 || sum.PeakBW != 10e9 {
		t.Errorf("Plus wrong: %+v", sum)
	}
}
