package sim

import (
	"dopia/internal/access"
	"dopia/internal/mem"
)

// TaskCost is the resource demand of one schedulable unit of work: pure
// compute seconds, memory-latency stall seconds (which stretch under DRAM
// congestion), and DRAM bytes to move (which are served by the shared
// fluid bandwidth model, capped at PeakBW for this agent).
type TaskCost struct {
	Compute  float64
	Latency  float64
	MemBytes float64
	PeakBW   float64
}

// Plus returns the sum of two costs (PeakBW of the receiver wins).
func (c TaskCost) Plus(o TaskCost) TaskCost {
	return TaskCost{
		Compute:  c.Compute + o.Compute,
		Latency:  c.Latency + o.Latency,
		MemBytes: c.MemBytes + o.MemBytes,
		PeakBW:   c.PeakBW,
	}
}

// AloneTime returns the task's execution time with no DRAM contention.
func (c TaskCost) AloneTime() float64 {
	t := c.Compute + c.Latency
	if c.PeakBW > 0 {
		if m := c.MemBytes / c.PeakBW; m > t {
			return m
		}
	}
	return t
}

// scaleCoreCost adjusts a per-work-group CPU cost for the core that will
// run it: efficiency cores stretch compute and latency by the slowdown
// factor and sustain proportionally less bandwidth.
func (m *Machine) scaleCoreCost(c TaskCost, core int) TaskCost {
	s := m.CoreSlow(core)
	if s <= 1 {
		return c
	}
	c.Compute *= s
	c.Latency *= s
	c.PeakBW /= s
	return c
}

// llcAgents returns the number of LLC-sharing agents for cache
// partitioning on machines with a shared last-level cache.
func (m *Machine) llcAgents(cfg Config) float64 {
	a := float64(cfg.CPUCores)
	if cfg.GPUFrac > 0 {
		a += m.Mem.GPULLCWeight * cfg.GPUFrac
	}
	if a < 1 {
		a = 1
	}
	return a
}

// cpuCacheAvail returns the cache capacity one CPU core can count on.
func (m *Machine) cpuCacheAvail(cfg Config) float64 {
	avail := float64(m.CPU.CacheB)
	if m.Mem.SharedLLCB > 0 {
		avail += float64(m.Mem.SharedLLCB) / m.llcAgents(cfg)
	}
	return avail
}

// gpuCacheAvail returns the cache capacity backing the GPU.
func (m *Machine) gpuCacheAvail(cfg Config) float64 {
	avail := float64(m.GPU.CacheB)
	if m.Mem.SharedLLCB > 0 {
		w := m.Mem.GPULLCWeight * cfg.GPUFrac
		avail += float64(m.Mem.SharedLLCB) * w / m.llcAgents(cfg)
	}
	return avail
}

// CPUWGCost returns the cost of executing one work-group on one CPU core
// under the given machine-wide configuration (the configuration determines
// how much shared cache the core can use).
func (m *Machine) CPUWGCost(km *KernelModel, cfg Config) TaskCost {
	cpu := m.CPU
	cost := TaskCost{PeakBW: cpu.CoreBWBs}
	cost.Compute = (km.AluIntPerWG*cpu.CPIInt + km.AluFloatPerWG*cpu.CPIFloat) / cpu.FreqHz

	avail := m.cpuCacheAvail(cfg)
	numWGs := float64(km.NumWGs)
	if numWGs < 1 {
		numWGs = 1
	}
	for _, s := range km.Sites {
		acc := s.AccPerWG
		es := float64(s.ElemSize)
		bytes := acc * es
		switch s.Iter {
		case access.Constant:
			// Register/L1-resident after first touch.
		case access.Continuous, access.Strided:
			factor := mem.CPUStreamFactor(s.Iter, s.IterStride, s.ElemSize)
			if s.SharedAcrossWI {
				// Lane-constant data (e.g. the x vector of a mat-vec
				// product) is re-read by every work-item; once resident it
				// stays hot, so only the cold fetch is paid, amortized over
				// the work-groups each core processes.
				tf := mem.ThrashFraction(s.DistinctPerWI, avail)
				cores := float64(cfg.CPUCores)
				if cores < 1 {
					cores = 1
				}
				cold := s.DistinctPerWI * cores / numWGs
				cost.MemBytes += cold*(1-tf) + bytes*factor*tf
			} else {
				cost.MemBytes += bytes * factor
			}
		default: // Random
			missR := mem.RandomMissRatio(s.BufBytes, avail)
			misses := acc * missR
			cost.MemBytes += misses * mem.LineSize
			cost.Latency += misses * m.Mem.LatencySec / cpu.MLP
		}
	}
	return cost
}

// GPUChunkCost returns the cost of executing a chunk of work-groups on the
// GPU with the configuration's active-PE throttling, running the malleable
// kernel. The returned transaction count feeds the "memory requests"
// metric of Figure 3(b).
func (m *Machine) GPUChunkCost(km *KernelModel, wgs int, cfg Config) (TaskCost, float64) {
	return m.gpuChunkCost(km, wgs, cfg, true)
}

// GPUChunkCostPlain is GPUChunkCost for the unmodified kernel (no
// malleable worklist overhead), used by the plain OpenCL execution paths.
func (m *Machine) GPUChunkCostPlain(km *KernelModel, wgs int, cfg Config) (TaskCost, float64) {
	return m.gpuChunkCost(km, wgs, cfg, false)
}

func (m *Machine) gpuChunkCost(km *KernelModel, wgs int, cfg Config, malleable bool) (TaskCost, float64) {
	gpu := m.GPU
	apes := m.ActivePEs(cfg)
	if apes <= 0 {
		return TaskCost{}, 0
	}
	T := float64(gpu.CUs * apes)
	tRes := T * gpu.Residency
	items := float64(wgs * km.WGSize)

	cost := TaskCost{PeakBW: m.Mem.BandwidthBs}
	if gpu.PEBWBs > 0 {
		if cap := float64(gpu.CUs*apes) * gpu.PEBWBs; cap < cost.PeakBW {
			cost.PeakBW = cap
		}
	}
	cyc := km.AluIntPerWI()*gpu.CPIInt + km.AluFloatPerWI()*gpu.CPIFloat
	if malleable {
		cyc += gpu.MalleableCyc
	}
	cost.Compute = items * cyc / (T * gpu.FreqHz)

	avail := m.gpuCacheAvail(cfg)

	// Working set: shared footprints plus per-thread streaming windows.
	var ws float64
	for _, s := range km.Sites {
		if s.SharedAcrossWI {
			ws += s.DistinctPerWI
			continue
		}
		switch s.Lane {
		case access.Continuous, access.Constant:
			ws += tRes * mem.LineSize / float64(gpu.SIMDWidth)
		default: // strided / random: a private line per thread
			ws += tRes * mem.LineSize
		}
	}
	thrash := mem.ThrashFraction(ws, avail)

	var traffic float64
	chunkShare := float64(wgs) / float64(km.NumWGs)
	for _, s := range km.Sites {
		acc := s.AccPerWG * float64(wgs)
		es := float64(s.ElemSize)
		bytes := acc * es
		coal := mem.CoalesceFactor(s.Lane, s.LaneStride, s.ElemSize, gpu.SIMDWidth)
		trans := acc * coal
		worst := trans * mem.LineSize

		switch {
		case s.Iter == access.Constant && s.Lane != access.Random:
			// The address is fixed per work-item (e.g. a loop bound like
			// rowptr[i+1] re-read every iteration): after the first touch
			// the value lives in a register, so only the cold fetch of
			// each work-item's element is paid, at the lane pattern's
			// coalescing.
			traffic += float64(wgs*km.WGSize) * coal * mem.LineSize
		case s.Lane == access.Constant:
			// Broadcast data: reusable shared footprint.
			cold := s.DistinctPerWI * chunkShare
			traffic += cold*(1-thrash) + worst*thrash
		case s.Lane == access.Continuous:
			// Perfectly coalesced stream: every fetched byte is used.
			traffic += bytes
		case s.Iter == access.Continuous &&
			(s.Lane == access.Strided || s.Lane == access.Random):
			// Each lane streams its own region (matrix rows, CSR row
			// segments): a fetched line is fully consumed over the
			// following iterations iff it survives in cache until then.
			// Even then, partial-line transactions and DRAM row thrashing
			// make the scattered streams pay a bandwidth penalty.
			ideal := bytes * gpu.StridedPenalty
			if ideal > worst {
				ideal = worst
			}
			traffic += ideal*(1-thrash) + worst*thrash
		case s.Iter == access.Random || s.Lane == access.Random:
			missR := mem.RandomMissRatio(s.BufBytes, avail*(1-thrash))
			cold := minf(s.BufBytes, bytes) * chunkShare
			traffic += trans*mem.LineSize*missR + cold*(1-missR)
		default:
			traffic += worst
		}
	}
	if traffic < 0 {
		traffic = 0
	}
	if gpu.Discrete() {
		// Discrete GPU: the kernel's DRAM traffic is served by the card's
		// private memory (folded into compute — it does not contend with
		// the host's shared DRAM). What the shared fluid sees instead is
		// the chunk's buffer footprint crossing PCIe, paced by the bus,
		// plus a fixed bus-setup latency per chunk — which makes the
		// number of chunks a first-order scheduling cost on this machine.
		cost.Compute += traffic/gpu.LocalBWBs + gpu.PCIeLatSec
		cost.MemBytes = km.chunkFootprint(wgs)
		cost.PeakBW = gpu.PCIeBWBs
		if cost.PeakBW <= 0 || cost.PeakBW > m.Mem.BandwidthBs {
			cost.PeakBW = m.Mem.BandwidthBs
		}
	} else {
		cost.MemBytes = traffic
	}
	return cost, traffic / mem.LineSize
}

// chunkFootprint estimates the distinct buffer bytes a chunk of
// work-groups touches — the data a discrete GPU must move across PCIe to
// execute it. Shared (lane-constant) footprints are charged whole per
// chunk: every chunk needs the broadcast data resident.
func (km *KernelModel) chunkFootprint(wgs int) float64 {
	var b float64
	items := float64(wgs * km.WGSize)
	for _, s := range km.Sites {
		if s.SharedAcrossWI {
			b += s.DistinctPerWI
			continue
		}
		d := s.DistinctPerWI * items
		if s.BufBytes > 0 && d > s.BufBytes {
			d = s.BufBytes
		}
		b += d
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
