package sim

import (
	"fmt"
	"sort"
	"strings"
)

// This file is the machine zoo: architecture descriptions beyond the two
// parts the paper evaluates on. Each machine has its own crossover shapes
// in the DoP space — the big.LITTLE part punishes wide static CPU splits
// (the efficiency cluster lags the fast one), the discrete-GPU part
// charges every chunk a PCIe transfer (so chunk count becomes a first-
// order cost), and the Apple-M-like SoC has so much bandwidth that DRAM
// contention almost never throttles co-execution.

// BigLittle returns a model of a big.LITTLE-style mobile SoC: four fast
// cores plus four efficiency cores at ~2.5x the per-op cost and a third
// of the sustainable bandwidth, with a wide mobile GPU on LPDDR5. DoP
// steps activate the big cluster first.
func BigLittle() *Machine {
	return &Machine{
		Name: "BigLittle",
		CPU: CPUConfig{
			Cores:       8,
			FreqHz:      2.8e9,
			CPIInt:      0.25,
			CPIFloat:    0.4,
			CacheB:      512 << 10,
			CoreBWBs:    3e9,
			MLP:         6,
			LittleCores: 4,
			LittleSlow:  2.5,
		},
		GPU: GPUConfig{
			CUs:            2,
			PEsPerCU:       128,
			FreqHz:         800e6,
			SIMDWidth:      32,
			CPIInt:         1.0,
			CPIFloat:       1.0,
			CacheB:         1 << 20,
			Residency:      8,
			PEBWBs:         60e6,
			StridedPenalty: 2.2,
			MalleableCyc:   8,
			DispatchSec:    20e-6,
		},
		Mem: MemConfig{
			BandwidthBs:  30e9,
			LatencySec:   140e-9,
			SharedLLCB:   3 << 20,
			GPULLCWeight: 6,
		},
		CPUSteps: []int{0, 2, 4, 6, 8},
		GPUSteps: gpuFractions(),
	}
}

// DiscretePCIe returns a model of a desktop hybrid CPU (four performance
// plus four efficiency cores, Alder-Lake style) paired with a mid-range
// discrete GPU: the GPU runs out of its own 200 GB/s GDDR, but every
// chunk's buffer footprint must cross a 12 GB/s PCIe link that contends
// with the CPU for host DRAM, plus a fixed bus-setup latency per chunk.
func DiscretePCIe() *Machine {
	return &Machine{
		Name: "DiscretePCIe",
		CPU: CPUConfig{
			Cores:       8,
			FreqHz:      3.6e9,
			CPIInt:      0.25,
			CPIFloat:    0.3,
			CacheB:      512 << 10,
			CoreBWBs:    4e9,
			MLP:         10,
			LittleCores: 4,
			LittleSlow:  2.0,
		},
		GPU: GPUConfig{
			CUs:            20,
			PEsPerCU:       64,
			FreqHz:         1.4e9,
			SIMDWidth:      32,
			CPIInt:         1.0,
			CPIFloat:       1.0,
			CacheB:         2 << 20,
			Residency:      10,
			PEBWBs:         100e6,
			StridedPenalty: 1.8,
			MalleableCyc:   8,
			DispatchSec:    40e-6,
			LocalBWBs:      200e9,
			PCIeBWBs:       12e9,
			PCIeLatSec:     5e-6,
		},
		Mem: MemConfig{
			BandwidthBs: 35e9,
			LatencySec:  90e-9,
			SharedLLCB:  12 << 20,
			// The discrete GPU has its own cache hierarchy and exerts no
			// pressure on the host LLC.
			GPULLCWeight: 0,
		},
		CPUSteps: []int{0, 2, 4, 6, 8},
		GPUSteps: gpuFractions(),
	}
}

// AppleM returns a model of an Apple-M-like unified-memory SoC: four
// performance plus four efficiency cores, a wide on-die GPU, and a
// 68 GB/s fabric behind a 16 MiB system-level cache — bandwidth so
// plentiful that co-execution rarely self-throttles.
func AppleM() *Machine {
	return &Machine{
		Name: "AppleM",
		CPU: CPUConfig{
			Cores:       8,
			FreqHz:      3.2e9,
			CPIInt:      0.2,
			CPIFloat:    0.25,
			CacheB:      3 << 20,
			CoreBWBs:    20e9,
			MLP:         16,
			LittleCores: 4,
			LittleSlow:  3.0,
		},
		GPU: GPUConfig{
			CUs:            8,
			PEsPerCU:       128,
			FreqHz:         1.28e9,
			SIMDWidth:      32,
			CPIInt:         1.0,
			CPIFloat:       1.0,
			CacheB:         4 << 20,
			Residency:      12,
			PEBWBs:         120e6,
			StridedPenalty: 1.5,
			MalleableCyc:   6,
			DispatchSec:    5e-6,
		},
		Mem: MemConfig{
			BandwidthBs:  68e9,
			LatencySec:   100e-9,
			SharedLLCB:   16 << 20,
			GPULLCWeight: 8,
		},
		CPUSteps: []int{0, 2, 4, 6, 8},
		GPUSteps: gpuFractions(),
	}
}

// Zoo returns every built-in machine description: the paper's two
// evaluation parts plus the three zoo architectures.
func Zoo() []*Machine {
	return []*Machine{Kaveri(), Skylake(), BigLittle(), DiscretePCIe(), AppleM()}
}

// ZooNames returns the built-in machine names in Zoo order.
func ZooNames() []string {
	ms := Zoo()
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.Name
	}
	return out
}

// MachineByName returns a fresh instance of a built-in machine,
// case-insensitively.
func MachineByName(name string) (*Machine, error) {
	for _, m := range Zoo() {
		if strings.EqualFold(m.Name, name) {
			return m, nil
		}
	}
	names := ZooNames()
	sort.Strings(names)
	return nil, fmt.Errorf("sim: unknown machine %q (have %s)",
		name, strings.Join(names, ", "))
}
