package sim

import (
	"fmt"

	"dopia/internal/access"
	"dopia/internal/analysis"
	"dopia/internal/interp"
)

// SiteModel is the simulator's view of one memory operation site.
type SiteModel struct {
	Site     int
	Write    bool
	ElemSize int64

	// AccPerWG is the average number of executions per work-group.
	AccPerWG float64

	Iter       access.Pattern
	IterStride int64
	Lane       access.Pattern
	LaneStride int64

	// BufBytes is the size of the underlying buffer.
	BufBytes float64
	// DistinctPerWI is the number of distinct bytes one work-item touches
	// through this site.
	DistinctPerWI float64
	// SharedAcrossWI marks sites whose addresses do not depend on the
	// work-item (lane-constant): all work-items re-read the same data, so
	// the footprint is shared and reusable.
	SharedAcrossWI bool
}

// KernelModel is the per-kernel statistics bundle the simulator charges
// time from. It is built by combining the functional interpreter's
// (possibly sampled) execution profile with the static analysis and the
// launch geometry.
type KernelModel struct {
	Name    string
	WorkDim int
	NumWGs  int
	WGSize  int
	// GroupsPerRow is the number of work-groups in the first dimension;
	// 2-D kernels are scheduled in whole rows so GPU chunks remain
	// contiguous offset sub-ranges.
	GroupsPerRow int

	AluIntPerWG   float64
	AluFloatPerWG float64

	Sites []SiteModel
}

// AluIntPerWI returns integer ops per work-item.
func (km *KernelModel) AluIntPerWI() float64 {
	if km.WGSize == 0 {
		return 0
	}
	return km.AluIntPerWG / float64(km.WGSize)
}

// AluFloatPerWI returns float ops per work-item.
func (km *KernelModel) AluFloatPerWI() float64 {
	if km.WGSize == 0 {
		return 0
	}
	return km.AluFloatPerWG / float64(km.WGSize)
}

// BytesPerWG returns the raw bytes accessed per work-group.
func (km *KernelModel) BytesPerWG() float64 {
	var b float64
	for _, s := range km.Sites {
		b += s.AccPerWG * float64(s.ElemSize)
	}
	return b
}

// BuildModel combines a dynamic execution profile, the static analysis,
// and the launch geometry into a KernelModel. bufBytes maps kernel
// parameter indices to the byte size of the bound buffer. The profile may
// come from a sampled run; per-work-group averages normalize for that.
func BuildModel(name string, prof *interp.Profile, res *analysis.Result,
	bufBytes map[int]int64, nd interp.NDRange) (*KernelModel, error) {
	if prof.GroupsRun == 0 {
		return nil, fmt.Errorf("sim: profile has no executed work-groups")
	}
	groups := float64(prof.GroupsRun)
	items := float64(prof.ItemsRun)
	km := &KernelModel{
		Name:          name,
		WorkDim:       nd.Dims,
		NumWGs:        nd.TotalGroups(),
		WGSize:        nd.GroupSize(),
		GroupsPerRow:  1,
		AluIntPerWG:   float64(prof.AluInt) / groups,
		AluFloatPerWG: float64(prof.AluFloat) / groups,
	}
	if nd.Dims >= 2 {
		km.GroupsPerRow = nd.NumGroups()[0]
	}
	for _, sp := range prof.Sites {
		if sp.ArgIndex < 0 {
			continue // on-chip local memory: no DRAM model
		}
		sm := SiteModel{
			Site:     sp.Site,
			Write:    sp.Write,
			AccPerWG: float64(sp.Count) / groups,
		}
		if sp.Count > 0 {
			sm.ElemSize = sp.Bytes / sp.Count
		}
		if sm.ElemSize == 0 {
			sm.ElemSize = 4
		}
		sm.BufBytes = float64(bufBytes[sp.ArgIndex])

		// Prefer the dynamic classification; fall back to the static one
		// when the dynamic stream was too short to classify.
		sm.Iter, sm.IterStride = sp.IterPattern, sp.IterStride
		sm.Lane, sm.LaneStride = sp.LanePattern, sp.LaneStride
		if res != nil {
			if sc := res.Site(sp.Site); sc != nil {
				if sm.Iter == access.Unknown {
					sm.Iter, sm.IterStride = sc.Iter, sc.IterStride
				}
				if sm.Lane == access.Unknown {
					sm.Lane, sm.LaneStride = sc.Lane, sc.LaneStride
				}
			}
		}
		if sm.Iter == access.Unknown {
			sm.Iter = access.Random
		}
		if sm.Lane == access.Unknown {
			sm.Lane = access.Random
		}

		accPerWI := float64(sp.Count) / items
		es := float64(sm.ElemSize)
		switch sm.Iter {
		case access.Constant:
			sm.DistinctPerWI = es
		case access.Random:
			sm.DistinctPerWI = accPerWI * es
			if sm.BufBytes > 0 && sm.DistinctPerWI > sm.BufBytes {
				sm.DistinctPerWI = sm.BufBytes
			}
		default: // continuous / strided: every access a fresh element
			sm.DistinctPerWI = accPerWI * es
		}
		sm.SharedAcrossWI = sm.Lane == access.Constant
		km.Sites = append(km.Sites, sm)
	}
	return km, nil
}
