package sim

import (
	"testing"

	"dopia/internal/analysis"
	"dopia/internal/clc"
	"dopia/internal/interp"
)

// buildModelFromSource compiles, analyzes, and profile-runs a kernel to
// produce its KernelModel — the same pipeline Dopia's runtime uses.
func buildModelFromSource(t *testing.T, src, name string, args []interp.Arg,
	bufBytes map[int]int64, nd interp.NDRange, sampleWGs int) *KernelModel {
	t.Helper()
	prog, err := clc.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	k := prog.Kernel(name)
	res, err := analysis.Analyze(k)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	ex, err := interp.NewExec(k)
	if err != nil {
		t.Fatalf("exec: %v", err)
	}
	if err := ex.Bind(args...); err != nil {
		t.Fatalf("bind: %v", err)
	}
	if err := ex.Launch(nd); err != nil {
		t.Fatalf("launch: %v", err)
	}
	if _, err := ex.RunSampled(sampleWGs); err != nil {
		t.Fatalf("run: %v", err)
	}
	km, err := BuildModel(name, ex.Stats(), res, bufBytes, nd)
	if err != nil {
		t.Fatalf("model: %v", err)
	}
	return km
}

// gesummvModel builds the paper's motivating CPU-affine kernel at the
// paper's problem size (N=16384) by profiling a scaled-down instance
// (N=2048, where the interpreter is fast) and rescaling the geometry:
// every per-work-group quantity of this kernel scales linearly in N.
func gesummvModel(t *testing.T, n, wg int) *KernelModel {
	t.Helper()
	small := 2048
	src := `__kernel void gesummv(__global float* A, __global float* B,
                        __global float* x, __global float* y,
                        float alpha, float beta, int N) {
        int i = get_global_id(0);
        if (i < N) {
            float tmp = 0.0f;
            float yv = 0.0f;
            for (int j = 0; j < N; j++) {
                tmp += A[i * N + j] * x[j];
                yv += B[i * N + j] * x[j];
            }
            y[i] = alpha * tmp + beta * yv;
        }
    }`
	A := interp.NewFloatBuffer(small * small)
	B := interp.NewFloatBuffer(small * small)
	x := interp.NewFloatBuffer(small)
	y := interp.NewFloatBuffer(small)
	args := []interp.Arg{
		interp.BufArg(A), interp.BufArg(B), interp.BufArg(x), interp.BufArg(y),
		interp.FloatArg(1.5), interp.FloatArg(0.5), interp.IntArg(int64(small)),
	}
	// The buffers' *modelled* sizes are those of the full problem.
	bufBytes := map[int]int64{
		0: int64(n) * int64(n) * 4,
		1: int64(n) * int64(n) * 4,
		2: int64(n) * 4,
		3: int64(n) * 4,
	}
	km := buildModelFromSource(t, src, "gesummv", args, bufBytes,
		interp.ND1(small, wg), 4)
	// Rescale: ops and accesses per WG scale by n/small; so do the number
	// of work-groups and the per-WI distinct footprints of streamed and
	// shared data.
	f := float64(n) / float64(small)
	km.NumWGs = n / wg
	km.AluIntPerWG *= f
	km.AluFloatPerWG *= f
	for i := range km.Sites {
		km.Sites[i].AccPerWG *= f
		km.Sites[i].DistinctPerWI *= f
	}
	return km
}

func TestGesummvShapeOnKaveri(t *testing.T) {
	m := Kaveri()
	km := gesummvModel(t, 16384, 256)

	run := func(cfg Config) *Result {
		r, err := Simulate(m, km, cfg, Dynamic, SimOptions{})
		if err != nil {
			t.Fatalf("simulate %+v: %v", cfg, err)
		}
		return r
	}
	cpuOnly := run(m.CPUOnly())
	gpuOnly := run(m.GPUOnly())
	all := run(m.AllResources())

	best, bestRes, _, err := Exhaustive(m, km)
	if err != nil {
		t.Fatal(err)
	}

	t.Logf("cpu=%.4gms gpu=%.4gms all=%.4gms best=%+v %.4gms",
		cpuOnly.Time*1e3, gpuOnly.Time*1e3, all.Time*1e3, best, bestRes.Time*1e3)

	// Paper, Figure 1: gesummv is CPU-affine; GPU-only is far worse than
	// CPU-only; using everything is worse than the best partial config.
	if gpuOnly.Time < 2*cpuOnly.Time {
		t.Errorf("GPU-only should be much slower than CPU-only: cpu=%v gpu=%v",
			cpuOnly.Time, gpuOnly.Time)
	}
	if bestRes.Time > cpuOnly.Time || bestRes.Time > all.Time {
		t.Errorf("exhaustive best (%v) must beat CPU-only (%v) and ALL (%v)",
			bestRes.Time, cpuOnly.Time, all.Time)
	}
	if best.CPUCores == 0 {
		t.Errorf("best config should use CPU cores, got %+v", best)
	}
	if best.GPUFrac <= 0 || best.GPUFrac >= 1 {
		t.Errorf("best config should use a partial GPU allocation, got %+v", best)
	}
	// ALL should beat GPU-only but lose to best (memory congestion).
	if all.Time > gpuOnly.Time {
		t.Errorf("ALL (%v) should not be slower than GPU-only (%v)", all.Time, gpuOnly.Time)
	}
}

// TestMemoryRequestsGrowWithGPUUtil reproduces the Figure 3(b) mechanism:
// with 4 CPU cores active, raising the GPU allocation beyond the cache
// knee increases total DRAM transactions.
func TestMemoryRequestsGrowWithGPUUtil(t *testing.T) {
	m := Kaveri()
	km := gesummvModel(t, 16384, 256)
	cfgLow := Config{CPUCores: 4, GPUFrac: 0.25}
	cfgHigh := Config{CPUCores: 4, GPUFrac: 1.0}
	low, err := Simulate(m, km, cfgLow, Dynamic, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	high, err := Simulate(m, km, cfgHigh, Dynamic, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Normalize per GPU work-group to remove partitioning effects.
	lowPer := low.Transactions / float64(low.WGsGPU)
	highPer := high.Transactions / float64(high.WGsGPU)
	t.Logf("transactions per GPU WG: low=%.0f high=%.0f", lowPer, highPer)
	if highPer <= lowPer*1.2 {
		t.Errorf("full GPU allocation should thrash the L2: low=%v high=%v", lowPer, highPer)
	}
}

// streamModel builds a GPU-friendly, perfectly-coalesced streaming kernel
// (the 2DCONV/FDTD family): lane-continuous accesses, float-heavy.
func streamModel(t *testing.T) *KernelModel {
	src := `__kernel void stream(__global float* a, __global float* b, __global float* c, int n) {
        int i = get_global_id(0);
        if (i < n) {
            float v = a[i];
            float w = b[i];
            float acc = 0.0f;
            for (int j = 0; j < 24; j++) {
                acc = acc * 0.5f + v * w + (v + w) * (v - w) + sqrt(fabs(acc + v));
            }
            c[i] = acc;
        }
    }`
	n := 1 << 20
	a := interp.NewFloatBuffer(1 << 14)
	b := interp.NewFloatBuffer(1 << 14)
	c := interp.NewFloatBuffer(1 << 14)
	km := buildModelFromSource(t, src, "stream",
		[]interp.Arg{interp.BufArg(a), interp.BufArg(b), interp.BufArg(c), interp.IntArg(1 << 14)},
		map[int]int64{0: int64(n) * 4, 1: int64(n) * 4, 2: int64(n) * 4},
		interp.ND1(1<<14, 256), 4)
	km.NumWGs = n / 256
	return km
}

func TestStreamingKernelIsGPUAffine(t *testing.T) {
	m := Kaveri()
	km := streamModel(t)
	cpuOnly, err := Simulate(m, km, m.CPUOnly(), Dynamic, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gpuOnly, err := Simulate(m, km, m.GPUOnly(), Dynamic, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("stream: cpu=%.4gms gpu=%.4gms", cpuOnly.Time*1e3, gpuOnly.Time*1e3)
	if gpuOnly.Time >= cpuOnly.Time {
		t.Errorf("coalesced float kernel should be GPU-affine: cpu=%v gpu=%v",
			cpuOnly.Time, gpuOnly.Time)
	}
}

func TestDynamicBalancesLoad(t *testing.T) {
	m := Kaveri()
	km := streamModel(t)
	cfg := m.AllResources()
	dyn, err := Simulate(m, km, cfg, Dynamic, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if dyn.WGsCPU == 0 || dyn.WGsGPU == 0 {
		t.Errorf("dynamic distribution should use both devices: cpu=%d gpu=%d",
			dyn.WGsCPU, dyn.WGsGPU)
	}
	// A deliberately bad static split (90% to the CPU of a GPU-affine
	// kernel) must lose to dynamic distribution.
	bad, err := Simulate(m, km, cfg, Static, SimOptions{CPUShare: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if dyn.Time >= bad.Time {
		t.Errorf("dynamic (%v) should beat bad static split (%v)", dyn.Time, bad.Time)
	}
}

func TestConfigSpace(t *testing.T) {
	for _, m := range []*Machine{Kaveri(), Skylake()} {
		cfgs := m.Configs()
		if len(cfgs) != 44 {
			t.Errorf("%s: %d configs, want 44", m.Name, len(cfgs))
		}
		for _, c := range cfgs {
			if !c.Valid() {
				t.Errorf("%s: invalid config in space: %+v", m.Name, c)
			}
		}
	}
	if mod, alloc := DopParams(0.375); mod != 8 || alloc != 3 {
		t.Errorf("DopParams(0.375) = %d,%d, want 8,3", mod, alloc)
	}
	if mod, alloc := DopParams(1.0); mod != 8 || alloc != 8 {
		t.Errorf("DopParams(1.0) = %d,%d", mod, alloc)
	}
	if _, alloc := DopParams(0.01); alloc != 1 {
		t.Errorf("tiny fraction must keep one lane active, got %d", alloc)
	}
}

func TestSimulateErrors(t *testing.T) {
	m := Kaveri()
	km := &KernelModel{Name: "x", NumWGs: 4, WGSize: 64}
	if _, err := Simulate(m, km, Config{}, Dynamic, SimOptions{}); err == nil {
		t.Error("expected error for all-idle config")
	}
	if _, err := Simulate(m, &KernelModel{}, m.CPUOnly(), Dynamic, SimOptions{}); err == nil {
		t.Error("expected error for empty kernel model")
	}
}
