package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// This file lets users describe their own integrated processor as JSON and
// run the whole Dopia pipeline against it — the paper argues the approach
// ports to any integrated architecture because the model is retrained per
// machine; a configurable machine description is what makes that real in
// this reproduction.

// MachineJSON is the on-disk schema of a machine description. Fields
// mirror the Machine/CPU/GPU/Mem structs; zero values inherit the listed
// defaults.
type MachineJSON struct {
	Name string `json:"name"`
	CPU  struct {
		Cores    int     `json:"cores"`
		FreqGHz  float64 `json:"freq_ghz"`
		CPIInt   float64 `json:"cpi_int"`
		CPIFloat float64 `json:"cpi_float"`
		CacheKB  int64   `json:"cache_kb"`
		CoreGBs  float64 `json:"core_bw_gbs"`
		MLP      float64 `json:"mlp"`
		// big.LITTLE asymmetry: the last little_cores cores run
		// little_slow times slower (0 = symmetric).
		LittleCores int     `json:"little_cores,omitempty"`
		LittleSlow  float64 `json:"little_slow,omitempty"`
	} `json:"cpu"`
	GPU struct {
		CUs            int     `json:"cus"`
		PEsPerCU       int     `json:"pes_per_cu"`
		FreqGHz        float64 `json:"freq_ghz"`
		SIMDWidth      int     `json:"simd_width"`
		CPIInt         float64 `json:"cpi_int"`
		CPIFloat       float64 `json:"cpi_float"`
		CacheKB        int64   `json:"cache_kb"`
		Residency      float64 `json:"residency"`
		PEMBs          float64 `json:"pe_bw_mbs"`
		StridedPenalty float64 `json:"strided_penalty"`
		MalleableCyc   float64 `json:"malleable_cycles"`
		DispatchUs     float64 `json:"dispatch_us"`
		// Discrete-GPU parameters: a non-zero local_bw_gbs marks the GPU
		// as sitting across PCIe with private memory of that bandwidth.
		LocalGBs  float64 `json:"local_bw_gbs,omitempty"`
		PCIeGBs   float64 `json:"pcie_gbs,omitempty"`
		PCIeLatUs float64 `json:"pcie_lat_us,omitempty"`
	} `json:"gpu"`
	Mem struct {
		BandwidthGBs float64 `json:"bandwidth_gbs"`
		LatencyNs    float64 `json:"latency_ns"`
		SharedLLCKB  int64   `json:"shared_llc_kb"`
		GPULLCWeight float64 `json:"gpu_llc_weight"`
	} `json:"mem"`
	// CPUSteps and GPUSteps define the Table 3 DoP grid; empty lists use
	// five even CPU steps and nine even GPU steps.
	CPUSteps []int     `json:"cpu_steps,omitempty"`
	GPUSteps []float64 `json:"gpu_steps,omitempty"`
}

// MachineFromJSON parses a machine description.
func MachineFromJSON(r io.Reader) (*Machine, error) {
	var mj MachineJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&mj); err != nil {
		return nil, fmt.Errorf("sim: invalid machine description: %w", err)
	}
	return mj.Build()
}

// LoadMachine reads a machine description from a file.
func LoadMachine(path string) (*Machine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return MachineFromJSON(f)
}

// Build validates and converts the description into a Machine.
func (mj MachineJSON) Build() (*Machine, error) {
	if mj.Name == "" {
		return nil, fmt.Errorf("sim: machine needs a name")
	}
	if mj.CPU.Cores <= 0 || mj.CPU.FreqGHz <= 0 {
		return nil, fmt.Errorf("sim: machine %s: cpu cores and frequency are required", mj.Name)
	}
	if mj.GPU.CUs <= 0 || mj.GPU.PEsPerCU <= 0 || mj.GPU.FreqGHz <= 0 {
		return nil, fmt.Errorf("sim: machine %s: gpu cus, pes_per_cu, and frequency are required", mj.Name)
	}
	if mj.Mem.BandwidthGBs <= 0 {
		return nil, fmt.Errorf("sim: machine %s: memory bandwidth is required", mj.Name)
	}
	m := &Machine{
		Name: mj.Name,
		CPU: CPUConfig{
			Cores:    mj.CPU.Cores,
			FreqHz:   mj.CPU.FreqGHz * 1e9,
			CPIInt:   defaultF(mj.CPU.CPIInt, 0.25),
			CPIFloat: defaultF(mj.CPU.CPIFloat, 0.35),
			CacheB:   defaultI(mj.CPU.CacheKB, 512) << 10,
			CoreBWBs: defaultF(mj.CPU.CoreGBs, 4) * 1e9,
			MLP:      defaultF(mj.CPU.MLP, 8),

			LittleCores: mj.CPU.LittleCores,
			LittleSlow:  mj.CPU.LittleSlow,
		},
		GPU: GPUConfig{
			CUs:            mj.GPU.CUs,
			PEsPerCU:       mj.GPU.PEsPerCU,
			FreqHz:         mj.GPU.FreqGHz * 1e9,
			SIMDWidth:      defaultInt(mj.GPU.SIMDWidth, 16),
			CPIInt:         defaultF(mj.GPU.CPIInt, 1),
			CPIFloat:       defaultF(mj.GPU.CPIFloat, 1),
			CacheB:         defaultI(mj.GPU.CacheKB, 512) << 10,
			Residency:      defaultF(mj.GPU.Residency, 8),
			PEBWBs:         defaultF(mj.GPU.PEMBs, 80) * 1e6,
			StridedPenalty: defaultF(mj.GPU.StridedPenalty, 2),
			MalleableCyc:   defaultF(mj.GPU.MalleableCyc, 8),
			DispatchSec:    defaultF(mj.GPU.DispatchUs, 25) * 1e-6,

			LocalBWBs:  mj.GPU.LocalGBs * 1e9,
			PCIeBWBs:   mj.GPU.PCIeGBs * 1e9,
			PCIeLatSec: mj.GPU.PCIeLatUs * 1e-6,
		},
		Mem: MemConfig{
			BandwidthBs:  mj.Mem.BandwidthGBs * 1e9,
			LatencySec:   defaultF(mj.Mem.LatencyNs, 100) * 1e-9,
			SharedLLCB:   mj.Mem.SharedLLCKB << 10,
			GPULLCWeight: defaultF(mj.Mem.GPULLCWeight, 8),
		},
		CPUSteps: mj.CPUSteps,
		GPUSteps: mj.GPUSteps,
	}
	if len(m.CPUSteps) == 0 {
		for i := 0; i <= 4; i++ {
			m.CPUSteps = append(m.CPUSteps, i*m.CPU.Cores/4)
		}
	}
	if len(m.GPUSteps) == 0 {
		m.GPUSteps = gpuFractions()
	}
	if m.CPU.LittleCores < 0 || m.CPU.LittleCores >= m.CPU.Cores {
		if m.CPU.LittleCores != 0 {
			return nil, fmt.Errorf("sim: machine %s: little_cores %d out of range (need 0..%d)",
				mj.Name, m.CPU.LittleCores, m.CPU.Cores-1)
		}
	}
	if m.GPU.LocalBWBs > 0 && m.GPU.PCIeBWBs <= 0 {
		return nil, fmt.Errorf("sim: machine %s: discrete gpu (local_bw_gbs set) needs pcie_gbs",
			mj.Name)
	}
	for _, c := range m.CPUSteps {
		if c < 0 || c > m.CPU.Cores {
			return nil, fmt.Errorf("sim: machine %s: cpu step %d out of range", mj.Name, c)
		}
	}
	for _, g := range m.GPUSteps {
		if g < 0 || g > 1 {
			return nil, fmt.Errorf("sim: machine %s: gpu step %v out of range", mj.Name, g)
		}
	}
	return m, nil
}

// ToJSON renders a Machine back into its description schema.
func (m *Machine) ToJSON() MachineJSON {
	var mj MachineJSON
	mj.Name = m.Name
	mj.CPU.Cores = m.CPU.Cores
	mj.CPU.FreqGHz = m.CPU.FreqHz / 1e9
	mj.CPU.CPIInt = m.CPU.CPIInt
	mj.CPU.CPIFloat = m.CPU.CPIFloat
	mj.CPU.CacheKB = m.CPU.CacheB >> 10
	mj.CPU.CoreGBs = m.CPU.CoreBWBs / 1e9
	mj.CPU.MLP = m.CPU.MLP
	mj.CPU.LittleCores = m.CPU.LittleCores
	mj.CPU.LittleSlow = m.CPU.LittleSlow
	mj.GPU.CUs = m.GPU.CUs
	mj.GPU.PEsPerCU = m.GPU.PEsPerCU
	mj.GPU.FreqGHz = m.GPU.FreqHz / 1e9
	mj.GPU.SIMDWidth = m.GPU.SIMDWidth
	mj.GPU.CPIInt = m.GPU.CPIInt
	mj.GPU.CPIFloat = m.GPU.CPIFloat
	mj.GPU.CacheKB = m.GPU.CacheB >> 10
	mj.GPU.Residency = m.GPU.Residency
	mj.GPU.PEMBs = m.GPU.PEBWBs / 1e6
	mj.GPU.StridedPenalty = m.GPU.StridedPenalty
	mj.GPU.MalleableCyc = m.GPU.MalleableCyc
	mj.GPU.DispatchUs = m.GPU.DispatchSec * 1e6
	mj.GPU.LocalGBs = m.GPU.LocalBWBs / 1e9
	mj.GPU.PCIeGBs = m.GPU.PCIeBWBs / 1e9
	mj.GPU.PCIeLatUs = m.GPU.PCIeLatSec * 1e6
	mj.Mem.BandwidthGBs = m.Mem.BandwidthBs / 1e9
	mj.Mem.LatencyNs = m.Mem.LatencySec * 1e9
	mj.Mem.SharedLLCKB = m.Mem.SharedLLCB >> 10
	mj.Mem.GPULLCWeight = m.Mem.GPULLCWeight
	mj.CPUSteps = m.CPUSteps
	mj.GPUSteps = m.GPUSteps
	return mj
}

// SaveMachine writes a machine description to a file.
func SaveMachine(path string, m *Machine) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(m.ToJSON())
}

func defaultF(v, d float64) float64 {
	if v <= 0 {
		return d
	}
	return v
}

func defaultI(v, d int64) int64 {
	if v <= 0 {
		return d
	}
	return v
}

func defaultInt(v, d int) int {
	if v <= 0 {
		return d
	}
	return v
}
