package sim

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"dopia/internal/access"
)

// TestZooRegistry: every built-in machine resolves by name
// (case-insensitively), has a full 44-entry DoP space like the paper's
// parts, and the canonical configurations are inside it.
func TestZooRegistry(t *testing.T) {
	if len(Zoo()) != 5 {
		t.Fatalf("zoo has %d machines, want 5", len(Zoo()))
	}
	for _, want := range Zoo() {
		for _, name := range []string{want.Name, strings.ToLower(want.Name), strings.ToUpper(want.Name)} {
			m, err := MachineByName(name)
			if err != nil {
				t.Fatalf("MachineByName(%q): %v", name, err)
			}
			if m.Name != want.Name {
				t.Fatalf("MachineByName(%q) = %s", name, m.Name)
			}
		}
		cfgs := want.Configs()
		if len(cfgs) != 44 {
			t.Errorf("%s: %d configs, want 44", want.Name, len(cfgs))
		}
		seen := map[Config]bool{}
		for _, c := range cfgs {
			if !c.Valid() {
				t.Errorf("%s: invalid config %+v in sweep", want.Name, c)
			}
			if seen[c] {
				t.Errorf("%s: duplicate config %+v", want.Name, c)
			}
			seen[c] = true
		}
		for _, c := range []Config{want.CPUOnly(), want.GPUOnly(), want.AllResources()} {
			if !seen[c] {
				t.Errorf("%s: canonical config %+v not in Configs()", want.Name, c)
			}
		}
	}
	if _, err := MachineByName("nonesuch"); err == nil {
		t.Fatal("MachineByName(nonesuch) succeeded")
	}
}

// gpuAffineModel is massively parallel coalesced streaming compute — the
// kind of kernel an integrated GPU always wins.
func gpuAffineModel() *KernelModel {
	return &KernelModel{
		Name: "gpu-affine", WorkDim: 1, NumWGs: 2048, WGSize: 256, GroupsPerRow: 1,
		AluIntPerWG:   1e4,
		AluFloatPerWG: 2e5,
		Sites: []SiteModel{{
			Site: 0, ElemSize: 4, AccPerWG: 512,
			Iter: access.Continuous, Lane: access.Continuous,
			BufBytes: 64 << 20, DistinctPerWI: 8,
		}},
	}
}

// cpuAffineModel hammers a small random-access table: it fits the CPU's
// cache but thrashes on the GPU, whose thousands of resident threads
// evict it — the paper's CPU-friendly crossover shape.
func cpuAffineModel() *KernelModel {
	return &KernelModel{
		Name: "cpu-affine", WorkDim: 1, NumWGs: 64, WGSize: 64, GroupsPerRow: 1,
		AluIntPerWG:   5e4,
		AluFloatPerWG: 1e4,
		Sites: []SiteModel{{
			Site: 0, ElemSize: 4, AccPerWG: 4e4,
			Iter: access.Random, Lane: access.Random,
			BufBytes: 128 << 10, DistinctPerWI: 4096,
		}},
	}
}

// TestZooCrossoverExistence: each zoo machine has a crossover — some
// kernel where the CPU alone beats the GPU alone and some kernel where
// the GPU alone beats the CPU alone. Without both directions, DoP
// selection on that machine would be trivial.
func TestZooCrossoverExistence(t *testing.T) {
	for _, m := range Zoo() {
		run := func(km *KernelModel, cfg Config) float64 {
			t.Helper()
			r, err := Simulate(m, km, cfg, Dynamic, SimOptions{})
			if err != nil {
				t.Fatalf("%s: %v", m.Name, err)
			}
			return r.Time
		}
		gk := gpuAffineModel()
		if c, g := run(gk, m.CPUOnly()), run(gk, m.GPUOnly()); g >= c {
			t.Errorf("%s: gpu-affine kernel: gpu %.3gs not faster than cpu %.3gs",
				m.Name, g, c)
		}
		ck := cpuAffineModel()
		if c, g := run(ck, m.CPUOnly()), run(ck, m.GPUOnly()); c >= g {
			t.Errorf("%s: cpu-affine kernel: cpu %.3gs not faster than gpu %.3gs",
				m.Name, c, g)
		}
	}
}

// TestZooSweepTotality: for every zoo machine, every scheduler, and a
// spread of random kernel models, the whole 44-config sweep simulates to
// a finite positive time and executes every work-group exactly once.
func TestZooSweepTotality(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, m := range Zoo() {
		for _, dist := range Distributions() {
			for trial := 0; trial < 3; trial++ {
				km := randomKernelModel(rng)
				for _, cfg := range m.Configs() {
					r, err := Simulate(m, km, cfg, dist, SimOptions{CPUShare: 0.5})
					if err != nil {
						t.Fatalf("%s/%s cfg %+v: %v", m.Name, dist, cfg, err)
					}
					if r.Time <= 0 || math.IsNaN(r.Time) || math.IsInf(r.Time, 0) {
						t.Fatalf("%s/%s cfg %+v: bad time %v", m.Name, dist, cfg, r.Time)
					}
					if r.WGsCPU+r.WGsGPU != km.NumWGs {
						t.Fatalf("%s/%s cfg %+v: %d+%d WGs, want %d",
							m.Name, dist, cfg, r.WGsCPU, r.WGsGPU, km.NumWGs)
					}
				}
			}
		}
	}
}

// TestZooSchedulerCover: on every machine, every scheduler's emitted
// spans partition the ND-range exactly — no overlap, no gap — and the
// spans replay identically run-to-run.
func TestZooSchedulerCover(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	type span struct {
		dev          string
		start, count int
	}
	for _, m := range Zoo() {
		for _, dist := range Distributions() {
			km := randomKernelModel(rng)
			collect := func() []span {
				var spans []span
				_, err := Simulate(m, km, m.AllResources(), dist, SimOptions{
					CPUShare: 0.4,
					OnSpan: func(dev string, start, count int) error {
						spans = append(spans, span{dev, start, count})
						return nil
					},
				})
				if err != nil {
					t.Fatalf("%s/%s: %v", m.Name, dist, err)
				}
				return spans
			}
			spans := collect()
			counts := make([]int, km.NumWGs)
			for _, s := range spans {
				if s.count <= 0 || s.start < 0 || s.start+s.count > km.NumWGs {
					t.Fatalf("%s/%s: bad span %+v", m.Name, dist, s)
				}
				for i := s.start; i < s.start+s.count; i++ {
					counts[i]++
				}
			}
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("%s/%s: work-group %d executed %d times", m.Name, dist, i, c)
				}
			}
			again := collect()
			if len(again) != len(spans) {
				t.Fatalf("%s/%s: replay emitted %d spans, first run %d",
					m.Name, dist, len(again), len(spans))
			}
			for i := range spans {
				if spans[i] != again[i] {
					t.Fatalf("%s/%s: replay diverged at span %d: %+v vs %+v",
						m.Name, dist, i, spans[i], again[i])
				}
			}
		}
	}
}

// TestPropertyHGuidedChunkMonotone: the HGuided chunk policy is monotone
// non-decreasing in the agent's weight (throughput), never exceeds the
// remaining work, and always makes progress in allocation-unit steps.
func TestPropertyHGuidedChunkMonotone(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(47))}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		remaining := 1 + rng.Intn(10000)
		unit := 1 + rng.Intn(8)
		minChunk := unit * (1 + rng.Intn(4))
		sumW := 0.1 + rng.Float64()*100
		w1 := rng.Float64() * sumW
		w2 := rng.Float64() * sumW
		if w1 > w2 {
			w1, w2 = w2, w1
		}
		c1 := HGuidedChunk(remaining, unit, minChunk, w1, sumW)
		c2 := HGuidedChunk(remaining, unit, minChunk, w2, sumW)
		if c1 > c2 {
			return false // not monotone in throughput
		}
		for _, c := range []int{c1, c2} {
			if c <= 0 || c > remaining {
				return false
			}
			if c != remaining && c%unit != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestFluidZeroBandwidth: a memory system with zero bandwidth cannot
// serve bytes, but the engine must still terminate — tasks pay their
// compute and latency and their unservable bytes are forgiven.
func TestFluidZeroBandwidth(t *testing.T) {
	f := NewFluid(0)
	f.Add(0, TaskCost{Compute: 1e-3, Latency: 1e-4, MemBytes: 1e9})
	f.Add(1, TaskCost{MemBytes: 5e8})
	var finished []int
	for steps := 0; ; steps++ {
		if steps > 1000 {
			t.Fatal("fluid with zero bandwidth did not terminate")
		}
		done, ok := f.Step()
		if !ok {
			break
		}
		finished = append(finished, done...)
	}
	if len(finished) != 2 {
		t.Fatalf("finished %d tasks, want 2", len(finished))
	}
	// Compute and latency deplete concurrently; the bytes are forgiven.
	if want := 1e-3; math.Abs(f.Time-want) > 1e-12 {
		t.Fatalf("time %v, want %v (busy time of the compute task)", f.Time, want)
	}
}

// TestFluidSingleTask: with no contention, a lone task finishes exactly
// at its AloneTime, whether compute-, latency-, or bandwidth-bound.
func TestFluidSingleTask(t *testing.T) {
	costs := []TaskCost{
		{Compute: 2e-3},
		{Latency: 3e-3},
		{Compute: 1e-3, Latency: 5e-4, MemBytes: 1e6, PeakBW: 1e9},
		{MemBytes: 1e9, PeakBW: 2e9},  // bandwidth-bound, capped by PeakBW
		{MemBytes: 1e9, PeakBW: 1e12}, // capped by the DRAM itself
	}
	for i, c := range costs {
		f := NewFluid(10e9)
		id := f.Add(7, c)
		if f.Owner(id) != 7 {
			t.Fatalf("case %d: owner %d", i, f.Owner(id))
		}
		var total int
		for {
			done, ok := f.Step()
			if !ok {
				break
			}
			total += len(done)
		}
		if total != 1 {
			t.Fatalf("case %d: %d completions", i, total)
		}
		// Add clamps the per-task cap at the DRAM bandwidth.
		cc := c
		if cc.PeakBW <= 0 || cc.PeakBW > 10e9 {
			cc.PeakBW = 10e9
		}
		if want := cc.AloneTime(); math.Abs(f.Time-want) > want*1e-9+1e-15 {
			t.Fatalf("case %d: time %v, want AloneTime %v", i, f.Time, want)
		}
	}
}

// TestFluidTieOrder: tasks that complete at the same instant come back
// sorted by id (insertion order) — schedules that react to completions
// must replay deterministically even across map-iteration randomness.
func TestFluidTieOrder(t *testing.T) {
	run := func() []int {
		f := NewFluid(1e9)
		for i := 0; i < 16; i++ {
			f.Add(i, TaskCost{Compute: 1e-3})
		}
		done, ok := f.Step()
		if !ok {
			t.Fatal("no step")
		}
		return done
	}
	first := run()
	if len(first) != 16 {
		t.Fatalf("%d completions in the tie step, want 16", len(first))
	}
	for i := 1; i < len(first); i++ {
		if first[i-1] >= first[i] {
			t.Fatalf("done ids not ascending: %v", first)
		}
	}
	for trial := 0; trial < 10; trial++ {
		again := run()
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("tie order diverged on trial %d: %v vs %v", trial, first, again)
			}
		}
	}
}

// TestFluidMidFlightJoin: a PCIe-capped task joining mid-flight (the
// discrete-GPU chunk shape) still obeys conservation — nobody beats
// their contention-free bound, the joiner's rate respects its cap, and
// the aggregate bytes fit in elapsed-time × bandwidth.
func TestFluidMidFlightJoin(t *testing.T) {
	const bw = 20e9
	f := NewFluid(bw)
	costs := map[int]TaskCost{
		1: {Compute: 1e-4, MemBytes: 4e8, PeakBW: bw},
		2: {Latency: 2e-4, MemBytes: 6e8, PeakBW: bw},
	}
	f.Add(0, costs[1])
	f.Add(1, costs[2])
	finish := map[int]float64{}
	done, ok := f.Step()
	if !ok {
		t.Fatal("premature drain")
	}
	for _, d := range done {
		finish[d] = f.Time
	}
	joinTime := f.Time
	// The PCIe-shaped joiner: modest bytes, hard 12 GB/s cap.
	pcie := TaskCost{Compute: 5e-6, MemBytes: 2.4e8, PeakBW: 12e9}
	id := f.Add(2, pcie)
	costs[id] = pcie
	for steps := 0; ; steps++ {
		if steps > 100000 {
			t.Fatal("not terminating")
		}
		done, ok := f.Step()
		if !ok {
			break
		}
		for _, d := range done {
			finish[d] = f.Time
		}
	}
	if len(finish) != 3 {
		t.Fatalf("finished %d tasks, want 3", len(finish))
	}
	// The joiner cannot beat its own cap, measured from when it joined.
	if got, min := finish[id]-joinTime, pcie.AloneTime(); got < min-1e-12 {
		t.Fatalf("pcie task finished in %v, below its alone bound %v", got, min)
	}
	// Conservation: all bytes moved fit under the bandwidth ceiling.
	var total float64
	var last float64
	for tid, ft := range finish {
		total += costs[tid].MemBytes
		if ft > last {
			last = ft
		}
	}
	if total/last > bw*(1+1e-9) {
		t.Fatalf("moved %g bytes in %gs: exceeds bandwidth %g", total, last, bw)
	}
}
