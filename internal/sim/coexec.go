package sim

import (
	"fmt"
	"math"
)

// SpanFunc is an optional callback invoked for every span of work-groups
// an agent acquires, in simulated-completion order. Dopia's runtime uses
// it to functionally execute exactly the work the simulated schedule
// assigns: device is "cpu" or "gpu", start/count index work-groups of the
// full ND range.
type SpanFunc func(device string, start, count int) error

// Result is the outcome of one simulated kernel execution.
type Result struct {
	Time         float64 // simulated wall-clock seconds
	DRAMBytes    float64 // total DRAM traffic
	Transactions float64 // DRAM transactions (bytes / line)
	WGsCPU       int     // work-groups executed by CPU cores
	WGsGPU       int     // work-groups executed by the GPU
	GPUChunks    int     // number of GPU dispatches
	CPUBusy      float64 // summed busy seconds across CPU cores
	GPUBusy      float64 // GPU busy seconds
}

// Throughput returns work-groups per second.
func (r *Result) Throughput(numWGs int) float64 {
	if r.Time <= 0 {
		return 0
	}
	return float64(numWGs) / r.Time
}

// Distribution selects how work is split between the devices.
type Distribution int

const (
	// Dynamic is Dopia's runtime scheme (Algorithm 1): CPU threads pull
	// single work-groups from an atomic worklist; the GPU is pushed
	// chunks of one tenth of the work-groups.
	Dynamic Distribution = iota
	// Static splits the work-groups up front: a fixed share to the CPU
	// (divided evenly among cores) and the rest to the GPU in one chunk.
	Static
)

// SimOptions tune a simulation run.
type SimOptions struct {
	// CPUShare is the fraction of work-groups assigned to the CPU under
	// Static distribution.
	CPUShare float64
	// GPUChunkDiv sets the dynamic GPU chunk size to NumWGs/GPUChunkDiv
	// (the paper uses 10).
	GPUChunkDiv int
	// DecayChunks enables guided-self-scheduling-style GPU chunk decay:
	// each push takes a GPUChunkDiv-th of the *remaining* work-groups
	// instead of a fixed tenth of the total. The paper leaves dynamic
	// chunk sizing as future work (§7); this implements it, shrinking the
	// tail imbalance when the GPU is the slower device.
	DecayChunks bool
	// OnSpan, when non-nil, is invoked for every acquired span.
	OnSpan SpanFunc
	// PlainGPU charges GPU chunks without the malleable-kernel overhead
	// (used by the plain OpenCL single-device execution paths).
	PlainGPU bool
	// ExtraStartupSec models one-time runtime overhead (e.g. Dopia's
	// model inference) added before execution begins.
	ExtraStartupSec float64
}

// Simulate runs one kernel execution on the machine under the given DoP
// configuration and distribution scheme.
func Simulate(m *Machine, km *KernelModel, cfg Config, dist Distribution, opts SimOptions) (*Result, error) {
	if !cfg.Valid() {
		return nil, fmt.Errorf("sim: configuration activates no device")
	}
	if km.NumWGs <= 0 {
		return nil, fmt.Errorf("sim: kernel model has no work-groups")
	}
	if opts.GPUChunkDiv <= 0 {
		opts.GPUChunkDiv = 10
	}

	res := &Result{}
	fl := NewFluid(m.Mem.BandwidthBs)
	fl.Time = opts.ExtraStartupSec

	cpuCost := TaskCost{}
	if cfg.CPUCores > 0 {
		cpuCost = m.CPUWGCost(km, cfg)
	}

	const gpuAgent = -1
	type agentState struct {
		start, count int // span being executed
	}
	agents := map[int]*agentState{} // agent id -> current span
	taskAgent := map[int]int{}      // fluid task id -> agent id
	agentStart := map[int]float64{} // agent id -> task start time
	gpuActive := cfg.GPUFrac > 0

	// The allocation unit: single work-groups for 1-D kernels, whole rows
	// of work-groups for 2-D kernels so GPU chunks stay contiguous
	// offset-launchable sub-ranges.
	unit := km.GroupsPerRow
	if unit < 1 {
		unit = 1
	}

	switch dist {
	case Dynamic:
		next := 0
		chunk := km.NumWGs / opts.GPUChunkDiv
		if chunk < unit {
			chunk = unit
		}
		chunk = (chunk / unit) * unit
		grabCPU := func(core int) bool {
			if next >= km.NumWGs {
				return false
			}
			cnt := unit
			if next+cnt > km.NumWGs {
				cnt = km.NumWGs - next
			}
			span := &agentState{start: next, count: cnt}
			next += cnt
			agents[core] = span
			cost := cpuCost
			if cnt > 1 {
				cost = TaskCost{
					Compute:  cpuCost.Compute * float64(cnt),
					Latency:  cpuCost.Latency * float64(cnt),
					MemBytes: cpuCost.MemBytes * float64(cnt),
					PeakBW:   cpuCost.PeakBW,
				}
			}
			id := fl.Add(core, cost)
			taskAgent[id] = core
			agentStart[core] = fl.Time
			return true
		}
		grabGPU := func() bool {
			if next >= km.NumWGs {
				return false
			}
			count := chunk
			if opts.DecayChunks {
				count = (km.NumWGs - next) / opts.GPUChunkDiv
				count = (count / unit) * unit
				if count < unit {
					count = unit
				}
			}
			if next+count > km.NumWGs {
				count = km.NumWGs - next
			}
			span := &agentState{start: next, count: count}
			next += count
			cost, trans := m.gpuChunkCost(km, count, cfg, !opts.PlainGPU)
			cost.Compute += m.GPU.DispatchSec
			res.Transactions += trans
			res.GPUChunks++
			agents[gpuAgent] = span
			id := fl.Add(gpuAgent, cost)
			taskAgent[id] = gpuAgent
			agentStart[gpuAgent] = fl.Time
			return true
		}
		// The GPU is dispatched first: its chunk is a tenth of the whole
		// workload, so letting the CPU threads drain the worklist before
		// the first push would starve the GPU on small launches.
		if gpuActive {
			grabGPU()
		}
		for core := 0; core < cfg.CPUCores; core++ {
			grabCPU(core)
		}
		for {
			done, ok := fl.Step()
			if !ok {
				break
			}
			for _, id := range done {
				agent := taskAgent[id]
				delete(taskAgent, id)
				span := agents[agent]
				delete(agents, agent)
				busy := fl.Time - agentStart[agent]
				if agent == gpuAgent {
					res.WGsGPU += span.count
					res.GPUBusy += busy
					if err := emitSpan(opts.OnSpan, "gpu", span.start, span.count); err != nil {
						return nil, err
					}
					grabGPU()
				} else {
					res.WGsCPU += span.count
					res.CPUBusy += busy
					if err := emitSpan(opts.OnSpan, "cpu", span.start, span.count); err != nil {
						return nil, err
					}
					grabCPU(agent)
				}
			}
		}
	case Static:
		share := opts.CPUShare
		if cfg.CPUCores == 0 {
			share = 0
		}
		if !gpuActive {
			share = 1
		}
		cpuWGs := int(share*float64(km.NumWGs) + 0.5)
		cpuWGs = (cpuWGs / unit) * unit
		if cpuWGs > km.NumWGs {
			cpuWGs = km.NumWGs
		}
		if share >= 1 {
			cpuWGs = km.NumWGs
		}
		gpuWGs := km.NumWGs - cpuWGs

		// CPU cores each process a contiguous slice, modeled as one task
		// scaled by the slice length (identical per-WG costs).
		start := 0
		for core := 0; core < cfg.CPUCores && cpuWGs > 0; core++ {
			cnt := cpuWGs / cfg.CPUCores
			if core < cpuWGs%cfg.CPUCores {
				cnt++
			}
			if cnt == 0 {
				continue
			}
			cost := TaskCost{
				Compute:  cpuCost.Compute * float64(cnt),
				Latency:  cpuCost.Latency * float64(cnt),
				MemBytes: cpuCost.MemBytes * float64(cnt),
				PeakBW:   cpuCost.PeakBW,
			}
			agents[core] = &agentState{start: start, count: cnt}
			id := fl.Add(core, cost)
			taskAgent[id] = core
			agentStart[core] = fl.Time
			start += cnt
			res.WGsCPU += cnt
		}
		if gpuActive && gpuWGs > 0 {
			cost, trans := m.gpuChunkCost(km, gpuWGs, cfg, !opts.PlainGPU)
			cost.Compute += m.GPU.DispatchSec
			res.Transactions += trans
			res.GPUChunks++
			agents[gpuAgent] = &agentState{start: start, count: gpuWGs}
			id := fl.Add(gpuAgent, cost)
			taskAgent[id] = gpuAgent
			agentStart[gpuAgent] = fl.Time
			res.WGsGPU += gpuWGs
		}
		for {
			done, ok := fl.Step()
			if !ok {
				break
			}
			for _, id := range done {
				agent := taskAgent[id]
				delete(taskAgent, id)
				span := agents[agent]
				delete(agents, agent)
				busy := fl.Time - agentStart[agent]
				dev := "cpu"
				if agent == gpuAgent {
					dev = "gpu"
					res.GPUBusy += busy
				} else {
					res.CPUBusy += busy
				}
				if err := emitSpan(opts.OnSpan, dev, span.start, span.count); err != nil {
					return nil, err
				}
			}
		}
	default:
		return nil, fmt.Errorf("sim: unknown distribution %d", dist)
	}

	res.Time = fl.Time
	// DRAM bytes: CPU traffic plus GPU traffic.
	res.DRAMBytes = cpuCost.MemBytes*float64(res.WGsCPU) + res.Transactions*64
	if res.WGsCPU+res.WGsGPU != km.NumWGs {
		return nil, fmt.Errorf("sim: internal error: %d+%d work-groups executed, want %d",
			res.WGsCPU, res.WGsGPU, km.NumWGs)
	}
	if math.IsNaN(res.Time) || math.IsInf(res.Time, 0) {
		return nil, fmt.Errorf("sim: non-finite simulated time")
	}
	return res, nil
}

func emitSpan(fn SpanFunc, dev string, start, count int) error {
	if fn == nil {
		return nil
	}
	return fn(dev, start, count)
}

// Exhaustive evaluates every configuration of the machine's DoP space with
// dynamic distribution and returns the best configuration, its result, and
// the full table of results (the paper's oracle).
func Exhaustive(m *Machine, km *KernelModel) (Config, *Result, map[Config]*Result, error) {
	table := make(map[Config]*Result)
	var best Config
	var bestRes *Result
	for _, cfg := range m.Configs() {
		r, err := Simulate(m, km, cfg, Dynamic, SimOptions{})
		if err != nil {
			return Config{}, nil, nil, err
		}
		table[cfg] = r
		if bestRes == nil || r.Time < bestRes.Time {
			best, bestRes = cfg, r
		}
	}
	return best, bestRes, table, nil
}
