package sim

import (
	"fmt"
	"math"
	"strings"
)

// SpanFunc is an optional callback invoked for every span of work-groups
// an agent acquires, in simulated-completion order. Dopia's runtime uses
// it to functionally execute exactly the work the simulated schedule
// assigns: device is "cpu" or "gpu", start/count index work-groups of the
// full ND range.
type SpanFunc func(device string, start, count int) error

// Result is the outcome of one simulated kernel execution.
type Result struct {
	Time         float64 // simulated wall-clock seconds
	DRAMBytes    float64 // total DRAM traffic
	Transactions float64 // DRAM transactions (bytes / line)
	WGsCPU       int     // work-groups executed by CPU cores
	WGsGPU       int     // work-groups executed by the GPU
	GPUChunks    int     // number of GPU dispatches
	CPUBusy      float64 // summed busy seconds across CPU cores
	GPUBusy      float64 // GPU busy seconds
}

// Throughput returns work-groups per second.
func (r *Result) Throughput(numWGs int) float64 {
	if r.Time <= 0 {
		return 0
	}
	return float64(numWGs) / r.Time
}

// Distribution selects how work is split between the devices.
type Distribution int

const (
	// Dynamic is Dopia's runtime scheme (Algorithm 1): CPU threads pull
	// single work-groups from an atomic worklist; the GPU is pushed
	// chunks of one tenth of the work-groups. Its CLI/report name is
	// "alg1" — the EngineCL-style work-queue scheduler below owns the
	// name "dynamic".
	Dynamic Distribution = iota
	// Static splits the work-groups up front: a fixed share to the CPU
	// (divided evenly among cores) and the rest to the GPU in one chunk.
	Static
	// WorkQueue is the EngineCL-style dynamic scheduler: both devices
	// pull fixed-size chunks (SimOptions.ChunkWGs) from a shared queue,
	// so whichever device drains faster simply takes more of the range.
	WorkQueue
	// HGuided is EngineCL's guided scheduler: chunks shrink geometrically
	// with the remaining work and are weighted by each device's observed
	// throughput, so fast devices take large early chunks while the tail
	// is split finely to minimize imbalance.
	HGuided
)

// String returns the scheduler's CLI/report name.
func (d Distribution) String() string {
	switch d {
	case Dynamic:
		return "alg1"
	case Static:
		return "static"
	case WorkQueue:
		return "dynamic"
	case HGuided:
		return "hguided"
	}
	return fmt.Sprintf("Distribution(%d)", int(d))
}

// ParseDistribution maps a CLI/report name to a Distribution. The empty
// string selects the paper's Algorithm 1.
func ParseDistribution(s string) (Distribution, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "alg1", "paper":
		return Dynamic, nil
	case "static":
		return Static, nil
	case "dynamic", "workqueue":
		return WorkQueue, nil
	case "hguided", "h-guided":
		return HGuided, nil
	}
	return 0, fmt.Errorf("sim: unknown scheduler %q (alg1, static, dynamic, hguided)", s)
}

// Distributions returns every scheduling policy.
func Distributions() []Distribution {
	return []Distribution{Dynamic, Static, WorkQueue, HGuided}
}

// SimOptions tune a simulation run.
type SimOptions struct {
	// CPUShare is the fraction of work-groups assigned to the CPU under
	// Static distribution.
	CPUShare float64
	// GPUChunkDiv sets the dynamic GPU chunk size to NumWGs/GPUChunkDiv
	// (the paper uses 10).
	GPUChunkDiv int
	// DecayChunks enables guided-self-scheduling-style GPU chunk decay:
	// each push takes a GPUChunkDiv-th of the *remaining* work-groups
	// instead of a fixed tenth of the total. The paper leaves dynamic
	// chunk sizing as future work (§7); this implements it, shrinking the
	// tail imbalance when the GPU is the slower device.
	DecayChunks bool
	// OnSpan, when non-nil, is invoked for every acquired span.
	OnSpan SpanFunc
	// PlainGPU charges GPU chunks without the malleable-kernel overhead
	// (used by the plain OpenCL single-device execution paths).
	PlainGPU bool
	// ExtraStartupSec models one-time runtime overhead (e.g. Dopia's
	// model inference) added before execution begins.
	ExtraStartupSec float64
	// ChunkWGs is the WorkQueue scheduler's fixed chunk size in
	// work-groups (rounded to the allocation unit); 0 means NumWGs/16.
	ChunkWGs int
	// MinChunkWGs floors the HGuided scheduler's shrinking chunks;
	// 0 means one allocation unit.
	MinChunkWGs int
}

// HGuidedChunk is the HGuided chunk-size policy: an agent holding weight
// w out of sumW total observed throughput takes remaining*w/(2*sumW)
// work-groups, rounded down to the allocation unit and clamped to
// [minChunk, remaining]. It is monotone non-decreasing in w, so faster
// devices always take at least as much as slower ones.
func HGuidedChunk(remaining, unit, minChunk int, w, sumW float64) int {
	if remaining <= 0 {
		return 0
	}
	if unit < 1 {
		unit = 1
	}
	if minChunk < unit {
		minChunk = unit
	}
	c := 0
	if sumW > 0 && w > 0 {
		c = int(float64(remaining) * w / (2 * sumW))
	}
	c = (c / unit) * unit
	if c < minChunk {
		c = minChunk
	}
	if c > remaining {
		c = remaining
	}
	return c
}

// Simulate runs one kernel execution on the machine under the given DoP
// configuration and distribution scheme.
func Simulate(m *Machine, km *KernelModel, cfg Config, dist Distribution, opts SimOptions) (*Result, error) {
	if !cfg.Valid() {
		return nil, fmt.Errorf("sim: configuration activates no device")
	}
	if km.NumWGs <= 0 {
		return nil, fmt.Errorf("sim: kernel model has no work-groups")
	}
	if opts.GPUChunkDiv <= 0 {
		opts.GPUChunkDiv = 10
	}

	res := &Result{}
	fl := NewFluid(m.Mem.BandwidthBs)
	fl.Time = opts.ExtraStartupSec

	cpuCost := TaskCost{}
	if cfg.CPUCores > 0 {
		cpuCost = m.CPUWGCost(km, cfg)
	}

	const gpuAgent = -1
	type agentState struct {
		start, count int // span being executed
	}
	agents := map[int]*agentState{} // agent id -> current span
	taskAgent := map[int]int{}      // fluid task id -> agent id
	agentStart := map[int]float64{} // agent id -> task start time
	gpuActive := cfg.GPUFrac > 0

	// The allocation unit: single work-groups for 1-D kernels, whole rows
	// of work-groups for 2-D kernels so GPU chunks stay contiguous
	// offset-launchable sub-ranges.
	unit := km.GroupsPerRow
	if unit < 1 {
		unit = 1
	}

	switch dist {
	case Dynamic, WorkQueue, HGuided:
		next := 0
		chunk := km.NumWGs / opts.GPUChunkDiv
		if dist == WorkQueue {
			chunk = opts.ChunkWGs
			if chunk <= 0 {
				chunk = km.NumWGs / 16
			}
		}
		if chunk < unit {
			chunk = unit
		}
		chunk = (chunk / unit) * unit
		minChunk := opts.MinChunkWGs
		if minChunk < unit {
			minChunk = unit
		}
		minChunk = (minChunk / unit) * unit

		// HGuided tracks one throughput weight per agent (cores first,
		// GPU in the last slot), seeded from the model's contention-free
		// estimates and replaced by observed WGs/sec as spans complete.
		// A slice (not a map) keeps the weight sum order-stable so
		// replays are bit-identical.
		gpuSlot := cfg.CPUCores
		var weights []float64
		if dist == HGuided {
			weights = make([]float64, cfg.CPUCores+1)
			for core := 0; core < cfg.CPUCores; core++ {
				if t := m.scaleCoreCost(cpuCost, core).AloneTime(); t > 0 {
					weights[core] = 1 / t
				}
			}
			if gpuActive {
				gcost, _ := m.gpuChunkCost(km, km.NumWGs, cfg, !opts.PlainGPU)
				if t := gcost.AloneTime(); t > 0 {
					weights[gpuSlot] = float64(km.NumWGs) / t
				}
			}
		}
		sumW := func() float64 {
			var s float64
			for _, w := range weights {
				s += w
			}
			return s
		}

		grabCPU := func(core int) bool {
			rem := km.NumWGs - next
			if rem <= 0 {
				return false
			}
			cnt := unit
			switch dist {
			case WorkQueue:
				cnt = chunk
			case HGuided:
				cnt = HGuidedChunk(rem, unit, minChunk, weights[core], sumW())
			}
			if cnt > rem {
				cnt = rem
			}
			span := &agentState{start: next, count: cnt}
			next += cnt
			agents[core] = span
			cost := m.scaleCoreCost(cpuCost, core)
			if cnt > 1 {
				cost = TaskCost{
					Compute:  cost.Compute * float64(cnt),
					Latency:  cost.Latency * float64(cnt),
					MemBytes: cost.MemBytes * float64(cnt),
					PeakBW:   cost.PeakBW,
				}
			}
			id := fl.Add(core, cost)
			taskAgent[id] = core
			agentStart[core] = fl.Time
			return true
		}
		grabGPU := func() bool {
			rem := km.NumWGs - next
			if rem <= 0 {
				return false
			}
			count := chunk
			switch {
			case dist == Dynamic && opts.DecayChunks:
				count = rem / opts.GPUChunkDiv
				count = (count / unit) * unit
				if count < unit {
					count = unit
				}
			case dist == HGuided:
				count = HGuidedChunk(rem, unit, minChunk, weights[gpuSlot], sumW())
			}
			if count > rem {
				count = rem
			}
			span := &agentState{start: next, count: count}
			next += count
			cost, trans := m.gpuChunkCost(km, count, cfg, !opts.PlainGPU)
			cost.Compute += m.GPU.DispatchSec
			res.Transactions += trans
			res.GPUChunks++
			agents[gpuAgent] = span
			id := fl.Add(gpuAgent, cost)
			taskAgent[id] = gpuAgent
			agentStart[gpuAgent] = fl.Time
			return true
		}
		// The GPU is dispatched first: under Algorithm 1 its chunk is a
		// tenth of the whole workload, so letting the CPU threads drain
		// the worklist before the first push would starve the GPU on
		// small launches. The pull-based policies keep the same order for
		// determinism.
		if gpuActive {
			grabGPU()
		}
		for core := 0; core < cfg.CPUCores; core++ {
			grabCPU(core)
		}
		for {
			done, ok := fl.Step()
			if !ok {
				break
			}
			for _, id := range done {
				agent := taskAgent[id]
				delete(taskAgent, id)
				span := agents[agent]
				delete(agents, agent)
				busy := fl.Time - agentStart[agent]
				if dist == HGuided && busy > 0 {
					slot := agent
					if agent == gpuAgent {
						slot = gpuSlot
					}
					weights[slot] = float64(span.count) / busy
				}
				if agent == gpuAgent {
					res.WGsGPU += span.count
					res.GPUBusy += busy
					if err := emitSpan(opts.OnSpan, "gpu", span.start, span.count); err != nil {
						return nil, err
					}
					grabGPU()
				} else {
					res.WGsCPU += span.count
					res.CPUBusy += busy
					if err := emitSpan(opts.OnSpan, "cpu", span.start, span.count); err != nil {
						return nil, err
					}
					grabCPU(agent)
				}
			}
		}
	case Static:
		share := opts.CPUShare
		if cfg.CPUCores == 0 {
			share = 0
		}
		if !gpuActive {
			share = 1
		}
		cpuWGs := int(share*float64(km.NumWGs) + 0.5)
		cpuWGs = (cpuWGs / unit) * unit
		if cpuWGs > km.NumWGs {
			cpuWGs = km.NumWGs
		}
		if share >= 1 {
			cpuWGs = km.NumWGs
		}
		gpuWGs := km.NumWGs - cpuWGs

		// CPU cores each process a contiguous slice, modeled as one task
		// scaled by the slice length (identical per-WG costs).
		start := 0
		for core := 0; core < cfg.CPUCores && cpuWGs > 0; core++ {
			cnt := cpuWGs / cfg.CPUCores
			if core < cpuWGs%cfg.CPUCores {
				cnt++
			}
			if cnt == 0 {
				continue
			}
			coreCost := m.scaleCoreCost(cpuCost, core)
			cost := TaskCost{
				Compute:  coreCost.Compute * float64(cnt),
				Latency:  coreCost.Latency * float64(cnt),
				MemBytes: coreCost.MemBytes * float64(cnt),
				PeakBW:   coreCost.PeakBW,
			}
			agents[core] = &agentState{start: start, count: cnt}
			id := fl.Add(core, cost)
			taskAgent[id] = core
			agentStart[core] = fl.Time
			start += cnt
			res.WGsCPU += cnt
		}
		if gpuActive && gpuWGs > 0 {
			cost, trans := m.gpuChunkCost(km, gpuWGs, cfg, !opts.PlainGPU)
			cost.Compute += m.GPU.DispatchSec
			res.Transactions += trans
			res.GPUChunks++
			agents[gpuAgent] = &agentState{start: start, count: gpuWGs}
			id := fl.Add(gpuAgent, cost)
			taskAgent[id] = gpuAgent
			agentStart[gpuAgent] = fl.Time
			res.WGsGPU += gpuWGs
		}
		for {
			done, ok := fl.Step()
			if !ok {
				break
			}
			for _, id := range done {
				agent := taskAgent[id]
				delete(taskAgent, id)
				span := agents[agent]
				delete(agents, agent)
				busy := fl.Time - agentStart[agent]
				dev := "cpu"
				if agent == gpuAgent {
					dev = "gpu"
					res.GPUBusy += busy
				} else {
					res.CPUBusy += busy
				}
				if err := emitSpan(opts.OnSpan, dev, span.start, span.count); err != nil {
					return nil, err
				}
			}
		}
	default:
		return nil, fmt.Errorf("sim: unknown distribution %d", dist)
	}

	res.Time = fl.Time
	// DRAM bytes: CPU traffic plus GPU traffic.
	res.DRAMBytes = cpuCost.MemBytes*float64(res.WGsCPU) + res.Transactions*64
	if res.WGsCPU+res.WGsGPU != km.NumWGs {
		return nil, fmt.Errorf("sim: internal error: %d+%d work-groups executed, want %d",
			res.WGsCPU, res.WGsGPU, km.NumWGs)
	}
	if math.IsNaN(res.Time) || math.IsInf(res.Time, 0) {
		return nil, fmt.Errorf("sim: non-finite simulated time")
	}
	return res, nil
}

func emitSpan(fn SpanFunc, dev string, start, count int) error {
	if fn == nil {
		return nil
	}
	return fn(dev, start, count)
}

// Exhaustive evaluates every configuration of the machine's DoP space with
// dynamic distribution and returns the best configuration, its result, and
// the full table of results (the paper's oracle).
func Exhaustive(m *Machine, km *KernelModel) (Config, *Result, map[Config]*Result, error) {
	table := make(map[Config]*Result)
	var best Config
	var bestRes *Result
	for _, cfg := range m.Configs() {
		r, err := Simulate(m, km, cfg, Dynamic, SimOptions{})
		if err != nil {
			return Config{}, nil, nil, err
		}
		table[cfg] = r
		if bestRes == nil || r.Time < bestRes.Time {
			best, bestRes = cfg, r
		}
	}
	return best, bestRes, table, nil
}
