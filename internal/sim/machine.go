// Package sim is the integrated CPU/GPU architecture performance
// simulator. It substitutes for the AMD Kaveri and Intel Skylake silicon
// the Dopia paper evaluates on: kernels execute functionally in
// internal/interp, and this package charges simulated time from their
// operation and memory statistics using three mechanisms that drive the
// paper's results:
//
//  1. GPU memory coalescing — across-lane access patterns determine how
//     many memory transactions each access costs (internal/mem).
//  2. A working-set cache model — reuse survives only while the combined
//     working set of all concurrently active threads fits in the cache,
//     so raising the GPU's degree of parallelism converts reuse hits into
//     DRAM traffic (the paper's Figure 3b).
//  3. A fluid shared-DRAM model — CPU cores and the GPU share the
//     off-chip bandwidth by processor sharing with per-agent caps, so
//     oversubscribing one device slows the other (Figure 1).
package sim

// CPUConfig describes the CPU side of an integrated processor.
type CPUConfig struct {
	Cores    int     // schedulable compute units (threads for SMT parts)
	FreqHz   float64 // clock
	CPIInt   float64 // cycles per integer ALU op
	CPIFloat float64 // cycles per floating-point op
	CacheB   int64   // per-core private cache (effective, bytes)
	CoreBWBs float64 // single core's max DRAM bandwidth (bytes/s)
	MLP      float64 // memory-level parallelism for latency overlap

	// LittleCores marks the last LittleCores of Cores as efficiency
	// cores on big.LITTLE-style asymmetric parts. A DoP configuration
	// activates big cores first, so small CPUCores settings run on the
	// fast cluster only.
	LittleCores int
	// LittleSlow is the slowdown factor of a little core relative to a
	// big one (compute and latency stretch by it, sustainable bandwidth
	// shrinks by it). Values <= 1 mean symmetric cores.
	LittleSlow float64
}

// CoreSlow returns the slowdown factor of a CPU core index under the
// big-cores-first numbering: 1 for big cores, LittleSlow for the
// efficiency cluster.
func (m *Machine) CoreSlow(core int) float64 {
	cpu := m.CPU
	if cpu.LittleCores <= 0 || cpu.LittleSlow <= 1 {
		return 1
	}
	if core >= cpu.Cores-cpu.LittleCores {
		return cpu.LittleSlow
	}
	return 1
}

// GPUConfig describes the GPU side.
type GPUConfig struct {
	CUs       int     // compute units
	PEsPerCU  int     // processing elements per CU
	FreqHz    float64 // clock
	SIMDWidth int     // lanes coalesced per memory transaction
	CPIInt    float64
	CPIFloat  float64
	CacheB    int64   // GPU-side shared cache (L2/L3, bytes)
	Residency float64 // hardware threads in flight per active PE
	// PEBWBs is the DRAM bandwidth one active PE can sustain (bytes/s):
	// a partially-throttled GPU cannot keep enough requests in flight to
	// saturate the memory system.
	PEBWBs float64
	// StridedPenalty is the bandwidth overhead factor of uncoalesced
	// (lane-strided) access streams even when every fetched line is
	// eventually consumed: partial-line transactions and DRAM row
	// thrashing waste effective bandwidth.
	StridedPenalty float64
	// MalleableCyc is the per-work-item overhead of Dopia's dynamic
	// worklist (one local atomic + index recomputation).
	MalleableCyc float64
	// DispatchSec is the host-side cost of enqueueing one kernel chunk.
	DispatchSec float64

	// LocalBWBs, when > 0, marks a discrete GPU with private device
	// memory of this bandwidth: kernel traffic is served locally instead
	// of from the shared DRAM, and each chunk's buffer footprint crosses
	// PCIe instead (paced by PCIeBWBs inside the shared fluid model,
	// plus PCIeLatSec of bus setup per chunk).
	LocalBWBs  float64
	PCIeBWBs   float64
	PCIeLatSec float64
}

// Discrete reports whether the GPU sits across a PCIe bus with its own
// device memory.
func (g *GPUConfig) Discrete() bool { return g.LocalBWBs > 0 }

// MemConfig describes the shared memory system.
type MemConfig struct {
	BandwidthBs float64 // peak DRAM bandwidth, bytes/s
	LatencySec  float64 // uncontended access latency
	SharedLLCB  int64   // shared last-level cache (0 = none); Intel parts
	// GPULLCWeight is how many CPU-core-equivalents of LLC pressure the
	// GPU exerts when active (for LLC partitioning between agents).
	GPULLCWeight float64
}

// Machine is a complete integrated-architecture description.
type Machine struct {
	Name string
	CPU  CPUConfig
	GPU  GPUConfig
	Mem  MemConfig

	// The DoP configuration space of Table 3.
	CPUSteps []int     // allowed active-core counts (includes 0)
	GPUSteps []float64 // allowed PE fractions (includes 0)
}

// TotalPEs returns the number of GPU processing elements.
func (m *Machine) TotalPEs() int { return m.GPU.CUs * m.GPU.PEsPerCU }

// Kaveri returns the model of the AMD A10-7850K APU used in the paper:
// a quad-core Steamroller CPU at 3.7 GHz and a GCN GPU with 8 CUs of
// 64 PEs at 720 MHz sharing dual-channel DDR3.
func Kaveri() *Machine {
	return &Machine{
		Name: "Kaveri",
		CPU: CPUConfig{
			Cores:    4,
			FreqHz:   3.7e9,
			CPIInt:   0.25,    // superscalar + SIMD address arithmetic
			CPIFloat: 0.35,    // 128-bit vector FP
			CacheB:   1 << 20, // 2 MiB L2 per two-core module
			CoreBWBs: 3.5e9,   // four cores together cannot saturate DDR3
			MLP:      8,
		},
		GPU: GPUConfig{
			CUs:            8,
			PEsPerCU:       64,
			FreqHz:         720e6,
			SIMDWidth:      16,
			CPIInt:         1.0,
			CPIFloat:       1.0,
			CacheB:         512 << 10,
			Residency:      10,
			PEBWBs:         80e6,
			StridedPenalty: 2.0,
			MalleableCyc:   8,
			DispatchSec:    30e-6,
		},
		Mem: MemConfig{
			BandwidthBs:  21e9,
			LatencySec:   120e-9,
			SharedLLCB:   0,
			GPULLCWeight: 8,
		},
		CPUSteps: []int{0, 1, 2, 3, 4},
		GPUSteps: gpuFractions(),
	}
}

// Skylake returns the model of the Intel i7-6700 used in the paper: a
// quad-core/eight-thread CPU at 3.4 GHz with a shared 8 MiB LLC and a
// Gen9 GPU with 24 CUs of 32 PEs, on dual-channel DDR4.
func Skylake() *Machine {
	return &Machine{
		Name: "Skylake",
		CPU: CPUConfig{
			Cores:    8, // hardware threads; Table 3 steps by two
			FreqHz:   3.4e9,
			CPIInt:   0.25, // per SMT thread
			CPIFloat: 0.3,  // 256-bit vector FP shared between threads
			CacheB:   256 << 10,
			CoreBWBs: 3e9, // per SMT thread; pairs share a core's bandwidth
			MLP:      10,
		},
		GPU: GPUConfig{
			CUs:            24,
			PEsPerCU:       32,
			FreqHz:         1.15e9,
			SIMDWidth:      8,
			CPIInt:         1.0,
			CPIFloat:       1.0,
			CacheB:         768 << 10,
			Residency:      7,
			PEBWBs:         50e6,
			StridedPenalty: 1.8,
			MalleableCyc:   8,
			DispatchSec:    15e-6,
		},
		Mem: MemConfig{
			BandwidthBs:  28e9,
			LatencySec:   80e-9,
			SharedLLCB:   8 << 20,
			GPULLCWeight: 8,
		},
		CPUSteps: []int{0, 2, 4, 6, 8},
		GPUSteps: gpuFractions(),
	}
}

func gpuFractions() []float64 {
	out := make([]float64, 0, 9)
	for i := 0; i <= 8; i++ {
		out = append(out, float64(i)/8)
	}
	return out
}

// Config is one degree-of-parallelism choice: how many CPU cores and what
// fraction of each CU's PEs are active.
type Config struct {
	CPUCores int
	GPUFrac  float64
}

// Valid reports whether the configuration activates at least one device.
func (c Config) Valid() bool { return c.CPUCores > 0 || c.GPUFrac > 0 }

// Configs enumerates the machine's DoP configuration space (Table 3),
// excluding the all-idle configuration — 44 entries for both evaluated
// machines.
func (m *Machine) Configs() []Config {
	var out []Config
	for _, c := range m.CPUSteps {
		for _, g := range m.GPUSteps {
			cfg := Config{CPUCores: c, GPUFrac: g}
			if cfg.Valid() {
				out = append(out, cfg)
			}
		}
	}
	return out
}

// CPUOnly returns the all-CPU configuration.
func (m *Machine) CPUOnly() Config { return Config{CPUCores: m.CPU.Cores} }

// GPUOnly returns the all-GPU configuration.
func (m *Machine) GPUOnly() Config { return Config{GPUFrac: 1} }

// AllResources returns the configuration using every core of both devices.
func (m *Machine) AllResources() Config {
	return Config{CPUCores: m.CPU.Cores, GPUFrac: 1}
}

// CPUUtil returns the normalized CPU allocation of a configuration.
func (m *Machine) CPUUtil(c Config) float64 {
	if m.CPU.Cores == 0 {
		return 0
	}
	return float64(c.CPUCores) / float64(m.CPU.Cores)
}

// ActivePEs returns the number of active PEs per CU under a configuration.
func (m *Machine) ActivePEs(c Config) int {
	n := int(c.GPUFrac*float64(m.GPU.PEsPerCU) + 0.5)
	if c.GPUFrac > 0 && n == 0 {
		n = 1
	}
	return n
}

// DopParams returns the malleable-kernel throttling parameters
// (dop_gpu_mod, dop_gpu_alloc) that realize a GPU fraction. The mod is 8,
// matching Table 3's 1/8 allocation granularity.
func DopParams(frac float64) (mod, alloc int64) {
	mod = 8
	alloc = int64(frac*8 + 0.5)
	if frac > 0 && alloc == 0 {
		alloc = 1
	}
	if alloc > mod {
		alloc = mod
	}
	return mod, alloc
}
