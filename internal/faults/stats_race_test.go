package faults

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestFallbackStatsConcurrentSnapshots drives one FallbackStats from
// many goroutines — the shape of a serving daemon fanning one
// framework's aggregate counters across sessions — while concurrently
// snapshotting it, and checks that no record is lost and that snapshots
// taken mid-storm are internally consistent. Run under -race in CI; the
// race detector is the other half of this regression test.
func TestFallbackStatsConcurrentSnapshots(t *testing.T) {
	s := &FallbackStats{}
	const G, per = 32, 500
	timeoutErr := Wrap(StageExec, fmt.Errorf("%w: deadline", ErrExecTimeout))
	panicErr := &PanicError{Stage: StageAnalysis, Value: "boom"}
	plainErr := Wrap(StageTransform, errors.New("no transform"))

	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				switch i % 4 {
				case 0:
					s.RecordManaged()
				case 1:
					s.RecordCoExecAll(timeoutErr)
				case 2:
					s.RecordPlain(panicErr)
				case 3:
					s.RecordModelDiscard(plainErr)
				}
				if i%97 == 0 {
					snap := s.Snapshot()
					// Every degradation carries an error here, so the
					// by-stage attributions can never exceed the records
					// that classify (coexec + plain + discards).
					var attributed int64
					for _, n := range snap.ByStage {
						attributed += n
					}
					if max := snap.CoExecAll + snap.Plain + snap.ModelDiscards; attributed > max {
						t.Errorf("by-stage total %d > classified records %d", attributed, max)
					}
					if snap.Panics > snap.Plain {
						t.Errorf("panics %d > plain records %d that caused them", snap.Panics, snap.Plain)
					}
				}
			}
		}()
	}
	wg.Wait()

	snap := s.Snapshot()
	want := int64(G * per / 4)
	if snap.Managed != want || snap.CoExecAll != want || snap.Plain != want || snap.ModelDiscards != want {
		t.Fatalf("lost records: %+v, want %d each", snap, want)
	}
	if snap.Timeouts != want {
		t.Errorf("timeouts = %d, want %d", snap.Timeouts, want)
	}
	if snap.Panics != want {
		t.Errorf("panics = %d, want %d", snap.Panics, want)
	}
	if snap.ByStage[StageExec] != want || snap.ByStage[StageAnalysis] != want || snap.ByStage[StageTransform] != want {
		t.Errorf("by-stage = %v, want %d per stage", snap.ByStage, want)
	}
	if snap.Degradations() != 2*want {
		t.Errorf("degradations = %d, want %d", snap.Degradations(), 2*want)
	}
}

func TestSnapshotSub(t *testing.T) {
	s := &FallbackStats{}
	s.RecordManaged()
	before := s.Snapshot()
	s.RecordManaged()
	s.RecordPlain(Wrap(StageExec, errors.New("x")))
	delta := s.Snapshot().Sub(before)
	if delta.Managed != 1 || delta.Plain != 1 || delta.CoExecAll != 0 {
		t.Fatalf("delta = %+v", delta)
	}
	if delta.ByStage[StageExec] != 1 || len(delta.ByStage) != 1 {
		t.Fatalf("delta by-stage = %v", delta.ByStage)
	}
}
