package faults

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestWrapClassifies(t *testing.T) {
	base := errors.New("boom")
	err := Wrap(StageTransform, base)
	if StageOf(err) != StageTransform {
		t.Fatalf("StageOf = %v, want transform", StageOf(err))
	}
	if !errors.Is(err, base) {
		t.Fatal("wrapped error lost its cause")
	}
	// Outer wrapping (fmt or faults) preserves the innermost stage.
	outer := Wrap(StageExec, fmt.Errorf("context: %w", err))
	if StageOf(outer) != StageTransform {
		t.Fatalf("StageOf(outer) = %v, want transform (innermost)", StageOf(outer))
	}
	if Wrap(StageExec, nil) != nil {
		t.Fatal("Wrap(nil) must be nil")
	}
	if StageOf(errors.New("plain")) != StageUnknown {
		t.Fatal("unclassified error must map to StageUnknown")
	}
}

func TestRecoverContainsPanic(t *testing.T) {
	f := func() (err error) {
		defer Recover(StageAnalysis, &err)
		panic("kaboom")
	}
	err := f()
	if err == nil {
		t.Fatal("panic not converted to error")
	}
	if !IsPanic(err) {
		t.Fatalf("err %v not classified as panic", err)
	}
	if StageOf(err) != StageAnalysis {
		t.Fatalf("StageOf = %v, want analysis", StageOf(err))
	}
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "kaboom" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError not populated: %+v", pe)
	}
}

func TestRecoverPreservesError(t *testing.T) {
	want := errors.New("normal failure")
	f := func() (err error) {
		defer Recover(StageParse, &err)
		return want
	}
	if err := f(); !errors.Is(err, want) {
		t.Fatalf("Recover clobbered a normal error: %v", err)
	}
}

func TestInjectFiresAndResets(t *testing.T) {
	defer Reset()
	if err := Hit("x"); err != nil {
		t.Fatalf("disarmed point fired: %v", err)
	}
	InjectError("x", ErrTransformFailed)
	err := Hit("x")
	if err == nil || !errors.Is(err, ErrTransformFailed) || !IsInjected(err) {
		t.Fatalf("armed point: got %v", err)
	}
	if HitCount("x") != 1 {
		t.Fatalf("HitCount = %d, want 1", HitCount("x"))
	}
	Reset()
	if err := Hit("x"); err != nil {
		t.Fatalf("point fired after Reset: %v", err)
	}
}

func TestInjectAfterAndCount(t *testing.T) {
	defer Reset()
	Inject("y", Plan{Err: ErrExecTimeout, After: 2, Count: 1})
	var fired int
	for i := 0; i < 5; i++ {
		if Hit("y") != nil {
			fired++
		}
	}
	if fired != 1 {
		t.Fatalf("fired %d times, want exactly 1 (After=2, Count=1)", fired)
	}
}

func TestInjectRateDeterministic(t *testing.T) {
	defer Reset()
	run := func() []bool {
		Inject("z", Plan{Rate: 0.5, Seed: 42})
		out := make([]bool, 20)
		for i := range out {
			out[i] = Hit("z") != nil
		}
		Disarm("z")
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("seeded probabilistic plan is not deterministic")
		}
	}
	var any bool
	for _, v := range a {
		any = any || v
	}
	if !any {
		t.Fatal("rate 0.5 never fired in 20 hits")
	}
}

func TestInjectPanicMode(t *testing.T) {
	defer Reset()
	InjectPanic("p", "forced")
	err := func() (err error) {
		defer Recover(StageExec, &err)
		return Hit("p")
	}()
	if !IsPanic(err) || StageOf(err) != StageExec {
		t.Fatalf("panic injection not contained/classified: %v", err)
	}
}

func TestFallbackStatsConcurrent(t *testing.T) {
	var s FallbackStats
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.RecordManaged()
				s.RecordCoExecAll(Wrap(StageTransform, ErrTransformFailed))
				s.RecordPlain(Wrap(StageExec, ErrExecTimeout))
				s.RecordModelDiscard(Wrap(StageModelPredict, ErrModelInvalid))
			}
		}()
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.Managed != 800 || snap.CoExecAll != 800 || snap.Plain != 800 ||
		snap.ModelDiscards != 800 || snap.Timeouts != 800 {
		t.Fatalf("lost updates: %s", snap)
	}
	if snap.ByStage[StageTransform] != 800 || snap.ByStage[StageExec] != 800 ||
		snap.ByStage[StageModelPredict] != 800 {
		t.Fatalf("stage attribution wrong: %s", snap)
	}
	if snap.Degradations() != 1600 {
		t.Fatalf("Degradations = %d, want 1600", snap.Degradations())
	}
	var nilStats *FallbackStats
	nilStats.RecordManaged() // must not crash
	if nilStats.Snapshot().Managed != 0 {
		t.Fatal("nil stats snapshot not zero")
	}
}
