package faults

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// FallbackStats counts, per framework or per command queue, how launches
// moved through the fail-open ladder:
//
//	Managed      — full Dopia management (malleable co-exec + model DoP)
//	CoExecAll    — degraded: co-execution of the original kernel on ALL
//	               resources (malleable transform unavailable)
//	Plain        — degraded to the plain single-device runtime
//	               (handled=false returned to the OpenCL layer)
//	ModelDiscards— model predictions discarded for a launch (NaN/Inf/
//	               out-of-range or inference fault); the launch itself may
//	               still be Managed or CoExecAll with the ALL config
//	Panics       — panics contained at a pipeline boundary
//	Timeouts     — watchdog deadline hits
//
// ByStage attributes each degradation to the pipeline stage that caused
// it. The zero value is ready to use; all methods are safe for concurrent
// use. A FallbackStats must not be copied after first use.
type FallbackStats struct {
	mu sync.Mutex

	managed       int64
	coExecAll     int64
	plain         int64
	modelDiscards int64
	panics        int64
	timeouts      int64
	byStage       map[Stage]int64
}

// Snapshot is a copyable view of a FallbackStats at one instant.
type Snapshot struct {
	Managed       int64
	CoExecAll     int64
	Plain         int64
	ModelDiscards int64
	Panics        int64
	Timeouts      int64
	ByStage       map[Stage]int64
}

// RecordManaged counts a fully Dopia-managed launch.
func (s *FallbackStats) RecordManaged() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.managed++
	s.mu.Unlock()
}

// RecordCoExecAll counts a launch degraded to ALL co-execution without
// the malleable kernel, caused by err.
func (s *FallbackStats) RecordCoExecAll(err error) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.coExecAll++
	s.classifyLocked(err)
	s.mu.Unlock()
}

// RecordPlain counts a launch handed back to the plain runtime, caused by
// err.
func (s *FallbackStats) RecordPlain(err error) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.plain++
	s.classifyLocked(err)
	s.mu.Unlock()
}

// RecordModelDiscard counts a launch whose model prediction was discarded.
func (s *FallbackStats) RecordModelDiscard(err error) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.modelDiscards++
	s.classifyLocked(err)
	s.mu.Unlock()
}

// classifyLocked attributes err to its pipeline stage and counts panics
// and timeouts. Callers hold s.mu.
func (s *FallbackStats) classifyLocked(err error) {
	if err == nil {
		return
	}
	if s.byStage == nil {
		s.byStage = map[Stage]int64{}
	}
	s.byStage[StageOf(err)]++
	if IsPanic(err) {
		s.panics++
	}
	if IsTimeout(err) {
		s.timeouts++
	}
}

// Snapshot returns a consistent copy of all counters.
func (s *FallbackStats) Snapshot() Snapshot {
	if s == nil {
		return Snapshot{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := Snapshot{
		Managed:       s.managed,
		CoExecAll:     s.coExecAll,
		Plain:         s.plain,
		ModelDiscards: s.modelDiscards,
		Panics:        s.panics,
		Timeouts:      s.timeouts,
		ByStage:       map[Stage]int64{},
	}
	for st, n := range s.byStage {
		snap.ByStage[st] = n
	}
	return snap
}

// Degradations returns the total number of launches that fell below full
// Dopia management.
func (s Snapshot) Degradations() int64 { return s.CoExecAll + s.Plain }

// String renders the snapshot compactly for logs and reports.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "managed=%d coexec-all=%d plain=%d model-discards=%d panics=%d timeouts=%d",
		s.Managed, s.CoExecAll, s.Plain, s.ModelDiscards, s.Panics, s.Timeouts)
	if len(s.ByStage) > 0 {
		stages := make([]string, 0, len(s.ByStage))
		for st := range s.ByStage {
			stages = append(stages, string(st))
		}
		sort.Strings(stages)
		b.WriteString(" by-stage={")
		for i, st := range stages {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%s:%d", st, s.ByStage[Stage(st)])
		}
		b.WriteString("}")
	}
	return b.String()
}
