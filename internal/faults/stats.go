package faults

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// FallbackStats counts, per framework or per command queue, how launches
// moved through the fail-open ladder:
//
//	Managed      — full Dopia management (malleable co-exec + model DoP)
//	CoExecAll    — degraded: co-execution of the original kernel on ALL
//	               resources (malleable transform unavailable)
//	Plain        — degraded to the plain single-device runtime
//	               (handled=false returned to the OpenCL layer)
//	ModelDiscards— model predictions discarded for a launch (NaN/Inf/
//	               out-of-range or inference fault); the launch itself may
//	               still be Managed or CoExecAll with the ALL config
//	Panics       — panics contained at a pipeline boundary
//	Timeouts     — watchdog deadline hits
//
// ByStage attributes each degradation to the pipeline stage that caused
// it. The zero value is ready to use; all methods are safe for concurrent
// use. A FallbackStats must not be copied after first use.
//
// The counters are plain atomics so the hot path (RecordManaged, once
// per interposed launch, from every serving worker at once) is a single
// uncontended atomic increment. Only the per-stage attribution map —
// touched exclusively on degradations, which are rare by design — takes
// a mutex. Snapshot reads every counter atomically; when records race
// with the snapshot each record lands entirely in this snapshot or
// entirely in the next one per counter, and the By-stage map is copied
// under its lock.
type FallbackStats struct {
	managed       atomic.Int64
	coExecAll     atomic.Int64
	plain         atomic.Int64
	modelDiscards atomic.Int64
	panics        atomic.Int64
	timeouts      atomic.Int64

	mu      sync.Mutex // guards byStage only
	byStage map[Stage]int64
}

// Snapshot is a copyable view of a FallbackStats at one instant.
type Snapshot struct {
	Managed       int64
	CoExecAll     int64
	Plain         int64
	ModelDiscards int64
	Panics        int64
	Timeouts      int64
	ByStage       map[Stage]int64
}

// RecordManaged counts a fully Dopia-managed launch.
func (s *FallbackStats) RecordManaged() {
	if s == nil {
		return
	}
	s.managed.Add(1)
}

// RecordCoExecAll counts a launch degraded to ALL co-execution without
// the malleable kernel, caused by err.
func (s *FallbackStats) RecordCoExecAll(err error) {
	if s == nil {
		return
	}
	s.coExecAll.Add(1)
	s.classify(err)
}

// RecordPlain counts a launch handed back to the plain runtime, caused by
// err.
func (s *FallbackStats) RecordPlain(err error) {
	if s == nil {
		return
	}
	s.plain.Add(1)
	s.classify(err)
}

// RecordModelDiscard counts a launch whose model prediction was discarded.
func (s *FallbackStats) RecordModelDiscard(err error) {
	if s == nil {
		return
	}
	s.modelDiscards.Add(1)
	s.classify(err)
}

// classify attributes err to its pipeline stage and counts panics and
// timeouts.
func (s *FallbackStats) classify(err error) {
	if err == nil {
		return
	}
	if IsPanic(err) {
		s.panics.Add(1)
	}
	if IsTimeout(err) {
		s.timeouts.Add(1)
	}
	stage := StageOf(err)
	s.mu.Lock()
	if s.byStage == nil {
		s.byStage = map[Stage]int64{}
	}
	s.byStage[stage]++
	s.mu.Unlock()
}

// Snapshot returns a consistent copy of all counters.
func (s *FallbackStats) Snapshot() Snapshot {
	if s == nil {
		return Snapshot{}
	}
	snap := Snapshot{
		Managed:       s.managed.Load(),
		CoExecAll:     s.coExecAll.Load(),
		Plain:         s.plain.Load(),
		ModelDiscards: s.modelDiscards.Load(),
		Panics:        s.panics.Load(),
		Timeouts:      s.timeouts.Load(),
		ByStage:       map[Stage]int64{},
	}
	s.mu.Lock()
	for st, n := range s.byStage {
		snap.ByStage[st] = n
	}
	s.mu.Unlock()
	return snap
}

// Degradations returns the total number of launches that fell below full
// Dopia management.
func (s Snapshot) Degradations() int64 { return s.CoExecAll + s.Plain }

// Sub returns the per-counter difference s - prev: the records that
// happened between the two snapshots. Taking a snapshot before and after
// one serialized launch attributes exactly that launch's records.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	d := Snapshot{
		Managed:       s.Managed - prev.Managed,
		CoExecAll:     s.CoExecAll - prev.CoExecAll,
		Plain:         s.Plain - prev.Plain,
		ModelDiscards: s.ModelDiscards - prev.ModelDiscards,
		Panics:        s.Panics - prev.Panics,
		Timeouts:      s.Timeouts - prev.Timeouts,
		ByStage:       map[Stage]int64{},
	}
	for st, n := range s.ByStage {
		if delta := n - prev.ByStage[st]; delta != 0 {
			d.ByStage[st] = delta
		}
	}
	return d
}

// String renders the snapshot compactly for logs and reports.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "managed=%d coexec-all=%d plain=%d model-discards=%d panics=%d timeouts=%d",
		s.Managed, s.CoExecAll, s.Plain, s.ModelDiscards, s.Panics, s.Timeouts)
	if len(s.ByStage) > 0 {
		stages := make([]string, 0, len(s.ByStage))
		for st := range s.ByStage {
			stages = append(stages, string(st))
		}
		sort.Strings(stages)
		b.WriteString(" by-stage={")
		for i, st := range stages {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%s:%d", st, s.ByStage[Stage(st)])
		}
		b.WriteString("}")
	}
	return b.String()
}
