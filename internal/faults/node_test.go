package faults

import (
	"fmt"
	"testing"
)

func TestNodeFaultClasses(t *testing.T) {
	classes := NodeFaultClasses()
	if len(classes) != 4 {
		t.Fatalf("NodeFaultClasses() = %v, want 4 classes", classes)
	}
	seen := map[NodeFaultClass]bool{}
	for _, c := range classes {
		if seen[c] {
			t.Errorf("duplicate class %q", c)
		}
		seen[c] = true
		if c == "" {
			t.Error("empty class name")
		}
	}
	for _, want := range []NodeFaultClass{NodeKill, NodePartition, NodeSlow, NodeCacheEvict} {
		if !seen[want] {
			t.Errorf("class %q missing from NodeFaultClasses()", want)
		}
	}
}

func TestClusterSentinels(t *testing.T) {
	wrapped := Wrap(StageCluster, fmt.Errorf("launch on n2: %w", ErrNodeDown))
	if !IsNodeDown(wrapped) {
		t.Error("IsNodeDown lost through Wrap")
	}
	if IsRingDown(wrapped) {
		t.Error("IsRingDown matched a node-down error")
	}
	if StageOf(wrapped) != StageCluster {
		t.Errorf("StageOf = %q, want %q", StageOf(wrapped), StageCluster)
	}
	ring := Wrap(StageCluster, ErrRingDown)
	if !IsRingDown(ring) || IsNodeDown(ring) {
		t.Error("ring-down classification wrong")
	}
}
