package faults

// Node-level fault classes. PR 1 introduced the in-process taxonomy —
// pipeline stages of one launch — and a deterministic injection
// registry. The cluster tier (internal/cluster) adds a second failure
// domain: whole nodes. These classes name the faults its chaos
// controller can inject against a member of the ring; the router's
// failure-handling matrix (DESIGN.md "Cluster tier") is keyed by them.
//
// The classes are declared here, next to the rest of the taxonomy,
// so one package owns every fault name in the system and the chaos
// matrix tests can iterate NodeFaultClasses() exactly like the
// stage×fault matrix tests iterate Stages().

import "errors"

// NodeFaultClass identifies a node-level fault the chaos controller can
// inject against one cluster member.
type NodeFaultClass string

const (
	// NodeKill terminates a node abruptly: its listener closes and every
	// in-flight connection is dropped, exactly like a process crash.
	// Permanent until the node is explicitly restarted.
	NodeKill NodeFaultClass = "node.kill"
	// NodePartition cuts a node's gossip traffic in both directions
	// while the node itself keeps serving — the classic "healthy but
	// unreachable to the failure detector" split.
	NodePartition NodeFaultClass = "node.partition"
	// NodeSlow injects latency in front of every request the node
	// serves, pushing it past the router's per-call timeout.
	NodeSlow NodeFaultClass = "node.slow"
	// NodeCacheEvict drops the node's program registry, so launches
	// referencing a content-addressed p-<sha256> ID start failing with
	// "no program" until the router re-pushes the source.
	NodeCacheEvict NodeFaultClass = "node.cache-evict"
)

// NodeFaultClasses lists every node-level fault class. The cluster
// chaos-matrix tests iterate this, asserting zero dropped sessions and
// zero bit-exactness mismatches under each.
func NodeFaultClasses() []NodeFaultClass {
	return []NodeFaultClass{NodeKill, NodePartition, NodeSlow, NodeCacheEvict}
}

// StageCluster classifies failures originating in the cluster tier
// (routing, replication, migration) rather than in one launch's
// pipeline.
const StageCluster Stage = "cluster"

// Cluster-tier sentinels, wrapped by the router exactly like the
// pipeline sentinels are wrapped by the fallback ladder.
var (
	// ErrNodeDown: a request against one node failed at the transport
	// level or with a 5xx — the node is treated as dead and the session
	// fails over to its successor.
	ErrNodeDown = errors.New("node down")
	// ErrRingDown: no healthy node remains; the router answers 503 with
	// Retry-After instead of failing sessions over.
	ErrRingDown = errors.New("ring down")
)

// IsNodeDown reports whether err is classified as a dead node.
func IsNodeDown(err error) bool { return errors.Is(err, ErrNodeDown) }

// IsRingDown reports whether err is classified as a whole-ring outage.
func IsRingDown(err error) bool { return errors.Is(err, ErrRingDown) }
