package faults

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
)

// This file implements the deterministic fault-injection registry. It is
// off by default and costs one atomic load per instrumented site when
// disarmed, so production code keeps its Hit() calls unconditionally.
//
// Injection points are string-named sites compiled into the pipeline:
//
//	clc.parse          — front-end Parse/Compile (incl. malleable recompile)
//	analysis.analyze   — static feature extraction
//	transform.gpu      — malleable GPU code generation
//	interp.compile     — interpreter kernel compilation
//	ml.load            — model deserialization
//	ml.predict         — per-launch model inference
//	core.exec          — managed co-execution (Dopia-side only)
//
// Tests arm a point with Inject and a Plan; the site's Hit call then
// returns (or panics with) the planned fault. Plans are deterministic:
// firing is a pure function of the per-point hit counter and, for
// probabilistic plans, of a seeded PRNG.

// Plan describes when and how an armed injection point fires.
type Plan struct {
	// Err is returned by Hit when the plan fires. If nil (and Panic is
	// nil) a generic ErrInjected is synthesized.
	Err error
	// Panic, when non-nil, makes the site panic with this value instead
	// of returning an error — exercising the Recover boundaries.
	Panic any
	// After skips the first After hits before the plan may fire.
	After int
	// Count limits how many times the plan fires (0 = unlimited).
	Count int
	// Rate enables probabilistic firing with the given probability in
	// (0,1]; 0 means fire on every eligible hit. Driven by Seed for
	// reproducibility.
	Rate float64
	// Seed seeds the per-point PRNG used when Rate > 0.
	Seed int64
}

type armedPoint struct {
	plan  Plan
	hits  int
	fired int
	rng   *rand.Rand
}

var (
	// injArmed is the fast-path gate: number of armed points.
	injArmed atomic.Int32

	injMu     sync.Mutex
	injPoints map[string]*armedPoint
)

// Inject arms an injection point with a plan. Re-arming a point replaces
// its previous plan and resets its counters. Injection is process-global
// and intended for tests; call Reset (usually via t.Cleanup) when done.
func Inject(point string, plan Plan) {
	injMu.Lock()
	defer injMu.Unlock()
	if injPoints == nil {
		injPoints = map[string]*armedPoint{}
	}
	ap := &armedPoint{plan: plan}
	if plan.Rate > 0 {
		ap.rng = rand.New(rand.NewSource(plan.Seed))
	}
	if _, existed := injPoints[point]; !existed {
		injArmed.Add(1)
	}
	injPoints[point] = ap
}

// InjectError arms point to return err on every hit.
func InjectError(point string, err error) { Inject(point, Plan{Err: err}) }

// InjectPanic arms point to panic with value on every hit.
func InjectPanic(point string, value any) { Inject(point, Plan{Panic: value}) }

// Disarm removes the plan for one point.
func Disarm(point string) {
	injMu.Lock()
	defer injMu.Unlock()
	if _, ok := injPoints[point]; ok {
		delete(injPoints, point)
		injArmed.Add(-1)
	}
}

// Reset disarms every injection point.
func Reset() {
	injMu.Lock()
	defer injMu.Unlock()
	injArmed.Add(-int32(len(injPoints)))
	injPoints = nil
}

// Active reports whether any injection point is armed. The caching
// layers (program/compile/transform/prediction caches) consult it and
// bypass memoization while faults are armed, so an armed plan observes
// exactly the call sequence of the uncached pipeline.
func Active() bool { return injArmed.Load() != 0 }

// HitCount returns how many times an armed point has been reached (fired
// or not). It returns 0 for disarmed points.
func HitCount(point string) int {
	injMu.Lock()
	defer injMu.Unlock()
	if ap, ok := injPoints[point]; ok {
		return ap.hits
	}
	return 0
}

// Hit is called by instrumented sites. With no plan armed for the point
// it returns nil at the cost of one atomic load. With a plan armed it
// either returns the planned error, panics with the planned value, or
// returns nil when the plan does not fire on this hit.
func Hit(point string) error {
	if injArmed.Load() == 0 {
		return nil
	}
	injMu.Lock()
	ap, ok := injPoints[point]
	if !ok {
		injMu.Unlock()
		return nil
	}
	ap.hits++
	fire := ap.hits > ap.plan.After &&
		(ap.plan.Count == 0 || ap.fired < ap.plan.Count)
	if fire && ap.rng != nil {
		fire = ap.rng.Float64() < ap.plan.Rate
	}
	if !fire {
		injMu.Unlock()
		return nil
	}
	ap.fired++
	plan := ap.plan
	injMu.Unlock()

	if plan.Panic != nil {
		panic(plan.Panic)
	}
	if plan.Err != nil {
		return fmt.Errorf("%w at %s: %w", ErrInjected, point, plan.Err)
	}
	return fmt.Errorf("%w at %s", ErrInjected, point)
}
