// Package faults is Dopia's robustness toolkit: a typed error taxonomy
// for every stage of the interposed pipeline, a panic-containment
// boundary (Recover) installed at the public entry points of the
// front-end/analysis/transform/interpreter packages, fallback accounting
// (FallbackStats), and a deterministic, seedable fault-injection registry
// used by the stage×fault matrix tests.
//
// Dopia is deployed as a transparent interposition library: a production
// OpenCL application must never fail or hang because Dopia's analysis,
// transform, or model stumbled. The taxonomy in this package lets the
// fallback ladder in internal/core classify any failure — including
// contained panics — by pipeline stage and degrade gracefully instead of
// surfacing an error for a kernel the plain runtime can run.
package faults

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// Stage identifies the pipeline stage where a failure originated. Stages
// double as fault-injection point names: faults.Inject(string(StageTransform), ...)
// arms the transform stage.
type Stage string

// Pipeline stages of the interposed execution path.
const (
	// StageParse is the OpenCL C front-end (lexing, parsing, checking) —
	// including the re-compilation of generated malleable source.
	StageParse Stage = "parse"
	// StageAnalysis is static feature extraction (internal/analysis).
	StageAnalysis Stage = "analysis"
	// StageTransform is malleable code generation (internal/transform).
	StageTransform Stage = "transform"
	// StageCompile is interpreter kernel compilation (internal/interp).
	StageCompile Stage = "compile"
	// StageModelLoad is model deserialization (internal/ml).
	StageModelLoad Stage = "model.load"
	// StageModelPredict is online model inference during DoP selection.
	StageModelPredict Stage = "model.predict"
	// StageExec is the managed co-execution itself (internal/sched).
	StageExec Stage = "exec"
	// StageUnknown marks failures that could not be attributed.
	StageUnknown Stage = "unknown"
)

// Stages lists every classifiable pipeline stage (excluding StageUnknown),
// in pipeline order. The fault-matrix tests iterate this.
func Stages() []Stage {
	return []Stage{
		StageParse, StageAnalysis, StageTransform, StageCompile,
		StageModelLoad, StageModelPredict, StageExec,
	}
}

// The error taxonomy. Every failure crossing a package boundary of the
// interposed pipeline is wrapped (directly or transitively) around one of
// these sentinels so callers can classify with errors.Is.
var (
	// ErrUnsupportedKernel: the kernel uses a construct a pipeline stage
	// cannot handle (e.g. barriers in the malleable rewrite).
	ErrUnsupportedKernel = errors.New("unsupported kernel")
	// ErrTransformFailed: malleable code generation failed.
	ErrTransformFailed = errors.New("transform failed")
	// ErrAnalysisFailed: static feature extraction failed.
	ErrAnalysisFailed = errors.New("analysis failed")
	// ErrModelInvalid: a model failed to load, failed validation, or
	// produced a non-finite / out-of-range prediction.
	ErrModelInvalid = errors.New("model invalid")
	// ErrExecTimeout: a managed execution exceeded its watchdog deadline.
	ErrExecTimeout = errors.New("execution timed out")
	// ErrExecFailed: a managed execution failed for another reason.
	ErrExecFailed = errors.New("execution failed")
	// ErrPanic: a panic was contained at a package boundary.
	ErrPanic = errors.New("panic contained")
	// ErrInjected: the failure was forced by the injection registry.
	ErrInjected = errors.New("injected fault")
)

// Error is a stage-classified error. It wraps the underlying cause so
// both errors.Is(err, sentinel) and StageOf(err) work through arbitrary
// fmt.Errorf("...: %w", ...) chains above it.
type Error struct {
	Stage Stage
	Err   error
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("dopia[%s]: %v", e.Stage, e.Err) }

// Unwrap exposes the cause.
func (e *Error) Unwrap() error { return e.Err }

// Wrap classifies err with a stage. A nil err returns nil. If err is
// already stage-classified (at any depth), the existing classification is
// kept — the innermost stage is the point of origin.
func Wrap(stage Stage, err error) error {
	if err == nil {
		return nil
	}
	if StageOf(err) != StageUnknown {
		return err
	}
	return &Error{Stage: stage, Err: err}
}

// Wrapf classifies err with a stage and adds printf-style context.
func Wrapf(stage Stage, err error, format string, args ...any) error {
	if err == nil {
		return nil
	}
	return Wrap(stage, fmt.Errorf(format+": %w", append(args, err)...))
}

// StageOf extracts the stage classification of an error, or StageUnknown
// when the error carries none.
func StageOf(err error) Stage {
	var fe *Error
	if errors.As(err, &fe) {
		return fe.Stage
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		return pe.Stage
	}
	return StageUnknown
}

// PanicError is a contained panic, classified by stage. It wraps ErrPanic
// and records the recovered value and the stack at the recovery point.
type PanicError struct {
	Stage Stage
	Value any
	Stack []byte
}

// Error implements the error interface.
func (p *PanicError) Error() string {
	return fmt.Sprintf("dopia[%s]: %v: %v", p.Stage, ErrPanic, p.Value)
}

// Unwrap classifies PanicError as ErrPanic.
func (p *PanicError) Unwrap() error { return ErrPanic }

// Recover is the panic-containment boundary. Deferred at every public
// entry point of the pipeline packages, it converts a panic into a
// stage-classified *PanicError assigned to *errp (only when the panic
// would otherwise escape; an existing error is preserved if no panic is
// in flight). Usage:
//
//	func Analyze(k *clc.Kernel) (res *Result, err error) {
//	    defer faults.Recover(faults.StageAnalysis, &err)
//	    ...
//	}
func Recover(stage Stage, errp *error) {
	if r := recover(); r != nil {
		*errp = &PanicError{Stage: stage, Value: r, Stack: debug.Stack()}
	}
}

// IsTimeout reports whether err is classified as a watchdog timeout.
func IsTimeout(err error) bool { return errors.Is(err, ErrExecTimeout) }

// IsPanic reports whether err is a contained panic.
func IsPanic(err error) bool { return errors.Is(err, ErrPanic) }

// IsInjected reports whether err was forced by the injection registry.
func IsInjected(err error) bool { return errors.Is(err, ErrInjected) }
