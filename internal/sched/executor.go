// Package sched implements Dopia's runtime workload management
// (Algorithm 1 of the paper) on top of the performance simulator: it owns
// the CPU-side and malleable-GPU-side interpreters for one kernel, builds
// the kernel's performance model by sampled profiling, and functionally
// executes exactly the spans of work-groups the simulated schedule assigns
// to each device — pull-based single work-groups for CPU cores, push-based
// chunks for the GPU.
package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"dopia/internal/analysis"
	"dopia/internal/clc"
	"dopia/internal/faults"
	"dopia/internal/interp"
	"dopia/internal/sim"
)

// Executor runs one kernel on one simulated machine.
type Executor struct {
	Machine *sim.Machine
	// AssumeMalleable charges GPU chunks with the malleable-kernel
	// overhead even when no malleable kernel was supplied (timing-only
	// sweeps that model Dopia's execution without generating code).
	AssumeMalleable bool

	orig      *clc.Kernel
	malleable *clc.Kernel // nil when the GPU runs the original kernel

	cpuEx *interp.Exec
	gpuEx *interp.Exec

	analysis *analysis.Result
	args     []interp.Arg
	nd       interp.NDRange
	bound    bool
	launched bool

	// mu guards the lazily built model and the timing-result cache, so
	// timing-only Run calls (which touch no interpreter state once the
	// model exists) are safe to issue from multiple goroutines. Functional
	// runs mutate buffers and interpreters and must stay single-threaded.
	mu       sync.Mutex
	model    *sim.KernelModel
	simCache map[simKey]sim.Result
}

// simKey identifies one timing-only simulation of the current binding and
// launch. sim.Simulate is a pure function of (machine, model, these
// knobs), so its result is memoized per executor; Bind and Launch
// invalidate the cache together with the model.
type simKey struct {
	cfg      sim.Config
	dist     sim.Distribution
	cpuShare float64
	chunkDiv int
	chunkWGs int
	minChunk int
	extra    float64
	plainGPU bool
}

// NewExecutor creates an executor for the original kernel and (optionally)
// its malleable GPU form. Pass malleable == nil to run the unmodified
// kernel on the GPU (the plain OpenCL baseline).
func NewExecutor(m *sim.Machine, orig, malleable *clc.Kernel) (*Executor, error) {
	e := &Executor{Machine: m, orig: orig, malleable: malleable}
	var err error
	if e.cpuEx, err = interp.NewExec(orig); err != nil {
		return nil, err
	}
	gk := orig
	if malleable != nil {
		gk = malleable
	}
	if e.gpuEx, err = interp.NewExec(gk); err != nil {
		return nil, err
	}
	// Both executors address the same buffers: share one address space.
	e.gpuEx.AS = e.cpuEx.AS
	if e.analysis, err = analysis.Analyze(orig); err != nil {
		return nil, err
	}
	return e, nil
}

// Analysis returns the static analysis of the kernel.
func (e *Executor) Analysis() *analysis.Result { return e.analysis }

// EngineUsed reports the interpreter engine of the CPU-side executor for
// the current launch, and — when the bytecode engine was requested but
// this kernel fell back to closures — the reason (see interp.Exec).
func (e *Executor) EngineUsed() (interp.Engine, string) { return e.cpuEx.EngineUsed() }

// Bind sets the kernel arguments (the original kernel's signature).
func (e *Executor) Bind(args ...interp.Arg) error {
	if err := e.cpuEx.Bind(args...); err != nil {
		return err
	}
	if e.malleable != nil {
		// The malleable kernel appends (dop_gpu_mod, dop_gpu_alloc);
		// bind placeholders now, configured per run.
		gargs := append(append([]interp.Arg(nil), args...),
			interp.IntArg(8), interp.IntArg(8))
		if err := e.gpuEx.Bind(gargs...); err != nil {
			return err
		}
	} else {
		if err := e.gpuEx.Bind(args...); err != nil {
			return err
		}
	}
	e.args = append([]interp.Arg(nil), args...)
	e.bound = true
	e.invalidate()
	return nil
}

// invalidate drops the model and every cached simulation result; called
// whenever the binding or launch geometry changes.
func (e *Executor) invalidate() {
	e.mu.Lock()
	e.model = nil
	e.simCache = nil
	e.mu.Unlock()
}

// Launch sets the ND range for subsequent runs.
func (e *Executor) Launch(nd interp.NDRange) error {
	if err := nd.Validate(); err != nil {
		return err
	}
	e.nd = nd
	e.launched = true
	e.invalidate()
	return nil
}

// writtenArgs returns the parameter indices the kernel writes, from the
// static analysis — indexed store sites plus atomic builtin targets
// (which write through a bare pointer and never appear as sites).
func (e *Executor) writtenArgs() []int {
	seen := map[int]bool{}
	var out []int
	for _, s := range e.analysis.Sites {
		if s.Write && s.ArgIndex >= 0 && !seen[s.ArgIndex] {
			seen[s.ArgIndex] = true
			out = append(out, s.ArgIndex)
		}
	}
	for _, ai := range e.analysis.AtomicArgs {
		if !seen[ai] {
			seen[ai] = true
			out = append(out, ai)
		}
	}
	return out
}

// ProfileSampleWGs is the default number of work-groups executed to build
// the performance model.
const ProfileSampleWGs = 4

// Model returns the kernel's performance model, building it on first use
// by executing a sampled subset of work-groups. Output buffers are
// snapshotted and restored, so profiling leaves no functional trace even
// for read-modify-write kernels.
func (e *Executor) Model() (*sim.KernelModel, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.model != nil {
		return e.model, nil
	}
	if !e.bound || !e.launched {
		return nil, fmt.Errorf("sched: executor not bound/launched")
	}
	// Snapshot written buffers.
	type snap struct {
		arg int
		buf *interp.Buffer
	}
	var snaps []snap
	for _, ai := range e.writtenArgs() {
		if a := e.args[ai]; a.IsBuf {
			snaps = append(snaps, snap{ai, a.Buf.Clone()})
		}
	}
	e.cpuEx.ResetStats()
	if err := e.cpuEx.Launch(e.nd); err != nil {
		return nil, err
	}
	if _, err := e.cpuEx.RunSampled(ProfileSampleWGs); err != nil {
		return nil, err
	}
	prof := e.cpuEx.Stats()
	// Restore.
	for _, s := range snaps {
		restoreBuffer(e.args[s.arg].Buf, s.buf)
	}
	bufBytes := map[int]int64{}
	for i, a := range e.args {
		if a.IsBuf {
			bufBytes[i] = a.Buf.Bytes()
		}
	}
	km, err := sim.BuildModel(e.orig.Name, prof, e.analysis, bufBytes, e.nd)
	if err != nil {
		return nil, err
	}
	e.model = km
	return km, nil
}

func restoreBuffer(dst, src *interp.Buffer) {
	copy(dst.F32, src.F32)
	copy(dst.I32, src.I32)
	copy(dst.F64, src.F64)
	copy(dst.I64, src.I64)
}

// RunOptions configure one simulated+functional execution.
type RunOptions struct {
	Dist     sim.Distribution
	CPUShare float64 // for Static
	// Functional disables/enables the functional execution of spans;
	// timing-only sweeps leave it false.
	Functional bool
	// ExtraStartupSec charges one-time runtime overhead (model inference).
	ExtraStartupSec float64
	// GPUChunkDiv overrides the dynamic GPU chunk divisor (default 10).
	GPUChunkDiv int
	// ChunkWGs sets the WorkQueue scheduler's fixed chunk size
	// (0 = NumWGs/16).
	ChunkWGs int
	// MinChunkWGs floors the HGuided scheduler's shrinking chunks
	// (0 = one allocation unit).
	MinChunkWGs int
	// Context, when non-nil, bounds the functional execution: it is
	// polled before every span and every work-group, so a pathological
	// ND range cannot wedge the host application past the deadline. A
	// deadline hit is classified as faults.ErrExecTimeout.
	Context context.Context
}

// ctxErr translates a context failure into the taxonomy: deadline hits
// become watchdog timeouts, cancellations become execution failures.
func ctxErr(ctx context.Context) error {
	switch err := ctx.Err(); {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return faults.Wrap(faults.StageExec,
			fmt.Errorf("%w: %w", faults.ErrExecTimeout, err))
	default:
		return faults.Wrap(faults.StageExec,
			fmt.Errorf("%w: %w", faults.ErrExecFailed, err))
	}
}

// Run executes the kernel under the given DoP configuration, returning
// the simulation result. When opts.Functional is set, every span the
// simulated schedule assigns is executed by the matching interpreter, so
// buffers hold the kernel's true output afterwards. Panics below this
// boundary are contained and returned as classified errors; a
// opts.Context deadline aborts the run with faults.ErrExecTimeout.
func (e *Executor) Run(cfg sim.Config, opts RunOptions) (res *sim.Result, err error) {
	defer faults.Recover(faults.StageExec, &err)
	km, err := e.Model()
	if err != nil {
		return nil, err
	}
	// Timing-only runs are pure functions of the model and the knobs
	// below: memoize them. The cache is bypassed while fault injection is
	// armed so injected faults keep their exact hit sequence.
	var key simKey
	timingOnly := !opts.Functional
	if timingOnly && !faults.Active() {
		key = simKey{
			cfg:      cfg,
			dist:     opts.Dist,
			cpuShare: opts.CPUShare,
			chunkDiv: opts.GPUChunkDiv,
			chunkWGs: opts.ChunkWGs,
			minChunk: opts.MinChunkWGs,
			extra:    opts.ExtraStartupSec,
			plainGPU: e.malleable == nil && !e.AssumeMalleable,
		}
		e.mu.Lock()
		r, ok := e.simCache[key]
		e.mu.Unlock()
		if ok {
			rc := r
			return &rc, nil
		}
	}
	var onSpan sim.SpanFunc
	if opts.Functional {
		if err := e.prepareFunctional(cfg); err != nil {
			return nil, err
		}
		onSpan = e.spanFunc(cfg)
		if ctx := opts.Context; ctx != nil {
			// Watchdog: poll the context before every span and, through
			// the interpreters' Check hook, before every work-group.
			check := func() error { return ctxErr(ctx) }
			e.cpuEx.Check, e.gpuEx.Check = check, check
			defer func() { e.cpuEx.Check, e.gpuEx.Check = nil, nil }()
			inner := onSpan
			onSpan = func(device string, start, count int) error {
				if cerr := check(); cerr != nil {
					return cerr
				}
				return inner(device, start, count)
			}
		}
	}
	res, err = sim.Simulate(e.Machine, km, cfg, opts.Dist, sim.SimOptions{
		CPUShare:        opts.CPUShare,
		GPUChunkDiv:     opts.GPUChunkDiv,
		ChunkWGs:        opts.ChunkWGs,
		MinChunkWGs:     opts.MinChunkWGs,
		OnSpan:          onSpan,
		ExtraStartupSec: opts.ExtraStartupSec,
		PlainGPU:        e.malleable == nil && !e.AssumeMalleable,
	})
	if err == nil && timingOnly && !faults.Active() {
		e.mu.Lock()
		if e.simCache == nil {
			e.simCache = map[simKey]sim.Result{}
		}
		e.simCache[key] = *res
		e.mu.Unlock()
	}
	return res, err
}

// RunConfigs runs one simulation per configuration and returns the
// results in configuration order. Timing-only sweeps (the 44-config DoP
// sweep of the training pipeline, the scheduler's per-launch decision)
// are embarrassingly parallel and fan out across GOMAXPROCS goroutines;
// functional sweeps mutate interpreter and buffer state and therefore run
// sequentially. On error the lowest-indexed failure wins.
func (e *Executor) RunConfigs(cfgs []sim.Config, opts RunOptions) ([]*sim.Result, error) {
	results := make([]*sim.Result, len(cfgs))
	if opts.Functional || len(cfgs) < 2 {
		for i, cfg := range cfgs {
			r, err := e.Run(cfg, opts)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}
	// Build the model once, on this goroutine, before fanning out.
	if _, err := e.Model(); err != nil {
		return nil, err
	}
	errs := make([]error, len(cfgs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i := range cfgs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i], errs[i] = e.Run(cfgs[i], opts)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

func (e *Executor) prepareFunctional(cfg sim.Config) error {
	if err := e.cpuEx.Launch(e.nd); err != nil {
		return err
	}
	if e.malleable != nil && cfg.GPUFrac > 0 {
		mod, alloc := sim.DopParams(cfg.GPUFrac)
		n := len(e.args)
		if err := e.gpuEx.SetArg(n, interp.IntArg(mod)); err != nil {
			return err
		}
		if err := e.gpuEx.SetArg(n+1, interp.IntArg(alloc)); err != nil {
			return err
		}
	}
	return nil
}

// spanFunc returns the functional span executor: CPU spans run work-groups
// of the full ND range on the original kernel; GPU spans are dispatched as
// offset sub-range launches of the (malleable) GPU kernel, exactly like
// Dopia's push-based chunks.
func (e *Executor) spanFunc(cfg sim.Config) sim.SpanFunc {
	return func(device string, start, count int) error {
		switch device {
		case "cpu":
			return e.cpuEx.RunGroupSpan(start, count)
		case "gpu":
			sub, err := e.nd.SubRange(start, count)
			if err != nil {
				return err
			}
			if err := e.gpuEx.Launch(sub); err != nil {
				return err
			}
			return e.gpuEx.Run()
		}
		return fmt.Errorf("sched: unknown device %q", device)
	}
}

// BestStatic sweeps the paper's 19 static splits (5%..95% to the CPU) and
// returns the best share and its result (the Figure 9 "STATIC" baseline).
// The splits are timing-only and simulated in parallel; scanning the
// results in share order keeps the tie-breaking identical to the old
// sequential sweep (lowest share wins ties).
func (e *Executor) BestStatic(cfg sim.Config) (float64, *sim.Result, error) {
	if _, err := e.Model(); err != nil {
		return 0, nil, err
	}
	const n = 19
	results := make([]*sim.Result, n)
	errs := make([]error, n)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			share := float64(i+1) * 0.05
			results[i], errs[i] = e.Run(cfg, RunOptions{Dist: sim.Static, CPUShare: share})
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, nil, err
		}
	}
	var bestShare float64
	var best *sim.Result
	for i, r := range results {
		if best == nil || r.Time < best.Time {
			best, bestShare = r, float64(i+1)*0.05
		}
	}
	return bestShare, best, nil
}
