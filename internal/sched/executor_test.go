package sched

import (
	"testing"

	"dopia/internal/interp"
	"dopia/internal/sim"
	"dopia/internal/transform"
	"dopia/internal/workloads"
)

// newWorkloadExecutor builds an executor for a workload with its malleable
// transform, plus a reference instance executed directly.
func newWorkloadExecutor(t *testing.T, w *workloads.Workload) (*Executor, *workloads.Instance, *workloads.Instance) {
	t.Helper()
	k, err := w.CompileKernel()
	if err != nil {
		t.Fatal(err)
	}
	mall, err := transform.MalleableGPU(k, w.WorkDim)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewExecutor(sim.Kaveri(), k, mall.Kernel)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := w.Setup()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Bind(inst.Args...); err != nil {
		t.Fatal(err)
	}
	if err := e.Launch(inst.ND); err != nil {
		t.Fatal(err)
	}

	// Reference: direct full interpretation of the original kernel.
	ref, err := w.Setup()
	if err != nil {
		t.Fatal(err)
	}
	ex, err := interp.NewExec(k)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Bind(ref.Args...); err != nil {
		t.Fatal(err)
	}
	if err := ex.Launch(ref.ND); err != nil {
		t.Fatal(err)
	}
	if err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	return e, inst, ref
}

func checkOutputs(t *testing.T, name string, inst, ref *workloads.Instance) {
	t.Helper()
	for _, oi := range ref.OutputArgs {
		if !inst.Args[oi].Buf.Equal(ref.Args[oi].Buf) {
			t.Fatalf("%s: co-executed output arg %d differs from reference", name, oi)
		}
	}
}

func TestFunctionalCoExecution1D(t *testing.T) {
	w, err := workloads.RealWorkloads(256, 64)
	if err != nil {
		t.Fatal(err)
	}
	// GESUMMV (index 8) is 1-D with a single output.
	e, inst, ref := newWorkloadExecutor(t, w[8])
	cfg := sim.Config{CPUCores: 3, GPUFrac: 0.375}
	res, err := e.Run(cfg, RunOptions{Dist: sim.Dynamic, Functional: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.WGsCPU == 0 || res.WGsGPU == 0 {
		t.Errorf("expected both devices to process work: cpu=%d gpu=%d", res.WGsCPU, res.WGsGPU)
	}
	checkOutputs(t, w[8].Name, inst, ref)
}

func TestFunctionalCoExecution2D(t *testing.T) {
	w, err := workloads.RealWorkloads(256, 64)
	if err != nil {
		t.Fatal(err)
	}
	// 2DCONV (index 0) is 2-D.
	e, inst, ref := newWorkloadExecutor(t, w[0])
	cfg := sim.Config{CPUCores: 2, GPUFrac: 0.5}
	res, err := e.Run(cfg, RunOptions{Dist: sim.Dynamic, Functional: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.WGsCPU+res.WGsGPU == 0 {
		t.Fatal("no work executed")
	}
	checkOutputs(t, w[0].Name, inst, ref)
}

func TestFunctionalStaticSplit(t *testing.T) {
	w, err := workloads.RealWorkloads(256, 64)
	if err != nil {
		t.Fatal(err)
	}
	e, inst, ref := newWorkloadExecutor(t, w[8])
	cfg := sim.Kaveri().AllResources()
	if _, err := e.Run(cfg, RunOptions{Dist: sim.Static, CPUShare: 0.45, Functional: true}); err != nil {
		t.Fatal(err)
	}
	checkOutputs(t, w[8].Name, inst, ref)
}

// TestRMWKernelProfileIsInvisible verifies that profiling a read-modify-
// write kernel (MVT1 accumulates into x1) does not corrupt the output.
func TestRMWKernelProfileIsInvisible(t *testing.T) {
	w, err := workloads.RealWorkloads(256, 64)
	if err != nil {
		t.Fatal(err)
	}
	// MVT1 is index 9.
	e, inst, ref := newWorkloadExecutor(t, w[9])
	// Force model construction (profiles sampled WGs), then run.
	if _, err := e.Model(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(sim.Config{CPUCores: 4, GPUFrac: 0.25},
		RunOptions{Dist: sim.Dynamic, Functional: true}); err != nil {
		t.Fatal(err)
	}
	checkOutputs(t, w[9].Name, inst, ref)
}

func TestBestStaticSweep(t *testing.T) {
	w, err := workloads.RealWorkloads(256, 64)
	if err != nil {
		t.Fatal(err)
	}
	e, _, _ := newWorkloadExecutor(t, w[8])
	cfg := sim.Kaveri().AllResources()
	share, best, err := e.BestStatic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if share < 0.05 || share > 0.95 {
		t.Errorf("best share %v out of sweep range", share)
	}
	// The best static split cannot be worse than an arbitrary one.
	other, err := e.Run(cfg, RunOptions{Dist: sim.Static, CPUShare: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if best.Time > other.Time+1e-12 {
		t.Errorf("best static (%v) worse than 10%% split (%v)", best.Time, other.Time)
	}
}

func TestModelCaching(t *testing.T) {
	w, err := workloads.RealWorkloads(256, 64)
	if err != nil {
		t.Fatal(err)
	}
	e, _, _ := newWorkloadExecutor(t, w[8])
	m1, err := e.Model()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := e.Model()
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Error("model not cached across calls")
	}
	// Re-binding invalidates the cache.
	inst, _ := w[8].Setup()
	if err := e.Bind(inst.Args...); err != nil {
		t.Fatal(err)
	}
	if err := e.Launch(inst.ND); err != nil {
		t.Fatal(err)
	}
	m3, err := e.Model()
	if err != nil {
		t.Fatal(err)
	}
	if m3 == m1 {
		t.Error("model cache not invalidated by rebind")
	}
}

func TestRunErrors(t *testing.T) {
	w, err := workloads.RealWorkloads(256, 64)
	if err != nil {
		t.Fatal(err)
	}
	k, err := w[8].CompileKernel()
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewExecutor(sim.Kaveri(), k, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Model(); err == nil {
		t.Error("expected error for unbound executor")
	}
	inst, _ := w[8].Setup()
	if err := e.Bind(inst.Args...); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Model(); err == nil {
		t.Error("expected error before Launch")
	}
	if err := e.Launch(interp.NDRange{Dims: 1, Global: [3]int{7, 1, 1}, Local: [3]int{2, 1, 1}}); err == nil {
		t.Error("expected error for indivisible ND range")
	}
}
