package online

// driftWindow is a fixed-size ring of recent absolute prediction errors
// (|predicted normalized perf - realized normalized perf|) for one
// tenant. When the window is full and its mean error exceeds the
// threshold, the tenant has drifted away from what its published model
// believes and a retrain is forced. The window resets after each
// detection so one sustained drift episode fires once per refill rather
// than on every launch.
type driftWindow struct {
	errs []float64
	n    int // valid entries (ramps up to len(errs))
	pos  int
	sum  float64
}

func newDriftWindow(size int) *driftWindow {
	if size < 1 {
		size = 1
	}
	return &driftWindow{errs: make([]float64, size)}
}

// push records one prediction error and reports whether the full window
// now exceeds the threshold.
func (d *driftWindow) push(err, threshold float64) bool {
	if err < 0 {
		err = -err
	}
	if d.n == len(d.errs) {
		d.sum -= d.errs[d.pos]
	} else {
		d.n++
	}
	d.errs[d.pos] = err
	d.sum += err
	d.pos = (d.pos + 1) % len(d.errs)
	return d.n == len(d.errs) && d.mean() > threshold
}

func (d *driftWindow) mean() float64 {
	if d.n == 0 {
		return 0
	}
	return d.sum / float64(d.n)
}

// reset empties the window (after a drift detection or a hot swap, so
// the new model is judged on its own errors).
func (d *driftWindow) reset() {
	for i := range d.errs {
		d.errs[i] = 0
	}
	d.n, d.pos, d.sum = 0, 0, 0
}
