// Package online closes the Dopia loop: it turns every served launch
// into a training signal and feeds the result back into the decision
// path with zero downtime. The paper trains its models offline and
// freezes them; a serving system under a drifting tenant mix decays
// toward the static baseline the paper argues against. This package
// implements the production counterpart — a streaming collector, a
// per-tenant incremental trainer warm-started from the global offline
// model, a guarded bandit exploration layer with a regret budget
// enforced against the memoized oracle sweep, a per-tenant drift
// detector, and an atomic hot-swap path that publishes new model
// generations into core.Framework while in-flight launches finish on
// the model they started with.
package online

import (
	"dopia/internal/ml"
)

// sig identifies one launch signature: the kernel plus the
// configuration-independent feature vector (code features + geometry).
// Two launches with equal signatures have identical DoP timing rows, so
// the oracle sweep, the bandit arm statistics, and the learned
// performance table are all keyed by it.
type sig struct {
	Kernel string
	Base   ml.Features
}

// tenantModel is the hybrid model published for one tenant. Predictions
// resolve in three layers:
//
//  1. exact: the feature vector matches a (signature, config) row whose
//     oracle-sweep time is in the learned window — return the measured
//     normalized performance (this makes the decision sweep reproduce
//     the oracle argmax for every signature the tenant has launched
//     recently);
//  2. learned: the sliding-window ridge regressor, blended toward it as
//     the window fills (alpha ramps 0→1), so a cold tenant
//     predicts exactly like the global model (warm start) and a warm
//     tenant predicts from its own traffic;
//  3. global: the offline base model, or 0 when none was configured.
//
// A tenantModel is immutable once published; retraining builds a new
// one and hot-swaps it under a fresh generation.
type tenantModel struct {
	name  string
	perf  map[ml.Features]float64 // exact layer: full feature vector -> measured normalized perf
	ridge ml.Model                // learned layer (nil until first successful fit)
	alpha float64                 // blend weight of the learned layer
	base  ml.Model                // global fallback (may be nil)
}

// Name implements ml.Model.
func (t *tenantModel) Name() string { return t.name }

// Predict implements ml.Model. Must stay pure and deterministic: the
// framework memoizes predictions per (generation, features).
func (t *tenantModel) Predict(x ml.Features) float64 {
	if v, ok := t.perf[x]; ok {
		return v
	}
	var online, global float64
	if t.ridge != nil {
		online = t.ridge.Predict(x)
	}
	if t.base != nil {
		global = t.base.Predict(x)
	}
	if t.ridge == nil {
		return global
	}
	if t.base == nil {
		return online
	}
	return t.alpha*online + (1-t.alpha)*global
}
