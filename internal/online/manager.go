package online

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dopia/internal/core"
	"dopia/internal/ml"
	"dopia/internal/sim"
)

// Config tunes one Manager. The zero value of every knob selects the
// documented default.
type Config struct {
	// Machine is the DoP configuration space (required).
	Machine *sim.Machine
	// Base is the global offline model every tenant warm-starts from
	// (may be nil: tenants then learn from scratch over the ALL
	// baseline).
	Base ml.Model

	// WindowLaunches is the per-tenant sliding-window size in launches;
	// each launch contributes one oracle row (44 training samples).
	// Default 128.
	WindowLaunches int
	// MinLaunches is the smallest window that may be retrained into a
	// published model. Default 4.
	MinLaunches int
	// RetrainEvery retrains after this many launches carrying new
	// signatures since the last swap. Default 8.
	RetrainEvery int
	// WarmupLaunches controls the warm-start blend: the learned ridge
	// layer's weight ramps linearly from 0 to 1 as the window fills to
	// this many launches. Default 32.
	WarmupLaunches int

	// Policy selects the exploration policy (PolicyOff, PolicyEpsilon,
	// PolicyUCB). Default PolicyEpsilon.
	Policy string
	// Epsilon is the exploration rate: the probability that an eligible
	// launch is given to the bandit instead of the model argmax.
	// Default 0.05; <= 0 with DefaultEpsilon semantics only via
	// PolicyOff (set a negative value to force 0).
	Epsilon float64
	// UCBBonus is the UCB1 confidence coefficient. Default 0.5.
	UCBBonus float64
	// RegretBudget bounds the cumulative relative regret
	// (sum over explored launches of (t_arm - t_best)/t_best) each
	// tenant may spend on exploration over its lifetime. The charge is
	// computed from the memoized oracle sweep at decision time, so the
	// budget can never be exceeded retroactively. Default 2.0.
	RegretBudget float64

	// DriftWindow is the per-tenant prediction-error window size.
	// Default 16.
	DriftWindow int
	// DriftThreshold is the mean absolute prediction error (in
	// normalized-performance units) above which a full window signals
	// drift and forces a retrain. Default 0.2.
	DriftThreshold float64

	// QueueDepth bounds the collector channel between launch workers
	// and the learner goroutine; a full queue drops samples rather than
	// blocking the launch path. Default 256.
	QueueDepth int
	// Seed makes exploration deterministic. Default 1.
	Seed int64
	// OnSwap, when set, is called after each hot swap with the tenant
	// and the new generation (test/metrics hook; called with the
	// tenant's lock held — keep it cheap).
	OnSwap func(tenant string, gen uint64)
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.WindowLaunches <= 0 {
		out.WindowLaunches = 128
	}
	if out.MinLaunches <= 0 {
		out.MinLaunches = 4
	}
	if out.RetrainEvery <= 0 {
		out.RetrainEvery = 8
	}
	if out.WarmupLaunches <= 0 {
		out.WarmupLaunches = 32
	}
	if out.Policy == "" {
		out.Policy = PolicyEpsilon
	}
	if out.Epsilon == 0 {
		out.Epsilon = 0.05
	}
	if out.Epsilon < 0 {
		out.Epsilon = 0
	}
	if out.UCBBonus <= 0 {
		out.UCBBonus = 0.5
	}
	if out.RegretBudget == 0 {
		out.RegretBudget = 2.0
	}
	if out.DriftWindow <= 0 {
		out.DriftWindow = 16
	}
	if out.DriftThreshold <= 0 {
		out.DriftThreshold = 0.2
	}
	if out.QueueDepth <= 0 {
		out.QueueDepth = 256
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	return out
}

// published is one immutable (model, generation) snapshot for a tenant.
type published struct {
	model  ml.Model
	gen    uint64
	prov   ml.Provenance
	reason string
}

// tenantState is the learner's view of one tenant. pub is read on the
// decision hot path (atomic); everything else is guarded by mu and
// touched by the learner goroutine and the Explore hook.
type tenantState struct {
	name string
	pub  atomic.Pointer[published]

	mu         sync.Mutex
	window     []sig       // sliding window of launches, oldest first
	inWindow   map[sig]int // signature refcounts over the window
	pubSigs    map[sig]bool
	ridge      ml.OnlineRidge
	drift      *driftWindow
	arms       map[sig]*armStats
	regret     float64 // cumulative exploration regret spent
	explores   int64
	launches   int64
	sinceSwap  int
	pendingNew int
	drifts     int64
	lastReason string
}

// Manager implements core.Advisor: the complete online-learning loop.
// Create with New, attach with Attach, stop with Close.
type Manager struct {
	cfg      Config
	machine  *sim.Machine
	base     ml.Model
	baseProv ml.Provenance
	cfgs     []sim.Config
	cfgIdx   map[sim.Config]int
	fw       *core.Framework

	gen atomic.Uint64 // generation counter; 1 = the shared base model

	mu      sync.RWMutex
	tenants map[string]*tenantState

	sigMu  sync.RWMutex
	sigTab map[sig]*oracleRow

	rngMu sync.Mutex
	rng   *rand.Rand

	ch    chan core.LaunchSample
	stopc chan struct{}
	done  chan struct{}

	ingested     atomic.Int64
	dropped      atomic.Int64
	processed    atomic.Int64
	sweeps       atomic.Int64
	sweepErrs    atomic.Int64
	retrains     atomic.Int64
	swaps        atomic.Int64
	explorations atomic.Int64
	driftDet     atomic.Int64
}

// New creates a Manager and starts its learner goroutine.
func New(cfg Config) (*Manager, error) {
	if cfg.Machine == nil {
		return nil, fmt.Errorf("online: Config.Machine is required")
	}
	c := cfg.withDefaults()
	switch c.Policy {
	case PolicyOff, PolicyEpsilon, PolicyUCB:
	default:
		return nil, fmt.Errorf("online: unknown exploration policy %q", c.Policy)
	}
	m := &Manager{
		cfg:     c,
		machine: c.Machine,
		base:    ml.Unwrap(c.Base),
		cfgs:    c.Machine.Configs(),
		tenants: map[string]*tenantState{},
		sigTab:  map[sig]*oracleRow{},
		rng:     rand.New(rand.NewSource(c.Seed)),
		ch:      make(chan core.LaunchSample, c.QueueDepth),
		stopc:   make(chan struct{}),
		done:    make(chan struct{}),
	}
	if p, ok := ml.ProvenanceOf(c.Base); ok {
		m.baseProv = p
	}
	m.cfgIdx = configIndex(m.cfgs)
	m.gen.Store(1) // generation 1 is the shared base model
	go m.run()
	return m, nil
}

// Attach wires the manager into a framework: the framework consults it
// for models and exploration and feeds completed launches back.
func (m *Manager) Attach(fw *core.Framework) {
	m.fw = fw
	fw.SetAdvisor(m)
}

// Close stops the learner goroutine. Samples still queued are dropped;
// call Sync first to drain. The manager must be detached (or the
// framework torn down) before Close so Observe is no longer invoked.
func (m *Manager) Close() {
	select {
	case <-m.stopc:
		return
	default:
	}
	close(m.stopc)
	<-m.done
}

// Sync blocks until every sample accepted so far has been processed by
// the learner, or the timeout elapses. Test and shutdown helper.
func (m *Manager) Sync(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if m.processed.Load() >= m.ingested.Load() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// ModelFor implements core.Advisor. Reads only atomics and an RLocked
// map lookup: the decision hot path never contends with the learner.
func (m *Manager) ModelFor(tenant string) (ml.Model, uint64) {
	if ts := m.lookup(tenant); ts != nil {
		if p := ts.pub.Load(); p != nil {
			return p.model, p.gen
		}
	}
	return m.base, 1
}

// Observe implements core.Advisor: the streaming collector. Never
// blocks the launch path — a full queue drops the sample and counts it.
func (m *Manager) Observe(s core.LaunchSample) {
	select {
	case <-m.stopc:
		return
	default:
	}
	select {
	case m.ch <- s:
		m.ingested.Add(1)
	default:
		m.dropped.Add(1)
	}
}

// Explore implements core.Advisor: the guarded bandit. A launch is
// eligible only when its signature already has a memoized oracle row
// (so the regret charge is exact, never estimated) and the tenant has
// remaining regret budget. The charge is applied at decision time.
func (m *Manager) Explore(tenant, kernel string, base ml.Features, dec core.Decision) (sim.Config, bool) {
	if m.cfg.Policy == PolicyOff || m.cfg.Epsilon <= 0 {
		return sim.Config{}, false
	}
	sg := sig{Kernel: kernel, Base: base}
	m.sigMu.RLock()
	row := m.sigTab[sg]
	m.sigMu.RUnlock()
	if row == nil || row.best < 0 {
		return sim.Config{}, false
	}
	ts := m.lookup(tenant)
	if ts == nil {
		return sim.Config{}, false
	}
	m.rngMu.Lock()
	coin := m.rng.Float64()
	pick := m.rng.Intn(len(m.cfgs))
	m.rngMu.Unlock()
	if coin >= m.cfg.Epsilon {
		return sim.Config{}, false
	}
	exclude := -1
	if i, ok := m.cfgIdx[dec.Config]; ok {
		exclude = i
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	remaining := m.cfg.RegretBudget - ts.regret
	if remaining <= 0 {
		return sim.Config{}, false
	}
	arm := -1
	switch m.cfg.Policy {
	case PolicyEpsilon:
		if pick != exclude && row.regretOf(pick) <= remaining {
			arm = pick
		}
	case PolicyUCB:
		as := ts.arms[sg]
		if as == nil {
			as = newArmStats(len(m.cfgs))
			ts.arms[sg] = as
		}
		arm = pickUCB(as, row, m.cfg.UCBBonus, remaining, exclude)
	}
	if arm < 0 {
		return sim.Config{}, false
	}
	ts.regret += row.regretOf(arm)
	ts.explores++
	m.explorations.Add(1)
	return m.cfgs[arm], true
}

func (m *Manager) lookup(tenant string) *tenantState {
	m.mu.RLock()
	ts := m.tenants[tenant]
	m.mu.RUnlock()
	return ts
}

func (m *Manager) tenantState(tenant string) *tenantState {
	if ts := m.lookup(tenant); ts != nil {
		return ts
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if ts := m.tenants[tenant]; ts != nil {
		return ts
	}
	ts := &tenantState{
		name:     tenant,
		inWindow: map[sig]int{},
		pubSigs:  map[sig]bool{},
		drift:    newDriftWindow(m.cfg.DriftWindow),
		arms:     map[sig]*armStats{},
	}
	m.tenants[tenant] = ts
	return ts
}

// run is the learner goroutine: it drains the collector queue and, per
// sample, memoizes the oracle sweep, updates the tenant's window /
// ridge statistics / bandit arms / drift detector, and retrains + hot
// swaps when warranted.
func (m *Manager) run() {
	defer close(m.done)
	for {
		select {
		case <-m.stopc:
			return
		case s := <-m.ch:
			m.ingest(s)
			m.processed.Add(1)
		}
	}
}

// oracleRowFor returns the memoized ground-truth sweep of a signature,
// running (and memoizing) the sample's sweep closure on first sight.
func (m *Manager) oracleRowFor(sg sig, sweep func() ([]core.ConfigTime, error)) *oracleRow {
	m.sigMu.RLock()
	row := m.sigTab[sg]
	m.sigMu.RUnlock()
	if row != nil || sweep == nil {
		return row
	}
	cts, err := sweep()
	m.sweeps.Add(1)
	if err != nil || len(cts) != len(m.cfgs) {
		m.sweepErrs.Add(1)
		return nil
	}
	times := make([]float64, len(cts))
	for i, ct := range cts {
		if ct.Config != m.cfgs[i] || ct.Time <= 0 || math.IsNaN(ct.Time) || math.IsInf(ct.Time, 0) {
			m.sweepErrs.Add(1)
			return nil
		}
		times[i] = ct.Time
	}
	row = newOracleRow(times)
	m.sigMu.Lock()
	if prev, ok := m.sigTab[sg]; ok {
		row = prev
	} else {
		m.sigTab[sg] = row
	}
	m.sigMu.Unlock()
	return row
}

func (m *Manager) ingest(s core.LaunchSample) {
	sg := sig{Kernel: s.Kernel, Base: s.Base}
	row := m.oracleRowFor(sg, s.Sweep)
	if row == nil || row.best < 0 {
		return
	}
	ts := m.tenantState(s.Tenant)
	ts.mu.Lock()
	defer ts.mu.Unlock()

	// Bandit reward for the configuration that actually executed.
	if idx, ok := m.cfgIdx[s.Decision.Config]; ok {
		as := ts.arms[sg]
		if as == nil {
			as = newArmStats(len(m.cfgs))
			ts.arms[sg] = as
		}
		as.observe(idx, row.reward(idx))

		// Drift statistic: how far the published model's prediction for
		// the exploited choice was from the realized normalized
		// performance. Explored and model-less launches carry no
		// prediction to judge.
		if !s.Decision.Explored && !s.Decision.ModelDiscarded && s.Decision.Evaluated > 0 {
			if ts.drift.push(s.Decision.Predicted-row.reward(idx), m.cfg.DriftThreshold) {
				ts.drifts++
				m.driftDet.Add(1)
				m.publishLocked(ts, "drift")
			}
		}
	}

	// Slide the window: the new launch contributes one oracle row (44
	// training samples) to the ridge statistics; the evicted launch is
	// Forgotten exactly.
	ts.window = append(ts.window, sg)
	ts.inWindow[sg]++
	m.foldRow(&ts.ridge, sg, row, +1)
	for len(ts.window) > m.cfg.WindowLaunches {
		old := ts.window[0]
		ts.window = ts.window[1:]
		if ts.inWindow[old]--; ts.inWindow[old] <= 0 {
			delete(ts.inWindow, old)
		}
		m.sigMu.RLock()
		oldRow := m.sigTab[old]
		m.sigMu.RUnlock()
		if oldRow != nil {
			m.foldRow(&ts.ridge, old, oldRow, -1)
		}
	}
	ts.launches++
	ts.sinceSwap++
	if !ts.pubSigs[sg] {
		ts.pendingNew++
	}
	if ts.pendingNew > 0 && ts.sinceSwap >= m.cfg.RetrainEvery && len(ts.window) >= m.cfg.MinLaunches {
		m.publishLocked(ts, "retrain")
	}
}

// foldRow adds (sign=+1) or removes (sign=-1) one signature's oracle
// row from the tenant's ridge statistics: one training sample per DoP
// configuration, y = normalized performance.
func (m *Manager) foldRow(r *ml.OnlineRidge, sg sig, row *oracleRow, sign int) {
	for i, cfg := range m.cfgs {
		x := core.WithConfig(sg.Base, m.machine, cfg)
		y := row.reward(i)
		if sign > 0 {
			r.Observe(x, y)
		} else {
			r.Forget(x, y)
		}
	}
}

// publishLocked retrains the tenant's model from the current window and
// hot-swaps it in under a fresh generation. Called with ts.mu held. The
// swap is atomic: launches in flight keep the (model, generation) pair
// they resolved; the retired generation's prediction cache is dropped.
func (m *Manager) publishLocked(ts *tenantState, reason string) {
	if len(ts.window) == 0 {
		return
	}
	perf := make(map[ml.Features]float64, len(ts.inWindow)*len(m.cfgs))
	for sg := range ts.inWindow {
		m.sigMu.RLock()
		row := m.sigTab[sg]
		m.sigMu.RUnlock()
		if row == nil {
			continue
		}
		for i, cfg := range m.cfgs {
			perf[core.WithConfig(sg.Base, m.machine, cfg)] = row.reward(i)
		}
	}
	var ridgeM ml.Model
	if ts.ridge.Len() >= 2*len(m.cfgs) {
		if fit, err := ts.ridge.Fit(); err == nil {
			ridgeM = fit
		}
	}
	alpha := float64(len(ts.window)) / float64(m.cfg.WarmupLaunches)
	if alpha > 1 {
		alpha = 1
	}
	gen := m.gen.Add(1)
	parent := ""
	if m.base != nil {
		parent = m.base.Name()
	}
	tm := &tenantModel{
		name:  "ONLINE",
		perf:  perf,
		ridge: ridgeM,
		alpha: alpha,
		base:  m.base,
	}
	prov := ml.Provenance{
		Tenant:        ts.name,
		Generation:    gen,
		Samples:       ts.ridge.Len(),
		Origin:        "online",
		Parent:        parent,
		TrainedUnixMS: time.Now().UnixMilli(),
	}
	old := ts.pub.Swap(&published{model: tm, gen: gen, prov: prov, reason: reason})
	ts.pubSigs = make(map[sig]bool, len(ts.inWindow))
	for sg := range ts.inWindow {
		ts.pubSigs[sg] = true
	}
	ts.pendingNew = 0
	ts.sinceSwap = 0
	ts.lastReason = reason
	ts.drift.reset()
	m.retrains.Add(1)
	m.swaps.Add(1)
	if old != nil && m.fw != nil {
		// Generation-wise cache invalidation: the retired model's cached
		// predictions can never serve a future decision.
		m.fw.DropPredictionGeneration(old.gen)
	}
	if m.cfg.OnSwap != nil {
		m.cfg.OnSwap(ts.name, gen)
	}
}

// TenantStatus is one tenant's learner state for /v1/models and tests.
type TenantStatus struct {
	Tenant         string        `json:"tenant"`
	Generation     uint64        `json:"generation"`
	Model          string        `json:"model"`
	WindowLaunches int           `json:"window_launches"`
	Signatures     int           `json:"signatures"`
	RidgeSamples   int           `json:"ridge_samples"`
	Launches       int64         `json:"launches"`
	Explores       int64         `json:"explores"`
	Regret         float64       `json:"regret"`
	RegretBudget   float64       `json:"regret_budget"`
	MeanAbsErr     float64       `json:"mean_abs_err"`
	Drifts         int64         `json:"drifts"`
	SwapReason     string        `json:"swap_reason,omitempty"`
	Provenance     ml.Provenance `json:"provenance,omitempty"`
}

// Status is a consistent snapshot of the whole learner for /v1/models
// and the metrics endpoint.
type Status struct {
	Policy          string         `json:"policy"`
	Epsilon         float64        `json:"epsilon"`
	RegretBudget    float64        `json:"regret_budget"`
	BaseModel       string         `json:"base_model,omitempty"`
	Generation      uint64         `json:"generation"`
	SamplesIngested int64          `json:"samples_ingested"`
	SamplesDropped  int64          `json:"samples_dropped"`
	SamplesPending  int64          `json:"samples_pending"`
	Sweeps          int64          `json:"sweeps"`
	SweepErrors     int64          `json:"sweep_errors"`
	Retrains        int64          `json:"retrains"`
	Swaps           int64          `json:"swaps"`
	Explorations    int64          `json:"explorations"`
	DriftDetections int64          `json:"drift_detections"`
	Tenants         []TenantStatus `json:"tenants"`
}

// Status snapshots the manager. Safe to call concurrently with serving.
func (m *Manager) Status() Status {
	st := Status{
		Policy:          m.cfg.Policy,
		Epsilon:         m.cfg.Epsilon,
		RegretBudget:    m.cfg.RegretBudget,
		Generation:      m.gen.Load(),
		SamplesIngested: m.ingested.Load(),
		SamplesDropped:  m.dropped.Load(),
		SamplesPending:  m.ingested.Load() - m.processed.Load(),
		Sweeps:          m.sweeps.Load(),
		SweepErrors:     m.sweepErrs.Load(),
		Retrains:        m.retrains.Load(),
		Swaps:           m.swaps.Load(),
		Explorations:    m.explorations.Load(),
		DriftDetections: m.driftDet.Load(),
	}
	if m.base != nil {
		st.BaseModel = m.base.Name()
	}
	m.mu.RLock()
	names := make([]string, 0, len(m.tenants))
	for name := range m.tenants {
		names = append(names, name)
	}
	m.mu.RUnlock()
	sort.Strings(names)
	for _, name := range names {
		ts := m.lookup(name)
		if ts == nil {
			continue
		}
		t := TenantStatus{
			Tenant:       name,
			Generation:   1,
			RegretBudget: m.cfg.RegretBudget,
		}
		if m.base != nil {
			t.Model = m.base.Name()
		}
		if p := ts.pub.Load(); p != nil {
			t.Generation = p.gen
			t.Model = p.model.Name()
			t.Provenance = p.prov
		}
		ts.mu.Lock()
		t.WindowLaunches = len(ts.window)
		t.Signatures = len(ts.inWindow)
		t.RidgeSamples = ts.ridge.Len()
		t.Launches = ts.launches
		t.Explores = ts.explores
		t.Regret = ts.regret
		t.MeanAbsErr = ts.drift.mean()
		t.Drifts = ts.drifts
		t.SwapReason = ts.lastReason
		ts.mu.Unlock()
		st.Tenants = append(st.Tenants, t)
	}
	return st
}
