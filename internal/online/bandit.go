package online

import (
	"math"

	"dopia/internal/sim"
)

// Exploration policies over the machine's 44-configuration space.
const (
	PolicyOff     = "off"     // never explore
	PolicyEpsilon = "epsilon" // epsilon-greedy: random off-policy arm at rate Epsilon
	PolicyUCB     = "ucb"     // UCB1 over observed arm rewards, gated at rate Epsilon
)

// armStats holds the per-signature bandit state: how often each DoP
// configuration was actually executed for this signature and the mean
// observed reward (normalized performance, oracle-best / achieved).
type armStats struct {
	pulls []int
	mean  []float64
	total int
}

func newArmStats(n int) *armStats {
	return &armStats{pulls: make([]int, n), mean: make([]float64, n)}
}

// observe folds one executed (arm, reward) pair into the running means.
func (a *armStats) observe(arm int, reward float64) {
	a.pulls[arm]++
	a.total++
	a.mean[arm] += (reward - a.mean[arm]) / float64(a.pulls[arm])
}

// oracleRow is the memoized ground-truth sweep of one signature: the
// simulated time of every DoP configuration, indexed like
// Machine.Configs(), with the best row precomputed. Rows are immutable
// once built — the simulator is deterministic, so one sweep per
// signature is the whole truth.
type oracleRow struct {
	times    []float64
	best     int
	bestTime float64
}

func newOracleRow(times []float64) *oracleRow {
	r := &oracleRow{times: times, best: -1}
	for i, t := range times {
		if t > 0 && (r.best < 0 || t < r.bestTime) {
			r.best, r.bestTime = i, t
		}
	}
	return r
}

// reward returns the normalized performance of executing arm i
// (oracle-best time over arm time; 1 = optimal).
func (r *oracleRow) reward(i int) float64 {
	if i < 0 || i >= len(r.times) || r.times[i] <= 0 || r.bestTime <= 0 {
		return 0
	}
	return r.bestTime / r.times[i]
}

// regretOf returns the relative regret of executing arm i instead of
// the oracle best: (t_i - t_best) / t_best, >= 0.
func (r *oracleRow) regretOf(i int) float64 {
	if i < 0 || i >= len(r.times) || r.bestTime <= 0 {
		return math.Inf(1)
	}
	return (r.times[i] - r.bestTime) / r.bestTime
}

// pickUCB returns the arm with the highest UCB1 index among candidates
// whose projected regret fits within the remaining budget, or -1.
// Never-pulled arms rank first (infinite index), tie-broken by lowest
// projected regret so the cheapest unknown is tried before expensive
// ones.
func pickUCB(arms *armStats, row *oracleRow, bonus, remaining float64, exclude int) int {
	bestArm := -1
	bestIdx := math.Inf(-1)
	bestReg := math.Inf(1)
	for i := range arms.pulls {
		if i == exclude {
			continue
		}
		reg := row.regretOf(i)
		if reg > remaining {
			continue
		}
		var idx float64
		if arms.pulls[i] == 0 {
			idx = math.Inf(1)
		} else {
			idx = arms.mean[i] + bonus*math.Sqrt(2*math.Log(float64(arms.total+1))/float64(arms.pulls[i]))
		}
		if idx > bestIdx || (idx == bestIdx && reg < bestReg) {
			bestArm, bestIdx, bestReg = i, idx, reg
		}
	}
	return bestArm
}

// configIndex builds the arm-index lookup for a machine's DoP space.
func configIndex(cfgs []sim.Config) map[sim.Config]int {
	idx := make(map[sim.Config]int, len(cfgs))
	for i, c := range cfgs {
		idx[c] = i
	}
	return idx
}
