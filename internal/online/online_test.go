package online

import (
	"fmt"
	"testing"
	"time"

	"dopia/internal/core"
	"dopia/internal/ml"
	"dopia/internal/sim"
)

// fakeBase is a deterministic stand-in for the global offline model.
type fakeBase struct{ v float64 }

func (f fakeBase) Name() string              { return "FAKE" }
func (f fakeBase) Predict(ml.Features) float64 { return f.v }

// testSample fabricates one launch of a synthetic signature whose
// oracle-best configuration is cfgs[bestIdx]: config i costs
// 1 + 0.01*|i-bestIdx| simulated seconds.
func testSample(m *Manager, tenant, kernel string, bestIdx int, dec core.Decision) core.LaunchSample {
	var base ml.Features
	base[ml.FGlobalSize] = float64(1000 + len(kernel))
	base[ml.FWorkDim] = 1
	return core.LaunchSample{
		Tenant:       tenant,
		Kernel:       kernel,
		Base:         base,
		Decision:     dec,
		ObservedTime: 1,
		Sweep: func() ([]core.ConfigTime, error) {
			cts := make([]core.ConfigTime, len(m.cfgs))
			for i, cfg := range m.cfgs {
				d := i - bestIdx
				if d < 0 {
					d = -d
				}
				cts[i] = core.ConfigTime{Config: cfg, Time: 1 + 0.01*float64(d)}
			}
			return cts, nil
		},
	}
}

func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	cfg.Machine = sim.Kaveri()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

func TestManagerRetrainsAndSwapsToOracleArgmax(t *testing.T) {
	m := newTestManager(t, Config{
		Base:         fakeBase{0.5},
		RetrainEvery: 4,
		MinLaunches:  2,
		Policy:       PolicyOff,
	})
	if mdl, gen := m.ModelFor("s-1"); mdl != (fakeBase{0.5}) || gen != 1 {
		t.Fatalf("cold tenant should get base model at gen 1, got %v gen %d", mdl, gen)
	}
	const bestIdx = 17
	dec := core.Decision{Config: m.cfgs[0], Predicted: 0.5, Evaluated: len(m.cfgs), ModelGen: 1}
	for i := 0; i < 8; i++ {
		m.Observe(testSample(m, "s-1", "gesummv", bestIdx, dec))
	}
	if !m.Sync(5 * time.Second) {
		t.Fatal("learner did not drain")
	}
	st := m.Status()
	if st.Swaps < 1 || st.Retrains < 1 {
		t.Fatalf("expected at least one retrain+swap, got %+v", st)
	}
	mdl, gen := m.ModelFor("s-1")
	if gen < 2 {
		t.Fatalf("published generation %d, want >= 2", gen)
	}
	// The published model must reproduce the oracle argmax for the
	// learned signature.
	sample := testSample(m, "s-1", "gesummv", bestIdx, dec)
	argmax, bestV := -1, 0.0
	for i, cfg := range m.cfgs {
		v := mdl.Predict(core.WithConfig(sample.Base, m.machine, cfg))
		if argmax < 0 || v > bestV {
			argmax, bestV = i, v
		}
	}
	if argmax != bestIdx {
		t.Fatalf("published model argmax = config %d, oracle best is %d", argmax, bestIdx)
	}
	// Unseen feature vectors fall back toward the base model (warm
	// start): prediction must be finite and anchored near base's value
	// for a cold window.
	var far ml.Features
	far[ml.FGlobalSize] = 1e7
	if v := mdl.Predict(far); v < -1e3 || v > 1e3 {
		t.Fatalf("fallback prediction %v not sane", v)
	}
}

func TestGenerationsMonotonicAcrossSwaps(t *testing.T) {
	swapGens := make(chan uint64, 64)
	m := newTestManager(t, Config{
		RetrainEvery: 2,
		MinLaunches:  1,
		Policy:       PolicyOff,
		OnSwap:       func(_ string, gen uint64) { swapGens <- gen },
	})
	dec := core.Decision{Config: m.cfgs[0], Evaluated: len(m.cfgs)}
	for i := 0; i < 10; i++ {
		// A fresh kernel name per pair of launches keeps pendingNew > 0,
		// so every RetrainEvery boundary actually swaps.
		m.Observe(testSample(m, "s-1", fmt.Sprintf("k%d", i/2), i%len(m.cfgs), dec))
	}
	if !m.Sync(5 * time.Second) {
		t.Fatal("learner did not drain")
	}
	close(swapGens)
	last := uint64(1)
	n := 0
	for g := range swapGens {
		if g <= last {
			t.Fatalf("generation went backwards: %d after %d", g, last)
		}
		last = g
		n++
	}
	if n < 2 {
		t.Fatalf("expected >= 2 swaps, got %d", n)
	}
}

func TestExploreRespectsRegretBudget(t *testing.T) {
	const budget = 0.25
	m := newTestManager(t, Config{
		Policy:       PolicyEpsilon,
		Epsilon:      1.0, // explore every eligible launch
		RegretBudget: budget,
		RetrainEvery: 1000,
		Seed:         42,
	})
	var base ml.Features
	base[ml.FGlobalSize] = 1000 + float64(len("gesummv"))
	base[ml.FWorkDim] = 1
	dec := core.Decision{Config: m.cfgs[3], Predicted: 0.9, Evaluated: len(m.cfgs)}

	// Before any sample lands, the signature has no oracle row: the
	// bandit must refuse to explore blind.
	if _, ok := m.Explore("s-1", "gesummv", base, dec); ok {
		t.Fatal("explored without an oracle row")
	}
	m.Observe(testSample(m, "s-1", "gesummv", 7, dec))
	if !m.Sync(5 * time.Second) {
		t.Fatal("learner did not drain")
	}
	explored := 0
	for i := 0; i < 10000; i++ {
		if _, ok := m.Explore("s-1", "gesummv", base, dec); ok {
			explored++
		}
	}
	if explored == 0 {
		t.Fatal("epsilon=1 with budget never explored")
	}
	st := m.Status()
	if len(st.Tenants) != 1 {
		t.Fatalf("want 1 tenant, got %+v", st.Tenants)
	}
	if r := st.Tenants[0].Regret; r > budget {
		t.Fatalf("regret %v exceeded budget %v", r, budget)
	}
	// Budget exhausted (or no affordable arm left): exploration stops.
	if _, ok := m.Explore("s-1", "gesummv", base, dec); ok {
		st := m.Status()
		if st.Tenants[0].Regret > budget {
			t.Fatalf("post-exhaustion explore overdrew budget: %+v", st.Tenants[0])
		}
	}
}

func TestUCBPicksUnpulledThenBestArm(t *testing.T) {
	row := newOracleRow([]float64{1.0, 1.1, 1.5, 2.0})
	arms := newArmStats(4)
	// All arms unpulled: the cheapest unknown (lowest regret, arm 0)
	// wins; with arm 0 excluded, arm 1 is next.
	if got := pickUCB(arms, row, 0.5, 10, -1); got != 0 {
		t.Fatalf("unpulled pick = %d, want 0", got)
	}
	if got := pickUCB(arms, row, 0.5, 10, 0); got != 1 {
		t.Fatalf("unpulled pick excluding 0 = %d, want 1", got)
	}
	// Once every arm has pulls, the highest mean + bonus wins.
	for i := 0; i < 4; i++ {
		for j := 0; j < 5; j++ {
			arms.observe(i, row.reward(i))
		}
	}
	if got := pickUCB(arms, row, 0.01, 10, -1); got != 0 {
		t.Fatalf("converged pick = %d, want best arm 0", got)
	}
	// The regret guard filters arms the budget cannot afford: only arm
	// 0 (regret 0) and arm 1 (regret 0.1) fit a 0.2 budget.
	if got := pickUCB(arms, row, 10, 0.2, 0); got != 1 {
		t.Fatalf("budget-guarded pick = %d, want 1", got)
	}
}

func TestDriftDetectionForcesRetrain(t *testing.T) {
	m := newTestManager(t, Config{
		RetrainEvery:   1000, // never retrain on cadence
		MinLaunches:    1,
		DriftWindow:    4,
		DriftThreshold: 0.2,
		Policy:         PolicyOff,
	})
	// The decision claims 0.1 normalized perf but executes the oracle
	// best (realized 1.0): a sustained 0.9 error is drift.
	dec := core.Decision{Config: m.cfgs[9], Predicted: 0.1, Evaluated: len(m.cfgs)}
	for i := 0; i < 4; i++ {
		m.Observe(testSample(m, "s-1", "atax", 9, dec))
	}
	if !m.Sync(5 * time.Second) {
		t.Fatal("learner did not drain")
	}
	st := m.Status()
	if st.DriftDetections < 1 {
		t.Fatalf("no drift detected: %+v", st)
	}
	if st.Swaps < 1 {
		t.Fatalf("drift did not force a swap: %+v", st)
	}
	if st.Tenants[0].SwapReason != "drift" {
		t.Fatalf("swap reason %q, want drift", st.Tenants[0].SwapReason)
	}
}

func TestCollectorNeverBlocksLaunchPath(t *testing.T) {
	m := newTestManager(t, Config{QueueDepth: 2, Policy: PolicyOff})
	gate := make(chan struct{})
	blocked := core.LaunchSample{
		Tenant: "s-1", Kernel: "slow",
		Decision: core.Decision{Config: m.cfgs[0]},
		Sweep: func() ([]core.ConfigTime, error) {
			<-gate
			return nil, fmt.Errorf("aborted")
		},
	}
	m.Observe(blocked) // learner picks this up and parks in Sweep
	deadline := time.Now().Add(2 * time.Second)
	for m.ingested.Load() > 0 && m.ch != nil && len(m.ch) > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// Saturate the queue; every further Observe must return immediately
	// and count a drop.
	start := time.Now()
	for i := 0; i < 50; i++ {
		m.Observe(blocked)
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("Observe blocked the launch path for %v", el)
	}
	if m.dropped.Load() == 0 {
		t.Fatal("saturated collector did not drop samples")
	}
	close(gate)
	if !m.Sync(5 * time.Second) {
		t.Fatal("learner did not drain after unblocking")
	}
	if m.Status().SweepErrors == 0 {
		t.Fatal("aborted sweeps were not counted")
	}
}
