package mem

import (
	"testing"

	"dopia/internal/access"
)

func TestReuseProfilerSequentialScan(t *testing.T) {
	r := NewReuseProfiler(1 << 16)
	// Scan 1000 distinct lines once: all cold.
	for i := int64(0); i < 1000; i++ {
		r.Access(i*LineSize, 4, false)
	}
	h := r.Histogram()
	if h.Cold != 1000 || h.Total != 1000 {
		t.Fatalf("cold=%d total=%d, want 1000/1000", h.Cold, h.Total)
	}
	if mr := h.MissRatio(1<<20, 1); mr != 1 {
		t.Errorf("pure cold scan miss ratio = %v, want 1", mr)
	}
}

func TestReuseProfilerRepeatedScan(t *testing.T) {
	r := NewReuseProfiler(1 << 16)
	lines := int64(128)
	passes := 8
	for p := 0; p < passes; p++ {
		for i := int64(0); i < lines; i++ {
			r.Access(i*LineSize, 4, false)
		}
	}
	h := r.Histogram()
	if h.Cold != lines {
		t.Fatalf("cold = %d, want %d", h.Cold, lines)
	}
	// Every non-cold access has reuse distance = lines-1 (the other 127
	// distinct lines touched in between).
	big := h.MissRatio(int64(lines)*LineSize*2, 1)
	small := h.MissRatio(int64(lines)*LineSize/4, 1)
	if big >= small {
		t.Errorf("bigger cache must miss less: big=%v small=%v", big, small)
	}
	coldRatio := float64(h.Cold) / float64(h.Total)
	if big > coldRatio+0.01 {
		t.Errorf("cache holding full set should only see cold misses: %v > %v", big, coldRatio)
	}
	if small < 0.95 {
		t.Errorf("quarter-size cache should thrash a cyclic scan: %v", small)
	}
}

func TestReuseDistanceExactSmall(t *testing.T) {
	r := NewReuseProfiler(64)
	seq := []int64{0, 1, 2, 0, 3, 1}
	for _, l := range seq {
		r.Access(l*LineSize, 4, false)
	}
	h := r.Histogram()
	// 0,1,2 cold; second 0 has distance 2 (lines 1,2); 3 cold; second 1
	// has distance 3 (lines 2,0,3).
	if h.Cold != 4 {
		t.Errorf("cold = %d, want 4", h.Cold)
	}
	// distance 2 -> bucket ceil(log2(2))+1: Add(2) -> b=2; Add(3) -> b=2.
	if h.Buckets[2] != 2 {
		t.Errorf("bucket[2] = %d, want 2 (distances 2 and 3)", h.Buckets[2])
	}
}

func TestConcurrencyScalingIncreasesMisses(t *testing.T) {
	r := NewReuseProfiler(1 << 16)
	lines := int64(64)
	for p := 0; p < 4; p++ {
		for i := int64(0); i < lines; i++ {
			r.Access(i*LineSize, 4, false)
		}
	}
	h := r.Histogram()
	cache := int64(lines) * LineSize * 2
	alone := h.MissRatio(cache, 1)
	crowded := h.MissRatio(cache, 16)
	if crowded <= alone {
		t.Errorf("16-way interleaving must raise miss ratio: alone=%v crowded=%v", alone, crowded)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Add(4)
	a.AddCold()
	b.Add(4)
	b.Add(100)
	a.Merge(&b)
	if a.Total != 4 || a.Cold != 1 {
		t.Errorf("merged total=%d cold=%d", a.Total, a.Cold)
	}
}

func TestCoalesceFactor(t *testing.T) {
	const w = 16
	cases := []struct {
		name   string
		p      access.Pattern
		stride int64
		want   float64
	}{
		{"constant broadcast", access.Constant, 0, 1.0 / w},
		{"continuous float", access.Continuous, 1, 1.0 / w},
		{"stride 2", access.Strided, 2, 8.0 / (LineSize / 4.0) / w * (LineSize / 4.0 / 8.0) * (2 * 4 * w / LineSize) / (2 * 4 * w / LineSize)}, // computed below
		{"stride >= line", access.Strided, 16, 1},
		{"symbolic stride", access.Strided, 0, 1},
		{"random", access.Random, 0, 1},
	}
	for _, c := range cases {
		got := CoalesceFactor(c.p, c.stride, 4, w)
		switch c.name {
		case "stride 2":
			// 16 lanes * 8B span = 128B = 2 lines -> 2/16 per access.
			if got != 2.0/w {
				t.Errorf("%s: got %v, want %v", c.name, got, 2.0/w)
			}
		default:
			if got != c.want {
				t.Errorf("%s: got %v, want %v", c.name, got, c.want)
			}
		}
	}
	// Continuous must always beat strided/random.
	if CoalesceFactor(access.Continuous, 1, 4, w) >= CoalesceFactor(access.Random, 0, 4, w) {
		t.Error("continuous should coalesce better than random")
	}
}

func TestCPUStreamFactor(t *testing.T) {
	if CPUStreamFactor(access.Constant, 0, 4) != 0 {
		t.Error("constant should be cache-resident")
	}
	if CPUStreamFactor(access.Continuous, 1, 4) != 1 {
		t.Error("continuous should fetch exactly its bytes")
	}
	if f := CPUStreamFactor(access.Random, 0, 4); f != LineSize/4.0 {
		t.Errorf("random factor = %v, want %v", f, LineSize/4.0)
	}
	if f := CPUStreamFactor(access.Strided, 100, 4); f != LineSize/4.0 {
		t.Errorf("large stride factor = %v, want line per access", f)
	}
}

func TestThrashFraction(t *testing.T) {
	if ThrashFraction(100, 200) != 0 {
		t.Error("resident working set must not thrash")
	}
	// Half-capacity overflow exhausts the transition window.
	if f := ThrashFraction(160, 100); f != 1 {
		t.Errorf("thrash = %v, want 1 past the cliff", f)
	}
	// Within the window the loss ramps linearly.
	if f := ThrashFraction(125, 100); f != 0.5 {
		t.Errorf("thrash = %v, want 0.5 mid-window", f)
	}
	if ThrashFraction(100, 0) != 1 {
		t.Error("no cache means full thrash")
	}
	if ThrashFraction(0, 100) != 0 {
		t.Error("empty working set cannot thrash")
	}
}

func TestRandomMissRatio(t *testing.T) {
	if RandomMissRatio(1000, 2000) != 0 {
		t.Error("resident buffer: no capacity misses")
	}
	if r := RandomMissRatio(2000, 500); r != 0.75 {
		t.Errorf("miss ratio = %v, want 0.75", r)
	}
	if RandomMissRatio(100, 0) != 1 {
		t.Error("no cache: all miss")
	}
}
