package mem

import "dopia/internal/access"

// CoalesceFactor returns the average number of memory transactions (cache
// lines) a GPU memory unit issues per access for a given across-lane
// pattern, assuming SIMD execution of simdWidth lanes and elemSize-byte
// elements.
//
//   - Constant: all lanes read one address; the transaction is broadcast.
//   - Continuous: adjacent lanes read adjacent elements; accesses coalesce
//     perfectly into simdWidth*elemSize/LineSize lines.
//   - Strided: lanes are stride elements apart; once the stride spans a
//     line, every lane needs its own transaction.
//   - Random / Unknown: no coalescing.
func CoalesceFactor(p access.Pattern, strideElems, elemSize int64, simdWidth int) float64 {
	if simdWidth < 1 {
		simdWidth = 1
	}
	w := float64(simdWidth)
	es := float64(elemSize)
	switch p {
	case access.Constant:
		return 1 / w
	case access.Continuous:
		f := w * es / LineSize
		if f < 1 {
			f = 1
		}
		return f / w
	case access.Strided:
		s := strideElems
		if s < 0 {
			s = -s
		}
		if s == 0 {
			// Symbolic stride: assume it spans at least a line (true for
			// every row-major matrix walk with a non-trivial row size).
			return 1
		}
		span := float64(s) * es
		if span >= LineSize {
			return 1
		}
		f := w * span / LineSize
		if f < 1 {
			f = 1
		}
		return f / w
	default: // Random, Unknown
		return 1
	}
}

// CPUStreamFactor returns the DRAM bytes fetched per byte accessed for a
// CPU core's per-iteration pattern (caches + prefetchers considered,
// ignoring reuse which is modeled separately).
//
//   - Constant: register/L1-resident after the first touch.
//   - Continuous: every byte of each fetched line is used.
//   - Strided: a stride spanning >= one line wastes the rest of the line.
//   - Random: a full line per access.
func CPUStreamFactor(p access.Pattern, strideElems, elemSize int64) float64 {
	es := float64(elemSize)
	switch p {
	case access.Constant:
		return 0
	case access.Continuous:
		return 1
	case access.Strided:
		s := strideElems
		if s < 0 {
			s = -s
		}
		if s == 0 {
			return LineSize / es
		}
		span := float64(s) * es
		if span >= LineSize {
			return LineSize / es
		}
		return 1 // small strides still use every line eventually
	default:
		return LineSize / es
	}
}
