// Package mem provides the memory-system models of the integrated
// architecture simulator: an exact (Mattson) reuse-distance profiler over
// access traces, a working-set cache model with concurrency scaling, and a
// GPU memory-coalescing model. These three mechanisms are what produce the
// Dopia paper's central phenomenon — raising the GPU's degree of
// parallelism inflates the cache working set, turning reuse hits into DRAM
// traffic and congesting the shared memory system.
package mem

import "math"

// LineSize is the cache-line size in bytes used throughout the models.
const LineSize = 64

// ReuseProfiler computes the reuse-distance histogram of a cache-line
// access stream with the classic Bennett/Kruskal algorithm: a Fenwick tree
// over access timestamps counts the distinct lines touched since a line's
// previous access in O(log n) per access. It implements the interpreter's
// TraceSink interface, so it can be attached directly to a kernel run.
type ReuseProfiler struct {
	last map[int64]int // line -> timestamp of last access (1-based)
	tree []int         // Fenwick tree over timestamps; 1 if last access of some line
	time int
	hist Histogram
}

// NewReuseProfiler returns a profiler for a trace of up to capacity
// accesses. Beyond the capacity the trace is subsampled implicitly by
// ignoring further accesses (the histogram is already representative).
func NewReuseProfiler(capacity int) *ReuseProfiler {
	if capacity <= 0 {
		capacity = 1 << 20
	}
	return &ReuseProfiler{
		last: make(map[int64]int),
		tree: make([]int, capacity+1),
	}
}

// Access records one memory access (TraceSink implementation).
func (r *ReuseProfiler) Access(addr, size int64, write bool) {
	first := addr / LineSize
	last := (addr + size - 1) / LineSize
	for line := first; line <= last; line++ {
		r.accessLine(line)
	}
}

func (r *ReuseProfiler) accessLine(line int64) {
	if r.time >= len(r.tree)-1 {
		return // capacity reached; stop extending the trace
	}
	r.time++
	t := r.time
	if prev, seen := r.last[line]; seen {
		// Distinct lines touched strictly after prev: sum of markers in
		// (prev, t).
		dist := r.rangeSum(prev+1, t-1)
		r.hist.Add(int64(dist))
		r.update(prev, -1)
	} else {
		r.hist.AddCold()
	}
	r.last[line] = t
	r.update(t, +1)
}

func (r *ReuseProfiler) update(i, delta int) {
	for ; i < len(r.tree); i += i & (-i) {
		r.tree[i] += delta
	}
}

func (r *ReuseProfiler) prefixSum(i int) int {
	s := 0
	for ; i > 0; i -= i & (-i) {
		s += r.tree[i]
	}
	return s
}

func (r *ReuseProfiler) rangeSum(lo, hi int) int {
	if hi < lo {
		return 0
	}
	return r.prefixSum(hi) - r.prefixSum(lo-1)
}

// Histogram returns the reuse-distance histogram accumulated so far.
func (r *ReuseProfiler) Histogram() *Histogram {
	h := r.hist
	return &h
}

// Accesses returns the number of line accesses profiled.
func (r *ReuseProfiler) Accesses() int { return r.time }

// numBuckets covers distances up to 2^40 lines.
const numBuckets = 41

// Histogram is a logarithmic reuse-distance histogram: bucket k counts
// accesses whose reuse distance (in distinct cache lines) lies in
// [2^(k-1), 2^k); bucket 0 counts distance-0 (immediate) reuses; Cold
// counts first-touch accesses.
type Histogram struct {
	Buckets [numBuckets]int64
	Cold    int64
	Total   int64
}

// Add records a reuse at the given stack distance (in lines).
func (h *Histogram) Add(dist int64) {
	b := 0
	for d := dist; d > 0; d >>= 1 {
		b++
	}
	if b >= numBuckets {
		b = numBuckets - 1
	}
	h.Buckets[b]++
	h.Total++
}

// AddCold records a compulsory (first-touch) access.
func (h *Histogram) AddCold() {
	h.Cold++
	h.Total++
}

// MissRatio estimates the miss ratio for a fully-associative LRU cache of
// the given size, with reuse distances scaled by the interleaving factor:
// when `concurrency` independent threads interleave their access streams
// in one shared cache, every private reuse distance stretches by roughly
// that factor. concurrency <= 1 means a private stream.
func (h *Histogram) MissRatio(cacheBytes int64, concurrency float64) float64 {
	if h.Total == 0 {
		return 1
	}
	if concurrency < 1 {
		concurrency = 1
	}
	lines := float64(cacheBytes) / LineSize / concurrency
	if lines < 1 {
		lines = 1
	}
	// Accesses whose distance exceeds `lines` miss. Interpolate within the
	// boundary bucket linearly in log2 space.
	logCap := math.Log2(lines)
	var hits float64
	for b := 0; b < numBuckets; b++ {
		if h.Buckets[b] == 0 {
			continue
		}
		// Bucket b spans distances [2^(b-1), 2^b); bucket 0 is distance 0.
		lo := float64(b) - 1
		hi := float64(b)
		switch {
		case b == 0, hi <= logCap:
			hits += float64(h.Buckets[b])
		case lo >= logCap:
			// all miss
		default:
			frac := (logCap - lo) / (hi - lo)
			hits += float64(h.Buckets[b]) * frac
		}
	}
	miss := float64(h.Total) - hits
	if miss < float64(h.Cold) {
		miss = float64(h.Cold)
	}
	return miss / float64(h.Total)
}

// Merge accumulates another histogram into h.
func (h *Histogram) Merge(o *Histogram) {
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
	h.Cold += o.Cold
	h.Total += o.Total
}
