package mem

// This file holds the analytic working-set cache model the simulator uses
// when no measured reuse-distance histogram is available (and as the
// concurrency-scaling rule when one is). The model captures the paper's
// Figure 3(b) mechanism: the cache serves reuse only for the part of the
// working set that stays resident, and the working set grows with the
// number of concurrently active threads.

// ThrashFraction returns the fraction of reuse lost when a working set of
// the given size competes for a cache of the given capacity. An LRU cache
// under cyclic reuse degrades as a cliff, not a gentle slope: once the
// working set exceeds capacity, each line is evicted just before its next
// use. The model ramps from 0 (fully resident) to 1 (no reuse survives)
// over a half-capacity transition window that stands in for access-stream
// irregularity and partial residency.
func ThrashFraction(workingSet, capacity float64) float64 {
	if workingSet <= 0 {
		return 0
	}
	if capacity <= 0 {
		return 1
	}
	if workingSet <= capacity {
		return 0
	}
	f := (workingSet - capacity) / (0.5 * capacity)
	if f > 1 {
		return 1
	}
	return f
}

// RandomMissRatio returns the miss ratio of uniformly random accesses over
// a buffer of footprint bytes given available cache capacity. When the
// whole buffer is resident the accesses hit (after cold misses, accounted
// separately by the caller).
func RandomMissRatio(footprint, available float64) float64 {
	if footprint <= 0 {
		return 0
	}
	if available <= 0 {
		return 1
	}
	if footprint <= available {
		return 0
	}
	return (footprint - available) / footprint
}
