// Package stats provides the small statistical and text-rendering helpers
// the experiment harness uses: percentiles, box-plot summaries, and
// fixed-width table/heatmap rendering matching the figures of the paper.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between order statistics. NaN for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Geomean returns the geometric mean of positive values.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Box summarizes a distribution the way the paper's box plots do:
// mean, median, quartiles, and 5th/95th percentile whiskers.
type Box struct {
	N      int
	Mean   float64
	Median float64
	P5     float64
	P25    float64
	P75    float64
	P95    float64
}

// BoxOf computes the box summary of xs.
func BoxOf(xs []float64) Box {
	return Box{
		N:      len(xs),
		Mean:   Mean(xs),
		Median: Percentile(xs, 50),
		P5:     Percentile(xs, 5),
		P25:    Percentile(xs, 25),
		P75:    Percentile(xs, 75),
		P95:    Percentile(xs, 95),
	}
}

func (b Box) String() string {
	return fmt.Sprintf("mean=%.3f median=%.3f p5=%.3f p25=%.3f p75=%.3f p95=%.3f (n=%d)",
		b.Mean, b.Median, b.P5, b.P25, b.P75, b.P95, b.N)
}

// RenderTable writes a fixed-width text table.
func RenderTable(w io.Writer, headers []string, rows [][]string) {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
}

// heatShades maps [0,1] to a coarse intensity ramp for terminal output.
var heatShades = []rune{' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'}

// RenderHeatmap writes a text heatmap of vals[row][col] in [0,1]; each
// cell shows the value to two decimals plus an intensity glyph.
func RenderHeatmap(w io.Writer, title string, rowLabels, colLabels []string, vals [][]float64) {
	fmt.Fprintln(w, title)
	labelW := 0
	for _, r := range rowLabels {
		if len(r) > labelW {
			labelW = len(r)
		}
	}
	fmt.Fprintf(w, "%-*s", labelW+2, "")
	for _, c := range colLabels {
		fmt.Fprintf(w, "%7s", c)
	}
	fmt.Fprintln(w)
	for i, row := range vals {
		label := ""
		if i < len(rowLabels) {
			label = rowLabels[i]
		}
		fmt.Fprintf(w, "%-*s", labelW+2, label)
		for _, v := range row {
			shade := ' '
			if !math.IsNaN(v) {
				idx := int(v * float64(len(heatShades)))
				if idx >= len(heatShades) {
					idx = len(heatShades) - 1
				}
				if idx < 0 {
					idx = 0
				}
				shade = heatShades[idx]
			}
			fmt.Fprintf(w, " %4.2f%c ", v, shade)
		}
		fmt.Fprintln(w)
	}
}

// Fmt formats a float compactly for table cells.
func Fmt(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case v != 0 && math.Abs(v) < 0.01:
		return fmt.Sprintf("%.2e", v)
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}
