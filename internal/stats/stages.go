package stats

// StageSet is a fixed set of named latency histograms — one per
// pipeline stage — recorded by index so the hot path never hashes a
// stage name. The serving layer uses one to break request latency into
// decode / queue / exec / encode.

// StageSet holds one latency histogram per named stage.
type StageSet struct {
	names []string
	hists []*Histogram
}

// NewStageSet builds a set with one NewLatencyHistogram per name.
func NewStageSet(names ...string) *StageSet {
	s := &StageSet{names: append([]string(nil), names...)}
	s.hists = make([]*Histogram, len(s.names))
	for i := range s.hists {
		s.hists[i] = NewLatencyHistogram()
	}
	return s
}

// Record adds one observation (seconds) to stage i. Safe for concurrent
// use; out-of-range indexes are ignored.
func (s *StageSet) Record(i int, v float64) {
	if i < 0 || i >= len(s.hists) {
		return
	}
	s.hists[i].Record(v)
}

// Len returns the number of stages.
func (s *StageSet) Len() int { return len(s.names) }

// Name returns stage i's name.
func (s *StageSet) Name(i int) string { return s.names[i] }

// Histogram returns stage i's histogram (nil if out of range).
func (s *StageSet) Histogram(i int) *Histogram {
	if i < 0 || i >= len(s.hists) {
		return nil
	}
	return s.hists[i]
}

// Each visits every stage in declaration order with a consistent
// snapshot of its histogram.
func (s *StageSet) Each(f func(name string, snap HistSnapshot)) {
	for i, h := range s.hists {
		f(s.names[i], h.Snapshot())
	}
}
