package stats

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	// Interpolation between order statistics.
	if got := Percentile([]float64{0, 10}, 25); got != 2.5 {
		t.Errorf("interpolated P25 = %v, want 2.5", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty input must yield NaN")
	}
	// Input must not be mutated.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	prop := func(seed int64, pRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		p := float64(pRaw) / 255 * 100
		v := Percentile(xs, p)
		// Bounded by extremes and monotone in p.
		if v < lo-1e-9 || v > hi+1e-9 {
			return false
		}
		return Percentile(xs, p) <= Percentile(xs, math.Min(p+10, 100))+1e-9
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestMeanAndGeomean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean wrong")
	}
	if g := Geomean([]float64{1, 4}); g != 2 {
		t.Errorf("geomean = %v, want 2", g)
	}
	if !math.IsNaN(Geomean([]float64{1, -1})) {
		t.Error("geomean of negative input must be NaN")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("mean of empty must be NaN")
	}
	// Geomean <= mean (AM-GM).
	xs := []float64{0.5, 2, 8, 1.5}
	if Geomean(xs) > Mean(xs) {
		t.Error("AM-GM violated")
	}
}

func TestBoxOf(t *testing.T) {
	xs := make([]float64, 0, 100)
	for i := 1; i <= 100; i++ {
		xs = append(xs, float64(i))
	}
	b := BoxOf(xs)
	if b.N != 100 || b.Mean != 50.5 {
		t.Errorf("box basics wrong: %+v", b)
	}
	if !(b.P5 < b.P25 && b.P25 < b.Median && b.Median < b.P75 && b.P75 < b.P95) {
		t.Errorf("box quantiles not ordered: %+v", b)
	}
	if s := b.String(); !strings.Contains(s, "median") {
		t.Errorf("String() lacks fields: %s", s)
	}
}

func TestRenderTable(t *testing.T) {
	var buf bytes.Buffer
	RenderTable(&buf, []string{"name", "value"}, [][]string{
		{"alpha", "1"},
		{"long-name-entry", "2.5"},
	})
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[1], "---") {
		t.Errorf("header/separator malformed:\n%s", out)
	}
	// Columns align: "value" column starts at the same offset in all rows.
	idx := strings.Index(lines[0], "value")
	if !strings.HasPrefix(lines[2][idx:], "1") || !strings.HasPrefix(lines[3][idx:], "2.5") {
		t.Errorf("columns not aligned:\n%s", out)
	}
}

func TestRenderHeatmap(t *testing.T) {
	var buf bytes.Buffer
	RenderHeatmap(&buf, "demo", []string{"r0", "r1"}, []string{"c0", "c1"},
		[][]float64{{0, 0.5}, {1.0, math.NaN()}})
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "r1") || !strings.Contains(out, "c1") {
		t.Errorf("heatmap missing labels:\n%s", out)
	}
	if !strings.Contains(out, "1.00@") {
		t.Errorf("full-intensity cell not rendered with darkest glyph:\n%s", out)
	}
}

func TestFmt(t *testing.T) {
	cases := map[float64]string{
		0.5:    "0.500",
		1234:   "1.23e+03",
		0.0001: "1.00e-04",
		0:      "0.000",
	}
	for in, want := range cases {
		if got := Fmt(in); got != want {
			t.Errorf("Fmt(%v) = %q, want %q", in, got, want)
		}
	}
	if Fmt(math.NaN()) != "-" {
		t.Error("NaN must render as dash")
	}
}
