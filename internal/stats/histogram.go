package stats

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Histogram is a fixed-bucket streaming histogram for non-negative
// values (latencies, sizes). Buckets are log-spaced between Min and Max
// with an underflow bucket below Min and an overflow bucket above Max,
// so one Record is a single atomic increment — safe for any number of
// concurrent writers with no locking on the hot path.
//
// All Histograms created with the same (Min, Max, buckets) geometry are
// mergeable: Merge adds another histogram's counts bucket-for-bucket,
// which is how per-worker or per-client histograms roll up into one
// report. Quantiles are estimated by linear interpolation inside the
// containing bucket; with the default geometry (256 buckets over
// [1e-6, 1e3] seconds) adjacent bucket bounds differ by a factor of
// ~1.084, bounding the relative quantile error by a few percent —
// plenty for p50/p95/p99 reporting. Values landing exactly on a bucket
// boundary may be attributed to either adjacent bucket (float log
// rounding), which stays within the same error bound.
//
// The zero value is not usable; construct with NewHistogram or
// NewLatencyHistogram.
type Histogram struct {
	min, max float64
	// logMin and invLogW precompute the bucket-index transform:
	// idx = (ln v - ln min) * invLogW.
	logMin, invLogW float64

	// counts[0] is the underflow bucket (v < min); counts[n+1] the
	// overflow bucket (v >= max); counts[1..n] the log-spaced interior.
	counts []atomic.Int64
	total  atomic.Int64
	// sum accumulates the raw values (as float64 bits CAS-looped) so the
	// snapshot can report an exact mean alongside estimated quantiles.
	sum atomicFloat
}

// atomicFloat is a float64 accumulated with a CAS loop.
type atomicFloat struct{ bits atomic.Uint64 }

func (a *atomicFloat) Add(v float64) {
	for {
		old := a.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if a.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (a *atomicFloat) Load() float64 { return math.Float64frombits(a.bits.Load()) }

// NewHistogram creates a histogram with n log-spaced buckets covering
// [min, max). Requirements: 0 < min < max, n >= 1.
func NewHistogram(min, max float64, n int) (*Histogram, error) {
	if !(min > 0) || !(max > min) || n < 1 {
		return nil, fmt.Errorf("stats: invalid histogram geometry min=%v max=%v buckets=%d", min, max, n)
	}
	h := &Histogram{
		min:    min,
		max:    max,
		logMin: math.Log(min),
		counts: make([]atomic.Int64, n+2),
	}
	h.invLogW = float64(n) / (math.Log(max) - math.Log(min))
	return h, nil
}

// NewLatencyHistogram returns the default server-latency geometry:
// 256 log-spaced buckets from 1 microsecond to 1000 seconds.
func NewLatencyHistogram() *Histogram {
	h, err := NewHistogram(1e-6, 1e3, 256)
	if err != nil {
		panic(err) // static geometry, cannot fail
	}
	return h
}

// Buckets returns the number of interior buckets.
func (h *Histogram) Buckets() int { return len(h.counts) - 2 }

// bucketOf maps a value to its slot in counts.
func (h *Histogram) bucketOf(v float64) int {
	if math.IsNaN(v) || v < h.min {
		return 0
	}
	if v >= h.max {
		return len(h.counts) - 1
	}
	idx := int((math.Log(v)-h.logMin)*h.invLogW) + 1
	// Guard the float boundary cases.
	if idx < 1 {
		idx = 1
	}
	if idx > len(h.counts)-2 {
		idx = len(h.counts) - 2
	}
	return idx
}

// Record adds one observation. Safe for concurrent use.
func (h *Histogram) Record(v float64) {
	h.counts[h.bucketOf(v)].Add(1)
	h.total.Add(1)
	if !math.IsNaN(v) {
		h.sum.Add(v)
	}
}

// Merge adds every bucket of other into h. Both histograms must share
// the same geometry. Safe for concurrent use on both sides; counts
// recorded into other concurrently with the merge may or may not be
// included.
func (h *Histogram) Merge(other *Histogram) error {
	if other == nil {
		return nil
	}
	if h.min != other.min || h.max != other.max || len(h.counts) != len(other.counts) {
		return fmt.Errorf("stats: merging histograms of different geometry")
	}
	var moved int64
	for i := range other.counts {
		n := other.counts[i].Load()
		if n != 0 {
			h.counts[i].Add(n)
			moved += n
		}
	}
	h.total.Add(moved)
	h.sum.Add(other.sum.Load())
	return nil
}

// HistSnapshot is a point-in-time copy of a histogram, safe to read and
// serialize without further synchronization.
type HistSnapshot struct {
	Min, Max float64
	Counts   []int64 // underflow, interior buckets, overflow
	Total    int64
	Sum      float64
}

// Snapshot copies the current counts. Concurrent Records during the
// copy land in either the snapshot or the next one; each observation is
// counted exactly once per bucket slot.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Min:    h.min,
		Max:    h.max,
		Counts: make([]int64, len(h.counts)),
		Sum:    h.sum.Load(),
	}
	var total int64
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		total += c
	}
	// Recompute the total from the copied buckets so Total always equals
	// sum(Counts) even when Records race with the snapshot.
	s.Total = total
	return s
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Quantile estimates the q-th quantile (0..1) of the recorded values by
// linear interpolation within the containing bucket. NaN when empty.
func (h *Histogram) Quantile(q float64) float64 { return h.Snapshot().Quantile(q) }

// Mean returns the exact arithmetic mean of recorded values (NaN when
// empty).
func (s HistSnapshot) Mean() float64 {
	if s.Total == 0 {
		return math.NaN()
	}
	return s.Sum / float64(s.Total)
}

// bounds returns the [lo, hi) value range of counts slot i.
func (s HistSnapshot) bounds(i int) (lo, hi float64) {
	n := len(s.Counts) - 2
	logMin := math.Log(s.Min)
	w := (math.Log(s.Max) - logMin) / float64(n)
	switch {
	case i <= 0:
		return 0, s.Min
	case i >= n+1:
		return s.Max, s.Max
	default:
		return math.Exp(logMin + float64(i-1)*w), math.Exp(logMin + float64(i)*w)
	}
}

// Quantile estimates the q-th quantile (0..1). Underflow observations
// interpolate in [0, Min); overflow ones report Max (a floor — the true
// value may be larger).
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Total)
	var cum int64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			lo, hi := s.bounds(i)
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	// rank beyond the last non-empty bucket (q == 1 with rounding).
	for i := len(s.Counts) - 1; i >= 0; i-- {
		if s.Counts[i] > 0 {
			_, hi := s.bounds(i)
			return hi
		}
	}
	return math.NaN()
}

// P50 returns the estimated median.
func (s HistSnapshot) P50() float64 { return s.Quantile(0.50) }

// P95 returns the estimated 95th percentile.
func (s HistSnapshot) P95() float64 { return s.Quantile(0.95) }

// P99 returns the estimated 99th percentile.
func (s HistSnapshot) P99() float64 { return s.Quantile(0.99) }
