package stats

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramGeometryErrors(t *testing.T) {
	for _, tc := range []struct {
		min, max float64
		n        int
	}{
		{0, 1, 8}, {-1, 1, 8}, {1, 1, 8}, {2, 1, 8}, {1e-6, 1e3, 0},
	} {
		if _, err := NewHistogram(tc.min, tc.max, tc.n); err == nil {
			t.Errorf("NewHistogram(%v,%v,%d): expected error", tc.min, tc.max, tc.n)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewLatencyHistogram()
	// 1..1000 milliseconds, uniformly.
	for i := 1; i <= 1000; i++ {
		h.Record(float64(i) * 1e-3)
	}
	s := h.Snapshot()
	if s.Total != 1000 {
		t.Fatalf("total = %d, want 1000", s.Total)
	}
	checks := []struct{ q, want float64 }{
		{0.50, 0.500}, {0.95, 0.950}, {0.99, 0.990},
	}
	for _, c := range checks {
		got := s.Quantile(c.q)
		if rel := math.Abs(got-c.want) / c.want; rel > 0.05 {
			t.Errorf("q%.0f = %v, want ~%v (rel err %.3f)", c.q*100, got, c.want, rel)
		}
	}
	if mean := s.Mean(); math.Abs(mean-0.5005) > 1e-9 {
		t.Errorf("mean = %v, want 0.5005 exactly", mean)
	}
}

func TestHistogramUnderOverflow(t *testing.T) {
	h, err := NewHistogram(1, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	h.Record(0)          // underflow
	h.Record(1e-9)       // underflow
	h.Record(math.NaN()) // underflow bucket, not counted in sum
	h.Record(11)         // overflow
	h.Record(math.Inf(1))
	s := h.Snapshot()
	if s.Counts[0] != 3 {
		t.Errorf("underflow = %d, want 3", s.Counts[0])
	}
	if s.Counts[len(s.Counts)-1] != 2 {
		t.Errorf("overflow = %d, want 2", s.Counts[len(s.Counts)-1])
	}
	// Overflow quantile reports the max bound as a floor.
	if q := s.Quantile(0.999); q != 10 {
		t.Errorf("overflow quantile = %v, want 10", q)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewLatencyHistogram()
	if q := h.Quantile(0.5); !math.IsNaN(q) {
		t.Errorf("empty quantile = %v, want NaN", q)
	}
	if m := h.Snapshot().Mean(); !math.IsNaN(m) {
		t.Errorf("empty mean = %v, want NaN", m)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h, err := NewHistogram(1, 16, 4) // buckets [1,2) [2,4) [4,8) [8,16)
	if err != nil {
		t.Fatal(err)
	}
	// Mid-bucket values: exact boundary values (2, 4, 8) may land in
	// either adjacent bucket due to float log rounding, so avoid them.
	for _, v := range []float64{1.1, 1.9, 2.2, 3.8, 4.4, 7.6, 8.8, 15.2} {
		h.Record(v)
	}
	s := h.Snapshot()
	for i := 1; i <= 4; i++ {
		if s.Counts[i] != 2 {
			t.Errorf("bucket %d = %d, want 2 (counts %v)", i, s.Counts[i], s.Counts)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewLatencyHistogram()
	b := NewLatencyHistogram()
	for i := 1; i <= 500; i++ {
		a.Record(float64(i) * 1e-3)
		b.Record(float64(i+500) * 1e-3)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 1000 {
		t.Fatalf("merged count = %d, want 1000", a.Count())
	}
	ref := NewLatencyHistogram()
	for i := 1; i <= 1000; i++ {
		ref.Record(float64(i) * 1e-3)
	}
	as, rs := a.Snapshot(), ref.Snapshot()
	for i := range as.Counts {
		if as.Counts[i] != rs.Counts[i] {
			t.Fatalf("bucket %d: merged %d != direct %d", i, as.Counts[i], rs.Counts[i])
		}
	}
	if math.Abs(as.Sum-rs.Sum) > 1e-9 {
		t.Errorf("merged sum %v != direct %v", as.Sum, rs.Sum)
	}
	// Geometry mismatch is rejected.
	c, _ := NewHistogram(1, 10, 4)
	if err := a.Merge(c); err == nil {
		t.Error("merge of mismatched geometry succeeded")
	}
	if err := a.Merge(nil); err != nil {
		t.Errorf("merge of nil: %v", err)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines and
// checks no observation is lost (run under -race in CI).
func TestHistogramConcurrent(t *testing.T) {
	h := NewLatencyHistogram()
	const G, per = 16, 2000
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(float64(g*per+i+1) * 1e-6)
				if i%64 == 0 {
					_ = h.Snapshot()
					_ = h.Quantile(0.95)
				}
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != G*per {
		t.Fatalf("count = %d, want %d", h.Count(), G*per)
	}
	s := h.Snapshot()
	if s.Total != G*per {
		t.Fatalf("snapshot total = %d, want %d", s.Total, G*per)
	}
	var sum int64
	for _, c := range s.Counts {
		sum += c
	}
	if sum != G*per {
		t.Fatalf("bucket sum = %d, want %d", sum, G*per)
	}
}
