package ml

import (
	"fmt"
	"math/rand"
	"time"
)

// CVResult summarizes a k-fold cross-validation of one trainer.
type CVResult struct {
	Trainer string
	Folds   int
	MSE     float64
	MAE     float64
	// TrainTime and InferTime are wall-clock averages: one model fit, and
	// one Predict call, respectively.
	TrainTime time.Duration
	InferTime time.Duration
}

// CrossValidate runs k-fold cross-validation of a trainer on a dataset
// (shuffled with the given seed) and reports average errors and timings.
func CrossValidate(tr Trainer, d *Dataset, k int, seed int64) (*CVResult, error) {
	if d.Len() < k {
		return nil, fmt.Errorf("ml: %d samples cannot make %d folds", d.Len(), k)
	}
	ds := d.Clone()
	ds.Shuffle(rand.New(rand.NewSource(seed)))
	res := &CVResult{Trainer: tr.Name(), Folds: k}
	var inferN int64
	for i := 0; i < k; i++ {
		train, test, err := ds.Fold(i, k)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		m, err := tr.Fit(train)
		if err != nil {
			return nil, err
		}
		res.TrainTime += time.Since(t0)
		t1 := time.Now()
		for _, sm := range test.Samples {
			e := m.Predict(sm.X) - sm.Y
			res.MSE += e * e
			if e < 0 {
				e = -e
			}
			res.MAE += e
		}
		res.InferTime += time.Since(t1)
		inferN += int64(test.Len())
	}
	res.MSE /= float64(d.Len())
	res.MAE /= float64(d.Len())
	res.TrainTime /= time.Duration(k)
	if inferN > 0 {
		res.InferTime /= time.Duration(inferN)
	}
	return res, nil
}

// PredictionQuality evaluates how good a model's *argmax* choices are: for
// grouped candidate sets (one group per workload, each candidate a
// configuration with known true normalized performance), it returns the
// achieved normalized performance of the model-chosen candidate per group.
type Candidate struct {
	X Features
	// TruePerf is the measured normalized performance of the candidate
	// (1 = the workload's best configuration).
	TruePerf float64
	// Tag carries caller data (e.g. the configuration) through selection.
	Tag any
}

// SelectBest returns the candidate with the highest predicted performance.
func SelectBest(m Model, cands []Candidate) (int, error) {
	if len(cands) == 0 {
		return -1, fmt.Errorf("ml: no candidates")
	}
	best := 0
	bestV := m.Predict(cands[0].X)
	for i := 1; i < len(cands); i++ {
		if v := m.Predict(cands[i].X); v > bestV {
			best, bestV = i, v
		}
	}
	return best, nil
}
