package ml

import "fmt"

// This file holds the small dense linear algebra the regression models
// need: symmetric positive-definite solves via Cholesky factorization with
// a partial-pivot Gaussian elimination fallback.

// solveSPD solves A x = b for symmetric positive-definite A (row-major,
// n×n), in place of a copy. It first attempts Cholesky and falls back to
// Gaussian elimination with partial pivoting when the matrix is not
// numerically positive definite.
func solveSPD(a []float64, b []float64, n int) ([]float64, error) {
	if len(a) != n*n || len(b) != n {
		return nil, fmt.Errorf("ml: dimension mismatch (%d, %d, n=%d)", len(a), len(b), n)
	}
	l := make([]float64, n*n)
	copy(l, a)
	if cholesky(l, n) {
		x := make([]float64, n)
		copy(x, b)
		// Forward substitution L y = b.
		for i := 0; i < n; i++ {
			for j := 0; j < i; j++ {
				x[i] -= l[i*n+j] * x[j]
			}
			x[i] /= l[i*n+i]
		}
		// Back substitution L^T x = y.
		for i := n - 1; i >= 0; i-- {
			for j := i + 1; j < n; j++ {
				x[i] -= l[j*n+i] * x[j]
			}
			x[i] /= l[i*n+i]
		}
		return x, nil
	}
	return gaussSolve(a, b, n)
}

// cholesky factors a into lower-triangular form in place; returns false
// when a pivot is non-positive.
func cholesky(a []float64, n int) bool {
	for j := 0; j < n; j++ {
		d := a[j*n+j]
		for k := 0; k < j; k++ {
			d -= a[j*n+k] * a[j*n+k]
		}
		if d <= 0 {
			return false
		}
		d = sqrt(d)
		a[j*n+j] = d
		for i := j + 1; i < n; i++ {
			s := a[i*n+j]
			for k := 0; k < j; k++ {
				s -= a[i*n+k] * a[j*n+k]
			}
			a[i*n+j] = s / d
		}
	}
	return true
}

func sqrt(x float64) float64 {
	// Newton iterations; avoids importing math in the hot path for no
	// reason other than symmetry — precision matches math.Sqrt closely.
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 32; i++ {
		nz := 0.5 * (z + x/z)
		if nz == z {
			break
		}
		z = nz
	}
	return z
}

// gaussSolve solves A x = b by Gaussian elimination with partial pivoting.
func gaussSolve(aIn, bIn []float64, n int) ([]float64, error) {
	a := make([]float64, n*n)
	copy(a, aIn)
	b := make([]float64, n)
	copy(b, bIn)
	for col := 0; col < n; col++ {
		// Pivot.
		p := col
		max := abs(a[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := abs(a[r*n+col]); v > max {
				p, max = r, v
			}
		}
		if max < 1e-15 {
			return nil, fmt.Errorf("ml: singular system at column %d", col)
		}
		if p != col {
			for k := 0; k < n; k++ {
				a[p*n+k], a[col*n+k] = a[col*n+k], a[p*n+k]
			}
			b[p], b[col] = b[col], b[p]
		}
		inv := 1 / a[col*n+col]
		for r := col + 1; r < n; r++ {
			f := a[r*n+col] * inv
			if f == 0 {
				continue
			}
			for k := col; k < n; k++ {
				a[r*n+k] -= f * a[col*n+k]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= a[i*n+k] * x[k]
		}
		x[i] = s / a[i*n+i]
	}
	return x, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
