package ml

import (
	"fmt"
	"math"
)

// This file implements the incremental half of the training stack: an
// online ridge regressor whose sufficient statistics support both
// partial-fit (Observe) and exact sliding-window eviction (Forget), plus
// model provenance metadata so a hot-swapped model carries where it came
// from. The offline trainers in linreg.go/svr.go/tree.go stay the
// authority for ahead-of-time training; OnlineRidge exists so a serving
// system can keep learning from live launches without refitting from
// scratch on every sample.

// OnlineRidge accumulates the sufficient statistics of ridge regression
// (raw second moments, cross moments, and target sums) one sample at a
// time. Fit solves the standardized normal equations on demand, so the
// cost of producing a model is one 12x12 SPD solve regardless of how
// many samples were observed. Observe/Forget are exact inverses: a
// sliding-window trainer Observes the incoming sample and Forgets the
// evicted one, and the statistics equal a batch fit of the window.
//
// OnlineRidge is not internally locked; callers serialize access.
type OnlineRidge struct {
	// Ridge is the L2 regularization strength (default 1e-6, matching
	// LinearTrainer).
	Ridge float64

	n   float64                            // sample count
	sx  [NumFeatures]float64               // feature sums
	sxx [NumFeatures * NumFeatures]float64 // raw second moments X'X
	sxy [NumFeatures]float64               // cross moments X'y
	sy  float64                            // target sum
}

// Observe folds one (features, target) pair into the statistics.
func (o *OnlineRidge) Observe(x Features, y float64) { o.accumulate(x, y, 1) }

// Forget removes a previously observed pair (sliding-window eviction).
// Forgetting a pair that was never observed corrupts the statistics;
// the caller owns the window discipline.
func (o *OnlineRidge) Forget(x Features, y float64) { o.accumulate(x, y, -1) }

func (o *OnlineRidge) accumulate(x Features, y, sign float64) {
	o.n += sign
	o.sy += sign * y
	for i := 0; i < NumFeatures; i++ {
		o.sx[i] += sign * x[i]
		o.sxy[i] += sign * x[i] * y
		for j := 0; j < NumFeatures; j++ {
			o.sxx[i*NumFeatures+j] += sign * x[i] * x[j]
		}
	}
}

// Len reports how many samples the statistics currently cover.
func (o *OnlineRidge) Len() int { return int(o.n + 0.5) }

// Fit solves the current statistics into a linear model (same family and
// serialization as LinearTrainer's output). It standardizes features
// using the window's own mean/std — computed from the accumulated
// moments, not a second pass — so the solve is exactly the batch ridge
// fit of the current window. Fails when fewer than two samples are held
// or the system is degenerate.
func (o *OnlineRidge) Fit() (Model, error) {
	if o.n < 2 {
		return nil, fmt.Errorf("ml: online ridge has %d samples, want >= 2", o.Len())
	}
	ridge := o.Ridge
	if ridge <= 0 {
		ridge = 1e-6
	}
	sc := &scaler{}
	for i := 0; i < NumFeatures; i++ {
		mu := o.sx[i] / o.n
		sc.mean[i] = mu
		v := o.sxx[i*NumFeatures+i]/o.n - mu*mu
		if v > 1e-12 {
			sc.std[i] = math.Sqrt(v)
		} else {
			sc.std[i] = 1 // constant feature: pass through uncentered scale
		}
	}
	// Build the standardized normal equations from the raw moments:
	// with z_i = (x_i - mu_i)/sigma_i and an intercept column of ones,
	//   (Z'Z)[i][j] = (sxx[ij] - mu_i sx[j] - mu_j sx[i] + n mu_i mu_j) / (s_i s_j)
	//   (Z'Z)[i][b] = (sx[i] - n mu_i) / s_i            (~0 by construction)
	//   (Z'y)[i]    = (sxy[i] - mu_i sy) / s_i
	nc := NumFeatures + 1
	xtx := make([]float64, nc*nc)
	xty := make([]float64, nc)
	for i := 0; i < NumFeatures; i++ {
		mi, si := sc.mean[i], sc.std[i]
		for j := 0; j < NumFeatures; j++ {
			mj, sj := sc.mean[j], sc.std[j]
			xtx[i*nc+j] = (o.sxx[i*NumFeatures+j] - mi*o.sx[j] - mj*o.sx[i] + o.n*mi*mj) / (si * sj)
		}
		cross := (o.sx[i] - o.n*mi) / si
		xtx[i*nc+NumFeatures] = cross
		xtx[NumFeatures*nc+i] = cross
		xty[i] = (o.sxy[i] - mi*o.sy) / si
	}
	xtx[NumFeatures*nc+NumFeatures] = o.n
	xty[NumFeatures] = o.sy
	for i := 0; i < nc; i++ {
		xtx[i*nc+i] += ridge
	}
	w, err := solveSPD(xtx, xty, nc)
	if err != nil {
		return nil, err
	}
	if i := nonFiniteAt(w); i >= 0 {
		return nil, fmt.Errorf("ml: online ridge produced non-finite weight w[%d]", i)
	}
	return &linearModel{scale: sc, w: w}, nil
}

// Provenance records where a model came from, carried alongside the
// model through serialization and the /v1/models endpoint.
type Provenance struct {
	// Tenant that the model was trained for ("" = global).
	Tenant string `json:"tenant,omitempty"`
	// Generation assigned when the model was published (0 = static).
	Generation uint64 `json:"generation,omitempty"`
	// Samples is the training-window size at fit time.
	Samples int `json:"samples,omitempty"`
	// Origin describes how the model was produced ("offline", "online",
	// "warm-start", ...).
	Origin string `json:"origin,omitempty"`
	// Parent names the model this one was warm-started from.
	Parent string `json:"parent,omitempty"`
	// TrainedUnixMS is the wall-clock fit time in Unix milliseconds.
	TrainedUnixMS int64 `json:"trained_unix_ms,omitempty"`
}

// provModel attaches provenance to a model without changing its
// predictions. Prediction hot paths receive the unwrapped inner model.
type provModel struct {
	Model
	prov Provenance
}

// WithProvenance returns the model tagged with provenance. Tagging an
// already-tagged model replaces its provenance.
func WithProvenance(m Model, p Provenance) Model {
	if pm, ok := m.(*provModel); ok {
		m = pm.Model
	}
	return &provModel{Model: m, prov: p}
}

// ProvenanceOf extracts a model's provenance tag, if any.
func ProvenanceOf(m Model) (Provenance, bool) {
	if pm, ok := m.(*provModel); ok {
		return pm.prov, true
	}
	return Provenance{}, false
}

// Unwrap strips a provenance tag, returning the underlying model (the
// identity the prediction cache keys on).
func Unwrap(m Model) Model {
	if pm, ok := m.(*provModel); ok {
		return pm.Model
	}
	return m
}
