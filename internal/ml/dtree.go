package ml

import (
	"fmt"
	"math/rand"
	"sort"
)

// TreeTrainer fits a CART regression tree with variance-reduction splits
// (the paper's deployed "DT" model: accurate for this feature space and
// with microsecond inference, Figure 10).
type TreeTrainer struct {
	// MaxDepth limits the tree depth (default 16).
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (default 2).
	MinLeaf int
	// FeatureFrac, when in (0,1), considers a random subset of features
	// per split (used by the random forest); 0/1 considers all.
	FeatureFrac float64
	// Rng supplies randomness for feature subsampling.
	Rng *rand.Rand
}

// Name implements Trainer.
func (TreeTrainer) Name() string { return "DT" }

// Fit implements Trainer.
func (tr TreeTrainer) Fit(d *Dataset) (Model, error) {
	if d.Len() == 0 {
		return nil, fmt.Errorf("ml: empty dataset")
	}
	maxDepth := tr.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 16
	}
	minLeaf := tr.MinLeaf
	if minLeaf <= 0 {
		minLeaf = 2
	}
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	t := &treeModel{}
	b := &treeBuilder{
		samples:     d.Samples,
		maxDepth:    maxDepth,
		minLeaf:     minLeaf,
		featureFrac: tr.FeatureFrac,
		rng:         tr.Rng,
		tree:        t,
	}
	b.build(idx, 0)
	return t, nil
}

// treeNode is one node in the flattened tree. Leaf nodes have feature -1.
type treeNode struct {
	feature int
	thresh  float64
	left    int32
	right   int32
	value   float64
}

type treeModel struct {
	nodes []treeNode
}

func (t *treeModel) Name() string { return "DT" }

func (t *treeModel) Predict(x Features) float64 {
	if len(t.nodes) == 0 {
		return 0
	}
	i := int32(0)
	for {
		n := &t.nodes[i]
		if n.feature < 0 {
			return n.value
		}
		if x[n.feature] <= n.thresh {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// Nodes returns the number of nodes (for size/overhead reporting).
func (t *treeModel) Nodes() int { return len(t.nodes) }

// Depth returns the maximum depth of the tree.
func (t *treeModel) Depth() int {
	var depth func(i int32) int
	depth = func(i int32) int {
		n := &t.nodes[i]
		if n.feature < 0 {
			return 1
		}
		l, r := depth(n.left), depth(n.right)
		if r > l {
			l = r
		}
		return l + 1
	}
	if len(t.nodes) == 0 {
		return 0
	}
	return depth(0)
}

type treeBuilder struct {
	samples     []Sample
	maxDepth    int
	minLeaf     int
	featureFrac float64
	rng         *rand.Rand
	tree        *treeModel
}

// build grows the subtree over the sample indices and returns its node id.
func (b *treeBuilder) build(idx []int, depth int) int32 {
	node := int32(len(b.tree.nodes))
	b.tree.nodes = append(b.tree.nodes, treeNode{feature: -1})

	mean := 0.0
	for _, i := range idx {
		mean += b.samples[i].Y
	}
	mean /= float64(len(idx))
	b.tree.nodes[node].value = mean

	if depth >= b.maxDepth || len(idx) < 2*b.minLeaf {
		return node
	}
	feat, thresh, ok := b.bestSplit(idx)
	if !ok {
		return node
	}
	var left, right []int
	for _, i := range idx {
		if b.samples[i].X[feat] <= thresh {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < b.minLeaf || len(right) < b.minLeaf {
		return node
	}
	l := b.build(left, depth+1)
	r := b.build(right, depth+1)
	b.tree.nodes[node].feature = feat
	b.tree.nodes[node].thresh = thresh
	b.tree.nodes[node].left = l
	b.tree.nodes[node].right = r
	return node
}

// bestSplit finds the (feature, threshold) minimizing the weighted child
// variance, scanning sorted feature values in O(n log n) per feature.
func (b *treeBuilder) bestSplit(idx []int) (int, float64, bool) {
	bestGain := 0.0
	bestFeat := -1
	bestThresh := 0.0

	var totalSum, totalSq float64
	for _, i := range idx {
		y := b.samples[i].Y
		totalSum += y
		totalSq += y * y
	}
	n := float64(len(idx))
	parentSSE := totalSq - totalSum*totalSum/n

	features := b.pickFeatures()
	order := make([]int, len(idx))
	for _, f := range features {
		copy(order, idx)
		sort.Slice(order, func(a, c int) bool {
			return b.samples[order[a]].X[f] < b.samples[order[c]].X[f]
		})
		var lSum, lSq float64
		lN := 0.0
		for k := 0; k < len(order)-1; k++ {
			y := b.samples[order[k]].Y
			lSum += y
			lSq += y * y
			lN++
			xv := b.samples[order[k]].X[f]
			xn := b.samples[order[k+1]].X[f]
			if xv == xn {
				continue
			}
			if int(lN) < b.minLeaf || len(order)-int(lN) < b.minLeaf {
				continue
			}
			rSum := totalSum - lSum
			rSq := totalSq - lSq
			rN := n - lN
			sse := (lSq - lSum*lSum/lN) + (rSq - rSum*rSum/rN)
			gain := parentSSE - sse
			if gain > bestGain+1e-12 {
				bestGain = gain
				bestFeat = f
				bestThresh = (xv + xn) / 2
			}
		}
	}
	return bestFeat, bestThresh, bestFeat >= 0
}

// pickFeatures returns the candidate feature set for one split.
func (b *treeBuilder) pickFeatures() []int {
	all := make([]int, NumFeatures)
	for i := range all {
		all[i] = i
	}
	if b.featureFrac <= 0 || b.featureFrac >= 1 || b.rng == nil {
		return all
	}
	k := int(b.featureFrac*NumFeatures + 0.5)
	if k < 1 {
		k = 1
	}
	b.rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	return all[:k]
}
