// Package ml implements the machine-learning stack Dopia uses to predict
// the best degree of parallelism (paper §5.2 and §9.2): the Table 1
// feature vector, and from-scratch implementations of the four model
// families the paper compares — linear regression, support-vector
// regression (realized as RBF kernel ridge regression, which has the same
// O(#training points) inference cost profile that drives the paper's
// overhead findings), a CART decision-tree regressor, and a random forest
// — plus k-fold cross-validation.
package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// NumFeatures is the length of the Table 1 feature vector.
const NumFeatures = 11

// Feature indices into a feature vector (Table 1 of the paper).
const (
	FMemConstant = iota
	FMemContinuous
	FMemStride
	FMemRandom
	FArithInt
	FArithFloat
	FWorkDim
	FGlobalSize
	FLocalSize
	FCPUUtil
	FGPUUtil
)

// FeatureNames lists the feature names in index order.
var FeatureNames = [NumFeatures]string{
	"#mem_constant", "#mem_continuous", "#mem_stride", "#mem_random",
	"#arith_int", "#arith_float",
	"work_dim", "global_size", "local_size",
	"CPU_util", "GPU_util",
}

// Features is one Table 1 feature vector.
type Features [NumFeatures]float64

// Sample is a training example: a feature vector and its observed
// normalized performance (1 = the best configuration for the workload).
type Sample struct {
	X Features
	Y float64
}

// Dataset is a set of training samples.
type Dataset struct {
	Samples []Sample
}

// Add appends a sample.
func (d *Dataset) Add(x Features, y float64) {
	d.Samples = append(d.Samples, Sample{X: x, Y: y})
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Samples) }

// Clone returns a deep copy.
func (d *Dataset) Clone() *Dataset {
	return &Dataset{Samples: append([]Sample(nil), d.Samples...)}
}

// Shuffle permutes the samples with the given RNG.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	rng.Shuffle(len(d.Samples), func(i, j int) {
		d.Samples[i], d.Samples[j] = d.Samples[j], d.Samples[i]
	})
}

// Fold returns the i-th of k cross-validation folds: test is the i-th
// slice, train the rest.
func (d *Dataset) Fold(i, k int) (train, test *Dataset, err error) {
	n := len(d.Samples)
	if k < 2 || k > n {
		return nil, nil, fmt.Errorf("ml: invalid fold count %d for %d samples", k, n)
	}
	if i < 0 || i >= k {
		return nil, nil, fmt.Errorf("ml: fold index %d out of range", i)
	}
	lo := i * n / k
	hi := (i + 1) * n / k
	test = &Dataset{Samples: append([]Sample(nil), d.Samples[lo:hi]...)}
	train = &Dataset{Samples: make([]Sample, 0, n-(hi-lo))}
	train.Samples = append(train.Samples, d.Samples[:lo]...)
	train.Samples = append(train.Samples, d.Samples[hi:]...)
	return train, test, nil
}

// Model is a trained regressor over Table 1 feature vectors.
type Model interface {
	// Name identifies the model family (LIN, SVR, DT, RF).
	Name() string
	// Predict returns the estimated normalized performance of a
	// configuration described by the feature vector.
	Predict(x Features) float64
}

// Trainer fits a model to a dataset.
type Trainer interface {
	Name() string
	Fit(d *Dataset) (Model, error)
}

// scaler standardizes features (zero mean, unit variance); models that
// are scale-sensitive (LIN, SVR) embed one.
type scaler struct {
	mean [NumFeatures]float64
	std  [NumFeatures]float64
}

func fitScaler(d *Dataset) *scaler {
	s := &scaler{}
	n := float64(len(d.Samples))
	if n == 0 {
		for i := range s.std {
			s.std[i] = 1
		}
		return s
	}
	for _, sm := range d.Samples {
		for i, v := range sm.X {
			s.mean[i] += v
		}
	}
	for i := range s.mean {
		s.mean[i] /= n
	}
	for _, sm := range d.Samples {
		for i, v := range sm.X {
			dv := v - s.mean[i]
			s.std[i] += dv * dv
		}
	}
	for i := range s.std {
		s.std[i] = math.Sqrt(s.std[i] / n)
		if s.std[i] < 1e-12 {
			s.std[i] = 1
		}
	}
	return s
}

func (s *scaler) apply(x Features) Features {
	var out Features
	for i, v := range x {
		out[i] = (v - s.mean[i]) / s.std[i]
	}
	return out
}

// MSE returns the mean squared error of a model on a dataset.
func MSE(m Model, d *Dataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	var s float64
	for _, sm := range d.Samples {
		e := m.Predict(sm.X) - sm.Y
		s += e * e
	}
	return s / float64(d.Len())
}

// MAE returns the mean absolute error of a model on a dataset.
func MAE(m Model, d *Dataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	var s float64
	for _, sm := range d.Samples {
		s += math.Abs(m.Predict(sm.X) - sm.Y)
	}
	return s / float64(d.Len())
}
