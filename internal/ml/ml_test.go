package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// synthDataset builds a dataset from a deterministic target function with
// mild noise.
func synthDataset(n int, seed int64, f func(x Features) float64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{}
	for i := 0; i < n; i++ {
		var x Features
		for j := range x {
			x[j] = rng.Float64() * 4
		}
		d.Add(x, f(x)+rng.NormFloat64()*0.01)
	}
	return d
}

func linearTarget(x Features) float64 {
	return 0.3*x[FCPUUtil] - 0.2*x[FGPUUtil] + 0.05*x[FMemRandom] + 0.1
}

func nonlinearTarget(x Features) float64 {
	// A bumpy response resembling the DoP landscape: performance peaks at
	// a partial GPU allocation when random accesses dominate.
	p := x[FCPUUtil] * 0.2
	p += math.Sin(x[FGPUUtil]*2) * 0.3
	if x[FMemRandom] > 2 {
		p -= x[FGPUUtil] * 0.2
	}
	return p
}

func TestLinearRecoversLinearTarget(t *testing.T) {
	d := synthDataset(500, 1, linearTarget)
	m, err := LinearTrainer{}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	if mse := MSE(m, d); mse > 1e-3 {
		t.Errorf("LIN should fit a linear target: mse=%v", mse)
	}
}

func TestTreeBeatsLinearOnNonlinear(t *testing.T) {
	train := synthDataset(1500, 2, nonlinearTarget)
	test := synthDataset(300, 3, nonlinearTarget)
	lin, err := LinearTrainer{}.Fit(train)
	if err != nil {
		t.Fatal(err)
	}
	dt, err := TreeTrainer{}.Fit(train)
	if err != nil {
		t.Fatal(err)
	}
	lm, tm := MSE(lin, test), MSE(dt, test)
	t.Logf("nonlinear target: LIN mse=%.5f DT mse=%.5f", lm, tm)
	if tm >= lm {
		t.Errorf("DT (%v) should beat LIN (%v) on nonlinear target", tm, lm)
	}
}

func TestForestBeatsSingleTreeOutOfSample(t *testing.T) {
	train := synthDataset(800, 4, nonlinearTarget)
	test := synthDataset(400, 5, nonlinearTarget)
	dt, err := TreeTrainer{MaxDepth: 20, MinLeaf: 1}.Fit(train)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := ForestTrainer{Trees: 30, Seed: 7}.Fit(train)
	if err != nil {
		t.Fatal(err)
	}
	dtE, rfE := MSE(dt, test), MSE(rf, test)
	t.Logf("DT mse=%.5f RF mse=%.5f", dtE, rfE)
	if rfE >= dtE {
		t.Errorf("RF (%v) should generalize better than an unpruned tree (%v)", rfE, dtE)
	}
}

func TestSVRFitsSmoothTarget(t *testing.T) {
	train := synthDataset(600, 6, nonlinearTarget)
	test := synthDataset(200, 7, nonlinearTarget)
	svr, err := SVRTrainer{}.Fit(train)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := LinearTrainer{}.Fit(train)
	if err != nil {
		t.Fatal(err)
	}
	se, le := MSE(svr, test), MSE(lin, test)
	t.Logf("SVR mse=%.5f LIN mse=%.5f", se, le)
	if se >= le {
		t.Errorf("SVR (%v) should beat LIN (%v) on smooth nonlinear target", se, le)
	}
}

func TestSVRSubsampling(t *testing.T) {
	d := synthDataset(300, 8, linearTarget)
	m, err := SVRTrainer{MaxTrain: 64}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	if sp := m.(*svrModel).SupportPoints(); sp > 150 {
		t.Errorf("subsampled SVR kept %d support points, want <= ~64", sp)
	}
}

func TestTreePredictionWithinTrainingRange(t *testing.T) {
	d := synthDataset(400, 9, nonlinearTarget)
	m, err := TreeTrainer{}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range d.Samples {
		lo = math.Min(lo, s.Y)
		hi = math.Max(hi, s.Y)
	}
	// Property: a regression tree can never extrapolate beyond the
	// training targets.
	f := func(a, b, c, g float64) bool {
		x := Features{math.Abs(a), math.Abs(b), math.Abs(c), 0, 0, 0, 1, 1024, 64, math.Mod(math.Abs(g), 1), 0.5}
		y := m.Predict(x)
		return y >= lo-1e-9 && y <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFoldPartition(t *testing.T) {
	d := synthDataset(103, 10, linearTarget)
	k := 8
	seen := 0
	for i := 0; i < k; i++ {
		train, test, err := d.Fold(i, k)
		if err != nil {
			t.Fatal(err)
		}
		if train.Len()+test.Len() != d.Len() {
			t.Fatalf("fold %d: %d+%d != %d", i, train.Len(), test.Len(), d.Len())
		}
		seen += test.Len()
	}
	if seen != d.Len() {
		t.Errorf("folds cover %d samples, want %d", seen, d.Len())
	}
	if _, _, err := d.Fold(9, 8); err == nil {
		t.Error("expected error for out-of-range fold")
	}
	if _, _, err := d.Fold(0, 1); err == nil {
		t.Error("expected error for k=1")
	}
}

func TestCrossValidateAllModels(t *testing.T) {
	d := synthDataset(320, 11, nonlinearTarget)
	trainers := []Trainer{
		LinearTrainer{}, SVRTrainer{}, TreeTrainer{}, ForestTrainer{Trees: 10, Seed: 1},
	}
	for _, tr := range trainers {
		res, err := CrossValidate(tr, d, 8, 42)
		if err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
		if res.MSE <= 0 || math.IsNaN(res.MSE) {
			t.Errorf("%s: bad MSE %v", tr.Name(), res.MSE)
		}
		t.Logf("%s: mse=%.5f mae=%.5f train=%v infer=%v",
			res.Trainer, res.MSE, res.MAE, res.TrainTime, res.InferTime)
	}
}

func TestSVRInferenceCostlierThanTree(t *testing.T) {
	d := synthDataset(1200, 12, nonlinearTarget)
	svrRes, err := CrossValidate(SVRTrainer{}, d, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	dtRes, err := CrossValidate(TreeTrainer{}, d, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Figure 10b: SVR inference is orders of magnitude more
	// expensive than DT.
	if svrRes.InferTime < 5*dtRes.InferTime {
		t.Errorf("SVR inference (%v) should dwarf DT (%v)", svrRes.InferTime, dtRes.InferTime)
	}
}

func TestSelectBest(t *testing.T) {
	d := synthDataset(500, 13, linearTarget)
	m, err := LinearTrainer{}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	// Candidates varying CPU_util: linearTarget grows with it, so the
	// model should pick the largest.
	var cands []Candidate
	for _, u := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		x := Features{}
		x[FCPUUtil] = u
		cands = append(cands, Candidate{X: x, TruePerf: u, Tag: u})
	}
	best, err := SelectBest(m, cands)
	if err != nil {
		t.Fatal(err)
	}
	if cands[best].Tag.(float64) != 1.0 {
		t.Errorf("selected %v, want 1.0", cands[best].Tag)
	}
	if _, err := SelectBest(m, nil); err == nil {
		t.Error("expected error for empty candidates")
	}
}

func TestSolveSPD(t *testing.T) {
	// Simple 2x2: [[2,1],[1,3]] x = [5, 10] -> x = [1, 3].
	x, err := solveSPD([]float64{2, 1, 1, 3}, []float64{5, 10}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Errorf("solveSPD = %v, want [1 3]", x)
	}
	// Non-SPD falls back to Gaussian elimination.
	x, err = solveSPD([]float64{0, 1, 1, 0}, []float64{2, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-9 || math.Abs(x[1]-2) > 1e-9 {
		t.Errorf("gauss fallback = %v, want [3 2]", x)
	}
	// Singular system errors out.
	if _, err := solveSPD([]float64{1, 1, 1, 1}, []float64{1, 2}, 2); err == nil {
		t.Error("expected singular-system error")
	}
}

func TestScalerProperties(t *testing.T) {
	d := synthDataset(200, 14, linearTarget)
	sc := fitScaler(d)
	// Property: scaled features have ~zero mean and ~unit variance.
	var mean, varsum [NumFeatures]float64
	for _, s := range d.Samples {
		x := sc.apply(s.X)
		for i, v := range x {
			mean[i] += v
		}
	}
	n := float64(d.Len())
	for i := range mean {
		mean[i] /= n
	}
	for _, s := range d.Samples {
		x := sc.apply(s.X)
		for i, v := range x {
			dv := v - mean[i]
			varsum[i] += dv * dv
		}
	}
	for i := range mean {
		if math.Abs(mean[i]) > 1e-9 {
			t.Errorf("feature %d scaled mean = %v", i, mean[i])
		}
		if v := varsum[i] / n; math.Abs(v-1) > 1e-6 {
			t.Errorf("feature %d scaled variance = %v", i, v)
		}
	}
}
