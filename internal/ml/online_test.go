package ml

import (
	"math"
	"math/rand"
	"testing"
)

func randomSample(rng *rand.Rand) Sample {
	var x Features
	for i := range x {
		x[i] = rng.Float64()*100 - 50
	}
	// A noisy linear target keeps the batch/online comparison meaningful.
	y := 0.3*x[0] - 0.7*x[4] + 0.05*x[9] + rng.NormFloat64()*0.1
	return Sample{X: x, Y: y}
}

// The online accumulator must reproduce the batch trainer exactly: same
// scaler, same standardized normal equations, same ridge.
func TestOnlineRidgeMatchesBatchFit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := &Dataset{}
	var o OnlineRidge
	for i := 0; i < 200; i++ {
		sm := randomSample(rng)
		d.Samples = append(d.Samples, sm)
		o.Observe(sm.X, sm.Y)
	}
	batch, err := LinearTrainer{}.Fit(d)
	if err != nil {
		t.Fatalf("batch fit: %v", err)
	}
	inc, err := o.Fit()
	if err != nil {
		t.Fatalf("online fit: %v", err)
	}
	for i := 0; i < 50; i++ {
		x := randomSample(rng).X
		b, n := batch.Predict(x), inc.Predict(x)
		if math.Abs(b-n) > 1e-6*(1+math.Abs(b)) {
			t.Fatalf("prediction diverges at probe %d: batch %v online %v", i, b, n)
		}
	}
}

// Observing then Forgetting a prefix must equal a batch fit of the
// suffix: the sliding window is exact, not approximate.
func TestOnlineRidgeForgetIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	all := make([]Sample, 120)
	for i := range all {
		all[i] = randomSample(rng)
	}
	var o OnlineRidge
	for _, sm := range all {
		o.Observe(sm.X, sm.Y)
	}
	for _, sm := range all[:60] {
		o.Forget(sm.X, sm.Y)
	}
	if got, want := o.Len(), 60; got != want {
		t.Fatalf("window length %d, want %d", got, want)
	}
	suffix := &Dataset{Samples: all[60:]}
	batch, err := LinearTrainer{}.Fit(suffix)
	if err != nil {
		t.Fatalf("batch fit: %v", err)
	}
	inc, err := o.Fit()
	if err != nil {
		t.Fatalf("online fit: %v", err)
	}
	for i := 0; i < 50; i++ {
		x := randomSample(rng).X
		b, n := batch.Predict(x), inc.Predict(x)
		if math.Abs(b-n) > 1e-5*(1+math.Abs(b)) {
			t.Fatalf("windowed prediction diverges: batch %v online %v", b, n)
		}
	}
}

func TestOnlineRidgeTooFewSamples(t *testing.T) {
	var o OnlineRidge
	if _, err := o.Fit(); err == nil {
		t.Fatal("empty fit should fail")
	}
	o.Observe(Features{1}, 1)
	if _, err := o.Fit(); err == nil {
		t.Fatal("single-sample fit should fail")
	}
}

func TestProvenanceRoundTrip(t *testing.T) {
	d := &Dataset{}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 40; i++ {
		d.Samples = append(d.Samples, randomSample(rng))
	}
	m, err := LinearTrainer{}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	p := Provenance{Tenant: "s-1", Generation: 7, Samples: 40, Origin: "online", Parent: "LIN"}
	tagged := WithProvenance(m, p)
	if got, ok := ProvenanceOf(tagged); !ok || got != p {
		t.Fatalf("ProvenanceOf = %+v, %v; want %+v", got, ok, p)
	}
	// Tagging must not change predictions.
	x := randomSample(rng).X
	if tagged.Predict(x) != m.Predict(x) {
		t.Fatal("provenance wrapper changed predictions")
	}
	// Round-trip through serialization.
	path := t.TempDir() + "/model.json"
	if err := SaveModelFile(path, tagged); err != nil {
		t.Fatalf("save: %v", err)
	}
	back, err := LoadModelFile(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if got, ok := ProvenanceOf(back); !ok || got != p {
		t.Fatalf("provenance lost in round trip: %+v, %v", got, ok)
	}
	if back.Predict(x) != m.Predict(x) {
		t.Fatal("round-tripped model predicts differently")
	}
	// Untagged models keep loading without provenance.
	if err := SaveModelFile(path, m); err != nil {
		t.Fatal(err)
	}
	plain, err := LoadModelFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ProvenanceOf(plain); ok {
		t.Fatal("plain model grew provenance from nowhere")
	}
}
