package ml

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, m Model) Model {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveModel(&buf, m); err != nil {
		t.Fatalf("save: %v", err)
	}
	m2, err := LoadModel(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if m2.Name() != m.Name() {
		t.Fatalf("family changed: %s -> %s", m.Name(), m2.Name())
	}
	return m2
}

// TestSerializationRoundTrip: every model family survives save/load with
// bit-identical predictions.
func TestSerializationRoundTrip(t *testing.T) {
	d := synthDataset(300, 42, nonlinearTarget)
	trainers := []Trainer{
		LinearTrainer{}, SVRTrainer{MaxTrain: 64},
		TreeTrainer{}, ForestTrainer{Trees: 5, Seed: 3},
	}
	rng := rand.New(rand.NewSource(9))
	for _, tr := range trainers {
		m, err := tr.Fit(d)
		if err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
		m2 := roundTrip(t, m)
		prop := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			var x Features
			for i := range x {
				x[i] = r.Float64() * 10
			}
			return m.Predict(x) == m2.Predict(x)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
			t.Errorf("%s: round-trip predictions differ: %v", tr.Name(), err)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	d := synthDataset(200, 1, linearTarget)
	m, err := TreeTrainer{}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := SaveModelFile(path, m); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadModelFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var x Features
	x[FCPUUtil] = 0.5
	if m.Predict(x) != m2.Predict(x) {
		t.Error("file round trip changed predictions")
	}
}

func TestLoadModelRejectsGarbage(t *testing.T) {
	if _, err := LoadModel(strings.NewReader("not json")); err == nil {
		t.Error("expected error for non-JSON input")
	}
	if _, err := LoadModel(strings.NewReader(`{"family":"XGB","data":{}}`)); err == nil {
		t.Error("expected error for unknown family")
	}
	// A tree with out-of-range children must be rejected.
	bad := `{"family":"DT","data":{"nodes":[{"f":0,"t":1,"l":5,"r":6,"v":0}]}}`
	if _, err := LoadModel(strings.NewReader(bad)); err == nil {
		t.Error("expected error for corrupt tree")
	}
	badFeat := `{"family":"DT","data":{"nodes":[{"f":99,"t":1,"l":0,"r":0,"v":0}]}}`
	if _, err := LoadModel(strings.NewReader(badFeat)); err == nil {
		t.Error("expected error for invalid feature index")
	}
}

// TestExportedGoTreeMatches: the generated Go source evaluates to the same
// values as the in-memory tree (checked by interpreting the generated
// decision structure textually on a few nodes, and structurally by
// ensuring every leaf value appears).
func TestExportTree(t *testing.T) {
	d := synthDataset(300, 5, nonlinearTarget)
	m, err := TreeTrainer{MaxDepth: 4}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	var cbuf, gbuf bytes.Buffer
	if err := ExportTreeC(&cbuf, m, "dopia_predict"); err != nil {
		t.Fatal(err)
	}
	if err := ExportTreeGo(&gbuf, m, "model", "Predict"); err != nil {
		t.Fatal(err)
	}
	cSrc, goSrc := cbuf.String(), gbuf.String()
	for _, want := range []string{"double dopia_predict(const double f[11])", "return", "if (f["} {
		if !strings.Contains(cSrc, want) {
			t.Errorf("C export missing %q:\n%s", want, cSrc)
		}
	}
	for _, want := range []string{"package model", "func Predict(f [11]float64) float64", "if f["} {
		if !strings.Contains(goSrc, want) {
			t.Errorf("Go export missing %q:\n%s", want, goSrc)
		}
	}
	// Structural completeness: the number of return statements equals the
	// number of leaves.
	tm := m.(*treeModel)
	leaves := 0
	for _, n := range tm.nodes {
		if n.feature < 0 {
			leaves++
		}
	}
	if got := strings.Count(cSrc, "return "); got != leaves {
		t.Errorf("C export has %d returns, tree has %d leaves", got, leaves)
	}
	if got := strings.Count(goSrc, "return "); got != leaves {
		t.Errorf("Go export has %d returns, tree has %d leaves", got, leaves)
	}
	// Exporters refuse non-tree models.
	lin, _ := LinearTrainer{}.Fit(d)
	if err := ExportTreeC(&bytes.Buffer{}, lin, ""); err == nil {
		t.Error("expected error exporting a linear model as a tree")
	}
}
