package ml

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"dopia/internal/faults"
)

// This file implements model persistence: a trained model can be saved to
// JSON and reloaded without retraining, mirroring Dopia's offline-train /
// online-infer split (the paper trains with scikit-learn offline and ships
// the model into the runtime).

// modelEnvelope wraps any serialized model with its family tag and
// optional provenance (absent for models saved before provenance
// existed, so old model files load unchanged).
type modelEnvelope struct {
	Family     string          `json:"family"`
	Data       json.RawMessage `json:"data"`
	Provenance *Provenance     `json:"provenance,omitempty"`
}

type linearJSON struct {
	Mean [NumFeatures]float64 `json:"mean"`
	Std  [NumFeatures]float64 `json:"std"`
	W    []float64            `json:"w"`
}

type svrJSON struct {
	Mean  [NumFeatures]float64 `json:"mean"`
	Std   [NumFeatures]float64 `json:"std"`
	Gamma float64              `json:"gamma"`
	Xs    []Features           `json:"support"`
	Alpha []float64            `json:"alpha"`
}

type treeJSON struct {
	Nodes []treeNodeJSON `json:"nodes"`
}

type treeNodeJSON struct {
	Feature int     `json:"f"`
	Thresh  float64 `json:"t"`
	Left    int32   `json:"l"`
	Right   int32   `json:"r"`
	Value   float64 `json:"v"`
}

type forestJSON struct {
	Trees []treeJSON `json:"trees"`
}

// SaveModel serializes a trained model to the writer. A provenance tag
// (WithProvenance) rides along in the envelope.
func SaveModel(w io.Writer, m Model) error {
	env := modelEnvelope{}
	if p, ok := ProvenanceOf(m); ok {
		pp := p
		env.Provenance = &pp
		m = Unwrap(m)
	}
	env.Family = m.Name()
	var payload any
	switch mm := m.(type) {
	case *linearModel:
		payload = linearJSON{Mean: mm.scale.mean, Std: mm.scale.std, W: mm.w}
	case *svrModel:
		payload = svrJSON{
			Mean: mm.scale.mean, Std: mm.scale.std,
			Gamma: mm.gamma, Xs: mm.xs, Alpha: mm.alpha,
		}
	case *treeModel:
		payload = treeToJSON(mm)
	case *forestModel:
		fj := forestJSON{}
		for _, t := range mm.trees {
			fj.Trees = append(fj.Trees, treeToJSON(t))
		}
		payload = fj
	default:
		return fmt.Errorf("ml: cannot serialize model type %T", m)
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	env.Data = raw
	return json.NewEncoder(w).Encode(env)
}

// invalidf builds a descriptive, classified model-load error.
func invalidf(format string, args ...any) error {
	return faults.Wrap(faults.StageModelLoad,
		fmt.Errorf("%w: %s", faults.ErrModelInvalid, fmt.Sprintf(format, args...)))
}

// finiteSlice reports the index of the first non-finite value, or -1.
func nonFiniteAt(vs []float64) int {
	for i, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return i
		}
	}
	return -1
}

// checkScaler validates a deserialized feature scaler: all statistics
// finite, no zero or negative standard deviations (which would blow up
// or invert the normalization).
func checkScaler(mean, std [NumFeatures]float64) error {
	if i := nonFiniteAt(mean[:]); i >= 0 {
		return invalidf("scaler mean[%d] is not finite (%v)", i, mean[i])
	}
	if i := nonFiniteAt(std[:]); i >= 0 {
		return invalidf("scaler std[%d] is not finite (%v)", i, std[i])
	}
	for i, s := range std {
		if s <= 0 {
			return invalidf("scaler std[%d] = %v, want > 0", i, s)
		}
	}
	return nil
}

// LoadModel reads a model serialized with SaveModel, validating the
// payload defensively: truncated or corrupted streams, wrong weight
// counts, non-finite (NaN/Inf) weights, malformed tree topologies, and
// unknown families all produce descriptive, classified errors instead of
// a garbage model. LoadModel never panics.
func LoadModel(r io.Reader) (m Model, err error) {
	defer faults.Recover(faults.StageModelLoad, &err)
	if err := faults.Hit("ml.load"); err != nil {
		return nil, faults.Wrap(faults.StageModelLoad, err)
	}
	var env modelEnvelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, faults.Wrap(faults.StageModelLoad, fmt.Errorf(
			"%w: ml: model file truncated or not valid JSON: %w", faults.ErrModelInvalid, err))
	}
	// Reattach provenance once the family payload validated.
	defer func() {
		if err == nil && m != nil && env.Provenance != nil {
			m = WithProvenance(m, *env.Provenance)
		}
	}()
	switch env.Family {
	case "LIN":
		var lj linearJSON
		if err := json.Unmarshal(env.Data, &lj); err != nil {
			return nil, invalidf("linear payload corrupted: %v", err)
		}
		if len(lj.W) != NumFeatures+1 {
			return nil, invalidf("linear model has %d weights, want %d", len(lj.W), NumFeatures+1)
		}
		if i := nonFiniteAt(lj.W); i >= 0 {
			return nil, invalidf("linear weight w[%d] is not finite (%v)", i, lj.W[i])
		}
		if err := checkScaler(lj.Mean, lj.Std); err != nil {
			return nil, err
		}
		return &linearModel{scale: &scaler{mean: lj.Mean, std: lj.Std}, w: lj.W}, nil
	case "SVR":
		var sj svrJSON
		if err := json.Unmarshal(env.Data, &sj); err != nil {
			return nil, invalidf("SVR payload corrupted: %v", err)
		}
		if len(sj.Xs) != len(sj.Alpha) {
			return nil, invalidf("SVR support/alpha length mismatch (%d vs %d)", len(sj.Xs), len(sj.Alpha))
		}
		if i := nonFiniteAt(sj.Alpha); i >= 0 {
			return nil, invalidf("SVR alpha[%d] is not finite (%v)", i, sj.Alpha[i])
		}
		if math.IsNaN(sj.Gamma) || math.IsInf(sj.Gamma, 0) || sj.Gamma < 0 {
			return nil, invalidf("SVR gamma %v invalid, want finite >= 0", sj.Gamma)
		}
		for i, x := range sj.Xs {
			if j := nonFiniteAt(x[:]); j >= 0 {
				return nil, invalidf("SVR support vector %d feature %d is not finite (%v)", i, j, x[j])
			}
		}
		if err := checkScaler(sj.Mean, sj.Std); err != nil {
			return nil, err
		}
		return &svrModel{
			scale: &scaler{mean: sj.Mean, std: sj.Std},
			gamma: sj.Gamma, xs: sj.Xs, alpha: sj.Alpha,
		}, nil
	case "DT":
		var tj treeJSON
		if err := json.Unmarshal(env.Data, &tj); err != nil {
			return nil, invalidf("decision-tree payload corrupted: %v", err)
		}
		tm, err := treeFromJSON(tj)
		if err != nil {
			return nil, err // avoid a typed-nil Model interface
		}
		return tm, nil
	case "RF":
		var fj forestJSON
		if err := json.Unmarshal(env.Data, &fj); err != nil {
			return nil, invalidf("forest payload corrupted: %v", err)
		}
		if len(fj.Trees) == 0 {
			return nil, invalidf("forest has no trees")
		}
		fm := &forestModel{}
		for i, tj := range fj.Trees {
			t, err := treeFromJSON(tj)
			if err != nil {
				return nil, fmt.Errorf("ml: forest tree %d: %w", i, err)
			}
			fm.trees = append(fm.trees, t)
		}
		return fm, nil
	}
	return nil, invalidf("unknown model family %q", env.Family)
}

// SaveModelFile and LoadModelFile are path-based conveniences.
func SaveModelFile(path string, m Model) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return SaveModel(f, m)
}

// LoadModelFile reads a model from a file written by SaveModelFile.
func LoadModelFile(path string) (Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, faults.Wrap(faults.StageModelLoad, err)
	}
	defer f.Close()
	return LoadModel(f)
}

func treeToJSON(t *treeModel) treeJSON {
	tj := treeJSON{Nodes: make([]treeNodeJSON, len(t.nodes))}
	for i, n := range t.nodes {
		tj.Nodes[i] = treeNodeJSON{
			Feature: n.feature, Thresh: n.thresh,
			Left: n.left, Right: n.right, Value: n.value,
		}
	}
	return tj
}

func treeFromJSON(tj treeJSON) (*treeModel, error) {
	if len(tj.Nodes) == 0 {
		return nil, invalidf("decision tree has no nodes")
	}
	t := &treeModel{nodes: make([]treeNode, len(tj.Nodes))}
	for i, n := range tj.Nodes {
		if n.Feature >= NumFeatures {
			return nil, invalidf("tree node %d has invalid feature %d (max %d)", i, n.Feature, NumFeatures-1)
		}
		if math.IsNaN(n.Value) || math.IsInf(n.Value, 0) {
			return nil, invalidf("tree node %d has non-finite value %v", i, n.Value)
		}
		if n.Feature >= 0 {
			if math.IsNaN(n.Thresh) || math.IsInf(n.Thresh, 0) {
				return nil, invalidf("tree node %d has non-finite threshold %v", i, n.Thresh)
			}
			// Children must point strictly forward (the trainer emits
			// pre-order trees); this also guarantees Predict terminates
			// on any accepted tree — no cycles possible.
			if int(n.Left) <= i || int(n.Left) >= len(tj.Nodes) ||
				int(n.Right) <= i || int(n.Right) >= len(tj.Nodes) {
				return nil, invalidf("tree node %d has out-of-range or backward children (l=%d r=%d of %d)",
					i, n.Left, n.Right, len(tj.Nodes))
			}
		}
		t.nodes[i] = treeNode{
			feature: n.Feature, thresh: n.Thresh,
			left: n.Left, right: n.Right, value: n.Value,
		}
	}
	return t, nil
}
