package ml

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// This file implements model persistence: a trained model can be saved to
// JSON and reloaded without retraining, mirroring Dopia's offline-train /
// online-infer split (the paper trains with scikit-learn offline and ships
// the model into the runtime).

// modelEnvelope wraps any serialized model with its family tag.
type modelEnvelope struct {
	Family string          `json:"family"`
	Data   json.RawMessage `json:"data"`
}

type linearJSON struct {
	Mean [NumFeatures]float64 `json:"mean"`
	Std  [NumFeatures]float64 `json:"std"`
	W    []float64            `json:"w"`
}

type svrJSON struct {
	Mean  [NumFeatures]float64 `json:"mean"`
	Std   [NumFeatures]float64 `json:"std"`
	Gamma float64              `json:"gamma"`
	Xs    []Features           `json:"support"`
	Alpha []float64            `json:"alpha"`
}

type treeJSON struct {
	Nodes []treeNodeJSON `json:"nodes"`
}

type treeNodeJSON struct {
	Feature int     `json:"f"`
	Thresh  float64 `json:"t"`
	Left    int32   `json:"l"`
	Right   int32   `json:"r"`
	Value   float64 `json:"v"`
}

type forestJSON struct {
	Trees []treeJSON `json:"trees"`
}

// SaveModel serializes a trained model to the writer.
func SaveModel(w io.Writer, m Model) error {
	env := modelEnvelope{Family: m.Name()}
	var payload any
	switch mm := m.(type) {
	case *linearModel:
		payload = linearJSON{Mean: mm.scale.mean, Std: mm.scale.std, W: mm.w}
	case *svrModel:
		payload = svrJSON{
			Mean: mm.scale.mean, Std: mm.scale.std,
			Gamma: mm.gamma, Xs: mm.xs, Alpha: mm.alpha,
		}
	case *treeModel:
		payload = treeToJSON(mm)
	case *forestModel:
		fj := forestJSON{}
		for _, t := range mm.trees {
			fj.Trees = append(fj.Trees, treeToJSON(t))
		}
		payload = fj
	default:
		return fmt.Errorf("ml: cannot serialize model type %T", m)
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	env.Data = raw
	return json.NewEncoder(w).Encode(env)
}

// LoadModel reads a model serialized with SaveModel.
func LoadModel(r io.Reader) (Model, error) {
	var env modelEnvelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, err
	}
	switch env.Family {
	case "LIN":
		var lj linearJSON
		if err := json.Unmarshal(env.Data, &lj); err != nil {
			return nil, err
		}
		if len(lj.W) != NumFeatures+1 {
			return nil, fmt.Errorf("ml: linear model has %d weights, want %d", len(lj.W), NumFeatures+1)
		}
		return &linearModel{scale: &scaler{mean: lj.Mean, std: lj.Std}, w: lj.W}, nil
	case "SVR":
		var sj svrJSON
		if err := json.Unmarshal(env.Data, &sj); err != nil {
			return nil, err
		}
		if len(sj.Xs) != len(sj.Alpha) {
			return nil, fmt.Errorf("ml: SVR support/alpha length mismatch")
		}
		return &svrModel{
			scale: &scaler{mean: sj.Mean, std: sj.Std},
			gamma: sj.Gamma, xs: sj.Xs, alpha: sj.Alpha,
		}, nil
	case "DT":
		var tj treeJSON
		if err := json.Unmarshal(env.Data, &tj); err != nil {
			return nil, err
		}
		return treeFromJSON(tj)
	case "RF":
		var fj forestJSON
		if err := json.Unmarshal(env.Data, &fj); err != nil {
			return nil, err
		}
		fm := &forestModel{}
		for _, tj := range fj.Trees {
			t, err := treeFromJSON(tj)
			if err != nil {
				return nil, err
			}
			fm.trees = append(fm.trees, t)
		}
		return fm, nil
	}
	return nil, fmt.Errorf("ml: unknown model family %q", env.Family)
}

// SaveModelFile and LoadModelFile are path-based conveniences.
func SaveModelFile(path string, m Model) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return SaveModel(f, m)
}

// LoadModelFile reads a model from a file written by SaveModelFile.
func LoadModelFile(path string) (Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadModel(f)
}

func treeToJSON(t *treeModel) treeJSON {
	tj := treeJSON{Nodes: make([]treeNodeJSON, len(t.nodes))}
	for i, n := range t.nodes {
		tj.Nodes[i] = treeNodeJSON{
			Feature: n.feature, Thresh: n.thresh,
			Left: n.left, Right: n.right, Value: n.value,
		}
	}
	return tj
}

func treeFromJSON(tj treeJSON) (*treeModel, error) {
	t := &treeModel{nodes: make([]treeNode, len(tj.Nodes))}
	for i, n := range tj.Nodes {
		if n.Feature >= NumFeatures {
			return nil, fmt.Errorf("ml: node %d has invalid feature %d", i, n.Feature)
		}
		if n.Feature >= 0 {
			if n.Left < 0 || int(n.Left) >= len(tj.Nodes) ||
				n.Right < 0 || int(n.Right) >= len(tj.Nodes) {
				return nil, fmt.Errorf("ml: node %d has out-of-range children", i)
			}
		}
		t.nodes[i] = treeNode{
			feature: n.Feature, thresh: n.Thresh,
			left: n.Left, right: n.Right, value: n.Value,
		}
	}
	return t, nil
}
