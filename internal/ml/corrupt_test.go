package ml

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"dopia/internal/faults"
)

// corruptCase is one malformed model payload that LoadModel must reject
// with a descriptive, classified error — never a panic or garbage model.
type corruptCase struct {
	name string
	data string
}

func TestLoadModelRejectsCorruption(t *testing.T) {
	cases := []corruptCase{
		{"empty", ""},
		{"truncated-envelope", `{"family":"DT","data":{"nod`},
		{"not-json", "\x00\x01\x02model"},
		{"unknown-family", `{"family":"GBM","data":{}}`},
		{"linear-wrong-weight-count", `{"family":"LIN","data":{"mean":[0,0,0,0,0,0,0,0,0,0,0],"std":[1,1,1,1,1,1,1,1,1,1,1],"w":[1,2,3]}}`},
		{"linear-nan-weight", `{"family":"LIN","data":{"mean":[0,0,0,0,0,0,0,0,0,0,0],"std":[1,1,1,1,1,1,1,1,1,1,1],"w":["NaN",0,0,0,0,0,0,0,0,0,0,0]}}`},
		{"linear-zero-std", `{"family":"LIN","data":{"mean":[0,0,0,0,0,0,0,0,0,0,0],"std":[0,1,1,1,1,1,1,1,1,1,1],"w":[0,0,0,0,0,0,0,0,0,0,0,0]}}`},
		{"tree-empty", `{"family":"DT","data":{"nodes":[]}}`},
		{"tree-bad-feature", `{"family":"DT","data":{"nodes":[{"f":99,"t":0,"l":0,"r":0,"v":0}]}}`},
		{"tree-cycle", `{"family":"DT","data":{"nodes":[{"f":0,"t":1,"l":0,"r":0,"v":0}]}}`},
		{"tree-backward-child", `{"family":"DT","data":{"nodes":[{"f":-1,"t":0,"l":0,"r":0,"v":1},{"f":0,"t":1,"l":0,"r":0,"v":0}]}}`},
		{"tree-nan-value", `{"family":"DT","data":{"nodes":[{"f":-1,"t":0,"l":0,"r":0,"v":"NaN"}]}}`},
		{"forest-empty", `{"family":"RF","data":{"trees":[]}}`},
		{"svr-length-mismatch", `{"family":"SVR","data":{"mean":[0,0,0,0,0,0,0,0,0,0,0],"std":[1,1,1,1,1,1,1,1,1,1,1],"gamma":1,"support":[],"alpha":[1]}}`},
		{"svr-negative-gamma", `{"family":"SVR","data":{"mean":[0,0,0,0,0,0,0,0,0,0,0],"std":[1,1,1,1,1,1,1,1,1,1,1],"gamma":-2,"support":[],"alpha":[]}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := LoadModel(strings.NewReader(tc.data))
			if err == nil {
				t.Fatalf("corrupted payload accepted, got model %v", m.Name())
			}
			if m != nil {
				t.Fatalf("error returned together with a model")
			}
			if faults.StageOf(err) != faults.StageModelLoad {
				t.Errorf("error not classified as model-load: %v", err)
			}
		})
	}
}

// TestLoadModelTruncatedRoundTrip truncates a real serialized model at
// every eighth byte and checks LoadModel fails cleanly (or, at full
// length, succeeds) — no panics, no silent garbage.
func TestLoadModelTruncatedRoundTrip(t *testing.T) {
	d := synthDataset(200, 7, nonlinearTarget)
	m, err := (TreeTrainer{}).Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for n := 0; n < len(full); n += 8 {
		if _, err := LoadModel(bytes.NewReader(full[:n])); err == nil {
			// A truncated prefix that still parses must at minimum be a
			// structurally valid model; only the full payload is
			// expected, but any accepted prefix must not be garbage.
			t.Fatalf("truncated model (%d/%d bytes) accepted", n, len(full))
		}
	}
	if _, err := LoadModel(bytes.NewReader(full)); err != nil {
		t.Fatalf("full payload rejected: %v", err)
	}
}

// TestLoadModelInjection checks the ml.load fault-injection point fires
// and is classified.
func TestLoadModelInjection(t *testing.T) {
	defer faults.Reset()
	faults.InjectError("ml.load", faults.ErrModelInvalid)
	_, err := LoadModel(strings.NewReader(`{"family":"DT","data":{"nodes":[{"f":-1,"t":0,"l":0,"r":0,"v":1}]}}`))
	if err == nil || !errors.Is(err, faults.ErrModelInvalid) || !faults.IsInjected(err) {
		t.Fatalf("injected load fault not surfaced: %v", err)
	}
	faults.Reset()
	if _, err := LoadModel(strings.NewReader(`{"family":"DT","data":{"nodes":[{"f":-1,"t":0,"l":0,"r":0,"v":1}]}}`)); err != nil {
		t.Fatalf("valid single-leaf tree rejected: %v", err)
	}
}
