package ml

// LinearTrainer fits ordinary least squares with a small ridge term for
// conditioning (the paper's "Lin" baseline).
type LinearTrainer struct {
	// Ridge is the L2 regularization strength (default 1e-6).
	Ridge float64
}

// Name implements Trainer.
func (LinearTrainer) Name() string { return "LIN" }

// Fit implements Trainer.
func (tr LinearTrainer) Fit(d *Dataset) (Model, error) {
	ridge := tr.Ridge
	if ridge <= 0 {
		ridge = 1e-6
	}
	sc := fitScaler(d)
	n := NumFeatures + 1 // plus intercept
	xtx := make([]float64, n*n)
	xty := make([]float64, n)
	row := make([]float64, n)
	for _, sm := range d.Samples {
		x := sc.apply(sm.X)
		for i := 0; i < NumFeatures; i++ {
			row[i] = x[i]
		}
		row[NumFeatures] = 1
		for i := 0; i < n; i++ {
			xty[i] += row[i] * sm.Y
			for j := 0; j < n; j++ {
				xtx[i*n+j] += row[i] * row[j]
			}
		}
	}
	for i := 0; i < n; i++ {
		xtx[i*n+i] += ridge
	}
	w, err := solveSPD(xtx, xty, n)
	if err != nil {
		return nil, err
	}
	return &linearModel{scale: sc, w: w}, nil
}

type linearModel struct {
	scale *scaler
	w     []float64
}

func (m *linearModel) Name() string { return "LIN" }

func (m *linearModel) Predict(x Features) float64 {
	xs := m.scale.apply(x)
	y := m.w[NumFeatures]
	for i := 0; i < NumFeatures; i++ {
		y += m.w[i] * xs[i]
	}
	return y
}
