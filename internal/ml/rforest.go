package ml

import (
	"fmt"
	"math/rand"
)

// ForestTrainer fits a random forest of CART trees over bootstrap samples
// with per-split feature subsampling (the paper's "RF" model: best
// accuracy, highest inference cost after SVR).
type ForestTrainer struct {
	// Trees is the ensemble size (default 50).
	Trees int
	// MaxDepth limits each tree (default 16).
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (default 2).
	MinLeaf int
	// FeatureFrac is the per-split feature fraction (default 0.6).
	FeatureFrac float64
	// MaxSamples caps each bootstrap sample (default 8192): bagging over
	// subsamples keeps ensemble quality while bounding training cost on
	// the 50k+-sample datasets of the full evaluation.
	MaxSamples int
	// Seed makes training deterministic.
	Seed int64
}

// Name implements Trainer.
func (ForestTrainer) Name() string { return "RF" }

// Fit implements Trainer.
func (tr ForestTrainer) Fit(d *Dataset) (Model, error) {
	if d.Len() == 0 {
		return nil, fmt.Errorf("ml: empty dataset")
	}
	trees := tr.Trees
	if trees <= 0 {
		trees = 50
	}
	frac := tr.FeatureFrac
	if frac <= 0 {
		frac = 0.6
	}
	maxSamples := tr.MaxSamples
	if maxSamples <= 0 {
		maxSamples = 8192
	}
	bootN := d.Len()
	if bootN > maxSamples {
		bootN = maxSamples
	}
	rng := rand.New(rand.NewSource(tr.Seed + 1))
	fm := &forestModel{}
	for t := 0; t < trees; t++ {
		boot := &Dataset{Samples: make([]Sample, bootN)}
		for i := range boot.Samples {
			boot.Samples[i] = d.Samples[rng.Intn(d.Len())]
		}
		tt := TreeTrainer{
			MaxDepth:    tr.MaxDepth,
			MinLeaf:     tr.MinLeaf,
			FeatureFrac: frac,
			Rng:         rand.New(rand.NewSource(rng.Int63())),
		}
		m, err := tt.Fit(boot)
		if err != nil {
			return nil, err
		}
		fm.trees = append(fm.trees, m.(*treeModel))
	}
	return fm, nil
}

type forestModel struct {
	trees []*treeModel
}

func (f *forestModel) Name() string { return "RF" }

func (f *forestModel) Predict(x Features) float64 {
	if len(f.trees) == 0 {
		return 0
	}
	var s float64
	for _, t := range f.trees {
		s += t.Predict(x)
	}
	return s / float64(len(f.trees))
}
