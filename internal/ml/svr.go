package ml

import (
	"fmt"
	"math"
)

// SVRTrainer fits an RBF kernel regressor (kernel ridge regression).
//
// The paper trains scikit-learn's SVR; this reproduction uses kernel ridge
// regression with the same RBF kernel — the two coincide up to the
// epsilon-insensitive loss, and crucially share the property the paper's
// §9.2 measures: inference cost is O(#support points), which makes this
// the expensive model at prediction time (Figure 10b and the Dopia.SVR
// overhead bars of Figure 13). The substitution is recorded in DESIGN.md.
type SVRTrainer struct {
	// Gamma is the RBF width; <=0 selects 1/NumFeatures.
	Gamma float64
	// Lambda is the ridge strength (default 1e-3).
	Lambda float64
	// MaxTrain caps the kernel matrix size; larger datasets are
	// subsampled deterministically (every k-th sample). 0 means 2048.
	MaxTrain int
}

// Name implements Trainer.
func (SVRTrainer) Name() string { return "SVR" }

// Fit implements Trainer.
func (tr SVRTrainer) Fit(d *Dataset) (Model, error) {
	if d.Len() == 0 {
		return nil, fmt.Errorf("ml: empty dataset")
	}
	gamma := tr.Gamma
	if gamma <= 0 {
		gamma = 1.0 / NumFeatures
	}
	lambda := tr.Lambda
	if lambda <= 0 {
		lambda = 1e-3
	}
	maxTrain := tr.MaxTrain
	if maxTrain <= 0 {
		maxTrain = 2048
	}

	sc := fitScaler(d)
	samples := d.Samples
	if len(samples) > maxTrain {
		stride := (len(samples) + maxTrain - 1) / maxTrain
		sub := make([]Sample, 0, maxTrain)
		for i := 0; i < len(samples); i += stride {
			sub = append(sub, samples[i])
		}
		samples = sub
	}
	n := len(samples)
	xs := make([]Features, n)
	y := make([]float64, n)
	for i, sm := range samples {
		xs[i] = sc.apply(sm.X)
		y[i] = sm.Y
	}
	// K + lambda I, solved for the dual coefficients.
	k := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rbf(xs[i], xs[j], gamma)
			k[i*n+j] = v
			k[j*n+i] = v
		}
		k[i*n+i] += lambda
	}
	alpha, err := solveSPD(k, y, n)
	if err != nil {
		return nil, fmt.Errorf("ml: SVR solve: %w", err)
	}
	return &svrModel{scale: sc, gamma: gamma, xs: xs, alpha: alpha}, nil
}

type svrModel struct {
	scale *scaler
	gamma float64
	xs    []Features
	alpha []float64
}

func (m *svrModel) Name() string { return "SVR" }

func (m *svrModel) Predict(x Features) float64 {
	xs := m.scale.apply(x)
	var y float64
	for i, sv := range m.xs {
		y += m.alpha[i] * rbf(xs, sv, m.gamma)
	}
	return y
}

// SupportPoints returns the number of kernel evaluations per prediction.
func (m *svrModel) SupportPoints() int { return len(m.xs) }

func rbf(a, b Features, gamma float64) float64 {
	var d2 float64
	for i := range a {
		dv := a[i] - b[i]
		d2 += dv * dv
	}
	return math.Exp(-gamma * d2)
}
