package experiments

import (
	"dopia/internal/sched"
	"dopia/internal/sim"
	"dopia/internal/stats"
)

// Fig9 reproduces Figure 9: the execution time of CPU-only, GPU-only,
// best-static (19 splits, no dispatch granularity), and Dopia's dynamic
// workload distribution, normalized to best-static, over the real-world
// kernels at several input sizes, on both machines. The paper's finding:
// dynamic distribution matches or beats the best static split because the
// 1/10th-chunk dispatch is finer-grained than a 5% static step, while
// single-device execution is far worse on average.
func Fig9(s *Suite) error {
	for _, m := range Machines() {
		grid, err := s.realGrid()
		if err != nil {
			return err
		}
		var cpuN, gpuN, dynN []float64
		for _, w := range grid {
			k, err := w.CompileKernel()
			if err != nil {
				return err
			}
			ex, err := sched.NewExecutor(m, k, nil)
			if err != nil {
				return err
			}
			ex.AssumeMalleable = true
			inst, err := w.Setup()
			if err != nil {
				return err
			}
			if err := ex.Bind(inst.Args...); err != nil {
				return err
			}
			if err := ex.Launch(inst.ND); err != nil {
				return err
			}
			all := m.AllResources()
			cpu, err := ex.Run(m.CPUOnly(), sched.RunOptions{Dist: sim.Static, CPUShare: 1})
			if err != nil {
				return err
			}
			gpu, err := ex.Run(m.GPUOnly(), sched.RunOptions{Dist: sim.Static})
			if err != nil {
				return err
			}
			_, static, err := ex.BestStatic(all)
			if err != nil {
				return err
			}
			dyn, err := ex.Run(all, sched.RunOptions{Dist: sim.Dynamic})
			if err != nil {
				return err
			}
			cpuN = append(cpuN, cpu.Time/static.Time)
			gpuN = append(gpuN, gpu.Time/static.Time)
			dynN = append(dynN, dyn.Time/static.Time)
		}
		s.printf("\nFigure 9 (%s): execution time normalized to best STATIC over %d workloads\n",
			m.Name, len(grid))
		rows := [][]string{
			boxRow("CPU", stats.BoxOf(cpuN)),
			boxRow("GPU", stats.BoxOf(gpuN)),
			boxRow("STATIC", stats.BoxOf(ones(len(cpuN)))),
			boxRow("DYNAMIC", stats.BoxOf(dynN)),
		}
		stats.RenderTable(s.Out, []string{"config", "mean", "median", "p5", "p25", "p75", "p95"}, rows)
		dynBox := stats.BoxOf(dynN)
		s.printf("dynamic mean %.3fx of static (paper: ~1x or better; CPU/GPU-only much worse)\n",
			dynBox.Mean)
	}
	return nil
}

func boxRow(name string, b stats.Box) []string {
	return []string{
		name, stats.Fmt(b.Mean), stats.Fmt(b.Median),
		stats.Fmt(b.P5), stats.Fmt(b.P25), stats.Fmt(b.P75), stats.Fmt(b.P95),
	}
}

func ones(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}
