package experiments

import (
	"fmt"

	"dopia/internal/ml"
	"dopia/internal/sim"
	"dopia/internal/stats"
)

// dopiaSelections runs the paper's Dopia pipeline (DT model, k-fold CV
// over workloads) on a machine's synthetic characterizations.
func dopiaSelections(s *Suite, m *sim.Machine) ([]Selection, error) {
	if sel, ok := s.dopiaSel[m.Name]; ok {
		return sel, nil
	}
	evals, err := s.SynthEvals(m)
	if err != nil {
		return nil, err
	}
	folds := s.Folds
	if folds > len(evals) {
		folds = len(evals) / 2
	}
	sel, err := CrossValSelections(m, evals, ml.TreeTrainer{}, folds, s.Seed)
	if err != nil {
		return nil, err
	}
	s.dopiaSel[m.Name] = sel
	return sel, nil
}

// Table5 reproduces Table 5: the number of workloads for which each
// approach names the exactly-best configuration — for the fixed
// configurations, the count of workloads whose true best *is* that
// configuration; for Dopia, the count of exact predictions.
// Paper: Kaveri 253/15/7/611, Skylake 27/57/19/334 (of 1,224).
func Table5(s *Suite) error {
	s.printf("\nTable 5: correct best-configuration classifications\n")
	var rows [][]string
	for _, m := range Machines() {
		evals, err := s.SynthEvals(m)
		if err != nil {
			return err
		}
		dopia, err := dopiaSelections(s, m)
		if err != nil {
			return err
		}
		cpu := ExactCount(FixedSelections(m, evals, m.CPUOnly()))
		gpu := ExactCount(FixedSelections(m, evals, m.GPUOnly()))
		all := ExactCount(FixedSelections(m, evals, m.AllResources()))
		rows = append(rows, []string{
			m.Name,
			itoa(cpu), itoa(gpu), itoa(all), itoa(ExactCount(dopia)),
			itoa(len(evals)),
		})
	}
	stats.RenderTable(s.Out, []string{"system", "CPU", "GPU", "ALL", "Dopia", "workloads"}, rows)
	s.printf("paper (of 1224): Kaveri 253/15/7/611, Skylake 27/57/19/334\n")
	return nil
}

// Fig11 reproduces Figure 11: (a) the normalized Euclidean distance from
// the selected to the best configuration and (b) the achieved normalized
// performance, for CPU/GPU/ALL/Dopia under cross-validation. The paper's
// findings: Dopia's mean distance error is 15% (Kaveri) / 22% (Skylake),
// and its mean normalized performance 94% / 92%.
func Fig11(s *Suite) error {
	for _, m := range Machines() {
		evals, err := s.SynthEvals(m)
		if err != nil {
			return err
		}
		dopia, err := dopiaSelections(s, m)
		if err != nil {
			return err
		}
		sets := []struct {
			name string
			sel  []Selection
		}{
			{"CPU", FixedSelections(m, evals, m.CPUOnly())},
			{"GPU", FixedSelections(m, evals, m.GPUOnly())},
			{"ALL", FixedSelections(m, evals, m.AllResources())},
			{"Dopia", dopia},
		}
		s.printf("\nFigure 11a (%s): Euclidean distance error\n", m.Name)
		var rows [][]string
		for _, set := range sets {
			rows = append(rows, boxRow(set.name, stats.BoxOf(Dists(set.sel))))
		}
		stats.RenderTable(s.Out, []string{"config", "mean", "median", "p5", "p25", "p75", "p95"}, rows)

		s.printf("\nFigure 11b (%s): normalized performance vs Exhaustive\n", m.Name)
		rows = nil
		for _, set := range sets {
			rows = append(rows, boxRow(set.name, stats.BoxOf(Perfs(set.sel))))
		}
		stats.RenderTable(s.Out, []string{"config", "mean", "median", "p5", "p25", "p75", "p95"}, rows)
	}
	s.printf("paper: Dopia mean distance 0.15/0.22; mean normalized perf 0.94/0.92\n")
	return nil
}

// Table6 reproduces Table 6: the mean normalized performance of the fixed
// partitionings, the best constant allocation, and Dopia, against the
// exhaustive oracle. Paper (Kaveri/Skylake): CPU 70.7/60.7, GPU 18.6/39.5,
// ALL 62.3/69.6, best-const 82.5/81.6, Dopia 94.1/92.2 (percent).
func Table6(s *Suite) error {
	s.printf("\nTable 6: normalized performance vs Exhaustive (mean over workloads)\n")
	headers := []string{"configuration", "DoP"}
	for _, m := range Machines() {
		headers = append(headers, m.Name)
	}
	type rowAcc struct {
		name string
		dop  string
		vals []string
	}
	rows := []rowAcc{
		{name: "CPU", dop: "CPU 1.0, GPU 0"},
		{name: "GPU", dop: "CPU 0, GPU 1.0"},
		{name: "ALL", dop: "CPU 1.0, GPU 1.0"},
		{name: "Best const alloc", dop: "per machine"},
		{name: "Dopia", dop: "ML-driven"},
	}
	for _, m := range Machines() {
		evals, err := s.SynthEvals(m)
		if err != nil {
			return err
		}
		mean := func(cfg sim.Config) float64 {
			return stats.Mean(Perfs(FixedSelections(m, evals, cfg)))
		}
		// Best constant allocation: the single configuration with the
		// highest mean normalized performance.
		bestConst, bestConstV := sim.Config{}, -1.0
		for _, cfg := range m.Configs() {
			if v := mean(cfg); v > bestConstV {
				bestConst, bestConstV = cfg, v
			}
		}
		dopia, err := dopiaSelections(s, m)
		if err != nil {
			return err
		}
		vals := []float64{
			mean(m.CPUOnly()), mean(m.GPUOnly()), mean(m.AllResources()),
			bestConstV, stats.Mean(Perfs(dopia)),
		}
		for i := range rows {
			rows[i].vals = append(rows[i].vals, stats.Fmt(vals[i]*100)+"%")
		}
		rows[3].dop = mergeDop(rows[3].dop, m, bestConst)
	}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, append([]string{r.name, r.dop}, r.vals...))
	}
	stats.RenderTable(s.Out, headers, cells)
	s.printf("paper: CPU 70.7/60.7, GPU 18.6/39.5, ALL 62.3/69.6, best-const 82.5/81.6 (CPU 1.0 GPU 0.125), Dopia 94.1/92.2\n")
	return nil
}

func mergeDop(prev string, m *sim.Machine, cfg sim.Config) string {
	cur := fmt.Sprintf("CPU %.2g, GPU %.3g", m.CPUUtil(cfg), cfg.GPUFrac)
	if prev == "per machine" {
		return cur
	}
	return prev + " | " + cur
}

// Fig12 reproduces Figure 12: the mean normalized performance of every
// constant (CPU, GPU) allocation over all synthetic workloads, for both
// machines — the heatmap showing that no constant configuration
// approaches the oracle.
func Fig12(s *Suite) error {
	for _, m := range Machines() {
		evals, err := s.SynthEvals(m)
		if err != nil {
			return err
		}
		s.printf("\nFigure 12 (%s): mean normalized performance per constant configuration\n", m.Name)
		renderConfigHeatmap(s, m, func(cfg sim.Config) float64 {
			return stats.Mean(Perfs(FixedSelections(m, evals, cfg)))
		})
	}
	return nil
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }
