package experiments

import (
	"fmt"
	"sort"

	"dopia/internal/core"
	"dopia/internal/sim"
	"dopia/internal/stats"
	"dopia/internal/workloads"
)

// Fig1 reproduces Figure 1: the normalized-throughput heatmap of the
// Gesummv kernel on Kaveri for every (CPU threads x GPU threads)
// configuration. The paper's headline numbers: the best configuration is
// 4 CPU threads + 192 GPU threads (37.5%); CPU-only, GPU-only, and ALL
// reach 78%, 13%, and 61% of it.
func Fig1(s *Suite) error {
	m := sim.Kaveri()
	ws, err := workloads.RealWorkloads(s.RealN, 256)
	if err != nil {
		return err
	}
	var gesummv *workloads.Workload
	for _, w := range ws {
		if w.Kernel == "gesummv" {
			gesummv = w
		}
	}
	we, err := core.EvaluateWorkload(m, gesummv)
	if err != nil {
		return err
	}
	s.printf("Figure 1: normalized Gesummv throughput on %s (N=%d, wg=256)\n", m.Name, s.RealN)
	renderConfigHeatmap(s, m, func(cfg sim.Config) float64 { return we.Perf(cfg) })

	best := we.Best
	s.printf("best: CPU %d, GPU %.0f threads (%.1f%%) -> %.4g ms\n",
		best.CPUCores, best.GPUFrac*float64(m.TotalPEs()), best.GPUFrac*100, we.BestTime*1e3)
	for _, row := range []struct {
		name string
		cfg  sim.Config
	}{
		{"CPU only", m.CPUOnly()},
		{"GPU only", m.GPUOnly()},
		{"CPU+GPU (ALL)", m.AllResources()},
	} {
		s.printf("%-14s perf = %.2f of best (paper: %s)\n",
			row.name, we.Perf(row.cfg), map[string]string{
				"CPU only": "0.78", "GPU only": "0.13", "CPU+GPU (ALL)": "0.61",
			}[row.name])
	}
	return nil
}

// renderConfigHeatmap draws the 5x9 DoP grid with GPU allocation on rows
// (descending, as in the paper) and CPU allocation on columns.
func renderConfigHeatmap(s *Suite, m *sim.Machine, perf func(sim.Config) float64) {
	gpuSteps := append([]float64(nil), m.GPUSteps...)
	sort.Sort(sort.Reverse(sort.Float64Slice(gpuSteps)))
	rows := make([][]float64, len(gpuSteps))
	rowLabels := make([]string, len(gpuSteps))
	colLabels := make([]string, len(m.CPUSteps))
	for j, c := range m.CPUSteps {
		colLabels[j] = fmt.Sprintf("cpu%d", c)
	}
	for i, g := range gpuSteps {
		rowLabels[i] = fmt.Sprintf("gpu%.0f%%", g*100)
		rows[i] = make([]float64, len(m.CPUSteps))
		for j, c := range m.CPUSteps {
			cfg := sim.Config{CPUCores: c, GPUFrac: g}
			if !cfg.Valid() {
				rows[i][j] = 0
				continue
			}
			rows[i][j] = perf(cfg)
		}
	}
	stats.RenderHeatmap(s.Out, "", rowLabels, colLabels, rows)
}
