package experiments

import (
	"math"
	"testing"

	"dopia/internal/core"
	"dopia/internal/ml"
	"dopia/internal/sim"
)

// fakeEval builds a WorkloadEval over the machine's real config lattice
// with hand-picked times: `best` runs in 1.0, AllResources in 1.6, and
// everything else in 2.0.
func fakeEval(m *sim.Machine, name string, best sim.Config) *core.WorkloadEval {
	we := &core.WorkloadEval{Name: name, Best: best, BestTime: 1.0}
	for _, cfg := range m.Configs() {
		t := 2.0
		switch cfg {
		case best:
			t = 1.0
		case m.AllResources():
			t = 1.6
		}
		we.Times = append(we.Times, core.ConfigTime{Config: cfg, Time: t})
	}
	return we
}

func TestEvalTraceArithmetic(t *testing.T) {
	m := sim.Kaveri()
	cfgs := m.Configs()
	best := cfgs[0]
	if best == m.AllResources() {
		best = cfgs[1]
	}
	we := fakeEval(m, "W", best)
	other := m.AllResources()

	// Two oracle-best launches and one explored launch at AllResources
	// (quality 1/1.6, regret 0.6).
	trace := []TraceStep{
		{Workload: "W", Chosen: best},
		{Workload: "W", Chosen: best},
		{Workload: "W", Chosen: other, Explored: true},
	}
	rep, err := EvalTrace(m, []*core.WorkloadEval{we}, nil, trace)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1e-12
	wantMean := (1.0 + 1.0 + 1.0/1.6) / 3
	if math.Abs(rep.MeanQuality-wantMean) > eps {
		t.Errorf("MeanQuality = %v, want %v", rep.MeanQuality, wantMean)
	}
	// frozen == nil scores the frozen reference at AllResources.
	wantFrozen := 1.0 / 1.6
	if math.Abs(rep.FrozenQuality-wantFrozen) > eps {
		t.Errorf("FrozenQuality = %v, want %v", rep.FrozenQuality, wantFrozen)
	}
	wantGap := (wantMean - wantFrozen) / (1 - wantFrozen)
	if math.Abs(rep.GapClosed-wantGap) > eps {
		t.Errorf("GapClosed = %v, want %v", rep.GapClosed, wantGap)
	}
	if math.Abs(rep.CumulativeRegret-0.6) > eps {
		t.Errorf("CumulativeRegret = %v, want 0.6", rep.CumulativeRegret)
	}
	if rep.Explored != 1 || math.Abs(rep.ExplorationRegret-0.6) > eps {
		t.Errorf("Explored = %d regret %v, want 1 / 0.6", rep.Explored, rep.ExplorationRegret)
	}
	if rep.Launches != 3 {
		t.Errorf("Launches = %d, want 3", rep.Launches)
	}
}

func TestEvalTraceGapClosedAtOracle(t *testing.T) {
	// A frozen reference already at the oracle leaves no gap to close;
	// the report must stay NaN-free and report 0.
	m := sim.Kaveri()
	best := m.AllResources()
	we := fakeEval(m, "W", best)
	we.BestTime = 1.6 // AllResources IS the oracle here
	for i := range we.Times {
		if we.Times[i].Config == best {
			we.Times[i].Time = 1.6
		} else {
			we.Times[i].Time = 2.0
		}
	}
	rep, err := EvalTrace(m, []*core.WorkloadEval{we}, nil,
		[]TraceStep{{Workload: "W", Chosen: best}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.GapClosed != 0 {
		t.Errorf("GapClosed = %v, want 0", rep.GapClosed)
	}
	if rep.MeanQuality != 1 || rep.FrozenQuality != 1 {
		t.Errorf("quality = %v/%v, want 1/1", rep.MeanQuality, rep.FrozenQuality)
	}
}

type preferAllStub struct{}

func (preferAllStub) Name() string { return "STUB" }
func (preferAllStub) Predict(x ml.Features) float64 {
	return 0.3 + 0.4*x[ml.FCPUUtil] + 0.2*x[ml.FGPUUtil]
}

func TestEvalTraceFrozenModelSelect(t *testing.T) {
	// With a real frozen model the reference config comes from an argmax
	// sweep over the machine's lattice; whatever it picks must be a
	// known configuration with positive quality.
	m := sim.Kaveri()
	cfgs := m.Configs()
	we := fakeEval(m, "W", cfgs[0])
	rep, err := EvalTrace(m, []*core.WorkloadEval{we}, preferAllStub{},
		[]TraceStep{{Workload: "W", Chosen: cfgs[0]}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FrozenQuality <= 0 || rep.FrozenQuality > 1 {
		t.Errorf("FrozenQuality = %v, want in (0, 1]", rep.FrozenQuality)
	}
}

func TestEvalTraceErrors(t *testing.T) {
	m := sim.Kaveri()
	we := fakeEval(m, "W", m.Configs()[0])
	if _, err := EvalTrace(m, []*core.WorkloadEval{we}, nil, nil); err == nil {
		t.Error("empty trace did not error")
	}
	if _, err := EvalTrace(m, []*core.WorkloadEval{we}, nil,
		[]TraceStep{{Workload: "missing", Chosen: m.Configs()[0]}}); err == nil {
		t.Error("unknown workload did not error")
	}
	if _, err := EvalTrace(m, []*core.WorkloadEval{we}, nil,
		[]TraceStep{{Workload: "W", Chosen: sim.Config{CPUCores: 99, GPUFrac: 0.123}}}); err == nil {
		t.Error("unknown config did not error")
	}
}
