package experiments

import (
	"fmt"
	"math"

	"dopia/internal/core"
	"dopia/internal/ml"
	"dopia/internal/sim"
)

// This file is the regret-evaluation harness for the online-learning
// loop: given a launch trace (which workload ran when, and which DoP
// configuration the policy under test chose for it), it scores the
// trace against the exhaustive oracle and against the frozen offline
// model, producing the decision-quality numbers BENCH_7.json and the
// online-smoke CI gate consume.

// TraceStep is one launch of a trace: which workload ran and which
// configuration the evaluated policy executed.
type TraceStep struct {
	Workload string     `json:"workload"`
	Chosen   sim.Config `json:"chosen"`
	// Explored marks launches whose configuration came from the bandit
	// rather than the model argmax.
	Explored bool `json:"explored,omitempty"`
}

// RegretReport summarizes a trace against the oracle and a frozen
// reference model.
type RegretReport struct {
	Launches int `json:"launches"`
	Explored int `json:"explored"`
	// MeanQuality is the mean normalized performance of the evaluated
	// policy (oracle-best time / achieved time; 1 = oracle).
	MeanQuality float64 `json:"mean_quality"`
	// FrozenQuality is the mean normalized performance the frozen
	// reference model would have achieved on the identical trace.
	FrozenQuality float64 `json:"frozen_quality"`
	// GapClosed is the fraction of the frozen-to-oracle quality gap the
	// evaluated policy recovered: (mean - frozen) / (1 - frozen).
	// 0 = no better than frozen, 1 = oracle. NaN-free: a frozen model
	// already at the oracle reports 0.
	GapClosed float64 `json:"gap_closed"`
	// CumulativeRegret sums (t_chosen - t_best)/t_best over the trace;
	// ExplorationRegret restricts the sum to explored launches (the
	// quantity the online regret budget bounds).
	CumulativeRegret  float64 `json:"cumulative_regret"`
	ExplorationRegret float64 `json:"exploration_regret"`
}

// EvalTrace scores a launch trace. evals characterizes every workload
// the trace references (one oracle sweep each); frozen is the reference
// model the closed-loop policy is compared against (typically the
// offline model the daemon booted with).
func EvalTrace(m *sim.Machine, evals []*core.WorkloadEval, frozen ml.Model, trace []TraceStep) (*RegretReport, error) {
	if len(trace) == 0 {
		return nil, fmt.Errorf("experiments: empty trace")
	}
	byName := make(map[string]*core.WorkloadEval, len(evals))
	frozenCfg := make(map[string]sim.Config, len(evals))
	for _, we := range evals {
		byName[we.Name] = we
		if frozen != nil {
			cfg, _ := modelSelect(m, frozen, we.Base)
			frozenCfg[we.Name] = cfg
		} else {
			frozenCfg[we.Name] = m.AllResources()
		}
	}
	rep := &RegretReport{Launches: len(trace)}
	var sumQ, sumF float64
	for i, st := range trace {
		we := byName[st.Workload]
		if we == nil {
			return nil, fmt.Errorf("experiments: trace step %d references unknown workload %q", i, st.Workload)
		}
		q := we.Perf(st.Chosen)
		if q <= 0 {
			return nil, fmt.Errorf("experiments: trace step %d chose unknown config %+v for %s", i, st.Chosen, st.Workload)
		}
		sumQ += q
		sumF += we.Perf(frozenCfg[st.Workload])
		reg := (we.Time(st.Chosen) - we.BestTime) / we.BestTime
		rep.CumulativeRegret += reg
		if st.Explored {
			rep.Explored++
			rep.ExplorationRegret += reg
		}
	}
	n := float64(len(trace))
	rep.MeanQuality = sumQ / n
	rep.FrozenQuality = sumF / n
	if gap := 1 - rep.FrozenQuality; gap > 1e-9 {
		rep.GapClosed = (rep.MeanQuality - rep.FrozenQuality) / gap
	}
	if math.IsNaN(rep.GapClosed) || math.IsInf(rep.GapClosed, 0) {
		rep.GapClosed = 0
	}
	return rep, nil
}
