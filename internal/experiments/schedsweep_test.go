package experiments

import (
	"testing"

	"dopia/internal/sim"
)

// TestSchedSweepAdaptiveWins is the policy-sweep acceptance gate in
// test form: on every machine added by the zoo (everything beyond the
// paper's Kaveri and Skylake), at least one real workload must run
// faster under an adaptive scheduler (work-queue or HGuided) than under
// the best of nineteen static splits — otherwise the new schedulers
// would be dead weight on the new machine shapes.
func TestSchedSweepAdaptiveWins(t *testing.T) {
	rows, err := SchedSweepRows(2048, 256)
	if err != nil {
		t.Fatal(err)
	}
	times := map[string]map[string]map[string]float64{} // machine -> workload -> sched
	for _, r := range rows {
		if r.Time <= 0 {
			t.Errorf("%s/%s/%s: non-positive time %v", r.Machine, r.Workload, r.Sched, r.Time)
		}
		if times[r.Machine] == nil {
			times[r.Machine] = map[string]map[string]float64{}
		}
		if times[r.Machine][r.Workload] == nil {
			times[r.Machine][r.Workload] = map[string]float64{}
		}
		times[r.Machine][r.Workload][r.Sched] = r.Time
	}
	if want := len(sim.Zoo()); len(times) != want {
		t.Fatalf("sweep covered %d machines, want %d", len(times), want)
	}
	base := map[string]bool{sim.Kaveri().Name: true, sim.Skylake().Name: true}
	for mach, wl := range times {
		if base[mach] {
			continue
		}
		wins := 0
		for name, ts := range wl {
			if len(ts) != len(SchedPolicies()) {
				t.Fatalf("%s/%s: %d policies, want %d", mach, name, len(ts), len(SchedPolicies()))
			}
			adaptive := ts["dynamic"]
			if ts["hguided"] < adaptive {
				adaptive = ts["hguided"]
			}
			if adaptive < ts["static"] {
				wins++
				t.Logf("%s: %s adaptive %.3g < static-best %.3g", mach, name, adaptive, ts["static"])
			}
		}
		if wins == 0 {
			t.Errorf("%s: no workload where dynamic or hguided beats the best static split", mach)
		}
	}
}
