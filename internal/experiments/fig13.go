package experiments

import (
	"math"
	"strings"

	"dopia/internal/core"
	"dopia/internal/stats"
)

// Fig13 reproduces Figure 13: the normalized performance (vs the
// exhaustive oracle) of CPU, GPU, ALL and of Dopia with each of the four
// model families, per real-world kernel, on both machines. The kernel
// under evaluation is excluded from the training set (together with its
// other input variants), matching §9.4. The Dopia columns include model
// inference overhead; the "-OH" column of the deployed DT model shows the
// overhead-free value for comparison with the paper's overhead bars.
// Paper: Dopia.DT averages 84% of oracle on both systems; SVR's accuracy
// advantage is eaten by its inference cost; MVT2 is the known outlier.
func Fig13(s *Suite) error {
	for _, m := range Machines() {
		synth, err := s.SynthEvals(m)
		if err != nil {
			return err
		}
		realEv, err := s.RealEvals(m)
		if err != nil {
			return err
		}
		// Targets: the fourteen kernels at the paper's work-group
		// organization (the wg-256 variants), one per kernel family —
		// the first wg-256 occurrence comes from the full-size batch.
		var targets []*core.WorkloadEval
		seen := map[string]bool{}
		for _, we := range realEv {
			if !strings.Contains(we.Name, "wg256") {
				continue
			}
			base := baseName(we.Name)
			if seen[base] {
				continue
			}
			seen[base] = true
			targets = append(targets, we)
		}
		train := append(append([]*core.WorkloadEval(nil), synth...), realEv...)

		s.printf("\nFigure 13 (%s): normalized performance to exhaustive search\n", m.Name)
		headers := []string{"kernel", "CPU", "GPU", "ALL",
			"Dopia.LIN", "Dopia.SVR", "Dopia.DT", "Dopia.RF", "DT -OH"}
		var rows [][]string
		sums := make([]float64, 8)
		geos := make([]float64, 8)
		count := 0
		for _, target := range targets {
			kernelBase := baseName(target.Name)
			exclude := func(name string) bool {
				return baseName(name) == kernelBase
			}
			vals := []float64{
				target.Perf(m.CPUOnly()),
				target.Perf(m.GPUOnly()),
				target.Perf(m.AllResources()),
			}
			var dtNoOH float64
			for _, tr := range core.Trainers() {
				sel, err := LeaveOneOutSelection(m, train, target, exclude, tr)
				if err != nil {
					return err
				}
				vals = append(vals, sel.PerfWithOverhead)
				if tr.Name() == "DT" {
					dtNoOH = sel.Perf
				}
			}
			vals = append(vals, dtNoOH)
			row := []string{kernelBase}
			for i, v := range vals {
				row = append(row, stats.Fmt(v))
				sums[i] += v
				if v > 0 {
					geos[i] += math.Log(v)
				}
			}
			rows = append(rows, row)
			count++
		}
		if count > 0 {
			avg := []string{"Average"}
			geo := []string{"Geomean"}
			for i := range sums {
				avg = append(avg, stats.Fmt(sums[i]/float64(count)))
				geo = append(geo, stats.Fmt(math.Exp(geos[i]/float64(count))))
			}
			rows = append(rows, avg, geo)
		}
		stats.RenderTable(s.Out, headers, rows)
	}
	s.printf("paper: Dopia.DT average 0.84 on both systems, ALL 0.76/0.75; SVR accuracy eaten by inference overhead\n")
	return nil
}

// baseName strips the size/work-group suffixes from a workload name
// ("GESUMMV.n1024.wg256" -> "GESUMMV").
func baseName(name string) string {
	if i := strings.IndexByte(name, '.'); i >= 0 {
		return name[:i]
	}
	return name
}
