package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"dopia/internal/core"
	"dopia/internal/ml"
	"dopia/internal/sim"
)

// Selection records the outcome of choosing a configuration for one
// workload: what was chosen, how it performed against the exhaustive
// oracle, how far it was from the best configuration in the (CPU, GPU)
// allocation plane, and how long the choice took.
type Selection struct {
	Workload string
	Chosen   sim.Config
	// Perf is the achieved normalized performance (best time / chosen
	// time), ignoring selection overhead.
	Perf float64
	// PerfWithOverhead divides by chosen time plus inference time.
	PerfWithOverhead float64
	// Dist is the Euclidean distance from the chosen to the best
	// configuration in normalized (CPU_util, GPU_util) space, divided by
	// sqrt(2) (the paper's metric).
	Dist float64
	// Exact marks chosen == best.
	Exact bool
	// InferSec is the wall-clock cost of scoring all 44 configurations.
	InferSec float64
}

// distError computes the paper's normalized Euclidean distance metric.
func distError(m *sim.Machine, chosen, best sim.Config) float64 {
	dc := m.CPUUtil(chosen) - m.CPUUtil(best)
	dg := chosen.GPUFrac - best.GPUFrac
	return math.Sqrt(dc*dc+dg*dg) / math.Sqrt2
}

// FixedSelections evaluates a fixed configuration against every workload.
func FixedSelections(m *sim.Machine, evals []*core.WorkloadEval, cfg sim.Config) []Selection {
	out := make([]Selection, 0, len(evals))
	for _, we := range evals {
		out = append(out, Selection{
			Workload:         we.Name,
			Chosen:           cfg,
			Perf:             we.Perf(cfg),
			PerfWithOverhead: we.Perf(cfg),
			Dist:             distError(m, cfg, we.Best),
			Exact:            cfg == we.Best,
		})
	}
	return out
}

// modelSelect scores all configurations of m with the model and returns
// the argmax plus the wall-clock inference time.
func modelSelect(m *sim.Machine, model ml.Model, base ml.Features) (sim.Config, float64) {
	start := time.Now()
	var best sim.Config
	bestV := math.Inf(-1)
	for _, cfg := range m.Configs() {
		if v := model.Predict(core.WithConfig(base, m, cfg)); v > bestV {
			best, bestV = cfg, v
		}
	}
	return best, time.Since(start).Seconds()
}

// selectionOf builds the Selection record for a model choice.
func selectionOf(m *sim.Machine, we *core.WorkloadEval, chosen sim.Config, inferSec float64) Selection {
	t := we.Time(chosen)
	perf := 0.0
	perfOH := 0.0
	if t > 0 && !math.IsInf(t, 1) {
		perf = we.BestTime / t
		perfOH = we.BestTime / (t + inferSec)
	}
	return Selection{
		Workload:         we.Name,
		Chosen:           chosen,
		Perf:             perf,
		PerfWithOverhead: perfOH,
		Dist:             distError(m, chosen, we.Best),
		Exact:            chosen == we.Best,
		InferSec:         inferSec,
	}
}

// CrossValSelections performs k-fold cross-validation over *workloads*
// (the paper's §9.2/9.3 methodology): for each fold, a model is trained on
// the samples of the other folds' workloads and then picks a configuration
// for every held-out workload.
func CrossValSelections(m *sim.Machine, evals []*core.WorkloadEval,
	tr ml.Trainer, folds int, seed int64) ([]Selection, error) {
	if folds < 2 || folds > len(evals) {
		return nil, fmt.Errorf("experiments: cannot make %d folds from %d workloads", folds, len(evals))
	}
	perm := rand.New(rand.NewSource(seed)).Perm(len(evals))
	var out []Selection
	for f := 0; f < folds; f++ {
		lo := f * len(evals) / folds
		hi := (f + 1) * len(evals) / folds
		train := &ml.Dataset{}
		for i, pi := range perm {
			if i >= lo && i < hi {
				continue
			}
			we := evals[pi]
			for _, ct := range we.Times {
				y := 0.0
				if ct.Time > 0 {
					y = we.BestTime / ct.Time
				}
				train.Add(core.WithConfig(we.Base, m, ct.Config), y)
			}
		}
		model, err := tr.Fit(train)
		if err != nil {
			return nil, fmt.Errorf("experiments: fold %d: %w", f, err)
		}
		for i := lo; i < hi; i++ {
			we := evals[perm[i]]
			chosen, inferSec := modelSelect(m, model, we.Base)
			out = append(out, selectionOf(m, we, chosen, inferSec))
		}
	}
	return out, nil
}

// LeaveOneOutSelection trains on every characterization except those whose
// name matches exclude(name)==true, then selects for the target workload
// (the §9.4 methodology: the kernel under evaluation is excluded from
// training).
func LeaveOneOutSelection(m *sim.Machine, train []*core.WorkloadEval,
	target *core.WorkloadEval, exclude func(name string) bool,
	tr ml.Trainer) (Selection, error) {
	ds := &ml.Dataset{}
	for _, we := range train {
		if exclude(we.Name) {
			continue
		}
		for _, ct := range we.Times {
			y := 0.0
			if ct.Time > 0 {
				y = we.BestTime / ct.Time
			}
			ds.Add(core.WithConfig(we.Base, m, ct.Config), y)
		}
	}
	model, err := tr.Fit(ds)
	if err != nil {
		return Selection{}, err
	}
	chosen, inferSec := modelSelect(m, model, target.Base)
	return selectionOf(m, target, chosen, inferSec), nil
}

// Perfs extracts the Perf column.
func Perfs(sel []Selection) []float64 {
	out := make([]float64, len(sel))
	for i, s := range sel {
		out[i] = s.Perf
	}
	return out
}

// Dists extracts the Dist column.
func Dists(sel []Selection) []float64 {
	out := make([]float64, len(sel))
	for i, s := range sel {
		out[i] = s.Dist
	}
	return out
}

// ExactCount counts exact best-configuration matches.
func ExactCount(sel []Selection) int {
	n := 0
	for _, s := range sel {
		if s.Exact {
			n++
		}
	}
	return n
}
