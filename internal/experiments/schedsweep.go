package experiments

import (
	"fmt"
	"math"

	"dopia/internal/sched"
	"dopia/internal/sim"
	"dopia/internal/stats"
	"dopia/internal/workloads"
)

// SchedSweepRow is one cell of the policy sweep: the simulated
// execution time of one workload on one machine under one co-execution
// scheduling policy.
type SchedSweepRow struct {
	Machine  string  `json:"machine"`
	Workload string  `json:"workload"`
	Sched    string  `json:"sched"`
	Time     float64 `json:"time_sec"`
}

// SchedPolicies lists the compared policies in column order: the best
// of nineteen static splits, the paper's Algorithm 1, the fixed-chunk
// work-queue scheduler, and HGuided.
func SchedPolicies() []string {
	return []string{"static", "alg1", "dynamic", "hguided"}
}

// workloadModel profiles a workload once and returns its kernel model.
// The model captures only kernel-intrinsic quantities (instruction
// mixes, footprints, access patterns), so a single profile serves every
// machine of the zoo.
func workloadModel(w *workloads.Workload) (*sim.KernelModel, error) {
	k, err := w.CompileKernel()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	ex, err := sched.NewExecutor(sim.Kaveri(), k, nil)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	ex.AssumeMalleable = true
	inst, err := w.Setup()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	if err := ex.Bind(inst.Args...); err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	if err := ex.Launch(inst.ND); err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	km, err := ex.Model()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	return km, nil
}

// SchedSweepRows simulates every real workload on every zoo machine
// under each policy of SchedPolicies. "static" reports the best of the
// nineteen 5%-step splits (the strongest static baseline), matching the
// sweep BestStatic performs.
func SchedSweepRows(n, wg int) ([]SchedSweepRow, error) {
	ws, err := workloads.RealWorkloads(n, wg)
	if err != nil {
		return nil, err
	}
	var rows []SchedSweepRow
	for _, w := range ws {
		km, err := workloadModel(w)
		if err != nil {
			return nil, err
		}
		for _, m := range sim.Zoo() {
			all := m.AllResources()
			bestStatic := math.Inf(1)
			for i := 1; i <= 19; i++ {
				r, err := sim.Simulate(m, km, all, sim.Static,
					sim.SimOptions{CPUShare: float64(i) * 0.05})
				if err != nil {
					return nil, fmt.Errorf("%s on %s: static %d%%: %w", w.Name, m.Name, i*5, err)
				}
				if r.Time < bestStatic {
					bestStatic = r.Time
				}
			}
			times := map[string]float64{"static": bestStatic}
			for _, p := range []struct {
				name string
				dist sim.Distribution
			}{
				{"alg1", sim.Dynamic},
				{"dynamic", sim.WorkQueue},
				{"hguided", sim.HGuided},
			} {
				r, err := sim.Simulate(m, km, all, p.dist, sim.SimOptions{})
				if err != nil {
					return nil, fmt.Errorf("%s on %s: %s: %w", w.Name, m.Name, p.name, err)
				}
				times[p.name] = r.Time
			}
			for _, p := range SchedPolicies() {
				rows = append(rows, SchedSweepRow{
					Machine:  m.Name,
					Workload: w.Name,
					Sched:    p,
					Time:     times[p],
				})
			}
		}
	}
	return rows, nil
}

// SchedSweep is the policy-sweep experiment: per machine, the execution
// time of Algorithm 1, the work-queue scheduler, and HGuided normalized
// to the best static split, over the real-workload set. The EngineCL
// result this reproduces: adaptive schedulers match or beat the best
// static split wherever device throughput is skewed or shifts
// mid-kernel, on every machine shape from integrated APUs to a discrete
// GPU behind PCIe.
func SchedSweep(s *Suite) error {
	rows, err := SchedSweepRows(s.RealN, 256)
	if err != nil {
		return err
	}
	byMachine := map[string]map[string]map[string]float64{} // machine -> workload -> sched -> time
	for _, r := range rows {
		if byMachine[r.Machine] == nil {
			byMachine[r.Machine] = map[string]map[string]float64{}
		}
		if byMachine[r.Machine][r.Workload] == nil {
			byMachine[r.Machine][r.Workload] = map[string]float64{}
		}
		byMachine[r.Machine][r.Workload][r.Sched] = r.Time
	}
	for _, m := range sim.Zoo() {
		wl := byMachine[m.Name]
		norm := map[string][]float64{}
		wins := map[string]int{}
		for _, times := range wl {
			static := times["static"]
			for _, p := range SchedPolicies()[1:] {
				norm[p] = append(norm[p], times[p]/static)
				if times[p] < static {
					wins[p]++
				}
			}
		}
		s.printf("\nScheduler sweep (%s): time normalized to best STATIC over %d workloads\n",
			m.Name, len(wl))
		var tbl [][]string
		for _, p := range SchedPolicies()[1:] {
			b := stats.BoxOf(norm[p])
			tbl = append(tbl, append(boxRow(p, b), fmt.Sprintf("%d", wins[p])))
		}
		stats.RenderTable(s.Out,
			[]string{"policy", "mean", "median", "p5", "p25", "p75", "p95", "wins"}, tbl)
	}
	return nil
}
