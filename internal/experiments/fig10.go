package experiments

import (
	"dopia/internal/core"
	"dopia/internal/stats"
)

// Fig10 reproduces Figure 10: (a) the distribution of achieved normalized
// performance when each ML model family selects configurations under
// k-fold cross-validation on the 1,224 synthetic workloads, and (b) the
// wall-clock inference overhead of scoring all 44 configurations. The
// paper's findings: tree-based models (DT, RF) are the most accurate, and
// LIN/DT inference is orders of magnitude cheaper than SVR/RF.
func Fig10(s *Suite) error {
	for _, m := range Machines() {
		evals, err := s.SynthEvals(m)
		if err != nil {
			return err
		}
		folds := s.Folds
		if folds > len(evals) {
			folds = len(evals) / 2
		}
		s.printf("\nFigure 10 (%s): %d-fold cross-validation on %d synthetic workloads\n",
			m.Name, folds, len(evals))
		var rows [][]string
		for _, tr := range core.Trainers() {
			sel, err := CrossValSelections(m, evals, tr, folds, s.Seed)
			if err != nil {
				return err
			}
			b := stats.BoxOf(Perfs(sel))
			var inferMs float64
			for _, se := range sel {
				inferMs += se.InferSec * 1e3
			}
			inferMs /= float64(len(sel))
			rows = append(rows, []string{
				tr.Name(), stats.Fmt(b.Mean), stats.Fmt(b.Median),
				stats.Fmt(b.P25), stats.Fmt(b.P75),
				stats.Fmt(inferMs),
			})
		}
		stats.RenderTable(s.Out, []string{
			"model", "mean perf", "median", "p25", "p75", "infer (ms, 44 cfgs)",
		}, rows)
	}
	s.printf("paper: DT/RF most accurate; LIN/DT inference orders of magnitude cheaper than SVR/RF\n")
	return nil
}
