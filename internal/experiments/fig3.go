package experiments

import (
	"dopia/internal/sched"
	"dopia/internal/sim"
	"dopia/internal/stats"
	"dopia/internal/workloads"
)

// Fig3 reproduces Figure 3: execution time (a) and total memory requests
// (b) of Gesummv and SpMV on Kaveri for increasing GPU core utilization
// with all four CPU threads active. The paper's findings: the best point
// sits near 37.5% GPU utilization for both kernels, and the number of
// memory requests grows sharply once the added GPU threads thrash the
// GPU's shared L2.
func Fig3(s *Suite) error {
	m := sim.Kaveri()
	ws, err := workloads.RealWorkloads(s.RealN, 256)
	if err != nil {
		return err
	}
	targets := map[string]bool{"gesummv": true, "spmv": true}
	s.printf("Figure 3: Gesummv and SpMV on %s, 4 CPU threads, varying GPU utilization\n", m.Name)
	for _, w := range ws {
		if !targets[w.Kernel] {
			continue
		}
		k, err := w.CompileKernel()
		if err != nil {
			return err
		}
		ex, err := sched.NewExecutor(m, k, nil)
		if err != nil {
			return err
		}
		ex.AssumeMalleable = true
		inst, err := w.Setup()
		if err != nil {
			return err
		}
		if err := ex.Bind(inst.Args...); err != nil {
			return err
		}
		if err := ex.Launch(inst.ND); err != nil {
			return err
		}
		var rows [][]string
		bestTime := 0.0
		bestUtil := 0.0
		for _, g := range m.GPUSteps {
			cfg := sim.Config{CPUCores: m.CPU.Cores, GPUFrac: g}
			r, err := ex.Run(cfg, sched.RunOptions{Dist: sim.Dynamic})
			if err != nil {
				return err
			}
			rows = append(rows, []string{
				stats.Fmt(g * 100),
				stats.Fmt(r.Time * 1e3),
				stats.Fmt(r.DRAMBytes / 64),
				stats.Fmt(r.Transactions),
			})
			if bestTime == 0 || r.Time < bestTime {
				bestTime, bestUtil = r.Time, g
			}
		}
		s.printf("\n%s:\n", w.Name)
		stats.RenderTable(s.Out, []string{
			"GPU util %", "exec time (ms)", "mem requests (#)", "GPU requests (#)",
		}, rows)
		s.printf("best GPU utilization: %.1f%% (paper: 37.5%% for both kernels)\n", bestUtil*100)
	}
	return nil
}
