// Package experiments regenerates every table and figure of the Dopia
// paper's evaluation (Figures 1, 3, 9-13 and Tables 5-6) on the simulated
// Kaveri and Skylake machines. Each experiment prints the same rows or
// series the paper reports; EXPERIMENTS.md records paper-vs-measured
// values.
package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"dopia/internal/core"
	"dopia/internal/sim"
	"dopia/internal/workloads"
)

// Suite holds the shared configuration and caches of the experiment
// drivers. Workload characterizations (the expensive part: one sampled
// profile plus 44 simulations per workload) are computed once per machine
// and reused across experiments, optionally cached on disk.
type Suite struct {
	Out         io.Writer
	Parallelism int
	// SynthLimit truncates the 1,224-workload synthetic grid for quick
	// runs; 0 uses the full grid.
	SynthLimit int
	// RealN is the real-kernel problem size (default
	// workloads.DefaultRealSize).
	RealN int
	// Folds is the cross-validation fold count (paper: 64).
	Folds int
	Seed  int64
	// CacheDir, when set, persists characterizations between runs.
	CacheDir string

	synth    map[string][]*core.WorkloadEval
	real     map[string][]*core.WorkloadEval
	dopiaSel map[string][]Selection
}

// NewSuite returns a suite writing to out with paper-default settings.
func NewSuite(out io.Writer) *Suite {
	return &Suite{
		Out:      out,
		RealN:    workloads.DefaultRealSize,
		Folds:    64,
		Seed:     1,
		synth:    map[string][]*core.WorkloadEval{},
		real:     map[string][]*core.WorkloadEval{},
		dopiaSel: map[string][]Selection{},
	}
}

func (s *Suite) printf(format string, args ...any) {
	fmt.Fprintf(s.Out, format, args...)
}

// SynthEvals characterizes (or loads) the synthetic training grid on m.
func (s *Suite) SynthEvals(m *sim.Machine) ([]*core.WorkloadEval, error) {
	if ev, ok := s.synth[m.Name]; ok {
		return ev, nil
	}
	cachePath := ""
	if s.CacheDir != "" {
		cachePath = filepath.Join(s.CacheDir,
			fmt.Sprintf("synth-%s-l%d.json.gz", m.Name, s.SynthLimit))
		if ev, err := core.LoadEvals(cachePath, m.Name); err == nil {
			s.synth[m.Name] = ev
			return ev, nil
		}
	}
	grid, err := workloads.SyntheticGrid()
	if err != nil {
		return nil, err
	}
	if s.SynthLimit > 0 && s.SynthLimit < len(grid) {
		// Deterministic spread over the grid rather than a prefix, so a
		// truncated run still covers every pattern family.
		stride := len(grid) / s.SynthLimit
		var sub []*workloads.Workload
		for i := 0; i < len(grid) && len(sub) < s.SynthLimit; i += stride {
			sub = append(sub, grid[i])
		}
		grid = sub
	}
	ev, err := core.EvaluateAll(m, grid, s.Parallelism)
	if err != nil {
		return nil, err
	}
	s.synth[m.Name] = ev
	if cachePath != "" {
		if err := os.MkdirAll(s.CacheDir, 0o755); err == nil {
			_ = core.SaveEvals(cachePath, m.Name, ev)
		}
	}
	return ev, nil
}

// realGrid builds the Figure 9 / training real-workload set: the fourteen
// kernels at two problem sizes and two work-group organizations.
func (s *Suite) realGrid() ([]*workloads.Workload, error) {
	var out []*workloads.Workload
	for _, n := range []int{s.RealN, s.RealN / 2} {
		for _, wg := range []int{64, 256} {
			ws, err := workloads.RealWorkloads(n, wg)
			if err != nil {
				return nil, err
			}
			out = append(out, ws...)
		}
	}
	return out, nil
}

// RealEvals characterizes (or loads) the real-workload grid on m.
func (s *Suite) RealEvals(m *sim.Machine) ([]*core.WorkloadEval, error) {
	if ev, ok := s.real[m.Name]; ok {
		return ev, nil
	}
	cachePath := ""
	if s.CacheDir != "" {
		cachePath = filepath.Join(s.CacheDir,
			fmt.Sprintf("real-%s-n%d.json.gz", m.Name, s.RealN))
		if ev, err := core.LoadEvals(cachePath, m.Name); err == nil {
			s.real[m.Name] = ev
			return ev, nil
		}
	}
	grid, err := s.realGrid()
	if err != nil {
		return nil, err
	}
	ev, err := core.EvaluateAll(m, grid, s.Parallelism)
	if err != nil {
		return nil, err
	}
	s.real[m.Name] = ev
	if cachePath != "" {
		if err := os.MkdirAll(s.CacheDir, 0o755); err == nil {
			_ = core.SaveEvals(cachePath, m.Name, ev)
		}
	}
	return ev, nil
}

// Machines returns the two evaluated platforms.
func Machines() []*sim.Machine {
	return []*sim.Machine{sim.Kaveri(), sim.Skylake()}
}

// Experiment is a named, runnable experiment.
type Experiment struct {
	ID   string
	Desc string
	Run  func(s *Suite) error
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig1", "Gesummv DoP heatmap on Kaveri (Figure 1)", Fig1},
		{"fig3", "Execution time and memory requests vs GPU utilization (Figure 3)", Fig3},
		{"fig9", "Dynamic vs static workload distribution (Figure 9)", Fig9},
		{"fig10", "ML model accuracy and inference overhead (Figure 10)", Fig10},
		{"table5", "Exact best-configuration classifications (Table 5)", Table5},
		{"fig11", "Euclidean distance error and normalized performance (Figure 11)", Fig11},
		{"fig12", "Mean normalized performance per constant configuration (Figure 12)", Fig12},
		{"table6", "Static partitionings vs Dopia (Table 6)", Table6},
		{"fig13", "Real-world kernels: Dopia vs baselines (Figure 13)", Fig13},
		{"schedsweep", "Co-execution policy sweep across the machine zoo", SchedSweep},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
