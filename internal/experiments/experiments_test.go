package experiments

import (
	"bytes"
	"strings"
	"testing"

	"dopia/internal/sim"
)

// tinySuite is a heavily reduced configuration so every experiment runs in
// seconds: a 40-workload synthetic slice, 8 folds, 256-wide real kernels.
func tinySuite(buf *bytes.Buffer) *Suite {
	s := NewSuite(buf)
	s.SynthLimit = 40
	s.Folds = 8
	s.RealN = 256
	return s
}

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	var buf bytes.Buffer
	s := tinySuite(&buf)
	for _, e := range All() {
		before := buf.Len()
		if err := e.Run(s); err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if buf.Len() == before {
			t.Errorf("%s produced no output", e.ID)
		}
	}
	t.Logf("combined output:\n%s", buf.String())
}

func TestByID(t *testing.T) {
	if _, err := ByID("fig1"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("expected error for unknown experiment")
	}
	if len(All()) != 10 {
		t.Errorf("%d experiments, want 10 (fig1,3,9-13 + tables 5,6 + schedsweep)", len(All()))
	}
}

func TestFixedSelections(t *testing.T) {
	m := sim.Kaveri()
	var buf bytes.Buffer
	s := tinySuite(&buf)
	evals, err := s.SynthEvals(m)
	if err != nil {
		t.Fatal(err)
	}
	sel := FixedSelections(m, evals, m.CPUOnly())
	if len(sel) != len(evals) {
		t.Fatalf("%d selections, want %d", len(sel), len(evals))
	}
	for _, se := range sel {
		if se.Perf <= 0 || se.Perf > 1+1e-9 {
			t.Errorf("%s: perf %v out of (0,1]", se.Workload, se.Perf)
		}
		if se.Dist < 0 || se.Dist > 1+1e-9 {
			t.Errorf("%s: dist %v out of [0,1]", se.Workload, se.Dist)
		}
		if se.Exact && se.Perf < 1-1e-9 {
			t.Errorf("%s: exact match with perf %v", se.Workload, se.Perf)
		}
	}
}

func TestSuiteCaching(t *testing.T) {
	m := sim.Kaveri()
	var buf bytes.Buffer
	s := tinySuite(&buf)
	e1, err := s.SynthEvals(m)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := s.SynthEvals(m)
	if err != nil {
		t.Fatal(err)
	}
	if &e1[0] != &e2[0] {
		t.Error("synthetic evals not cached")
	}
}

func TestDiskCache(t *testing.T) {
	var buf bytes.Buffer
	s := tinySuite(&buf)
	s.SynthLimit = 10
	s.CacheDir = t.TempDir()
	m := sim.Kaveri()
	e1, err := s.SynthEvals(m)
	if err != nil {
		t.Fatal(err)
	}
	// Second suite with the same cache dir loads from disk.
	s2 := tinySuite(&buf)
	s2.SynthLimit = 10
	s2.CacheDir = s.CacheDir
	e2, err := s2.SynthEvals(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(e1) != len(e2) {
		t.Fatalf("cache round-trip changed count: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i].Name != e2[i].Name || e1[i].BestTime != e2[i].BestTime {
			t.Fatalf("cache round-trip changed eval %d", i)
		}
		if e1[i].Best != e2[i].Best {
			t.Fatalf("cache round-trip changed best config %d", i)
		}
	}
}

func TestBaseNameParsing(t *testing.T) {
	cases := map[string]string{
		"GESUMMV.n1024.wg256":         "GESUMMV",
		"SYR2K.n64.wg64":              "SYR2K",
		"2mat3d2c.f32.d1.s16384.wg64": "2mat3d2c",
		"plain":                       "plain",
	}
	for in, want := range cases {
		if got := baseName(in); got != want {
			t.Errorf("baseName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHeatmapRendering(t *testing.T) {
	var buf bytes.Buffer
	s := NewSuite(&buf)
	m := sim.Kaveri()
	renderConfigHeatmap(s, m, func(cfg sim.Config) float64 {
		return cfg.GPUFrac
	})
	out := buf.String()
	if !strings.Contains(out, "gpu100%") || !strings.Contains(out, "cpu4") {
		t.Errorf("heatmap missing labels:\n%s", out)
	}
}
