package interp

import (
	"math"
	"os"
	"strconv"
	"sync"
)

// Engine selects which execution engine an Exec uses to run compiled
// kernels. Both engines are bit-identical in every observable: output
// buffers, statistics, site profiles, trace streams, and fault behaviour.
// The bytecode engine is the fast path; the closure engine is the
// reference implementation and the fallback for anything the lowerer
// cannot handle.
type Engine int8

// Engine values.
const (
	// EngineAuto resolves to the DOPIA_ENGINE environment variable
	// ("bytecode" or "closures"), defaulting to the bytecode engine.
	EngineAuto Engine = iota
	// EngineBytecode runs kernels on the register-based bytecode VM,
	// falling back per kernel to closures when lowering fails (the
	// fallback reason is recorded in RunStats/Profile).
	EngineBytecode
	// EngineClosures runs kernels on the tree-of-closures interpreter.
	EngineClosures
)

func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineBytecode:
		return "bytecode"
	case EngineClosures:
		return "closures"
	}
	return "engine(?)"
}

var (
	defaultEngine     Engine
	defaultEngineOnce sync.Once
)

// maxLaneWidth bounds Exec.LaneWidth / DOPIA_LANES. Lane scratch is
// allocated per runState at this granularity, so the cap keeps worst-case
// memory bounded; widths beyond the host's SIMD-ish sweet spot stop
// paying anyway.
const maxLaneWidth = 16

var (
	defaultLanes     int
	defaultLanesOnce sync.Once
)

// DefaultLaneWidth returns the lane width used by Execs whose LaneWidth
// field is zero: the DOPIA_LANES environment variable when set to a
// positive integer (clamped to maxLaneWidth), else 8. Lane width 1 is
// the scalar reference path. The environment is read once per process.
func DefaultLaneWidth() int {
	defaultLanesOnce.Do(func() {
		defaultLanes = 8
		if s := os.Getenv("DOPIA_LANES"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n > 0 {
				defaultLanes = n
			}
		}
		if defaultLanes > maxLaneWidth {
			defaultLanes = maxLaneWidth
		}
	})
	return defaultLanes
}

// clampLaneWidth normalizes a requested lane width to [1, maxLaneWidth].
func clampLaneWidth(w int) int {
	if w < 1 {
		return 1
	}
	if w > maxLaneWidth {
		return maxLaneWidth
	}
	return w
}

// DefaultEngine returns the engine used by Execs whose Engine field is
// EngineAuto: the DOPIA_ENGINE environment variable when set to
// "bytecode" or "closures", else EngineBytecode. The environment is read
// once per process.
func DefaultEngine() Engine {
	defaultEngineOnce.Do(func() {
		defaultEngine = EngineBytecode
		switch os.Getenv("DOPIA_ENGINE") {
		case "closures", "closure":
			defaultEngine = EngineClosures
		case "bytecode", "":
			defaultEngine = EngineBytecode
		}
	})
	return defaultEngine
}

// ---------------------------------------------------------------------------
// Sampled access profiling
//
// The per-access pattern classifier (siteState.recordAccess) is the
// second-largest cost of a profiled launch after dispatch itself. In
// sampled mode the classifier observes only a deterministic, hash-chosen
// subset of work-groups (SHARDS-style spatial sampling at work-group
// granularity): within a sampled group every access is recorded exactly,
// so iteration-stride evidence stays intact, while unsampled groups skip
// the classifier entirely. Aggregate counters (Loads, Stores, bytes) and
// the trace sink remain exact in every mode.
//
// Sampling is deterministic in (seed, group id) and independent of the
// shard count, so sampled profiles are bit-identical across engines and
// parallelism levels. Exact mode (rate 0 or >= 1) is the default.

var (
	defaultSampleRate float64
	defaultSampleSeed uint64
	defaultSampleOnce sync.Once
)

// DefaultAccessSampling returns the process-wide default access-sampling
// rate and seed: the DOPIA_ACCESS_SAMPLE (a fraction in (0,1)) and
// DOPIA_ACCESS_SEED environment variables, else exact profiling (rate 0).
func DefaultAccessSampling() (rate float64, seed uint64) {
	defaultSampleOnce.Do(func() {
		if s := os.Getenv("DOPIA_ACCESS_SAMPLE"); s != "" {
			if r, err := strconv.ParseFloat(s, 64); err == nil && r > 0 {
				defaultSampleRate = r
			}
		}
		if s := os.Getenv("DOPIA_ACCESS_SEED"); s != "" {
			if v, err := strconv.ParseUint(s, 10, 64); err == nil {
				defaultSampleSeed = v
			}
		}
	})
	return defaultSampleRate, defaultSampleSeed
}

// sampleThreshold converts a sampling rate into a 64-bit hash threshold.
// Zero means exact profiling (every group classified).
func sampleThreshold(rate float64) uint64 {
	if rate <= 0 || rate >= 1 {
		return 0
	}
	return uint64(rate * float64(math.MaxUint64))
}

// sampleHash is a splitmix64-style mix of the seed and a work-group id.
// It is pure integer arithmetic, so sampling decisions are identical on
// every platform, engine, and shard count.
func sampleHash(seed, group uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15*(group+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// groupClassified reports whether the classifier records accesses of the
// work-group with the given linear id under threshold th (0 = exact).
func groupClassified(th, seed uint64, linear int) bool {
	return th == 0 || sampleHash(seed, uint64(linear)) < th
}
