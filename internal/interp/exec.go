package interp

import (
	"fmt"
	"sync"

	"dopia/internal/clc"
	"dopia/internal/faults"
)

// AddressSpace assigns non-overlapping base addresses to buffers so that
// trace addresses from different buffers never alias. One AddressSpace is
// typically shared by all kernels of a context (buffers keep their base
// across launches, which preserves reuse distances between kernels).
type AddressSpace struct {
	next   int64
	nextID int
}

// bufferAlign keeps buffer bases page-aligned, like a real allocator.
const bufferAlign = 4096

// Place assigns a base address and ID to b if it does not have one yet.
func (as *AddressSpace) Place(b *Buffer) {
	if b.Base != 0 {
		return
	}
	if as.next == 0 {
		as.next = bufferAlign // keep 0 distinguishable from "unplaced"
	}
	b.Base = as.next
	as.nextID++
	b.ID = as.nextID
	sz := b.Bytes()
	as.next += (sz + bufferAlign - 1) / bufferAlign * bufferAlign
	if sz == 0 {
		as.next += bufferAlign
	}
}

// Exec executes one kernel. It owns the bound arguments and the
// statistics of the runs performed through it. The compiled kernel form
// itself is immutable and shared through a process-wide cache.
//
// An Exec is not safe for concurrent use by multiple goroutines, but its
// Run and RunGroupSpan methods internally execute disjoint shards of the
// work-group space on a worker pool (see Parallelism).
type Exec struct {
	kernel *clc.Kernel
	ck     *compiled

	args []Arg
	bufs []*Buffer // indexed by parameter slot; nil for scalars
	nd   NDRange

	stats *RunStats
	Sink  TraceSink
	AS    *AddressSpace

	// Check, when non-nil, is polled before every work-group — by every
	// shard worker in parallel mode — so a non-nil return aborts the run
	// within one work-group quantum per shard. The scheduler's watchdog
	// uses it to bound pathological ND ranges with a context deadline.
	// It may be called concurrently and must be goroutine-safe.
	Check func() error

	// Parallelism selects how many shards Run/RunGroupSpan split the
	// work-group space into: 0 uses DefaultParallelism() (the
	// DOPIA_PARALLELISM environment variable, else GOMAXPROCS), and
	// Sequential (1) forces the single-goroutine reference path.
	// Results — output buffers, statistics, trace — are bit-identical
	// for every value. Kernels with global-memory atomics always run
	// sequentially.
	Parallelism int

	// Engine selects the execution engine: EngineAuto (the default)
	// resolves to DefaultEngine() at Launch time. When the bytecode
	// engine is selected but the kernel cannot be lowered, the launch
	// transparently falls back to the closure engine and records the
	// reason in RunStats.FallbackReason. Results are bit-identical
	// across engines.
	Engine Engine

	// LaneWidth selects the bytecode engine's vector lane width: work-
	// items execute in lockstep batches of this many lanes through
	// structure-of-arrays register files, with one opcode dispatch
	// amortized over the batch and divergent control flow handled by
	// per-lane masking. 0 uses DefaultLaneWidth() (DOPIA_LANES, else 8);
	// 1 forces the scalar reference path. Results — buffers, statistics,
	// traces, traps — are bit-identical at every width. Kernels with
	// atomics, barrier-divergent control flow, or intra-group local-
	// memory dependences are pinned to width 1 (the reason is recorded
	// in RunStats.LanePinReason). The closure engine always runs width 1.
	LaneWidth int

	// AccessSampleRate enables sampled access-pattern profiling: a
	// deterministic, hash-chosen fraction of work-groups (by linear
	// group id) runs the per-access classifier, the rest skip it.
	// 0 uses the process default (DOPIA_ACCESS_SAMPLE, else exact);
	// rates outside (0,1) mean exact profiling. Aggregate counters and
	// traces stay exact in every mode, and the sampling decision is
	// independent of engine and shard count.
	AccessSampleRate float64
	// AccessSampleSeed seeds the sampling hash (used only when a rate
	// is set on the Exec; the env-default rate pairs with
	// DOPIA_ACCESS_SEED).
	AccessSampleSeed uint64

	paramVals []Value

	// Resolved at Launch: the lowered bytecode program (nil = closure
	// engine), the engine actually used, and the fallback reason when
	// the bytecode engine was requested but unavailable.
	prog           *bcProgram
	engineUsed     Engine
	fallbackReason string
	laneWidth      int
	lanePinReason  string

	seq     *runState   // shard-0 / sequential execution state
	workers []*runState // extra shard workers, grown lazily
	tasks   []shardTask
	abort   abortFlag
}

// cacheKey keys the process-wide compile cache. The engine is part of
// the key: a kernel compiled for the closure engine (a *compiled tree)
// must never be served to the bytecode path (a *bcEntry), and vice
// versa.
type cacheKey struct {
	k      *clc.Kernel
	engine Engine
}

// bcEntry is a cached lowering result. Failed lowerings are cached too:
// the fallback decision is deterministic per kernel, so there is no
// point re-running the lowerer on every launch.
type bcEntry struct {
	prog *bcProgram
	err  error
}

// compileCache memoizes compiled kernel forms per (*clc.Kernel, engine).
// Compiled forms are immutable and hold no execution state, so every
// Exec of the same kernel shares one. The cache is bypassed while fault
// injection is armed so injected compile faults keep their exact hit
// sequence.
var compileCache sync.Map // cacheKey -> *compiled (closures) | *bcEntry (bytecode)

// NewExec compiles kernel k and returns an executor for it. The kernel
// must come from a checked program (clc.Compile). Identical kernels
// (same *clc.Kernel) share one immutable compiled form through a
// process-wide cache, so constructing executors is cheap. Panics in the
// interpreter compiler are contained and returned as classified errors.
func NewExec(k *clc.Kernel) (ex2 *Exec, err error) {
	defer faults.Recover(faults.StageCompile, &err)
	// The injection site fires before the cache is consulted, so a cache
	// hit cannot mask an injected compile fault.
	if err := faults.Hit("interp.compile"); err != nil {
		return nil, faults.Wrap(faults.StageCompile, err)
	}
	var ck *compiled
	key := cacheKey{k: k, engine: EngineClosures}
	if v, ok := compileCache.Load(key); ok && !faults.Active() {
		ck = v.(*compiled)
	} else {
		ck, err = compileKernel(k)
		if err != nil {
			return nil, faults.Wrap(faults.StageCompile, err)
		}
		compileCache.Store(key, ck)
	}
	ex := &Exec{
		kernel: k,
		ck:     ck,
		args:   make([]Arg, len(k.Params)),
		bufs:   make([]*Buffer, len(k.Params)),
		AS:     &AddressSpace{},
	}
	ex.ResetStats()
	return ex, nil
}

// Kernel returns the kernel this executor runs.
func (ex *Exec) Kernel() *clc.Kernel { return ex.kernel }

// ResetStats clears accumulated statistics.
func (ex *Exec) ResetStats() {
	ex.stats = newRunStats(ex.ck)
	ex.stats.EngineUsed = ex.engineUsed
	ex.stats.FallbackReason = ex.fallbackReason
	ex.stats.LaneWidth = ex.laneWidth
	ex.stats.LanePinReason = ex.lanePinReason
}

// newRunStats allocates run statistics with per-site metadata resolved
// from the compiled kernel.
func newRunStats(ck *compiled) *RunStats {
	s := &RunStats{}
	s.resetFor(ck)
	return s
}

// resetFor clears the statistics in place, reusing the site slice, and
// re-seeds the static per-site metadata.
func (s *RunStats) resetFor(ck *compiled) {
	sites := s.sites
	if cap(sites) < ck.numSites {
		sites = make([]siteState, ck.numSites)
	} else {
		sites = sites[:ck.numSites]
	}
	*s = RunStats{sites: sites}
	for i := range sites {
		sites[i] = siteState{argIndex: ck.siteArg[i], write: ck.siteWrite[i]}
	}
}

// Stats returns the profile of everything run since the last ResetStats.
func (ex *Exec) Stats() *Profile { return ex.stats.Summarize() }

// EngineUsed reports the execution engine selected at Launch and, when
// the bytecode engine was requested but this kernel fell back to the
// closure engine, the reason. Before the first Launch it reports the
// engine that would be used for an EngineAuto request.
func (ex *Exec) EngineUsed() (Engine, string) {
	if ex.engineUsed == EngineAuto {
		return DefaultEngine(), ""
	}
	return ex.engineUsed, ex.fallbackReason
}

// SetArg binds argument i. Buffers are placed in the executor's address
// space; scalar values are converted to the parameter's kind.
func (ex *Exec) SetArg(i int, a Arg) error {
	if i < 0 || i >= len(ex.kernel.Params) {
		return fmt.Errorf("interp: argument index %d out of range (kernel %s has %d params)",
			i, ex.kernel.Name, len(ex.kernel.Params))
	}
	p := ex.kernel.Params[i]
	if p.Type.Ptr {
		if !a.IsBuf || a.Buf == nil {
			return fmt.Errorf("interp: parameter %q of %s requires a buffer", p.Name, ex.kernel.Name)
		}
		if !a.Buf.CompatibleWith(p.Type.Kind) {
			return fmt.Errorf("interp: buffer of kind %v incompatible with parameter %q (%v)",
				a.Buf.Kind, p.Name, p.Type)
		}
		if ex.AS != nil {
			ex.AS.Place(a.Buf)
		}
		ex.bufs[i] = a.Buf
	} else {
		if a.IsBuf {
			return fmt.Errorf("interp: parameter %q of %s is a scalar", p.Name, ex.kernel.Name)
		}
		ex.bufs[i] = nil
		// Normalize the scalar to the parameter kind.
		if p.Type.Kind.IsFloat() {
			if a.Val.F == 0 && a.Val.I != 0 {
				a.Val.F = float64(a.Val.I)
			}
			a.Val = Value{F: normFloat(p.Type.Kind, a.Val.F)}
		} else {
			if a.Val.I == 0 && a.Val.F != 0 {
				a.Val.I = int64(a.Val.F)
			}
			a.Val = Value{I: normInt(p.Type.Kind, a.Val.I)}
		}
	}
	ex.args[i] = a
	return nil
}

// Bind sets all arguments at once.
func (ex *Exec) Bind(args ...Arg) error {
	if len(args) != len(ex.kernel.Params) {
		return fmt.Errorf("interp: kernel %s takes %d arguments, got %d",
			ex.kernel.Name, len(ex.kernel.Params), len(args))
	}
	for i, a := range args {
		if err := ex.SetArg(i, a); err != nil {
			return err
		}
	}
	return nil
}

// Launch validates and sets the ND range for subsequent Run* calls.
func (ex *Exec) Launch(nd NDRange) error {
	if err := nd.Validate(); err != nil {
		return err
	}
	for i, p := range ex.kernel.Params {
		if p.Type.Ptr && ex.bufs[i] == nil {
			return fmt.Errorf("interp: argument %d (%s) not bound", i, p.Name)
		}
	}
	ex.nd = nd.normalized()
	ex.paramVals = ex.paramVals[:0]
	for i := range ex.kernel.Params {
		ex.paramVals = append(ex.paramVals, ex.args[i].Val)
	}
	ex.resolveEngine()
	return nil
}

// resolveEngine resolves the Engine field for the current launch and
// stamps the outcome into the executor's statistics. The bytecode engine
// falls back per kernel to the closure engine when lowering fails; the
// run still succeeds, with the reason recorded.
func (ex *Exec) resolveEngine() {
	eng := ex.Engine
	if eng == EngineAuto {
		eng = DefaultEngine()
	}
	ex.prog, ex.engineUsed, ex.fallbackReason = nil, EngineClosures, ""
	if eng == EngineBytecode {
		prog, err := lowerCached(ex.kernel, ex.ck)
		if err != nil {
			ex.fallbackReason = err.Error()
		} else {
			ex.prog, ex.engineUsed = prog, EngineBytecode
		}
	}
	ex.stats.EngineUsed = ex.engineUsed
	ex.stats.FallbackReason = ex.fallbackReason
	ex.resolveLanes()
}

// resolveLanes resolves the lane width for the current launch. The
// closure engine is always scalar; bytecode programs run the requested
// width unless the lowering-time scan pinned them (atomics, barrier-
// divergent control flow, intra-group local dependences) or opcode
// profiling is on (the vector engine dispatches per batch, which would
// undercount per-item n-grams).
func (ex *Exec) resolveLanes() {
	ex.laneWidth, ex.lanePinReason = 1, ""
	if ex.prog == nil {
		ex.stats.LaneWidth, ex.stats.LanePinReason = 1, ""
		return
	}
	lw := ex.LaneWidth
	if lw == 0 {
		lw = DefaultLaneWidth()
	}
	lw = clampLaneWidth(lw)
	if lw > 1 {
		switch {
		case ex.prog.lanePin != "":
			ex.lanePinReason = ex.prog.lanePin
		case opProfileEnabled():
			ex.lanePinReason = "opcode profiling"
		default:
			if r := ex.laneAliasHazard(); r != "" {
				ex.lanePinReason = r
			} else {
				ex.laneWidth = lw
			}
		}
	}
	ex.stats.LaneWidth = ex.laneWidth
	ex.stats.LanePinReason = ex.lanePinReason
}

// laneAliasHazard checks the actual launch bindings against the
// program's load/store slot masks: when a buffer the kernel stores to
// is also one it loads from (by slot, or the same buffer bound to two
// slots), the kernel can carry an intra-group global read-after-write
// whose sequential order is observable, so lanes must not reorder it.
// Distinct buffers — the common produce/consume pattern — stay laned.
func (ex *Exec) laneAliasHazard() string {
	p := ex.prog
	if p.storeSlots == 0 || p.loadSlots == 0 {
		return ""
	}
	for s := 0; s < len(ex.bufs); s++ {
		if p.storeSlots>>uint(s)&1 == 0 || ex.bufs[s] == nil {
			continue
		}
		for l := 0; l < len(ex.bufs); l++ {
			if p.loadSlots>>uint(l)&1 == 0 {
				continue
			}
			if ex.bufs[l] == ex.bufs[s] {
				return "global load/store aliasing"
			}
		}
	}
	return ""
}

// LanesUsed reports the lane width resolved at Launch and, when a wider
// width was requested but the kernel was pinned to the scalar path, the
// reason. Before the first Launch it reports 1.
func (ex *Exec) LanesUsed() (int, string) {
	if ex.laneWidth == 0 {
		return 1, ""
	}
	return ex.laneWidth, ex.lanePinReason
}

// lowerCached returns the bytecode program for k, memoized — including
// negative results, since the fallback decision is deterministic per
// kernel. Both the read and the write are skipped while fault injection
// is armed, so injected lowering faults keep their exact hit sequence
// and never leak into the cache.
func lowerCached(k *clc.Kernel, ck *compiled) (*bcProgram, error) {
	key := cacheKey{k: k, engine: EngineBytecode}
	if !faults.Active() {
		if v, ok := compileCache.Load(key); ok {
			ent := v.(*bcEntry)
			return ent.prog, ent.err
		}
	}
	prog, err := lowerKernel(k, ck)
	if !faults.Active() {
		compileCache.Store(key, &bcEntry{prog: prog, err: err})
	}
	return prog, err
}

// seqState returns the sequential/shard-0 execution state, prepared for
// the current launch, statistics, and trace sink.
func (ex *Exec) seqState() *runState {
	if ex.seq == nil {
		ex.seq = &runState{ex: ex}
	}
	ex.seq.prepare(ex.stats, ex.Sink)
	return ex.seq
}

// Run executes every work-group of the launched ND range, splitting the
// group space across Parallelism shard workers.
func (ex *Exec) Run() error {
	return ex.runSpan(0, ex.nd.TotalGroups())
}

// RunGroupSpan executes count work-groups starting at linear group id
// start, splitting the span across Parallelism shard workers.
func (ex *Exec) RunGroupSpan(start, count int) error {
	return ex.runSpan(start, count)
}

// RunSampled executes at most maxGroups work-groups, spread evenly across
// the ND range, and returns how many were run. Statistics can be scaled by
// TotalGroups/groupsRun to extrapolate. Buffers hold partial results after
// a sampled run; use Run for functional output. Sampling is always
// sequential: it is a profiling path whose cost is bounded by maxGroups.
func (ex *Exec) RunSampled(maxGroups int) (int, error) {
	total := ex.nd.TotalGroups()
	if maxGroups <= 0 || maxGroups >= total {
		if err := ex.Run(); err != nil {
			return 0, err
		}
		return total, nil
	}
	rs := ex.seqState()
	stride := total / maxGroups
	run := 0
	for g := 0; g < total && run < maxGroups; g += stride {
		if err := rs.runGroup(g); err != nil {
			return run, err
		}
		run++
	}
	return run, nil
}

// RunGroup executes a single work-group identified by its linear id
// (dimension 0 fastest).
func (ex *Exec) RunGroup(linear int) error {
	return ex.seqState().runGroup(linear)
}

// runState is the per-goroutine execution state for running work-groups:
// scratch slots, private arrays, __local storage, and the environment
// handed to compiled closures. The sequential path owns one; every shard
// worker of a parallel run owns another, so shards share nothing but the
// (read-only) compiled kernel, arguments, and the output buffers their
// disjoint work-groups write.
type runState struct {
	ex    *Exec
	stats *RunStats

	env env
	wg  wgState

	slotScratch [][]Value
	privScratch [][][]Value
	doneScratch []bool

	// Bytecode-engine register files, one row per work-item of a group
	// (registers persist across segments like slotScratch rows do).
	irScratch [][]int64
	frScratch [][]float64

	// Lane-engine batch state (SoA register files, per-lane statistics
	// and trace logs, the store-undo log): see bytecode_lanes.go.
	lanes laneBatch

	// Access-sampling decision inputs, resolved by prepare.
	sampleThresh uint64
	sampleSeed   uint64

	// Parallel-run scratch, reused across runs: per-shard statistics and
	// trace log, merged deterministically in shard order.
	ownStats *RunStats
	log      *traceLog
}

// prepare sizes the scratch for the executor's current launch and points
// the environment at the given statistics and trace sink. It is cheap
// when the previously prepared sizes still fit.
func (rs *runState) prepare(stats *RunStats, sink TraceSink) {
	ex := rs.ex
	wgSize := ex.nd.GroupSize()
	if len(rs.slotScratch) < wgSize {
		rs.slotScratch = make([][]Value, wgSize)
		for i := range rs.slotScratch {
			rs.slotScratch[i] = make([]Value, ex.kernel.NumSlots)
		}
		rs.doneScratch = make([]bool, wgSize)
		if len(ex.ck.privSyms) > 0 {
			rs.privScratch = make([][][]Value, wgSize)
			for i := range rs.privScratch {
				rs.privScratch[i] = make([][]Value, len(ex.ck.privSyms))
				for j, sym := range ex.ck.privSyms {
					rs.privScratch[i][j] = make([]Value, sym.ArrayLen)
				}
			}
		}
	}
	if rs.wg.locals == nil && len(ex.ck.localSyms) > 0 {
		rs.wg.locals = make([][]Value, len(ex.ck.localSyms))
		for i, sym := range ex.ck.localSyms {
			ln := sym.ArrayLen
			if ln == 0 {
				ln = 1 // __local scalar
			}
			rs.wg.locals[i] = make([]Value, ln)
		}
	}
	if prog := ex.prog; prog != nil && len(rs.irScratch) < wgSize {
		rs.irScratch = make([][]int64, wgSize)
		rs.frScratch = make([][]float64, wgSize)
		for i := 0; i < wgSize; i++ {
			rs.irScratch[i] = make([]int64, prog.numI)
			rs.frScratch[i] = make([]float64, prog.numF)
		}
	}
	if ex.prog != nil && ex.laneWidth > 1 {
		rs.lanes.prepare(ex, sink != nil)
	}
	rate, seed := ex.AccessSampleRate, ex.AccessSampleSeed
	if rate == 0 {
		rate, seed = DefaultAccessSampling()
	}
	rs.sampleThresh = sampleThreshold(rate)
	rs.sampleSeed = seed
	rs.stats = stats
	rs.env.stats = stats
	rs.env.bufs = ex.bufs
	rs.env.sink = sink
	rs.env.nd = &ex.nd
	rs.env.wg = &rs.wg
}

// runGroup executes a single work-group identified by its linear id
// (dimension 0 fastest). Panics below this boundary — including injected
// ones — are contained and returned as classified errors, also when the
// call happens on a shard worker goroutine.
func (rs *runState) runGroup(linear int) (err error) {
	if rs.ex.prog != nil {
		if rs.ex.laneWidth > 1 {
			return rs.runGroupBCLanes(linear)
		}
		return rs.runGroupBC(linear)
	}
	defer func() {
		if r := recover(); r != nil {
			if re, ok := r.(*runtimeError); ok {
				err = faults.Wrap(faults.StageExec,
					fmt.Errorf("interp: kernel %s: %w", rs.ex.kernel.Name, re))
				return
			}
			// Any other panic is an interpreter bug: contain it at the
			// package boundary so it cannot escape into the host app.
			err = &faults.PanicError{Stage: faults.StageExec, Value: r}
		}
	}()
	ex := rs.ex
	if ex.Check != nil {
		if cerr := ex.Check(); cerr != nil {
			return faults.Wrap(faults.StageExec, cerr)
		}
	}
	total := ex.nd.TotalGroups()
	if linear < 0 || linear >= total {
		return fmt.Errorf("interp: work-group %d out of range [0,%d)", linear, total)
	}
	coords := ex.nd.GroupCoords(linear)
	wgSize := ex.nd.GroupSize()

	// __local storage starts zeroed for every work-group.
	for _, arr := range rs.wg.locals {
		for j := range arr {
			arr[j] = Value{}
		}
	}
	for i := 0; i < wgSize; i++ {
		rs.doneScratch[i] = false
	}

	e := &rs.env
	e.classify = groupClassified(rs.sampleThresh, rs.sampleSeed, linear)
	nd := &ex.nd
	l0, l1 := int64(nd.Local[0]), int64(nd.Local[1])
	baseWI := int64(linear) * int64(wgSize)

	rs.stats.GroupsRun++
	for segIdx, seg := range ex.ck.segments {
		lin := 0
		for l2v := 0; l2v < nd.Local[2]; l2v++ {
			for l1v := 0; l1v < nd.Local[1]; l1v++ {
				for l0v := 0; l0v < nd.Local[0]; l0v++ {
					if rs.doneScratch[lin] {
						lin++
						continue
					}
					slots := rs.slotScratch[lin]
					if segIdx == 0 {
						copy(slots, ex.paramVals)
						if rs.privScratch != nil {
							for _, arr := range rs.privScratch[lin] {
								for j := range arr {
									arr[j] = Value{}
								}
							}
						}
						rs.stats.ItemsRun++
					}
					e.slots = slots
					if rs.privScratch != nil {
						e.priv = rs.privScratch[lin]
					}
					e.lid = [3]int64{int64(l0v), int64(l1v), int64(l2v)}
					e.grp = [3]int64{int64(coords[0]), int64(coords[1]), int64(coords[2])}
					e.gid = [3]int64{
						int64(nd.Offset[0]) + e.grp[0]*l0 + e.lid[0],
						int64(nd.Offset[1]) + e.grp[1]*l1 + e.lid[1],
						int64(nd.Offset[2]) + e.grp[2]*int64(nd.Local[2]) + e.lid[2],
					}
					e.wi = baseWI + int64(lin)
					if seg(e) == ctrlReturn {
						rs.doneScratch[lin] = true
					}
					lin++
				}
			}
		}
	}
	return nil
}
