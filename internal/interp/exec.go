package interp

import (
	"fmt"

	"dopia/internal/clc"
	"dopia/internal/faults"
)

// AddressSpace assigns non-overlapping base addresses to buffers so that
// trace addresses from different buffers never alias. One AddressSpace is
// typically shared by all kernels of a context (buffers keep their base
// across launches, which preserves reuse distances between kernels).
type AddressSpace struct {
	next   int64
	nextID int
}

// bufferAlign keeps buffer bases page-aligned, like a real allocator.
const bufferAlign = 4096

// Place assigns a base address and ID to b if it does not have one yet.
func (as *AddressSpace) Place(b *Buffer) {
	if b.Base != 0 {
		return
	}
	if as.next == 0 {
		as.next = bufferAlign // keep 0 distinguishable from "unplaced"
	}
	b.Base = as.next
	as.nextID++
	b.ID = as.nextID
	sz := b.Bytes()
	as.next += (sz + bufferAlign - 1) / bufferAlign * bufferAlign
	if sz == 0 {
		as.next += bufferAlign
	}
}

// Exec executes one kernel. It owns the compiled form, the bound
// arguments, and the statistics of the runs performed through it.
// An Exec is not safe for concurrent use; create one Exec per goroutine.
type Exec struct {
	kernel *clc.Kernel
	ck     *compiled

	args []Arg
	bufs []*Buffer // indexed by parameter slot; nil for scalars
	nd   NDRange

	stats *RunStats
	Sink  TraceSink
	AS    *AddressSpace

	// Check, when non-nil, is polled before every work-group; a non-nil
	// return aborts the run with that error. The scheduler's watchdog
	// uses it to bound pathological ND ranges with a context deadline.
	Check func() error

	// scratch reused across work-groups
	slotScratch [][]Value
	privScratch [][][]Value
	doneScratch []bool
	paramVals   []Value
}

// NewExec compiles kernel k and returns an executor for it. The kernel
// must come from a checked program (clc.Compile). Panics in the
// interpreter compiler are contained and returned as classified errors.
func NewExec(k *clc.Kernel) (ex2 *Exec, err error) {
	defer faults.Recover(faults.StageCompile, &err)
	if err := faults.Hit("interp.compile"); err != nil {
		return nil, faults.Wrap(faults.StageCompile, err)
	}
	ck, err := compileKernel(k)
	if err != nil {
		return nil, faults.Wrap(faults.StageCompile, err)
	}
	ex := &Exec{
		kernel: k,
		ck:     ck,
		args:   make([]Arg, len(k.Params)),
		bufs:   make([]*Buffer, len(k.Params)),
		AS:     &AddressSpace{},
	}
	ex.ResetStats()
	return ex, nil
}

// Kernel returns the kernel this executor runs.
func (ex *Exec) Kernel() *clc.Kernel { return ex.kernel }

// ResetStats clears accumulated statistics.
func (ex *Exec) ResetStats() {
	ex.stats = &RunStats{sites: make([]siteState, ex.ck.numSites)}
	for i := range ex.stats.sites {
		ex.stats.sites[i].argIndex = -1
	}
}

// Stats returns the profile of everything run since the last ResetStats.
func (ex *Exec) Stats() *Profile { return ex.stats.Summarize() }

// SetArg binds argument i. Buffers are placed in the executor's address
// space; scalar values are converted to the parameter's kind.
func (ex *Exec) SetArg(i int, a Arg) error {
	if i < 0 || i >= len(ex.kernel.Params) {
		return fmt.Errorf("interp: argument index %d out of range (kernel %s has %d params)",
			i, ex.kernel.Name, len(ex.kernel.Params))
	}
	p := ex.kernel.Params[i]
	if p.Type.Ptr {
		if !a.IsBuf || a.Buf == nil {
			return fmt.Errorf("interp: parameter %q of %s requires a buffer", p.Name, ex.kernel.Name)
		}
		if !a.Buf.CompatibleWith(p.Type.Kind) {
			return fmt.Errorf("interp: buffer of kind %v incompatible with parameter %q (%v)",
				a.Buf.Kind, p.Name, p.Type)
		}
		if ex.AS != nil {
			ex.AS.Place(a.Buf)
		}
		ex.bufs[i] = a.Buf
	} else {
		if a.IsBuf {
			return fmt.Errorf("interp: parameter %q of %s is a scalar", p.Name, ex.kernel.Name)
		}
		ex.bufs[i] = nil
		// Normalize the scalar to the parameter kind.
		if p.Type.Kind.IsFloat() {
			if a.Val.F == 0 && a.Val.I != 0 {
				a.Val.F = float64(a.Val.I)
			}
			a.Val = Value{F: normFloat(p.Type.Kind, a.Val.F)}
		} else {
			if a.Val.I == 0 && a.Val.F != 0 {
				a.Val.I = int64(a.Val.F)
			}
			a.Val = Value{I: normInt(p.Type.Kind, a.Val.I)}
		}
	}
	ex.args[i] = a
	return nil
}

// Bind sets all arguments at once.
func (ex *Exec) Bind(args ...Arg) error {
	if len(args) != len(ex.kernel.Params) {
		return fmt.Errorf("interp: kernel %s takes %d arguments, got %d",
			ex.kernel.Name, len(ex.kernel.Params), len(args))
	}
	for i, a := range args {
		if err := ex.SetArg(i, a); err != nil {
			return err
		}
	}
	return nil
}

// Launch validates and sets the ND range for subsequent Run* calls.
func (ex *Exec) Launch(nd NDRange) error {
	if err := nd.Validate(); err != nil {
		return err
	}
	for i, p := range ex.kernel.Params {
		if p.Type.Ptr && ex.bufs[i] == nil {
			return fmt.Errorf("interp: argument %d (%s) not bound", i, p.Name)
		}
	}
	ex.nd = nd.normalized()
	ex.prepareScratch()
	ex.paramVals = ex.paramVals[:0]
	for i := range ex.kernel.Params {
		ex.paramVals = append(ex.paramVals, ex.args[i].Val)
	}
	return nil
}

func (ex *Exec) prepareScratch() {
	wgSize := ex.nd.GroupSize()
	if len(ex.slotScratch) < wgSize {
		ex.slotScratch = make([][]Value, wgSize)
		for i := range ex.slotScratch {
			ex.slotScratch[i] = make([]Value, ex.kernel.NumSlots)
		}
		ex.doneScratch = make([]bool, wgSize)
		if len(ex.ck.privSyms) > 0 {
			ex.privScratch = make([][][]Value, wgSize)
			for i := range ex.privScratch {
				ex.privScratch[i] = make([][]Value, len(ex.ck.privSyms))
				for j, sym := range ex.ck.privSyms {
					ex.privScratch[i][j] = make([]Value, sym.ArrayLen)
				}
			}
		}
	}
}

// Run executes every work-group of the launched ND range.
func (ex *Exec) Run() error {
	total := ex.nd.TotalGroups()
	for g := 0; g < total; g++ {
		if err := ex.RunGroup(g); err != nil {
			return err
		}
	}
	return nil
}

// RunGroupSpan executes count work-groups starting at linear group id
// start.
func (ex *Exec) RunGroupSpan(start, count int) error {
	for g := start; g < start+count; g++ {
		if err := ex.RunGroup(g); err != nil {
			return err
		}
	}
	return nil
}

// RunSampled executes at most maxGroups work-groups, spread evenly across
// the ND range, and returns how many were run. Statistics can be scaled by
// TotalGroups/groupsRun to extrapolate. Buffers hold partial results after
// a sampled run; use Run for functional output.
func (ex *Exec) RunSampled(maxGroups int) (int, error) {
	total := ex.nd.TotalGroups()
	if maxGroups <= 0 || maxGroups >= total {
		if err := ex.Run(); err != nil {
			return 0, err
		}
		return total, nil
	}
	stride := total / maxGroups
	run := 0
	for g := 0; g < total && run < maxGroups; g += stride {
		if err := ex.RunGroup(g); err != nil {
			return run, err
		}
		run++
	}
	return run, nil
}

// RunGroup executes a single work-group identified by its linear id
// (dimension 0 fastest).
func (ex *Exec) RunGroup(linear int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if re, ok := r.(*runtimeError); ok {
				err = faults.Wrap(faults.StageExec,
					fmt.Errorf("interp: kernel %s: %w", ex.kernel.Name, re))
				return
			}
			// Any other panic is an interpreter bug: contain it at the
			// package boundary so it cannot escape into the host app.
			err = &faults.PanicError{Stage: faults.StageExec, Value: r}
		}
	}()
	if ex.Check != nil {
		if cerr := ex.Check(); cerr != nil {
			return faults.Wrap(faults.StageExec, cerr)
		}
	}
	total := ex.nd.TotalGroups()
	if linear < 0 || linear >= total {
		return fmt.Errorf("interp: work-group %d out of range [0,%d)", linear, total)
	}
	coords := ex.nd.GroupCoords(linear)
	wgSize := ex.nd.GroupSize()

	wg := &wgState{}
	if n := len(ex.ck.localSyms); n > 0 {
		wg.locals = make([][]Value, n)
		for i, sym := range ex.ck.localSyms {
			ln := sym.ArrayLen
			if ln == 0 {
				ln = 1 // __local scalar
			}
			wg.locals[i] = make([]Value, ln)
		}
	}

	for i := 0; i < wgSize; i++ {
		ex.doneScratch[i] = false
	}

	e := env{ex: ex, wg: wg}
	nd := ex.nd
	l0, l1 := int64(nd.Local[0]), int64(nd.Local[1])
	baseWI := int64(linear) * int64(wgSize)

	ex.stats.GroupsRun++
	for segIdx, seg := range ex.ck.segments {
		lin := 0
		for l2v := 0; l2v < nd.Local[2]; l2v++ {
			for l1v := 0; l1v < nd.Local[1]; l1v++ {
				for l0v := 0; l0v < nd.Local[0]; l0v++ {
					if ex.doneScratch[lin] {
						lin++
						continue
					}
					slots := ex.slotScratch[lin]
					if segIdx == 0 {
						copy(slots, ex.paramVals)
						if ex.privScratch != nil {
							for _, arr := range ex.privScratch[lin] {
								for j := range arr {
									arr[j] = Value{}
								}
							}
						}
						ex.stats.ItemsRun++
					}
					e.slots = slots
					if ex.privScratch != nil {
						e.priv = ex.privScratch[lin]
					}
					e.lid = [3]int64{int64(l0v), int64(l1v), int64(l2v)}
					e.grp = [3]int64{int64(coords[0]), int64(coords[1]), int64(coords[2])}
					e.gid = [3]int64{
						int64(nd.Offset[0]) + e.grp[0]*l0 + e.lid[0],
						int64(nd.Offset[1]) + e.grp[1]*l1 + e.lid[1],
						int64(nd.Offset[2]) + e.grp[2]*int64(nd.Local[2]) + e.lid[2],
					}
					e.wi = baseWI + int64(lin)
					if seg(&e) == ctrlReturn {
						ex.doneScratch[lin] = true
					}
					lin++
				}
			}
		}
	}
	return nil
}
