package interp

import (
	"dopia/internal/access"
)

// TraceSink receives every memory access when tracing is enabled. The
// reuse-distance profiler in internal/mem implements this interface.
// Addr is a flat simulated byte address (buffer Base + element offset).
type TraceSink interface {
	Access(addr int64, size int64, write bool)
}

// RunStats accumulates execution statistics across the work-groups run by
// one Exec. All counters are totals over executed operations.
type RunStats struct {
	AluInt     int64 // executed integer arithmetic operations
	AluFloat   int64 // executed floating-point arithmetic operations
	Loads      int64
	Stores     int64
	LoadBytes  int64
	StoreBytes int64
	GroupsRun  int64
	ItemsRun   int64

	// EngineUsed is the execution engine that actually ran (stamped at
	// Launch); FallbackReason is non-empty when the bytecode engine was
	// requested but the kernel fell back to the closure engine. Both are
	// launch metadata, not merged counters.
	EngineUsed     Engine
	FallbackReason string

	// LaneWidth is the vector lane width the bytecode engine ran with
	// (1 = scalar); LanePinReason is non-empty when a wider width was
	// requested but the kernel was pinned to width 1 (atomics,
	// barrier-divergent control flow, ...). Launch metadata, like
	// EngineUsed.
	LaneWidth     int
	LanePinReason string

	sites []siteState
}

// siteState tracks the dynamic behaviour of one static memory site.
type siteState struct {
	count    int64
	bytes    int64
	write    bool
	argIndex int // kernel parameter index of the accessed buffer; -1 = local

	// Iteration pattern: deltas between consecutive accesses by the same
	// work-item.
	iter      access.Classifier
	prevAddr  int64
	prevWI    int64
	prevValid bool

	// Lane pattern: deltas between the first access of consecutive
	// work-items.
	lane       access.Classifier
	firstAddr  int64
	firstWI    int64
	haveFirst  bool
	seenThisWI int64 // the WI whose first access has been recorded
	elemSize   int64

	// First access observed in this statistics window. The parallel
	// engine uses it to insert, at merge time, exactly the boundary
	// observations the sequential stream would have produced between
	// the last access of one shard and the first access of the next.
	firstTouchAddr int64
	firstTouchWI   int64
	haveFirstTouch bool
}

// mergeFrom absorbs the statistics of the immediately following shard
// into dst. Shards cover contiguous, disjoint spans of work-groups, so a
// work-item never spans two shards; under that invariant the merged state
// is bit-identical to a sequential walk of the concatenated access
// stream. Must be called in shard order.
func (dst *siteState) mergeFrom(src *siteState) {
	if src.count == 0 {
		return
	}
	if dst.count == 0 {
		*dst = *src
		return
	}
	es := src.elemSize
	// Boundary observations between dst's last access and src's first
	// access (which is always the first access of src's first-touching
	// work-item). In the sequential stream, a same-WI boundary would be
	// an iteration delta; a new WI at firstWI+1 would be a lane delta.
	if dst.prevValid && dst.prevWI == src.firstTouchWI {
		dst.iter.Observe(divES(src.firstTouchAddr-dst.prevAddr, es))
	} else if dst.haveFirst && src.firstTouchWI == dst.firstWI+1 {
		dst.lane.Observe(divES(src.firstTouchAddr-dst.firstAddr, es))
	}
	dst.count += src.count
	dst.bytes += src.bytes
	dst.elemSize = es
	dst.iter.Merge(&src.iter)
	dst.lane.Merge(&src.lane)
	// The chain state continues from src's end, exactly as a sequential
	// walk would leave it.
	dst.prevAddr, dst.prevWI, dst.prevValid = src.prevAddr, src.prevWI, src.prevValid
	dst.firstAddr, dst.firstWI, dst.haveFirst = src.firstAddr, src.firstWI, src.haveFirst
	dst.seenThisWI = src.seenThisWI
}

// SiteProfile is the summarized behaviour of one memory site.
type SiteProfile struct {
	Site     int
	ArgIndex int // parameter index of the buffer; -1 for __local
	Write    bool
	Count    int64
	Bytes    int64

	// IterPattern is the loop-iteration address pattern (the paper's
	// Table 1 classification); IterStride is in elements when Strided.
	IterPattern access.Pattern
	IterStride  int64

	// LanePattern is the across-work-items pattern that governs GPU
	// memory coalescing; LaneStride is in elements when Strided.
	LanePattern access.Pattern
	LaneStride  int64
}

// Profile is the summarized result of a (possibly sampled) kernel
// execution: total operation counts plus per-site access behaviour.
// Divide by ItemsRun for per-work-item averages.
type Profile struct {
	AluInt     int64
	AluFloat   int64
	Loads      int64
	Stores     int64
	LoadBytes  int64
	StoreBytes int64
	GroupsRun  int64
	ItemsRun   int64
	Sites      []SiteProfile

	// Engine is the execution engine the profiled launches ran on;
	// FallbackReason records why a bytecode-engine request fell back to
	// the closure engine (empty otherwise).
	Engine         Engine
	FallbackReason string

	// LaneWidth is the bytecode engine's vector lane width (1 = scalar,
	// also for the closure engine); LanePinReason records why a wider
	// request was pinned to 1. Like Engine, launch metadata: profiles
	// are bit-identical across lane widths.
	LaneWidth     int
	LanePinReason string
}

// TotalBytes returns the total bytes moved (loads + stores).
func (p *Profile) TotalBytes() int64 { return p.LoadBytes + p.StoreBytes }

// TotalMem returns the total memory operations.
func (p *Profile) TotalMem() int64 { return p.Loads + p.Stores }

// TotalAlu returns the total arithmetic operations.
func (p *Profile) TotalAlu() int64 { return p.AluInt + p.AluFloat }

// Scale returns a copy of the profile with all counters multiplied by f,
// used to extrapolate sampled runs to the full NDRange.
func (p *Profile) Scale(f float64) *Profile {
	s := *p
	s.AluInt = int64(float64(p.AluInt) * f)
	s.AluFloat = int64(float64(p.AluFloat) * f)
	s.Loads = int64(float64(p.Loads) * f)
	s.Stores = int64(float64(p.Stores) * f)
	s.LoadBytes = int64(float64(p.LoadBytes) * f)
	s.StoreBytes = int64(float64(p.StoreBytes) * f)
	s.GroupsRun = int64(float64(p.GroupsRun) * f)
	s.ItemsRun = int64(float64(p.ItemsRun) * f)
	s.Sites = append([]SiteProfile(nil), p.Sites...)
	for i := range s.Sites {
		s.Sites[i].Count = int64(float64(s.Sites[i].Count) * f)
		s.Sites[i].Bytes = int64(float64(s.Sites[i].Bytes) * f)
	}
	return &s
}

// divES divides a byte delta between two addresses of one site by the
// site's element size. Both addresses lie in the same buffer (bases are
// bufferAlign-aligned), so the delta is an exact multiple of the element
// size (4 or 8) and the division reduces to an arithmetic shift — which
// is exact for negative multiples too.
func divES(delta, es int64) int64 {
	switch es {
	case 4:
		return delta >> 2
	case 8:
		return delta >> 3
	}
	return delta / es
}

// recordAccess updates a site's dynamic pattern state. wi is the linear
// global index of the executing work-item, addr the flat byte address.
// The fast path covers repeat accesses by the current work-item (the
// steady state of every kernel loop) and is small enough for the
// compiler to inline into the bytecode engine's dispatch loop; every
// other case (first access, work-item change) takes recordAccessSlow.
func (st *siteState) recordAccess(addr, elemSize, wi int64) {
	if st.prevValid && st.prevWI == wi && st.seenThisWI == wi {
		// prevValid implies haveFirst, and seenThisWI == wi means this
		// WI's first access is already recorded: only the iteration
		// delta and the running totals change.
		st.count++
		st.bytes += elemSize
		st.iter.Observe(divES(addr-st.prevAddr, elemSize))
		st.prevAddr = addr
		return
	}
	st.recordAccessSlow(addr, elemSize, wi)
}

func (st *siteState) recordAccessSlow(addr, elemSize, wi int64) {
	st.count++
	st.bytes += elemSize
	st.elemSize = elemSize
	if st.prevValid && st.prevWI == wi {
		st.iter.Observe(divES(addr-st.prevAddr, elemSize))
	}
	st.prevAddr = addr
	st.prevWI = wi
	st.prevValid = true

	// First access of this WI at this site?
	if st.seenThisWI != wi || !st.haveFirst {
		if st.haveFirst {
			if wi == st.firstWI+1 {
				st.lane.Observe(divES(addr-st.firstAddr, elemSize))
			}
		} else {
			st.firstTouchAddr, st.firstTouchWI = addr, wi
			st.haveFirstTouch = true
		}
		st.firstAddr = addr
		st.firstWI = wi
		st.haveFirst = true
		st.seenThisWI = wi
	}
}

// mergeFrom absorbs the statistics of the shard that immediately follows
// this one in work-group order. Merging shard statistics in shard order
// reproduces the sequential run's counters and access patterns exactly.
func (s *RunStats) mergeFrom(o *RunStats) {
	s.AluInt += o.AluInt
	s.AluFloat += o.AluFloat
	s.Loads += o.Loads
	s.Stores += o.Stores
	s.LoadBytes += o.LoadBytes
	s.StoreBytes += o.StoreBytes
	s.GroupsRun += o.GroupsRun
	s.ItemsRun += o.ItemsRun
	for i := range s.sites {
		s.sites[i].mergeFrom(&o.sites[i])
	}
}

// Summarize produces the profile for the statistics gathered so far.
func (s *RunStats) Summarize() *Profile {
	p := &Profile{
		AluInt:         s.AluInt,
		AluFloat:       s.AluFloat,
		Loads:          s.Loads,
		Stores:         s.Stores,
		LoadBytes:      s.LoadBytes,
		StoreBytes:     s.StoreBytes,
		GroupsRun:      s.GroupsRun,
		ItemsRun:       s.ItemsRun,
		Engine:         s.EngineUsed,
		FallbackReason: s.FallbackReason,
		LaneWidth:      s.LaneWidth,
		LanePinReason:  s.LanePinReason,
	}
	for i := range s.sites {
		st := &s.sites[i]
		if st.count == 0 {
			continue
		}
		sp := SiteProfile{
			Site:     i,
			ArgIndex: st.argIndex,
			Write:    st.write,
			Count:    st.count,
			Bytes:    st.bytes,
		}
		sp.IterPattern, sp.IterStride = st.iter.Pattern()
		sp.LanePattern, sp.LaneStride = st.lane.Pattern()
		if sp.IterPattern == access.Unknown {
			// A site executed once per work-item has no iteration deltas;
			// the work-item stream is the implicit loop, so the lane
			// pattern is the iteration pattern (the static analyzer uses
			// the same convention).
			sp.IterPattern, sp.IterStride = sp.LanePattern, sp.LaneStride
		}
		p.Sites = append(p.Sites, sp)
	}
	return p
}
