package interp

import (
	"fmt"
	"math"

	"dopia/internal/clc"
)

// ctrl is the control-flow result of executing a compiled statement.
type ctrl int8

const (
	ctrlNormal ctrl = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

// evalFn evaluates a compiled expression in an environment.
type evalFn func(e *env) Value

// stmtFn executes a compiled statement.
type stmtFn func(e *env) ctrl

// env is the per-work-item execution environment. It is reused across
// work-items with the slots slice swapped, so compiled closures must not
// retain it. An env carries everything a compiled closure may touch at
// run time — compiled kernels themselves hold no per-execution state, so
// one compiled form can be shared by any number of executors and shard
// workers running concurrently, each with its own env.
type env struct {
	slots []Value
	gid   [3]int64
	lid   [3]int64
	grp   [3]int64
	wi    int64 // linear work-item index within the launch

	stats *RunStats // statistics sink of this worker/shard
	bufs  []*Buffer // bound buffers, by parameter slot
	sink  TraceSink // optional memory-trace sink (nil = disabled)
	nd    *NDRange  // the launched ND range (shared, read-only)
	wg    *wgState
	priv  [][]Value // private arrays of the current work-item, by index

	// classify gates the per-access pattern classifier: when false (an
	// unsampled work-group under sampled profiling) recordAccess is
	// skipped while the aggregate counters and the trace stay exact.
	// Exact profiling keeps it true for every group.
	classify bool
}

// wgState is the work-group-shared state: __local arrays and scalars.
type wgState struct {
	locals [][]Value // by local symbol index
}

// runtimeError aborts kernel execution; Run recovers it into an error.
type runtimeError struct {
	pos clc.Pos
	msg string
}

func (e *runtimeError) Error() string { return fmt.Sprintf("%s: %s", e.pos, e.msg) }

func rtErr(pos clc.Pos, format string, args ...any) {
	panic(&runtimeError{pos: pos, msg: fmt.Sprintf(format, args...)})
}

// compiled is a kernel lowered to closures, split into barrier-delimited
// segments. A compiled form is immutable after compileKernel returns and
// holds no execution state, so it is shared freely across executors and
// goroutines (see the process-wide compile cache in NewExec).
type compiled struct {
	kernel   *clc.Kernel
	segments []stmtFn
	numSites int

	localSyms []*clc.Symbol // __local arrays/scalars, indexed by localIdx
	privSyms  []*clc.Symbol // private arrays, indexed by privIdx
	localIdx  map[*clc.Symbol]int
	privIdx   map[*clc.Symbol]int

	// Static per-site metadata, resolved at compile time so the hot
	// memory-access paths do not re-store it on every access.
	siteArg   []int  // parameter slot of the accessed buffer; -1 otherwise
	siteWrite []bool // true when the site is a store target

	// hasGlobalAtomic marks kernels that perform atomics on global
	// memory; their work-groups are order- and interleaving-sensitive,
	// so the executor pins them to the sequential path.
	hasGlobalAtomic bool
}

// compiler holds state while lowering one kernel.
type compiler struct {
	c   *compiled
	err error

	siteArg   map[int]int
	siteWrite map[int]bool
}

// regSite records compile-time metadata of a global-memory site.
func (cp *compiler) regSite(ref memRef, write bool) {
	if ref.site < 0 || ref.argIndex < 0 {
		return
	}
	if cp.siteArg == nil {
		cp.siteArg = map[int]int{}
		cp.siteWrite = map[int]bool{}
	}
	cp.siteArg[ref.site] = ref.argIndex
	if write {
		cp.siteWrite[ref.site] = true
	}
}

func (cp *compiler) fail(pos clc.Pos, format string, args ...any) {
	if cp.err == nil {
		cp.err = fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...))
	}
}

// compileKernel lowers a checked kernel to closures.
func compileKernel(k *clc.Kernel) (*compiled, error) {
	c := &compiled{
		kernel:   k,
		localIdx: map[*clc.Symbol]int{},
		privIdx:  map[*clc.Symbol]int{},
	}
	for _, sym := range k.Locals {
		switch {
		case sym.IsLocal:
			c.localIdx[sym] = len(c.localSyms)
			c.localSyms = append(c.localSyms, sym)
		case sym.ArrayLen > 0:
			c.privIdx[sym] = len(c.privSyms)
			c.privSyms = append(c.privSyms, sym)
		}
	}
	cp := &compiler{c: c}

	// Split the body at top-level barriers into segments.
	var seg []clc.Stmt
	flush := func() {
		stmts := make([]stmtFn, 0, len(seg))
		for _, s := range seg {
			stmts = append(stmts, cp.compileStmt(s))
		}
		seg = nil
		list := stmts
		c.segments = append(c.segments, func(e *env) ctrl {
			for _, fn := range list {
				if cc := fn(e); cc != ctrlNormal {
					return cc
				}
			}
			return ctrlNormal
		})
	}
	if k.Body != nil {
		for _, s := range k.Body.Stmts {
			if _, isBarrier := s.(*clc.BarrierStmt); isBarrier {
				flush()
				continue
			}
			seg = append(seg, s)
		}
	}
	flush()
	c.numSites = countSites(k)
	c.siteArg = make([]int, c.numSites)
	c.siteWrite = make([]bool, c.numSites)
	for i := range c.siteArg {
		c.siteArg[i] = -1
	}
	for s, a := range cp.siteArg {
		c.siteArg[s] = a
	}
	for s := range cp.siteWrite {
		c.siteWrite[s] = true
	}
	if cp.err != nil {
		return nil, cp.err
	}
	return c, nil
}

// countSites returns the number of memory sites the checker assigned.
func countSites(k *clc.Kernel) int {
	max := -1
	var walkExpr func(x clc.Expr)
	walkExpr = func(x clc.Expr) {
		switch e := x.(type) {
		case *clc.Index:
			if e.Site > max {
				max = e.Site
			}
			walkExpr(e.Base)
			walkExpr(e.Idx)
		case *clc.Binary:
			walkExpr(e.L)
			walkExpr(e.R)
		case *clc.Unary:
			walkExpr(e.X)
		case *clc.Cond:
			walkExpr(e.C)
			walkExpr(e.Then)
			walkExpr(e.Else)
		case *clc.Call:
			for _, a := range e.Args {
				walkExpr(a)
			}
		case *clc.Cast:
			walkExpr(e.X)
		case *clc.Assign:
			walkExpr(e.LHS)
			walkExpr(e.RHS)
		case *clc.IncDec:
			walkExpr(e.X)
		}
	}
	var walkStmt func(s clc.Stmt)
	walkStmt = func(s clc.Stmt) {
		switch st := s.(type) {
		case *clc.Block:
			for _, inner := range st.Stmts {
				walkStmt(inner)
			}
		case *clc.DeclStmt:
			for _, d := range st.Decls {
				if d.Init != nil {
					walkExpr(d.Init)
				}
			}
		case *clc.ExprStmt:
			walkExpr(st.X)
		case *clc.IfStmt:
			walkExpr(st.Cond)
			walkStmt(st.Then)
			if st.Else != nil {
				walkStmt(st.Else)
			}
		case *clc.ForStmt:
			if st.Init != nil {
				walkStmt(st.Init)
			}
			if st.Cond != nil {
				walkExpr(st.Cond)
			}
			if st.Post != nil {
				walkExpr(st.Post)
			}
			walkStmt(st.Body)
		case *clc.WhileStmt:
			walkExpr(st.Cond)
			walkStmt(st.Body)
		case *clc.DoWhileStmt:
			walkStmt(st.Body)
			walkExpr(st.Cond)
		}
	}
	if k.Body != nil {
		walkStmt(k.Body)
	}
	return max + 1
}

// ---------------------------------------------------------------------------
// Statements

func (cp *compiler) compileStmt(s clc.Stmt) stmtFn {
	switch st := s.(type) {
	case *clc.Block:
		fns := make([]stmtFn, 0, len(st.Stmts))
		for _, inner := range st.Stmts {
			fns = append(fns, cp.compileStmt(inner))
		}
		return func(e *env) ctrl {
			for _, fn := range fns {
				if cc := fn(e); cc != ctrlNormal {
					return cc
				}
			}
			return ctrlNormal
		}
	case *clc.DeclStmt:
		var fns []stmtFn
		for _, d := range st.Decls {
			fns = append(fns, cp.compileDecl(d))
		}
		if len(fns) == 1 {
			return fns[0]
		}
		return func(e *env) ctrl {
			for _, fn := range fns {
				fn(e)
			}
			return ctrlNormal
		}
	case *clc.ExprStmt:
		fn := cp.compileExpr(st.X)
		return func(e *env) ctrl {
			fn(e)
			return ctrlNormal
		}
	case *clc.IfStmt:
		cond := cp.compileTruth(st.Cond)
		then := cp.compileStmt(st.Then)
		if st.Else == nil {
			return func(e *env) ctrl {
				if cond(e) {
					return then(e)
				}
				return ctrlNormal
			}
		}
		els := cp.compileStmt(st.Else)
		return func(e *env) ctrl {
			if cond(e) {
				return then(e)
			}
			return els(e)
		}
	case *clc.ForStmt:
		var init stmtFn
		if st.Init != nil {
			init = cp.compileStmt(st.Init)
		}
		var cond func(e *env) bool
		if st.Cond != nil {
			cond = cp.compileTruth(st.Cond)
		}
		var post evalFn
		if st.Post != nil {
			post = cp.compileExpr(st.Post)
		}
		body := cp.compileStmt(st.Body)
		return func(e *env) ctrl {
			if init != nil {
				init(e)
			}
			for cond == nil || cond(e) {
				switch body(e) {
				case ctrlBreak:
					return ctrlNormal
				case ctrlReturn:
					return ctrlReturn
				}
				if post != nil {
					post(e)
				}
			}
			return ctrlNormal
		}
	case *clc.WhileStmt:
		cond := cp.compileTruth(st.Cond)
		body := cp.compileStmt(st.Body)
		return func(e *env) ctrl {
			for cond(e) {
				switch body(e) {
				case ctrlBreak:
					return ctrlNormal
				case ctrlReturn:
					return ctrlReturn
				}
			}
			return ctrlNormal
		}
	case *clc.DoWhileStmt:
		cond := cp.compileTruth(st.Cond)
		body := cp.compileStmt(st.Body)
		return func(e *env) ctrl {
			for {
				switch body(e) {
				case ctrlBreak:
					return ctrlNormal
				case ctrlReturn:
					return ctrlReturn
				}
				if !cond(e) {
					return ctrlNormal
				}
			}
		}
	case *clc.ReturnStmt:
		return func(e *env) ctrl { return ctrlReturn }
	case *clc.BreakStmt:
		return func(e *env) ctrl { return ctrlBreak }
	case *clc.ContinueStmt:
		return func(e *env) ctrl { return ctrlContinue }
	case *clc.BarrierStmt:
		// Top-level barriers are handled by segmentation before
		// compileStmt is reached; nested ones are rejected by the checker.
		return func(e *env) ctrl { return ctrlNormal }
	}
	cp.fail(s.Pos(), "interp: unhandled statement %T", s)
	return func(e *env) ctrl { return ctrlNormal }
}

func (cp *compiler) compileDecl(d *clc.VarDecl) stmtFn {
	sym := d.Sym
	if sym == nil {
		cp.fail(d.NamePos, "interp: unresolved declaration %q", d.Name)
		return func(e *env) ctrl { return ctrlNormal }
	}
	if sym.IsLocal {
		if d.Init != nil {
			cp.fail(d.NamePos, "__local variables cannot have initializers")
		}
		// Local memory is zeroed by the executor at work-group start.
		return func(e *env) ctrl { return ctrlNormal }
	}
	if sym.ArrayLen > 0 {
		// Private arrays are zeroed by the executor at work-item start.
		return func(e *env) ctrl { return ctrlNormal }
	}
	slot := sym.Slot
	if d.Init == nil {
		return func(e *env) ctrl {
			e.slots[slot] = Value{}
			return ctrlNormal
		}
	}
	init := cp.convert(cp.compileExpr(d.Init), d.Init.ResultType().Kind, sym.Type.Kind, d.NamePos)
	return func(e *env) ctrl {
		e.slots[slot] = init(e)
		return ctrlNormal
	}
}

// ---------------------------------------------------------------------------
// Scalar semantics helpers

// normInt normalizes an integer to the width/signedness of kind k,
// reproducing OpenCL's 32-bit int wrap-around semantics.
func normInt(k clc.Kind, v int64) int64 {
	switch k {
	case clc.KindInt:
		return int64(int32(v))
	case clc.KindUInt:
		return int64(uint32(v))
	case clc.KindBool:
		if v != 0 {
			return 1
		}
		return 0
	default: // KindLong, KindULong keep the 64-bit pattern
		return v
	}
}

// normFloat rounds to float32 when the kind is float.
func normFloat(k clc.Kind, v float64) float64 {
	if k == clc.KindFloat {
		return float64(float32(v))
	}
	return v
}

// convert adapts a value of kind from to kind to.
func (cp *compiler) convert(fn evalFn, from, to clc.Kind, pos clc.Pos) evalFn {
	if from == to {
		return fn
	}
	switch {
	case from.IsInteger() && to.IsInteger():
		return func(e *env) Value { return Value{I: normInt(to, fn(e).I)} }
	case from.IsInteger() && to.IsFloat():
		if from.IsUnsigned() && from == clc.KindULong {
			return func(e *env) Value { return Value{F: normFloat(to, float64(uint64(fn(e).I)))} }
		}
		return func(e *env) Value { return Value{F: normFloat(to, float64(fn(e).I))} }
	case from.IsFloat() && to.IsInteger():
		return func(e *env) Value { return Value{I: normInt(to, int64(fn(e).F))} }
	case from.IsFloat() && to.IsFloat():
		return func(e *env) Value { return Value{F: normFloat(to, fn(e).F)} }
	}
	cp.fail(pos, "interp: cannot convert %v to %v", from, to)
	return fn
}

// compileTruth compiles an expression used as a condition.
func (cp *compiler) compileTruth(x clc.Expr) func(e *env) bool {
	fn := cp.compileExpr(x)
	if x.ResultType().Kind.IsFloat() {
		return func(e *env) bool { return fn(e).F != 0 }
	}
	return func(e *env) bool { return fn(e).I != 0 }
}

// ---------------------------------------------------------------------------
// Expressions

func (cp *compiler) compileExpr(x clc.Expr) evalFn {
	switch ex := x.(type) {
	case *clc.IntLit:
		v := Value{I: ex.Value}
		return func(e *env) Value { return v }
	case *clc.FloatLit:
		v := Value{F: normFloat(clc.KindFloat, ex.Value)}
		return func(e *env) Value { return v }
	case *clc.Ident:
		return cp.compileIdentLoad(ex)
	case *clc.Unary:
		return cp.compileUnary(ex)
	case *clc.Binary:
		return cp.compileBinary(ex)
	case *clc.Cond:
		cond := cp.compileTruth(ex.C)
		rk := ex.ResultType().Kind
		then := cp.convert(cp.compileExpr(ex.Then), ex.Then.ResultType().Kind, rk, ex.Pos())
		els := cp.convert(cp.compileExpr(ex.Else), ex.Else.ResultType().Kind, rk, ex.Pos())
		return func(e *env) Value {
			if cond(e) {
				return then(e)
			}
			return els(e)
		}
	case *clc.Index:
		return cp.compileLoad(ex)
	case *clc.Call:
		return cp.compileCall(ex)
	case *clc.Cast:
		return cp.convert(cp.compileExpr(ex.X), ex.X.ResultType().Kind, ex.To.Kind, ex.Pos())
	case *clc.Assign:
		return cp.compileAssign(ex)
	case *clc.IncDec:
		return cp.compileIncDec(ex)
	}
	cp.fail(x.Pos(), "interp: unhandled expression %T", x)
	return func(e *env) Value { return Value{} }
}

func (cp *compiler) compileIdentLoad(id *clc.Ident) evalFn {
	sym := id.Sym
	if sym == nil {
		cp.fail(id.Pos(), "interp: unresolved identifier %q", id.Name)
		return func(e *env) Value { return Value{} }
	}
	if sym.Type.Ptr || sym.ArrayLen > 0 {
		cp.fail(id.Pos(), "interp: pointer %q used as a value", id.Name)
		return func(e *env) Value { return Value{} }
	}
	if sym.IsLocal {
		idx := cp.c.localIdx[sym]
		return func(e *env) Value { return e.wg.locals[idx][0] }
	}
	slot := sym.Slot
	return func(e *env) Value { return e.slots[slot] }
}

func (cp *compiler) compileUnary(u *clc.Unary) evalFn {
	xk := u.X.ResultType().Kind
	fn := cp.compileExpr(u.X)
	rk := u.ResultType().Kind
	switch u.Op {
	case clc.UnaryPlus:
		return fn
	case clc.UnaryNeg:
		if xk.IsFloat() {
			return func(e *env) Value {
				e.stats.AluFloat++
				return Value{F: normFloat(rk, -fn(e).F)}
			}
		}
		return func(e *env) Value {
			e.stats.AluInt++
			return Value{I: normInt(rk, -fn(e).I)}
		}
	case clc.UnaryNot:
		truth := cp.compileTruth(u.X)
		return func(e *env) Value {
			e.stats.AluInt++
			if truth(e) {
				return Value{I: 0}
			}
			return Value{I: 1}
		}
	case clc.UnaryBitNot:
		return func(e *env) Value {
			e.stats.AluInt++
			return Value{I: normInt(rk, ^fn(e).I)}
		}
	}
	cp.fail(u.Pos(), "interp: unhandled unary op %v", u.Op)
	return fn
}

func (cp *compiler) compileBinary(b *clc.Binary) evalFn {
	if b.Op.IsLogical() {
		l := cp.compileTruth(b.L)
		r := cp.compileTruth(b.R)
		if b.Op == clc.BinLAnd {
			return func(e *env) Value {
				e.stats.AluInt++
				if l(e) && r(e) {
					return Value{I: 1}
				}
				return Value{I: 0}
			}
		}
		return func(e *env) Value {
			e.stats.AluInt++
			if l(e) || r(e) {
				return Value{I: 1}
			}
			return Value{I: 0}
		}
	}
	lk := b.L.ResultType().Kind
	rk := b.R.ResultType().Kind
	pk := promoteKind(lk, rk)
	l := cp.convert(cp.compileExpr(b.L), lk, pk, b.Pos())
	r := cp.convert(cp.compileExpr(b.R), rk, pk, b.Pos())
	return cp.binOpFn(b.Op, pk, l, r, b.Pos())
}

// promoteKind mirrors the checker's usual arithmetic conversion.
func promoteKind(a, b clc.Kind) clc.Kind {
	if a == clc.KindDouble || b == clc.KindDouble {
		return clc.KindDouble
	}
	if a == clc.KindFloat || b == clc.KindFloat {
		return clc.KindFloat
	}
	if a == clc.KindULong || b == clc.KindULong {
		return clc.KindULong
	}
	if a == clc.KindLong || b == clc.KindLong {
		return clc.KindLong
	}
	if a == clc.KindUInt || b == clc.KindUInt {
		return clc.KindUInt
	}
	return clc.KindInt
}

// binOpFn builds the closure for a binary operator over promoted kind pk.
func (cp *compiler) binOpFn(op clc.BinaryOp, pk clc.Kind, l, r evalFn, pos clc.Pos) evalFn {
	if pk.IsFloat() {
		switch op {
		case clc.BinAdd:
			return func(e *env) Value { e.stats.AluFloat++; return Value{F: normFloat(pk, l(e).F+r(e).F)} }
		case clc.BinSub:
			return func(e *env) Value { e.stats.AluFloat++; return Value{F: normFloat(pk, l(e).F-r(e).F)} }
		case clc.BinMul:
			return func(e *env) Value { e.stats.AluFloat++; return Value{F: normFloat(pk, l(e).F*r(e).F)} }
		case clc.BinDiv:
			return func(e *env) Value { e.stats.AluFloat++; return Value{F: normFloat(pk, l(e).F/r(e).F)} }
		case clc.BinEq:
			return func(e *env) Value { e.stats.AluFloat++; return boolVal(l(e).F == r(e).F) }
		case clc.BinNe:
			return func(e *env) Value { e.stats.AluFloat++; return boolVal(l(e).F != r(e).F) }
		case clc.BinLt:
			return func(e *env) Value { e.stats.AluFloat++; return boolVal(l(e).F < r(e).F) }
		case clc.BinGt:
			return func(e *env) Value { e.stats.AluFloat++; return boolVal(l(e).F > r(e).F) }
		case clc.BinLe:
			return func(e *env) Value { e.stats.AluFloat++; return boolVal(l(e).F <= r(e).F) }
		case clc.BinGe:
			return func(e *env) Value { e.stats.AluFloat++; return boolVal(l(e).F >= r(e).F) }
		}
		cp.fail(pos, "interp: invalid float operator %v", op)
		return l
	}
	unsigned := pk.IsUnsigned()
	shiftMask := int64(31)
	if pk == clc.KindLong || pk == clc.KindULong {
		shiftMask = 63
	}
	switch op {
	case clc.BinAdd:
		return func(e *env) Value { e.stats.AluInt++; return Value{I: normInt(pk, l(e).I+r(e).I)} }
	case clc.BinSub:
		return func(e *env) Value { e.stats.AluInt++; return Value{I: normInt(pk, l(e).I-r(e).I)} }
	case clc.BinMul:
		return func(e *env) Value { e.stats.AluInt++; return Value{I: normInt(pk, l(e).I*r(e).I)} }
	case clc.BinDiv:
		return func(e *env) Value {
			e.stats.AluInt++
			rv := r(e).I
			if rv == 0 {
				rtErr(pos, "integer division by zero")
			}
			if unsigned {
				return Value{I: normInt(pk, int64(uint64(l(e).I)/uint64(rv)))}
			}
			return Value{I: normInt(pk, l(e).I/rv)}
		}
	case clc.BinRem:
		return func(e *env) Value {
			e.stats.AluInt++
			rv := r(e).I
			if rv == 0 {
				rtErr(pos, "integer modulo by zero")
			}
			if unsigned {
				return Value{I: normInt(pk, int64(uint64(l(e).I)%uint64(rv)))}
			}
			return Value{I: normInt(pk, l(e).I%rv)}
		}
	case clc.BinShl:
		return func(e *env) Value {
			e.stats.AluInt++
			return Value{I: normInt(pk, l(e).I<<uint64(r(e).I&shiftMask))}
		}
	case clc.BinShr:
		if unsigned {
			return func(e *env) Value {
				e.stats.AluInt++
				return Value{I: normInt(pk, int64(uint64(l(e).I)>>uint64(r(e).I&shiftMask)))}
			}
		}
		return func(e *env) Value {
			e.stats.AluInt++
			return Value{I: normInt(pk, l(e).I>>uint64(r(e).I&shiftMask))}
		}
	case clc.BinAnd:
		return func(e *env) Value { e.stats.AluInt++; return Value{I: normInt(pk, l(e).I&r(e).I)} }
	case clc.BinOr:
		return func(e *env) Value { e.stats.AluInt++; return Value{I: normInt(pk, l(e).I|r(e).I)} }
	case clc.BinXor:
		return func(e *env) Value { e.stats.AluInt++; return Value{I: normInt(pk, l(e).I^r(e).I)} }
	case clc.BinEq:
		return func(e *env) Value { e.stats.AluInt++; return boolVal(l(e).I == r(e).I) }
	case clc.BinNe:
		return func(e *env) Value { e.stats.AluInt++; return boolVal(l(e).I != r(e).I) }
	case clc.BinLt:
		if unsigned {
			return func(e *env) Value { e.stats.AluInt++; return boolVal(uint64(l(e).I) < uint64(r(e).I)) }
		}
		return func(e *env) Value { e.stats.AluInt++; return boolVal(l(e).I < r(e).I) }
	case clc.BinGt:
		if unsigned {
			return func(e *env) Value { e.stats.AluInt++; return boolVal(uint64(l(e).I) > uint64(r(e).I)) }
		}
		return func(e *env) Value { e.stats.AluInt++; return boolVal(l(e).I > r(e).I) }
	case clc.BinLe:
		if unsigned {
			return func(e *env) Value { e.stats.AluInt++; return boolVal(uint64(l(e).I) <= uint64(r(e).I)) }
		}
		return func(e *env) Value { e.stats.AluInt++; return boolVal(l(e).I <= r(e).I) }
	case clc.BinGe:
		if unsigned {
			return func(e *env) Value { e.stats.AluInt++; return boolVal(uint64(l(e).I) >= uint64(r(e).I)) }
		}
		return func(e *env) Value { e.stats.AluInt++; return boolVal(l(e).I >= r(e).I) }
	}
	cp.fail(pos, "interp: unhandled binary op %v", op)
	return l
}

func boolVal(b bool) Value {
	if b {
		return Value{I: 1}
	}
	return Value{I: 0}
}

// applyBin applies a non-logical binary operator to already-evaluated
// operands of promoted kind pk. It is used where operands must be computed
// out of line (compound assignments through memory), so no state can be
// shared between invocations.
func applyBin(op clc.BinaryOp, pk clc.Kind, pos clc.Pos, e *env, a, b Value) Value {
	if pk.IsFloat() {
		e.stats.AluFloat++
		switch op {
		case clc.BinAdd:
			return Value{F: normFloat(pk, a.F+b.F)}
		case clc.BinSub:
			return Value{F: normFloat(pk, a.F-b.F)}
		case clc.BinMul:
			return Value{F: normFloat(pk, a.F*b.F)}
		case clc.BinDiv:
			return Value{F: normFloat(pk, a.F/b.F)}
		case clc.BinEq:
			return boolVal(a.F == b.F)
		case clc.BinNe:
			return boolVal(a.F != b.F)
		case clc.BinLt:
			return boolVal(a.F < b.F)
		case clc.BinGt:
			return boolVal(a.F > b.F)
		case clc.BinLe:
			return boolVal(a.F <= b.F)
		case clc.BinGe:
			return boolVal(a.F >= b.F)
		}
		rtErr(pos, "invalid float operator %v", op)
	}
	e.stats.AluInt++
	unsigned := pk.IsUnsigned()
	shiftMask := int64(31)
	if pk == clc.KindLong || pk == clc.KindULong {
		shiftMask = 63
	}
	switch op {
	case clc.BinAdd:
		return Value{I: normInt(pk, a.I+b.I)}
	case clc.BinSub:
		return Value{I: normInt(pk, a.I-b.I)}
	case clc.BinMul:
		return Value{I: normInt(pk, a.I*b.I)}
	case clc.BinDiv:
		if b.I == 0 {
			rtErr(pos, "integer division by zero")
		}
		if unsigned {
			return Value{I: normInt(pk, int64(uint64(a.I)/uint64(b.I)))}
		}
		return Value{I: normInt(pk, a.I/b.I)}
	case clc.BinRem:
		if b.I == 0 {
			rtErr(pos, "integer modulo by zero")
		}
		if unsigned {
			return Value{I: normInt(pk, int64(uint64(a.I)%uint64(b.I)))}
		}
		return Value{I: normInt(pk, a.I%b.I)}
	case clc.BinShl:
		return Value{I: normInt(pk, a.I<<uint64(b.I&shiftMask))}
	case clc.BinShr:
		if unsigned {
			return Value{I: normInt(pk, int64(uint64(a.I)>>uint64(b.I&shiftMask)))}
		}
		return Value{I: normInt(pk, a.I>>uint64(b.I&shiftMask))}
	case clc.BinAnd:
		return Value{I: normInt(pk, a.I&b.I)}
	case clc.BinOr:
		return Value{I: normInt(pk, a.I|b.I)}
	case clc.BinXor:
		return Value{I: normInt(pk, a.I^b.I)}
	case clc.BinEq:
		return boolVal(a.I == b.I)
	case clc.BinNe:
		return boolVal(a.I != b.I)
	case clc.BinLt:
		if unsigned {
			return boolVal(uint64(a.I) < uint64(b.I))
		}
		return boolVal(a.I < b.I)
	case clc.BinGt:
		if unsigned {
			return boolVal(uint64(a.I) > uint64(b.I))
		}
		return boolVal(a.I > b.I)
	case clc.BinLe:
		if unsigned {
			return boolVal(uint64(a.I) <= uint64(b.I))
		}
		return boolVal(a.I <= b.I)
	case clc.BinGe:
		if unsigned {
			return boolVal(uint64(a.I) >= uint64(b.I))
		}
		return boolVal(a.I >= b.I)
	}
	rtErr(pos, "invalid integer operator %v", op)
	return Value{}
}

// ---------------------------------------------------------------------------
// Memory access

// memRef describes the compiled addressing of an Index expression.
type memRef struct {
	idxFn    evalFn
	kind     clc.Kind // element kind
	site     int
	pos      clc.Pos
	argIndex int // parameter slot for global/constant buffers; -1 otherwise
	localIdx int // for __local arrays; -1 otherwise
	privIdx  int // for private arrays; -1 otherwise
}

func (cp *compiler) compileMemRef(ix *clc.Index) memRef {
	ref := memRef{
		idxFn:    cp.compileExpr(ix.Idx),
		site:     ix.Site,
		pos:      ix.Pos(),
		argIndex: -1,
		localIdx: -1,
		privIdx:  -1,
	}
	if ix.Idx.ResultType().Kind.IsFloat() {
		cp.fail(ix.Idx.Pos(), "interp: non-integer index")
	}
	base, ok := ix.Base.(*clc.Ident)
	if !ok || base.Sym == nil {
		cp.fail(ix.Pos(), "interp: unsupported subscript base")
		return ref
	}
	sym := base.Sym
	switch {
	case sym.Class == clc.SymParam && sym.Type.Ptr:
		ref.kind = sym.Type.Kind
		ref.argIndex = sym.Slot
	case sym.ArrayLen > 0 && sym.IsLocal:
		ref.kind = sym.Type.Kind
		ref.localIdx = cp.c.localIdx[sym]
	case sym.ArrayLen > 0:
		ref.kind = sym.Type.Kind
		ref.privIdx = cp.c.privIdx[sym]
	default:
		cp.fail(ix.Pos(), "interp: subscript of non-array %q", sym.Name)
	}
	return ref
}

// record updates statistics and the trace for a global-memory access.
func record(e *env, b *Buffer, st *siteState, idx int64, write bool) {
	es := b.ElemSize()
	addr := b.Base + idx*es
	stats := e.stats
	if write {
		stats.Stores++
		stats.StoreBytes += es
	} else {
		stats.Loads++
		stats.LoadBytes += es
	}
	if e.classify {
		st.recordAccess(addr, es, e.wi)
	}
	if e.sink != nil {
		e.sink.Access(addr, es, write)
	}
}

func (cp *compiler) compileLoad(ix *clc.Index) evalFn {
	ref := cp.compileMemRef(ix)
	cp.regSite(ref, false)
	idxFn := ref.idxFn
	switch {
	case ref.argIndex >= 0:
		slot := ref.argIndex
		site := ref.site
		pos := ref.pos
		switch ref.kind {
		case clc.KindFloat:
			return func(e *env) Value {
				b := e.bufs[slot]
				i := idxFn(e).I
				if i < 0 || i >= int64(len(b.F32)) {
					rtErr(pos, "index %d out of range [0,%d)", i, len(b.F32))
				}
				record(e, b, &e.stats.sites[site], i, false)
				return Value{F: float64(b.F32[i])}
			}
		case clc.KindDouble:
			return func(e *env) Value {
				b := e.bufs[slot]
				i := idxFn(e).I
				if i < 0 || i >= int64(len(b.F64)) {
					rtErr(pos, "index %d out of range [0,%d)", i, len(b.F64))
				}
				record(e, b, &e.stats.sites[site], i, false)
				return Value{F: b.F64[i]}
			}
		case clc.KindLong, clc.KindULong:
			return func(e *env) Value {
				b := e.bufs[slot]
				i := idxFn(e).I
				if i < 0 || i >= int64(len(b.I64)) {
					rtErr(pos, "index %d out of range [0,%d)", i, len(b.I64))
				}
				record(e, b, &e.stats.sites[site], i, false)
				return Value{I: b.I64[i]}
			}
		default: // int, uint
			k := ref.kind
			return func(e *env) Value {
				b := e.bufs[slot]
				i := idxFn(e).I
				if i < 0 || i >= int64(len(b.I32)) {
					rtErr(pos, "index %d out of range [0,%d)", i, len(b.I32))
				}
				record(e, b, &e.stats.sites[site], i, false)
				return Value{I: normInt(k, int64(b.I32[i]))}
			}
		}
	case ref.localIdx >= 0:
		li := ref.localIdx
		pos := ref.pos
		return func(e *env) Value {
			arr := e.wg.locals[li]
			i := idxFn(e).I
			if i < 0 || i >= int64(len(arr)) {
				rtErr(pos, "local index %d out of range [0,%d)", i, len(arr))
			}
			return arr[i]
		}
	default:
		pi := ref.privIdx
		pos := ref.pos
		return func(e *env) Value {
			arr := e.priv[pi]
			i := idxFn(e).I
			if i < 0 || i >= int64(len(arr)) {
				rtErr(pos, "private index %d out of range [0,%d)", i, len(arr))
			}
			return arr[i]
		}
	}
}

// storeFn writes a value through a memRef given a precomputed index.
type storeFn func(e *env, i int64, v Value)

// loadAtFn reads through a memRef at a precomputed index.
type loadAtFn func(e *env, i int64) Value

func (cp *compiler) makeStore(ref memRef) storeFn {
	cp.regSite(ref, true)
	switch {
	case ref.argIndex >= 0:
		slot := ref.argIndex
		site := ref.site
		pos := ref.pos
		switch ref.kind {
		case clc.KindFloat:
			return func(e *env, i int64, v Value) {
				b := e.bufs[slot]
				if i < 0 || i >= int64(len(b.F32)) {
					rtErr(pos, "index %d out of range [0,%d)", i, len(b.F32))
				}
				record(e, b, &e.stats.sites[site], i, true)
				b.F32[i] = float32(v.F)
			}
		case clc.KindDouble:
			return func(e *env, i int64, v Value) {
				b := e.bufs[slot]
				if i < 0 || i >= int64(len(b.F64)) {
					rtErr(pos, "index %d out of range [0,%d)", i, len(b.F64))
				}
				record(e, b, &e.stats.sites[site], i, true)
				b.F64[i] = v.F
			}
		case clc.KindLong, clc.KindULong:
			return func(e *env, i int64, v Value) {
				b := e.bufs[slot]
				if i < 0 || i >= int64(len(b.I64)) {
					rtErr(pos, "index %d out of range [0,%d)", i, len(b.I64))
				}
				record(e, b, &e.stats.sites[site], i, true)
				b.I64[i] = v.I
			}
		default:
			return func(e *env, i int64, v Value) {
				b := e.bufs[slot]
				if i < 0 || i >= int64(len(b.I32)) {
					rtErr(pos, "index %d out of range [0,%d)", i, len(b.I32))
				}
				record(e, b, &e.stats.sites[site], i, true)
				b.I32[i] = int32(v.I)
			}
		}
	case ref.localIdx >= 0:
		li := ref.localIdx
		pos := ref.pos
		return func(e *env, i int64, v Value) {
			arr := e.wg.locals[li]
			if i < 0 || i >= int64(len(arr)) {
				rtErr(pos, "local index %d out of range [0,%d)", i, len(arr))
			}
			arr[i] = v
		}
	default:
		pi := ref.privIdx
		pos := ref.pos
		return func(e *env, i int64, v Value) {
			arr := e.priv[pi]
			if i < 0 || i >= int64(len(arr)) {
				rtErr(pos, "private index %d out of range [0,%d)", i, len(arr))
			}
			arr[i] = v
		}
	}
}

func (cp *compiler) makeLoadAt(ref memRef) loadAtFn {
	cp.regSite(ref, false)
	switch {
	case ref.argIndex >= 0:
		slot := ref.argIndex
		site := ref.site
		pos := ref.pos
		kind := ref.kind
		return func(e *env, i int64) Value {
			b := e.bufs[slot]
			if i < 0 || i >= int64(b.Len()) {
				rtErr(pos, "index %d out of range [0,%d)", i, b.Len())
			}
			record(e, b, &e.stats.sites[site], i, false)
			switch kind {
			case clc.KindFloat:
				return Value{F: float64(b.F32[i])}
			case clc.KindDouble:
				return Value{F: b.F64[i]}
			case clc.KindLong, clc.KindULong:
				return Value{I: b.I64[i]}
			default:
				return Value{I: normInt(kind, int64(b.I32[i]))}
			}
		}
	case ref.localIdx >= 0:
		li := ref.localIdx
		pos := ref.pos
		return func(e *env, i int64) Value {
			arr := e.wg.locals[li]
			if i < 0 || i >= int64(len(arr)) {
				rtErr(pos, "local index %d out of range [0,%d)", i, len(arr))
			}
			return arr[i]
		}
	default:
		pi := ref.privIdx
		pos := ref.pos
		return func(e *env, i int64) Value {
			arr := e.priv[pi]
			if i < 0 || i >= int64(len(arr)) {
				rtErr(pos, "private index %d out of range [0,%d)", i, len(arr))
			}
			return arr[i]
		}
	}
}

// ---------------------------------------------------------------------------
// Assignment and increment

func (cp *compiler) compileAssign(as *clc.Assign) evalFn {
	rk := as.LHS.ResultType().Kind
	rhs := cp.convert(cp.compileExpr(as.RHS), as.RHS.ResultType().Kind, rk, as.Pos())

	switch lhs := as.LHS.(type) {
	case *clc.Ident:
		sym := lhs.Sym
		if sym == nil {
			cp.fail(lhs.Pos(), "interp: unresolved assignment target")
			return rhs
		}
		var load evalFn
		var store func(e *env, v Value)
		if sym.IsLocal {
			li := cp.c.localIdx[sym]
			load = func(e *env) Value { return e.wg.locals[li][0] }
			store = func(e *env, v Value) { e.wg.locals[li][0] = v }
		} else {
			slot := sym.Slot
			load = func(e *env) Value { return e.slots[slot] }
			store = func(e *env, v Value) { e.slots[slot] = v }
		}
		if as.Op == clc.AssignPlain {
			return func(e *env) Value {
				v := rhs(e)
				store(e, v)
				return v
			}
		}
		binOp, _ := as.Op.BinOp()
		op := cp.binOpFn(binOp, rk, load, rhs, as.Pos())
		return func(e *env) Value {
			v := op(e)
			store(e, v)
			return v
		}
	case *clc.Index:
		ref := cp.compileMemRef(lhs)
		idxFn := ref.idxFn
		store := cp.makeStore(ref)
		if as.Op == clc.AssignPlain {
			return func(e *env) Value {
				i := idxFn(e).I
				v := rhs(e)
				store(e, i, v)
				return v
			}
		}
		loadAt := cp.makeLoadAt(ref)
		binOp, _ := as.Op.BinOp()
		pos := as.Pos()
		// Compound op over the loaded value and the RHS; the index is
		// evaluated once, matching C semantics.
		return func(e *env) Value {
			i := idxFn(e).I
			old := loadAt(e, i)
			v := applyBin(binOp, rk, pos, e, old, rhs(e))
			store(e, i, v)
			return v
		}
	}
	cp.fail(as.Pos(), "interp: invalid assignment target %T", as.LHS)
	return rhs
}

func (cp *compiler) compileIncDec(id *clc.IncDec) evalFn {
	rk := id.X.ResultType().Kind
	one := Value{I: 1}
	if rk.IsFloat() {
		one = Value{F: 1}
	}
	step := func(v Value) Value {
		if rk.IsFloat() {
			if id.Decr {
				return Value{F: normFloat(rk, v.F-one.F)}
			}
			return Value{F: normFloat(rk, v.F+one.F)}
		}
		if id.Decr {
			return Value{I: normInt(rk, v.I-1)}
		}
		return Value{I: normInt(rk, v.I+1)}
	}
	switch x := id.X.(type) {
	case *clc.Ident:
		sym := x.Sym
		if sym == nil {
			cp.fail(x.Pos(), "interp: unresolved inc/dec target")
			return func(e *env) Value { return Value{} }
		}
		if sym.IsLocal {
			li := cp.c.localIdx[sym]
			post := id.Post
			return func(e *env) Value {
				e.stats.AluInt++
				old := e.wg.locals[li][0]
				nv := step(old)
				e.wg.locals[li][0] = nv
				if post {
					return old
				}
				return nv
			}
		}
		slot := sym.Slot
		post := id.Post
		isFloat := rk.IsFloat()
		return func(e *env) Value {
			if isFloat {
				e.stats.AluFloat++
			} else {
				e.stats.AluInt++
			}
			old := e.slots[slot]
			nv := step(old)
			e.slots[slot] = nv
			if post {
				return old
			}
			return nv
		}
	case *clc.Index:
		ref := cp.compileMemRef(x)
		idxFn := ref.idxFn
		loadAt := cp.makeLoadAt(ref)
		store := cp.makeStore(ref)
		post := id.Post
		return func(e *env) Value {
			e.stats.AluInt++
			i := idxFn(e).I
			old := loadAt(e, i)
			nv := step(old)
			store(e, i, nv)
			if post {
				return old
			}
			return nv
		}
	}
	cp.fail(id.Pos(), "interp: invalid inc/dec target %T", id.X)
	return func(e *env) Value { return Value{} }
}

// ---------------------------------------------------------------------------
// Calls

func (cp *compiler) compileCall(call *clc.Call) evalFn {
	b := call.Builtin
	if b == nil {
		cp.fail(call.Pos(), "interp: unresolved call %q", call.Name)
		return func(e *env) Value { return Value{} }
	}
	switch b.Kind {
	case clc.BuiltinWorkItem:
		return cp.compileWorkItemFn(call)
	case clc.BuiltinMath:
		arg := cp.toFloat(call.Args[0])
		f := mathFn1(b.Name)
		return func(e *env) Value {
			e.stats.AluFloat++
			return Value{F: normFloat(clc.KindFloat, f(arg(e).F))}
		}
	case clc.BuiltinMath2:
		a0 := cp.toFloat(call.Args[0])
		a1 := cp.toFloat(call.Args[1])
		f := mathFn2(b.Name)
		return func(e *env) Value {
			e.stats.AluFloat++
			return Value{F: normFloat(clc.KindFloat, f(a0(e).F, a1(e).F))}
		}
	case clc.BuiltinIntMinMax:
		rk := call.ResultType().Kind
		a0 := cp.convert(cp.compileExpr(call.Args[0]), call.Args[0].ResultType().Kind, rk, call.Pos())
		a1 := cp.convert(cp.compileExpr(call.Args[1]), call.Args[1].ResultType().Kind, rk, call.Pos())
		isMin := b.Name == "min"
		if rk.IsFloat() {
			return func(e *env) Value {
				e.stats.AluFloat++
				x, y := a0(e).F, a1(e).F
				if (x < y) == isMin {
					return Value{F: x}
				}
				return Value{F: y}
			}
		}
		return func(e *env) Value {
			e.stats.AluInt++
			x, y := a0(e).I, a1(e).I
			if (x < y) == isMin {
				return Value{I: x}
			}
			return Value{I: y}
		}
	case clc.BuiltinAbs:
		a0 := cp.compileExpr(call.Args[0])
		return func(e *env) Value {
			e.stats.AluInt++
			v := a0(e).I
			if v < 0 {
				v = -v
			}
			return Value{I: v}
		}
	case clc.BuiltinAtomic, clc.BuiltinAtomic2:
		return cp.compileAtomic(call)
	}
	cp.fail(call.Pos(), "interp: unhandled builtin %q", b.Name)
	return func(e *env) Value { return Value{} }
}

func (cp *compiler) toFloat(x clc.Expr) evalFn {
	return cp.convert(cp.compileExpr(x), x.ResultType().Kind, clc.KindFloat, x.Pos())
}

func mathFn1(name string) func(float64) float64 {
	switch name {
	case "sqrt":
		return math.Sqrt
	case "rsqrt":
		return func(x float64) float64 { return 1 / math.Sqrt(x) }
	case "exp":
		return math.Exp
	case "log":
		return math.Log
	case "sin":
		return math.Sin
	case "cos":
		return math.Cos
	case "tan":
		return math.Tan
	case "fabs":
		return math.Abs
	case "floor":
		return math.Floor
	case "ceil":
		return math.Ceil
	}
	return func(x float64) float64 { return x }
}

func mathFn2(name string) func(a, b float64) float64 {
	switch name {
	case "pow":
		return math.Pow
	case "fmin":
		return math.Min
	case "fmax":
		return math.Max
	case "hypot":
		return math.Hypot
	case "fmod":
		return math.Mod
	}
	return func(a, b float64) float64 { return a }
}

func (cp *compiler) compileWorkItemFn(call *clc.Call) evalFn {
	name := call.Name
	if name == "get_work_dim" {
		return func(e *env) Value { return Value{I: int64(e.nd.Dims)} }
	}
	// Constant dimension (the overwhelmingly common case): resolve the
	// index at compile time so the hot path is a single array load.
	if lit, ok := call.Args[0].(*clc.IntLit); ok {
		d := int(lit.Value) & 3
		switch name {
		case "get_global_id":
			return func(e *env) Value { return Value{I: e.gid[d]} }
		case "get_local_id":
			return func(e *env) Value { return Value{I: e.lid[d]} }
		case "get_group_id":
			return func(e *env) Value { return Value{I: e.grp[d]} }
		case "get_global_size":
			return func(e *env) Value { return Value{I: int64(e.nd.Global[d])} }
		case "get_local_size":
			return func(e *env) Value { return Value{I: int64(e.nd.Local[d])} }
		case "get_num_groups":
			return func(e *env) Value { return Value{I: int64(e.nd.NumGroups()[d])} }
		case "get_global_offset":
			return func(e *env) Value { return Value{I: int64(e.nd.Offset[d])} }
		}
	}
	dimFn := cp.compileExpr(call.Args[0])
	switch name {
	case "get_global_id":
		return func(e *env) Value { return Value{I: e.gid[dimFn(e).I&3]} }
	case "get_local_id":
		return func(e *env) Value { return Value{I: e.lid[dimFn(e).I&3]} }
	case "get_group_id":
		return func(e *env) Value { return Value{I: e.grp[dimFn(e).I&3]} }
	case "get_global_size":
		return func(e *env) Value { return Value{I: int64(e.nd.Global[dimFn(e).I&3])} }
	case "get_local_size":
		return func(e *env) Value { return Value{I: int64(e.nd.Local[dimFn(e).I&3])} }
	case "get_num_groups":
		return func(e *env) Value { return Value{I: int64(e.nd.NumGroups()[dimFn(e).I&3])} }
	case "get_global_offset":
		return func(e *env) Value { return Value{I: int64(e.nd.Offset[dimFn(e).I&3])} }
	}
	cp.fail(call.Pos(), "interp: unhandled work-item fn %q", name)
	return func(e *env) Value { return Value{} }
}

// compileAtomic lowers atomic builtins. The interpreter executes
// work-items sequentially, so atomics reduce to plain read-modify-write;
// their synchronizing role is preserved because there is no concurrent
// interleaving to order.
func (cp *compiler) compileAtomic(call *clc.Call) evalFn {
	target, ok := call.Args[0].(*clc.Ident)
	if !ok || target.Sym == nil {
		cp.fail(call.Args[0].Pos(), "interp: unsupported atomic target")
		return func(e *env) Value { return Value{} }
	}
	sym := target.Sym
	var load func(e *env) int64
	var store func(e *env, v int64)
	switch {
	case sym.IsLocal && sym.ArrayLen > 0:
		li := cp.c.localIdx[sym]
		load = func(e *env) int64 { return e.wg.locals[li][0].I }
		store = func(e *env, v int64) { e.wg.locals[li][0] = Value{I: v} }
	case sym.Class == clc.SymParam && sym.Type.Ptr:
		// Atomics on global memory are interleaving-sensitive: pin this
		// kernel to the sequential execution path.
		cp.c.hasGlobalAtomic = true
		slot := sym.Slot
		pos := call.Pos()
		load = func(e *env) int64 {
			b := e.bufs[slot]
			if b.Len() == 0 {
				rtErr(pos, "atomic on empty buffer")
			}
			if b.I32 != nil {
				return int64(b.I32[0])
			}
			return b.I64[0]
		}
		store = func(e *env, v int64) {
			b := e.bufs[slot]
			if b.I32 != nil {
				b.I32[0] = int32(v)
			} else {
				b.I64[0] = v
			}
		}
	default:
		cp.fail(call.Args[0].Pos(), "interp: atomic target must be a __local array or global int pointer")
		return func(e *env) Value { return Value{} }
	}
	// Pre-resolve the operation at compile time instead of switching on
	// the builtin name for every executed atomic.
	op, ok := atomicOps[call.Name]
	if !ok {
		cp.fail(call.Pos(), "interp: unhandled atomic %q", call.Name)
		return func(e *env) Value { return Value{} }
	}
	var operand evalFn
	if len(call.Args) > 1 {
		operand = cp.compileExpr(call.Args[1])
	}
	return func(e *env) Value {
		e.stats.AluInt++
		old := load(e)
		var nv int64
		switch op {
		case atomInc:
			nv = old + 1
		case atomDec:
			nv = old - 1
		case atomAdd:
			nv = old + operand(e).I
		case atomSub:
			nv = old - operand(e).I
		case atomMin:
			nv = old
			if v := operand(e).I; v < nv {
				nv = v
			}
		case atomMax:
			nv = old
			if v := operand(e).I; v > nv {
				nv = v
			}
		case atomXchg:
			nv = operand(e).I
		}
		store(e, nv)
		return Value{I: old}
	}
}

// atomicOp is a pre-resolved atomic builtin operation.
type atomicOp int8

const (
	atomInc atomicOp = iota
	atomDec
	atomAdd
	atomSub
	atomMin
	atomMax
	atomXchg
)

var atomicOps = map[string]atomicOp{
	"atomic_inc":  atomInc,
	"atomic_dec":  atomDec,
	"atomic_add":  atomAdd,
	"atomic_sub":  atomSub,
	"atomic_min":  atomMin,
	"atomic_max":  atomMax,
	"atomic_xchg": atomXchg,
}
