package interp

import (
	"strings"
	"testing"
)

// runLaned binds, launches, and runs a kernel with the bytecode engine
// at the requested lane width, returning the resolved width and pin
// reason.
func runLaned(t *testing.T, ex *Exec, lanes int, args []Arg, nd NDRange) (int, string) {
	t.Helper()
	ex.Engine = EngineBytecode
	ex.LaneWidth = lanes
	if err := ex.Bind(args...); err != nil {
		t.Fatal(err)
	}
	if err := ex.Launch(nd); err != nil {
		t.Fatal(err)
	}
	if err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	if eng, _ := ex.EngineUsed(); eng != EngineBytecode {
		t.Fatalf("engine used = %v, want bytecode", eng)
	}
	return ex.LanesUsed()
}

const atomicPinSrc = `
__kernel void hist(__global int* h, __global int* d, int n) {
    int i = get_global_id(0);
    if (i < n) atomic_add(h, 1);
}`

const divergePinSrc = `
__kernel void diverge(__global int* out) {
    int i = get_global_id(0);
    if (i % 3 == 0) return;
    barrier(CLK_LOCAL_MEM_FENCE);
    out[i] = i;
}`

const localDepPinSrc = `
__kernel void localdep(__global int* out) {
    __local int tmp[16];
    int l = get_local_id(0);
    tmp[l] = l * 2;
    out[get_global_id(0)] = tmp[15 - l];
}`

// TestLanePinning proves order-sensitive kernels are pinned to scalar
// execution with the documented reason, surfaced both by LanesUsed and
// in the run statistics.
func TestLanePinning(t *testing.T) {
	n := 64
	cases := []struct {
		name, src, kernel, reason string
		args                      func() []Arg
	}{
		{"global-atomics", atomicPinSrc, "hist", "global atomics", func() []Arg {
			h, d := NewIntBuffer(8), NewIntBuffer(n)
			for i := range d.I32 {
				d.I32[i] = int32(i * 5)
			}
			return []Arg{BufArg(h), BufArg(d), IntArg(int64(n))}
		}},
		{"barrier-divergence", divergePinSrc, "diverge", "barrier-divergent control flow", func() []Arg {
			return []Arg{BufArg(NewIntBuffer(n))}
		}},
		{"local-dependence", localDepPinSrc, "localdep", "intra-group local-memory dependence", func() []Arg {
			return []Arg{BufArg(NewIntBuffer(n))}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ex := newExec(t, tc.src, tc.kernel)
			w, reason := runLaned(t, ex, 8, tc.args(), ND1(n, 16))
			if w != 1 || reason != tc.reason {
				t.Fatalf("LanesUsed() = (%d, %q), want (1, %q)", w, reason, tc.reason)
			}
			p := ex.Stats()
			if p.LaneWidth != 1 || p.LanePinReason != tc.reason {
				t.Fatalf("stats lanes = (%d, %q), want (1, %q)", p.LaneWidth, p.LanePinReason, tc.reason)
			}
		})
	}
}

// TestLaneAliasPin proves the launch-time aliasing check: the same vadd
// program runs laned with distinct buffers but is pinned when the
// stored buffer is also bound to a loaded slot (an intra-group global
// read-after-write whose sequential order is observable).
func TestLaneAliasPin(t *testing.T) {
	n := 64

	ex := newExec(t, vaddSrc, "vadd")
	a, b, c := NewFloatBuffer(n), NewFloatBuffer(n), NewFloatBuffer(n)
	w, reason := runLaned(t, ex, 8, []Arg{BufArg(a), BufArg(b), BufArg(c), IntArg(int64(n))}, ND1(n, 16))
	if w != 8 || reason != "" {
		t.Fatalf("distinct buffers: LanesUsed() = (%d, %q), want (8, \"\")", w, reason)
	}

	// c := a + b with c aliased to a: lanes must not run this.
	ex2 := newExec(t, vaddSrc, "vadd")
	w, reason = runLaned(t, ex2, 8, []Arg{BufArg(a), BufArg(b), BufArg(a), IntArg(int64(n))}, ND1(n, 16))
	if w != 1 || reason != "global load/store aliasing" {
		t.Fatalf("aliased binding: LanesUsed() = (%d, %q), want (1, \"global load/store aliasing\")", w, reason)
	}

	// Re-binding distinct buffers lifts the pin on the next launch: the
	// decision is per launch, not per program.
	if err := ex2.Bind(BufArg(a), BufArg(b), BufArg(c), IntArg(int64(n))); err != nil {
		t.Fatal(err)
	}
	if err := ex2.Launch(ND1(n, 16)); err != nil {
		t.Fatal(err)
	}
	if w, reason = ex2.LanesUsed(); w != 8 || reason != "" {
		t.Fatalf("after rebind: LanesUsed() = (%d, %q), want (8, \"\")", w, reason)
	}
}

// TestLaneWidthClamp proves out-of-range widths are clamped rather than
// rejected.
func TestLaneWidthClamp(t *testing.T) {
	n := 64
	ex := newExec(t, vaddSrc, "vadd")
	a, b, c := NewFloatBuffer(n), NewFloatBuffer(n), NewFloatBuffer(n)
	w, reason := runLaned(t, ex, 1000, []Arg{BufArg(a), BufArg(b), BufArg(c), IntArg(int64(n))}, ND1(n, 16))
	if w != maxLaneWidth || reason != "" {
		t.Fatalf("LanesUsed() = (%d, %q), want (%d, \"\")", w, reason, maxLaneWidth)
	}
}

// TestFusedLoopPresent proves the mined peephole actually fires on the
// flagship workload: gesummv's inner loop must lower to a fused
// opFMALoopF32 head.
func TestFusedLoopPresent(t *testing.T) {
	n := 48
	ex := newExec(t, gesummvSrc, "gesummv")
	A, B := NewFloatBuffer(n*n), NewFloatBuffer(n*n)
	x, y := NewFloatBuffer(n), NewFloatBuffer(n)
	args := []Arg{BufArg(A), BufArg(B), BufArg(x), BufArg(y),
		FloatArg(1.5), FloatArg(0.5), IntArg(int64(n))}
	if w, reason := runLaned(t, ex, 8, args, ND1(n, 16)); w != 8 || reason != "" {
		t.Fatalf("LanesUsed() = (%d, %q), want (8, \"\")", w, reason)
	}
	if ex.prog == nil {
		t.Fatal("no bytecode program after launch")
	}
	fused := 0
	for _, code := range ex.prog.segments {
		for i := range code {
			if code[i].op == opFMALoopF32 {
				fused++
			}
		}
	}
	if fused == 0 {
		var ops []string
		for _, code := range ex.prog.segments {
			for i := range code {
				ops = append(ops, opName(code[i].op))
			}
		}
		t.Fatalf("gesummv lowered without a fused FMA loop:\n%s", strings.Join(ops, " "))
	}
}
