package interp

// Lane-vectorized bytecode execution: work-items run in lockstep batches
// of Exec.LaneWidth lanes through structure-of-arrays register files, so
// one opcode dispatch is amortized over the whole batch. Divergent
// control flow is handled by per-lane program counters with min-pc
// reconvergence (the classic SIMT scheme); a uniform fast path keeps a
// single shared pc while all live lanes agree.
//
// The engine is bit-identical to the scalar walk in every observable.
// Two mechanisms make that hold:
//
//   - Per-lane effect logs. Statistics and trace events go into per-lane
//     RunStats/traceLogs during the batch and merge into the master
//     stream in lane order at commit. Because min-pc scheduling gives
//     every lane exactly the instruction stream its sequential execution
//     would have had, the per-lane streams are identical to the scalar
//     ones, and lane-order merging (siteState.mergeFrom splices the
//     boundary deltas) reconstructs the exact sequential stream.
//
//   - Bail-and-replay for traps. The vector engine never raises a
//     runtime error itself: any trap condition (bounds, division by
//     zero, atomics, unsupported opcodes) makes it bail out, the undo
//     log rolls every buffer/local/private store of the batch back in
//     reverse, and the batch replays through the scalar execBC — which
//     reproduces the exact sequential partial effects, counters, and
//     error of the trapping work-item.
//
// Register files are gathered AoS->SoA from the per-item scratch rows at
// every batch start and scattered back at commit, so uninitialized-
// variable reads observe exactly the stale per-row values the scalar
// engine would have (and a bailed batch leaves the rows untouched for
// the replay).

import (
	"fmt"
	"math/bits"

	"dopia/internal/faults"
)

// Undo-log entry kinds: global-buffer stores by element type, and
// Value-typed stores (__local and private arrays, __local scalars).
const (
	uGF32 uint8 = iota
	uGF64
	uGI32
	uGI64
	uVal
)

// laneUndo records one store so a bailed batch can be rolled back.
type laneUndo struct {
	kind uint8
	buf  *Buffer
	arr  []Value
	idx  int64
	oldV Value
}

// laneBatch is the reusable state of one lockstep batch: SoA register
// files, per-lane coordinates, per-lane statistics and trace logs, and
// the store-undo log. One laneBatch lives on each runState, so shard
// workers lane-vectorize independently.
type laneBatch struct {
	w        int // lanes in this batch (<= Exec.laneWidth at group tail)
	base     int // linear work-item index of lane 0 within the group
	active   uint64
	retired  uint64
	classify bool
	trace    bool

	// SoA register files: register r of lane l lives at [r*w+l].
	irv []int64
	frv []float64

	gid [3][]int64
	lid [3][]int64
	grp [3]int64
	wiv []int64
	pcs []int32

	stats []*RunStats
	logs  []*traceLog
	undo  []laneUndo

	// Scalar register rows for running the fused FMA loop per lane.
	tmpIR []int64
	tmpFR []float64
}

// prepare sizes the batch state for the executor's current launch.
func (lb *laneBatch) prepare(ex *Exec, hasSink bool) {
	w := ex.laneWidth
	prog := ex.prog
	if cap(lb.irv) < prog.numI*w {
		lb.irv = make([]int64, prog.numI*w)
	} else {
		lb.irv = lb.irv[:prog.numI*w]
	}
	if cap(lb.frv) < prog.numF*w {
		lb.frv = make([]float64, prog.numF*w)
	} else {
		lb.frv = lb.frv[:prog.numF*w]
	}
	if len(lb.wiv) < w {
		lb.wiv = make([]int64, w)
		lb.pcs = make([]int32, w)
		for d := 0; d < 3; d++ {
			lb.gid[d] = make([]int64, w)
			lb.lid[d] = make([]int64, w)
		}
	}
	for len(lb.stats) < w {
		lb.stats = append(lb.stats, &RunStats{})
	}
	if hasSink {
		for len(lb.logs) < w {
			lb.logs = append(lb.logs, &traceLog{})
		}
	}
	lb.trace = hasSink
	if cap(lb.tmpIR) < prog.numI {
		lb.tmpIR = make([]int64, prog.numI)
	} else {
		lb.tmpIR = lb.tmpIR[:prog.numI]
	}
	if cap(lb.tmpFR) < prog.numF {
		lb.tmpFR = make([]float64, prog.numF)
	} else {
		lb.tmpFR = lb.tmpFR[:prog.numF]
	}
}

// begin resets the batch for a new lockstep run.
func (lb *laneBatch) begin(rs *runState, base, w int, active uint64) {
	lb.base, lb.w = base, w
	lb.active, lb.retired = active, 0
	lb.classify = rs.env.classify
	lb.undo = lb.undo[:0]
	for l := 0; l < w; l++ {
		if active>>uint(l)&1 == 0 {
			continue
		}
		lb.stats[l].resetFor(rs.ex.ck)
		if lb.trace {
			lb.logs[l].events = lb.logs[l].events[:0]
		}
	}
}

// record notes one global access of lane l into the lane's private
// statistics and trace log (merged in lane order on commit).
func (lb *laneBatch) record(l int, site int32, addr, es int64, write bool) {
	if lb.classify {
		lb.stats[l].sites[site].recordAccess(addr, es, lb.wiv[l])
	}
	if lb.trace {
		lb.logs[l].Access(addr, es, write)
	}
}

// rollback undoes every store of a bailed batch in reverse order.
func (lb *laneBatch) rollback() {
	for i := len(lb.undo) - 1; i >= 0; i-- {
		u := &lb.undo[i]
		switch u.kind {
		case uGF32:
			u.buf.F32[u.idx] = float32(u.oldV.F)
		case uGF64:
			u.buf.F64[u.idx] = u.oldV.F
		case uGI32:
			u.buf.I32[u.idx] = int32(u.oldV.I)
		case uGI64:
			u.buf.I64[u.idx] = u.oldV.I
		case uVal:
			u.arr[u.idx] = u.oldV
		}
	}
	lb.undo = lb.undo[:0]
}

// wiQueryLane evaluates a work-item builtin for dimension d on lane l.
func (lb *laneBatch) wiQueryLane(nd *NDRange, code uint8, d, l int) int64 {
	switch code {
	case wiGlobalID:
		return lb.gid[d][l]
	case wiLocalID:
		return lb.lid[d][l]
	case wiGroupID:
		return lb.grp[d]
	case wiGlobalSize:
		return int64(nd.Global[d])
	case wiLocalSize:
		return int64(nd.Local[d])
	case wiNumGroups:
		return int64(nd.NumGroups()[d])
	case wiGlobalOffset:
		return int64(nd.Offset[d])
	}
	return int64(nd.Dims) // wiWorkDim
}

// runGroupBCLanes executes one work-group on the lane-vectorized
// bytecode engine. Batches of laneWidth work-items run in lockstep per
// segment; a batch that hits any trap condition is rolled back and
// replayed through the scalar engine, whose panics this boundary
// contains exactly like runGroupBC.
func (rs *runState) runGroupBCLanes(linear int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if re, ok := r.(*runtimeError); ok {
				err = faults.Wrap(faults.StageExec,
					fmt.Errorf("interp: kernel %s: %w", rs.ex.kernel.Name, re))
				return
			}
			err = &faults.PanicError{Stage: faults.StageExec, Value: r}
		}
	}()
	ex := rs.ex
	if ex.Check != nil {
		if cerr := ex.Check(); cerr != nil {
			return faults.Wrap(faults.StageExec, cerr)
		}
	}
	total := ex.nd.TotalGroups()
	if linear < 0 || linear >= total {
		return fmt.Errorf("interp: work-group %d out of range [0,%d)", linear, total)
	}
	prog := ex.prog
	coords := ex.nd.GroupCoords(linear)
	wgSize := ex.nd.GroupSize()

	for _, arr := range rs.wg.locals {
		for j := range arr {
			arr[j] = Value{}
		}
	}
	for i := 0; i < wgSize; i++ {
		rs.doneScratch[i] = false
	}

	e := &rs.env
	e.classify = groupClassified(rs.sampleThresh, rs.sampleSeed, linear)
	nd := &ex.nd
	baseWI := int64(linear) * int64(wgSize)
	W := ex.laneWidth
	lb := &rs.lanes

	rs.stats.GroupsRun++
	for segIdx, seg := range prog.segments {
		for bs := 0; bs < wgSize; bs += W {
			w := W
			if wgSize-bs < w {
				w = wgSize - bs
			}
			var active uint64
			for l := 0; l < w; l++ {
				if !rs.doneScratch[bs+l] {
					active |= 1 << uint(l)
				}
			}
			if active == 0 {
				continue
			}
			lb.begin(rs, bs, w, active)
			for l := 0; l < w; l++ {
				lin := bs + l
				l0v := lin % nd.Local[0]
				rest := lin / nd.Local[0]
				l1v := rest % nd.Local[1]
				l2v := rest / nd.Local[1]
				lb.lid[0][l], lb.lid[1][l], lb.lid[2][l] = int64(l0v), int64(l1v), int64(l2v)
				lb.gid[0][l] = int64(nd.Offset[0]) + int64(coords[0])*int64(nd.Local[0]) + int64(l0v)
				lb.gid[1][l] = int64(nd.Offset[1]) + int64(coords[1])*int64(nd.Local[1]) + int64(l1v)
				lb.gid[2][l] = int64(nd.Offset[2]) + int64(coords[2])*int64(nd.Local[2]) + int64(l2v)
				lb.wiv[l] = baseWI + int64(lin)
			}
			lb.grp = [3]int64{int64(coords[0]), int64(coords[1]), int64(coords[2])}

			// Gather AoS -> SoA (always: stale scratch-row values must be
			// observable exactly as in the scalar walk).
			for l := 0; l < w; l++ {
				if active>>uint(l)&1 == 0 {
					continue
				}
				ir := rs.irScratch[bs+l]
				fr := rs.frScratch[bs+l]
				for r := 0; r < prog.numI; r++ {
					lb.irv[r*w+l] = ir[r]
				}
				for r := 0; r < prog.numF; r++ {
					lb.frv[r*w+l] = fr[r]
				}
			}
			if segIdx == 0 {
				for _, pc := range prog.paramI {
					v := ex.paramVals[pc.slot].I
					row := lb.irv[int(pc.reg)*w : int(pc.reg)*w+w]
					for l := range row {
						row[l] = v
					}
				}
				for _, pc := range prog.paramF {
					v := ex.paramVals[pc.slot].F
					row := lb.frv[int(pc.reg)*w : int(pc.reg)*w+w]
					for l := range row {
						row[l] = v
					}
				}
				if rs.privScratch != nil {
					for l := 0; l < w; l++ {
						for _, arr := range rs.privScratch[bs+l] {
							for j := range arr {
								arr[j] = Value{}
							}
						}
					}
				}
			}

			if !rs.execBCVec(seg, lb, prog, w) {
				lb.rollback()
				rs.replayBatch(prog, seg, segIdx, bs, w, coords, baseWI)
				continue
			}

			// Commit: scatter SoA -> AoS, retire lanes, merge per-lane
			// statistics and trace events in lane order.
			for l := 0; l < w; l++ {
				if active>>uint(l)&1 == 0 {
					continue
				}
				ir := rs.irScratch[bs+l]
				fr := rs.frScratch[bs+l]
				for r := 0; r < prog.numI; r++ {
					ir[r] = lb.irv[r*w+l]
				}
				for r := 0; r < prog.numF; r++ {
					fr[r] = lb.frv[r*w+l]
				}
				if lb.retired>>uint(l)&1 == 1 {
					rs.doneScratch[bs+l] = true
				}
			}
			if segIdx == 0 {
				rs.stats.ItemsRun += int64(bits.OnesCount64(active))
			}
			for l := 0; l < w; l++ {
				if active>>uint(l)&1 == 0 {
					continue
				}
				rs.stats.mergeFrom(lb.stats[l])
				if lb.trace && e.sink != nil {
					for _, ev := range lb.logs[l].events {
						e.sink.Access(ev.addr, ev.size, ev.write)
					}
				}
			}
		}
	}
	return nil
}

// replayBatch re-executes a bailed batch through the scalar engine in
// sequential work-item order. The rollback restored the pre-batch state
// and the register scratch rows were never scattered to, so the replay
// reproduces the exact sequential effects — including the trap, whose
// panic unwinds to the runGroupBCLanes recover.
func (rs *runState) replayBatch(prog *bcProgram, seg []instr, segIdx, bs, w int, coords [3]int, baseWI int64) {
	ex := rs.ex
	nd := &ex.nd
	e := &rs.env
	for l := 0; l < w; l++ {
		lin := bs + l
		if rs.doneScratch[lin] {
			continue
		}
		ir := rs.irScratch[lin]
		fr := rs.frScratch[lin]
		if segIdx == 0 {
			for _, pc := range prog.paramI {
				ir[pc.reg] = ex.paramVals[pc.slot].I
			}
			for _, pc := range prog.paramF {
				fr[pc.reg] = ex.paramVals[pc.slot].F
			}
			if rs.privScratch != nil {
				for _, arr := range rs.privScratch[lin] {
					for j := range arr {
						arr[j] = Value{}
					}
				}
			}
			rs.stats.ItemsRun++
		}
		if rs.privScratch != nil {
			e.priv = rs.privScratch[lin]
		}
		l0v := lin % nd.Local[0]
		rest := lin / nd.Local[0]
		l1v := rest % nd.Local[1]
		l2v := rest / nd.Local[1]
		e.lid = [3]int64{int64(l0v), int64(l1v), int64(l2v)}
		e.grp = [3]int64{int64(coords[0]), int64(coords[1]), int64(coords[2])}
		e.gid = [3]int64{
			int64(nd.Offset[0]) + e.grp[0]*int64(nd.Local[0]) + e.lid[0],
			int64(nd.Offset[1]) + e.grp[1]*int64(nd.Local[1]) + e.lid[1],
			int64(nd.Offset[2]) + e.grp[2]*int64(nd.Local[2]) + e.lid[2],
		}
		e.wi = baseWI + int64(lin)
		if rs.execBC(seg, e, ir, fr, prog) {
			rs.doneScratch[lin] = true
		}
	}
}

// execBCVec runs one bytecode segment for a lockstep batch. It returns
// false when the batch must bail to the scalar replay path: any trap
// condition (bounds, division by zero), atomics, or an opcode the vector
// engine does not implement. On a bail nothing is flushed — the caller
// rolls back the undo log and discards the per-lane logs, so the batch
// leaves no trace. On success the batched aggregate counters flush into
// the master statistics and lb.retired reports the lanes that executed a
// return.
func (rs *runState) execBCVec(code []instr, lb *laneBatch, prog *bcProgram, w int) bool {
	iv, fv := lb.irv, lb.frv
	bufs := rs.env.bufs
	nd := &rs.ex.nd
	live := lb.active
	var retired uint64
	uniform := true
	pc := 0
	pcs := lb.pcs[:w]
	n := len(code)
	var aluI, aluF, loads, loadB, stores, storeB int64

	for live != 0 {
		var in *instr
		var mask uint64
		if uniform {
			if pc >= n {
				break
			}
			in = &code[pc]
			pc++
			mask = live
		} else {
			minPC := int32(1) << 30
			for l := 0; l < w; l++ {
				if live>>uint(l)&1 == 1 && pcs[l] < minPC {
					minPC = pcs[l]
				}
			}
			mask = 0
			for l := 0; l < w; l++ {
				if live>>uint(l)&1 == 1 && pcs[l] == minPC {
					mask |= 1 << uint(l)
				}
			}
			in = &code[minPC]
			pc = int(minPC) + 1
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 1 {
					pcs[l] = int32(pc)
				}
			}
		}
		cn := int64(bits.OnesCount64(mask))
		var branched bool
		var brMask uint64
		var brTarget int32
		var retMask uint64

		switch in.op {
		case opNop:

		// --- control flow ---
		case opJmp:
			branched, brMask, brTarget = true, mask, int32(in.imm)
		case opJmpZI:
			a := int(in.a) * w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 1 && iv[a+l] == 0 {
					brMask |= 1 << uint(l)
				}
			}
			branched, brTarget = true, int32(in.imm)
		case opJmpNZI:
			a := int(in.a) * w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 1 && iv[a+l] != 0 {
					brMask |= 1 << uint(l)
				}
			}
			branched, brTarget = true, int32(in.imm)
		case opJmpZF:
			a := int(in.a) * w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 1 && fv[a+l] == 0 {
					brMask |= 1 << uint(l)
				}
			}
			branched, brTarget = true, int32(in.imm)
		case opJmpNZF:
			a := int(in.a) * w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 1 && fv[a+l] != 0 {
					brMask |= 1 << uint(l)
				}
			}
			branched, brTarget = true, int32(in.imm)
		case opJCmpI:
			aluI += int64(in.c) * cn
			a, b := int(in.a)*w, int(in.b)*w
			unsigned := in.norm&cmpU != 0
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 0 {
					continue
				}
				var take bool
				if unsigned {
					take = cmpURegs(in.norm, iv[a+l], iv[b+l])
				} else {
					take = cmpSRegs(in.norm, iv[a+l], iv[b+l])
				}
				if !take {
					brMask |= 1 << uint(l)
				}
			}
			branched, brTarget = true, int32(in.imm)
		case opJCmpF:
			aluF += int64(in.c) * cn
			a, b := int(in.a)*w, int(in.b)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 1 && !cmpFRegs(in.norm, fv[a+l], fv[b+l]) {
					brMask |= 1 << uint(l)
				}
			}
			branched, brTarget = true, int32(in.imm)
		case opRet:
			retMask = mask

		case opStatInt:
			aluI += in.imm * cn
		case opStatFloat:
			aluF += in.imm * cn
		case opChkDiv0:
			a := int(in.a) * w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 1 && iv[a+l] == 0 {
					return false
				}
			}

		// --- constants, moves, conversions ---
		case opConstI:
			d := int(in.dst) * w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 1 {
					iv[d+l] = in.imm
				}
			}
		case opConstF:
			d := int(in.dst) * w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 1 {
					fv[d+l] = in.fimm
				}
			}
		case opMovI:
			d, a := int(in.dst)*w, int(in.a)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 1 {
					iv[d+l] = normReg(in.norm, iv[a+l])
				}
			}
		case opMovF:
			d, a := int(in.dst)*w, int(in.a)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 1 {
					fv[d+l] = normFReg(in.norm, fv[a+l])
				}
			}
		case opI2F:
			d, a := int(in.dst)*w, int(in.a)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 0 {
					continue
				}
				var v float64
				if in.norm&convUnsigned != 0 {
					v = float64(uint64(iv[a+l]))
				} else {
					v = float64(iv[a+l])
				}
				if in.norm&convRound32 != 0 {
					v = float64(float32(v))
				}
				fv[d+l] = v
			}
		case opF2I:
			d, a := int(in.dst)*w, int(in.a)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 1 {
					iv[d+l] = normReg(in.norm, int64(fv[a+l]))
				}
			}

		// --- integer ALU ---
		case opAddI:
			aluI += int64(in.c) * cn
			d, a, b := int(in.dst)*w, int(in.a)*w, int(in.b)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 1 {
					iv[d+l] = normReg(in.norm, iv[a+l]+iv[b+l])
				}
			}
		case opSubI:
			aluI += int64(in.c) * cn
			d, a, b := int(in.dst)*w, int(in.a)*w, int(in.b)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 1 {
					iv[d+l] = normReg(in.norm, iv[a+l]-iv[b+l])
				}
			}
		case opMulI:
			aluI += int64(in.c) * cn
			d, a, b := int(in.dst)*w, int(in.a)*w, int(in.b)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 1 {
					iv[d+l] = normReg(in.norm, iv[a+l]*iv[b+l])
				}
			}
		case opMulAddI:
			aluI += 2 * cn
			d, a, b, c := int(in.dst)*w, int(in.a)*w, int(in.b)*w, int(in.c)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 1 {
					v := int64(int32(iv[a+l] * iv[b+l]))
					iv[d+l] = int64(int32(v + iv[c+l]))
				}
			}
		case opDivI:
			aluI += int64(in.c) * cn
			d, a, b := int(in.dst)*w, int(in.a)*w, int(in.b)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 0 {
					continue
				}
				rv := iv[b+l]
				if rv == 0 {
					return false
				}
				iv[d+l] = normReg(in.norm, iv[a+l]/rv)
			}
		case opDivU:
			aluI += int64(in.c) * cn
			d, a, b := int(in.dst)*w, int(in.a)*w, int(in.b)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 0 {
					continue
				}
				rv := iv[b+l]
				if rv == 0 {
					return false
				}
				iv[d+l] = normReg(in.norm, int64(uint64(iv[a+l])/uint64(rv)))
			}
		case opRemI:
			aluI += int64(in.c) * cn
			d, a, b := int(in.dst)*w, int(in.a)*w, int(in.b)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 0 {
					continue
				}
				rv := iv[b+l]
				if rv == 0 {
					return false
				}
				iv[d+l] = normReg(in.norm, iv[a+l]%rv)
			}
		case opRemU:
			aluI += int64(in.c) * cn
			d, a, b := int(in.dst)*w, int(in.a)*w, int(in.b)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 0 {
					continue
				}
				rv := iv[b+l]
				if rv == 0 {
					return false
				}
				iv[d+l] = normReg(in.norm, int64(uint64(iv[a+l])%uint64(rv)))
			}
		case opShlI:
			aluI += int64(in.c) * cn
			d, a, b := int(in.dst)*w, int(in.a)*w, int(in.b)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 1 {
					iv[d+l] = normReg(in.norm, iv[a+l]<<uint64(iv[b+l]&in.imm))
				}
			}
		case opShrI:
			aluI += int64(in.c) * cn
			d, a, b := int(in.dst)*w, int(in.a)*w, int(in.b)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 1 {
					iv[d+l] = normReg(in.norm, iv[a+l]>>uint64(iv[b+l]&in.imm))
				}
			}
		case opShrU:
			aluI += int64(in.c) * cn
			d, a, b := int(in.dst)*w, int(in.a)*w, int(in.b)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 1 {
					iv[d+l] = normReg(in.norm, int64(uint64(iv[a+l])>>uint64(iv[b+l]&in.imm)))
				}
			}
		case opAndI:
			aluI += int64(in.c) * cn
			d, a, b := int(in.dst)*w, int(in.a)*w, int(in.b)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 1 {
					iv[d+l] = normReg(in.norm, iv[a+l]&iv[b+l])
				}
			}
		case opOrI:
			aluI += int64(in.c) * cn
			d, a, b := int(in.dst)*w, int(in.a)*w, int(in.b)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 1 {
					iv[d+l] = normReg(in.norm, iv[a+l]|iv[b+l])
				}
			}
		case opXorI:
			aluI += int64(in.c) * cn
			d, a, b := int(in.dst)*w, int(in.a)*w, int(in.b)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 1 {
					iv[d+l] = normReg(in.norm, iv[a+l]^iv[b+l])
				}
			}
		case opNegI:
			aluI += int64(in.c) * cn
			d, a := int(in.dst)*w, int(in.a)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 1 {
					iv[d+l] = normReg(in.norm, -iv[a+l])
				}
			}
		case opBitNotI:
			aluI += int64(in.c) * cn
			d, a := int(in.dst)*w, int(in.a)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 1 {
					iv[d+l] = normReg(in.norm, ^iv[a+l])
				}
			}
		case opIncDecI:
			aluI += cn
			d := int(in.dst) * w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 1 {
					iv[d+l] = normReg(in.norm, iv[d+l]+in.imm)
				}
			}
		case opStepI:
			d, a := int(in.dst)*w, int(in.a)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 1 {
					iv[d+l] = normReg(in.norm, iv[a+l]+in.imm)
				}
			}
		case opCmpI:
			aluI += int64(in.c) * cn
			d, a, b := int(in.dst)*w, int(in.a)*w, int(in.b)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 1 {
					iv[d+l] = b2i(cmpIRegs(in.norm, iv[a+l], iv[b+l]))
				}
			}
		case opNotI:
			aluI += int64(in.c) * cn
			d, a := int(in.dst)*w, int(in.a)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 1 {
					iv[d+l] = b2i(iv[a+l] == 0)
				}
			}
		case opNotF:
			aluI += int64(in.c) * cn
			d, a := int(in.dst)*w, int(in.a)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 1 {
					iv[d+l] = b2i(fv[a+l] == 0)
				}
			}
		case opMinMaxI:
			aluI += int64(in.c) * cn
			d, a, b := int(in.dst)*w, int(in.a)*w, int(in.b)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 0 {
					continue
				}
				x, y := iv[a+l], iv[b+l]
				if (x < y) == (in.norm != 0) {
					iv[d+l] = x
				} else {
					iv[d+l] = y
				}
			}
		case opAbsI:
			aluI += int64(in.c) * cn
			d, a := int(in.dst)*w, int(in.a)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 0 {
					continue
				}
				v := iv[a+l]
				if v < 0 {
					v = -v
				}
				iv[d+l] = v
			}

		// --- float ALU ---
		case opAddF:
			aluF += int64(in.c) * cn
			d, a, b := int(in.dst)*w, int(in.a)*w, int(in.b)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 1 {
					fv[d+l] = normFReg(in.norm, fv[a+l]+fv[b+l])
				}
			}
		case opSubF:
			aluF += int64(in.c) * cn
			d, a, b := int(in.dst)*w, int(in.a)*w, int(in.b)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 1 {
					fv[d+l] = normFReg(in.norm, fv[a+l]-fv[b+l])
				}
			}
		case opMulF:
			aluF += int64(in.c) * cn
			d, a, b := int(in.dst)*w, int(in.a)*w, int(in.b)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 1 {
					fv[d+l] = normFReg(in.norm, fv[a+l]*fv[b+l])
				}
			}
		case opDivF:
			aluF += int64(in.c) * cn
			d, a, b := int(in.dst)*w, int(in.a)*w, int(in.b)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 1 {
					fv[d+l] = normFReg(in.norm, fv[a+l]/fv[b+l])
				}
			}
		case opFMAAF32:
			aluF += int64(in.norm) * cn
			d, a, b := int(in.dst)*w, int(in.a)*w, int(in.b)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 1 {
					fv[d+l] = float64(float32(fv[d+l] + float64(float32(fv[a+l]*fv[b+l]))))
				}
			}
		case opNegF:
			aluF += int64(in.c) * cn
			d, a := int(in.dst)*w, int(in.a)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 1 {
					fv[d+l] = normFReg(in.norm, -fv[a+l])
				}
			}
		case opIncDecF:
			aluF += cn
			d := int(in.dst) * w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 1 {
					fv[d+l] = normFReg(in.norm, fv[d+l]+in.fimm)
				}
			}
		case opStepF:
			d, a := int(in.dst)*w, int(in.a)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 1 {
					fv[d+l] = normFReg(in.norm, fv[a+l]+in.fimm)
				}
			}
		case opCmpF:
			aluF += int64(in.c) * cn
			d, a, b := int(in.dst)*w, int(in.a)*w, int(in.b)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 1 {
					iv[d+l] = b2i(cmpFRegs(in.norm, fv[a+l], fv[b+l]))
				}
			}
		case opMinMaxF:
			aluF += int64(in.c) * cn
			d, a, b := int(in.dst)*w, int(in.a)*w, int(in.b)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 0 {
					continue
				}
				x, y := fv[a+l], fv[b+l]
				if (x < y) == (in.norm != 0) {
					fv[d+l] = x
				} else {
					fv[d+l] = y
				}
			}
		case opMath1:
			aluF += int64(in.c) * cn
			d, a := int(in.dst)*w, int(in.a)*w
			fn := prog.math1[in.imm]
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 1 {
					fv[d+l] = float64(float32(fn(fv[a+l])))
				}
			}
		case opMath2:
			aluF += int64(in.c) * cn
			d, a, b := int(in.dst)*w, int(in.a)*w, int(in.b)*w
			fn := prog.math2[in.imm]
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 1 {
					fv[d+l] = float64(float32(fn(fv[a+l], fv[b+l])))
				}
			}

		// --- fused FMA superinstructions ---
		case opFMALd2F32, opFMALd2MAF32:
			ma := in.op == opFMALd2MAF32
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 0 {
					continue
				}
				if !rs.fmaLd2Lane(in, lb, l, w, ma, bufs) {
					return false
				}
			}
			aluF += 2 * cn
			if ma {
				aluI += 2 * cn
			}
			loads += 2 * cn
			loadB += 8 * cn
		case opIncJCmpI:
			aluI += 2 * cn
			d, a, b := int(in.dst)*w, int(in.a)*w, int(in.b)*w
			nrm := in.norm >> 4
			cc := in.norm & 0xf
			unsigned := cc&cmpU != 0
			step := int64(in.c)
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 0 {
					continue
				}
				iv[d+l] = normReg(nrm, iv[d+l]+step)
				var take bool
				if unsigned {
					take = cmpURegs(cc, iv[a+l], iv[b+l])
				} else {
					take = cmpSRegs(cc, iv[a+l], iv[b+l])
				}
				if take {
					brMask |= 1 << uint(l)
				}
			}
			branched, brTarget = true, int32(in.imm)
		case opFMALoopF32:
			// Run the fused loop per lane against the lane's scalar
			// register rows and private stats/trace; every lane exits at
			// the same pc (the instruction after the back edge).
			exit := pc
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 0 {
					continue
				}
				for r := 0; r < prog.numI; r++ {
					lb.tmpIR[r] = iv[r*w+l]
				}
				for r := 0; r < prog.numF; r++ {
					lb.tmpFR[r] = fv[r*w+l]
				}
				var snk TraceSink
				if lb.trace {
					snk = lb.logs[l]
				}
				exitPC, c, trap := rs.runFMALoop(code, pc-1, lb.tmpIR, lb.tmpFR,
					bufs, lb.stats[l].sites, lb.classify, snk, lb.wiv[l])
				if trap != nil {
					return false
				}
				aluI += c.aluI
				aluF += c.aluF
				loads += c.loads
				loadB += c.loadB
				for r := 0; r < prog.numI; r++ {
					iv[r*w+l] = lb.tmpIR[r]
				}
				for r := 0; r < prog.numF; r++ {
					fv[r*w+l] = lb.tmpFR[r]
				}
				exit = exitPC
			}
			if uniform {
				pc = exit
			} else {
				for l := 0; l < w; l++ {
					if mask>>uint(l)&1 == 1 {
						pcs[l] = int32(exit)
					}
				}
			}

		// --- work-item queries ---
		case opWISta:
			d := int(in.dst) * w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 1 {
					iv[d+l] = lb.wiQueryLane(nd, in.norm, int(in.imm), l)
				}
			}
		case opWIDyn:
			d, a := int(in.dst)*w, int(in.a)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 1 {
					iv[d+l] = lb.wiQueryLane(nd, in.norm, int(iv[a+l]&3), l)
				}
			}

		// --- global memory ---
		case opLdGF32:
			b := bufs[in.slot]
			d, a := int(in.dst)*w, int(in.a)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 0 {
					continue
				}
				i := iv[a+l]
				if uint64(i) >= uint64(len(b.F32)) {
					return false
				}
				lb.record(l, in.site, b.Base+i*4, 4, false)
				fv[d+l] = float64(b.F32[i])
			}
			loads += cn
			loadB += 4 * cn
		case opLdGF64:
			b := bufs[in.slot]
			d, a := int(in.dst)*w, int(in.a)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 0 {
					continue
				}
				i := iv[a+l]
				if uint64(i) >= uint64(len(b.F64)) {
					return false
				}
				lb.record(l, in.site, b.Base+i*8, 8, false)
				fv[d+l] = b.F64[i]
			}
			loads += cn
			loadB += 8 * cn
		case opLdGI64:
			b := bufs[in.slot]
			d, a := int(in.dst)*w, int(in.a)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 0 {
					continue
				}
				i := iv[a+l]
				if uint64(i) >= uint64(len(b.I64)) {
					return false
				}
				lb.record(l, in.site, b.Base+i*8, 8, false)
				iv[d+l] = b.I64[i]
			}
			loads += cn
			loadB += 8 * cn
		case opLdGI32:
			b := bufs[in.slot]
			d, a := int(in.dst)*w, int(in.a)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 0 {
					continue
				}
				i := iv[a+l]
				if uint64(i) >= uint64(len(b.I32)) {
					return false
				}
				lb.record(l, in.site, b.Base+i*4, 4, false)
				iv[d+l] = normReg(in.norm, int64(b.I32[i]))
			}
			loads += cn
			loadB += 4 * cn
		case opStGF32:
			b := bufs[in.slot]
			a, src := int(in.a)*w, int(in.b)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 0 {
					continue
				}
				i := iv[a+l]
				if uint64(i) >= uint64(len(b.F32)) {
					return false
				}
				lb.record(l, in.site, b.Base+i*4, 4, true)
				lb.undo = append(lb.undo, laneUndo{kind: uGF32, buf: b, idx: i, oldV: Value{F: float64(b.F32[i])}})
				b.F32[i] = float32(fv[src+l])
			}
			stores += cn
			storeB += 4 * cn
		case opStGF64:
			b := bufs[in.slot]
			a, src := int(in.a)*w, int(in.b)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 0 {
					continue
				}
				i := iv[a+l]
				if uint64(i) >= uint64(len(b.F64)) {
					return false
				}
				lb.record(l, in.site, b.Base+i*8, 8, true)
				lb.undo = append(lb.undo, laneUndo{kind: uGF64, buf: b, idx: i, oldV: Value{F: b.F64[i]}})
				b.F64[i] = fv[src+l]
			}
			stores += cn
			storeB += 8 * cn
		case opStGI64:
			b := bufs[in.slot]
			a, src := int(in.a)*w, int(in.b)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 0 {
					continue
				}
				i := iv[a+l]
				if uint64(i) >= uint64(len(b.I64)) {
					return false
				}
				lb.record(l, in.site, b.Base+i*8, 8, true)
				lb.undo = append(lb.undo, laneUndo{kind: uGI64, buf: b, idx: i, oldV: Value{I: b.I64[i]}})
				b.I64[i] = iv[src+l]
			}
			stores += cn
			storeB += 8 * cn
		case opStGI32:
			b := bufs[in.slot]
			a, src := int(in.a)*w, int(in.b)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 0 {
					continue
				}
				i := iv[a+l]
				if uint64(i) >= uint64(len(b.I32)) {
					return false
				}
				lb.record(l, in.site, b.Base+i*4, 4, true)
				lb.undo = append(lb.undo, laneUndo{kind: uGI32, buf: b, idx: i, oldV: Value{I: int64(b.I32[i])}})
				b.I32[i] = int32(iv[src+l])
			}
			stores += cn
			storeB += 4 * cn

		// --- __local arrays ---
		case opLdLI:
			arr := rs.wg.locals[in.slot]
			d, a := int(in.dst)*w, int(in.a)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 0 {
					continue
				}
				i := iv[a+l]
				if uint64(i) >= uint64(len(arr)) {
					return false
				}
				iv[d+l] = arr[i].I
			}
		case opLdLF:
			arr := rs.wg.locals[in.slot]
			d, a := int(in.dst)*w, int(in.a)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 0 {
					continue
				}
				i := iv[a+l]
				if uint64(i) >= uint64(len(arr)) {
					return false
				}
				fv[d+l] = arr[i].F
			}
		case opStLI:
			arr := rs.wg.locals[in.slot]
			a, src := int(in.a)*w, int(in.b)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 0 {
					continue
				}
				i := iv[a+l]
				if uint64(i) >= uint64(len(arr)) {
					return false
				}
				lb.undo = append(lb.undo, laneUndo{kind: uVal, arr: arr, idx: i, oldV: arr[i]})
				arr[i] = Value{I: iv[src+l]}
			}
		case opStLF:
			arr := rs.wg.locals[in.slot]
			a, src := int(in.a)*w, int(in.b)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 0 {
					continue
				}
				i := iv[a+l]
				if uint64(i) >= uint64(len(arr)) {
					return false
				}
				lb.undo = append(lb.undo, laneUndo{kind: uVal, arr: arr, idx: i, oldV: arr[i]})
				arr[i] = Value{F: fv[src+l]}
			}

		// --- private arrays (per-lane rows) ---
		case opLdPI:
			d, a := int(in.dst)*w, int(in.a)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 0 {
					continue
				}
				arr := rs.privScratch[lb.base+l][in.slot]
				i := iv[a+l]
				if uint64(i) >= uint64(len(arr)) {
					return false
				}
				iv[d+l] = arr[i].I
			}
		case opLdPF:
			d, a := int(in.dst)*w, int(in.a)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 0 {
					continue
				}
				arr := rs.privScratch[lb.base+l][in.slot]
				i := iv[a+l]
				if uint64(i) >= uint64(len(arr)) {
					return false
				}
				fv[d+l] = arr[i].F
			}
		case opStPI:
			a, src := int(in.a)*w, int(in.b)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 0 {
					continue
				}
				arr := rs.privScratch[lb.base+l][in.slot]
				i := iv[a+l]
				if uint64(i) >= uint64(len(arr)) {
					return false
				}
				lb.undo = append(lb.undo, laneUndo{kind: uVal, arr: arr, idx: i, oldV: arr[i]})
				arr[i] = Value{I: iv[src+l]}
			}
		case opStPF:
			a, src := int(in.a)*w, int(in.b)*w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 0 {
					continue
				}
				arr := rs.privScratch[lb.base+l][in.slot]
				i := iv[a+l]
				if uint64(i) >= uint64(len(arr)) {
					return false
				}
				lb.undo = append(lb.undo, laneUndo{kind: uVal, arr: arr, idx: i, oldV: arr[i]})
				arr[i] = Value{F: fv[src+l]}
			}

		// --- __local scalars ---
		case opLdLSI:
			arr := rs.wg.locals[in.slot]
			d := int(in.dst) * w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 1 {
					iv[d+l] = arr[0].I
				}
			}
		case opLdLSF:
			arr := rs.wg.locals[in.slot]
			d := int(in.dst) * w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 1 {
					fv[d+l] = arr[0].F
				}
			}
		case opStLSI:
			arr := rs.wg.locals[in.slot]
			a := int(in.a) * w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 0 {
					continue
				}
				lb.undo = append(lb.undo, laneUndo{kind: uVal, arr: arr, idx: 0, oldV: arr[0]})
				arr[0] = Value{I: iv[a+l]}
			}
		case opStLSF:
			arr := rs.wg.locals[in.slot]
			a := int(in.a) * w
			for l := 0; l < w; l++ {
				if mask>>uint(l)&1 == 0 {
					continue
				}
				lb.undo = append(lb.undo, laneUndo{kind: uVal, arr: arr, idx: 0, oldV: arr[0]})
				arr[0] = Value{F: fv[a+l]}
			}

		default:
			// Atomics (pinned at lowering, but kept safe here), opChkAtomG,
			// and anything this engine does not implement: bail to the
			// scalar replay, which raises the exact sequential behaviour.
			return false
		}

		// Retire lanes that executed a return.
		if retMask != 0 {
			retired |= retMask
			live &^= retMask
		}
		// Resolve branches: all-taken stays uniform, a partial take
		// materializes per-lane pcs.
		if branched {
			brMask &= live
			if uniform {
				if brMask == live {
					pc = int(brTarget)
				} else if brMask != 0 {
					for l := 0; l < w; l++ {
						bit := uint64(1) << uint(l)
						if live&bit == 0 {
							continue
						}
						if brMask&bit != 0 {
							pcs[l] = brTarget
						} else {
							pcs[l] = int32(pc)
						}
					}
					uniform = false
				}
			} else {
				for l := 0; l < w; l++ {
					if brMask>>uint(l)&1 == 1 {
						pcs[l] = brTarget
					}
				}
			}
		}
		if !uniform {
			// Lanes that ran off the segment end are done; reconverge to
			// the uniform fast path when every live lane agrees on pc.
			for l := 0; l < w; l++ {
				bit := uint64(1) << uint(l)
				if live&bit != 0 && int(pcs[l]) >= n {
					live &^= bit
				}
			}
			if live != 0 {
				first := int32(-1)
				conv := true
				for l := 0; l < w; l++ {
					if live>>uint(l)&1 == 0 {
						continue
					}
					if first < 0 {
						first = pcs[l]
					} else if pcs[l] != first {
						conv = false
						break
					}
				}
				if conv {
					uniform, pc = true, int(first)
				}
			}
		}
	}

	rs.stats.AluInt += aluI
	rs.stats.AluFloat += aluF
	rs.stats.Loads += loads
	rs.stats.LoadBytes += loadB
	rs.stats.Stores += stores
	rs.stats.StoreBytes += storeB
	lb.retired = retired
	return true
}

// fmaLd2Lane executes one opFMALd2F32/opFMALd2MAF32 for lane l,
// recording both loads into the lane's private stats/trace. Returns
// false on a bounds violation (the batch bails).
func (rs *runState) fmaLd2Lane(in *instr, lb *laneBatch, l, w int, ma bool, bufs []*Buffer) bool {
	iv, fv := lb.irv, lb.frv
	ba := bufs[in.slot]
	var ia, ix int64
	var bx *Buffer
	if ma {
		v := int64(int32(iv[int(in.a)*w+l] * iv[int(in.b)*w+l]))
		ia = int64(int32(v + iv[int(in.c)*w+l]))
		bx = bufs[int32(in.imm>>32)&0xFFFF]
		ix = iv[int(int32(in.imm>>48))*w+l]
	} else {
		ia = iv[int(in.a)*w+l]
		bx = bufs[int32(in.imm>>32)]
		ix = iv[int(in.b)*w+l]
	}
	if uint64(ia) >= uint64(len(ba.F32)) {
		return false
	}
	lb.record(l, in.site, ba.Base+ia*4, 4, false)
	if uint64(ix) >= uint64(len(bx.F32)) {
		return false
	}
	lb.record(l, int32(uint32(in.imm)), bx.Base+ix*4, 4, false)
	d := int(in.dst)*w + l
	fv[d] = float64(float32(fv[d]) + float32(ba.F32[ia]*bx.F32[ix]))
	return true
}
