package interp

import (
	"testing"

	"dopia/internal/clc"
)

// benchGesummv builds the flagship gesummv executor at the given lane
// width (0 = process default) on the bytecode engine.
func benchGesummv(b *testing.B, lanes int) *Exec {
	b.Helper()
	prog, err := clc.Compile(gesummvSrc)
	if err != nil {
		b.Fatal(err)
	}
	ex, err := NewExec(prog.Kernels[0])
	if err != nil {
		b.Fatal(err)
	}
	ex.Engine = EngineBytecode
	ex.LaneWidth = lanes
	n := 256
	A, B := NewFloatBuffer(n*n), NewFloatBuffer(n*n)
	x, y := NewFloatBuffer(n), NewFloatBuffer(n)
	if err := ex.Bind(BufArg(A), BufArg(B), BufArg(x), BufArg(y),
		FloatArg(1), FloatArg(1), IntArg(int64(n))); err != nil {
		b.Fatal(err)
	}
	if err := ex.Launch(ND1(n, 64)); err != nil {
		b.Fatal(err)
	}
	return ex
}

func runGesummvBench(b *testing.B, lanes int) {
	ex := benchGesummv(b, lanes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ex.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGesummvLanesDefault(b *testing.B) { runGesummvBench(b, 0) }
func BenchmarkGesummvLanes1(b *testing.B)      { runGesummvBench(b, 1) }
