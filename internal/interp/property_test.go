package interp_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dopia/internal/clc"
	"dopia/internal/interp"
	"dopia/internal/workloads"
)

// TestPropertyDeterminism: running the same kernel twice over identical
// inputs yields bit-identical outputs and identical statistics — the
// interpreter has no hidden nondeterminism (map iteration, scratch reuse,
// sampling order).
func TestPropertyDeterminism(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(17))}
	prop := func(alphaRaw, dimsRaw, wdRaw, rRaw uint8) bool {
		spec := workloads.SynthSpec{
			Alpha:   1 + int(alphaRaw)%3,
			MatDims: 3 + int(dimsRaw)%2,
			Gamma:   2,
			WorkDim: 1 + int(wdRaw)%2,
			DType:   clc.KindFloat,
			Size:    16384,
			WGSize:  64,
			Random:  int(rRaw) % 2,
		}
		w, err := spec.Generate()
		if err != nil {
			return true
		}
		k, err := w.CompileKernel()
		if err != nil {
			return false
		}
		run := func() (*workloads.Instance, *interp.Profile, error) {
			inst, err := w.Setup()
			if err != nil {
				return nil, nil, err
			}
			ex, err := interp.NewExec(k)
			if err != nil {
				return nil, nil, err
			}
			if err := ex.Bind(inst.Args...); err != nil {
				return nil, nil, err
			}
			if err := ex.Launch(inst.ND); err != nil {
				return nil, nil, err
			}
			if err := ex.Run(); err != nil {
				return nil, nil, err
			}
			return inst, ex.Stats(), nil
		}
		i1, p1, err := run()
		if err != nil {
			t.Logf("%s: %v", w.Name, err)
			return false
		}
		i2, p2, err := run()
		if err != nil {
			return false
		}
		for ai := range i1.Args {
			if i1.Args[ai].IsBuf && !i1.Args[ai].Buf.Equal(i2.Args[ai].Buf) {
				return false
			}
		}
		if p1.AluInt != p2.AluInt || p1.AluFloat != p2.AluFloat ||
			p1.Loads != p2.Loads || p1.Stores != p2.Stores {
			return false
		}
		for i := range p1.Sites {
			if p1.Sites[i] != p2.Sites[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestPropertyGroupOrderIrrelevant: executing work-groups in any order
// produces the same buffers for data-parallel kernels (each work-item
// owns its output element) — the foundation that makes Dopia's arbitrary
// CPU/GPU partitioning sound.
func TestPropertyGroupOrderIrrelevant(t *testing.T) {
	spec := workloads.SynthSpec{
		Alpha: 2, MatDims: 3, Gamma: 2, WorkDim: 1,
		DType: clc.KindFloat, Size: 16384, WGSize: 64,
	}
	w, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	k, err := w.CompileKernel()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := w.Setup()
	if err != nil {
		t.Fatal(err)
	}
	exRef, err := interp.NewExec(k)
	if err != nil {
		t.Fatal(err)
	}
	if err := exRef.Bind(ref.Args...); err != nil {
		t.Fatal(err)
	}
	if err := exRef.Launch(ref.ND); err != nil {
		t.Fatal(err)
	}
	if err := exRef.Run(); err != nil {
		t.Fatal(err)
	}

	cfg := &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(23))}
	prop := func(seed int64) bool {
		inst, err := w.Setup()
		if err != nil {
			return false
		}
		ex, err := interp.NewExec(k)
		if err != nil {
			return false
		}
		if err := ex.Bind(inst.Args...); err != nil {
			return false
		}
		if err := ex.Launch(inst.ND); err != nil {
			return false
		}
		order := rand.New(rand.NewSource(seed)).Perm(inst.ND.TotalGroups())
		for _, g := range order {
			if err := ex.RunGroup(g); err != nil {
				return false
			}
		}
		for _, oi := range ref.OutputArgs {
			if !ref.Args[oi].Buf.Equal(inst.Args[oi].Buf) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
