package interp

import "fmt"

// NDRange describes an OpenCL index space: up to three dimensions of
// global work-items partitioned into work-groups. Global sizes must be
// multiples of the corresponding local sizes (the common OpenCL 1.2
// requirement, and what every evaluated workload uses).
type NDRange struct {
	Dims   int
	Global [3]int
	Local  [3]int
	Offset [3]int
}

// ND1 builds a one-dimensional NDRange.
func ND1(global, local int) NDRange {
	return NDRange{Dims: 1, Global: [3]int{global, 1, 1}, Local: [3]int{local, 1, 1}}
}

// ND2 builds a two-dimensional NDRange.
func ND2(gx, gy, lx, ly int) NDRange {
	return NDRange{Dims: 2, Global: [3]int{gx, gy, 1}, Local: [3]int{lx, ly, 1}}
}

// Validate checks the range for consistency.
func (nd NDRange) Validate() error {
	if nd.Dims < 1 || nd.Dims > 3 {
		return fmt.Errorf("ndrange: dims must be 1..3, got %d", nd.Dims)
	}
	for d := 0; d < nd.Dims; d++ {
		if nd.Global[d] <= 0 || nd.Local[d] <= 0 {
			return fmt.Errorf("ndrange: dimension %d has non-positive size", d)
		}
		if nd.Global[d]%nd.Local[d] != 0 {
			return fmt.Errorf("ndrange: global size %d not divisible by local size %d in dim %d",
				nd.Global[d], nd.Local[d], d)
		}
	}
	for d := nd.Dims; d < 3; d++ {
		if nd.Global[d] > 1 || nd.Local[d] > 1 {
			return fmt.Errorf("ndrange: size set beyond declared dims")
		}
	}
	return nil
}

// normalized returns the range with unused dimensions set to 1.
func (nd NDRange) normalized() NDRange {
	for d := 0; d < 3; d++ {
		if nd.Global[d] == 0 {
			nd.Global[d] = 1
		}
		if nd.Local[d] == 0 {
			nd.Local[d] = 1
		}
	}
	return nd
}

// NumGroups returns the per-dimension work-group counts.
func (nd NDRange) NumGroups() [3]int {
	nd = nd.normalized()
	return [3]int{
		nd.Global[0] / nd.Local[0],
		nd.Global[1] / nd.Local[1],
		nd.Global[2] / nd.Local[2],
	}
}

// TotalGroups returns the total number of work-groups.
func (nd NDRange) TotalGroups() int {
	g := nd.NumGroups()
	return g[0] * g[1] * g[2]
}

// GroupSize returns the number of work-items per work-group.
func (nd NDRange) GroupSize() int {
	nd = nd.normalized()
	return nd.Local[0] * nd.Local[1] * nd.Local[2]
}

// TotalItems returns the total number of work-items.
func (nd NDRange) TotalItems() int {
	nd = nd.normalized()
	return nd.Global[0] * nd.Global[1] * nd.Global[2]
}

// GroupCoords converts a linear work-group id (dimension 0 fastest) to
// per-dimension group coordinates.
func (nd NDRange) GroupCoords(lin int) [3]int {
	g := nd.NumGroups()
	return [3]int{lin % g[0], (lin / g[0]) % g[1], lin / (g[0] * g[1])}
}

// SubRange returns an NDRange covering count work-groups starting at
// linear group id start, expressed as an independent launch whose global
// offset makes get_global_id agree with the parent range. Only valid for
// a contiguous span in the first dimension (which is how Dopia's runtime
// pushes chunks to the GPU).
func (nd NDRange) SubRange(start, count int) (NDRange, error) {
	g := nd.NumGroups()
	if g[1] != 1 || g[2] != 1 {
		// Multi-dimensional chunking slices along the last dimension is
		// not needed: the runtime chunks the linearized group list, and
		// for 2-D ranges it slices rows of groups.
		if start%g[0] != 0 || count%g[0] != 0 {
			return NDRange{}, fmt.Errorf("ndrange: 2-D chunk must be whole rows of groups")
		}
		sub := nd
		sub.Offset[1] = nd.Offset[1] + (start/g[0])*nd.Local[1]
		sub.Global[1] = (count / g[0]) * nd.Local[1]
		return sub, nil
	}
	sub := nd
	sub.Offset[0] = nd.Offset[0] + start*nd.Local[0]
	sub.Global[0] = count * nd.Local[0]
	return sub, nil
}
