package interp

import "testing"

// grams indexes an n-gram list by its space-joined sequence.
func grams(list []OpNGram) map[string]uint64 {
	out := make(map[string]uint64, len(list))
	for _, g := range list {
		key := ""
		for i, s := range g.Seq {
			if i > 0 {
				key += " "
			}
			key += s
		}
		out[key] = g.Count
	}
	return out
}

// TestOpProfiler proves the opcode n-gram profiler observes the base
// (unfused) instruction stream, counts exactly, and merges race-free
// across shard workers. It flips the process-global switch directly and
// restores it, so the rest of the suite keeps its lane behaviour.
func TestOpProfiler(t *testing.T) {
	enableOpProfiling()
	ResetOpProfile()
	defer func() {
		opProfOn = false
		ResetOpProfile()
	}()

	n := 48
	ex := newExec(t, gesummvSrc, "gesummv")
	ex.Engine = EngineBytecode
	ex.LaneWidth = 8
	ex.Parallelism = 4 // shard workers share the atomic tables
	A, B := NewFloatBuffer(n*n), NewFloatBuffer(n*n)
	x, y := NewFloatBuffer(n), NewFloatBuffer(n)
	if err := ex.Bind(BufArg(A), BufArg(B), BufArg(x), BufArg(y),
		FloatArg(1.5), FloatArg(0.5), IntArg(int64(n))); err != nil {
		t.Fatal(err)
	}
	if err := ex.Launch(ND1(n, 16)); err != nil {
		t.Fatal(err)
	}

	// Profiling mode pins lanes so n-grams are per-item streams.
	if w, reason := ex.LanesUsed(); w != 1 || reason != "opcode profiling" {
		t.Fatalf("LanesUsed() = (%d, %q), want (1, \"opcode profiling\")", w, reason)
	}

	if err := ex.Run(); err != nil {
		t.Fatal(err)
	}

	p := CurrentOpProfile(64)
	if p.Dispatches == 0 {
		t.Fatal("profiler recorded no dispatches")
	}
	ops := grams(p.Ops)
	// The profile sees the base stream: two FMA load-pairs per inner
	// iteration, never the fused head.
	wantFMA := uint64(2 * n * n)
	if got := ops["FMALd2MAF32"]; got != wantFMA {
		t.Fatalf("FMALd2MAF32 count = %d, want %d", got, wantFMA)
	}
	if got := ops["FMALoopF32"]; got != 0 {
		t.Fatalf("profile contains %d fused dispatches; profiling must disable the peephole", got)
	}
	pairs := grams(p.Pairs)
	if got := pairs["FMALd2MAF32 IncJCmpI"]; got == 0 {
		t.Fatal("loop back-edge pair missing from profile")
	}
	tris := grams(p.Trigrams)
	if got := tris["FMALd2MAF32 FMALd2MAF32 IncJCmpI"]; got != uint64(n*n) {
		t.Fatalf("loop trigram count = %d, want %d", got, n*n)
	}

	// A second identical run must double the merged counters exactly.
	if err := ex.Launch(ND1(n, 16)); err != nil {
		t.Fatal(err)
	}
	if err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	p2 := CurrentOpProfile(64)
	if got := grams(p2.Ops)["FMALd2MAF32"]; got != 2*wantFMA {
		t.Fatalf("after second run FMALd2MAF32 count = %d, want %d", got, 2*wantFMA)
	}
}
