package interp_test

// Equivalence and robustness tests for the parallel ND-range engine.
// They live in an external test package so they can drive the real
// workload suite (package workloads imports interp).
//
// Run with -race: the shard workers share only read-only state and the
// disjoint output buffers, so the race detector doubles as a proof that
// the partitioning really is disjoint.

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"dopia/internal/clc"
	"dopia/internal/conformance"
	"dopia/internal/interp"
	"dopia/internal/workloads"
)

// runInstance executes one workload instance on a fresh Exec with the
// given parallelism and returns the executor (for stats/buffers).
func runInstance(t *testing.T, k *clc.Kernel, inst *workloads.Instance, parallelism int, sink interp.TraceSink) *interp.Exec {
	t.Helper()
	ex, err := interp.NewExec(k)
	if err != nil {
		t.Fatalf("NewExec: %v", err)
	}
	ex.Parallelism = parallelism
	ex.Sink = sink
	if err := ex.Bind(inst.Args...); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if err := ex.Launch(inst.ND); err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if err := ex.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return ex
}

// observe summarizes one finished run as a conformance observation:
// bit-exact byte images of every buffer argument, the statistics
// profile, and — when a recording sink was attached — the trace stream.
// Comparisons then go through conformance.AssertIdentical, the canonical
// equivalence check shared with the differential-conformance oracle, so
// every divergence is reported with its first divergent byte offset.
func observe(leg string, inst *workloads.Instance, ex *interp.Exec, sink *conformance.RecordingSink) *conformance.Observation {
	obs := &conformance.Observation{Leg: leg, Profile: ex.Stats()}
	for i, a := range inst.Args {
		if a.IsBuf {
			obs.Buffers = append(obs.Buffers, conformance.BufferObs{
				Name:  fmt.Sprintf("arg%d", i),
				Bytes: conformance.BufferBytes(a.Buf),
			})
		}
	}
	if sink != nil {
		obs.Trace = append([]conformance.TraceEvent{}, sink.Events...)
	}
	return obs
}

// TestParallelMatchesSequentialRealWorkloads runs every real workload on
// the sequential reference path and on a 4-way sharded run and demands
// bit-identical output buffers, statistics profiles, and trace streams.
func TestParallelMatchesSequentialRealWorkloads(t *testing.T) {
	ws, err := workloads.RealWorkloads(128, 32)
	if err != nil {
		t.Fatalf("RealWorkloads: %v", err)
	}
	for _, w := range ws {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			k, err := w.CompileKernel()
			if err != nil {
				t.Fatalf("CompileKernel: %v", err)
			}
			seqInst, err := w.Setup()
			if err != nil {
				t.Fatalf("Setup: %v", err)
			}
			parInst, err := w.Setup()
			if err != nil {
				t.Fatalf("Setup: %v", err)
			}
			var seqSink, parSink conformance.RecordingSink
			seq := runInstance(t, k, seqInst, interp.Sequential, &seqSink)
			par := runInstance(t, k, parInst, 4, &parSink)
			conformance.AssertIdentical(t,
				observe("closures/seq", seqInst, seq, &seqSink),
				observe("closures/shards=4", parInst, par, &parSink))
		})
	}
}

// TestShardCountInvariance is the property test: no shard count — one,
// two, NumCPU, or more shards than work-groups — may change buffers or
// statistics relative to the sequential run, including across repeated
// Run calls on the same executor (chain state spans runs).
func TestShardCountInvariance(t *testing.T) {
	ws, err := workloads.RealWorkloads(64, 16)
	if err != nil {
		t.Fatalf("RealWorkloads: %v", err)
	}
	// Three representatives keep the property run fast; the full suite is
	// covered by TestParallelMatchesSequentialRealWorkloads.
	picked := ws
	if len(picked) > 3 {
		picked = picked[:3]
	}
	counts := []int{interp.Sequential, 2, 3, runtime.NumCPU(), 1 << 20}
	for _, w := range picked {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			k, err := w.CompileKernel()
			if err != nil {
				t.Fatalf("CompileKernel: %v", err)
			}
			refInst, err := w.Setup()
			if err != nil {
				t.Fatalf("Setup: %v", err)
			}
			ref := runInstance(t, k, refInst, interp.Sequential, nil)
			// Second run on the same executor: merge must continue the
			// chain state exactly like the sequential stream does.
			if err := ref.Run(); err != nil {
				t.Fatalf("Run: %v", err)
			}
			refObs := observe("closures/seq", refInst, ref, nil)
			for _, p := range counts {
				inst, err := w.Setup()
				if err != nil {
					t.Fatalf("Setup: %v", err)
				}
				ex := runInstance(t, k, inst, p, nil)
				if err := ex.Run(); err != nil {
					t.Fatalf("Run (p=%d): %v", p, err)
				}
				conformance.AssertIdentical(t, refObs,
					observe(fmt.Sprintf("closures/shards=%d", p), inst, ex, nil))
			}
		})
	}
}

const cancelKernel = `
__kernel void spin(__global float* a) {
	int i = get_global_id(0);
	float x = a[i];
	for (int j = 0; j < 64; j++) {
		x = x * 0.5f + 1.0f;
	}
	a[i] = x;
}`

// TestParallelCancellationLatency arms Exec.Check to fail after a few
// polls and verifies that a sharded run over a large group space aborts
// within one work-group quantum per shard — the watchdog contract.
func TestParallelCancellationLatency(t *testing.T) {
	prog, err := clc.Compile(cancelKernel)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	ex, err := interp.NewExec(prog.Kernel("spin"))
	if err != nil {
		t.Fatalf("NewExec: %v", err)
	}
	const parallelism = 4
	ex.Parallelism = parallelism
	buf := interp.NewFloatBuffer(4096 * 16)
	if err := ex.Bind(interp.BufArg(buf)); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if err := ex.Launch(interp.ND1(4096*16, 16)); err != nil {
		t.Fatalf("Launch: %v", err)
	}
	cancelErr := errors.New("deadline exceeded")
	var polls atomic.Int64
	const trip = 8
	ex.Check = func() error {
		if polls.Add(1) > trip {
			return cancelErr
		}
		return nil
	}
	err = ex.Run()
	if !errors.Is(err, cancelErr) {
		t.Fatalf("Run: got %v, want the cancellation error", err)
	}
	// Check is polled before every group; once tripped, each shard stops
	// at its next poll, so at most `trip` groups ever started.
	if g := ex.Stats().GroupsRun; g > trip {
		t.Errorf("cancellation latency: %d groups ran, want <= %d (one quantum per shard)", g, trip)
	}
	if g := ex.Stats().GroupsRun; g >= 4096 {
		t.Errorf("cancellation had no effect: all %d groups ran", g)
	}
}

// TestParallelErrorPropagation verifies that a runtime fault inside a
// shard worker (out-of-bounds access) is contained, classified, and
// reported — and that repeated failing runs do not wedge the pool.
func TestParallelErrorPropagation(t *testing.T) {
	const src = `
__kernel void oob(__global float* a, int n) {
	int i = get_global_id(0);
	a[i + n] = 1.0f;
}`
	prog, err := clc.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	ex, err := interp.NewExec(prog.Kernel("oob"))
	if err != nil {
		t.Fatalf("NewExec: %v", err)
	}
	ex.Parallelism = 4
	buf := interp.NewFloatBuffer(256)
	if err := ex.Bind(interp.BufArg(buf), interp.IntArg(1024)); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if err := ex.Launch(interp.ND1(256, 16)); err != nil {
		t.Fatalf("Launch: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := ex.Run(); err == nil {
			t.Fatalf("run %d: expected out-of-bounds error, got nil", i)
		}
	}
}
