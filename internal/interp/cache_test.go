package interp

import (
	"errors"
	"testing"

	"dopia/internal/faults"
)

// TestCompileCacheShared verifies that two executors of the same kernel
// share one immutable compiled form, and that distinct kernels do not.
func TestCompileCacheShared(t *testing.T) {
	src := `
__kernel void add(__global float* a, __global float* b) {
	int i = get_global_id(0);
	a[i] = a[i] + b[i];
}
__kernel void sub(__global float* a, __global float* b) {
	int i = get_global_id(0);
	a[i] = a[i] - b[i];
}`
	k1 := compileKernelSrc(t, src, "add")
	k2 := compileKernelSrc(t, src, "sub")
	ex1, err := NewExec(k1)
	if err != nil {
		t.Fatalf("NewExec: %v", err)
	}
	ex2, err := NewExec(k1)
	if err != nil {
		t.Fatalf("NewExec: %v", err)
	}
	ex3, err := NewExec(k2)
	if err != nil {
		t.Fatalf("NewExec: %v", err)
	}
	if ex1.ck != ex2.ck {
		t.Errorf("same kernel compiled twice: compiled forms not shared")
	}
	if ex1.ck == ex3.ck {
		t.Errorf("distinct kernels share a compiled form")
	}
}

// TestCompileCacheBypassedWhileFaultsArmed verifies that an armed
// interp.compile fault fires on every NewExec even for cached kernels:
// memoization must never mask an injected fault sequence.
func TestCompileCacheBypassedWhileFaultsArmed(t *testing.T) {
	src := `
__kernel void one(__global float* a) {
	int i = get_global_id(0);
	a[i] = 1.0f;
}`
	k := compileKernelSrc(t, src, "one")
	if _, err := NewExec(k); err != nil { // warm the cache
		t.Fatalf("NewExec: %v", err)
	}
	boom := errors.New("boom")
	faults.InjectError("interp.compile", boom)
	t.Cleanup(faults.Reset)
	for i := 0; i < 2; i++ {
		if _, err := NewExec(k); !errors.Is(err, boom) {
			t.Fatalf("NewExec %d with armed fault: got %v, want injected error", i, err)
		}
	}
	if got := faults.HitCount("interp.compile"); got != 2 {
		t.Errorf("interp.compile hit count = %d, want 2", got)
	}
}
