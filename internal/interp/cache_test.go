package interp

import (
	"errors"
	"testing"

	"dopia/internal/faults"
)

// TestCompileCacheShared verifies that two executors of the same kernel
// share one immutable compiled form, and that distinct kernels do not.
func TestCompileCacheShared(t *testing.T) {
	src := `
__kernel void add(__global float* a, __global float* b) {
	int i = get_global_id(0);
	a[i] = a[i] + b[i];
}
__kernel void sub(__global float* a, __global float* b) {
	int i = get_global_id(0);
	a[i] = a[i] - b[i];
}`
	k1 := compileKernelSrc(t, src, "add")
	k2 := compileKernelSrc(t, src, "sub")
	ex1, err := NewExec(k1)
	if err != nil {
		t.Fatalf("NewExec: %v", err)
	}
	ex2, err := NewExec(k1)
	if err != nil {
		t.Fatalf("NewExec: %v", err)
	}
	ex3, err := NewExec(k2)
	if err != nil {
		t.Fatalf("NewExec: %v", err)
	}
	if ex1.ck != ex2.ck {
		t.Errorf("same kernel compiled twice: compiled forms not shared")
	}
	if ex1.ck == ex3.ck {
		t.Errorf("distinct kernels share a compiled form")
	}
}

// TestCompileCacheEngineKeyed is the regression test for the cache
// audit: the engine is part of the compile-cache key, so the closure
// tree (*compiled) and the bytecode program (*bcEntry) for the same
// *clc.Kernel live under distinct entries and a form compiled for one
// engine is never served to the other.
func TestCompileCacheEngineKeyed(t *testing.T) {
	src := `
__kernel void ek(__global float* a) {
	int i = get_global_id(0);
	a[i] = a[i] + 1.0f;
}`
	k := compileKernelSrc(t, src, "ek")
	ex, err := NewExec(k)
	if err != nil {
		t.Fatalf("NewExec: %v", err)
	}
	ex.Engine = EngineBytecode
	if err := ex.Bind(BufArg(NewFloatBuffer(32))); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if err := ex.Launch(ND1(32, 8)); err != nil { // resolves + lowers
		t.Fatalf("Launch: %v", err)
	}
	if eng, reason := ex.EngineUsed(); eng != EngineBytecode {
		t.Fatalf("bytecode launch fell back to %v (%s)", eng, reason)
	}

	cv, ok := compileCache.Load(cacheKey{k: k, engine: EngineClosures})
	if !ok {
		t.Fatal("no cache entry under (k, EngineClosures)")
	}
	if _, isTree := cv.(*compiled); !isTree {
		t.Fatalf("closures entry holds %T, want *compiled", cv)
	}
	bv, ok := compileCache.Load(cacheKey{k: k, engine: EngineBytecode})
	if !ok {
		t.Fatal("no cache entry under (k, EngineBytecode)")
	}
	ent, isBC := bv.(*bcEntry)
	if !isBC {
		t.Fatalf("bytecode entry holds %T, want *bcEntry", bv)
	}
	if ent.err != nil || ent.prog == nil {
		t.Fatalf("bytecode entry = {prog:%v err:%v}, want lowered program", ent.prog, ent.err)
	}

	// A second executor pinned to closures must reuse the closure tree
	// and must not observe the bytecode entry.
	ex2, err := NewExec(k)
	if err != nil {
		t.Fatalf("NewExec: %v", err)
	}
	ex2.Engine = EngineClosures
	if err := ex2.Bind(BufArg(NewFloatBuffer(32))); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if err := ex2.Launch(ND1(32, 8)); err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if eng, _ := ex2.EngineUsed(); eng != EngineClosures {
		t.Fatalf("closure launch reports engine %v", eng)
	}
	if ex2.ck != cv.(*compiled) {
		t.Error("closure executor did not reuse the cached closure tree")
	}
	if ex2.prog != nil {
		t.Error("closure-pinned executor holds a bytecode program")
	}
	if ex.prog != ent.prog {
		t.Error("bytecode executor did not reuse the cached bytecode program")
	}
}

// TestCompileCacheBypassedWhileFaultsArmed verifies that an armed
// interp.compile fault fires on every NewExec even for cached kernels:
// memoization must never mask an injected fault sequence.
func TestCompileCacheBypassedWhileFaultsArmed(t *testing.T) {
	src := `
__kernel void one(__global float* a) {
	int i = get_global_id(0);
	a[i] = 1.0f;
}`
	k := compileKernelSrc(t, src, "one")
	if _, err := NewExec(k); err != nil { // warm the cache
		t.Fatalf("NewExec: %v", err)
	}
	boom := errors.New("boom")
	faults.InjectError("interp.compile", boom)
	t.Cleanup(faults.Reset)
	for i := 0; i < 2; i++ {
		if _, err := NewExec(k); !errors.Is(err, boom) {
			t.Fatalf("NewExec %d with armed fault: got %v, want injected error", i, err)
		}
	}
	if got := faults.HitCount("interp.compile"); got != 2 {
		t.Errorf("interp.compile hit count = %d, want 2", got)
	}
}
