package interp

// Opcode n-gram profiling: when enabled (DOPIA_PROFILE_OPS=1 or
// EnableOpProfiling), the bytecode dispatch loop counts every dispatched
// opcode plus the pairs and trigrams of consecutively dispatched opcodes
// within one work-item. The histograms feed cmd/dopia-superopt, which
// mines them for hot fusible sequences and regenerates the
// superinstruction table (superinstructions_gen.go) that drives the
// lowering peephole.
//
// Profiling mode observes the *base* instruction stream: the mined
// peephole is disabled (fused heads would hide the very sequences being
// mined) and lane execution is pinned to width 1 (the vector engine
// dispatches once per batch, which would undercount per-item streams).
// Counters are process-global and updated with atomic adds, so profiles
// from sharded runs merge race-free; n-grams never span work-items
// because the dispatch loop resets its history per execBC call.

import (
	"encoding/json"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

var (
	opProfOn    bool
	opProfOnce  sync.Once
	opProfOps   []uint64 // [nOpcodes]
	opProfPairs []uint64 // [nOpcodes*nOpcodes]
	opProfTris  []uint64 // [nOpcodes*nOpcodes*nOpcodes]
)

// opProfileEnabled latches the DOPIA_PROFILE_OPS environment variable on
// first use. EnableOpProfiling flips the switch programmatically; either
// way the decision is fixed before the first launch resolves its lane
// width and before the first kernel is lowered.
func opProfileEnabled() bool {
	opProfOnce.Do(func() {
		if v := os.Getenv("DOPIA_PROFILE_OPS"); v != "" && v != "0" {
			enableOpProfiling()
		}
	})
	return opProfOn
}

// EnableOpProfiling turns opcode n-gram profiling on for the process
// (equivalent to DOPIA_PROFILE_OPS=1). It must be called before the
// first kernel launch; dopia-fuzz and dopia-bench call it when an
// -opprofile output is requested.
func EnableOpProfiling() {
	opProfOnce.Do(enableOpProfiling)
}

func enableOpProfiling() {
	n := int(nOpcodes)
	opProfOps = make([]uint64, n)
	opProfPairs = make([]uint64, n*n)
	opProfTris = make([]uint64, n*n*n)
	opProfOn = true
}

// opProfNote records one dispatched opcode following the previous one(s)
// of the same work-item (-1 = none). Atomic adds keep shard workers
// race-free and exactly mergeable.
func opProfNote(p2, p1, op int32) {
	n := int32(nOpcodes)
	atomic.AddUint64(&opProfOps[op], 1)
	if p1 >= 0 {
		atomic.AddUint64(&opProfPairs[p1*n+op], 1)
		if p2 >= 0 {
			atomic.AddUint64(&opProfTris[(p2*n+p1)*n+op], 1)
		}
	}
}

// OpNGram is one entry of a dumped opcode n-gram histogram.
type OpNGram struct {
	Seq   []string `json:"seq"`
	Count uint64   `json:"count"`
}

// OpProfile is the dump format of the opcode n-gram profiler, consumed
// by cmd/dopia-superopt.
type OpProfile struct {
	Dispatches uint64    `json:"dispatches"`
	Ops        []OpNGram `json:"ops"`
	Pairs      []OpNGram `json:"pairs"`
	Trigrams   []OpNGram `json:"trigrams"`
}

// CurrentOpProfile snapshots the process-wide opcode n-gram histograms,
// keeping the top entries of each order. It returns an empty profile
// when profiling is not enabled.
func CurrentOpProfile(top int) *OpProfile {
	p := &OpProfile{}
	if !opProfOn {
		return p
	}
	if top <= 0 {
		top = 64
	}
	n := int(nOpcodes)
	for op := range opProfOps {
		if c := atomic.LoadUint64(&opProfOps[op]); c != 0 {
			p.Dispatches += c
			p.Ops = append(p.Ops, OpNGram{Seq: []string{opName(opcode(op))}, Count: c})
		}
	}
	for i := range opProfPairs {
		if c := atomic.LoadUint64(&opProfPairs[i]); c != 0 {
			a, b := i/n, i%n
			p.Pairs = append(p.Pairs, OpNGram{Seq: []string{opName(opcode(a)), opName(opcode(b))}, Count: c})
		}
	}
	for i := range opProfTris {
		if c := atomic.LoadUint64(&opProfTris[i]); c != 0 {
			a, b, d := i/(n*n), (i/n)%n, i%n
			p.Trigrams = append(p.Trigrams, OpNGram{Seq: []string{opName(opcode(a)), opName(opcode(b)), opName(opcode(d))}, Count: c})
		}
	}
	trim := func(s []OpNGram) []OpNGram {
		sort.SliceStable(s, func(i, j int) bool { return s[i].Count > s[j].Count })
		if len(s) > top {
			s = s[:top]
		}
		return s
	}
	p.Ops, p.Pairs, p.Trigrams = trim(p.Ops), trim(p.Pairs), trim(p.Trigrams)
	return p
}

// WriteOpProfile writes the current opcode n-gram histograms as indented
// JSON (the input format of cmd/dopia-superopt).
func WriteOpProfile(w io.Writer, top int) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(CurrentOpProfile(top))
}

// ResetOpProfile zeroes the histograms (test hook).
func ResetOpProfile() {
	for i := range opProfOps {
		atomic.StoreUint64(&opProfOps[i], 0)
	}
	for i := range opProfPairs {
		atomic.StoreUint64(&opProfPairs[i], 0)
	}
	for i := range opProfTris {
		atomic.StoreUint64(&opProfTris[i], 0)
	}
}
