package interp

// This file implements the register-based bytecode execution engine: a
// flat instruction array per barrier-delimited segment, dispatched by one
// tight switch loop over separate int64/float64 register files. It is the
// fast path of the interpreter; the tree-of-closures engine (compile.go)
// is the reference implementation and the per-kernel fallback.
//
// The engine is bit-identical to the closure engine in every observable:
// output buffers, RunStats counters, per-site access patterns, trace
// streams, and runtime-error behaviour (same messages, same positions,
// same panic containment). The lowering pass (lower.go) guarantees this
// by construction: every instruction reproduces the exact arithmetic
// (including OpenCL 32-bit wrap-around and float32 rounding), the exact
// statistics increments, and the exact memory-access order of the
// closures it replaces. Fused superinstructions (multiply-add addressing,
// float32 FMA accumulation, compare-and-branch) bump the statistics
// counters once per fused operation, so totals stay identical.

import (
	"fmt"

	"dopia/internal/clc"
	"dopia/internal/faults"
)

// opcode enumerates the VM instructions. The dispatch switch is dense, so
// the compiler lowers it to a jump table.
type opcode uint8

// Instruction opcodes.
const (
	opNop opcode = iota

	// Control flow. imm is the absolute target pc within the segment.
	opJmp
	opJmpZI  // jump if ir[a] == 0
	opJmpNZI // jump if ir[a] != 0
	opJmpZF  // jump if fr[a] == 0
	opJmpNZF // jump if fr[a] != 0
	opJCmpI  // AluInt += c; jump if !cmpI(norm, ir[a], ir[b])
	opJCmpF  // AluFloat += c; jump if !cmpF(norm, fr[a], fr[b])
	opRet    // work-item done for this and all later segments

	// Statistics pre-payment. The closure engine counts an operation
	// before evaluating its operands, so when an operand subtree can trap
	// (bounds, division by zero) the lowerer emits the operation's count
	// up front and zeroes the count field (c) of the operation itself;
	// trap-time counter totals then match the closures exactly.
	opStatInt   // AluInt += imm
	opStatFloat // AluFloat += imm

	// Trap-order checks. The closure engine evaluates a divisor before
	// the dividend and checks an atomic's buffer before evaluating the
	// operand; these opcodes reproduce those trap points in-order when
	// the surrounding operands have observable effects.
	opChkDiv0  // trap if ir[a] == 0; imm 0 = division, 1 = modulo
	opChkAtomG // trap if the atomic buffer in slot is empty

	// Constants, moves, conversions (no statistics, like closure convert).
	opConstI // ir[dst] = imm
	opConstF // fr[dst] = fimm
	opMovI   // ir[dst] = norm(ir[a])
	opMovF   // fr[dst] = normf(fr[a])
	opI2F    // fr[dst] = normf(float(ir[a])); norm bit convUnsigned: via uint64
	opF2I    // ir[dst] = norm(int64(fr[a]))

	// Integer ALU. Each op adds its count field (c, normally 1; 0 when
	// pre-paid by opStatInt) to AluInt and normalizes its result to the
	// promoted kind (norm field), exactly like binOpFn.
	opAddI
	opSubI
	opMulI
	opMulAddI // ir[dst] = n32(n32(ir[a]*ir[b]) + ir[c]); AluInt += 2
	opDivI    // traps "integer division by zero" at pos
	opDivU
	opRemI // traps "integer modulo by zero" at pos
	opRemU
	opShlI // imm = shift mask (31 or 63)
	opShrI
	opShrU
	opAndI
	opOrI
	opXorI
	opNegI
	opBitNotI
	opIncDecI // ir[dst] = norm(ir[dst] + imm); AluInt++
	opStepI   // ir[dst] = norm(ir[a] + imm); no statistics (inc/dec helper)
	opCmpI    // ir[dst] = cmpI(norm, ir[a], ir[b]); AluInt += c
	opNotI    // ir[dst] = (ir[a] == 0); AluInt += c
	opNotF    // ir[dst] = (fr[a] == 0); AluInt += c (UnaryNot is an int op)
	opMinMaxI // norm != 0 selects min; AluInt += c
	opAbsI    // AluInt += c

	// Float ALU. Each op adds its count field (c) to AluFloat; norm
	// selects float32 rounding.
	opAddF
	opSubF
	opMulF
	opDivF
	opFMAAF32 // fr[dst] = f32(fr[dst] + f32(fr[a]*fr[b])); AluFloat += norm
	opNegF
	opIncDecF // fr[dst] = normf(fr[dst] + fimm); AluFloat++
	opStepF   // fr[dst] = normf(fr[a] + fimm); no statistics
	opCmpF    // ir[dst] = cmpF(norm, fr[a], fr[b]); AluFloat += c
	opMinMaxF // norm != 0 selects min; AluFloat += c
	opMath1   // fr[dst] = f32(math1[imm](fr[a])); AluFloat += c
	opMath2   // fr[dst] = f32(math2[imm](fr[a], fr[b])); AluFloat += c

	// Superinstructions for the reduction inner loops that dominate
	// profiled launches (dot-product style kernels). Both preserve the
	// closure engine's exact statistic/record/trap order.
	opFMALd2F32 // fr[dst] += f32(f32(A[ir[a]]) * f32(X[ir[b]])); records both loads; AluFloat += 2
	opIncJCmpI  // ir[dst] = norm>>4(ir[dst]+c); AluInt += 2; jump to imm if cmpI(norm&15, ir[a], ir[b])

	// opFMALd2F32 with the A index's trailing opMulAddI absorbed:
	// ia = n32(n32(ir[a]*ir[b]) + ir[c]) computed in-instruction
	// (AluInt += 2); the scratch register the multiply-add targeted is
	// dead, so it is not written. The X index register and X's
	// slot/site ride in imm (reg<<48 | slot<<32 | site).
	opFMALd2MAF32

	// opFMALoopF32 is a machine-mined fused loop head (see
	// superinstructions_gen.go and cmd/dopia-superopt): it replaces the
	// head of a 1-2 instruction loop body of opFMALd2F32/opFMALd2MAF32
	// accumulations whose back edge is an opIncJCmpI jumping to the
	// head. The head instruction keeps the first FMA's operands; norm
	// holds the body length (number of FMA instructions), and the
	// remaining body instructions stay in place unmodified, so jumps
	// into the middle of the window still execute the exact unfused
	// semantics. The executor (runFMALoop) runs the whole loop with
	// buffer/site state hoisted out of the dispatch loop and
	// constant-stride classifier runs batched through
	// access.Classifier.ObserveRun — observably identical, per access,
	// to the unfused sequence.
	opFMALoopF32

	// Work-item functions. norm is the wi* code; static dim in imm,
	// dynamic dim in ir[a] (masked &3 like the closures).
	opWISta
	opWIDyn

	// Global-memory access: a = index register, slot = parameter slot,
	// site = memory site, pos = subscript position for bounds traps.
	// Loads/stores update Loads/Stores counters, the site classifier
	// (unless sampling skips this group), and the trace sink, in exactly
	// the closure engine's order: bounds check, record, data move.
	opLdGF32
	opLdGF64
	opLdGI64
	opLdGI32 // norm re-widens like normInt(kind, int64(b.I32[i]))
	opStGF32 // b = source register
	opStGF64
	opStGI64
	opStGI32

	// __local arrays (slot = local index) and private arrays (slot =
	// private index): bounds-checked, unrecorded, Value-typed storage.
	opLdLI
	opLdLF
	opStLI
	opStLF
	opLdPI
	opLdPF
	opStPI
	opStPF

	// __local scalars: wg.locals[slot][0].
	opLdLSI
	opLdLSF
	opStLSI // a = source register
	opStLSF

	// Atomics (norm = atomicOp, a = operand register or -1, dst = old).
	opAtomicL // slot = local index
	opAtomicG // slot = parameter slot; kernel is pinned sequential anyway

	// nOpcodes sizes the opcode n-gram profiler tables (opprof.go).
	nOpcodes
)

// opNames names every opcode for profiler dumps and the superinstruction
// miner (names are matched by cmd/dopia-superopt, so they are part of
// the mining pipeline's interchange format).
var opNames = [nOpcodes]string{
	opNop: "Nop", opJmp: "Jmp", opJmpZI: "JmpZI", opJmpNZI: "JmpNZI",
	opJmpZF: "JmpZF", opJmpNZF: "JmpNZF", opJCmpI: "JCmpI", opJCmpF: "JCmpF",
	opRet: "Ret", opStatInt: "StatInt", opStatFloat: "StatFloat",
	opChkDiv0: "ChkDiv0", opChkAtomG: "ChkAtomG",
	opConstI: "ConstI", opConstF: "ConstF", opMovI: "MovI", opMovF: "MovF",
	opI2F: "I2F", opF2I: "F2I",
	opAddI: "AddI", opSubI: "SubI", opMulI: "MulI", opMulAddI: "MulAddI",
	opDivI: "DivI", opDivU: "DivU", opRemI: "RemI", opRemU: "RemU",
	opShlI: "ShlI", opShrI: "ShrI", opShrU: "ShrU", opAndI: "AndI",
	opOrI: "OrI", opXorI: "XorI", opNegI: "NegI", opBitNotI: "BitNotI",
	opIncDecI: "IncDecI", opStepI: "StepI", opCmpI: "CmpI", opNotI: "NotI",
	opNotF: "NotF", opMinMaxI: "MinMaxI", opAbsI: "AbsI",
	opAddF: "AddF", opSubF: "SubF", opMulF: "MulF", opDivF: "DivF",
	opFMAAF32: "FMAAF32", opNegF: "NegF", opIncDecF: "IncDecF",
	opStepF: "StepF", opCmpF: "CmpF", opMinMaxF: "MinMaxF",
	opMath1: "Math1", opMath2: "Math2",
	opFMALd2F32: "FMALd2F32", opIncJCmpI: "IncJCmpI",
	opFMALd2MAF32: "FMALd2MAF32", opFMALoopF32: "FMALoopF32",
	opWISta: "WISta", opWIDyn: "WIDyn",
	opLdGF32: "LdGF32", opLdGF64: "LdGF64", opLdGI64: "LdGI64",
	opLdGI32: "LdGI32", opStGF32: "StGF32", opStGF64: "StGF64",
	opStGI64: "StGI64", opStGI32: "StGI32",
	opLdLI: "LdLI", opLdLF: "LdLF", opStLI: "StLI", opStLF: "StLF",
	opLdPI: "LdPI", opLdPF: "LdPF", opStPI: "StPI", opStPF: "StPF",
	opLdLSI: "LdLSI", opLdLSF: "LdLSF", opStLSI: "StLSI", opStLSF: "StLSF",
	opAtomicL: "AtomicL", opAtomicG: "AtomicG",
}

// opName returns the profiler/miner name of an opcode.
func opName(op opcode) string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("Op%d", int(op))
}

// KnownOpName reports whether name is a dispatchable opcode name as it
// appears in OpProfile dumps. cmd/dopia-superopt validates mined
// sequences against it before emitting code that references op<Name>
// identifiers.
func KnownOpName(name string) bool {
	for _, n := range opNames {
		if n != "" && n == name {
			return true
		}
	}
	return false
}

// norm codes for integer results (opcode-specific interpretation).
const (
	normNone uint8 = iota // keep 64-bit pattern (long/ulong)
	normI32               // int64(int32(v))
	normU32               // int64(uint32(v))
	normBool              // v != 0
	normF32               // float64(float32(v)) — float ops/moves only
)

// conversion flag bits for opI2F (kept separate from norm codes).
const (
	convRound32  uint8 = 1 << 0 // round result to float32
	convUnsigned uint8 = 1 << 1 // source is ulong: convert via uint64
)

// comparison codes (norm field of opCmpI/opCmpF/opJCmpI/opJCmpF).
const (
	cmpEq uint8 = iota
	cmpNe
	cmpLt
	cmpGt
	cmpLe
	cmpGe
	cmpU uint8 = 8 // unsigned flag, or-ed onto lt/gt/le/ge
)

// work-item function codes (norm field of opWISta/opWIDyn).
const (
	wiGlobalID uint8 = iota
	wiLocalID
	wiGroupID
	wiGlobalSize
	wiLocalSize
	wiNumGroups
	wiGlobalOffset
	wiWorkDim
)

// instr is one VM instruction. dst/a/b/c index the register files; slot
// and site carry static memory metadata; imm/fimm hold immediates, jump
// targets, shift masks, and function-table indices; pos is the source
// position reported by runtime traps.
type instr struct {
	op   opcode
	norm uint8
	dst  int32
	a    int32
	b    int32
	c    int32
	slot int32
	site int32
	imm  int64
	fimm float64
	pos  clc.Pos
	pos2 clc.Pos // second trap position (fused two-load instructions)
}

// paramCopy moves one scalar kernel argument into its variable register
// at work-item start (the closure engine's copy(slots, paramVals)).
type paramCopy struct {
	slot int32
	reg  int32
}

// bcProgram is a kernel lowered to bytecode: one instruction array per
// barrier-delimited segment plus the register-file sizes and the scalar
// parameter copy plan. Like compiled closure forms, a bcProgram is
// immutable after lowering and holds no execution state, so it is shared
// freely across executors and shard workers.
type bcProgram struct {
	segments [][]instr
	numI     int // int register file size (variables + temporaries)
	numF     int // float register file size
	paramI   []paramCopy
	paramF   []paramCopy
	math1    []func(float64) float64
	math2    []func(a, b float64) float64

	// lanePin, when non-empty, pins the program to lane width 1 with
	// this reason (atomics, barrier-divergent control flow, intra-group
	// local-memory dependence). Computed once at lowering time by
	// scanLanePin.
	lanePin string

	// loadSlots/storeSlots are bitmasks of the parameter slots the
	// program loads from / stores to, gathered by scanLanePin. The
	// launch-time lane resolution pins the program to width 1 when a
	// stored buffer is also loaded (by slot or by aliased binding):
	// such a kernel can carry an intra-group read-after-write
	// dependence whose sequential order is observable.
	loadSlots  uint64
	storeSlots uint64
}

// normReg normalizes an integer result (normInt by code).
func normReg(n uint8, v int64) int64 {
	switch n {
	case normI32:
		return int64(int32(v))
	case normU32:
		return int64(uint32(v))
	case normBool:
		if v != 0 {
			return 1
		}
		return 0
	}
	return v
}

// normFReg rounds a float result to float32 when requested (normFloat).
func normFReg(n uint8, v float64) float64 {
	if n == normF32 {
		return float64(float32(v))
	}
	return v
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// cmpIRegs applies an integer comparison code.
func cmpIRegs(code uint8, a, b int64) bool {
	if code&cmpU != 0 {
		return cmpURegs(code, a, b)
	}
	return cmpSRegs(code, a, b)
}

// cmpSRegs applies a signed integer comparison code (code has cmpU
// clear). Separate from cmpIRegs so the dispatch loop's conditional
// jumps — overwhelmingly signed loop compares — can inline it.
func cmpSRegs(code uint8, a, b int64) bool {
	switch code {
	case cmpEq:
		return a == b
	case cmpNe:
		return a != b
	case cmpLt:
		return a < b
	case cmpGt:
		return a > b
	case cmpLe:
		return a <= b
	default: // cmpGe
		return a >= b
	}
}

// cmpURegs applies an unsigned integer comparison code (code has cmpU set).
func cmpURegs(code uint8, a, b int64) bool {
	ua, ub := uint64(a), uint64(b)
	switch code &^ cmpU {
	case cmpLt:
		return ua < ub
	case cmpGt:
		return ua > ub
	case cmpLe:
		return ua <= ub
	default: // cmpGe
		return ua >= ub
	}
}

// cmpFRegs applies a float comparison code (IEEE semantics: every
// comparison with NaN is false, exactly like the closure engine's Go
// comparisons).
func cmpFRegs(code uint8, a, b float64) bool {
	switch code {
	case cmpEq:
		return a == b
	case cmpNe:
		return a != b
	case cmpLt:
		return a < b
	case cmpGt:
		return a > b
	case cmpLe:
		return a <= b
	default: // cmpGe
		return a >= b
	}
}

// recordG updates the sampled classifier and the trace for a
// global-memory access from the VM; the aggregate load/store counters
// are batched in execBC-local accumulators and flushed on return (also
// during trap unwinding, so counters at a fault are bit-identical to
// the closure engine's immediate increments).
func recordG(e *env, st *siteState, b *Buffer, idx, es int64, write bool) {
	addr := b.Base + idx*es
	if e.classify {
		st.recordAccess(addr, es, e.wi)
	}
	if e.sink != nil {
		e.sink.Access(addr, es, write)
	}
}

// wiQuery evaluates a work-item builtin for dimension d.
func wiQuery(e *env, code uint8, d int) int64 {
	switch code {
	case wiGlobalID:
		return e.gid[d]
	case wiLocalID:
		return e.lid[d]
	case wiGroupID:
		return e.grp[d]
	case wiGlobalSize:
		return int64(e.nd.Global[d])
	case wiLocalSize:
		return int64(e.nd.Local[d])
	case wiNumGroups:
		return int64(e.nd.NumGroups()[d])
	case wiGlobalOffset:
		return int64(e.nd.Offset[d])
	}
	return int64(e.nd.Dims) // wiWorkDim
}

// execBC runs one bytecode segment for the current work-item. It returns
// true when the work-item executed a return statement. Runtime errors
// (bounds, division by zero) panic with *runtimeError exactly like the
// closure engine and are recovered at the runGroup boundary.
func (rs *runState) execBC(code []instr, e *env, ir []int64, fr []float64, prog *bcProgram) bool {
	stats := e.stats
	// Loop-invariant env fields: one execBC call runs one work-item, so
	// the classifier gate, trace sink and linear work-item id are fixed
	// for the whole dispatch loop.
	classify := e.classify
	sink := e.sink
	wi := e.wi
	// Hoisted slice headers: e escapes (sink is an interface), so
	// without locals the compiler reloads these on every access.
	sites := stats.sites
	bufs := e.bufs
	// Aggregate counters are batched in locals and flushed on return.
	// The deferred flush also runs while a runtime trap unwinds, so the
	// counters observed at a fault are bit-identical to the closure
	// engine's immediate increments.
	var aluI, aluF, loads, loadB, stores, storeB int64
	defer func() {
		stats.AluInt += aluI
		stats.AluFloat += aluF
		stats.Loads += loads
		stats.LoadBytes += loadB
		stats.Stores += stores
		stats.StoreBytes += storeB
	}()
	// Opcode n-gram profiling (off on the hot path: one predictable
	// branch per dispatch). History is per execBC call, so n-grams never
	// span work-items.
	profiling := opProfOn
	var prof1, prof2 int32 = -1, -1
	pc := 0
	for pc < len(code) {
		in := &code[pc]
		pc++
		if profiling {
			opProfNote(prof2, prof1, int32(in.op))
			prof2, prof1 = prof1, int32(in.op)
		}
		switch in.op {
		case opNop:

		// --- control flow ---
		case opJmp:
			pc = int(in.imm)
		case opJmpZI:
			if ir[in.a] == 0 {
				pc = int(in.imm)
			}
		case opJmpNZI:
			if ir[in.a] != 0 {
				pc = int(in.imm)
			}
		case opJmpZF:
			if fr[in.a] == 0 {
				pc = int(in.imm)
			}
		case opJmpNZF:
			if fr[in.a] != 0 {
				pc = int(in.imm)
			}
		case opJCmpI:
			aluI += int64(in.c)
			var take bool
			if in.norm&cmpU != 0 {
				take = cmpURegs(in.norm, ir[in.a], ir[in.b])
			} else {
				take = cmpSRegs(in.norm, ir[in.a], ir[in.b])
			}
			if !take {
				pc = int(in.imm)
			}
		case opJCmpF:
			aluF += int64(in.c)
			if !cmpFRegs(in.norm, fr[in.a], fr[in.b]) {
				pc = int(in.imm)
			}
		case opRet:
			return true

		case opStatInt:
			aluI += in.imm
		case opStatFloat:
			aluF += in.imm
		case opChkDiv0:
			if ir[in.a] == 0 {
				if in.imm != 0 {
					rtErr(in.pos, "integer modulo by zero")
				}
				rtErr(in.pos, "integer division by zero")
			}
		case opChkAtomG:
			if bufs[in.slot].Len() == 0 {
				rtErr(in.pos, "atomic on empty buffer")
			}

		// --- constants, moves, conversions ---
		case opConstI:
			ir[in.dst] = in.imm
		case opConstF:
			fr[in.dst] = in.fimm
		case opMovI:
			ir[in.dst] = normReg(in.norm, ir[in.a])
		case opMovF:
			fr[in.dst] = normFReg(in.norm, fr[in.a])
		case opI2F:
			var v float64
			if in.norm&convUnsigned != 0 {
				v = float64(uint64(ir[in.a]))
			} else {
				v = float64(ir[in.a])
			}
			if in.norm&convRound32 != 0 {
				v = float64(float32(v))
			}
			fr[in.dst] = v
		case opF2I:
			ir[in.dst] = normReg(in.norm, int64(fr[in.a]))

		// --- integer ALU ---
		case opAddI:
			aluI += int64(in.c)
			ir[in.dst] = normReg(in.norm, ir[in.a]+ir[in.b])
		case opSubI:
			aluI += int64(in.c)
			ir[in.dst] = normReg(in.norm, ir[in.a]-ir[in.b])
		case opMulI:
			aluI += int64(in.c)
			ir[in.dst] = normReg(in.norm, ir[in.a]*ir[in.b])
		case opMulAddI:
			aluI += 2
			v := int64(int32(ir[in.a] * ir[in.b]))
			ir[in.dst] = int64(int32(v + ir[in.c]))
		case opDivI:
			aluI += int64(in.c)
			rv := ir[in.b]
			if rv == 0 {
				rtErr(in.pos, "integer division by zero")
			}
			ir[in.dst] = normReg(in.norm, ir[in.a]/rv)
		case opDivU:
			aluI += int64(in.c)
			rv := ir[in.b]
			if rv == 0 {
				rtErr(in.pos, "integer division by zero")
			}
			ir[in.dst] = normReg(in.norm, int64(uint64(ir[in.a])/uint64(rv)))
		case opRemI:
			aluI += int64(in.c)
			rv := ir[in.b]
			if rv == 0 {
				rtErr(in.pos, "integer modulo by zero")
			}
			ir[in.dst] = normReg(in.norm, ir[in.a]%rv)
		case opRemU:
			aluI += int64(in.c)
			rv := ir[in.b]
			if rv == 0 {
				rtErr(in.pos, "integer modulo by zero")
			}
			ir[in.dst] = normReg(in.norm, int64(uint64(ir[in.a])%uint64(rv)))
		case opShlI:
			aluI += int64(in.c)
			ir[in.dst] = normReg(in.norm, ir[in.a]<<uint64(ir[in.b]&in.imm))
		case opShrI:
			aluI += int64(in.c)
			ir[in.dst] = normReg(in.norm, ir[in.a]>>uint64(ir[in.b]&in.imm))
		case opShrU:
			aluI += int64(in.c)
			ir[in.dst] = normReg(in.norm, int64(uint64(ir[in.a])>>uint64(ir[in.b]&in.imm)))
		case opAndI:
			aluI += int64(in.c)
			ir[in.dst] = normReg(in.norm, ir[in.a]&ir[in.b])
		case opOrI:
			aluI += int64(in.c)
			ir[in.dst] = normReg(in.norm, ir[in.a]|ir[in.b])
		case opXorI:
			aluI += int64(in.c)
			ir[in.dst] = normReg(in.norm, ir[in.a]^ir[in.b])
		case opNegI:
			aluI += int64(in.c)
			ir[in.dst] = normReg(in.norm, -ir[in.a])
		case opBitNotI:
			aluI += int64(in.c)
			ir[in.dst] = normReg(in.norm, ^ir[in.a])
		case opIncDecI:
			aluI++
			ir[in.dst] = normReg(in.norm, ir[in.dst]+in.imm)
		case opStepI:
			ir[in.dst] = normReg(in.norm, ir[in.a]+in.imm)
		case opCmpI:
			aluI += int64(in.c)
			ir[in.dst] = b2i(cmpIRegs(in.norm, ir[in.a], ir[in.b]))
		case opNotI:
			aluI += int64(in.c)
			ir[in.dst] = b2i(ir[in.a] == 0)
		case opNotF:
			aluI += int64(in.c)
			ir[in.dst] = b2i(fr[in.a] == 0)
		case opMinMaxI:
			aluI += int64(in.c)
			x, y := ir[in.a], ir[in.b]
			if (x < y) == (in.norm != 0) {
				ir[in.dst] = x
			} else {
				ir[in.dst] = y
			}
		case opAbsI:
			aluI += int64(in.c)
			v := ir[in.a]
			if v < 0 {
				v = -v
			}
			ir[in.dst] = v

		// --- float ALU ---
		case opAddF:
			aluF += int64(in.c)
			fr[in.dst] = normFReg(in.norm, fr[in.a]+fr[in.b])
		case opSubF:
			aluF += int64(in.c)
			fr[in.dst] = normFReg(in.norm, fr[in.a]-fr[in.b])
		case opMulF:
			aluF += int64(in.c)
			fr[in.dst] = normFReg(in.norm, fr[in.a]*fr[in.b])
		case opDivF:
			aluF += int64(in.c)
			fr[in.dst] = normFReg(in.norm, fr[in.a]/fr[in.b])
		case opFMAAF32:
			aluF += int64(in.norm)
			fr[in.dst] = float64(float32(fr[in.dst] + float64(float32(fr[in.a]*fr[in.b]))))
		case opNegF:
			aluF += int64(in.c)
			fr[in.dst] = normFReg(in.norm, -fr[in.a])
		case opIncDecF:
			aluF++
			fr[in.dst] = normFReg(in.norm, fr[in.dst]+in.fimm)
		case opStepF:
			fr[in.dst] = normFReg(in.norm, fr[in.a]+in.fimm)
		case opCmpF:
			aluF += int64(in.c)
			ir[in.dst] = b2i(cmpFRegs(in.norm, fr[in.a], fr[in.b]))
		case opMinMaxF:
			aluF += int64(in.c)
			x, y := fr[in.a], fr[in.b]
			if (x < y) == (in.norm != 0) {
				fr[in.dst] = x
			} else {
				fr[in.dst] = y
			}
		case opMath1:
			aluF += int64(in.c)
			fr[in.dst] = float64(float32(prog.math1[in.imm](fr[in.a])))
		case opMath2:
			aluF += int64(in.c)
			fr[in.dst] = float64(float32(prog.math2[in.imm](fr[in.a], fr[in.b])))
		case opFMALd2F32:
			// acc += A[i]*X[j] over float32 with both operands global
			// f32 loads: the closure engine counts the add, reads the
			// accumulator, counts the multiply, then loads A and X in
			// order — so counting both up front, then recording the two
			// loads, preserves every observable ordering (both index
			// expressions are pure by the fusion rule).
			aluF += 2
			ba := bufs[in.slot]
			ia := ir[in.a]
			if uint64(ia) >= uint64(len(ba.F32)) {
				rtErr(in.pos, "index %d out of range [0,%d)", ia, len(ba.F32))
			}
			loads++
			loadB += 4
			if classify {
				// Hand-inlined recordAccess fast path (repeat access by
				// the current work-item); the general path handles first
				// touches and work-item changes.
				st := &sites[in.site]
				addr := ba.Base + ia*4
				if st.prevValid && st.prevWI == wi && st.seenThisWI == wi {
					st.count++
					st.bytes += 4
					st.iter.Observe((addr - st.prevAddr) >> 2)
					st.prevAddr = addr
				} else {
					st.recordAccessSlow(addr, 4, wi)
				}
			}
			if sink != nil {
				sink.Access(ba.Base+ia*4, 4, false)
			}
			bx := bufs[int32(in.imm>>32)]
			ix := ir[in.b]
			if uint64(ix) >= uint64(len(bx.F32)) {
				rtErr(in.pos2, "index %d out of range [0,%d)", ix, len(bx.F32))
			}
			loads++
			loadB += 4
			if classify {
				st := &sites[int32(uint32(in.imm))]
				addr := bx.Base + ix*4
				if st.prevValid && st.prevWI == wi && st.seenThisWI == wi {
					st.count++
					st.bytes += 4
					st.iter.Observe((addr - st.prevAddr) >> 2)
					st.prevAddr = addr
				} else {
					st.recordAccessSlow(addr, 4, wi)
				}
			}
			if sink != nil {
				sink.Access(bx.Base+ix*4, 4, false)
			}
			// Bit-identical to the closure engine's
			//   f64(f32(acc + f64(f32(f64(a)*f64(x)))))
			// computed in float32 throughout: the f64 product of two f32
			// values is exact (48 <= 53 mantissa bits), so rounding it to
			// f32 is the correctly-rounded f32 multiply; and rounding the
			// f64 sum of two f32 values to f32 equals the direct f32 add
			// (double rounding is innocuous because 53 >= 2*24+2). The
			// explicit float32 conversion around the product is a fusion
			// barrier: the Go spec only permits fusing x*y+z into a
			// hardware FMA when no explicit rounding intervenes.
			fr[in.dst] = float64(float32(fr[in.dst]) + float32(ba.F32[ia]*bx.F32[ix]))
		case opFMALd2MAF32:
			// opFMALd2F32 with the A index's multiply-add absorbed:
			// ia = n32(n32(ir[a]*ir[b]) + ir[c]), exactly opMulAddI's
			// arithmetic, with its AluInt += 2 counted up front — at
			// every trap point the counter totals match the unfused
			// sequence (and the closure engine) because the multiply-add
			// cannot trap and X's index is statistics-free.
			aluF += 2
			aluI += 2
			v := int64(int32(ir[in.a] * ir[in.b]))
			ia := int64(int32(v + ir[in.c]))
			ba := bufs[in.slot]
			if uint64(ia) >= uint64(len(ba.F32)) {
				rtErr(in.pos, "index %d out of range [0,%d)", ia, len(ba.F32))
			}
			loads++
			loadB += 4
			if classify {
				st := &sites[in.site]
				addr := ba.Base + ia*4
				if st.prevValid && st.prevWI == wi && st.seenThisWI == wi {
					st.count++
					st.bytes += 4
					st.iter.Observe((addr - st.prevAddr) >> 2)
					st.prevAddr = addr
				} else {
					st.recordAccessSlow(addr, 4, wi)
				}
			}
			if sink != nil {
				sink.Access(ba.Base+ia*4, 4, false)
			}
			bx := bufs[int32(in.imm>>32)&0xFFFF]
			ix := ir[int32(in.imm>>48)]
			if uint64(ix) >= uint64(len(bx.F32)) {
				rtErr(in.pos2, "index %d out of range [0,%d)", ix, len(bx.F32))
			}
			loads++
			loadB += 4
			if classify {
				st := &sites[int32(uint32(in.imm))]
				addr := bx.Base + ix*4
				if st.prevValid && st.prevWI == wi && st.seenThisWI == wi {
					st.count++
					st.bytes += 4
					st.iter.Observe((addr - st.prevAddr) >> 2)
					st.prevAddr = addr
				} else {
					st.recordAccessSlow(addr, 4, wi)
				}
			}
			if sink != nil {
				sink.Access(bx.Base+ix*4, 4, false)
			}
			// Same float32 arithmetic as opFMALd2F32 (see above).
			fr[in.dst] = float64(float32(fr[in.dst]) + float32(ba.F32[ia]*bx.F32[ix]))
		case opIncJCmpI:
			// Fused loop back-edge: post inc/dec of an int variable
			// (AluInt++), then the loop condition compare (AluInt++),
			// then the jump back to the body when it holds.
			aluI += 2
			ir[in.dst] = normReg(in.norm>>4, ir[in.dst]+int64(in.c))
			cc := in.norm & 0xf
			var take bool
			if cc&cmpU != 0 {
				take = cmpURegs(cc, ir[in.a], ir[in.b])
			} else {
				take = cmpSRegs(cc, ir[in.a], ir[in.b])
			}
			if take {
				pc = int(in.imm)
			}

		case opFMALoopF32:
			// Machine-mined fused loop: the whole 1-2 FMA body plus the
			// opIncJCmpI back edge runs in runFMALoop with buffers, site
			// state, and classifier runs hoisted out of the dispatch
			// loop. Counter deltas merge into the batched locals so the
			// deferred flush keeps trap-time totals exact.
			exitPC, c, trap := rs.runFMALoop(code, pc-1, ir, fr, bufs, sites, classify, sink, wi)
			aluI += c.aluI
			aluF += c.aluF
			loads += c.loads
			loadB += c.loadB
			if trap != nil {
				rtErr(trap.pos, "index %d out of range [0,%d)", trap.idx, trap.n)
			}
			pc = exitPC

		// --- work-item queries ---
		case opWISta:
			ir[in.dst] = wiQuery(e, in.norm, int(in.imm))
		case opWIDyn:
			ir[in.dst] = wiQuery(e, in.norm, int(ir[in.a]&3))

		// --- global memory ---
		case opLdGF32:
			b := bufs[in.slot]
			i := ir[in.a]
			if uint64(i) >= uint64(len(b.F32)) {
				rtErr(in.pos, "index %d out of range [0,%d)", i, len(b.F32))
			}
			loads++
			loadB += 4
			recordG(e, &sites[in.site], b, i, 4, false)
			fr[in.dst] = float64(b.F32[i])
		case opLdGF64:
			b := bufs[in.slot]
			i := ir[in.a]
			if uint64(i) >= uint64(len(b.F64)) {
				rtErr(in.pos, "index %d out of range [0,%d)", i, len(b.F64))
			}
			loads++
			loadB += 8
			recordG(e, &sites[in.site], b, i, 8, false)
			fr[in.dst] = b.F64[i]
		case opLdGI64:
			b := bufs[in.slot]
			i := ir[in.a]
			if uint64(i) >= uint64(len(b.I64)) {
				rtErr(in.pos, "index %d out of range [0,%d)", i, len(b.I64))
			}
			loads++
			loadB += 8
			recordG(e, &sites[in.site], b, i, 8, false)
			ir[in.dst] = b.I64[i]
		case opLdGI32:
			b := bufs[in.slot]
			i := ir[in.a]
			if uint64(i) >= uint64(len(b.I32)) {
				rtErr(in.pos, "index %d out of range [0,%d)", i, len(b.I32))
			}
			loads++
			loadB += 4
			recordG(e, &sites[in.site], b, i, 4, false)
			ir[in.dst] = normReg(in.norm, int64(b.I32[i]))
		case opStGF32:
			b := bufs[in.slot]
			i := ir[in.a]
			if uint64(i) >= uint64(len(b.F32)) {
				rtErr(in.pos, "index %d out of range [0,%d)", i, len(b.F32))
			}
			stores++
			storeB += 4
			recordG(e, &sites[in.site], b, i, 4, true)
			b.F32[i] = float32(fr[in.b])
		case opStGF64:
			b := bufs[in.slot]
			i := ir[in.a]
			if uint64(i) >= uint64(len(b.F64)) {
				rtErr(in.pos, "index %d out of range [0,%d)", i, len(b.F64))
			}
			stores++
			storeB += 8
			recordG(e, &sites[in.site], b, i, 8, true)
			b.F64[i] = fr[in.b]
		case opStGI64:
			b := bufs[in.slot]
			i := ir[in.a]
			if uint64(i) >= uint64(len(b.I64)) {
				rtErr(in.pos, "index %d out of range [0,%d)", i, len(b.I64))
			}
			stores++
			storeB += 8
			recordG(e, &sites[in.site], b, i, 8, true)
			b.I64[i] = ir[in.b]
		case opStGI32:
			b := bufs[in.slot]
			i := ir[in.a]
			if uint64(i) >= uint64(len(b.I32)) {
				rtErr(in.pos, "index %d out of range [0,%d)", i, len(b.I32))
			}
			stores++
			storeB += 4
			recordG(e, &sites[in.site], b, i, 4, true)
			b.I32[i] = int32(ir[in.b])

		// --- __local arrays ---
		case opLdLI:
			arr := e.wg.locals[in.slot]
			i := ir[in.a]
			if uint64(i) >= uint64(len(arr)) {
				rtErr(in.pos, "local index %d out of range [0,%d)", i, len(arr))
			}
			ir[in.dst] = arr[i].I
		case opLdLF:
			arr := e.wg.locals[in.slot]
			i := ir[in.a]
			if uint64(i) >= uint64(len(arr)) {
				rtErr(in.pos, "local index %d out of range [0,%d)", i, len(arr))
			}
			fr[in.dst] = arr[i].F
		case opStLI:
			arr := e.wg.locals[in.slot]
			i := ir[in.a]
			if uint64(i) >= uint64(len(arr)) {
				rtErr(in.pos, "local index %d out of range [0,%d)", i, len(arr))
			}
			arr[i] = Value{I: ir[in.b]}
		case opStLF:
			arr := e.wg.locals[in.slot]
			i := ir[in.a]
			if uint64(i) >= uint64(len(arr)) {
				rtErr(in.pos, "local index %d out of range [0,%d)", i, len(arr))
			}
			arr[i] = Value{F: fr[in.b]}

		// --- private arrays ---
		case opLdPI:
			arr := e.priv[in.slot]
			i := ir[in.a]
			if uint64(i) >= uint64(len(arr)) {
				rtErr(in.pos, "private index %d out of range [0,%d)", i, len(arr))
			}
			ir[in.dst] = arr[i].I
		case opLdPF:
			arr := e.priv[in.slot]
			i := ir[in.a]
			if uint64(i) >= uint64(len(arr)) {
				rtErr(in.pos, "private index %d out of range [0,%d)", i, len(arr))
			}
			fr[in.dst] = arr[i].F
		case opStPI:
			arr := e.priv[in.slot]
			i := ir[in.a]
			if uint64(i) >= uint64(len(arr)) {
				rtErr(in.pos, "private index %d out of range [0,%d)", i, len(arr))
			}
			arr[i] = Value{I: ir[in.b]}
		case opStPF:
			arr := e.priv[in.slot]
			i := ir[in.a]
			if uint64(i) >= uint64(len(arr)) {
				rtErr(in.pos, "private index %d out of range [0,%d)", i, len(arr))
			}
			arr[i] = Value{F: fr[in.b]}

		// --- __local scalars ---
		case opLdLSI:
			ir[in.dst] = e.wg.locals[in.slot][0].I
		case opLdLSF:
			fr[in.dst] = e.wg.locals[in.slot][0].F
		case opStLSI:
			e.wg.locals[in.slot][0] = Value{I: ir[in.a]}
		case opStLSF:
			e.wg.locals[in.slot][0] = Value{F: fr[in.a]}

		// --- atomics ---
		case opAtomicL:
			aluI += int64(in.c)
			arr := e.wg.locals[in.slot]
			old := arr[0].I
			arr[0] = Value{I: atomicApply(atomicOp(in.norm), old, in, ir)}
			ir[in.dst] = old
		case opAtomicG:
			aluI += int64(in.c)
			b := bufs[in.slot]
			if b.Len() == 0 {
				rtErr(in.pos, "atomic on empty buffer")
			}
			var old int64
			if b.I32 != nil {
				old = int64(b.I32[0])
			} else {
				old = b.I64[0]
			}
			nv := atomicApply(atomicOp(in.norm), old, in, ir)
			if b.I32 != nil {
				b.I32[0] = int32(nv)
			} else {
				b.I64[0] = nv
			}
			ir[in.dst] = old

		default:
			rtErr(in.pos, "bytecode: invalid opcode %d", in.op)
		}
	}
	return false
}

// atomicApply computes the new value of an atomic read-modify-write,
// mirroring the closure engine's pre-resolved operation table.
func atomicApply(op atomicOp, old int64, in *instr, ir []int64) int64 {
	switch op {
	case atomInc:
		return old + 1
	case atomDec:
		return old - 1
	case atomAdd:
		return old + ir[in.a]
	case atomSub:
		return old - ir[in.a]
	case atomMin:
		if v := ir[in.a]; v < old {
			return v
		}
		return old
	case atomMax:
		if v := ir[in.a]; v > old {
			return v
		}
		return old
	default: // atomXchg
		return ir[in.a]
	}
}

// runGroupBC executes one work-group on the bytecode engine. It mirrors
// the closure engine's runGroup loop exactly: same segment/work-item
// iteration order, same scratch reuse, same panic containment, same
// statistics, and the same per-group sampling decision.
func (rs *runState) runGroupBC(linear int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if re, ok := r.(*runtimeError); ok {
				err = faults.Wrap(faults.StageExec,
					fmt.Errorf("interp: kernel %s: %w", rs.ex.kernel.Name, re))
				return
			}
			err = &faults.PanicError{Stage: faults.StageExec, Value: r}
		}
	}()
	ex := rs.ex
	if ex.Check != nil {
		if cerr := ex.Check(); cerr != nil {
			return faults.Wrap(faults.StageExec, cerr)
		}
	}
	total := ex.nd.TotalGroups()
	if linear < 0 || linear >= total {
		return fmt.Errorf("interp: work-group %d out of range [0,%d)", linear, total)
	}
	prog := ex.prog
	coords := ex.nd.GroupCoords(linear)
	wgSize := ex.nd.GroupSize()

	for _, arr := range rs.wg.locals {
		for j := range arr {
			arr[j] = Value{}
		}
	}
	for i := 0; i < wgSize; i++ {
		rs.doneScratch[i] = false
	}

	e := &rs.env
	e.classify = groupClassified(rs.sampleThresh, rs.sampleSeed, linear)
	nd := &ex.nd
	l0, l1 := int64(nd.Local[0]), int64(nd.Local[1])
	baseWI := int64(linear) * int64(wgSize)

	rs.stats.GroupsRun++
	for segIdx, seg := range prog.segments {
		lin := 0
		for l2v := 0; l2v < nd.Local[2]; l2v++ {
			for l1v := 0; l1v < nd.Local[1]; l1v++ {
				for l0v := 0; l0v < nd.Local[0]; l0v++ {
					if rs.doneScratch[lin] {
						lin++
						continue
					}
					ir := rs.irScratch[lin]
					fr := rs.frScratch[lin]
					if segIdx == 0 {
						for _, pc := range prog.paramI {
							ir[pc.reg] = ex.paramVals[pc.slot].I
						}
						for _, pc := range prog.paramF {
							fr[pc.reg] = ex.paramVals[pc.slot].F
						}
						if rs.privScratch != nil {
							for _, arr := range rs.privScratch[lin] {
								for j := range arr {
									arr[j] = Value{}
								}
							}
						}
						rs.stats.ItemsRun++
					}
					if rs.privScratch != nil {
						e.priv = rs.privScratch[lin]
					}
					e.lid = [3]int64{int64(l0v), int64(l1v), int64(l2v)}
					e.grp = [3]int64{int64(coords[0]), int64(coords[1]), int64(coords[2])}
					e.gid = [3]int64{
						int64(nd.Offset[0]) + e.grp[0]*l0 + e.lid[0],
						int64(nd.Offset[1]) + e.grp[1]*l1 + e.lid[1],
						int64(nd.Offset[2]) + e.grp[2]*int64(nd.Local[2]) + e.lid[2],
					}
					e.wi = baseWI + int64(lin)
					if rs.execBC(seg, e, ir, fr, prog) {
						rs.doneScratch[lin] = true
					}
					lin++
				}
			}
		}
	}
	return nil
}
