package interp

import (
	"testing"

	"dopia/internal/clc"
)

// Tests for the less-traveled interpreter paths: 64-bit and double
// buffers, private arrays, do-while loops, compound assignments through
// memory, and increment/decrement of buffer elements.

func TestDoubleAndLongBuffers(t *testing.T) {
	src := `__kernel void dl(__global double* d, __global long* l, int n) {
        int i = get_global_id(0);
        if (i < n) {
            d[i] = d[i] * 2.0 + 0.5;
            l[i] = l[i] * 3 + 1;
        }
    }`
	ex := newExec(t, src, "dl")
	n := 16
	d := NewBuffer(clc.KindDouble, n)
	l := NewBuffer(clc.KindLong, n)
	for i := 0; i < n; i++ {
		d.F64[i] = float64(i)
		l.I64[i] = int64(i) << 40 // exercise the full 64-bit range
	}
	if err := ex.Bind(BufArg(d), BufArg(l), IntArg(int64(n))); err != nil {
		t.Fatal(err)
	}
	if err := ex.Launch(ND1(n, 8)); err != nil {
		t.Fatal(err)
	}
	if err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if d.F64[i] != float64(i)*2+0.5 {
			t.Fatalf("d[%d] = %v", i, d.F64[i])
		}
		if l.I64[i] != (int64(i)<<40)*3+1 {
			t.Fatalf("l[%d] = %d", i, l.I64[i])
		}
	}
	if d.ElemSize() != 8 || l.ElemSize() != 8 {
		t.Error("elem sizes wrong for 64-bit buffers")
	}
}

func TestPrivateArray(t *testing.T) {
	src := `__kernel void pa(__global float* out, int n) {
        int i = get_global_id(0);
        float window[4];
        for (int j = 0; j < 4; j++) {
            window[j] = (float)(i + j);
        }
        float s = 0.0f;
        for (int j = 0; j < 4; j++) {
            s += window[j];
        }
        if (i < n) { out[i] = s; }
    }`
	ex := newExec(t, src, "pa")
	n := 32
	out := NewFloatBuffer(n)
	if err := ex.Bind(BufArg(out), IntArg(int64(n))); err != nil {
		t.Fatal(err)
	}
	if err := ex.Launch(ND1(n, 8)); err != nil {
		t.Fatal(err)
	}
	if err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := float32(4*i + 6) // i + i+1 + i+2 + i+3
		if out.F32[i] != want {
			t.Fatalf("out[%d] = %v, want %v", i, out.F32[i], want)
		}
	}
}

func TestDoWhileAndBreakContinue(t *testing.T) {
	src := `__kernel void dw(__global int* out, int n) {
        int i = get_global_id(0);
        if (i >= n) return;
        int s = 0;
        int j = 0;
        do {
            j++;
            if (j == 3) continue;
            if (j > 6) break;
            s += j;
        } while (j < 100);
        out[i] = s;
    }`
	ex := newExec(t, src, "dw")
	out := NewIntBuffer(8)
	if err := ex.Bind(BufArg(out), IntArg(8)); err != nil {
		t.Fatal(err)
	}
	if err := ex.Launch(ND1(8, 8)); err != nil {
		t.Fatal(err)
	}
	if err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	// 1+2+4+5+6 = 18 (3 skipped, 7 breaks).
	for i := 0; i < 8; i++ {
		if out.I32[i] != 18 {
			t.Fatalf("out[%d] = %d, want 18", i, out.I32[i])
		}
	}
}

func TestCompoundAssignAndIncDecOnBuffer(t *testing.T) {
	src := `__kernel void ca(__global int* a, __global float* f, int n) {
        int i = get_global_id(0);
        if (i < n) {
            a[i] += 10;
            a[i] *= 2;
            a[i] -= 1;
            a[i] %= 100;
            f[i] /= 2.0f;
            a[i]++;
            --a[i];
            int old = a[i]++;
            a[i] += old;
        }
    }`
	ex := newExec(t, src, "ca")
	n := 8
	a := NewIntBuffer(n)
	f := NewFloatBuffer(n)
	for i := 0; i < n; i++ {
		a.I32[i] = int32(i)
		f.F32[i] = float32(i)
	}
	if err := ex.Bind(BufArg(a), BufArg(f), IntArg(int64(n))); err != nil {
		t.Fatal(err)
	}
	if err := ex.Launch(ND1(n, 8)); err != nil {
		t.Fatal(err)
	}
	if err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v := (int32(i)+10)*2 - 1
		v %= 100
		// a[i]++ then --a[i] cancel; then old=v, a[i]=v+1, a[i]+=v -> 2v+1.
		want := 2*v + 1
		if a.I32[i] != want {
			t.Fatalf("a[%d] = %d, want %d", i, a.I32[i], want)
		}
		if f.F32[i] != float32(i)/2 {
			t.Fatalf("f[%d] = %v", i, f.F32[i])
		}
	}
}

func TestLocalScalarSharing(t *testing.T) {
	// A __local scalar written by lane 0 and read by all lanes after a
	// barrier.
	src := `__kernel void ls(__global int* out) {
        __local int token;
        if (get_local_id(0) == 0) { token = get_group_id(0) * 100; }
        barrier(CLK_LOCAL_MEM_FENCE);
        out[get_global_id(0)] = token + get_local_id(0);
    }`
	ex := newExec(t, src, "ls")
	out := NewIntBuffer(16)
	if err := ex.Bind(BufArg(out)); err != nil {
		t.Fatal(err)
	}
	if err := ex.Launch(ND1(16, 8)); err != nil {
		t.Fatal(err)
	}
	if err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		want := int32(i/8*100 + i%8)
		if out.I32[i] != want {
			t.Fatalf("out[%d] = %d, want %d", i, out.I32[i], want)
		}
	}
}

func TestTernaryAndUnsigned(t *testing.T) {
	src := `__kernel void tu(__global int* out, uint u) {
        int i = get_global_id(0);
        if (i == 0) {
            out[0] = u > 0x7FFFFFFF ? 1 : 0;         // unsigned compare
            out[1] = (int)(u / 2u);                  // unsigned divide
            out[2] = (int)(u % 10u);
            uint big = 0xFFFFFFF0u;
            out[3] = (int)(big >> 4);                // logical shift
        }
    }`
	ex := newExec(t, src, "tu")
	out := NewIntBuffer(4)
	if err := ex.Bind(BufArg(out), IntArg(0x80000000)); err != nil {
		t.Fatal(err)
	}
	if err := ex.Launch(ND1(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	if out.I32[0] != 1 {
		t.Errorf("unsigned compare failed: %d", out.I32[0])
	}
	if out.I32[1] != 0x40000000 {
		t.Errorf("unsigned divide = %x", out.I32[1])
	}
	if out.I32[2] != int32(uint32(0x80000000)%10) {
		t.Errorf("unsigned mod = %d", out.I32[2])
	}
	if out.I32[3] != int32(uint32(0xFFFFFFF0)>>4) {
		t.Errorf("logical shift = %x", out.I32[3])
	}
}

func TestBufferHelpers(t *testing.T) {
	b := NewFloatBuffer(3)
	b.F32[1] = 5
	c := b.Clone()
	if !b.Equal(c) {
		t.Error("clone not equal")
	}
	c.F32[1] = 6
	if b.Equal(c) {
		t.Error("clone shares storage")
	}
	if b.Equal(NewIntBuffer(3)) {
		t.Error("kind mismatch must not be equal")
	}
	if b.Equal(NewFloatBuffer(4)) {
		t.Error("length mismatch must not be equal")
	}
	if b.Bytes() != 12 {
		t.Errorf("Bytes = %d", b.Bytes())
	}
	d := NewBuffer(clc.KindDouble, 2)
	l := NewBuffer(clc.KindLong, 2)
	d.F64[0] = 1
	l.I64[0] = 1
	if !d.Clone().Equal(d) || !l.Clone().Equal(l) {
		t.Error("64-bit clone/equal broken")
	}
}
