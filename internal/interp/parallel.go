package interp

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// This file implements the parallel ND-range execution engine. A run
// splits the work-group space into p contiguous shards; shard 0 runs on
// the calling goroutine directly against the Exec's statistics and trace
// sink, shards 1..p-1 run on a process-wide worker pool against private
// per-shard statistics (and trace logs). Because shards are contiguous,
// disjoint spans of work-groups — and a work-item never spans two
// work-groups — merging the per-shard statistics in shard order
// (RunStats.mergeFrom) reproduces the sequential run's counters, access
// patterns, and trace stream bit-for-bit. Output buffers need no merge:
// disjoint work-groups write disjoint elements in every data-parallel
// kernel this engine accepts (kernels with global-memory atomics are
// pinned to the sequential path).

// Sequential is the Parallelism value that forces the single-goroutine
// reference execution path.
const Sequential = 1

var (
	defaultPar     int
	defaultParOnce sync.Once
)

// DefaultParallelism returns the shard count used by Execs whose
// Parallelism field is zero: the DOPIA_PARALLELISM environment variable
// when set to a positive integer, else GOMAXPROCS. The environment is
// read once per process.
func DefaultParallelism() int {
	defaultParOnce.Do(func() {
		defaultPar = runtime.GOMAXPROCS(0)
		if s := os.Getenv("DOPIA_PARALLELISM"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n > 0 {
				defaultPar = n
			}
		}
	})
	return defaultPar
}

func (ex *Exec) parallelism() int {
	if ex.Parallelism > 0 {
		return ex.Parallelism
	}
	return DefaultParallelism()
}

// traceEvent is one recorded memory access of a shard worker.
type traceEvent struct {
	addr, size int64
	write      bool
}

// traceLog captures a shard's accesses so they can be replayed into the
// Exec's TraceSink in shard order at merge time, preserving the exact
// sequential event stream (shard 0 writes to the sink live).
type traceLog struct {
	events []traceEvent
}

func (l *traceLog) Access(addr, size int64, write bool) {
	l.events = append(l.events, traceEvent{addr, size, write})
}

// abortFlag is a cooperative cancellation flag shared by the shards of
// one run: the first shard to fail (or observe a Check error) sets it,
// and every other shard stops within one work-group quantum.
type abortFlag struct {
	b atomic.Bool
}

func (a *abortFlag) set()        { a.b.Store(true) }
func (a *abortFlag) isSet() bool { return a.b.Load() }
func (a *abortFlag) reset()      { a.b.Store(false) }

// shardTask is one unit of work handed to the pool: run a span of
// work-groups on a shard's runState. Tasks are owned by their Exec and
// reused across runs; done is buffered so pool workers never block.
type shardTask struct {
	rs           *runState
	start, count int
	err          error
	done         chan struct{}
}

// The process-wide shard worker pool. Shard tasks are leaves — they
// never submit further tasks — so a fixed pool of GOMAXPROCS workers
// cannot deadlock, and concurrent Execs (e.g. the scheduler's parallel
// config sweep) share the machine instead of oversubscribing it.
var (
	poolOnce sync.Once
	poolCh   chan *shardTask
)

func startPool() {
	poolOnce.Do(func() {
		poolCh = make(chan *shardTask)
		n := runtime.GOMAXPROCS(0)
		if n < 2 {
			n = 2
		}
		for i := 0; i < n; i++ {
			go poolWorker()
		}
	})
}

func poolWorker() {
	for t := range poolCh {
		t.err = t.rs.runSpanAborting(t.start, t.count)
		t.done <- struct{}{}
	}
}

// runSpanAborting runs count work-groups starting at start, polling the
// Exec's abort flag between groups. On error it raises the flag so the
// other shards of the run stop promptly. An aborted shard returns nil;
// the shard that failed reports the error.
func (rs *runState) runSpanAborting(start, count int) error {
	ex := rs.ex
	for g := start; g < start+count; g++ {
		if ex.abort.isSet() {
			return nil
		}
		if err := rs.runGroup(g); err != nil {
			ex.abort.set()
			return err
		}
	}
	return nil
}

// runSpan executes count work-groups starting at linear group id start,
// sharded across the executor's parallelism. Results are bit-identical
// to the sequential path for every shard count.
func (ex *Exec) runSpan(start, count int) error {
	if count <= 0 {
		return nil
	}
	p := ex.parallelism()
	if p > count {
		p = count
	}
	if p <= 1 || ex.ck.hasGlobalAtomic {
		rs := ex.seqState()
		for g := start; g < start+count; g++ {
			if err := rs.runGroup(g); err != nil {
				return err
			}
		}
		return nil
	}
	return ex.runSharded(start, count, p)
}

// runSharded partitions [start, start+count) into p contiguous shards.
// Shard i gets count/p groups plus one of the count%p remainder groups
// (lowest shards first), so shard sizes differ by at most one.
func (ex *Exec) runSharded(start, count, p int) error {
	base, rem := count/p, count%p
	shardLen := func(i int) int {
		if i < rem {
			return base + 1
		}
		return base
	}

	// Grow the worker and task scratch to p-1 entries; both are reused
	// across runs so a steady-state run allocates nothing here.
	for len(ex.workers) < p-1 {
		ex.workers = append(ex.workers, &runState{ex: ex, ownStats: &RunStats{}})
	}
	if cap(ex.tasks) < p-1 {
		ex.tasks = make([]shardTask, p-1)
	}
	ex.tasks = ex.tasks[:p-1]
	ex.abort.reset()
	startPool()

	off := start + shardLen(0)
	for i := 1; i < p; i++ {
		w := ex.workers[i-1]
		w.ownStats.resetFor(ex.ck)
		var sink TraceSink
		if ex.Sink != nil {
			if w.log == nil {
				w.log = &traceLog{}
			}
			w.log.events = w.log.events[:0]
			sink = w.log
		}
		w.prepare(w.ownStats, sink)
		t := &ex.tasks[i-1]
		if t.done == nil {
			t.done = make(chan struct{}, 1)
		}
		t.rs, t.start, t.count, t.err = w, off, shardLen(i), nil
		off += shardLen(i)
		poolCh <- t
	}

	// Shard 0 runs on the caller, directly into ex.stats and ex.Sink, so
	// the chain state (prevAddr/prevWI, lane firsts) continues across
	// repeated Run calls exactly as on the sequential path.
	err0 := ex.seqState().runSpanAborting(start, shardLen(0))

	// Join every shard before looking at errors: task memory is reused
	// on the next run, so no worker may still be touching it.
	for i := range ex.tasks {
		<-ex.tasks[i].done
	}
	if err0 != nil {
		return err0
	}
	for i := range ex.tasks {
		if ex.tasks[i].err != nil {
			return ex.tasks[i].err
		}
	}

	// Deterministic merge in shard order: statistics first, then the
	// trace replay, so the sink observes the exact sequential stream.
	for i := range ex.tasks {
		w := ex.tasks[i].rs
		ex.stats.mergeFrom(w.ownStats)
		if ex.Sink != nil {
			for _, ev := range w.log.events {
				ex.Sink.Access(ev.addr, ev.size, ev.write)
			}
		}
	}
	return nil
}
