package interp

import (
	"math"
	"testing"

	"dopia/internal/access"
	"dopia/internal/clc"
)

func compileKernelSrc(t *testing.T, src, name string) *clc.Kernel {
	t.Helper()
	prog, err := clc.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	k := prog.Kernel(name)
	if k == nil {
		t.Fatalf("kernel %q not found", name)
	}
	return k
}

func newExec(t *testing.T, src, name string) *Exec {
	t.Helper()
	ex, err := NewExec(compileKernelSrc(t, src, name))
	if err != nil {
		t.Fatalf("NewExec: %v", err)
	}
	return ex
}

const vaddSrc = `
__kernel void vadd(__global float* a, __global float* b, __global float* c, int n) {
    int i = get_global_id(0);
    if (i < n) {
        c[i] = a[i] + b[i];
    }
}`

func TestVectorAdd(t *testing.T) {
	ex := newExec(t, vaddSrc, "vadd")
	n := 64
	a := NewFloatBuffer(n)
	b := NewFloatBuffer(n)
	c := NewFloatBuffer(n)
	for i := 0; i < n; i++ {
		a.F32[i] = float32(i)
		b.F32[i] = float32(2 * i)
	}
	if err := ex.Bind(BufArg(a), BufArg(b), BufArg(c), IntArg(int64(n))); err != nil {
		t.Fatal(err)
	}
	if err := ex.Launch(ND1(n, 16)); err != nil {
		t.Fatal(err)
	}
	if err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if c.F32[i] != float32(3*i) {
			t.Fatalf("c[%d] = %v, want %v", i, c.F32[i], 3*i)
		}
	}
	p := ex.Stats()
	if p.ItemsRun != int64(n) || p.GroupsRun != 4 {
		t.Errorf("items=%d groups=%d", p.ItemsRun, p.GroupsRun)
	}
	if p.Loads != int64(2*n) || p.Stores != int64(n) {
		t.Errorf("loads=%d stores=%d, want %d/%d", p.Loads, p.Stores, 2*n, n)
	}
	if p.AluFloat != int64(n) { // one add per item
		t.Errorf("aluFloat=%d, want %d", p.AluFloat, n)
	}
}

const gesummvSrc = `
__kernel void gesummv(__global float* A, __global float* B,
                      __global float* x, __global float* y,
                      float alpha, float beta, int N)
{
    int i = get_global_id(0);
    if (i < N) {
        float tmp = 0.0f;
        float yv = 0.0f;
        for (int j = 0; j < N; j++) {
            tmp += A[i * N + j] * x[j];
            yv += B[i * N + j] * x[j];
        }
        y[i] = alpha * tmp + beta * yv;
    }
}`

func TestGesummvMatchesReference(t *testing.T) {
	n := 48
	ex := newExec(t, gesummvSrc, "gesummv")
	A := NewFloatBuffer(n * n)
	B := NewFloatBuffer(n * n)
	x := NewFloatBuffer(n)
	y := NewFloatBuffer(n)
	for i := 0; i < n*n; i++ {
		A.F32[i] = float32(i%7) * 0.5
		B.F32[i] = float32(i%5) * 0.25
	}
	for i := 0; i < n; i++ {
		x.F32[i] = float32(i%3) - 1
	}
	alpha, beta := float32(1.5), float32(0.5)
	if err := ex.Bind(BufArg(A), BufArg(B), BufArg(x), BufArg(y),
		FloatArg(float64(alpha)), FloatArg(float64(beta)), IntArg(int64(n))); err != nil {
		t.Fatal(err)
	}
	if err := ex.Launch(ND1(n, 16)); err != nil {
		t.Fatal(err)
	}
	if err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		var tmp, yv float32
		for j := 0; j < n; j++ {
			tmp += A.F32[i*n+j] * x.F32[j]
			yv += B.F32[i*n+j] * x.F32[j]
		}
		want := alpha*tmp + beta*yv
		if math.Abs(float64(y.F32[i]-want)) > 1e-3 {
			t.Fatalf("y[%d] = %v, want %v", i, y.F32[i], want)
		}
	}
}

func TestAccessPatternClassification(t *testing.T) {
	// A[i*N+j] within the j loop: continuous per iteration, stride N per
	// lane. x[j]: continuous per iteration, constant across lanes.
	n := 32
	ex := newExec(t, gesummvSrc, "gesummv")
	A := NewFloatBuffer(n * n)
	B := NewFloatBuffer(n * n)
	x := NewFloatBuffer(n)
	y := NewFloatBuffer(n)
	if err := ex.Bind(BufArg(A), BufArg(B), BufArg(x), BufArg(y),
		FloatArg(1), FloatArg(1), IntArg(int64(n))); err != nil {
		t.Fatal(err)
	}
	if err := ex.Launch(ND1(n, 8)); err != nil {
		t.Fatal(err)
	}
	if err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	p := ex.Stats()
	bySite := map[int]SiteProfile{}
	for _, s := range p.Sites {
		bySite[s.Site] = s
	}
	// Site 0: A[i*N+j] load. Site 1: x[j]. Site 2: B[..]. Site 3: x[j]. Site 4: y[i] store.
	if s := bySite[0]; s.IterPattern != access.Continuous {
		t.Errorf("A iter pattern = %v, want continuous", s.IterPattern)
	}
	if s := bySite[0]; s.LanePattern != access.Strided || s.LaneStride != int64(n) {
		t.Errorf("A lane pattern = %v stride %d, want strided %d", s.LanePattern, s.LaneStride, n)
	}
	if s := bySite[1]; s.IterPattern != access.Continuous {
		t.Errorf("x iter pattern = %v, want continuous", s.IterPattern)
	}
	if s := bySite[1]; s.LanePattern != access.Constant {
		t.Errorf("x lane pattern = %v, want constant", s.LanePattern)
	}
	if s := bySite[4]; !s.Write || s.LanePattern != access.Continuous {
		t.Errorf("y site: write=%v lane=%v, want write continuous", s.Write, s.LanePattern)
	}
}

const transposeSrc = `
__kernel void transp(__global float* in, __global float* out, int n) {
    int i = get_global_id(0);
    int j = get_global_id(1);
    if (i < n && j < n) {
        out[j * n + i] = in[i * n + j];
    }
}`

func Test2DTranspose(t *testing.T) {
	n := 24
	ex := newExec(t, transposeSrc, "transp")
	in := NewFloatBuffer(n * n)
	out := NewFloatBuffer(n * n)
	for i := range in.F32 {
		in.F32[i] = float32(i)
	}
	if err := ex.Bind(BufArg(in), BufArg(out), IntArg(int64(n))); err != nil {
		t.Fatal(err)
	}
	if err := ex.Launch(ND2(n, n, 8, 8)); err != nil {
		t.Fatal(err)
	}
	if err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if out.F32[j*n+i] != in.F32[i*n+j] {
				t.Fatalf("transpose wrong at (%d,%d)", i, j)
			}
		}
	}
}

const localWorklistSrc = `
__kernel void dynwl(__global int* out) {
    __local int wl[1];
    if (get_local_id(0) == 0) wl[0] = 0;
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int w = atomic_inc(wl); w < get_local_size(0); w = atomic_inc(wl)) {
        int idx = get_group_id(0) * get_local_size(0) + get_global_offset(0) + w;
        out[idx] = idx * 2;
    }
}`

func TestLocalWorklistAndBarrier(t *testing.T) {
	ex := newExec(t, localWorklistSrc, "dynwl")
	n := 64
	out := NewIntBuffer(n)
	if err := ex.Bind(BufArg(out)); err != nil {
		t.Fatal(err)
	}
	if err := ex.Launch(ND1(n, 16)); err != nil {
		t.Fatal(err)
	}
	if err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if out.I32[i] != int32(2*i) {
			t.Fatalf("out[%d] = %d, want %d", i, out.I32[i], 2*i)
		}
	}
}

func TestGlobalOffsetLaunch(t *testing.T) {
	ex := newExec(t, vaddSrc, "vadd")
	n := 64
	a := NewFloatBuffer(n)
	b := NewFloatBuffer(n)
	c := NewFloatBuffer(n)
	for i := 0; i < n; i++ {
		a.F32[i] = 1
		b.F32[i] = float32(i)
	}
	if err := ex.Bind(BufArg(a), BufArg(b), BufArg(c), IntArg(int64(n))); err != nil {
		t.Fatal(err)
	}
	// Launch only the second half via an offset sub-range.
	nd := ND1(n, 16)
	sub, err := nd.SubRange(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Launch(sub); err != nil {
		t.Fatal(err)
	}
	if err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n/2; i++ {
		if c.F32[i] != 0 {
			t.Fatalf("c[%d] written but outside sub-range", i)
		}
	}
	for i := n / 2; i < n; i++ {
		if c.F32[i] != float32(i)+1 {
			t.Fatalf("c[%d] = %v, want %v", i, c.F32[i], float32(i)+1)
		}
	}
}

func TestRunSampled(t *testing.T) {
	ex := newExec(t, vaddSrc, "vadd")
	n := 256
	a, b, c := NewFloatBuffer(n), NewFloatBuffer(n), NewFloatBuffer(n)
	if err := ex.Bind(BufArg(a), BufArg(b), BufArg(c), IntArg(int64(n))); err != nil {
		t.Fatal(err)
	}
	if err := ex.Launch(ND1(n, 16)); err != nil {
		t.Fatal(err)
	}
	run, err := ex.RunSampled(4)
	if err != nil {
		t.Fatal(err)
	}
	if run != 4 {
		t.Fatalf("sampled %d groups, want 4", run)
	}
	p := ex.Stats()
	if p.GroupsRun != 4 || p.ItemsRun != 64 {
		t.Errorf("groups=%d items=%d", p.GroupsRun, p.ItemsRun)
	}
	sc := p.Scale(4)
	if sc.ItemsRun != 256 || sc.Loads != 4*p.Loads {
		t.Errorf("scaled profile wrong: %+v", sc)
	}
}

const intOpsSrc = `
__kernel void intops(__global int* out, int a, int b) {
    int i = get_global_id(0);
    if (i == 0) {
        out[0] = a / b;
        out[1] = a % b;
        out[2] = a << 3;
        out[3] = a >> 1;
        out[4] = (a & b) | (a ^ b);
        out[5] = -a;
        out[6] = ~a;
        out[7] = a > b ? 100 : 200;
        out[8] = !b;
        uint u = (uint)a;
        out[9] = (int)(u >> 30);
    }
}`

func TestIntegerSemantics(t *testing.T) {
	ex := newExec(t, intOpsSrc, "intops")
	out := NewIntBuffer(10)
	if err := ex.Bind(BufArg(out), IntArg(-7), IntArg(2)); err != nil {
		t.Fatal(err)
	}
	if err := ex.Launch(ND1(4, 4)); err != nil {
		t.Fatal(err)
	}
	if err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int32{
		-3,                              // C truncating division
		-1,                              // C remainder
		-7 << 3,                         // -56
		-7 >> 1,                         // arithmetic shift: -4
		(-7 & 2) | (-7 ^ 2),             // = 0 | -5 = -5
		7,                               // negation
		^int32(-7),                      // = 6
		200,                             // -7 > 2 false
		0,                               // !2
		int32(uint32(0xFFFFFFF9) >> 30), // logical shift of uint: 3
	}
	for i, w := range want {
		if out.I32[i] != w {
			t.Errorf("out[%d] = %d, want %d", i, out.I32[i], w)
		}
	}
}

func TestInt32Wraparound(t *testing.T) {
	src := `__kernel void wrap(__global int* out, int big) {
        if (get_global_id(0) == 0) { out[0] = big * big; }
    }`
	ex := newExec(t, src, "wrap")
	out := NewIntBuffer(1)
	if err := ex.Bind(BufArg(out), IntArg(100000)); err != nil {
		t.Fatal(err)
	}
	if err := ex.Launch(ND1(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	big := int64(100000)
	want := int32(big * big) // wraps in 32 bits
	if out.I32[0] != want {
		t.Errorf("out[0] = %d, want %d", out.I32[0], want)
	}
}

func TestFloat32Rounding(t *testing.T) {
	src := `__kernel void f32(__global float* out) {
        if (get_global_id(0) == 0) {
            float a = 16777216.0f;
            out[0] = a + 1.0f;
        }
    }`
	ex := newExec(t, src, "f32")
	out := NewFloatBuffer(1)
	if err := ex.Bind(BufArg(out)); err != nil {
		t.Fatal(err)
	}
	if err := ex.Launch(ND1(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	// 2^24 + 1 is not representable in float32.
	if out.F32[0] != 16777216.0 {
		t.Errorf("float32 rounding not applied: %v", out.F32[0])
	}
}

func TestMathBuiltins(t *testing.T) {
	src := `__kernel void mth(__global float* out, float x, float y) {
        if (get_global_id(0) == 0) {
            out[0] = sqrt(x);
            out[1] = fabs(-x);
            out[2] = pow(x, y);
            out[3] = fmax(x, y);
            out[4] = exp(0.0f);
            out[5] = (float)max(3, 7);
            out[6] = (float)min(3, 7);
            out[7] = (float)abs(-9);
        }
    }`
	ex := newExec(t, src, "mth")
	out := NewFloatBuffer(8)
	if err := ex.Bind(BufArg(out), FloatArg(4), FloatArg(2)); err != nil {
		t.Fatal(err)
	}
	if err := ex.Launch(ND1(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	want := []float32{2, 4, 16, 4, 1, 7, 3, 9}
	for i, w := range want {
		if out.F32[i] != w {
			t.Errorf("out[%d] = %v, want %v", i, out.F32[i], w)
		}
	}
}

func TestRuntimeErrors(t *testing.T) {
	t.Run("out of bounds", func(t *testing.T) {
		ex := newExec(t, vaddSrc, "vadd")
		a, b, c := NewFloatBuffer(4), NewFloatBuffer(4), NewFloatBuffer(4)
		// n larger than the buffers: work-item 4 indexes out of range.
		if err := ex.Bind(BufArg(a), BufArg(b), BufArg(c), IntArg(8)); err != nil {
			t.Fatal(err)
		}
		if err := ex.Launch(ND1(8, 8)); err != nil {
			t.Fatal(err)
		}
		if err := ex.Run(); err == nil {
			t.Error("expected out-of-range error")
		}
	})
	t.Run("division by zero", func(t *testing.T) {
		src := `__kernel void dz(__global int* out, int d) {
            out[get_global_id(0)] = 10 / d;
        }`
		ex := newExec(t, src, "dz")
		out := NewIntBuffer(1)
		if err := ex.Bind(BufArg(out), IntArg(0)); err != nil {
			t.Fatal(err)
		}
		if err := ex.Launch(ND1(1, 1)); err != nil {
			t.Fatal(err)
		}
		if err := ex.Run(); err == nil {
			t.Error("expected division-by-zero error")
		}
	})
	t.Run("bad binding", func(t *testing.T) {
		ex := newExec(t, vaddSrc, "vadd")
		if err := ex.SetArg(0, IntArg(1)); err == nil {
			t.Error("expected error binding scalar to buffer param")
		}
		if err := ex.SetArg(3, BufArg(NewFloatBuffer(1))); err == nil {
			t.Error("expected error binding buffer to scalar param")
		}
		if err := ex.SetArg(0, BufArg(NewIntBuffer(4))); err == nil {
			t.Error("expected error binding int buffer to float*")
		}
	})
}

func TestIndirectAccessIsRandom(t *testing.T) {
	src := `__kernel void gather(__global float* out, __global float* in, __global int* idx, int n) {
        int i = get_global_id(0);
        if (i < n) {
            float s = 0.0f;
            for (int j = 0; j < 16; j++) {
                s += in[idx[i * 16 + j]];
            }
            out[i] = s;
        }
    }`
	ex := newExec(t, src, "gather")
	n := 32
	out := NewFloatBuffer(n)
	in := NewFloatBuffer(1024)
	idx := NewIntBuffer(n * 16)
	// Pseudo-random gather indices.
	state := uint32(12345)
	for i := range idx.I32 {
		state = state*1664525 + 1013904223
		idx.I32[i] = int32(state % 1024)
	}
	if err := ex.Bind(BufArg(out), BufArg(in), BufArg(idx), IntArg(int64(n))); err != nil {
		t.Fatal(err)
	}
	if err := ex.Launch(ND1(n, 8)); err != nil {
		t.Fatal(err)
	}
	if err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	p := ex.Stats()
	var found bool
	for _, s := range p.Sites {
		if s.ArgIndex == 1 { // "in" buffer
			found = true
			if s.IterPattern != access.Random {
				t.Errorf("indirect access classified as %v, want random", s.IterPattern)
			}
		}
	}
	if !found {
		t.Fatal("no site profile for indirect buffer")
	}
}

func TestAddressSpacePlacement(t *testing.T) {
	as := &AddressSpace{}
	b1 := NewFloatBuffer(100)
	b2 := NewFloatBuffer(100)
	as.Place(b1)
	as.Place(b2)
	if b1.Base == 0 || b2.Base == 0 {
		t.Fatal("buffers not placed")
	}
	if b1.Base == b2.Base {
		t.Fatal("buffers alias")
	}
	if b2.Base < b1.Base+b1.Bytes() {
		t.Fatal("buffers overlap")
	}
	old := b1.Base
	as.Place(b1)
	if b1.Base != old {
		t.Fatal("re-placement moved buffer")
	}
}

type countingSink struct {
	n      int64
	writes int64
}

func (s *countingSink) Access(addr, size int64, write bool) {
	s.n++
	if write {
		s.writes++
	}
}

func TestTraceSink(t *testing.T) {
	ex := newExec(t, vaddSrc, "vadd")
	n := 32
	a, b, c := NewFloatBuffer(n), NewFloatBuffer(n), NewFloatBuffer(n)
	sink := &countingSink{}
	ex.Sink = sink
	if err := ex.Bind(BufArg(a), BufArg(b), BufArg(c), IntArg(int64(n))); err != nil {
		t.Fatal(err)
	}
	if err := ex.Launch(ND1(n, 16)); err != nil {
		t.Fatal(err)
	}
	if err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	if sink.n != int64(3*n) || sink.writes != int64(n) {
		t.Errorf("sink saw %d accesses (%d writes), want %d (%d)", sink.n, sink.writes, 3*n, n)
	}
}
