package interp

// This file implements the lowering pass from the typed clc AST to the
// register-based bytecode of bytecode.go. Lowering preserves the closure
// engine's observable behaviour exactly:
//
//   - Arithmetic follows normInt/normFloat (OpenCL 32-bit wrap-around,
//     float32 rounding), encoded in each instruction's norm field.
//   - Statistics counters are incremented with the closure engine's
//     ordering. Closures count an operation before evaluating its
//     operands; fused counting at instruction execution is used only when
//     no operand can trap (then the reordering is unobservable), otherwise
//     the count is pre-paid with opStatInt/opStatFloat and the
//     instruction's count field is zero.
//   - Trap order matches: integer division evaluates the divisor before
//     the dividend with the zero check in between (opChkDiv0), and global
//     atomics check for an empty buffer before evaluating their operand
//     (opChkAtomG), whenever the surrounding operands have observable
//     effects.
//   - Memory accesses (bounds checks, site recording, trace events) are
//     emitted in the exact closure order.
//
// Variables live in dedicated registers. Because operands of the closure
// engine are evaluated lazily at combination time, an operand lowered to a
// bare variable register must be snapshotted into a temporary when code
// emitted between its lowering point and its consumption may write
// variables (see writesVars).
//
// Anything the lowerer cannot handle fails the whole kernel; the executor
// then falls back to the closure engine and records the reason in
// RunStats.FallbackReason.

import (
	"fmt"

	"dopia/internal/clc"
	"dopia/internal/faults"
)

// breg is a bytecode register reference produced by lowering an
// expression: an index into the int or float register file, plus whether
// the register is a variable's home (lazily read, so subject to the
// snapshot rule) rather than a temporary.
type breg struct {
	idx    int32
	f      bool
	varRef bool
}

// loopCtx collects the break/continue jump instructions of one loop for
// backpatching.
type loopCtx struct {
	breaks    []int
	continues []int
}

// lowerer holds state while lowering one kernel to bytecode.
type lowerer struct {
	k  *clc.Kernel
	ck *compiled

	code []instr

	slotReg []int32 // kernel slot -> variable register (-1 = none)
	slotIsF []bool

	baseI, baseF int32 // first temporary register (after variables)
	tmpI, tmpF   int32 // per-statement temporary watermark
	maxI, maxF   int32

	loops []loopCtx

	math1Idx map[string]int
	math2Idx map[string]int
	math1    []func(float64) float64
	math2    []func(a, b float64) float64

	err error
}

func (lw *lowerer) fail(pos clc.Pos, format string, args ...any) {
	if lw.err == nil {
		lw.err = fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...))
	}
}

func (lw *lowerer) emit(in instr) int {
	lw.code = append(lw.code, in)
	return len(lw.code) - 1
}

func (lw *lowerer) tempI() breg {
	r := lw.tmpI
	lw.tmpI++
	if lw.tmpI > lw.maxI {
		lw.maxI = lw.tmpI
	}
	return breg{idx: r}
}

func (lw *lowerer) tempF() breg {
	r := lw.tmpF
	lw.tmpF++
	if lw.tmpF > lw.maxF {
		lw.maxF = lw.tmpF
	}
	return breg{idx: r, f: true}
}

func (lw *lowerer) temp(f bool) breg {
	if f {
		return lw.tempF()
	}
	return lw.tempI()
}

// resetTmp releases all temporaries. Called at statement boundaries,
// where no expression value is live.
func (lw *lowerer) resetTmp() {
	lw.tmpI, lw.tmpF = lw.baseI, lw.baseF
}

// snapshot copies a lazily-read variable register into a temporary, for
// operands whose closure-engine read happens before code that may write
// variables.
func (lw *lowerer) snapshot(r breg) breg {
	if !r.varRef {
		return r
	}
	t := lw.temp(r.f)
	if r.f {
		lw.emit(instr{op: opMovF, norm: normNone, dst: t.idx, a: r.idx})
	} else {
		lw.emit(instr{op: opMovI, norm: normNone, dst: t.idx, a: r.idx})
	}
	return t
}

func (lw *lowerer) patch(pcs []int, target int) {
	for _, pc := range pcs {
		lw.code[pc].imm = int64(target)
	}
}

func (lw *lowerer) patchHere(pcs []int) { lw.patch(pcs, len(lw.code)) }

// ---------------------------------------------------------------------------
// Static predicates

// canTrap reports whether evaluating x can raise a runtime error (bounds
// check, integer division by zero, atomic on an empty buffer).
// Conservative true is always safe: it only forces statistics pre-payment,
// which matches the closure engine's count-before-operands order exactly.
func canTrap(x clc.Expr) bool {
	switch e := x.(type) {
	case *clc.IntLit, *clc.FloatLit, *clc.Ident:
		return false
	case *clc.Unary:
		return canTrap(e.X)
	case *clc.Binary:
		if (e.Op == clc.BinDiv || e.Op == clc.BinRem) &&
			!promoteKind(e.L.ResultType().Kind, e.R.ResultType().Kind).IsFloat() {
			return true
		}
		return canTrap(e.L) || canTrap(e.R)
	case *clc.Cond:
		return canTrap(e.C) || canTrap(e.Then) || canTrap(e.Else)
	case *clc.Index:
		return true
	case *clc.Call:
		if e.Builtin != nil &&
			(e.Builtin.Kind == clc.BuiltinAtomic || e.Builtin.Kind == clc.BuiltinAtomic2) {
			return true
		}
		for _, a := range e.Args {
			if canTrap(a) {
				return true
			}
		}
		return false
	case *clc.Cast:
		return canTrap(e.X)
	case *clc.Assign:
		return true // conservative: Index targets and compound div trap
	case *clc.IncDec:
		return canTrap(e.X)
	}
	return true
}

// writesVars reports whether evaluating x may modify a variable register
// (any assignment or inc/dec, conservatively). Used for the operand
// snapshot rule.
func writesVars(x clc.Expr) bool {
	switch e := x.(type) {
	case *clc.IntLit, *clc.FloatLit, *clc.Ident:
		return false
	case *clc.Unary:
		return writesVars(e.X)
	case *clc.Binary:
		return writesVars(e.L) || writesVars(e.R)
	case *clc.Cond:
		return writesVars(e.C) || writesVars(e.Then) || writesVars(e.Else)
	case *clc.Index:
		return writesVars(e.Idx)
	case *clc.Call:
		for _, a := range e.Args {
			if writesVars(a) {
				return true
			}
		}
		return false
	case *clc.Cast:
		return writesVars(e.X)
	case *clc.Assign, *clc.IncDec:
		return true
	}
	return true
}

// pureNoEffects reports whether evaluating x emits no statistics, no
// memory-site records, and cannot trap: literals, variable and __local
// scalar reads, work-item queries, and casts/unary-plus of such.
func pureNoEffects(x clc.Expr) bool {
	switch e := x.(type) {
	case *clc.IntLit, *clc.FloatLit:
		return true
	case *clc.Ident:
		return e.Sym != nil && !e.Sym.Type.Ptr && e.Sym.ArrayLen == 0
	case *clc.Cast:
		return pureNoEffects(e.X)
	case *clc.Unary:
		return e.Op == clc.UnaryPlus && pureNoEffects(e.X)
	case *clc.Call:
		if e.Builtin == nil || e.Builtin.Kind != clc.BuiltinWorkItem {
			return false
		}
		for _, a := range e.Args {
			if !pureNoEffects(a) {
				return false
			}
		}
		return true
	}
	return false
}

// ---------------------------------------------------------------------------
// Scalar helpers

// normCodeInt maps a result kind to the integer norm code (normInt).
func normCodeInt(k clc.Kind) uint8 {
	switch k {
	case clc.KindInt:
		return normI32
	case clc.KindUInt:
		return normU32
	case clc.KindBool:
		return normBool
	}
	return normNone
}

// normCodeFloat maps a result kind to the float norm code (normFloat).
func normCodeFloat(k clc.Kind) uint8 {
	if k == clc.KindFloat {
		return normF32
	}
	return normNone
}

func shiftMaskOf(pk clc.Kind) int64 {
	if pk == clc.KindLong || pk == clc.KindULong {
		return 63
	}
	return 31
}

// icmpCode maps a comparison operator to a cmp code for integer operands.
func icmpCode(op clc.BinaryOp, unsigned bool) uint8 {
	var c uint8
	switch op {
	case clc.BinEq:
		return cmpEq
	case clc.BinNe:
		return cmpNe
	case clc.BinLt:
		c = cmpLt
	case clc.BinGt:
		c = cmpGt
	case clc.BinLe:
		c = cmpLe
	default: // BinGe
		c = cmpGe
	}
	if unsigned {
		c |= cmpU
	}
	return c
}

// fcmpCode maps a comparison operator to a cmp code for float operands.
func fcmpCode(op clc.BinaryOp) uint8 {
	switch op {
	case clc.BinEq:
		return cmpEq
	case clc.BinNe:
		return cmpNe
	case clc.BinLt:
		return cmpLt
	case clc.BinGt:
		return cmpGt
	case clc.BinLe:
		return cmpLe
	}
	return cmpGe
}

// invertICmp negates an integer cmp code (safe for integers only; float
// comparison inversion is NaN-incorrect and never used).
func invertICmp(c uint8) uint8 {
	u := c & cmpU
	switch c &^ cmpU {
	case cmpEq:
		return cmpNe
	case cmpNe:
		return cmpEq
	case cmpLt:
		return cmpGe | u
	case cmpGt:
		return cmpLe | u
	case cmpLe:
		return cmpGt | u
	}
	return cmpLt | u // cmpGe
}

var wiCodes = map[string]uint8{
	"get_global_id":     wiGlobalID,
	"get_local_id":      wiLocalID,
	"get_group_id":      wiGroupID,
	"get_global_size":   wiGlobalSize,
	"get_local_size":    wiLocalSize,
	"get_num_groups":    wiNumGroups,
	"get_global_offset": wiGlobalOffset,
	"get_work_dim":      wiWorkDim,
}

// ---------------------------------------------------------------------------
// Entry point

// lowerKernel lowers a checked, closure-compiled kernel to bytecode.
// Returns an error (and a nil program) for any construct it does not
// support; the executor then falls back to the closure engine.
func lowerKernel(k *clc.Kernel, ck *compiled) (prog *bcProgram, err error) {
	defer func() {
		if r := recover(); r != nil {
			prog, err = nil, fmt.Errorf("interp: lowering panic: %v", r)
		}
	}()
	if ferr := faults.Hit("interp.lower"); ferr != nil {
		return nil, ferr
	}
	lw := &lowerer{
		k: k, ck: ck,
		math1Idx: map[string]int{},
		math2Idx: map[string]int{},
	}
	lw.allocVars()

	var segments [][]instr
	var seg []clc.Stmt
	flush := func() {
		lw.code = nil
		for _, s := range seg {
			lw.lowerStmt(s)
		}
		seg = nil
		segments = append(segments, lw.code)
	}
	if k.Body != nil {
		for _, s := range k.Body.Stmts {
			if _, isBarrier := s.(*clc.BarrierStmt); isBarrier {
				flush()
				continue
			}
			seg = append(seg, s)
		}
	}
	flush()
	if lw.err != nil {
		return nil, lw.err
	}

	p := &bcProgram{
		segments: segments,
		numI:     int(lw.maxI),
		numF:     int(lw.maxF),
		math1:    lw.math1,
		math2:    lw.math2,
	}
	for _, prm := range k.Params {
		if prm.Type.Ptr || prm.Sym == nil {
			continue
		}
		reg := lw.slotReg[prm.Sym.Slot]
		if reg < 0 {
			continue // parameter never referenced
		}
		pc := paramCopy{slot: int32(prm.Sym.Slot), reg: reg}
		if lw.slotIsF[prm.Sym.Slot] {
			p.paramF = append(p.paramF, pc)
		} else {
			p.paramI = append(p.paramI, pc)
		}
	}
	// Mined peephole: fuse hot sequences from the generated
	// superinstruction table. Skipped in opcode-profiling mode so the
	// n-gram histograms show the base instruction stream being mined.
	if !opProfileEnabled() {
		applyMinedSuperinstructions(p)
	}
	p.lanePin = scanLanePin(p)
	return p, nil
}

// allocVars assigns a dedicated register to every scalar variable slot
// (parameters and locals; __local scalars and arrays live elsewhere).
func (lw *lowerer) allocVars() {
	lw.slotReg = make([]int32, lw.k.NumSlots)
	for i := range lw.slotReg {
		lw.slotReg[i] = -1
	}
	lw.slotIsF = make([]bool, lw.k.NumSlots)
	assign := func(sym *clc.Symbol) {
		if sym == nil || sym.Slot < 0 || sym.Slot >= len(lw.slotReg) {
			return
		}
		if sym.Type.Ptr || sym.IsLocal || sym.ArrayLen > 0 {
			return
		}
		if lw.slotReg[sym.Slot] >= 0 {
			return
		}
		if sym.Type.Kind.IsFloat() {
			lw.slotReg[sym.Slot] = lw.baseF
			lw.slotIsF[sym.Slot] = true
			lw.baseF++
		} else {
			lw.slotReg[sym.Slot] = lw.baseI
			lw.baseI++
		}
	}
	for _, prm := range lw.k.Params {
		assign(prm.Sym)
	}
	for _, sym := range lw.k.Locals {
		assign(sym)
	}
	lw.tmpI, lw.tmpF = lw.baseI, lw.baseF
	lw.maxI, lw.maxF = lw.baseI, lw.baseF
}

// varReg returns the register of a scalar variable symbol.
func (lw *lowerer) varReg(sym *clc.Symbol, pos clc.Pos) breg {
	if sym == nil || sym.Slot < 0 || sym.Slot >= len(lw.slotReg) || lw.slotReg[sym.Slot] < 0 {
		lw.fail(pos, "interp: no register for symbol")
		return breg{}
	}
	return breg{idx: lw.slotReg[sym.Slot], f: lw.slotIsF[sym.Slot], varRef: true}
}

// ---------------------------------------------------------------------------
// Statements

func (lw *lowerer) lowerStmt(s clc.Stmt) {
	lw.resetTmp()
	switch st := s.(type) {
	case *clc.Block:
		for _, inner := range st.Stmts {
			lw.lowerStmt(inner)
		}
	case *clc.DeclStmt:
		for _, d := range st.Decls {
			lw.resetTmp()
			lw.lowerDecl(d)
		}
	case *clc.ExprStmt:
		lw.lowerExprStmt(st.X)
	case *clc.IfStmt:
		fp := lw.jumpIfFalse(st.Cond)
		lw.lowerStmt(st.Then)
		if st.Else == nil {
			lw.patchHere(fp)
			return
		}
		over := lw.emit(instr{op: opJmp, imm: -1})
		lw.patchHere(fp)
		lw.lowerStmt(st.Else)
		lw.patch([]int{over}, len(lw.code))
	case *clc.ForStmt:
		if st.Init != nil {
			lw.lowerStmt(st.Init)
		}
		start := len(lw.code)
		var exit []int
		if st.Cond != nil {
			lw.resetTmp()
			exit = lw.jumpIfFalse(st.Cond)
		}
		bodyStart := len(lw.code)
		lw.loops = append(lw.loops, loopCtx{})
		lw.lowerStmt(st.Body)
		lp := lw.loops[len(lw.loops)-1]
		lw.loops = lw.loops[:len(lw.loops)-1]
		cont := len(lw.code)
		if lw.tryFusedBackEdge(st, bodyStart) {
			// Post, condition, and back-jump fused into one
			// instruction (the head condition still runs on entry).
		} else {
			if st.Post != nil {
				lw.resetTmp()
				lw.lowerExprStmt(st.Post)
			}
			lw.emit(instr{op: opJmp, imm: int64(start)})
		}
		end := len(lw.code)
		lw.patch(exit, end)
		lw.patch(lp.breaks, end)
		lw.patch(lp.continues, cont)
	case *clc.WhileStmt:
		start := len(lw.code)
		exit := lw.jumpIfFalse(st.Cond)
		lw.loops = append(lw.loops, loopCtx{})
		lw.lowerStmt(st.Body)
		lp := lw.loops[len(lw.loops)-1]
		lw.loops = lw.loops[:len(lw.loops)-1]
		lw.emit(instr{op: opJmp, imm: int64(start)})
		end := len(lw.code)
		lw.patch(exit, end)
		lw.patch(lp.breaks, end)
		lw.patch(lp.continues, start)
	case *clc.DoWhileStmt:
		start := len(lw.code)
		lw.loops = append(lw.loops, loopCtx{})
		lw.lowerStmt(st.Body)
		lp := lw.loops[len(lw.loops)-1]
		lw.loops = lw.loops[:len(lw.loops)-1]
		cont := len(lw.code)
		lw.resetTmp()
		back := lw.jumpIfTrue(st.Cond)
		lw.patch(back, start)
		end := len(lw.code)
		lw.patch(lp.breaks, end)
		lw.patch(lp.continues, cont)
	case *clc.ReturnStmt:
		lw.emit(instr{op: opRet})
	case *clc.BreakStmt:
		if len(lw.loops) == 0 {
			lw.fail(st.Pos(), "interp: break outside loop")
			return
		}
		pc := lw.emit(instr{op: opJmp, imm: -1})
		lp := &lw.loops[len(lw.loops)-1]
		lp.breaks = append(lp.breaks, pc)
	case *clc.ContinueStmt:
		if len(lw.loops) == 0 {
			lw.fail(st.Pos(), "interp: continue outside loop")
			return
		}
		pc := lw.emit(instr{op: opJmp, imm: -1})
		lp := &lw.loops[len(lw.loops)-1]
		lp.continues = append(lp.continues, pc)
	case *clc.BarrierStmt:
		// Top-level barriers are handled by segmentation; the checker
		// rejects nested ones (the closure engine also treats them as
		// no-ops).
	default:
		lw.fail(s.Pos(), "interp: unhandled statement %T", s)
	}
}

func (lw *lowerer) lowerDecl(d *clc.VarDecl) {
	sym := d.Sym
	if sym == nil {
		lw.fail(d.NamePos, "interp: unresolved declaration %q", d.Name)
		return
	}
	if sym.IsLocal || sym.ArrayLen > 0 {
		// __local storage is zeroed per work-group, private arrays per
		// work-item, both by the executor.
		return
	}
	dst := lw.varReg(sym, d.NamePos)
	if d.Init == nil {
		// Matches the closure engine's e.slots[slot] = Value{}.
		if dst.f {
			lw.emit(instr{op: opConstF, dst: dst.idx})
		} else {
			lw.emit(instr{op: opConstI, dst: dst.idx})
		}
		return
	}
	rv := lw.lowerConverted(d.Init, sym.Type.Kind, d.NamePos)
	lw.moveTo(dst, rv)
}

// lowerExprStmt lowers an expression evaluated for its side effects only.
func (lw *lowerer) lowerExprStmt(x clc.Expr) {
	switch e := x.(type) {
	case *clc.Assign:
		lw.lowerAssign(e, false)
	case *clc.IncDec:
		lw.lowerIncDec(e, false)
	default:
		lw.lowerExpr(x)
	}
}

// moveTo copies src into the (typed) register dst without normalization.
func (lw *lowerer) moveTo(dst, src breg) {
	if dst.idx == src.idx && dst.f == src.f {
		return
	}
	if dst.f {
		lw.emit(instr{op: opMovF, norm: normNone, dst: dst.idx, a: src.idx})
	} else {
		lw.emit(instr{op: opMovI, norm: normNone, dst: dst.idx, a: src.idx})
	}
}

// ---------------------------------------------------------------------------
// Conditions

// jumpIfFalse lowers condition x and emits jumps taken when it is false,
// returning their pcs for backpatching. Comparisons fuse into
// compare-and-branch instructions; logical operators short-circuit exactly
// like the closure engine (one AluInt count per operator, counted first).
func (lw *lowerer) jumpIfFalse(x clc.Expr) []int {
	switch e := x.(type) {
	case *clc.Binary:
		switch {
		case e.Op == clc.BinLAnd:
			lw.emit(instr{op: opStatInt, imm: 1})
			p := lw.jumpIfFalse(e.L)
			return append(p, lw.jumpIfFalse(e.R)...)
		case e.Op == clc.BinLOr:
			lw.emit(instr{op: opStatInt, imm: 1})
			t := lw.jumpIfTrue(e.L)
			p := lw.jumpIfFalse(e.R)
			lw.patchHere(t)
			return p
		case e.Op.IsComparison():
			return []int{lw.emitCmpJump(e, false)}
		}
	case *clc.Unary:
		if e.Op == clc.UnaryNot {
			lw.emit(instr{op: opStatInt, imm: 1})
			return lw.jumpIfTrue(e.X)
		}
	}
	r := lw.lowerExpr(x)
	op := opJmpZI
	if r.f {
		op = opJmpZF
	}
	return []int{lw.emit(instr{op: op, a: r.idx, imm: -1})}
}

// jumpIfTrue is the dual of jumpIfFalse.
func (lw *lowerer) jumpIfTrue(x clc.Expr) []int {
	switch e := x.(type) {
	case *clc.Binary:
		switch {
		case e.Op == clc.BinLAnd:
			lw.emit(instr{op: opStatInt, imm: 1})
			f := lw.jumpIfFalse(e.L)
			f = append(f, lw.jumpIfFalse(e.R)...)
			t := lw.emit(instr{op: opJmp, imm: -1})
			lw.patchHere(f)
			return []int{t}
		case e.Op == clc.BinLOr:
			lw.emit(instr{op: opStatInt, imm: 1})
			t := lw.jumpIfTrue(e.L)
			return append(t, lw.jumpIfTrue(e.R)...)
		case e.Op.IsComparison():
			return []int{lw.emitCmpJump(e, true)}
		}
	case *clc.Unary:
		if e.Op == clc.UnaryNot {
			lw.emit(instr{op: opStatInt, imm: 1})
			return lw.jumpIfFalse(e.X)
		}
	}
	r := lw.lowerExpr(x)
	op := opJmpNZI
	if r.f {
		op = opJmpNZF
	}
	return []int{lw.emit(instr{op: op, a: r.idx, imm: -1})}
}

// emitCmpJump lowers a comparison fused with a branch. The branch is
// taken when the comparison is false (ifTrue=false) or true (ifTrue=true).
// Float jump-if-true materializes the comparison instead of inverting it,
// because inverted float comparisons are NaN-incorrect.
func (lw *lowerer) emitCmpJump(b *clc.Binary, ifTrue bool) int {
	lk := b.L.ResultType().Kind
	rk := b.R.ResultType().Kind
	pk := promoteKind(lk, rk)
	prepay := canTrap(b.L) || canTrap(b.R)
	c := int32(1)
	if prepay {
		c = 0
	}
	if pk.IsFloat() {
		if prepay {
			lw.emit(instr{op: opStatFloat, imm: 1})
		}
		l := lw.lowerConverted(b.L, pk, b.Pos())
		if l.varRef && writesVars(b.R) {
			l = lw.snapshot(l)
		}
		r := lw.lowerConverted(b.R, pk, b.Pos())
		code := fcmpCode(b.Op)
		if !ifTrue {
			return lw.emit(instr{op: opJCmpF, norm: code, a: l.idx, b: r.idx, c: c, imm: -1})
		}
		t := lw.tempI()
		lw.emit(instr{op: opCmpF, norm: code, dst: t.idx, a: l.idx, b: r.idx, c: c})
		return lw.emit(instr{op: opJmpNZI, a: t.idx, imm: -1})
	}
	if prepay {
		lw.emit(instr{op: opStatInt, imm: 1})
	}
	l := lw.lowerConverted(b.L, pk, b.Pos())
	if l.varRef && writesVars(b.R) {
		l = lw.snapshot(l)
	}
	r := lw.lowerConverted(b.R, pk, b.Pos())
	code := icmpCode(b.Op, pk.IsUnsigned())
	if ifTrue {
		code = invertICmp(code)
	}
	return lw.emit(instr{op: opJCmpI, norm: code, a: l.idx, b: r.idx, c: c, imm: -1})
}

// ---------------------------------------------------------------------------
// Expressions

// lowerExpr lowers x and returns the register holding its value; the
// register's type matches x.ResultType().Kind (float kinds in the float
// file, everything else in the int file).
func (lw *lowerer) lowerExpr(x clc.Expr) breg {
	switch e := x.(type) {
	case *clc.IntLit:
		t := lw.tempI()
		lw.emit(instr{op: opConstI, dst: t.idx, imm: e.Value})
		return t
	case *clc.FloatLit:
		t := lw.tempF()
		// Float literals are float32-rounded like the closure engine.
		lw.emit(instr{op: opConstF, dst: t.idx, fimm: float64(float32(e.Value))})
		return t
	case *clc.Ident:
		return lw.lowerIdentLoad(e)
	case *clc.Unary:
		return lw.lowerUnary(e)
	case *clc.Binary:
		return lw.lowerBinary(e)
	case *clc.Cond:
		return lw.lowerCond(e)
	case *clc.Index:
		return lw.lowerIndexLoad(e)
	case *clc.Call:
		return lw.lowerCall(e)
	case *clc.Cast:
		v := lw.lowerExpr(e.X)
		return lw.emitConvert(v, e.X.ResultType().Kind, e.To.Kind, e.Pos())
	case *clc.Assign:
		return lw.lowerAssign(e, true)
	case *clc.IncDec:
		return lw.lowerIncDec(e, true)
	}
	lw.fail(x.Pos(), "interp: unhandled expression %T", x)
	return breg{}
}

// lowerConverted lowers x and converts the result to kind `to`.
func (lw *lowerer) lowerConverted(x clc.Expr, to clc.Kind, pos clc.Pos) breg {
	v := lw.lowerExpr(x)
	return lw.emitConvert(v, x.ResultType().Kind, to, pos)
}

// emitConvert adapts a register value of kind from to kind to, mirroring
// the closure engine's convert (which emits no statistics).
func (lw *lowerer) emitConvert(v breg, from, to clc.Kind, pos clc.Pos) breg {
	if from == to {
		return v
	}
	switch {
	case from.IsInteger() && to.IsInteger():
		n := normCodeInt(to)
		if n == normNone {
			return v // widening to long/ulong keeps the 64-bit pattern
		}
		t := lw.tempI()
		lw.emit(instr{op: opMovI, norm: n, dst: t.idx, a: v.idx})
		return t
	case from.IsInteger() && to.IsFloat():
		t := lw.tempF()
		var flags uint8
		if from == clc.KindULong {
			flags |= convUnsigned
		}
		if to == clc.KindFloat {
			flags |= convRound32
		}
		lw.emit(instr{op: opI2F, norm: flags, dst: t.idx, a: v.idx})
		return t
	case from.IsFloat() && to.IsInteger():
		t := lw.tempI()
		lw.emit(instr{op: opF2I, norm: normCodeInt(to), dst: t.idx, a: v.idx})
		return t
	case from.IsFloat() && to.IsFloat():
		if to != clc.KindFloat {
			return v // float -> double is exact
		}
		t := lw.tempF()
		lw.emit(instr{op: opMovF, norm: normF32, dst: t.idx, a: v.idx})
		return t
	}
	lw.fail(pos, "interp: cannot convert %v to %v", from, to)
	return v
}

func (lw *lowerer) lowerIdentLoad(id *clc.Ident) breg {
	sym := id.Sym
	if sym == nil {
		lw.fail(id.Pos(), "interp: unresolved identifier %q", id.Name)
		return breg{}
	}
	if sym.Type.Ptr || sym.ArrayLen > 0 {
		lw.fail(id.Pos(), "interp: pointer %q used as a value", id.Name)
		return breg{}
	}
	if sym.IsLocal {
		li, ok := lw.ck.localIdx[sym]
		if !ok {
			lw.fail(id.Pos(), "interp: unknown __local symbol %q", id.Name)
			return breg{}
		}
		if sym.Type.Kind.IsFloat() {
			t := lw.tempF()
			lw.emit(instr{op: opLdLSF, dst: t.idx, slot: int32(li)})
			return t
		}
		t := lw.tempI()
		lw.emit(instr{op: opLdLSI, dst: t.idx, slot: int32(li)})
		return t
	}
	return lw.varReg(sym, id.Pos())
}

func (lw *lowerer) lowerUnary(u *clc.Unary) breg {
	rk := u.ResultType().Kind
	xk := u.X.ResultType().Kind
	prepay := canTrap(u.X)
	c := int32(1)
	if prepay {
		c = 0
	}
	switch u.Op {
	case clc.UnaryPlus:
		return lw.lowerExpr(u.X)
	case clc.UnaryNeg:
		if xk.IsFloat() {
			if prepay {
				lw.emit(instr{op: opStatFloat, imm: 1})
			}
			v := lw.lowerExpr(u.X)
			t := lw.tempF()
			lw.emit(instr{op: opNegF, norm: normCodeFloat(rk), dst: t.idx, a: v.idx, c: c})
			return t
		}
		if prepay {
			lw.emit(instr{op: opStatInt, imm: 1})
		}
		v := lw.lowerExpr(u.X)
		t := lw.tempI()
		lw.emit(instr{op: opNegI, norm: normCodeInt(rk), dst: t.idx, a: v.idx, c: c})
		return t
	case clc.UnaryNot:
		// Logical not counts AluInt even over a float operand.
		if prepay {
			lw.emit(instr{op: opStatInt, imm: 1})
		}
		v := lw.lowerExpr(u.X)
		t := lw.tempI()
		op := opNotI
		if v.f {
			op = opNotF
		}
		lw.emit(instr{op: op, dst: t.idx, a: v.idx, c: c})
		return t
	case clc.UnaryBitNot:
		if prepay {
			lw.emit(instr{op: opStatInt, imm: 1})
		}
		v := lw.lowerExpr(u.X)
		t := lw.tempI()
		lw.emit(instr{op: opBitNotI, norm: normCodeInt(rk), dst: t.idx, a: v.idx, c: c})
		return t
	}
	lw.fail(u.Pos(), "interp: unhandled unary op %v", u.Op)
	return breg{}
}

func (lw *lowerer) lowerBinary(b *clc.Binary) breg {
	if b.Op.IsLogical() {
		return lw.lowerLogical(b)
	}
	lk := b.L.ResultType().Kind
	rk := b.R.ResultType().Kind
	pk := promoteKind(lk, rk)
	if pk.IsFloat() {
		return lw.lowerBinaryFloat(b, pk)
	}
	if (b.Op == clc.BinDiv || b.Op == clc.BinRem) && !pk.IsFloat() {
		return lw.lowerIntDiv(b, pk)
	}
	// Fused multiply-add addressing: (a*b)+c / c+(a*b) over pure int32
	// operands (e.g. row*n+col subscripts). Counts AluInt += 2 at once;
	// legal because pure operands emit no interleaved events.
	if b.Op == clc.BinAdd && pk == clc.KindInt {
		if t, ok := lw.tryMulAdd(b); ok {
			return t
		}
	}
	prepay := canTrap(b.L) || canTrap(b.R)
	c := int32(1)
	if prepay {
		c = 0
	}
	if prepay {
		lw.emit(instr{op: opStatInt, imm: 1})
	}
	l := lw.lowerConverted(b.L, pk, b.Pos())
	if l.varRef && writesVars(b.R) {
		l = lw.snapshot(l)
	}
	r := lw.lowerConverted(b.R, pk, b.Pos())
	t := lw.tempI()
	in := instr{dst: t.idx, a: l.idx, b: r.idx, c: c, norm: normCodeInt(pk), pos: b.Pos()}
	unsigned := pk.IsUnsigned()
	switch b.Op {
	case clc.BinAdd:
		in.op = opAddI
	case clc.BinSub:
		in.op = opSubI
	case clc.BinMul:
		in.op = opMulI
	case clc.BinShl:
		in.op, in.imm = opShlI, shiftMaskOf(pk)
	case clc.BinShr:
		in.op, in.imm = opShrI, shiftMaskOf(pk)
		if unsigned {
			in.op = opShrU
		}
	case clc.BinAnd:
		in.op = opAndI
	case clc.BinOr:
		in.op = opOrI
	case clc.BinXor:
		in.op = opXorI
	case clc.BinEq, clc.BinNe, clc.BinLt, clc.BinGt, clc.BinLe, clc.BinGe:
		in.op, in.norm = opCmpI, icmpCode(b.Op, unsigned)
	default:
		lw.fail(b.Pos(), "interp: unhandled binary op %v", b.Op)
		return breg{}
	}
	lw.emit(in)
	return t
}

func (lw *lowerer) lowerBinaryFloat(b *clc.Binary, pk clc.Kind) breg {
	prepay := canTrap(b.L) || canTrap(b.R)
	c := int32(1)
	if prepay {
		c = 0
	}
	if prepay {
		lw.emit(instr{op: opStatFloat, imm: 1})
	}
	l := lw.lowerConverted(b.L, pk, b.Pos())
	if l.varRef && writesVars(b.R) {
		l = lw.snapshot(l)
	}
	r := lw.lowerConverted(b.R, pk, b.Pos())
	if b.Op.IsComparison() {
		t := lw.tempI()
		lw.emit(instr{op: opCmpF, norm: fcmpCode(b.Op), dst: t.idx, a: l.idx, b: r.idx, c: c})
		return t
	}
	var op opcode
	switch b.Op {
	case clc.BinAdd:
		op = opAddF
	case clc.BinSub:
		op = opSubF
	case clc.BinMul:
		op = opMulF
	case clc.BinDiv:
		op = opDivF
	default:
		lw.fail(b.Pos(), "interp: invalid float operator %v", b.Op)
		return breg{}
	}
	t := lw.tempF()
	lw.emit(instr{op: op, norm: normCodeFloat(pk), dst: t.idx, a: l.idx, b: r.idx, c: c})
	return t
}

// lowerIntDiv lowers integer / and % with the closure engine's event
// order: count, divisor, zero check, dividend. The compact fused form is
// used only when the dividend has no observable effects and the divisor
// cannot trap, where the reordering is unobservable.
func (lw *lowerer) lowerIntDiv(b *clc.Binary, pk clc.Kind) breg {
	isRem := b.Op == clc.BinRem
	unsigned := pk.IsUnsigned()
	var op opcode
	switch {
	case isRem && unsigned:
		op = opRemU
	case isRem:
		op = opRemI
	case unsigned:
		op = opDivU
	default:
		op = opDivI
	}
	full := !pureNoEffects(b.L) || canTrap(b.R)
	in := instr{op: op, norm: normCodeInt(pk), c: 1, pos: b.Pos()}
	if full {
		lw.emit(instr{op: opStatInt, imm: 1})
		in.c = 0
	}
	r := lw.lowerConverted(b.R, pk, b.Pos())
	if r.varRef && writesVars(b.L) {
		r = lw.snapshot(r)
	}
	if full {
		chk := instr{op: opChkDiv0, a: r.idx, pos: b.Pos()}
		if isRem {
			chk.imm = 1
		}
		lw.emit(chk)
	}
	l := lw.lowerConverted(b.L, pk, b.Pos())
	t := lw.tempI()
	in.dst, in.a, in.b = t.idx, l.idx, r.idx
	lw.emit(in)
	return t
}

// tryMulAdd recognizes (a*b)+c or c+(a*b) over int32-promoted, pure
// operands and fuses it into opMulAddI.
func (lw *lowerer) tryMulAdd(b *clc.Binary) (breg, bool) {
	match := func(mulX, addX clc.Expr) (breg, bool) {
		mul, ok := mulX.(*clc.Binary)
		if !ok || mul.Op != clc.BinMul {
			return breg{}, false
		}
		if promoteKind(mul.L.ResultType().Kind, mul.R.ResultType().Kind) != clc.KindInt {
			return breg{}, false
		}
		if !pureNoEffects(mul.L) || !pureNoEffects(mul.R) || !pureNoEffects(addX) {
			return breg{}, false
		}
		ma := lw.lowerConverted(mul.L, clc.KindInt, mul.Pos())
		mb := lw.lowerConverted(mul.R, clc.KindInt, mul.Pos())
		ad := lw.lowerConverted(addX, clc.KindInt, b.Pos())
		t := lw.tempI()
		lw.emit(instr{op: opMulAddI, dst: t.idx, a: ma.idx, b: mb.idx, c: ad.idx})
		return t, true
	}
	if t, ok := match(b.L, b.R); ok {
		return t, true
	}
	return match(b.R, b.L)
}

// lowerLogical materializes a short-circuit && / || as a 0/1 integer,
// counting one AluInt for the operator before the operands like the
// closure engine.
func (lw *lowerer) lowerLogical(b *clc.Binary) breg {
	lw.emit(instr{op: opStatInt, imm: 1})
	t := lw.tempI()
	var f, tr []int
	if b.Op == clc.BinLAnd {
		f = lw.jumpIfFalse(b.L)
		f = append(f, lw.jumpIfFalse(b.R)...)
		lw.emit(instr{op: opConstI, dst: t.idx, imm: 1})
		over := lw.emit(instr{op: opJmp, imm: -1})
		lw.patchHere(f)
		lw.emit(instr{op: opConstI, dst: t.idx, imm: 0})
		lw.patch([]int{over}, len(lw.code))
		return t
	}
	tr = lw.jumpIfTrue(b.L)
	tr = append(tr, lw.jumpIfTrue(b.R)...)
	lw.emit(instr{op: opConstI, dst: t.idx, imm: 0})
	over := lw.emit(instr{op: opJmp, imm: -1})
	lw.patchHere(tr)
	lw.emit(instr{op: opConstI, dst: t.idx, imm: 1})
	lw.patch([]int{over}, len(lw.code))
	return t
}

func (lw *lowerer) lowerCond(e *clc.Cond) breg {
	rk := e.ResultType().Kind
	dst := lw.temp(rk.IsFloat())
	fp := lw.jumpIfFalse(e.C)
	tv := lw.lowerConverted(e.Then, rk, e.Pos())
	lw.moveTo(dst, tv)
	over := lw.emit(instr{op: opJmp, imm: -1})
	lw.patchHere(fp)
	ev := lw.lowerConverted(e.Else, rk, e.Pos())
	lw.moveTo(dst, ev)
	lw.patch([]int{over}, len(lw.code))
	return dst
}

// ---------------------------------------------------------------------------
// Memory access

// bcRef is the lowered addressing of an Index expression.
type bcRef struct {
	kind     clc.Kind
	site     int32
	pos      clc.Pos
	argIndex int32 // parameter slot for global buffers; -1 otherwise
	localIdx int32 // __local array index; -1 otherwise
	privIdx  int32 // private array index; -1 otherwise
}

func (lw *lowerer) memRefOf(ix *clc.Index) bcRef {
	ref := bcRef{site: int32(ix.Site), pos: ix.Pos(), argIndex: -1, localIdx: -1, privIdx: -1}
	if ix.Idx.ResultType().Kind.IsFloat() {
		lw.fail(ix.Idx.Pos(), "interp: non-integer index")
		return ref
	}
	base, ok := ix.Base.(*clc.Ident)
	if !ok || base.Sym == nil {
		lw.fail(ix.Pos(), "interp: unsupported subscript base")
		return ref
	}
	sym := base.Sym
	switch {
	case sym.Class == clc.SymParam && sym.Type.Ptr:
		ref.kind = sym.Type.Kind
		ref.argIndex = int32(sym.Slot)
	case sym.ArrayLen > 0 && sym.IsLocal:
		ref.kind = sym.Type.Kind
		ref.localIdx = int32(lw.ck.localIdx[sym])
	case sym.ArrayLen > 0:
		ref.kind = sym.Type.Kind
		ref.privIdx = int32(lw.ck.privIdx[sym])
	default:
		lw.fail(ix.Pos(), "interp: subscript of non-array %q", sym.Name)
	}
	return ref
}

// globalLoadOp returns the load opcode and norm for a buffer element kind.
func globalLoadOp(kind clc.Kind) (opcode, uint8, bool) {
	switch kind {
	case clc.KindFloat:
		return opLdGF32, 0, true
	case clc.KindDouble:
		return opLdGF64, 0, true
	case clc.KindLong, clc.KindULong:
		return opLdGI64, 0, false
	default: // int, uint: re-widen like normInt(kind, int64(b.I32[i]))
		return opLdGI32, normCodeInt(kind), false
	}
}

// globalStoreOp returns the store opcode for a buffer element kind.
func globalStoreOp(kind clc.Kind) (opcode, bool) {
	switch kind {
	case clc.KindFloat:
		return opStGF32, true
	case clc.KindDouble:
		return opStGF64, true
	case clc.KindLong, clc.KindULong:
		return opStGI64, false
	default:
		return opStGI32, false
	}
}

// emitLoad emits the load of ref at index register idx.
func (lw *lowerer) emitLoad(ref bcRef, idx breg) breg {
	switch {
	case ref.argIndex >= 0:
		op, n, isF := globalLoadOp(ref.kind)
		t := lw.temp(isF)
		lw.emit(instr{op: op, norm: n, dst: t.idx, a: idx.idx, slot: ref.argIndex, site: ref.site, pos: ref.pos})
		return t
	case ref.localIdx >= 0:
		if ref.kind.IsFloat() {
			t := lw.tempF()
			lw.emit(instr{op: opLdLF, dst: t.idx, a: idx.idx, slot: ref.localIdx, pos: ref.pos})
			return t
		}
		t := lw.tempI()
		lw.emit(instr{op: opLdLI, dst: t.idx, a: idx.idx, slot: ref.localIdx, pos: ref.pos})
		return t
	default:
		if ref.kind.IsFloat() {
			t := lw.tempF()
			lw.emit(instr{op: opLdPF, dst: t.idx, a: idx.idx, slot: ref.privIdx, pos: ref.pos})
			return t
		}
		t := lw.tempI()
		lw.emit(instr{op: opLdPI, dst: t.idx, a: idx.idx, slot: ref.privIdx, pos: ref.pos})
		return t
	}
}

// emitStore emits the store of value v through ref at index register idx.
func (lw *lowerer) emitStore(ref bcRef, idx, v breg) {
	switch {
	case ref.argIndex >= 0:
		op, _ := globalStoreOp(ref.kind)
		lw.emit(instr{op: op, a: idx.idx, b: v.idx, slot: ref.argIndex, site: ref.site, pos: ref.pos})
	case ref.localIdx >= 0:
		op := opStLI
		if v.f {
			op = opStLF
		}
		lw.emit(instr{op: op, a: idx.idx, b: v.idx, slot: ref.localIdx, pos: ref.pos})
	default:
		op := opStPI
		if v.f {
			op = opStPF
		}
		lw.emit(instr{op: op, a: idx.idx, b: v.idx, slot: ref.privIdx, pos: ref.pos})
	}
}

func (lw *lowerer) lowerIndexLoad(ix *clc.Index) breg {
	ref := lw.memRefOf(ix)
	idx := lw.lowerExpr(ix.Idx)
	return lw.emitLoad(ref, idx)
}

// ---------------------------------------------------------------------------
// Calls

func (lw *lowerer) lowerCall(call *clc.Call) breg {
	b := call.Builtin
	if b == nil {
		lw.fail(call.Pos(), "interp: unresolved call %q", call.Name)
		return breg{}
	}
	switch b.Kind {
	case clc.BuiltinWorkItem:
		return lw.lowerWorkItem(call)
	case clc.BuiltinMath:
		return lw.lowerMath(call, 1)
	case clc.BuiltinMath2:
		return lw.lowerMath(call, 2)
	case clc.BuiltinIntMinMax:
		return lw.lowerMinMax(call)
	case clc.BuiltinAbs:
		prepay := canTrap(call.Args[0])
		c := int32(1)
		if prepay {
			lw.emit(instr{op: opStatInt, imm: 1})
			c = 0
		}
		v := lw.lowerExpr(call.Args[0])
		if v.f {
			lw.fail(call.Pos(), "interp: abs over float operand")
			return breg{}
		}
		t := lw.tempI()
		lw.emit(instr{op: opAbsI, dst: t.idx, a: v.idx, c: c})
		return t
	case clc.BuiltinAtomic, clc.BuiltinAtomic2:
		return lw.lowerAtomic(call)
	}
	lw.fail(call.Pos(), "interp: unhandled builtin %q", b.Name)
	return breg{}
}

func (lw *lowerer) lowerWorkItem(call *clc.Call) breg {
	code, ok := wiCodes[call.Name]
	if !ok {
		lw.fail(call.Pos(), "interp: unhandled work-item fn %q", call.Name)
		return breg{}
	}
	t := lw.tempI()
	if call.Name == "get_work_dim" {
		lw.emit(instr{op: opWISta, norm: code, dst: t.idx})
		return t
	}
	// Constant dimension: resolve the index at lowering time, like the
	// closure engine's const-dim fast path.
	if lit, ok := call.Args[0].(*clc.IntLit); ok {
		lw.emit(instr{op: opWISta, norm: code, dst: t.idx, imm: lit.Value & 3})
		return t
	}
	d := lw.lowerExpr(call.Args[0])
	if d.f {
		lw.fail(call.Pos(), "interp: non-integer work-item dimension")
		return breg{}
	}
	lw.emit(instr{op: opWIDyn, norm: code, dst: t.idx, a: d.idx})
	return t
}

// lowerMath lowers a 1- or 2-argument math builtin. The closure engine
// counts AluFloat before evaluating the (float-converted) arguments, so
// the count is pre-paid whenever an argument can trap.
func (lw *lowerer) lowerMath(call *clc.Call, nargs int) breg {
	prepay := canTrap(call.Args[0]) || (nargs == 2 && canTrap(call.Args[1]))
	c := int32(1)
	if prepay {
		lw.emit(instr{op: opStatFloat, imm: 1})
		c = 0
	}
	a0 := lw.lowerConverted(call.Args[0], clc.KindFloat, call.Args[0].Pos())
	if nargs == 1 {
		t := lw.tempF()
		lw.emit(instr{op: opMath1, dst: t.idx, a: a0.idx, c: c, imm: int64(lw.mathIdx1(call.Name))})
		return t
	}
	if writesVars(call.Args[1]) {
		a0 = lw.snapshot(a0)
	}
	a1 := lw.lowerConverted(call.Args[1], clc.KindFloat, call.Args[1].Pos())
	t := lw.tempF()
	lw.emit(instr{op: opMath2, dst: t.idx, a: a0.idx, b: a1.idx, c: c, imm: int64(lw.mathIdx2(call.Name))})
	return t
}

// mathIdx1/mathIdx2 intern a math builtin into the program's function
// tables, so dispatch is an index instead of a per-call name switch.
func (lw *lowerer) mathIdx1(name string) int {
	if i, ok := lw.math1Idx[name]; ok {
		return i
	}
	i := len(lw.math1)
	lw.math1 = append(lw.math1, mathFn1(name))
	lw.math1Idx[name] = i
	return i
}

func (lw *lowerer) mathIdx2(name string) int {
	if i, ok := lw.math2Idx[name]; ok {
		return i
	}
	i := len(lw.math2)
	lw.math2 = append(lw.math2, mathFn2(name))
	lw.math2Idx[name] = i
	return i
}

func (lw *lowerer) lowerMinMax(call *clc.Call) breg {
	rk := call.ResultType().Kind
	isMin := call.Name == "min"
	sel := uint8(0)
	if isMin {
		sel = 1
	}
	prepay := canTrap(call.Args[0]) || canTrap(call.Args[1])
	c := int32(1)
	if prepay {
		if rk.IsFloat() {
			lw.emit(instr{op: opStatFloat, imm: 1})
		} else {
			lw.emit(instr{op: opStatInt, imm: 1})
		}
		c = 0
	}
	a0 := lw.lowerConverted(call.Args[0], rk, call.Pos())
	if writesVars(call.Args[1]) {
		a0 = lw.snapshot(a0)
	}
	a1 := lw.lowerConverted(call.Args[1], rk, call.Pos())
	// The closure engine does not re-normalize the selected value.
	if rk.IsFloat() {
		t := lw.tempF()
		lw.emit(instr{op: opMinMaxF, norm: sel, dst: t.idx, a: a0.idx, b: a1.idx, c: c})
		return t
	}
	t := lw.tempI()
	lw.emit(instr{op: opMinMaxI, norm: sel, dst: t.idx, a: a0.idx, b: a1.idx, c: c})
	return t
}

// lowerAtomic lowers atomic builtins onto opAtomicL/opAtomicG. The
// closure engine counts the statistic, loads the old value (trapping on
// an empty global buffer), evaluates the operand, and stores; the VM
// instruction performs count+load+apply+store atomically after the
// operand code, so an operand with observable effects or traps would be
// reordered against the load — those kernels fall back to closures.
func (lw *lowerer) lowerAtomic(call *clc.Call) breg {
	target, ok := call.Args[0].(*clc.Ident)
	if !ok || target.Sym == nil {
		lw.fail(call.Args[0].Pos(), "interp: unsupported atomic target")
		return breg{}
	}
	op, ok := atomicOps[call.Name]
	if !ok {
		lw.fail(call.Pos(), "interp: unhandled atomic %q", call.Name)
		return breg{}
	}
	var operand breg
	if len(call.Args) > 1 {
		if !pureNoEffects(call.Args[1]) {
			lw.fail(call.Args[1].Pos(), "interp: atomic operand with side effects")
			return breg{}
		}
		operand = lw.lowerExpr(call.Args[1])
		if operand.f {
			lw.fail(call.Args[1].Pos(), "interp: non-integer atomic operand")
			return breg{}
		}
	}
	sym := target.Sym
	t := lw.tempI()
	switch {
	case sym.IsLocal && sym.ArrayLen > 0:
		li, ok := lw.ck.localIdx[sym]
		if !ok {
			lw.fail(call.Pos(), "interp: unknown __local symbol %q", sym.Name)
			return breg{}
		}
		lw.emit(instr{op: opAtomicL, norm: uint8(op), dst: t.idx, a: operand.idx, c: 1, slot: int32(li), pos: call.Pos()})
	case sym.Class == clc.SymParam && sym.Type.Ptr:
		lw.emit(instr{op: opAtomicG, norm: uint8(op), dst: t.idx, a: operand.idx, c: 1, slot: int32(sym.Slot), pos: call.Pos()})
	default:
		lw.fail(call.Args[0].Pos(), "interp: atomic target must be a __local array or global int pointer")
		return breg{}
	}
	return t
}

// ---------------------------------------------------------------------------
// Assignment and inc/dec

func (lw *lowerer) lowerAssign(as *clc.Assign, want bool) breg {
	rk := as.LHS.ResultType().Kind
	switch lhs := as.LHS.(type) {
	case *clc.Ident:
		sym := lhs.Sym
		if sym == nil {
			lw.fail(lhs.Pos(), "interp: unresolved assignment target")
			return breg{}
		}
		if sym.IsLocal {
			return lw.lowerLocalScalarAssign(as, sym, rk)
		}
		dst := lw.varReg(sym, lhs.Pos())
		if as.Op == clc.AssignPlain {
			rv := lw.lowerConverted(as.RHS, rk, as.Pos())
			lw.moveTo(dst, rv)
			return dst
		}
		if v, ok := lw.tryFMA(as, dst, rk); ok {
			return v
		}
		binOp, _ := as.Op.BinOp()
		// Compound assignment through binOpFn: the promoted kind is the
		// LHS kind, the RHS is pre-converted to it.
		if rk.IsFloat() {
			prepay := canTrap(as.RHS)
			c := int32(1)
			if prepay {
				lw.emit(instr{op: opStatFloat, imm: 1})
				c = 0
			}
			// Closure order: count, load LHS, evaluate RHS. The load is
			// folded into the operation below, which reads the variable
			// register after the RHS code ran — snapshot if the RHS
			// writes variables.
			a := breg(dst)
			if writesVars(as.RHS) {
				a = lw.snapshot(a)
			}
			rv := lw.lowerConverted(as.RHS, rk, as.Pos())
			var op opcode
			switch binOp {
			case clc.BinAdd:
				op = opAddF
			case clc.BinSub:
				op = opSubF
			case clc.BinMul:
				op = opMulF
			case clc.BinDiv:
				op = opDivF
			default:
				lw.fail(as.Pos(), "interp: invalid float operator %v", binOp)
				return breg{}
			}
			lw.emit(instr{op: op, norm: normCodeFloat(rk), dst: dst.idx, a: a.idx, b: rv.idx, c: c})
			return dst
		}
		if binOp == clc.BinDiv || binOp == clc.BinRem {
			// Closure order for integer division: count, evaluate RHS,
			// zero-check, load LHS — the LHS read already follows the
			// RHS code, so it never needs a snapshot.
			full := canTrap(as.RHS)
			c := int32(1)
			if full {
				lw.emit(instr{op: opStatInt, imm: 1})
				c = 0
			}
			rv := lw.lowerConverted(as.RHS, rk, as.Pos())
			isRem := binOp == clc.BinRem
			if full {
				imm := int64(0)
				if isRem {
					imm = 1
				}
				lw.emit(instr{op: opChkDiv0, a: rv.idx, imm: imm, pos: as.Pos()})
			}
			op := opDivI
			switch {
			case isRem && rk.IsUnsigned():
				op = opRemU
			case isRem:
				op = opRemI
			case rk.IsUnsigned():
				op = opDivU
			}
			lw.emit(instr{op: op, norm: normCodeInt(rk), dst: dst.idx, a: dst.idx, b: rv.idx, c: c, pos: as.Pos()})
			return dst
		}
		prepay := canTrap(as.RHS)
		c := int32(1)
		if prepay {
			lw.emit(instr{op: opStatInt, imm: 1})
			c = 0
		}
		a := breg(dst)
		if writesVars(as.RHS) {
			a = lw.snapshot(a)
		}
		rv := lw.lowerConverted(as.RHS, rk, as.Pos())
		var op opcode
		imm := int64(0)
		switch binOp {
		case clc.BinAdd:
			op = opAddI
		case clc.BinSub:
			op = opSubI
		case clc.BinMul:
			op = opMulI
		case clc.BinAnd:
			op = opAndI
		case clc.BinOr:
			op = opOrI
		case clc.BinXor:
			op = opXorI
		case clc.BinShl:
			op, imm = opShlI, shiftMaskOf(rk)
		case clc.BinShr:
			if rk.IsUnsigned() {
				op = opShrU
			} else {
				op = opShrI
			}
			imm = shiftMaskOf(rk)
		default:
			lw.fail(as.Pos(), "interp: invalid operator %v", binOp)
			return breg{}
		}
		lw.emit(instr{op: op, norm: normCodeInt(rk), dst: dst.idx, a: a.idx, b: rv.idx, c: c, imm: imm})
		return dst

	case *clc.Index:
		ref := lw.memRefOf(lhs)
		if as.Op == clc.AssignPlain {
			idx := lw.lowerExpr(lhs.Idx)
			if writesVars(as.RHS) {
				idx = lw.snapshot(idx)
			}
			rv := lw.lowerConverted(as.RHS, rk, as.Pos())
			lw.emitStore(ref, idx, rv)
			return rv
		}
		// Compound assignment through an element: the closure engine
		// evaluates index, loads the element (recording the access),
		// evaluates the RHS, and only then counts the operation and
		// applies it (applyBin) — so the fused operation needs no
		// statistics pre-payment, ever.
		idx := lw.lowerExpr(lhs.Idx)
		if writesVars(as.RHS) {
			idx = lw.snapshot(idx)
		}
		old := lw.emitLoad(ref, idx)
		rv := lw.lowerConverted(as.RHS, rk, as.Pos())
		binOp, _ := as.Op.BinOp()
		nv := lw.emitApplyBin(binOp, rk, old, rv, as.Pos())
		lw.emitStore(ref, idx, nv)
		return nv
	}
	lw.fail(as.Pos(), "interp: invalid assignment target %T", as.LHS)
	return breg{}
}

// tryFMA recognizes the reduction pattern `acc += x*y` over float32 and
// fuses it into opFMAAF32 (two AluFloat counts, both float32 roundings
// preserved). Bails out unless the multiply is float32-promoted and its
// operands neither write variables (the accumulator read is deferred to
// the fused instruction) nor require an intermediate conversion.
func (lw *lowerer) tryFMA(as *clc.Assign, dst breg, rk clc.Kind) (breg, bool) {
	if as.Op != clc.AssignAdd || rk != clc.KindFloat || !dst.f {
		return breg{}, false
	}
	mul, ok := as.RHS.(*clc.Binary)
	if !ok || mul.Op != clc.BinMul {
		return breg{}, false
	}
	if mul.ResultType().Kind != clc.KindFloat {
		return breg{}, false
	}
	if promoteKind(mul.L.ResultType().Kind, mul.R.ResultType().Kind) != clc.KindFloat {
		return breg{}, false
	}
	if writesVars(mul.L) || writesVars(mul.R) {
		return breg{}, false
	}
	if v, ok := lw.tryFMALd2(dst, mul); ok {
		return v, true
	}
	n := uint8(2)
	if canTrap(mul.L) || canTrap(mul.R) {
		lw.emit(instr{op: opStatFloat, imm: 2})
		n = 0
	}
	x := lw.lowerConverted(mul.L, clc.KindFloat, mul.Pos())
	y := lw.lowerConverted(mul.R, clc.KindFloat, mul.Pos())
	lw.emit(instr{op: opFMAAF32, norm: n, dst: dst.idx, a: x.idx, b: y.idx})
	return dst, true
}

// pureNoTrap reports that evaluating x has no side effects and cannot
// trap, though it may count ALU statistics (unlike pureNoEffects, which
// additionally requires stat-freedom). Reordering such code is safe
// whenever every later trap point observes the same set of increments
// in both engines.
func pureNoTrap(x clc.Expr) bool {
	return !canTrap(x) && !writesVars(x)
}

// globalF32Load reports whether x is a load of a float32 element from a
// global buffer with an effect- and trap-free integer index — the shape
// the fully fused FMA superinstruction can absorb. statFree additionally
// requires the index to count no ALU statistics: the second load's index
// runs before the first load's bounds check in the fused form, while the
// closure engine evaluates it after — so any statistics it counted would
// be visible at a first-load trap only in the fused form.
func globalF32Load(x clc.Expr, statFree bool) (*clc.Index, bool) {
	ix, ok := x.(*clc.Index)
	if !ok {
		return nil, false
	}
	base, ok := ix.Base.(*clc.Ident)
	if !ok || base.Sym == nil {
		return nil, false
	}
	sym := base.Sym
	if sym.Class != clc.SymParam || !sym.Type.Ptr || sym.Type.Kind != clc.KindFloat {
		return nil, false
	}
	if ix.Idx.ResultType().Kind.IsFloat() {
		return nil, false
	}
	if statFree {
		if !pureNoEffects(ix.Idx) {
			return nil, false
		}
	} else if !pureNoTrap(ix.Idx) {
		return nil, false
	}
	return ix, true
}

// tryFMALd2 fuses `acc += A[i]*X[j]` where both multiplicands are global
// float32 loads with pure indexes into a single instruction that counts,
// records, loads, and accumulates in the closure engine's exact order.
func (lw *lowerer) tryFMALd2(dst breg, mul *clc.Binary) (breg, bool) {
	la, ok := globalF32Load(mul.L, false)
	if !ok {
		return breg{}, false
	}
	ra, ok := globalF32Load(mul.R, true)
	if !ok {
		return breg{}, false
	}
	refA := lw.memRefOf(la)
	refX := lw.memRefOf(ra)
	// Pure indexes cannot trap, so no statistics pre-payment is needed:
	// the fused instruction counts both AluFloat operations before its
	// own bounds checks, like the closure engine does.
	idxAMark := len(lw.code)
	idxA := lw.lowerExpr(la.Idx)
	idxX := lw.lowerExpr(ra.Idx)
	// If lowering ended with an opMulAddI into the A-index scratch
	// register (the dominant A[i*N+j] addressing pattern) and the X
	// index emitted no code after it, absorb the multiply-add into the
	// fused instruction. The scratch register becomes dead, so the
	// multiply-add instruction is removed rather than kept as a write.
	if n := len(lw.code); n > idxAMark && !idxA.varRef &&
		lw.code[n-1].op == opMulAddI && lw.code[n-1].dst == idxA.idx &&
		idxX.idx >= 0 && idxX.idx <= 0x7FFF &&
		refX.argIndex >= 0 && refX.argIndex <= 0xFFFF &&
		refX.site >= 0 {
		ma := lw.code[n-1]
		lw.code = lw.code[:n-1]
		lw.emit(instr{
			op: opFMALd2MAF32, dst: dst.idx, a: ma.a, b: ma.b, c: ma.c,
			slot: refA.argIndex, site: refA.site,
			imm: int64(idxX.idx)<<48 | int64(refX.argIndex)<<32 | int64(uint32(refX.site)),
			pos: la.Pos(), pos2: ra.Pos(),
		})
		return dst, true
	}
	lw.emit(instr{
		op: opFMALd2F32, dst: dst.idx, a: idxA.idx, b: idxX.idx,
		slot: refA.argIndex, site: refA.site,
		imm: int64(refX.argIndex)<<32 | int64(uint32(refX.site)),
		pos: la.Pos(), pos2: ra.Pos(),
	})
	return dst, true
}

// emitApplyBin emits the fused count-at-execution binary operation used
// by compound element assignments (the closure engine's applyBin).
func (lw *lowerer) emitApplyBin(binOp clc.BinaryOp, rk clc.Kind, a, b breg, pos clc.Pos) breg {
	if rk.IsFloat() {
		var op opcode
		switch binOp {
		case clc.BinAdd:
			op = opAddF
		case clc.BinSub:
			op = opSubF
		case clc.BinMul:
			op = opMulF
		case clc.BinDiv:
			op = opDivF
		default:
			lw.fail(pos, "interp: invalid float operator %v", binOp)
			return breg{}
		}
		t := lw.tempF()
		lw.emit(instr{op: op, norm: normCodeFloat(rk), dst: t.idx, a: a.idx, b: b.idx, c: 1})
		return t
	}
	var op opcode
	imm := int64(0)
	switch binOp {
	case clc.BinAdd:
		op = opAddI
	case clc.BinSub:
		op = opSubI
	case clc.BinMul:
		op = opMulI
	case clc.BinDiv:
		if rk.IsUnsigned() {
			op = opDivU
		} else {
			op = opDivI
		}
	case clc.BinRem:
		if rk.IsUnsigned() {
			op = opRemU
		} else {
			op = opRemI
		}
	case clc.BinAnd:
		op = opAndI
	case clc.BinOr:
		op = opOrI
	case clc.BinXor:
		op = opXorI
	case clc.BinShl:
		op, imm = opShlI, shiftMaskOf(rk)
	case clc.BinShr:
		if rk.IsUnsigned() {
			op = opShrU
		} else {
			op = opShrI
		}
		imm = shiftMaskOf(rk)
	default:
		lw.fail(pos, "interp: invalid operator %v", binOp)
		return breg{}
	}
	t := lw.tempI()
	lw.emit(instr{op: op, norm: normCodeInt(rk), dst: t.idx, a: a.idx, b: b.idx, c: 1, imm: imm, pos: pos})
	return t
}

// lowerLocalScalarAssign lowers assignment to a __local scalar, which
// lives in work-group storage instead of a register.
func (lw *lowerer) lowerLocalScalarAssign(as *clc.Assign, sym *clc.Symbol, rk clc.Kind) breg {
	li, ok := lw.ck.localIdx[sym]
	if !ok {
		lw.fail(as.Pos(), "interp: unknown __local symbol %q", sym.Name)
		return breg{}
	}
	isF := rk.IsFloat()
	store := func(v breg) {
		op := opStLSI
		if isF {
			op = opStLSF
		}
		lw.emit(instr{op: op, a: v.idx, slot: int32(li)})
	}
	load := func() breg {
		t := lw.temp(isF)
		op := opLdLSI
		if isF {
			op = opLdLSF
		}
		lw.emit(instr{op: op, dst: t.idx, slot: int32(li)})
		return t
	}
	if as.Op == clc.AssignPlain {
		rv := lw.lowerConverted(as.RHS, rk, as.Pos())
		store(rv)
		return rv
	}
	binOp, _ := as.Op.BinOp()
	if !isF && (binOp == clc.BinDiv || binOp == clc.BinRem) {
		// Count, RHS, zero-check, then the deferred LHS load.
		full := canTrap(as.RHS)
		c := int32(1)
		if full {
			lw.emit(instr{op: opStatInt, imm: 1})
			c = 0
		}
		rv := lw.lowerConverted(as.RHS, rk, as.Pos())
		if full {
			imm := int64(0)
			if binOp == clc.BinRem {
				imm = 1
			}
			lw.emit(instr{op: opChkDiv0, a: rv.idx, imm: imm, pos: as.Pos()})
		}
		old := load()
		nv := lw.tempI()
		op := opDivI
		switch {
		case binOp == clc.BinRem && rk.IsUnsigned():
			op = opRemU
		case binOp == clc.BinRem:
			op = opRemI
		case rk.IsUnsigned():
			op = opDivU
		}
		lw.emit(instr{op: op, norm: normCodeInt(rk), dst: nv.idx, a: old.idx, b: rv.idx, c: c, pos: as.Pos()})
		store(nv)
		return nv
	}
	// Count, load LHS, RHS, operate, store.
	prepay := canTrap(as.RHS)
	c := int32(1)
	if prepay {
		if isF {
			lw.emit(instr{op: opStatFloat, imm: 1})
		} else {
			lw.emit(instr{op: opStatInt, imm: 1})
		}
		c = 0
	}
	old := load()
	rv := lw.lowerConverted(as.RHS, rk, as.Pos())
	nv := lw.emitBinOpTo(binOp, rk, old, rv, c, as.Pos())
	store(nv)
	return nv
}

// emitBinOpTo emits a non-division binary operation with explicit count
// c into a fresh temporary (division handled by callers for ordering).
func (lw *lowerer) emitBinOpTo(binOp clc.BinaryOp, rk clc.Kind, a, b breg, c int32, pos clc.Pos) breg {
	if rk.IsFloat() {
		var op opcode
		switch binOp {
		case clc.BinAdd:
			op = opAddF
		case clc.BinSub:
			op = opSubF
		case clc.BinMul:
			op = opMulF
		case clc.BinDiv:
			op = opDivF
		default:
			lw.fail(pos, "interp: invalid float operator %v", binOp)
			return breg{}
		}
		t := lw.tempF()
		lw.emit(instr{op: op, norm: normCodeFloat(rk), dst: t.idx, a: a.idx, b: b.idx, c: c})
		return t
	}
	var op opcode
	imm := int64(0)
	switch binOp {
	case clc.BinAdd:
		op = opAddI
	case clc.BinSub:
		op = opSubI
	case clc.BinMul:
		op = opMulI
	case clc.BinAnd:
		op = opAndI
	case clc.BinOr:
		op = opOrI
	case clc.BinXor:
		op = opXorI
	case clc.BinShl:
		op, imm = opShlI, shiftMaskOf(rk)
	case clc.BinShr:
		if rk.IsUnsigned() {
			op = opShrU
		} else {
			op = opShrI
		}
		imm = shiftMaskOf(rk)
	default:
		lw.fail(pos, "interp: invalid operator %v", binOp)
		return breg{}
	}
	t := lw.tempI()
	lw.emit(instr{op: op, norm: normCodeInt(rk), dst: t.idx, a: a.idx, b: b.idx, c: c, imm: imm})
	return t
}

func (lw *lowerer) lowerIncDec(id *clc.IncDec, want bool) breg {
	rk := id.X.ResultType().Kind
	step := int64(1)
	if id.Decr {
		step = -1
	}
	switch x := id.X.(type) {
	case *clc.Ident:
		sym := x.Sym
		if sym == nil {
			lw.fail(x.Pos(), "interp: unresolved inc/dec target")
			return breg{}
		}
		if sym.IsLocal {
			// __local scalar: always an integer count, stepped by the
			// element kind.
			li, ok := lw.ck.localIdx[sym]
			if !ok {
				lw.fail(x.Pos(), "interp: unknown __local symbol %q", sym.Name)
				return breg{}
			}
			lw.emit(instr{op: opStatInt, imm: 1})
			isF := rk.IsFloat()
			old := lw.temp(isF)
			if isF {
				lw.emit(instr{op: opLdLSF, dst: old.idx, slot: int32(li)})
				nv := lw.tempF()
				lw.emit(instr{op: opStepF, norm: normCodeFloat(rk), dst: nv.idx, a: old.idx, fimm: float64(step)})
				lw.emit(instr{op: opStLSF, a: nv.idx, slot: int32(li)})
				if id.Post {
					return old
				}
				return nv
			}
			lw.emit(instr{op: opLdLSI, dst: old.idx, slot: int32(li)})
			nv := lw.tempI()
			lw.emit(instr{op: opStepI, norm: normCodeInt(rk), dst: nv.idx, a: old.idx, imm: step})
			lw.emit(instr{op: opStLSI, a: nv.idx, slot: int32(li)})
			if id.Post {
				return old
			}
			return nv
		}
		dst := lw.varReg(sym, x.Pos())
		var old breg
		if want && id.Post {
			old = lw.snapshot(breg{idx: dst.idx, f: dst.f, varRef: true})
		}
		if dst.f {
			lw.emit(instr{op: opIncDecF, norm: normCodeFloat(rk), dst: dst.idx, fimm: float64(step)})
		} else {
			lw.emit(instr{op: opIncDecI, norm: normCodeInt(rk), dst: dst.idx, imm: step})
		}
		if want && id.Post {
			return old
		}
		return dst
	case *clc.Index:
		// The closure engine counts AluInt before evaluating the index,
		// for float elements too.
		ref := lw.memRefOf(x)
		lw.emit(instr{op: opStatInt, imm: 1})
		idx := lw.lowerExpr(x.Idx)
		old := lw.emitLoad(ref, idx)
		nv := lw.temp(old.f)
		if old.f {
			lw.emit(instr{op: opStepF, norm: normCodeFloat(rk), dst: nv.idx, a: old.idx, fimm: float64(step)})
		} else {
			lw.emit(instr{op: opStepI, norm: normCodeInt(rk), dst: nv.idx, a: old.idx, imm: step})
		}
		lw.emitStore(ref, idx, nv)
		if id.Post {
			return old
		}
		return nv
	}
	lw.fail(id.Pos(), "interp: invalid inc/dec target %T", id.X)
	return breg{}
}

// tryFusedBackEdge fuses a counted loop's back-edge — post inc/dec of a
// scalar int variable followed by a compare of two scalar int variables
// — into a single opIncJCmpI, preserving the closure engine's exact
// per-iteration statistic order (post count, step, condition count,
// compare). The head condition instruction still runs once on entry, so
// the condition is evaluated iterations+1 times, like the tree walk.
func (lw *lowerer) tryFusedBackEdge(st *clc.ForStmt, bodyStart int) bool {
	id, ok := st.Post.(*clc.IncDec)
	if !ok {
		return false
	}
	tgt, ok := id.X.(*clc.Ident)
	if !ok || tgt.Sym == nil || tgt.Sym.IsLocal {
		return false
	}
	rk := id.X.ResultType().Kind
	if rk.IsFloat() {
		return false
	}
	cond, ok := st.Cond.(*clc.Binary)
	if !ok || !cond.Op.IsComparison() {
		return false
	}
	lk, rkk := cond.L.ResultType().Kind, cond.R.ResultType().Kind
	pk := promoteKind(lk, rkk)
	if pk.IsFloat() || lk != pk || rkk != pk {
		return false
	}
	lv, lok := scalarVarOperand(cond.L)
	rv, rok := scalarVarOperand(cond.R)
	if !lok || !rok {
		return false
	}
	dst := lw.varReg(tgt.Sym, tgt.Pos())
	if dst.f {
		return false
	}
	l, r := lw.varReg(lv, cond.L.Pos()), lw.varReg(rv, cond.R.Pos())
	if l.f || r.f {
		return false
	}
	step := int32(1)
	if id.Decr {
		step = -1
	}
	lw.emit(instr{
		op:   opIncJCmpI,
		norm: normCodeInt(rk)<<4 | icmpCode(cond.Op, pk.IsUnsigned()),
		dst:  dst.idx, c: step, a: l.idx, b: r.idx,
		imm: int64(bodyStart),
	})
	return true
}

// scalarVarOperand reports whether x is a plain scalar (non-__local,
// non-pointer) variable reference, whose register can be re-read on
// every loop iteration without re-emitting code.
func scalarVarOperand(x clc.Expr) (*clc.Symbol, bool) {
	id, ok := x.(*clc.Ident)
	if !ok || id.Sym == nil {
		return nil, false
	}
	sym := id.Sym
	if sym.IsLocal || sym.Type.Ptr || sym.ArrayLen > 0 {
		return nil, false
	}
	return sym, true
}
